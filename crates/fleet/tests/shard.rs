//! Integration tests of the sharded fleet: the `shards = 1` bit-identity
//! contract against the plain `FleetController` path, thread-count and
//! worker-reuse bit-identity at fixed shard counts, the cross-shard
//! coupling's observable effect, and community sizes beyond one engine's
//! comfort.

use gridstrat_core::cost::StrategyParams;
use gridstrat_core::executor::GridScenario;
use gridstrat_fleet::{
    run_cell, FleetCellOutcome, FleetConfig, ShardedFleet, StrategyGroup, StrategyMix,
};

fn test_config(slots: usize) -> FleetConfig {
    let mut cfg = FleetConfig::small_farm(slots);
    cfg.tasks_per_user = 2;
    cfg.task_exec_s = 300.0;
    cfg.replications = 2;
    cfg.seed = 0x5AAD;
    cfg
}

fn mixed_population() -> StrategyMix {
    StrategyMix::new(
        "mixed",
        vec![
            StrategyGroup::new(StrategyParams::Single { t_inf: 3000.0 }, 1.0),
            StrategyGroup::new(
                StrategyParams::Multiple {
                    b: 2,
                    t_inf: 3000.0,
                },
                1.0,
            ),
        ],
    )
}

/// Full bit-level fingerprint of an aggregated cell outcome.
fn fingerprint(cell: &FleetCellOutcome) -> Vec<u64> {
    let mut v = vec![
        cell.mean_latency.to_bits(),
        cell.fairness.to_bits(),
        cell.slot_waste.to_bits(),
        cell.utilization.to_bits(),
        cell.makespan_s.to_bits(),
        cell.tasks_completed as u64,
        cell.tasks_total as u64,
        cell.submissions,
        cell.wasted_starts,
        cell.replications as u64,
    ];
    for g in &cell.groups {
        v.push(g.group as u64);
        v.push(g.users as u64);
        v.push(g.tasks_completed as u64);
        v.push(g.latency.mean().to_bits());
        v.push(g.latency.min().to_bits());
        v.push(g.latency.max().to_bits());
        v.push(g.quantile(0.95).to_bits());
    }
    v
}

#[test]
fn single_shard_is_bit_identical_to_fleet_controller() {
    // THE determinism contract: shards = 1 replays exactly the history
    // the plain FleetController path (run_cell) produces — same seeds,
    // same code path, no epoch stepping.
    let cfg = test_config(12);
    let mix = mixed_population();
    let scenario = GridScenario::baseline();
    let plain = run_cell(&cfg, &mix, 10, &scenario);
    let sharded = ShardedFleet::new(cfg, mix, 10, 1, scenario).run();
    assert_eq!(
        fingerprint(&plain),
        fingerprint(&sharded),
        "1-shard community diverged from the unsharded fleet"
    );
    assert_eq!(plain.tasks_completed, plain.tasks_total);
}

#[test]
fn sharded_identical_across_thread_counts_and_reuse() {
    // fixed shard count ⇒ bit-identical results whatever the thread
    // count; replications > threads on the 1-thread pool also forces the
    // per-worker engine+fleet rewind path, pinning reuse ≡ fresh
    let mut cfg = test_config(16);
    cfg.replications = 4;
    let sharded = ShardedFleet::new(cfg, mixed_population(), 24, 3, GridScenario::baseline());
    let run_with = |threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        pool.install(|| sharded.run())
    };
    let a = run_with(1);
    let b = run_with(5);
    assert_eq!(fingerprint(&a), fingerprint(&b));
    // and the whole thing is reproducible run-to-run
    let c = run_with(2);
    assert_eq!(fingerprint(&a), fingerprint(&c));
}

#[test]
fn sharded_run_matches_standalone_replication() {
    // run()'s parallel replications and the standalone run_replication
    // entry point must see the same seeds and histories
    let mut cfg = test_config(16);
    cfg.replications = 2;
    let sharded = ShardedFleet::new(cfg, mixed_population(), 18, 2, GridScenario::baseline());
    let cell = sharded.run();
    let reps: Vec<_> = (0..2).map(|r| sharded.run_replication(r)).collect();
    let again = FleetCellOutcome::aggregate("mixed", 18, "baseline", &reps);
    assert_eq!(fingerprint(&cell), fingerprint(&again));
}

#[test]
fn coupling_exchanges_load_between_shards() {
    // with coupling on, each shard receives the other shards' busy
    // fraction as injected background work: background jobs actually run
    // (total busy > client busy) and the community finishes no earlier
    let mut cfg = test_config(8);
    cfg.replications = 1;
    cfg.tasks_per_user = 3;
    let mut coupled = ShardedFleet::new(
        cfg,
        StrategyMix::pure("all-single", StrategyParams::Single { t_inf: 3000.0 }),
        16,
        2,
        GridScenario::baseline(),
    );
    coupled.epoch_s = 600.0;
    let mut uncoupled = coupled.clone();
    uncoupled.coupling = 0.0;
    let with = coupled.run_replication(0);
    let without = uncoupled.run_replication(0);
    assert_eq!(with.tasks_completed(), 16 * 3, "coupled run must complete");
    assert_eq!(without.tasks_completed(), 16 * 3);
    assert!(
        with.total_busy_s > with.client_busy_s,
        "injected background load never ran ({} vs {})",
        with.total_busy_s,
        with.client_busy_s
    );
    assert!(
        (without.total_busy_s - without.client_busy_s).abs() < 1e-9,
        "decoupled shards must see no background load"
    );
    assert!(
        with.mean_latency() > without.mean_latency(),
        "foreign load should cost latency: {} vs {}",
        with.mean_latency(),
        without.mean_latency()
    );
}

#[test]
fn large_sharded_community_completes_with_bounded_metrics() {
    // a community an order of magnitude past the old ~40-user scale:
    // metric state stays O(users + groups) (summaries + group windows),
    // every task completes, and the merged accounting is consistent
    let mut cfg = test_config(400);
    cfg.replications = 1;
    cfg.tasks_per_user = 1;
    cfg.group_window = 256;
    let sharded = ShardedFleet::new(cfg, mixed_population(), 2_000, 4, GridScenario::baseline());
    let run = sharded.run_replication(0);
    assert_eq!(run.users.len(), 2_000);
    assert_eq!(run.tasks_completed(), 2_000);
    assert!(run.client_started >= run.tasks_completed() as u64);
    // group streams: windows are capped, moments are complete
    let total_group_tasks: usize = run
        .groups
        .iter()
        .flatten()
        .map(|g| g.latency.count() as usize)
        .sum();
    assert_eq!(total_group_tasks, 2_000);
    for g in run.groups.iter().flatten() {
        assert!(g.window.len() <= 256, "window outgrew its bound");
        assert_eq!(g.members, 1_000);
    }
    let cell = FleetCellOutcome::aggregate("mixed", 2_000, "baseline", &[run]);
    assert!(cell.fairness > 0.0 && cell.fairness <= 1.0 + 1e-12);
    assert!((0.0..=1.0).contains(&cell.slot_waste));
    assert!(cell.mean_latency.is_finite() && cell.mean_latency > 0.0);
}
