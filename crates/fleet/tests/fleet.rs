//! Integration tests of the multi-user fleet subsystem: end-to-end
//! community runs, sweep determinism across thread counts, worker-reuse
//! bit-identity, and the paper's administrators' complaint (raising `b`
//! degrades everyone's latency) as a pinned regression.

use gridstrat_core::adaptive::{AdaptiveConfig, RetunePolicy};
use gridstrat_core::cost::StrategyParams;
use gridstrat_core::executor::GridScenario;
use gridstrat_fleet::{BestResponseSearch, FleetConfig, FleetSweep, StrategyGroup, StrategyMix};

fn test_config() -> FleetConfig {
    let mut cfg = FleetConfig::small_farm(12);
    cfg.tasks_per_user = 2;
    cfg.task_exec_s = 300.0;
    cfg.replications = 2;
    cfg.seed = 0xF1EE7;
    cfg
}

fn mixed_population() -> StrategyMix {
    StrategyMix::new(
        "mixed",
        vec![
            StrategyGroup {
                strategy: StrategyParams::Single { t_inf: 3000.0 },
                weight: 1.0,
                adaptive: None,
            },
            StrategyGroup {
                strategy: StrategyParams::Multiple {
                    b: 2,
                    t_inf: 3000.0,
                },
                weight: 1.0,
                adaptive: None,
            },
            StrategyGroup {
                strategy: StrategyParams::Delayed {
                    t0: 1500.0,
                    t_inf: 3000.0,
                },
                weight: 1.0,
                adaptive: None,
            },
        ],
    )
}

fn small_sweep(seed: u64) -> FleetSweep {
    let mut cfg = test_config();
    cfg.seed = seed;
    FleetSweep::new(
        cfg,
        vec![
            StrategyMix::pure("all-single", StrategyParams::Single { t_inf: 3000.0 }),
            mixed_population(),
        ],
        vec![9, 15],
        vec![
            GridScenario::baseline(),
            GridScenario::new("2x-faults", 2.0, 1.0),
        ],
    )
}

#[test]
fn community_completes_every_task_with_sane_metrics() {
    let cfg = test_config();
    let out = gridstrat_fleet::run_cell(&cfg, &mixed_population(), 12, &GridScenario::baseline());
    assert_eq!(out.tasks_completed, out.tasks_total);
    assert_eq!(out.tasks_total, 12 * cfg.tasks_per_user * cfg.replications);
    assert!(out.fairness > 0.0 && out.fairness <= 1.0 + 1e-12);
    assert!((0.0..=1.0).contains(&out.slot_waste));
    assert!(out.utilization > 0.0 && out.utilization <= 1.0 + 1e-12);
    assert!(out.mean_latency.is_finite() && out.mean_latency > 0.0);
    assert!(out.makespan_s > 0.0);
    // three groups of four users each, all reporting latencies
    assert_eq!(out.groups.len(), 3);
    for g in &out.groups {
        assert_eq!(g.users, 4);
        assert!(g.latency.count() > 0);
        let e = g.ecdf().expect("group has completed tasks");
        assert_eq!(e.n_total() as u64, g.latency.count());
    }
    // the burst group submits more than the single group per task
    assert!(out.submissions > out.tasks_completed as u64);
}

#[test]
fn tiny_community_with_empty_apportioned_group_runs() {
    // weights [0.5, 0.2, 0.3] over 2 users apportion to [1, 0, 1]; the
    // empty middle group must not panic the aggregation (regression)
    let mut cfg = test_config();
    cfg.replications = 1;
    let mix = StrategyMix::new(
        "sparse",
        vec![
            StrategyGroup {
                strategy: StrategyParams::Single { t_inf: 3000.0 },
                weight: 0.5,
                adaptive: None,
            },
            StrategyGroup {
                strategy: StrategyParams::Multiple {
                    b: 2,
                    t_inf: 3000.0,
                },
                weight: 0.2,
                adaptive: None,
            },
            StrategyGroup {
                strategy: StrategyParams::Delayed {
                    t0: 1500.0,
                    t_inf: 3000.0,
                },
                weight: 0.3,
                adaptive: None,
            },
        ],
    );
    assert_eq!(mix.counts(2), vec![1, 0, 1]);
    let out = gridstrat_fleet::run_cell(&cfg, &mix, 2, &GridScenario::baseline());
    assert_eq!(out.groups.len(), 2);
    assert_eq!(out.groups[0].group, 0);
    assert_eq!(out.groups[1].group, 2);
    assert_eq!(out.tasks_completed, out.tasks_total);
}

#[test]
fn sweep_identical_across_thread_counts() {
    let run_with = |threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        pool.install(|| small_sweep(0xBEEF).run())
    };
    let a = run_with(1);
    let b = run_with(5);
    assert_eq!(a.len(), 8);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(
            x.mean_latency.to_bits(),
            y.mean_latency.to_bits(),
            "{}/{}/{}",
            x.mix,
            x.users,
            x.scenario
        );
        assert_eq!(x.fairness.to_bits(), y.fairness.to_bits());
        assert_eq!(x.slot_waste.to_bits(), y.slot_waste.to_bits());
        assert_eq!(x.utilization.to_bits(), y.utilization.to_bits());
        assert_eq!(x.tasks_completed, y.tasks_completed);
        assert_eq!(x.submissions, y.submissions);
        for (gx, gy) in x.groups.iter().zip(&y.groups) {
            assert_eq!(gx.latency.mean().to_bits(), gy.latency.mean().to_bits());
        }
    }
}

#[test]
fn sweep_identical_under_rayon_num_threads_env() {
    // the env knob users actually reach for must not change results.
    // NOTE: mutates process-global env for a short window; sound here for
    // the same reasons as the core executor's equivalent test (all env
    // access in the workspace goes through std::env, no FFI getenv).
    let before = small_sweep(0xD0E).run();
    let prev = std::env::var("RAYON_NUM_THREADS").ok();
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let after = small_sweep(0xD0E).run();
    match prev {
        Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
        None => std::env::remove_var("RAYON_NUM_THREADS"),
    }
    for (x, y) in before.iter().zip(&after) {
        assert_eq!(x.mean_latency.to_bits(), y.mean_latency.to_bits());
        assert_eq!(x.slot_waste.to_bits(), y.slot_waste.to_bits());
    }
}

#[test]
fn repeated_sweeps_are_deterministic() {
    let a = small_sweep(7).run();
    let b = small_sweep(7).run();
    let c = small_sweep(8).run();
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.mean_latency.to_bits(), y.mean_latency.to_bits());
    }
    assert!(
        a.iter()
            .zip(&c)
            .any(|(x, y)| x.mean_latency.to_bits() != y.mean_latency.to_bits()),
        "different master seeds must change the experiment"
    );
}

#[test]
fn raising_b_degrades_community_latency_and_waste() {
    // The administrators' complaint (paper §8): with the whole community
    // bursting on a scarce farm, redundant copies that start before their
    // cancellation lands burn the very slots users compete for, so
    // latency AND waste grow with b. Pinned on the deterministic seed.
    let mut cfg = FleetConfig::small_farm(30);
    cfg.tasks_per_user = 3;
    cfg.task_exec_s = 600.0;
    cfg.replications = 2;
    cfg.seed = 0xEC0;
    let burst = |b: u32| {
        StrategyMix::pure(
            format!("burst-{b}"),
            StrategyParams::Multiple { b, t_inf: 3000.0 },
        )
    };
    let sweep = FleetSweep::new(
        cfg,
        vec![burst(1), burst(2), burst(4)],
        vec![40],
        vec![GridScenario::baseline()],
    );
    let out = sweep.run();
    assert_eq!(out.len(), 3);
    let (b1, b2, b4) = (&out[0], &out[1], &out[2]);
    assert!(
        b4.mean_latency > b1.mean_latency,
        "b=4 mean {} should exceed b=1 mean {}",
        b4.mean_latency,
        b1.mean_latency
    );
    assert!(
        b4.slot_waste > b2.slot_waste && b2.slot_waste > b1.slot_waste,
        "slot waste must grow with b: {} / {} / {}",
        b1.slot_waste,
        b2.slot_waste,
        b4.slot_waste
    );
    assert!(
        b4.wasted_starts > b1.wasted_starts,
        "wasted starts must grow with b"
    );
    assert!(b1.slot_waste < 0.35, "b=1 waste should be modest");
}

fn adaptive_config() -> AdaptiveConfig {
    AdaptiveConfig {
        retune_every: 2,
        window: 100,
        decay: 0.95,
        min_body: 5,
        policy: RetunePolicy::EmpiricalBackoff {
            max_censored_fraction: 0.5,
            growth: 1.5,
        },
    }
}

/// A mix whose single-resubmission half adapts online; the burst half is
/// plain — exercising mixed adaptive/non-adaptive routing in one engine.
fn adaptive_mix() -> StrategyMix {
    StrategyMix::new(
        "adaptive-vs-burst",
        vec![
            StrategyGroup::adaptive(
                StrategyParams::Single { t_inf: 3000.0 },
                1.0,
                adaptive_config(),
            ),
            StrategyGroup::new(
                StrategyParams::Multiple {
                    b: 2,
                    t_inf: 3000.0,
                },
                1.0,
            ),
        ],
    )
}

#[test]
fn adaptive_users_complete_and_stay_deterministic() {
    let mut cfg = test_config();
    cfg.tasks_per_user = 6; // enough completions for retunes to fire
    let out = gridstrat_fleet::run_cell(&cfg, &adaptive_mix(), 10, &GridScenario::baseline());
    assert_eq!(out.tasks_completed, out.tasks_total);
    assert!(out.mean_latency.is_finite() && out.mean_latency > 0.0);

    // determinism incl. the retuning path: repeat bit-for-bit
    let again = gridstrat_fleet::run_cell(&cfg, &adaptive_mix(), 10, &GridScenario::baseline());
    assert_eq!(out.mean_latency.to_bits(), again.mean_latency.to_bits());
    assert_eq!(out.submissions, again.submissions);
}

#[test]
fn adaptive_sweep_identical_across_thread_counts_and_reuse() {
    // the sweep reuses one engine + fleet per worker across replications:
    // a retuned adaptive agent must reset to its initial parameters
    // bit-identically, or thread counts would change results
    let mut cfg = test_config();
    cfg.tasks_per_user = 6;
    cfg.replications = 3;
    let sweep = |seed: u64| {
        let mut c = cfg.clone();
        c.seed = seed;
        FleetSweep::new(
            c,
            vec![adaptive_mix()],
            vec![8, 12],
            vec![GridScenario::baseline()],
        )
    };
    let run_with = |threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        pool.install(|| sweep(0xADF1).run())
    };
    let a = run_with(1);
    let b = run_with(6);
    assert_eq!(a.len(), 2);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.mean_latency.to_bits(), y.mean_latency.to_bits());
        assert_eq!(x.submissions, y.submissions);
        assert_eq!(x.slot_waste.to_bits(), y.slot_waste.to_bits());
    }
}

#[test]
fn mix_rejects_invalid_adaptive_config() {
    let bad = AdaptiveConfig {
        retune_every: 0,
        ..adaptive_config()
    };
    let mix = StrategyMix {
        name: "bad".into(),
        groups: vec![StrategyGroup::adaptive(
            StrategyParams::Single { t_inf: 3000.0 },
            1.0,
            bad,
        )],
    };
    assert!(mix.validate().is_err());
}

#[test]
fn equilibrium_search_converges_and_is_deterministic() {
    let mut cfg = test_config();
    cfg.replications = 1;
    let candidates = vec![
        StrategyParams::Single { t_inf: 3000.0 },
        StrategyParams::Multiple {
            b: 3,
            t_inf: 3000.0,
        },
    ];
    let search = BestResponseSearch::new(cfg, 12, candidates, GridScenario::baseline());
    let a = search.run();
    let b = search.run();
    assert!(!a.steps.is_empty());
    assert_eq!(
        a.final_counts, b.final_counts,
        "search must be deterministic"
    );
    assert_eq!(a.final_counts.iter().sum::<usize>(), 12);
    assert_eq!(a.converged, b.converged);
    let fr = a.final_fractions();
    assert!((fr.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    for step in &a.steps {
        assert_eq!(step.counts.iter().sum::<usize>(), 12);
        assert!(step.best_response < 2);
        assert!(step.deviation_latency.iter().all(|l| l.is_finite()));
    }
}
