//! Ecosystem metrics: what the community as a whole experiences.
//!
//! A single-user Monte-Carlo estimate answers "what latency does *my*
//! strategy get"; the fleet metrics answer the administrators' questions —
//! how fairly is latency distributed across users, what fraction of the
//! consumed compute was redundant burst copies, and how hot the farm ran.

use gridstrat_core::cost::StrategyParams;
use gridstrat_stats::{Ecdf, Summary};

/// One user's outcome within a single community run.
#[derive(Debug, Clone)]
pub struct UserOutcome {
    /// Reporting-group index (mix group or equilibrium candidate).
    pub group: usize,
    /// The strategy the user played.
    pub strategy: StrategyParams,
    /// Tasks the user completed before the run ended.
    pub tasks_done: usize,
    /// Measured task latencies (launch → first useful start), seconds.
    pub latencies: Vec<f64>,
}

/// The raw record of one community replication, measured by
/// [`crate::FleetController::collect`].
#[derive(Debug, Clone)]
pub struct FleetRun {
    /// Per-user outcomes, in user order.
    pub users: Vec<UserOutcome>,
    /// Tasks each user was asked to complete.
    pub tasks_per_user: usize,
    /// Simulated time at which the run ended, seconds.
    pub makespan_s: f64,
    /// Client (community) jobs submitted.
    pub client_submitted: u64,
    /// Client jobs that reached a worker slot.
    pub client_started: u64,
    /// Slot-seconds consumed by *useful* starts (the one start that
    /// completed each task).
    pub useful_busy_s: f64,
    /// Slot-seconds consumed by all client starts.
    pub client_busy_s: f64,
    /// Slot-seconds consumed by all starts (client + background).
    pub total_busy_s: f64,
    /// Slot-seconds the farm offered over the run (`slots × makespan`).
    pub slot_capacity_s: f64,
}

impl FleetRun {
    /// Tasks completed across the community.
    pub fn tasks_completed(&self) -> usize {
        self.users.iter().map(|u| u.tasks_done).sum()
    }

    /// Client starts that burned a slot without completing a task
    /// (redundant copies that won the cancellation race).
    pub fn wasted_starts(&self) -> u64 {
        self.client_started - self.tasks_completed() as u64
    }

    /// Fraction of the community's consumed slot-seconds that were
    /// redundant (`0` when nothing ran).
    pub fn slot_waste(&self) -> f64 {
        if self.client_busy_s > 0.0 {
            (self.client_busy_s - self.useful_busy_s) / self.client_busy_s
        } else {
            0.0
        }
    }

    /// Farm utilisation: busy slot-seconds over offered slot-seconds.
    pub fn utilization(&self) -> f64 {
        if self.slot_capacity_s > 0.0 {
            self.total_busy_s / self.slot_capacity_s
        } else {
            0.0
        }
    }

    /// Jain fairness index over per-user mean latencies:
    /// `(Σx)² / (n·Σx²)` — `1` when every user sees the same mean latency,
    /// `1/n` when one user absorbs all of it. Users with no completed
    /// task are excluded; returns `1.0` when fewer than two users qualify.
    pub fn fairness(&self) -> f64 {
        jain_index(
            self.users
                .iter()
                .filter(|u| !u.latencies.is_empty())
                .map(|u| u.latencies.iter().sum::<f64>() / u.latencies.len() as f64),
        )
    }

    /// Mean task latency across every completed task, seconds.
    pub fn mean_latency(&self) -> f64 {
        let mut s = Summary::new();
        for u in &self.users {
            for &l in &u.latencies {
                s.push(l);
            }
        }
        s.mean()
    }
}

/// Jain fairness index of an allocation stream.
pub fn jain_index(xs: impl IntoIterator<Item = f64>) -> f64 {
    let (mut n, mut sum, mut sumsq) = (0usize, 0.0f64, 0.0f64);
    for x in xs {
        n += 1;
        sum += x;
        sumsq += x * x;
    }
    if n < 2 || sumsq == 0.0 {
        return 1.0;
    }
    sum * sum / (n as f64 * sumsq)
}

/// Pooled per-group latency statistics across the replications of a cell.
#[derive(Debug, Clone)]
pub struct GroupReport {
    /// Group index within the cell's mix.
    pub group: usize,
    /// The strategy the group plays.
    pub strategy: StrategyParams,
    /// Users per replication in this group.
    pub users: usize,
    /// Tasks completed, summed over replications.
    pub tasks_completed: usize,
    /// Latency summary pooled over users, tasks and replications.
    pub latency: Summary,
    /// The pooled latencies themselves, sorted ascending (for ECDFs /
    /// quantiles).
    pub latencies: Vec<f64>,
}

impl GroupReport {
    /// Empirical CDF of the group's task latencies (no censoring).
    pub fn ecdf(&self) -> Option<Ecdf> {
        Ecdf::from_samples(&self.latencies, f64::INFINITY).ok()
    }

    /// The `p`-quantile of the group's task latencies (pooled; O(1) —
    /// the latencies are kept sorted).
    pub fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "quantile p must be in [0,1]");
        if self.latencies.is_empty() {
            return f64::NAN;
        }
        let idx = ((self.latencies.len() as f64 - 1.0) * p).round() as usize;
        self.latencies[idx]
    }
}

/// Aggregated outcome of one sweep cell (mix × community size × scenario),
/// averaged over its replications.
#[derive(Debug, Clone)]
pub struct FleetCellOutcome {
    /// Mix label.
    pub mix: String,
    /// Community size.
    pub users: usize,
    /// Grid-scenario label.
    pub scenario: String,
    /// Replications aggregated.
    pub replications: usize,
    /// Per-group pooled latency reports.
    pub groups: Vec<GroupReport>,
    /// Mean task latency pooled over everything, seconds.
    pub mean_latency: f64,
    /// Mean Jain fairness across replications.
    pub fairness: f64,
    /// Mean redundant-slot-waste fraction across replications.
    pub slot_waste: f64,
    /// Mean farm utilisation across replications.
    pub utilization: f64,
    /// Mean makespan across replications, seconds.
    pub makespan_s: f64,
    /// Tasks completed, summed over replications.
    pub tasks_completed: usize,
    /// Tasks requested, summed over replications.
    pub tasks_total: usize,
    /// Client submissions, summed over replications.
    pub submissions: u64,
    /// Wasted starts, summed over replications.
    pub wasted_starts: u64,
}

impl FleetCellOutcome {
    /// Aggregates the replications of one cell (reps must be non-empty and
    /// share the same population shape).
    pub fn aggregate(
        mix: impl Into<String>,
        users: usize,
        scenario: impl Into<String>,
        reps: &[FleetRun],
    ) -> Self {
        assert!(!reps.is_empty(), "cannot aggregate zero replications");
        let n_groups = reps[0].users.iter().map(|u| u.group + 1).max().unwrap_or(0);
        let mut groups: Vec<GroupReport> = Vec::with_capacity(n_groups);
        for g in 0..n_groups {
            let mut latency = Summary::new();
            let mut latencies = Vec::new();
            let mut tasks_completed = 0usize;
            let mut members = 0usize;
            let mut strategy = None;
            for (r, rep) in reps.iter().enumerate() {
                for u in rep.users.iter().filter(|u| u.group == g) {
                    if r == 0 {
                        members += 1;
                    }
                    strategy.get_or_insert(u.strategy);
                    tasks_completed += u.tasks_done;
                    for &l in &u.latencies {
                        latency.push(l);
                        latencies.push(l);
                    }
                }
            }
            // apportionment can leave a group with zero users at small
            // community sizes (e.g. weights [0.5, 0.2, 0.3] over 2 users);
            // such groups simply have nothing to report
            let Some(strategy) = strategy else { continue };
            latencies.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
            groups.push(GroupReport {
                group: g,
                strategy,
                users: members,
                tasks_completed,
                latency,
                latencies,
            });
        }
        let mean = |f: fn(&FleetRun) -> f64| reps.iter().map(f).sum::<f64>() / reps.len() as f64;
        let mut pooled = Summary::new();
        for rep in reps {
            for u in &rep.users {
                for &l in &u.latencies {
                    pooled.push(l);
                }
            }
        }
        FleetCellOutcome {
            mix: mix.into(),
            users,
            scenario: scenario.into(),
            replications: reps.len(),
            groups,
            mean_latency: pooled.mean(),
            fairness: mean(FleetRun::fairness),
            slot_waste: mean(FleetRun::slot_waste),
            utilization: mean(FleetRun::utilization),
            makespan_s: mean(|r| r.makespan_s),
            tasks_completed: reps.iter().map(FleetRun::tasks_completed).sum(),
            tasks_total: reps.iter().map(|r| r.users.len() * r.tasks_per_user).sum(),
            submissions: reps.iter().map(|r| r.client_submitted).sum(),
            wasted_starts: reps.iter().map(FleetRun::wasted_starts).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_with(latencies: Vec<Vec<f64>>) -> FleetRun {
        FleetRun {
            users: latencies
                .into_iter()
                .map(|l| UserOutcome {
                    group: 0,
                    strategy: StrategyParams::Single { t_inf: 700.0 },
                    tasks_done: l.len(),
                    latencies: l,
                })
                .collect(),
            tasks_per_user: 2,
            makespan_s: 1000.0,
            client_submitted: 10,
            client_started: 6,
            useful_busy_s: 300.0,
            client_busy_s: 400.0,
            total_busy_s: 800.0,
            slot_capacity_s: 2000.0,
        }
    }

    #[test]
    fn jain_index_known_values() {
        assert!((jain_index([1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        // one user absorbs everything: 1/n
        assert!((jain_index([1.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
        // textbook example: (1+2+3)^2 / (3 * 14)
        assert!((jain_index([1.0, 2.0, 3.0]) - 36.0 / 42.0).abs() < 1e-12);
        assert_eq!(jain_index([5.0]), 1.0);
        assert_eq!(jain_index([]), 1.0);
    }

    #[test]
    fn run_metrics() {
        let r = run_with(vec![vec![100.0, 200.0], vec![150.0, 150.0]]);
        assert_eq!(r.tasks_completed(), 4);
        assert_eq!(r.wasted_starts(), 2);
        assert!((r.slot_waste() - 0.25).abs() < 1e-12);
        assert!((r.utilization() - 0.4).abs() < 1e-12);
        // both users have mean 150 -> perfectly fair
        assert!((r.fairness() - 1.0).abs() < 1e-12);
        assert!((r.mean_latency() - 150.0).abs() < 1e-12);
    }

    #[test]
    fn fairness_excludes_empty_users() {
        let r = run_with(vec![vec![100.0], vec![]]);
        assert_eq!(
            r.fairness(),
            1.0,
            "single qualifying user is trivially fair"
        );
    }

    #[test]
    fn aggregate_skips_empty_middle_groups() {
        // apportionment can produce counts like [1, 0, 1]: group 1 has no
        // members and must be skipped, not panicked over
        let mut r = run_with(vec![vec![100.0], vec![200.0]]);
        r.users[1].group = 2;
        let cell = FleetCellOutcome::aggregate("m", 2, "baseline", &[r]);
        assert_eq!(cell.groups.len(), 2);
        assert_eq!(cell.groups[0].group, 0);
        assert_eq!(cell.groups[1].group, 2);
        assert_eq!(cell.groups[1].users, 1);
    }

    #[test]
    fn aggregate_pools_groups() {
        let reps = vec![
            run_with(vec![vec![100.0], vec![200.0]]),
            run_with(vec![vec![300.0], vec![400.0]]),
        ];
        let cell = FleetCellOutcome::aggregate("m", 2, "baseline", &reps);
        assert_eq!(cell.replications, 2);
        assert_eq!(cell.groups.len(), 1);
        assert_eq!(cell.groups[0].users, 2);
        assert_eq!(cell.groups[0].tasks_completed, 4);
        assert!((cell.mean_latency - 250.0).abs() < 1e-12);
        assert_eq!(cell.tasks_total, 8);
        assert_eq!(cell.submissions, 20);
        let e = cell.groups[0].ecdf().expect("non-empty group");
        assert_eq!(e.n_total(), 4);
        assert!((cell.groups[0].quantile(1.0) - 400.0).abs() < 1e-12);
    }
}
