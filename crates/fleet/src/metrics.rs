//! Ecosystem metrics: what the community as a whole experiences.
//!
//! A single-user Monte-Carlo estimate answers "what latency does *my*
//! strategy get"; the fleet metrics answer the administrators' questions —
//! how fairly is latency distributed across users, what fraction of the
//! consumed compute was redundant burst copies, and how hot the farm ran.
//!
//! # Memory model
//!
//! Everything here is **bounded-memory streaming**: a community run
//! accumulates one [`Summary`] (Welford moments) per user and one
//! [`GroupStream`] (exact pooled moments + a sliding-window ECDF) per
//! reporting group, so a replication's metric state is `O(users + groups)`
//! — independent of how many tasks the community completes. That is what
//! lets one run scale from the original 40-user communities to 100 000+
//! users (see [`crate::shard`]) without per-task latency vectors.

use gridstrat_core::cost::StrategyParams;
use gridstrat_stats::{Ecdf, StreamingEcdf, Summary};

/// One user's outcome within a single community run.
#[derive(Debug, Clone)]
pub struct UserOutcome {
    /// Reporting-group index (mix group or equilibrium candidate).
    pub group: usize,
    /// The strategy the user played.
    pub strategy: StrategyParams,
    /// Tasks the user completed before the run ended.
    pub tasks_done: usize,
    /// Streaming summary of the user's task latencies (launch → first
    /// useful start), seconds. Bounded memory: moments and extrema only,
    /// never the raw per-task vector.
    pub latency: Summary,
}

/// Bounded-memory latency stream of one reporting group within a single
/// community replication: exact pooled moments plus a sliding window of
/// the most recent task latencies for ECDFs and quantiles.
#[derive(Debug, Clone)]
pub struct GroupStream {
    /// Group index within the population's mix.
    pub group: usize,
    /// The strategy the group plays.
    pub strategy: StrategyParams,
    /// Users assigned to the group.
    pub members: usize,
    /// Exact pooled latency moments (Welford; merging is exact).
    pub latency: Summary,
    /// Sliding window over the most recent task latencies (no decay, no
    /// censoring) — distribution shape on `O(window)` memory.
    pub window: StreamingEcdf,
}

impl GroupStream {
    /// An empty stream for a group of `members` users playing `strategy`,
    /// windowing the last `window` task latencies.
    pub fn new(group: usize, strategy: StrategyParams, members: usize, window: usize) -> Self {
        GroupStream {
            group,
            strategy,
            members,
            latency: Summary::new(),
            window: StreamingEcdf::new(window, 1.0, f64::INFINITY)
                .expect("group windows are validated by FleetConfig"),
        }
    }

    /// Ingests one completed-task latency.
    pub fn observe(&mut self, latency_s: f64) {
        self.latency.push(latency_s);
        self.window.observe_started(latency_s);
    }

    /// Forgets every observation, keeping the window allocation (the
    /// fleet reset path; membership and strategy are population shape and
    /// survive).
    pub fn clear(&mut self) {
        self.latency = Summary::new();
        self.window.clear();
    }

    /// Folds another shard's stream of the *same* group into this one:
    /// membership adds up, moments merge exactly, and the other window is
    /// replayed in order (deterministic for a fixed shard order).
    pub fn merge(&mut self, other: &GroupStream) {
        debug_assert_eq!(self.group, other.group, "merging different groups");
        self.members += other.members;
        self.latency.merge(&other.latency);
        self.window.absorb(&other.window);
    }
}

/// The raw record of one community replication, measured by
/// [`crate::FleetController::collect`] (or merged from engine shards by
/// [`crate::ShardedFleet`]).
#[derive(Debug, Clone)]
pub struct FleetRun {
    /// Per-user outcomes, in user order.
    pub users: Vec<UserOutcome>,
    /// Per-group latency streams, indexed by group id; `None` for groups
    /// the apportionment left without members.
    pub groups: Vec<Option<GroupStream>>,
    /// Tasks each user was asked to complete.
    pub tasks_per_user: usize,
    /// Simulated time at which the run ended, seconds.
    pub makespan_s: f64,
    /// Client (community) jobs submitted.
    pub client_submitted: u64,
    /// Client jobs that reached a worker slot.
    pub client_started: u64,
    /// Slot-seconds consumed by *useful* starts (the one start that
    /// completed each task).
    pub useful_busy_s: f64,
    /// Slot-seconds consumed by all client starts.
    pub client_busy_s: f64,
    /// Slot-seconds consumed by all starts (client + background).
    pub total_busy_s: f64,
    /// Slot-seconds the farm offered over the run (`slots × makespan`,
    /// summed over shards for a sharded run).
    pub slot_capacity_s: f64,
}

impl FleetRun {
    /// Tasks completed across the community.
    pub fn tasks_completed(&self) -> usize {
        self.users.iter().map(|u| u.tasks_done).sum()
    }

    /// Client starts that burned a slot without completing a task
    /// (redundant copies that won the cancellation race).
    ///
    /// On a consistent, fully-collected run `client_started ≥
    /// tasks_completed` (every completed task has exactly one started
    /// winner), but a *truncated* record — a partial shard merge, a run
    /// cut mid-collection — can carry more completed tasks than counted
    /// starts. Those read as zero waste rather than underflowing.
    pub fn wasted_starts(&self) -> u64 {
        self.client_started
            .saturating_sub(self.tasks_completed() as u64)
    }

    /// Fraction of the community's consumed slot-seconds that were
    /// redundant (`0` when nothing ran).
    pub fn slot_waste(&self) -> f64 {
        if self.client_busy_s > 0.0 {
            (self.client_busy_s - self.useful_busy_s) / self.client_busy_s
        } else {
            0.0
        }
    }

    /// Farm utilisation: busy slot-seconds over offered slot-seconds.
    pub fn utilization(&self) -> f64 {
        if self.slot_capacity_s > 0.0 {
            self.total_busy_s / self.slot_capacity_s
        } else {
            0.0
        }
    }

    /// Jain fairness index over per-user mean latencies:
    /// `(Σx)² / (n·Σx²)` — `1` when every user sees the same mean latency,
    /// `1/n` when one user absorbs all of it. Users with no completed
    /// task — and any non-finite mean that would poison the index — are
    /// excluded; returns `1.0` when fewer than two users qualify.
    pub fn fairness(&self) -> f64 {
        jain_index(
            self.users
                .iter()
                .filter(|u| u.latency.count() > 0)
                .map(|u| u.latency.mean())
                .filter(|m| m.is_finite()),
        )
    }

    /// Mean task latency across every completed task, seconds.
    pub fn mean_latency(&self) -> f64 {
        let mut s = Summary::new();
        for u in &self.users {
            s.merge(&u.latency);
        }
        s.mean()
    }
}

/// Jain fairness index of an allocation stream.
///
/// Semantics, pinned by tests:
///
/// * fewer than two values → `1.0` (nothing to be unfair between);
/// * **all-zero allocations → `1.0`**: `x_i ≡ 0` is the limit of the
///   all-equal allocation, so it reports perfect fairness by convention —
///   it is *not* a "no signal" sentinel. Callers that cannot distinguish
///   "everyone got the same nothing" from "nothing was measured" must
///   filter unmeasured users out *before* calling (as
///   [`FleetRun::fairness`] does);
/// * non-finite inputs propagate (`NaN` out), so a poisoned stream is
///   loud rather than silently "fair".
pub fn jain_index(xs: impl IntoIterator<Item = f64>) -> f64 {
    let (mut n, mut sum, mut sumsq) = (0usize, 0.0f64, 0.0f64);
    for x in xs {
        n += 1;
        sum += x;
        sumsq += x * x;
    }
    if n < 2 || sumsq == 0.0 {
        return 1.0;
    }
    sum * sum / (n as f64 * sumsq)
}

/// Pooled per-group latency statistics across the replications of a cell.
#[derive(Debug, Clone)]
pub struct GroupReport {
    /// Group index within the cell's mix.
    pub group: usize,
    /// The strategy the group plays.
    pub strategy: StrategyParams,
    /// Users per replication in this group.
    pub users: usize,
    /// Tasks completed, summed over replications.
    pub tasks_completed: usize,
    /// Latency summary pooled over users, tasks and replications (exact).
    pub latency: Summary,
    /// Pooled sliding window of recent task latencies (replication
    /// windows replayed in replication order) — the bounded-memory basis
    /// for [`GroupReport::ecdf`] and [`GroupReport::quantile`].
    pub window: StreamingEcdf,
}

impl GroupReport {
    /// Empirical CDF of the group's windowed task latencies (no
    /// censoring). `None` when the window is empty.
    pub fn ecdf(&self) -> Option<Ecdf> {
        self.window.snapshot().ok()
    }

    /// The `p`-quantile of the group's windowed task latencies (`NaN`
    /// when the window is empty). Exact over the window, an approximation
    /// of the full-run quantile when the run outgrew the window.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "quantile p must be in [0,1]");
        let Ok(snap) = self.window.snapshot() else {
            return f64::NAN;
        };
        let body = snap.body();
        let idx = ((body.len() as f64 - 1.0) * p).round() as usize;
        body[idx]
    }
}

/// Aggregated outcome of one sweep cell (mix × community size × scenario),
/// averaged over its replications.
#[derive(Debug, Clone)]
pub struct FleetCellOutcome {
    /// Mix label.
    pub mix: String,
    /// Community size.
    pub users: usize,
    /// Grid-scenario label.
    pub scenario: String,
    /// Replications aggregated.
    pub replications: usize,
    /// Per-group pooled latency reports.
    pub groups: Vec<GroupReport>,
    /// Mean task latency pooled over everything, seconds.
    pub mean_latency: f64,
    /// Mean Jain fairness across replications.
    pub fairness: f64,
    /// Mean redundant-slot-waste fraction across replications.
    pub slot_waste: f64,
    /// Mean farm utilisation across replications.
    pub utilization: f64,
    /// Mean makespan across replications, seconds.
    pub makespan_s: f64,
    /// Tasks completed, summed over replications.
    pub tasks_completed: usize,
    /// Tasks requested, summed over replications.
    pub tasks_total: usize,
    /// Client submissions, summed over replications.
    pub submissions: u64,
    /// Wasted starts, summed over replications.
    pub wasted_starts: u64,
}

impl FleetCellOutcome {
    /// Aggregates the replications of one cell (reps must be non-empty and
    /// share the same population shape).
    pub fn aggregate(
        mix: impl Into<String>,
        users: usize,
        scenario: impl Into<String>,
        reps: &[FleetRun],
    ) -> Self {
        assert!(!reps.is_empty(), "cannot aggregate zero replications");
        let n_groups = reps.iter().map(|r| r.groups.len()).max().unwrap_or(0);
        let mut groups: Vec<GroupReport> = Vec::with_capacity(n_groups);
        for g in 0..n_groups {
            let mut pooled: Option<GroupReport> = None;
            for rep in reps {
                let Some(stream) = rep.groups.get(g).and_then(Option::as_ref) else {
                    continue;
                };
                match &mut pooled {
                    // apportionment can leave a group with zero users at
                    // small community sizes (e.g. weights [0.5, 0.2, 0.3]
                    // over 2 users); such groups stay `None` and simply
                    // have nothing to report
                    None => {
                        pooled = Some(GroupReport {
                            group: stream.group,
                            strategy: stream.strategy,
                            users: stream.members,
                            tasks_completed: 0, // filled below from the pooled count
                            latency: stream.latency,
                            window: stream.window.clone(),
                        })
                    }
                    Some(p) => {
                        p.latency.merge(&stream.latency);
                        p.window.absorb(&stream.window);
                    }
                }
            }
            if let Some(mut p) = pooled {
                p.tasks_completed = p.latency.count() as usize;
                groups.push(p);
            }
        }
        let mean = |f: fn(&FleetRun) -> f64| reps.iter().map(f).sum::<f64>() / reps.len() as f64;
        let mut pooled = Summary::new();
        for rep in reps {
            for u in &rep.users {
                pooled.merge(&u.latency);
            }
        }
        FleetCellOutcome {
            mix: mix.into(),
            users,
            scenario: scenario.into(),
            replications: reps.len(),
            groups,
            mean_latency: pooled.mean(),
            fairness: mean(FleetRun::fairness),
            slot_waste: mean(FleetRun::slot_waste),
            utilization: mean(FleetRun::utilization),
            makespan_s: mean(|r| r.makespan_s),
            tasks_completed: reps.iter().map(FleetRun::tasks_completed).sum(),
            tasks_total: reps.iter().map(|r| r.users.len() * r.tasks_per_user).sum(),
            submissions: reps.iter().map(|r| r.client_submitted).sum(),
            wasted_starts: reps.iter().map(FleetRun::wasted_starts).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the run a fleet controller would collect from the given
    /// per-user `(group, latencies)` outcomes.
    fn run_from(users: Vec<(usize, Vec<f64>)>) -> FleetRun {
        let strategy = StrategyParams::Single { t_inf: 700.0 };
        let n_groups = users.iter().map(|(g, _)| g + 1).max().unwrap_or(0);
        let mut groups: Vec<Option<GroupStream>> = vec![None; n_groups];
        let mut outcomes = Vec::with_capacity(users.len());
        for (g, latencies) in users {
            groups
                .get_mut(g)
                .unwrap()
                .get_or_insert_with(|| GroupStream::new(g, strategy, 0, 64))
                .members += 1;
            outcomes.push(UserOutcome {
                group: g,
                strategy,
                tasks_done: latencies.len(),
                latency: Summary::from_slice(&latencies),
            });
            for l in latencies {
                groups[g].as_mut().unwrap().observe(l);
            }
        }
        FleetRun {
            users: outcomes,
            groups,
            tasks_per_user: 2,
            makespan_s: 1000.0,
            client_submitted: 10,
            client_started: 6,
            useful_busy_s: 300.0,
            client_busy_s: 400.0,
            total_busy_s: 800.0,
            slot_capacity_s: 2000.0,
        }
    }

    fn run_with(latencies: Vec<Vec<f64>>) -> FleetRun {
        run_from(latencies.into_iter().map(|l| (0, l)).collect())
    }

    #[test]
    fn jain_index_known_values() {
        assert!((jain_index([1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        // one user absorbs everything: 1/n
        assert!((jain_index([1.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
        // textbook example: (1+2+3)^2 / (3 * 14)
        assert!((jain_index([1.0, 2.0, 3.0]) - 36.0 / 42.0).abs() < 1e-12);
        assert_eq!(jain_index([5.0]), 1.0);
        assert_eq!(jain_index([]), 1.0);
    }

    #[test]
    fn jain_index_all_zero_is_perfectly_fair_by_convention() {
        // x ≡ 0 is the limit of the all-equal allocation, NOT a "no
        // signal" sentinel — pinned so the documented semantics cannot
        // silently drift (callers filter unmeasured users beforehand)
        assert_eq!(jain_index([0.0, 0.0]), 1.0);
        assert_eq!(jain_index([0.0, 0.0, 0.0, 0.0]), 1.0);
    }

    #[test]
    fn jain_index_propagates_non_finite_inputs() {
        assert!(jain_index([1.0, f64::NAN]).is_nan());
        assert!(jain_index([f64::INFINITY, 1.0]).is_nan());
    }

    #[test]
    fn run_metrics() {
        let r = run_with(vec![vec![100.0, 200.0], vec![150.0, 150.0]]);
        assert_eq!(r.tasks_completed(), 4);
        assert_eq!(r.wasted_starts(), 2);
        assert!((r.slot_waste() - 0.25).abs() < 1e-12);
        assert!((r.utilization() - 0.4).abs() < 1e-12);
        // both users have mean 150 -> perfectly fair
        assert!((r.fairness() - 1.0).abs() < 1e-12);
        assert!((r.mean_latency() - 150.0).abs() < 1e-12);
    }

    #[test]
    fn wasted_starts_saturates_on_truncated_runs() {
        // regression: a truncated record (partial shard merge / mid-run
        // cut) can report more completed tasks than counted starts; the
        // old `client_started - tasks_completed` underflowed (panic in
        // debug, u64 wrap in release). It must read as zero waste.
        let mut r = run_with(vec![vec![100.0; 5], vec![150.0; 5]]);
        assert_eq!(r.tasks_completed(), 10);
        r.client_started = 6; // starts from the shards that did report
        assert_eq!(r.wasted_starts(), 0);
        // and the aggregate built on top must not panic either
        let cell = FleetCellOutcome::aggregate("m", 2, "baseline", &[r]);
        assert_eq!(cell.wasted_starts, 0);
    }

    #[test]
    fn fairness_excludes_empty_users() {
        let r = run_with(vec![vec![100.0], vec![]]);
        assert_eq!(
            r.fairness(),
            1.0,
            "single qualifying user is trivially fair"
        );
    }

    #[test]
    fn fairness_guards_against_non_finite_means() {
        // a user whose summary was poisoned (e.g. an infinite latency)
        // must not drag the whole index to NaN
        let mut r = run_with(vec![vec![100.0], vec![200.0]]);
        r.users.push(UserOutcome {
            group: 0,
            strategy: StrategyParams::Single { t_inf: 700.0 },
            tasks_done: 1,
            latency: Summary::from_slice(&[f64::INFINITY]),
        });
        let want = jain_index([100.0, 200.0]);
        assert_eq!(r.fairness().to_bits(), want.to_bits());
    }

    #[test]
    fn aggregate_skips_empty_middle_groups() {
        // apportionment can produce counts like [1, 0, 1]: group 1 has no
        // members and must be skipped, not panicked over
        let r = run_from(vec![(0, vec![100.0]), (2, vec![200.0])]);
        let cell = FleetCellOutcome::aggregate("m", 2, "baseline", &[r]);
        assert_eq!(cell.groups.len(), 2);
        assert_eq!(cell.groups[0].group, 0);
        assert_eq!(cell.groups[1].group, 2);
        assert_eq!(cell.groups[1].users, 1);
    }

    #[test]
    fn aggregate_pools_groups() {
        let reps = vec![
            run_with(vec![vec![100.0], vec![200.0]]),
            run_with(vec![vec![300.0], vec![400.0]]),
        ];
        let cell = FleetCellOutcome::aggregate("m", 2, "baseline", &reps);
        assert_eq!(cell.replications, 2);
        assert_eq!(cell.groups.len(), 1);
        assert_eq!(cell.groups[0].users, 2);
        assert_eq!(cell.groups[0].tasks_completed, 4);
        assert!((cell.mean_latency - 250.0).abs() < 1e-12);
        assert_eq!(cell.tasks_total, 8);
        assert_eq!(cell.submissions, 20);
        let e = cell.groups[0].ecdf().expect("non-empty group");
        assert_eq!(e.n_total(), 4);
        assert!((cell.groups[0].quantile(1.0) - 400.0).abs() < 1e-12);
        assert!((cell.groups[0].quantile(0.0) - 100.0).abs() < 1e-12);
    }

    #[test]
    fn group_stream_merge_is_exact_for_moments() {
        let strategy = StrategyParams::Single { t_inf: 700.0 };
        let mut a = GroupStream::new(0, strategy, 2, 8);
        let mut b = GroupStream::new(0, strategy, 3, 8);
        for l in [100.0, 200.0] {
            a.observe(l);
        }
        for l in [300.0, 400.0, 500.0] {
            b.observe(l);
        }
        a.merge(&b);
        assert_eq!(a.members, 5);
        let full = Summary::from_slice(&[100.0, 200.0, 300.0, 400.0, 500.0]);
        assert_eq!(a.latency.count(), full.count());
        assert!((a.latency.mean() - full.mean()).abs() < 1e-9);
        assert_eq!(
            a.window.snapshot().unwrap().body(),
            &[100.0, 200.0, 300.0, 400.0, 500.0]
        );
    }
}
