//! # gridstrat-fleet
//!
//! Multi-user **ecosystem** simulation — the paper's stated future work
//! (§8): what happens to grid latency when *every* user adopts an
//! aggressive submission strategy?
//!
//! The analytic models of `gridstrat-core` assume one user's redundant
//! jobs do not measurably change the grid workload (§3.3) — reasonable
//! for a single user on an 80 000-core infrastructure, false when the
//! whole community bursts. This crate drops that assumption by
//! multiplexing a *population* of users onto one shared pipeline-mode
//! [`gridstrat_sim::GridSimulation`]:
//!
//! * [`FleetController`] — wraps one
//!   [`StrategyController`](gridstrat_core::executor::StrategyController)
//!   per user (built through
//!   [`Strategy::build_controller`](gridstrat_core::strategy::Strategy::build_controller),
//!   so every strategy family works unmodified) and routes engine events
//!   by owner tag and scope-namespaced timer tokens;
//! * [`StrategyMix`] / [`FleetConfig`] — heterogeneous populations:
//!   fractions of single / multiple / delayed users with their own
//!   parameters, community size, tasks per user, task execution time and
//!   per-user arrival processes;
//! * [`FleetSweep`] — (mix × community-size × scenario) grids evaluated
//!   in one parallel pass, bit-identical for any thread count;
//! * [`ShardedFleet`] — communities beyond one engine's reach (100k+
//!   users) partitioned across independent engine shards coupled by
//!   per-epoch background-load exchange, with bounded-memory streaming
//!   metrics (`O(users + groups)`, never per-task vectors);
//! * [`metrics`] — ecosystem metrics: per-strategy latency ECDFs, the
//!   Jain fairness index, the redundant-slot-waste fraction and farm
//!   utilisation;
//! * [`BestResponseSearch`] — best-response iteration over strategy
//!   mixes: is `b`-fold multiple submission a Nash equilibrium, and at
//!   what community size does it stop paying?
//!
//! ## Quickstart
//!
//! ```
//! use gridstrat_fleet::{run_cell, FleetConfig, StrategyMix};
//! use gridstrat_core::cost::StrategyParams;
//! use gridstrat_core::executor::GridScenario;
//!
//! // 16 users, everyone 2-fold bursting, on a scarce 12-slot farm.
//! let mut cfg = FleetConfig::small_farm(12);
//! cfg.tasks_per_user = 2;
//! cfg.replications = 1;
//! let mix = StrategyMix::pure("all-burst", StrategyParams::Multiple { b: 2, t_inf: 3000.0 });
//! let cell = run_cell(&cfg, &mix, 16, &GridScenario::baseline());
//! assert_eq!(cell.tasks_completed, cell.tasks_total);
//! assert!(cell.fairness > 0.0 && cell.fairness <= 1.0);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod agent;
pub mod controller;
pub mod equilibrium;
pub mod metrics;
pub mod mix;
pub mod shard;
pub mod sweep;

pub use agent::{user_stream_seed, ArrivalProcess, Assignment};
pub use controller::FleetController;
pub use equilibrium::{BestResponseSearch, BestResponseStep, EquilibriumReport};
pub use metrics::{jain_index, FleetCellOutcome, FleetRun, GroupReport, GroupStream, UserOutcome};
pub use mix::{apportion, FleetConfig, StrategyGroup, StrategyMix, MAX_USERS};
pub use shard::{shard_seed, ShardedFleet};
pub use sweep::{run_cell, FleetSweep, FLEET_STREAM};
