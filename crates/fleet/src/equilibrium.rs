//! Best-response iteration over strategy mixes: is aggressive multiple
//! submission a Nash equilibrium, and at what community size does it stop
//! paying?
//!
//! The game: every user picks one strategy from a finite candidate set;
//! a user's payoff is the (negated) mean task latency they experience in
//! the resulting community. Each iteration measures, for the current
//! population counts,
//!
//! 1. the **incumbent payoff** of every populated candidate (mean latency
//!    of its users in a population-only run), and
//! 2. the **deviation payoff** of every candidate — the mean latency a
//!    single extra probe user would get playing that candidate against
//!    the unchanged population,
//!
//! then moves a fraction of the group with the most to gain to the best
//! response. The loop stops when no populated group could cut its latency
//! by more than `tolerance` (an approximate Nash equilibrium) or after
//! `max_iterations`.
//!
//! Everything is seeded from `(master, iteration, candidate, replication)`
//! via `derive_seed`, and replications are aggregated in index order, so a
//! search is **bit-identical for any thread count**.

use crate::agent::Assignment;
use crate::mix::FleetConfig;
use crate::sweep::run_population;
use gridstrat_core::cost::StrategyParams;
use gridstrat_core::executor::GridScenario;
use gridstrat_sim::GridConfig;
use gridstrat_stats::rng::derive_seed;
use gridstrat_stats::Summary;
use rayon::prelude::*;
use std::sync::Arc;

/// Configuration of a best-response search.
#[derive(Debug, Clone)]
pub struct BestResponseSearch {
    /// Shared fleet configuration (farm, tasks, replications, seed).
    pub fleet: FleetConfig,
    /// Community size the game is played at.
    pub users: usize,
    /// The finite strategy space.
    pub candidates: Vec<StrategyParams>,
    /// Grid-condition overlay applied to the configured farm.
    pub scenario: GridScenario,
    /// Iteration cap.
    pub max_iterations: usize,
    /// Fraction of the most-tempted group switched per iteration
    /// (at least one user always moves).
    pub switch_fraction: f64,
    /// Relative latency improvement below which a deviation does not
    /// count as profitable.
    pub tolerance: f64,
}

/// One iteration of the best-response dynamics.
#[derive(Debug, Clone)]
pub struct BestResponseStep {
    /// Users per candidate at the start of the iteration.
    pub counts: Vec<usize>,
    /// Mean latency of each candidate's incumbent users (`NaN` for
    /// unpopulated candidates), seconds.
    pub incumbent_latency: Vec<f64>,
    /// Mean latency a deviating probe user gets per candidate, seconds.
    pub deviation_latency: Vec<f64>,
    /// Index of the best response (lowest deviation latency).
    pub best_response: usize,
    /// Largest relative latency saving any populated group could realise
    /// by switching to the best response.
    pub max_gain: f64,
}

/// Outcome of a best-response search.
#[derive(Debug, Clone)]
pub struct EquilibriumReport {
    /// The candidate strategy space.
    pub candidates: Vec<StrategyParams>,
    /// Every iteration, in order.
    pub steps: Vec<BestResponseStep>,
    /// Whether the dynamics reached an approximate equilibrium before the
    /// iteration cap.
    pub converged: bool,
    /// Users per candidate at termination.
    pub final_counts: Vec<usize>,
}

impl EquilibriumReport {
    /// The equilibrium (or final) mix as fractions per candidate.
    pub fn final_fractions(&self) -> Vec<f64> {
        let total: usize = self.final_counts.iter().sum();
        self.final_counts
            .iter()
            .map(|&c| c as f64 / total as f64)
            .collect()
    }
}

impl BestResponseSearch {
    /// A search with sensible dynamics defaults (cap 12, switch a quarter
    /// of the most-tempted group per step, 5 % tolerance).
    pub fn new(
        fleet: FleetConfig,
        users: usize,
        candidates: Vec<StrategyParams>,
        scenario: GridScenario,
    ) -> Self {
        BestResponseSearch {
            fleet,
            users,
            candidates,
            scenario,
            max_iterations: 12,
            switch_fraction: 0.25,
            tolerance: 0.05,
        }
    }

    /// Runs the best-response dynamics from an even initial split.
    pub fn run(&self) -> EquilibriumReport {
        self.fleet.validate().expect("valid fleet config");
        assert!(self.users > 0, "the game needs at least one user");
        assert!(
            self.candidates.len() >= 2,
            "equilibrium search needs at least two candidates"
        );
        assert!(self.max_iterations > 0, "need at least one iteration");
        assert!(
            self.switch_fraction > 0.0 && self.switch_fraction <= 1.0,
            "switch_fraction must be in (0, 1]"
        );
        let grid = Arc::new(self.scenario.apply_grid(&self.fleet.grid));

        // even initial split (largest remainder, earlier candidates first)
        let k = self.candidates.len();
        let mut counts = vec![self.users / k; k];
        for c in counts.iter_mut().take(self.users % k) {
            *c += 1;
        }

        let mut steps: Vec<BestResponseStep> = Vec::new();
        let mut converged = false;
        for iter in 0..self.max_iterations {
            let iter_seed = derive_seed(self.fleet.seed, iter as u64);
            let step = self.evaluate(&grid, &counts, iter_seed);
            let best = step.best_response;
            let max_gain = step.max_gain;
            // which populated group is most tempted to switch?
            let source = (0..k)
                .filter(|&c| counts[c] > 0 && c != best)
                .max_by(|&a, &b| {
                    gain(step.incumbent_latency[a], step.deviation_latency[best])
                        .partial_cmp(&gain(
                            step.incumbent_latency[b],
                            step.deviation_latency[best],
                        ))
                        .expect("finite gains")
                });
            steps.push(step);
            if max_gain <= self.tolerance {
                converged = true;
                break;
            }
            let Some(source) = source else {
                converged = true; // everyone already plays the best response
                break;
            };
            let moved = ((counts[source] as f64 * self.switch_fraction).round() as usize)
                .clamp(1, counts[source]);
            counts[source] -= moved;
            counts[best] += moved;
        }
        EquilibriumReport {
            candidates: self.candidates.clone(),
            steps,
            converged,
            final_counts: counts,
        }
    }

    /// Measures incumbent and deviation payoffs for one population state.
    ///
    /// Runs `1 + |candidates|` community configurations × `replications`
    /// each in one parallel pass (population first, then one probe
    /// configuration per candidate; the probe is an added `users+1`-th
    /// community member, so every candidate's deviation is measured
    /// against the identical population at identical contention).
    fn evaluate(
        &self,
        grid: &Arc<GridConfig>,
        counts: &[usize],
        iter_seed: u64,
    ) -> BestResponseStep {
        let k = self.candidates.len();
        let reps = self.fleet.replications;
        let population: Vec<Assignment> = counts
            .iter()
            .enumerate()
            .flat_map(|(c, &n)| {
                std::iter::repeat_n(
                    Assignment {
                        strategy: self.candidates[c],
                        group: c,
                        adaptive: None,
                    },
                    n,
                )
            })
            .collect();
        // configuration 0 = population only; configuration 1 + d = probe
        // user appended playing candidate d
        let runs: Vec<crate::metrics::FleetRun> = (0..(1 + k) * reps)
            .into_par_iter()
            .map_init(Vec::<Assignment>::new, |scratch, j| {
                let config_idx = j / reps;
                let rep = (j % reps) as u64;
                let rep_seed = derive_seed(derive_seed(iter_seed, config_idx as u64), rep);
                scratch.clear();
                scratch.extend_from_slice(&population);
                if config_idx > 0 {
                    scratch.push(Assignment {
                        strategy: self.candidates[config_idx - 1],
                        group: config_idx - 1,
                        adaptive: None,
                    });
                }
                run_population(&self.fleet, grid, scratch, rep_seed)
            })
            .collect();

        let incumbent_latency: Vec<f64> = (0..k)
            .map(|c| {
                let mut s = Summary::new();
                for rep in &runs[0..reps] {
                    for u in rep.users.iter().filter(|u| u.group == c) {
                        s.merge(&u.latency);
                    }
                }
                if s.count() == 0 {
                    f64::NAN
                } else {
                    s.mean()
                }
            })
            .collect();
        let deviation_latency: Vec<f64> = (0..k)
            .map(|d| {
                let mut s = Summary::new();
                for rep in &runs[(1 + d) * reps..(2 + d) * reps] {
                    let probe = rep.users.last().expect("probe user present");
                    s.merge(&probe.latency);
                }
                s.mean()
            })
            .collect();
        let best_response = (0..k)
            .min_by(|&a, &b| {
                deviation_latency[a]
                    .partial_cmp(&deviation_latency[b])
                    .expect("finite deviation latencies")
            })
            .expect("at least one candidate");
        // members of the best-response group "switching" to it is a no-op,
        // so only other populated groups count towards the incentive to move
        let max_gain = (0..k)
            .filter(|&c| c != best_response && counts[c] > 0 && incumbent_latency[c].is_finite())
            .map(|c| gain(incumbent_latency[c], deviation_latency[best_response]))
            .fold(0.0f64, f64::max);
        BestResponseStep {
            counts: counts.to_vec(),
            incumbent_latency,
            deviation_latency,
            best_response,
            max_gain,
        }
    }
}

/// Relative latency saving of switching from `from` to `to` (clamped at 0).
fn gain(from: f64, to: f64) -> f64 {
    if from > 0.0 {
        ((from - to) / from).max(0.0)
    } else {
        0.0
    }
}
