//! The fleet controller: multiplexes a whole community of user agents onto
//! one shared [`GridSimulation`].
//!
//! Every agent wraps an ordinary strategy-built
//! [`StrategyController`](gridstrat_core::executor::StrategyController) —
//! the *same* controllers the single-user Monte-Carlo executors run — and
//! the fleet routes engine notifications to the right agent using the
//! engine's client-scope hooks:
//!
//! * job events are routed by the `owner` tag the engine stamped on the
//!   job at submission time;
//! * timer tokens are namespaced by the engine under the scope that was
//!   active when the timer was armed, so two users' (or two tasks')
//!   identical raw tokens can never collide;
//! * the scope encodes `(user, task-epoch)`, so a stale timer or a
//!   redundant copy surviving from an already-completed task is silently
//!   dropped instead of corrupting the next task's protocol state.

use crate::agent::{ArrivalProcess, Assignment, UserAgent};
use crate::metrics::{FleetRun, GroupStream, UserOutcome};
use crate::mix::MAX_USERS;
use gridstrat_core::cost::StrategyParams;
use gridstrat_core::strategy::Strategy;
use gridstrat_sim::{Controller, GridSimulation, JobId, Notification, SimDuration};

/// Scope bit layout: `(user + 1) << 16 | epoch` — 16 bits of task epoch,
/// 16 bits of (1-based) user index, all within the engine's 32-bit scope.
const EPOCH_BITS: u32 = 16;
const EPOCH_MASK: u64 = (1 << EPOCH_BITS) - 1;
/// Reserved scope for the fleet's own task-arrival timers.
const ARRIVAL_SCOPE: u64 = u32::MAX as u64;

/// Encodes a `(user, epoch)` pair into an engine client scope.
fn user_scope(user: usize, epoch: u64) -> u64 {
    ((user as u64 + 1) << EPOCH_BITS) | (epoch & EPOCH_MASK)
}

/// Decodes an engine client scope back into `(user, epoch)`. Returns
/// `None` for the unscoped value `0` and the reserved arrival scope.
fn decode_user_scope(scope: u64) -> Option<(usize, u64)> {
    if scope == 0 || scope == ARRIVAL_SCOPE {
        return None;
    }
    let user = (scope >> EPOCH_BITS) as usize - 1;
    Some((user, scope & EPOCH_MASK))
}

/// A community of users sharing one grid engine.
///
/// Implements [`Controller`], so it runs through the ordinary
/// [`GridSimulation::run_controller`] loop; [`FleetController::collect`]
/// turns the finished run into a [`FleetRun`] metrics record.
pub struct FleetController {
    agents: Vec<UserAgent>,
    tasks_per_user: usize,
    exec: SimDuration,
    arrival: ArrivalProcess,
    /// Bit per engine job id, set for the start that completed a task
    /// (the "useful" starts; every other client start burned a slot
    /// redundantly). A plain bitset so [`FleetController::collect`] tests
    /// membership in O(1) without rebuilding a hash set per collect.
    winner_bits: Vec<u64>,
    /// Per-group streaming latency metrics, indexed by group id (`None`
    /// for groups the apportionment left without members).
    groups: Vec<Option<GroupStream>>,
    /// Expected client submissions over the whole run — the engine
    /// capacity pre-reservation hint.
    job_hint: usize,
}

/// Sets bit `id` in a growable bitset.
fn mark_winner(bits: &mut Vec<u64>, id: JobId) {
    let (word, bit) = ((id.0 / 64) as usize, id.0 % 64);
    if word >= bits.len() {
        bits.resize(word + 1, 0);
    }
    bits[word] |= 1 << bit;
}

/// Tests bit `id` of the bitset.
fn is_winner(bits: &[u64], id: JobId) -> bool {
    let (word, bit) = ((id.0 / 64) as usize, id.0 % 64);
    bits.get(word).is_some_and(|w| w >> bit & 1 == 1)
}

/// How many jobs one task of this strategy can have in flight — the
/// per-task factor of the submission-count hint.
fn burst_width(params: StrategyParams) -> usize {
    match params {
        StrategyParams::Single { .. } => 1,
        StrategyParams::Multiple { b, .. } => b as usize,
        StrategyParams::Delayed { .. } => 2,
        StrategyParams::DelayedMultiple { b, .. } => 2 * b as usize,
    }
}

impl FleetController {
    /// Builds a fleet from one assignment per user.
    ///
    /// `fleet_seed` roots every user's private RNG stream
    /// (`derive_seed(fleet_seed, user)` — see
    /// [`crate::agent::user_stream_seed`]). `group_window` bounds the
    /// per-group streaming-metrics window (see
    /// [`crate::mix::FleetConfig::group_window`]).
    pub fn new(
        assignments: &[Assignment],
        tasks_per_user: usize,
        task_exec_s: f64,
        arrival: ArrivalProcess,
        fleet_seed: u64,
        group_window: usize,
    ) -> Self {
        assert!(!assignments.is_empty(), "a fleet needs at least one user");
        assert!(
            assignments.len() <= MAX_USERS,
            "community size {} exceeds the {MAX_USERS}-user scope limit",
            assignments.len()
        );
        assert!(
            tasks_per_user as u64 <= EPOCH_MASK,
            "tasks_per_user must fit in the 16-bit epoch field"
        );
        assert!(group_window > 0, "group window must be positive");
        let n_groups = assignments.iter().map(|a| a.group + 1).max().unwrap_or(0);
        let mut groups: Vec<Option<GroupStream>> = vec![None; n_groups];
        let mut job_hint = 0usize;
        for a in assignments {
            groups[a.group]
                .get_or_insert_with(|| GroupStream::new(a.group, a.strategy, 0, group_window))
                .members += 1;
            job_hint += tasks_per_user * burst_width(a.strategy);
        }
        FleetController {
            agents: assignments
                .iter()
                .enumerate()
                .map(|(u, a)| UserAgent::new(u, *a, fleet_seed))
                .collect(),
            tasks_per_user,
            exec: SimDuration::from_secs(task_exec_s),
            arrival,
            winner_bits: Vec::new(),
            groups,
            job_hint,
        }
    }

    /// Rewinds the fleet to the state `new` would construct it in (with
    /// the given seed), keeping every allocation. A reset fleet drives a
    /// run **bit-identically** to a fresh one — the property the sweep's
    /// per-worker reuse relies on.
    pub fn reset(&mut self, fleet_seed: u64) {
        for (u, agent) in self.agents.iter_mut().enumerate() {
            agent.reset(u, fleet_seed);
        }
        self.winner_bits.iter_mut().for_each(|w| *w = 0);
        for g in self.groups.iter_mut().flatten() {
            g.clear();
        }
    }

    /// Number of users in the community.
    pub fn users(&self) -> usize {
        self.agents.len()
    }

    /// Tasks completed so far across the whole community.
    pub fn tasks_completed(&self) -> usize {
        self.agents.iter().map(|a| a.tasks_done).sum()
    }

    fn arm_arrival(&mut self, sim: &mut GridSimulation, user: usize, delay_s: f64) {
        sim.set_scope(ARRIVAL_SCOPE);
        sim.set_timer(SimDuration::from_secs(delay_s), user as u64);
        sim.set_scope(0);
    }

    /// Launches user `user`'s next task: rewinds the wrapped controller
    /// and lets it open its protocol under the task's `(user, epoch)`
    /// scope with the task's execution time as the default.
    fn launch(&mut self, sim: &mut GridSimulation, user: usize) {
        let exec = self.exec;
        let agent = &mut self.agents[user];
        debug_assert!(!agent.active, "launch while a task is in flight");
        agent.epoch = agent.tasks_done as u64;
        agent.active = true;
        agent.task_started_s = sim.now().as_secs();
        agent.task_job_floor = sim.jobs().len();
        agent.ctrl.reset();
        sim.set_scope(user_scope(user, agent.epoch));
        sim.set_default_exec(exec);
        agent.ctrl.start(sim);
        sim.set_default_exec(SimDuration::ZERO);
        sim.set_scope(0);
    }

    /// Routes one notification to the owning agent (if it is still about
    /// the agent's *current* task) and handles task completion.
    fn deliver(&mut self, sim: &mut GridSimulation, user: usize, epoch: u64, ev: Notification) {
        let exec = self.exec;
        let agent = &mut self.agents[user];
        if !agent.active || agent.epoch != epoch {
            return; // stale: an echo from an already-completed task
        }
        sim.set_scope(user_scope(user, epoch));
        sim.set_default_exec(exec);
        agent.ctrl.on_event(sim, ev);
        sim.set_default_exec(SimDuration::ZERO);
        sim.set_scope(0);
        let Some(j_abs) = agent.ctrl.total_latency() else {
            return;
        };
        // task complete: the wrapped controller reports the absolute start
        // instant of the winning job; task latency is measured from launch
        let task_latency = j_abs - agent.task_started_s;
        agent.latency.push(task_latency);
        agent.active = false;
        agent.tasks_done += 1;
        self.groups[self.agents[user].assignment.group]
            .as_mut()
            .expect("populated group for an active agent")
            .observe(task_latency);
        let agent = &mut self.agents[user];
        let more = agent.tasks_done < self.tasks_per_user;
        // adaptive users: harvest this task's own per-job outcomes (exact
        // latency for started jobs; abandoned waits only count as
        // censoring evidence when they reached the timeout — copies
        // cancelled early because the task won are protocol cleanup) and
        // re-tune every `retune_every` completed tasks
        if let (Some(cfg), Some(est)) = (agent.assignment.adaptive, agent.estimator.as_mut()) {
            let now = sim.now().as_secs();
            let scope = user_scope(user, epoch);
            let t_inf = gridstrat_core::adaptive::timeout_of(agent.params);
            for rec in &sim.jobs()[agent.task_job_floor..] {
                if rec.owner != scope
                    || !matches!(rec.origin, gridstrat_sim::job::JobOrigin::Client)
                {
                    continue;
                }
                match rec.started_at {
                    Some(st) => est.observe_started(st.since(rec.submitted_at).as_secs()),
                    None => {
                        let end = rec.terminated_at.map_or(now, |t| t.as_secs());
                        let waited = (end - rec.submitted_at.as_secs()).max(0.0);
                        if gridstrat_core::adaptive::is_timeout_censored(waited, t_inf) {
                            est.observe_censored(waited);
                        }
                    }
                }
            }
            if more && agent.tasks_done.is_multiple_of(cfg.retune_every) {
                let next = gridstrat_core::adaptive::retune_params(agent.params, est, &cfg);
                if next != agent.params {
                    agent.params = next;
                    agent.ctrl = next.build_controller();
                }
            }
        }
        let delay = if more {
            self.arrival.think_delay(&mut agent.rng)
        } else {
            0.0
        };
        if let Notification::JobStarted { id, .. } = ev {
            mark_winner(&mut self.winner_bits, id);
        }
        if more {
            self.arm_arrival(sim, user, delay);
        }
    }

    /// Measures the finished run: per-user outcomes plus the engine-level
    /// occupancy integrals the ecosystem metrics are computed from.
    pub fn collect(&self, sim: &GridSimulation) -> FleetRun {
        let makespan_s = sim.now().as_secs();
        let mut useful_busy_s = 0.0;
        let mut client_busy_s = 0.0;
        let mut total_busy_s = 0.0;
        for rec in sim.jobs() {
            let Some(start) = rec.started_at else {
                continue;
            };
            let end = rec
                .terminated_at
                .map_or(makespan_s, |t| t.as_secs())
                .min(makespan_s);
            let busy = (end - start.as_secs()).max(0.0);
            total_busy_s += busy;
            if matches!(rec.origin, gridstrat_sim::job::JobOrigin::Client) {
                client_busy_s += busy;
                if is_winner(&self.winner_bits, rec.id) {
                    useful_busy_s += busy;
                }
            }
        }
        let slots: usize = sim.config().sites.iter().map(|s| s.slots).sum();
        let run = FleetRun {
            users: self
                .agents
                .iter()
                .map(|a| UserOutcome {
                    group: a.assignment.group,
                    strategy: a.assignment.strategy,
                    tasks_done: a.tasks_done,
                    latency: a.latency,
                })
                .collect(),
            groups: self.groups.clone(),
            tasks_per_user: self.tasks_per_user,
            makespan_s,
            client_submitted: sim.stats().client_submitted,
            client_started: sim.stats().client_started,
            useful_busy_s,
            client_busy_s,
            total_busy_s,
            slot_capacity_s: slots as f64 * makespan_s,
        };
        // every completed task has exactly one started winner, so a run
        // collected from a consistent engine can never complete more tasks
        // than it started jobs — `FleetRun::wasted_starts` saturates only
        // for truncated records assembled outside this method
        debug_assert!(
            run.client_started >= run.tasks_completed() as u64,
            "collected run completed more tasks than it started jobs"
        );
        run
    }
}

impl Controller for FleetController {
    fn start(&mut self, sim: &mut GridSimulation) {
        // pre-reserve the engine's job table and event heap for the whole
        // community's expected protocol traffic (~6 pipeline events per
        // job), so a 100k-user run never grows them mid-flight
        sim.reserve(self.job_hint, self.job_hint.saturating_mul(6));
        for user in 0..self.agents.len() {
            let d = self.arrival.initial_delay(&mut self.agents[user].rng);
            self.arm_arrival(sim, user, d);
        }
    }

    fn on_event(&mut self, sim: &mut GridSimulation, ev: Notification) {
        match ev {
            Notification::Timer { token, at } => {
                let scope = token >> 32;
                let inner = token & u32::MAX as u64;
                if scope == ARRIVAL_SCOPE {
                    self.launch(sim, inner as usize);
                } else if let Some((user, epoch)) = decode_user_scope(scope) {
                    self.deliver(sim, user, epoch, Notification::Timer { token: inner, at });
                }
            }
            Notification::JobStarted { id, .. }
            | Notification::JobFinished { id, .. }
            | Notification::JobFailed { id, .. } => {
                if let Some((user, epoch)) = decode_user_scope(sim.job(id).owner) {
                    self.deliver(sim, user, epoch, ev);
                }
            }
        }
    }

    fn done(&self) -> bool {
        self.agents
            .iter()
            .all(|a| a.tasks_done >= self.tasks_per_user)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_roundtrip() {
        for user in [0usize, 1, 41, 59_999] {
            for epoch in [0u64, 1, 255, 65_535] {
                let s = user_scope(user, epoch);
                assert!(s <= u32::MAX as u64, "scope overflows 32 bits");
                assert_ne!(s, 0);
                assert_ne!(s, ARRIVAL_SCOPE);
                assert_eq!(decode_user_scope(s), Some((user, epoch)));
            }
        }
        assert_eq!(decode_user_scope(0), None);
        assert_eq!(decode_user_scope(ARRIVAL_SCOPE), None);
    }
}
