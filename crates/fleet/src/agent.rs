//! Per-user agents: a wrapped submission strategy plus a task-arrival
//! process and a private, deterministically-derived RNG stream.

use gridstrat_core::adaptive::AdaptiveConfig;
use gridstrat_core::cost::StrategyParams;
use gridstrat_core::executor::StrategyController;
use gridstrat_core::strategy::Strategy;
use gridstrat_stats::rng::derive_seed;
use gridstrat_stats::{StreamingEcdf, Summary};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How a user's tasks arrive over time.
///
/// Delays are sampled from the **user's own** RNG stream (see
/// [`user_stream_seed`]), so two fleets with the same seed produce the
/// same arrival history regardless of what any other user does.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// The next task is launched the instant the previous one completes
    /// (a closed-loop, saturating user). The first task launches at `t=0`.
    BackToBack,
    /// Exponentially-distributed think time with the given mean, both
    /// before the first task (desynchronising the community) and between
    /// consecutive tasks — the Poisson-ish per-user arrival shape the
    /// cluster-workload literature reports.
    ThinkTime {
        /// Mean think time, seconds.
        mean_s: f64,
    },
}

impl ArrivalProcess {
    /// Delay before this user's first task.
    pub(crate) fn initial_delay(self, rng: &mut StdRng) -> f64 {
        match self {
            ArrivalProcess::BackToBack => 0.0,
            ArrivalProcess::ThinkTime { mean_s } => exp_sample(rng, mean_s),
        }
    }

    /// Delay between a task completion and the next task's launch.
    pub(crate) fn think_delay(self, rng: &mut StdRng) -> f64 {
        match self {
            ArrivalProcess::BackToBack => 0.0,
            ArrivalProcess::ThinkTime { mean_s } => exp_sample(rng, mean_s),
        }
    }

    /// Validates the parameters.
    pub fn validate(&self) -> Result<(), String> {
        if let ArrivalProcess::ThinkTime { mean_s } = self {
            if !(mean_s.is_finite() && *mean_s >= 0.0) {
                return Err(format!("think time mean must be >= 0, got {mean_s}"));
            }
        }
        Ok(())
    }
}

fn exp_sample(rng: &mut StdRng, mean_s: f64) -> f64 {
    let u: f64 = 1.0 - rng.gen::<f64>();
    -u.ln() * mean_s
}

/// One user's strategy assignment within a fleet: the strategy instance it
/// plays, the mix group it reports under, and (optionally) an online
/// adaptation policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Assignment {
    /// The strategy this user starts every task sequence from.
    pub strategy: StrategyParams,
    /// Index of the reporting group (a [`crate::mix::StrategyMix`] group,
    /// or a candidate index in equilibrium search).
    pub group: usize,
    /// When set, the user re-tunes its timeouts from its own observed
    /// per-job outcomes every `retune_every` tasks (see
    /// [`gridstrat_core::adaptive`]). Fleet users have no analytic prior
    /// for the emergent pipeline law, so the
    /// [`RetunePolicy::ScaledPrior`](gridstrat_core::adaptive::RetunePolicy)
    /// policy degrades to the empirical-snapshot retune.
    pub adaptive: Option<AdaptiveConfig>,
}

/// The seed of user `u`'s private RNG stream inside a fleet seeded with
/// `fleet_seed`.
///
/// This layout is load-bearing: every published fleet experiment's arrival
/// history flows from it, so it is pinned by golden-vector tests — change
/// it only with a deliberate re-baselining.
pub fn user_stream_seed(fleet_seed: u64, user: usize) -> u64 {
    derive_seed(fleet_seed, user as u64)
}

/// One member of the community: a strategy-built controller, the user's
/// arrival RNG, and per-task progress bookkeeping.
pub(crate) struct UserAgent {
    pub(crate) assignment: Assignment,
    /// The parameters currently in effect — starts at
    /// `assignment.strategy`, moves when an adaptive retune fires.
    pub(crate) params: StrategyParams,
    pub(crate) ctrl: Box<dyn StrategyController>,
    pub(crate) rng: StdRng,
    /// Task index currently (or last) in flight; doubles as the timer/job
    /// epoch so events from finished tasks can never be misrouted.
    pub(crate) epoch: u64,
    pub(crate) active: bool,
    pub(crate) tasks_done: usize,
    pub(crate) task_started_s: f64,
    /// Engine job-table length at the current task's launch: the agent's
    /// jobs of this task all live at or beyond this index.
    pub(crate) task_job_floor: usize,
    /// Streaming summary of the user's task latencies — bounded memory,
    /// so a 100k-user community does not hold one `Vec<f64>` per user.
    pub(crate) latency: Summary,
    /// The adaptive user's own observation stream (`None` for plain
    /// users). Censoring threshold: the paper's 10 000 s probe cutoff.
    pub(crate) estimator: Option<StreamingEcdf>,
}

impl UserAgent {
    pub(crate) fn new(index: usize, assignment: Assignment, fleet_seed: u64) -> Self {
        let estimator = assignment.adaptive.map(|cfg| {
            cfg.validate().expect("valid adaptive assignment");
            StreamingEcdf::new(
                cfg.window,
                cfg.decay,
                gridstrat_workload::CENSOR_THRESHOLD_S,
            )
            .expect("validated adaptive config")
        });
        UserAgent {
            assignment,
            params: assignment.strategy,
            ctrl: assignment.strategy.build_controller(),
            rng: StdRng::seed_from_u64(user_stream_seed(fleet_seed, index)),
            epoch: 0,
            active: false,
            tasks_done: 0,
            task_started_s: 0.0,
            task_job_floor: 0,
            latency: Summary::new(),
            estimator,
        }
    }

    /// Rewinds the agent to its just-constructed state (bit-identically),
    /// keeping allocations. The fleet-level analogue of
    /// [`StrategyController::reset`].
    pub(crate) fn reset(&mut self, index: usize, fleet_seed: u64) {
        if self.params != self.assignment.strategy {
            // an adaptive run moved the parameters: rebuild the controller
            // for the initial instance (plain users keep theirs)
            self.params = self.assignment.strategy;
            self.ctrl = self.assignment.strategy.build_controller();
        } else {
            self.ctrl.reset();
        }
        self.rng = StdRng::seed_from_u64(user_stream_seed(fleet_seed, index));
        self.epoch = 0;
        self.active = false;
        self.tasks_done = 0;
        self.task_started_s = 0.0;
        self.task_job_floor = 0;
        self.latency = Summary::new();
        if let Some(est) = self.estimator.as_mut() {
            est.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_stream_seed_golden_vectors() {
        // The per-user derivation is derive_seed(fleet_seed, user): these
        // exact values pin the stream layout. If this test fails, every
        // recorded fleet experiment has been silently re-seeded.
        for (fleet_seed, user, want) in [
            (0x0u64, 0usize, 0x324E_D5A5_EE00_2454u64),
            (0x0, 1, 0x537C_1442_147D_2E7F),
            (0xF1EE7, 0, 0xC3C3_CCF0_20D4_FCC7),
            (0xF1EE7, 1, 0xB665_375C_CE91_7D20),
            (0xF1EE7, 41, 0xF85B_9927_B5FE_AC81),
        ] {
            assert_eq!(
                user_stream_seed(fleet_seed, user),
                want,
                "user_stream_seed({fleet_seed:#X}, {user}) drifted"
            );
        }
    }

    #[test]
    fn back_to_back_has_zero_delays() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(ArrivalProcess::BackToBack.initial_delay(&mut rng), 0.0);
        assert_eq!(ArrivalProcess::BackToBack.think_delay(&mut rng), 0.0);
    }

    #[test]
    fn think_time_is_deterministic_per_stream() {
        let draw = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let p = ArrivalProcess::ThinkTime { mean_s: 120.0 };
            (p.initial_delay(&mut rng), p.think_delay(&mut rng))
        };
        assert_eq!(draw(5), draw(5));
        assert_ne!(draw(5), draw(6));
        let (a, b) = draw(5);
        assert!(a >= 0.0 && b >= 0.0);
    }

    #[test]
    fn think_time_mean_is_roughly_right() {
        let mut rng = StdRng::seed_from_u64(9);
        let p = ArrivalProcess::ThinkTime { mean_s: 200.0 };
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| p.think_delay(&mut rng)).sum();
        let mean = sum / n as f64;
        assert!((mean - 200.0).abs() < 10.0, "mean {mean}");
    }

    #[test]
    fn validates_parameters() {
        assert!(ArrivalProcess::BackToBack.validate().is_ok());
        assert!(ArrivalProcess::ThinkTime { mean_s: 10.0 }
            .validate()
            .is_ok());
        assert!(ArrivalProcess::ThinkTime { mean_s: -1.0 }
            .validate()
            .is_err());
        assert!(ArrivalProcess::ThinkTime { mean_s: f64::NAN }
            .validate()
            .is_err());
    }
}
