//! Population descriptions: weighted strategy mixes and the shared fleet
//! configuration a sweep cell is instantiated from.

use crate::agent::{ArrivalProcess, Assignment};
use gridstrat_core::adaptive::AdaptiveConfig;
use gridstrat_core::cost::StrategyParams;
use gridstrat_core::strategy::DelayedResubmission;
use gridstrat_sim::{GridConfig, SiteConfig};

/// Maximum community size one fleet engine supports (bounded by the
/// 16-bit user field of the scope encoding in [`crate::controller`]).
/// Larger communities are partitioned across engine shards — see
/// [`crate::ShardedFleet`].
pub const MAX_USERS: usize = 60_000;

/// Largest-remainder apportionment of `total` indivisible seats across
/// non-negative `weights` (which need not be normalised but must have a
/// positive, finite sum). Deterministic: remainder ties are broken by
/// index, so the same weights always yield the same counts. Used both for
/// strategy-mix population counts ([`StrategyMix::counts`]) and for
/// splitting a farm's worker slots across engine shards
/// ([`crate::ShardedFleet`]).
pub fn apportion(total: usize, weights: &[f64]) -> Vec<usize> {
    assert!(
        !weights.is_empty(),
        "apportionment needs at least one seat-holder"
    );
    let wsum: f64 = weights.iter().sum();
    assert!(
        wsum.is_finite() && wsum > 0.0 && weights.iter().all(|w| *w >= 0.0),
        "apportionment weights must be non-negative with a positive sum"
    );
    let quotas: Vec<f64> = weights.iter().map(|w| total as f64 * w / wsum).collect();
    let mut counts: Vec<usize> = quotas.iter().map(|q| q.floor() as usize).collect();
    let assigned: usize = counts.iter().sum();
    // hand the remaining seats to the largest fractional remainders
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&a, &b| {
        let ra = quotas[a] - quotas[a].floor();
        let rb = quotas[b] - quotas[b].floor();
        rb.partial_cmp(&ra)
            .expect("finite remainders")
            .then(a.cmp(&b))
    });
    for &g in order.iter().take(total - assigned) {
        counts[g] += 1;
    }
    counts
}

/// One component of a [`StrategyMix`]: a strategy instance and the
/// fraction of the community playing it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StrategyGroup {
    /// The strategy every user of this group executes.
    pub strategy: StrategyParams,
    /// Relative weight (need not be normalised; must be non-negative).
    pub weight: f64,
    /// When set, this group's users adapt online: each re-tunes its own
    /// timeouts from its own observed job outcomes every `retune_every`
    /// tasks (see [`gridstrat_core::adaptive`]).
    pub adaptive: Option<AdaptiveConfig>,
}

impl StrategyGroup {
    /// A plain (non-adapting) group.
    pub fn new(strategy: StrategyParams, weight: f64) -> Self {
        StrategyGroup {
            strategy,
            weight,
            adaptive: None,
        }
    }

    /// An online-adapting group.
    pub fn adaptive(strategy: StrategyParams, weight: f64, config: AdaptiveConfig) -> Self {
        StrategyGroup {
            strategy,
            weight,
            adaptive: Some(config),
        }
    }
}

/// A heterogeneous population: named fractions of single / multiple /
/// delayed users, each with its own parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyMix {
    /// Mix label (appears in sweep outcomes and report tables).
    pub name: String,
    /// The component groups.
    pub groups: Vec<StrategyGroup>,
}

impl StrategyMix {
    /// A mix with explicit weights; weights must be non-negative with a
    /// positive sum.
    pub fn new(name: impl Into<String>, groups: Vec<StrategyGroup>) -> Self {
        let mix = StrategyMix {
            name: name.into(),
            groups,
        };
        mix.validate().expect("valid strategy mix");
        mix
    }

    /// The homogeneous mix: everyone plays `strategy`.
    pub fn pure(name: impl Into<String>, strategy: StrategyParams) -> Self {
        StrategyMix::new(name, vec![StrategyGroup::new(strategy, 1.0)])
    }

    /// Checks weights and strategy feasibility.
    pub fn validate(&self) -> Result<(), String> {
        if self.groups.is_empty() {
            return Err("a strategy mix needs at least one group".into());
        }
        let mut total = 0.0;
        for (i, g) in self.groups.iter().enumerate() {
            if !(g.weight.is_finite() && g.weight >= 0.0) {
                return Err(format!("group {i}: weight must be >= 0, got {}", g.weight));
            }
            total += g.weight;
            if let StrategyParams::Delayed { t0, t_inf }
            | StrategyParams::DelayedMultiple { t0, t_inf, .. } = g.strategy
            {
                if !DelayedResubmission::feasible(t0, t_inf) {
                    return Err(format!(
                        "group {i}: infeasible delayed pair ({t0}, {t_inf})"
                    ));
                }
            }
            if let Some(cfg) = &g.adaptive {
                cfg.validate().map_err(|e| format!("group {i}: {e}"))?;
            }
        }
        if total <= 0.0 || !total.is_finite() {
            return Err("mix weights must sum to a positive value".into());
        }
        Ok(())
    }

    /// Number of users of each group in a community of `users`, by
    /// largest-remainder [`apportion`]ment (deterministic; ties broken by
    /// group index, so the same mix always yields the same counts).
    pub fn counts(&self, users: usize) -> Vec<usize> {
        let weights: Vec<f64> = self.groups.iter().map(|g| g.weight).collect();
        apportion(users, &weights)
    }

    /// Expands the mix into one [`Assignment`] per user (group-major
    /// blocks, deterministic).
    pub fn assignments(&self, users: usize) -> Vec<Assignment> {
        let counts = self.counts(users);
        let mut out = Vec::with_capacity(users);
        for (group, (g, &n)) in self.groups.iter().zip(&counts).enumerate() {
            out.extend(std::iter::repeat_n(
                Assignment {
                    strategy: g.strategy,
                    group,
                    adaptive: g.adaptive,
                },
                n,
            ));
        }
        out
    }
}

/// The per-cell-invariant part of a fleet experiment: the shared farm, the
/// per-user workload shape, and the Monte-Carlo bookkeeping. Community
/// size, strategy mix and grid scenario are supplied per run (they are the
/// sweep axes).
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// The shared grid (must be pipeline mode — the whole point is that
    /// the community's jobs contend for the same slots).
    pub grid: GridConfig,
    /// Tasks every user must complete.
    pub tasks_per_user: usize,
    /// Execution time one task holds a worker slot for, seconds.
    pub task_exec_s: f64,
    /// Task-arrival process of every user.
    pub arrival: ArrivalProcess,
    /// Independent community replications per sweep cell.
    pub replications: usize,
    /// Master seed of the whole experiment.
    pub seed: u64,
    /// Sliding-window capacity of the per-group streaming latency metrics
    /// (most recent task latencies kept for ECDFs and quantiles). Bounds
    /// metric memory at `O(groups × group_window)` regardless of how many
    /// tasks the community completes.
    pub group_window: usize,
}

impl FleetConfig {
    /// A scarce shared farm of `slots` worker slots with EGEE-like
    /// middleware delays, a ~1-minute cancellation round-trip (so
    /// redundant burst copies can start anyway — the waste mechanism),
    /// mild silent loss, and no non-community background traffic.
    pub fn small_farm(slots: usize) -> Self {
        let mut grid = GridConfig::pipeline_default();
        grid.sites = vec![SiteConfig {
            name: "shared-farm".into(),
            slots,
            weight: 1.0,
        }];
        grid.background = None;
        grid.faults.p_silent_loss = 0.03;
        grid.faults.p_transient_failure = 0.0;
        grid.wms.cancellation_delay_mean_s = 60.0;
        FleetConfig {
            grid,
            tasks_per_user: 5,
            task_exec_s: 600.0,
            arrival: ArrivalProcess::BackToBack,
            replications: 3,
            seed: 0xF1EE7,
            group_window: 4096,
        }
    }

    /// Validates the configuration (pipeline grid, sane workload shape).
    pub fn validate(&self) -> Result<(), String> {
        self.grid.validate()?;
        if !matches!(self.grid.latency, gridstrat_sim::LatencyMode::Pipeline) {
            return Err("fleet experiments require a pipeline-mode grid".into());
        }
        if self.tasks_per_user == 0 {
            return Err("tasks_per_user must be at least 1".into());
        }
        if !(self.task_exec_s.is_finite() && self.task_exec_s >= 0.0) {
            return Err(format!(
                "task_exec_s must be >= 0, got {}",
                self.task_exec_s
            ));
        }
        if self.replications == 0 {
            return Err("at least one replication is required".into());
        }
        if self.group_window == 0 {
            return Err("group metric window must hold at least one latency".into());
        }
        self.arrival.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(t_inf: f64) -> StrategyParams {
        StrategyParams::Single { t_inf }
    }

    #[test]
    fn apportion_is_exact_and_deterministic() {
        // the shard-slot path: equal weights split a farm evenly, with
        // earlier shards taking the remainder seats
        assert_eq!(apportion(30, &[1.0, 1.0, 1.0]), vec![10, 10, 10]);
        assert_eq!(apportion(31, &[1.0, 1.0, 1.0]), vec![11, 10, 10]);
        assert_eq!(apportion(2, &[0.5, 0.2, 0.3]), vec![1, 0, 1]);
        for total in [0usize, 1, 7, 100, 4001] {
            let c = apportion(total, &[3.0, 1.0, 2.5, 0.0]);
            assert_eq!(c.iter().sum::<usize>(), total, "total {total}");
            assert_eq!(c[3], 0, "zero weight never seats anyone");
        }
    }

    #[test]
    fn counts_apportion_exactly() {
        let mix = StrategyMix::new(
            "m",
            vec![
                StrategyGroup {
                    strategy: s(700.0),
                    weight: 1.0,
                    adaptive: None,
                },
                StrategyGroup {
                    strategy: StrategyParams::Multiple { b: 2, t_inf: 800.0 },
                    weight: 1.0,
                    adaptive: None,
                },
                StrategyGroup {
                    strategy: StrategyParams::Delayed {
                        t0: 400.0,
                        t_inf: 560.0,
                    },
                    weight: 1.0,
                    adaptive: None,
                },
            ],
        );
        for users in [1usize, 2, 3, 7, 40, 100] {
            let counts = mix.counts(users);
            assert_eq!(counts.iter().sum::<usize>(), users, "users {users}");
        }
        // exact thirds
        assert_eq!(mix.counts(9), vec![3, 3, 3]);
        // largest remainder: 7/3 = 2.33 each, first ties win the extra seat
        assert_eq!(mix.counts(7), vec![3, 2, 2]);
    }

    #[test]
    fn assignments_are_group_major() {
        let mix = StrategyMix::new(
            "m",
            vec![
                StrategyGroup {
                    strategy: s(700.0),
                    weight: 3.0,
                    adaptive: None,
                },
                StrategyGroup {
                    strategy: s(900.0),
                    weight: 1.0,
                    adaptive: None,
                },
            ],
        );
        let a = mix.assignments(4);
        assert_eq!(a.len(), 4);
        assert_eq!(a[0].group, 0);
        assert_eq!(a[2].group, 0);
        assert_eq!(a[3].group, 1);
        assert_eq!(a[3].strategy, s(900.0));
    }

    #[test]
    fn pure_mix_is_one_group() {
        let m = StrategyMix::pure("all-single", s(700.0));
        assert_eq!(m.counts(11), vec![11]);
    }

    #[test]
    fn rejects_bad_mixes() {
        assert!(StrategyMix {
            name: "empty".into(),
            groups: vec![]
        }
        .validate()
        .is_err());
        assert!(StrategyMix {
            name: "zero".into(),
            groups: vec![StrategyGroup {
                strategy: s(700.0),
                weight: 0.0,
                adaptive: None,
            }]
        }
        .validate()
        .is_err());
        assert!(StrategyMix {
            name: "infeasible".into(),
            groups: vec![StrategyGroup {
                strategy: StrategyParams::Delayed {
                    t0: 100.0,
                    t_inf: 50.0
                },
                weight: 1.0,
                adaptive: None,
            }]
        }
        .validate()
        .is_err());
    }

    #[test]
    fn small_farm_config_validates() {
        assert!(FleetConfig::small_farm(30).validate().is_ok());
        let mut bad = FleetConfig::small_farm(30);
        bad.tasks_per_user = 0;
        assert!(bad.validate().is_err());
        let mut oracle = FleetConfig::small_farm(30);
        oracle.grid = GridConfig::oracle(
            gridstrat_workload::WeekModel::calibrate("w", 500.0, 700.0, 0.1, 50.0, 1e4).unwrap(),
        );
        assert!(oracle.validate().is_err(), "oracle grids must be rejected");
    }
}
