//! Sharded community execution: one fleet partitioned across `S`
//! independent engine shards, coupled through per-epoch background-load
//! exchange.
//!
//! A single [`FleetController`] engine tops out at
//! [`MAX_USERS`](crate::mix::MAX_USERS) users (the 16-bit user field of
//! the scope encoding) and, more practically, at whatever one
//! discrete-event loop can chew through. [`ShardedFleet`] scales past
//! both by splitting the community and the farm:
//!
//! * **users** are apportioned evenly across shards (largest remainder,
//!   [`apportion`]); each shard instantiates its own slice of the
//!   strategy mix, so every shard is a miniature of the community;
//! * **worker slots** are apportioned per site proportionally to each
//!   shard's user count, so per-user contention is preserved;
//! * **randomness**: shard `k` of replication seed `r` runs on
//!   [`shard_seed`]`(r, k)` — shard 0 continues the unsharded stream,
//!   which is what makes `shards = 1` **bit-identical** to running the
//!   plain [`FleetController`];
//! * **coupling**: shards are not fully independent. Every `epoch_s`
//!   simulated seconds each shard measures its busy fraction; the next
//!   epoch, every other shard receives `coupling × (foreign busy
//!   fraction) × slots × epoch` slot-seconds of injected background load
//!   ([`gridstrat_sim::GridSimulation::inject_background`]), spread
//!   evenly over the epoch. One hot shard therefore raises everyone's
//!   queueing, the first-order effect a partitioned farm loses.
//!
//! # Determinism contract (pinned by `tests/shard.rs`)
//!
//! * `shards = 1` ⇒ bit-identical to [`FleetController`] via
//!   [`crate::run_cell`]: same seeds, same code path, no epoch stepping.
//! * Any fixed shard count ⇒ bit-identical across thread counts and
//!   across per-worker engine reuse: shards within a replication run
//!   sequentially in shard order; rayon parallelism stays at the
//!   replication level with index-derived seeds.

use crate::agent::Assignment;
use crate::controller::FleetController;
use crate::metrics::{FleetCellOutcome, FleetRun};
use crate::mix::{apportion, FleetConfig, StrategyMix, MAX_USERS};
use crate::sweep::FLEET_STREAM;
use gridstrat_core::executor::GridScenario;
use gridstrat_sim::{Controller, GridConfig, GridSimulation, SimDuration, SimTime};
use gridstrat_stats::rng::derive_seed;
use rayon::prelude::*;
use std::sync::Arc;

/// Engine seed of shard `k` within a replication seeded `rep_seed`.
///
/// Shard 0 **continues the unsharded stream** (`shard_seed(r, 0) == r`),
/// so a 1-shard community replays exactly the history the plain
/// [`FleetController`] path produces; every further shard gets an
/// independent `derive_seed` stream. Load-bearing layout — change only
/// with a deliberate re-baselining of recorded sharded experiments.
pub fn shard_seed(rep_seed: u64, shard: usize) -> u64 {
    if shard == 0 {
        rep_seed
    } else {
        derive_seed(rep_seed, shard as u64)
    }
}

/// A community partitioned across `shards` engine shards (see the module
/// docs for the partitioning and coupling model).
#[derive(Debug, Clone)]
pub struct ShardedFleet {
    /// Shared per-cell configuration (farm, workload shape, replications,
    /// master seed, metric window).
    pub config: FleetConfig,
    /// The population's strategy mix (instantiated per shard).
    pub mix: StrategyMix,
    /// Community size across all shards.
    pub users: usize,
    /// Number of engine shards.
    pub shards: usize,
    /// Grid-condition overlay applied to the configured farm.
    pub scenario: GridScenario,
    /// Cross-shard coupling epoch, simulated seconds.
    pub epoch_s: f64,
    /// Fraction of the foreign busy fraction injected as background load
    /// (`0` decouples the shards entirely).
    pub coupling: f64,
}

/// Per-shard instantiation of a sharded cell: grids, populations and slot
/// counts, shared by every replication.
struct ShardPlan {
    grids: Vec<Arc<GridConfig>>,
    assignments: Vec<Vec<Assignment>>,
    slots: Vec<usize>,
    horizon_s: f64,
}

/// Reusable per-worker state: one engine + fleet pair per shard, rewound
/// in place between replications.
type ShardWorkers = Vec<(GridSimulation, FleetController)>;

impl ShardedFleet {
    /// Builds a sharded community with the default coupling (1-hour
    /// epochs, full-strength exchange). Panics on invalid shapes — the
    /// same contract as [`crate::FleetSweep::new`].
    pub fn new(
        config: FleetConfig,
        mix: StrategyMix,
        users: usize,
        shards: usize,
        scenario: GridScenario,
    ) -> Self {
        let sharded = ShardedFleet {
            config,
            mix,
            users,
            shards,
            scenario,
            epoch_s: 3_600.0,
            coupling: 1.0,
        };
        sharded.validate().expect("valid sharded fleet");
        sharded
    }

    /// Checks the partitioning shape on top of the fleet/mix validation.
    pub fn validate(&self) -> Result<(), String> {
        self.config.validate()?;
        self.mix.validate()?;
        if self.shards == 0 {
            return Err("a sharded fleet needs at least one shard".into());
        }
        if self.users < self.shards {
            return Err(format!(
                "cannot spread {} users over {} shards",
                self.users, self.shards
            ));
        }
        let per_shard = self.users.div_ceil(self.shards);
        if per_shard > MAX_USERS {
            return Err(format!(
                "{} users per shard exceeds the {MAX_USERS}-user engine limit; \
                 use at least {} shards",
                per_shard,
                self.users.div_ceil(MAX_USERS)
            ));
        }
        let slots: usize = self.config.grid.sites.iter().map(|s| s.slots).sum();
        if slots < self.shards {
            return Err(format!(
                "{slots} worker slots cannot be split across {} shards",
                self.shards
            ));
        }
        // total slots >= shards is necessary but not sufficient: slots are
        // apportioned per *site*, and remainder ties always seat low-index
        // shards, so a grid of many small sites (e.g. 4 sites x 1 slot
        // over 3 shards) can still starve a late shard. Check the actual
        // per-shard totals the plan will produce. (GridScenario overlays
        // scale faults/latency, never site slots, so checking the base
        // grid is exact.)
        if self.shards > 1 {
            let totals = self.shard_slot_totals();
            if let Some(k) = totals.iter().position(|&t| t == 0) {
                return Err(format!(
                    "per-site slot apportionment starves shard {k} \
                     (site slot counts {:?} over {} shards); use fewer \
                     shards or coarser sites",
                    self.config
                        .grid
                        .sites
                        .iter()
                        .map(|s| s.slots)
                        .collect::<Vec<_>>(),
                    self.shards
                ));
            }
        }
        if !(self.epoch_s.is_finite() && self.epoch_s > 0.0) {
            return Err(format!("epoch must be positive, got {}", self.epoch_s));
        }
        if !(self.coupling.is_finite() && self.coupling >= 0.0) {
            return Err(format!("coupling must be >= 0, got {}", self.coupling));
        }
        Ok(())
    }

    /// User counts per shard and the matching apportionment weights.
    fn shard_user_weights(&self) -> (Vec<usize>, Vec<f64>) {
        let user_counts = apportion(self.users, &vec![1.0; self.shards]);
        let weights = user_counts.iter().map(|&n| n as f64).collect();
        (user_counts, weights)
    }

    /// Total worker slots each shard would receive from the per-site
    /// apportionment — shared by [`ShardedFleet::validate`] (reject
    /// starved shards) and [`ShardedFleet::plan`] (build them).
    fn shard_slot_totals(&self) -> Vec<usize> {
        let (_, weights) = self.shard_user_weights();
        let mut totals = vec![0usize; self.shards];
        for site in &self.config.grid.sites {
            for (k, a) in apportion(site.slots, &weights).iter().enumerate() {
                totals[k] += a;
            }
        }
        totals
    }

    /// Builds the per-shard grids and populations.
    fn plan(&self) -> ShardPlan {
        let base = self.scenario.apply_grid(&self.config.grid);
        if self.shards == 1 {
            // the unsharded fast path must see the *identical* grid a
            // plain fleet run would (no rebuild round-trips)
            return ShardPlan {
                horizon_s: base.horizon.as_secs(),
                grids: vec![Arc::new(base)],
                assignments: vec![self.mix.assignments(self.users)],
                slots: vec![self.config.grid.sites.iter().map(|s| s.slots).sum()],
            };
        }
        let (user_counts, weights) = self.shard_user_weights();
        // split every site's slots across shards proportionally to the
        // shard populations, so per-user contention is preserved
        let per_site: Vec<Vec<usize>> = base
            .sites
            .iter()
            .map(|s| apportion(s.slots, &weights))
            .collect();
        let total_slots: usize = base.sites.iter().map(|s| s.slots).sum();
        let horizon_s = base.horizon.as_secs();
        let mut grids = Vec::with_capacity(self.shards);
        let mut assignments = Vec::with_capacity(self.shards);
        let mut slots = Vec::with_capacity(self.shards);
        for k in 0..self.shards {
            let mut grid = base.clone();
            grid.sites = base
                .sites
                .iter()
                .zip(&per_site)
                .filter(|(_, alloc)| alloc[k] > 0)
                .map(|(s, alloc)| {
                    let mut site = s.clone();
                    // selection weight scales with the allocated share
                    site.weight = s.weight * alloc[k] as f64 / s.slots as f64;
                    site.slots = alloc[k];
                    site
                })
                .collect();
            let shard_slots: usize = grid.sites.iter().map(|s| s.slots).sum();
            // validate() already rejected starved shards via the same
            // shard_slot_totals() apportionment
            debug_assert!(shard_slots > 0, "starved shard {k} survived validate()");
            // non-community background traffic scales with the slot share
            if let Some(bg) = &mut grid.background {
                bg.arrival_rate_per_s *= shard_slots as f64 / total_slots as f64;
            }
            grids.push(Arc::new(grid));
            assignments.push(self.mix.assignments(user_counts[k]));
            slots.push(shard_slots);
        }
        ShardPlan {
            grids,
            assignments,
            slots,
            horizon_s,
        }
    }

    fn build_workers(&self, plan: &ShardPlan, rep_seed: u64) -> ShardWorkers {
        (0..self.shards)
            .map(|k| {
                let engine_seed = shard_seed(rep_seed, k);
                let sim = GridSimulation::new(Arc::clone(&plan.grids[k]), engine_seed)
                    .expect("sharded grids are validated at plan time");
                let fleet = FleetController::new(
                    &plan.assignments[k],
                    self.config.tasks_per_user,
                    self.config.task_exec_s,
                    self.config.arrival,
                    derive_seed(engine_seed, FLEET_STREAM),
                    self.config.group_window,
                );
                (sim, fleet)
            })
            .collect()
    }

    fn rewind_workers(workers: &mut ShardWorkers, rep_seed: u64) {
        for (k, (sim, fleet)) in workers.iter_mut().enumerate() {
            let engine_seed = shard_seed(rep_seed, k);
            sim.reset(engine_seed);
            fleet.reset(derive_seed(engine_seed, FLEET_STREAM));
        }
    }

    /// Drives one replication on prepared workers and merges the shard
    /// runs into one community-level [`FleetRun`].
    fn run_rep(&self, plan: &ShardPlan, workers: &mut ShardWorkers) -> FleetRun {
        if self.shards == 1 {
            // same code path as FleetWorker / run_population: S = 1 is
            // bit-identical to the plain FleetController by construction
            let (sim, fleet) = &mut workers[0];
            sim.run_controller(fleet);
            return fleet.collect(sim);
        }
        for (sim, fleet) in workers.iter_mut() {
            sim.start_controller(fleet);
        }
        let exec = self.config.task_exec_s;
        let mut prev_started = vec![0u64; self.shards];
        let mut busy = vec![0.0f64; self.shards];
        let mut t_end = 0.0f64;
        while workers.iter().any(|(_, f)| !f.done()) && t_end < plan.horizon_s {
            t_end += self.epoch_s;
            let until = SimTime::from_secs(t_end);
            for (k, (sim, fleet)) in workers.iter_mut().enumerate() {
                if !fleet.done() {
                    sim.step_controller_until(fleet, until);
                }
                // epoch busy-fraction estimate: starts this epoch × the
                // community task length over the shard's capacity
                let stats = sim.stats();
                let started = stats.client_started + stats.background_started;
                busy[k] = ((started - prev_started[k]) as f64 * exec
                    / (plan.slots[k] as f64 * self.epoch_s))
                    .min(1.0);
                prev_started[k] = started;
            }
            if self.coupling > 0.0 && exec > 0.0 {
                for (k, (sim, fleet)) in workers.iter_mut().enumerate() {
                    if fleet.done() {
                        continue;
                    }
                    // slot-weighted mean busy fraction of the *other* shards
                    let (mut num, mut den) = (0.0f64, 0.0f64);
                    for (j, b) in busy.iter().enumerate() {
                        if j != k {
                            num += b * plan.slots[j] as f64;
                            den += plan.slots[j] as f64;
                        }
                    }
                    if den <= 0.0 {
                        continue;
                    }
                    let foreign = num / den;
                    let inject_slot_s =
                        self.coupling * foreign * plan.slots[k] as f64 * self.epoch_s;
                    let n = (inject_slot_s / exec).floor() as usize;
                    for i in 0..n {
                        // spread evenly over the next epoch
                        let at = t_end + (i as f64 + 0.5) * self.epoch_s / n as f64;
                        sim.inject_background(SimTime::from_secs(at), SimDuration::from_secs(exec));
                    }
                }
            }
        }
        merge_shard_runs(
            workers.iter().map(|(sim, fleet)| fleet.collect(sim)),
            self.config.tasks_per_user,
        )
    }

    /// Runs one replication from scratch (no worker reuse) — the
    /// deterministic single-run entry point tests and examples use.
    pub fn run_replication(&self, rep: usize) -> FleetRun {
        self.validate().expect("valid sharded fleet");
        assert!(rep < self.config.replications, "replication out of range");
        let plan = self.plan();
        let rep_seed = derive_seed(derive_seed(self.config.seed, 0), rep as u64);
        let mut workers = self.build_workers(&plan, rep_seed);
        self.run_rep(&plan, &mut workers)
    }

    /// Evaluates every replication in one parallel pass (per-worker
    /// engine/fleet reuse, bit-identical for any thread count) and
    /// aggregates them into a cell outcome.
    ///
    /// Seed layout mirrors [`crate::run_cell`]'s single-cell sweep
    /// (`rep_seed = derive_seed(derive_seed(master, 0), rep)`), so a
    /// 1-shard `ShardedFleet` reproduces `run_cell` bit-for-bit.
    pub fn run(&self) -> FleetCellOutcome {
        self.validate().expect("valid sharded fleet");
        let plan = self.plan();
        let plan_ref = &plan;
        let cell_seed = derive_seed(self.config.seed, 0);
        let runs: Vec<FleetRun> = (0..self.config.replications)
            .into_par_iter()
            .map_init(
                || None::<ShardWorkers>,
                move |slot, rep| {
                    let rep_seed = derive_seed(cell_seed, rep as u64);
                    match slot {
                        Some(workers) => Self::rewind_workers(workers, rep_seed),
                        None => *slot = Some(self.build_workers(plan_ref, rep_seed)),
                    }
                    self.run_rep(plan_ref, slot.as_mut().expect("workers just installed"))
                },
            )
            .collect();
        FleetCellOutcome::aggregate(
            self.mix.name.clone(),
            self.users,
            self.scenario.name.clone(),
            &runs,
        )
    }
}

/// Folds per-shard runs (in shard order) into one community-level record:
/// users concatenate in global order, counters and occupancy integrals
/// add up, group streams merge (exact moments, replayed windows), and the
/// community makespan is the slowest shard's.
fn merge_shard_runs(runs: impl IntoIterator<Item = FleetRun>, tasks_per_user: usize) -> FleetRun {
    let mut merged: Option<FleetRun> = None;
    for run in runs {
        match &mut merged {
            None => merged = Some(run),
            Some(m) => {
                m.users.extend(run.users);
                if run.groups.len() > m.groups.len() {
                    m.groups.resize_with(run.groups.len(), || None);
                }
                for (g, stream) in run.groups.into_iter().enumerate() {
                    let Some(stream) = stream else { continue };
                    match &mut m.groups[g] {
                        Some(pooled) => pooled.merge(&stream),
                        slot @ None => *slot = Some(stream),
                    }
                }
                m.makespan_s = m.makespan_s.max(run.makespan_s);
                m.client_submitted += run.client_submitted;
                m.client_started += run.client_started;
                m.useful_busy_s += run.useful_busy_s;
                m.client_busy_s += run.client_busy_s;
                m.total_busy_s += run.total_busy_s;
                // each shard offered its own slots until its own end
                m.slot_capacity_s += run.slot_capacity_s;
            }
        }
    }
    let mut merged = merged.expect("at least one shard");
    merged.tasks_per_user = tasks_per_user;
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_seed_contract() {
        // shard 0 continues the unsharded stream; shards > 0 are
        // independent derive_seed streams (derive_seed itself is pinned
        // by golden vectors in gridstrat-stats)
        for seed in [0u64, 0xF1EE7, u64::MAX] {
            assert_eq!(shard_seed(seed, 0), seed);
            for k in [1usize, 2, 7] {
                assert_eq!(shard_seed(seed, k), derive_seed(seed, k as u64));
                assert_ne!(shard_seed(seed, k), seed);
            }
        }
    }

    #[test]
    fn plan_partitions_users_and_slots() {
        let mut cfg = FleetConfig::small_farm(30);
        cfg.tasks_per_user = 1;
        let mix = StrategyMix::pure(
            "all-single",
            gridstrat_core::cost::StrategyParams::Single { t_inf: 3_000.0 },
        );
        let sharded = ShardedFleet::new(cfg, mix, 10, 3, GridScenario::baseline());
        let plan = sharded.plan();
        assert_eq!(plan.slots, vec![12, 9, 9], "slots follow user counts");
        let users: Vec<usize> = plan.assignments.iter().map(Vec::len).collect();
        assert_eq!(users, vec![4, 3, 3]);
    }

    #[test]
    fn rejects_bad_shapes() {
        let cfg = FleetConfig::small_farm(4);
        let mix = StrategyMix::pure(
            "all-single",
            gridstrat_core::cost::StrategyParams::Single { t_inf: 3_000.0 },
        );
        let base = ShardedFleet::new(cfg, mix, 10, 2, GridScenario::baseline());
        let mut more_shards_than_users = base.clone();
        more_shards_than_users.shards = 11;
        assert!(more_shards_than_users.validate().is_err());
        let mut more_shards_than_slots = base.clone();
        more_shards_than_slots.shards = 5;
        more_shards_than_slots.users = 50;
        assert!(more_shards_than_slots.validate().is_err());
        let mut too_many_users_per_shard = base.clone();
        too_many_users_per_shard.users = 2 * MAX_USERS + 1;
        assert!(too_many_users_per_shard.validate().is_err());
        let mut bad_epoch = base.clone();
        bad_epoch.epoch_s = 0.0;
        assert!(bad_epoch.validate().is_err());
        let mut bad_coupling = base;
        bad_coupling.coupling = f64::NAN;
        assert!(bad_coupling.validate().is_err());
    }

    #[test]
    fn rejects_per_site_starvation_even_when_total_slots_suffice() {
        // regression: 4 sites x 1 slot over 3 shards passes the total
        // check (4 >= 3), but every site's lone slot goes to shard 0 on
        // remainder ties... per-site apportionment must be validated, not
        // asserted at plan time
        let mut cfg = FleetConfig::small_farm(4);
        cfg.grid.sites = (0..4)
            .map(|i| gridstrat_sim::SiteConfig {
                name: format!("tiny-{i}"),
                slots: 1,
                weight: 1.0,
            })
            .collect();
        let mix = StrategyMix::pure(
            "all-single",
            gridstrat_core::cost::StrategyParams::Single { t_inf: 3_000.0 },
        );
        let sharded = ShardedFleet {
            config: cfg,
            mix,
            users: 6,
            shards: 3,
            scenario: GridScenario::baseline(),
            epoch_s: 3_600.0,
            coupling: 1.0,
        };
        let err = sharded.validate().unwrap_err();
        assert!(err.contains("starves shard"), "got: {err}");
        // one coarse site splits fine at the same shape
        let mut ok = sharded.clone();
        ok.config.grid.sites = vec![gridstrat_sim::SiteConfig {
            name: "farm".into(),
            slots: 4,
            weight: 1.0,
        }];
        assert!(ok.validate().is_ok());
        assert_eq!(ok.plan().slots, vec![2, 1, 1]);
    }
}
