//! Batched evaluation of a (strategy-mix × community-size × grid-scenario)
//! grid of community experiments in one parallel pass.
//!
//! The layout mirrors `gridstrat_core::executor::ScenarioSweep`: the flat
//! (cell × replication) index space is distributed over the rayon pool as
//! a whole, each worker keeps one engine + fleet controller alive and
//! rewinds them in place between replications (rebuilding only when its
//! chunk crosses into a different cell), and every replication derives its
//! own RNG streams from `(master, cell, rep)` — so the entire sweep is
//! **bit-identical for any thread count**.

use crate::agent::Assignment;
use crate::controller::FleetController;
use crate::metrics::{FleetCellOutcome, FleetRun};
use crate::mix::{FleetConfig, StrategyMix};
use gridstrat_core::executor::GridScenario;
use gridstrat_sim::{GridConfig, GridSimulation};
use gridstrat_stats::rng::derive_seed;
use rayon::prelude::*;
use std::sync::Arc;

/// Stream index separating the fleet's agent RNGs from the engine RNG
/// within one replication: `engine_seed = rep_seed`,
/// `fleet_seed = derive_seed(rep_seed, FLEET_STREAM)`. Pinned by
/// golden-vector tests alongside [`crate::agent::user_stream_seed`].
pub const FLEET_STREAM: u64 = 0xF1EE7;

/// Reusable per-worker state: one engine and one fleet controller, both
/// rewound in place between replications of the same cell.
struct FleetWorker {
    sim: GridSimulation,
    fleet: FleetController,
}

impl FleetWorker {
    fn build(plan: &CellPlan, cfg: &FleetConfig, rep_seed: u64) -> Self {
        FleetWorker {
            sim: GridSimulation::new(Arc::clone(&plan.grid), rep_seed)
                .expect("sweep grids are validated at plan time"),
            fleet: FleetController::new(
                &plan.assignments,
                cfg.tasks_per_user,
                cfg.task_exec_s,
                cfg.arrival,
                derive_seed(rep_seed, FLEET_STREAM),
                cfg.group_window,
            ),
        }
    }

    fn rewind(&mut self, rep_seed: u64) {
        self.sim.reset(rep_seed);
        self.fleet.reset(derive_seed(rep_seed, FLEET_STREAM));
    }

    fn run(&mut self) -> FleetRun {
        self.sim.run_controller(&mut self.fleet);
        self.fleet.collect(&self.sim)
    }
}

struct CellPlan {
    mix: usize,
    users: usize,
    scenario: usize,
    grid: Arc<GridConfig>,
    assignments: Vec<Assignment>,
    seed: u64,
}

/// A (mix × community-size × scenario) grid of community experiments.
#[derive(Debug, Clone)]
pub struct FleetSweep {
    /// Shared per-cell configuration (farm, workload shape, replications,
    /// master seed).
    pub config: FleetConfig,
    /// Strategy mixes to evaluate.
    pub mixes: Vec<StrategyMix>,
    /// Community sizes to evaluate.
    pub community_sizes: Vec<usize>,
    /// Grid-condition overlays applied to the configured farm.
    pub scenarios: Vec<GridScenario>,
}

impl FleetSweep {
    /// Builds a sweep; every axis must be non-empty and the configuration
    /// valid.
    pub fn new(
        config: FleetConfig,
        mixes: Vec<StrategyMix>,
        community_sizes: Vec<usize>,
        scenarios: Vec<GridScenario>,
    ) -> Self {
        config.validate().expect("valid fleet config");
        assert!(!mixes.is_empty(), "sweep needs at least one mix");
        assert!(
            !community_sizes.is_empty(),
            "sweep needs at least one community size"
        );
        assert!(!scenarios.is_empty(), "sweep needs at least one scenario");
        assert!(
            community_sizes.iter().all(|&u| u > 0),
            "community sizes must be positive"
        );
        for m in &mixes {
            m.validate().expect("valid strategy mix");
        }
        FleetSweep {
            config,
            mixes,
            community_sizes,
            scenarios,
        }
    }

    /// Number of cells in the grid.
    pub fn n_cells(&self) -> usize {
        self.mixes.len() * self.community_sizes.len() * self.scenarios.len()
    }

    /// Total community replications the sweep will run.
    pub fn n_runs_total(&self) -> usize {
        self.n_cells() * self.config.replications
    }

    /// Evaluates the whole grid in one parallel pass.
    ///
    /// Returns one aggregated outcome per cell, in cell order (mix-major,
    /// then community size, then scenario). Bit-identical for any thread
    /// count.
    pub fn run(&self) -> Vec<FleetCellOutcome> {
        let reps = self.config.replications;
        let mut plans = Vec::with_capacity(self.n_cells());
        for (m, mix) in self.mixes.iter().enumerate() {
            for &users in &self.community_sizes {
                for (s, scenario) in self.scenarios.iter().enumerate() {
                    let cell = plans.len() as u64;
                    plans.push(CellPlan {
                        mix: m,
                        users,
                        scenario: s,
                        grid: Arc::new(scenario.apply_grid(&self.config.grid)),
                        assignments: mix.assignments(users),
                        seed: derive_seed(self.config.seed, cell),
                    });
                }
            }
        }

        let total = plans.len() * reps;
        let plans_ref = &plans;
        let cfg = &self.config;
        let runs: Vec<FleetRun> = (0..total)
            .into_par_iter()
            .map_init(
                || None::<(usize, FleetWorker)>,
                move |slot, k| {
                    let cell = k / reps;
                    let plan = &plans_ref[cell];
                    let rep_seed = derive_seed(plan.seed, (k % reps) as u64);
                    match slot {
                        Some((c, worker)) if *c == cell => worker.rewind(rep_seed),
                        _ => *slot = Some((cell, FleetWorker::build(plan, cfg, rep_seed))),
                    }
                    let (_, worker) = slot.as_mut().expect("worker just installed");
                    worker.run()
                },
            )
            .collect();

        plans
            .iter()
            .enumerate()
            .map(|(c, plan)| {
                FleetCellOutcome::aggregate(
                    self.mixes[plan.mix].name.clone(),
                    plan.users,
                    self.scenarios[plan.scenario].name.clone(),
                    &runs[c * reps..(c + 1) * reps],
                )
            })
            .collect()
    }
}

/// Runs a single community cell (mix, size, scenario) outside a sweep —
/// the convenience entry point for examples and one-off experiments.
pub fn run_cell(
    config: &FleetConfig,
    mix: &StrategyMix,
    users: usize,
    scenario: &GridScenario,
) -> FleetCellOutcome {
    FleetSweep::new(
        config.clone(),
        vec![mix.clone()],
        vec![users],
        vec![scenario.clone()],
    )
    .run()
    .remove(0)
}

/// Runs one community replication with an explicit per-user assignment —
/// the primitive the equilibrium search builds deviation experiments from.
pub(crate) fn run_population(
    config: &FleetConfig,
    grid: &Arc<GridConfig>,
    assignments: &[Assignment],
    rep_seed: u64,
) -> FleetRun {
    let mut sim = GridSimulation::new(Arc::clone(grid), rep_seed)
        .expect("population grids are validated by FleetConfig");
    let mut fleet = FleetController::new(
        assignments,
        config.tasks_per_user,
        config.task_exec_s,
        config.arrival,
        derive_seed(rep_seed, FLEET_STREAM),
        config.group_window,
    );
    sim.run_controller(&mut fleet);
    fleet.collect(&sim)
}
