//! The simulation engine and the controller API through which client-side
//! submission strategies drive it.
//!
//! The engine is a single-threaded, deterministic discrete-event loop. All
//! randomness flows from one seeded RNG, and same-instant events fire in
//! scheduling order, so a `(config, seed, controller)` triple always yields
//! the same history. Parallelism lives one level up: Monte-Carlo executors
//! run many engines concurrently (one per trial) with rayon.

use crate::config::{GridConfig, LatencyMode, RankingPolicy};
use crate::event::{EventKind, EventQueue};
use crate::job::{JobId, JobOrigin, JobRecord, JobState};
use crate::modulation::{clamp_fault, MIN_INTENSITY};
use crate::time::{SimDuration, SimTime};
use gridstrat_stats::dist::{sample_standard_normal, Distribution, LogNormal};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::sync::Arc;

/// Events surfaced to the client-side controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Notification {
    /// A client job started running.
    JobStarted {
        /// The job.
        id: JobId,
        /// Start instant.
        at: SimTime,
    },
    /// A client job finished executing.
    JobFinished {
        /// The job.
        id: JobId,
        /// Completion instant.
        at: SimTime,
    },
    /// A client job failed with a visible middleware error.
    JobFailed {
        /// The job.
        id: JobId,
        /// Failure instant.
        at: SimTime,
    },
    /// A timer set via [`GridSimulation::set_timer`] expired.
    Timer {
        /// The token passed at arming time.
        token: u64,
        /// Expiry instant.
        at: SimTime,
    },
}

/// A client-side submission controller (a strategy, a probe harness, …).
///
/// The controller is called re-entrantly with a mutable handle on the
/// simulation: it may submit, cancel and arm timers from both hooks.
pub trait Controller {
    /// Called once before any event is processed.
    fn start(&mut self, sim: &mut GridSimulation);
    /// Called for every notification addressed to the client.
    fn on_event(&mut self, sim: &mut GridSimulation, ev: Notification);
    /// When true, the run loop returns.
    fn done(&self) -> bool;
}

#[derive(Debug, Default)]
struct SiteState {
    running: usize,
    queue: VecDeque<JobId>,
}

/// Aggregate run counters (client and background populations separately).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Client jobs submitted.
    pub client_submitted: u64,
    /// Client jobs that started running.
    pub client_started: u64,
    /// Client jobs cancelled before starting.
    pub client_cancelled: u64,
    /// Client jobs that failed visibly.
    pub client_failed: u64,
    /// Client jobs silently lost (outliers).
    pub client_stuck: u64,
    /// Background jobs submitted.
    pub background_submitted: u64,
    /// Background jobs that started.
    pub background_started: u64,
}

/// The discrete-event grid simulation.
///
/// See the crate docs for the modelled pipeline. Typical use:
///
/// ```
/// use gridstrat_sim::{Controller, GridConfig, GridSimulation, Notification};
/// use gridstrat_workload::WeekModel;
///
/// struct OneShot { started: Option<f64> }
/// impl Controller for OneShot {
///     fn start(&mut self, sim: &mut GridSimulation) { sim.submit(); }
///     fn on_event(&mut self, _sim: &mut GridSimulation, ev: Notification) {
///         if let Notification::JobStarted { at, .. } = ev {
///             self.started = Some(at.as_secs());
///         }
///     }
///     fn done(&self) -> bool { self.started.is_some() }
/// }
///
/// let model = WeekModel::calibrate("demo", 500.0, 700.0, 0.0, 50.0, 1e4).unwrap();
/// let mut sim = GridSimulation::new(GridConfig::oracle(model), 42).unwrap();
/// let mut ctrl = OneShot { started: None };
/// sim.run_controller(&mut ctrl);
/// assert!(ctrl.started.unwrap() >= 50.0);
/// ```
#[derive(Debug)]
pub struct GridSimulation {
    /// Shared, immutable configuration. An `Arc` so Monte-Carlo layers can
    /// hand thousands of engines the same config without deep-cloning the
    /// latency model (oracle mode) or the recorded sample vector
    /// (resample mode).
    cfg: Arc<GridConfig>,
    now: SimTime,
    queue: EventQueue,
    jobs: Vec<JobRecord>,
    exec_times: Vec<SimDuration>,
    sites: Vec<SiteState>,
    rng: StdRng,
    notifications: VecDeque<Notification>,
    stats: EngineStats,
    /// Active client scope: owner tag for submissions and namespace for
    /// timer tokens. `0` = unscoped (single-owner legacy behaviour).
    scope: u64,
    /// Execution time applied by [`GridSimulation::submit`] while set.
    default_exec: SimDuration,
}

impl GridSimulation {
    /// Builds a simulation from a validated config and a seed.
    ///
    /// Accepts either an owned [`GridConfig`] or an `Arc<GridConfig>`;
    /// executors that run many engines over one config should pass the
    /// `Arc` so construction never copies sample vectors or site tables.
    pub fn new(cfg: impl Into<Arc<GridConfig>>, seed: u64) -> Result<Self, String> {
        let cfg = cfg.into();
        cfg.validate()?;
        let sites = cfg.sites.iter().map(|_| SiteState::default()).collect();
        let mut sim = GridSimulation {
            cfg,
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            jobs: Vec::new(),
            exec_times: Vec::new(),
            sites,
            rng: StdRng::seed_from_u64(seed),
            notifications: VecDeque::new(),
            stats: EngineStats::default(),
            scope: 0,
            default_exec: SimDuration::ZERO,
        };
        if sim.cfg.background.is_some() {
            sim.schedule_next_background_arrival();
        }
        Ok(sim)
    }

    /// Rewinds the engine in place to the state a freshly-constructed
    /// `GridSimulation::new(cfg, seed)` would have — but keeping every
    /// internal allocation (job table, execution-time table, event heap,
    /// site queues, notification buffer). A trial loop that calls `reset`
    /// between runs produces **bit-identical** histories to one that
    /// constructs a new engine per trial, without touching the allocator
    /// on the hot path.
    pub fn reset(&mut self, seed: u64) {
        self.now = SimTime::ZERO;
        self.queue.clear();
        self.jobs.clear();
        self.exec_times.clear();
        for site in &mut self.sites {
            site.running = 0;
            site.queue.clear();
        }
        self.rng = StdRng::seed_from_u64(seed);
        self.notifications.clear();
        self.stats = EngineStats::default();
        self.scope = 0;
        self.default_exec = SimDuration::ZERO;
        if self.cfg.background.is_some() {
            self.schedule_next_background_arrival();
        }
    }

    /// The shared configuration this engine runs against.
    pub fn config(&self) -> &GridConfig {
        &self.cfg
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Read access to a job's audit record.
    pub fn job(&self, id: JobId) -> &JobRecord {
        &self.jobs[id.0 as usize]
    }

    /// All job records (client and background), in submission order.
    pub fn jobs(&self) -> &[JobRecord] {
        &self.jobs
    }

    /// Aggregate counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Sets the active client **scope** — the multi-owner routing hook.
    ///
    /// While a non-zero scope is active:
    ///
    /// * every submitted client job carries the scope in its
    ///   [`JobRecord::owner`] field, so a multiplexing controller can route
    ///   job notifications back to the agent that submitted them;
    /// * timer tokens are namespaced: [`GridSimulation::set_timer`] stores
    ///   `scope << 32 | token` (the raw token must fit in 32 bits), and the
    ///   resulting [`Notification::Timer`] carries the namespaced value —
    ///   so independently-written controllers sharing one engine can never
    ///   collide on timer tokens.
    ///
    /// Scope `0` restores the single-owner legacy behaviour (tokens pass
    /// through untouched, owners are `0`). Scopes must fit in 32 bits.
    /// [`GridSimulation::reset`] clears the scope.
    pub fn set_scope(&mut self, scope: u64) {
        assert!(scope <= u32::MAX as u64, "client scope must fit in 32 bits");
        self.scope = scope;
    }

    /// The active client scope (`0` when unscoped).
    pub fn scope(&self) -> u64 {
        self.scope
    }

    /// Sets the execution time applied by [`GridSimulation::submit`].
    ///
    /// Submission-strategy controllers call `submit()` (historically a
    /// zero-execution probe); a multi-user layer sets this before
    /// delegating to them so every job of the wrapped protocol holds a
    /// worker slot for the task's execution time — the mechanism by which
    /// one user's redundant copies degrade everyone else's latency.
    /// Cleared by [`GridSimulation::reset`].
    pub fn set_default_exec(&mut self, exec: SimDuration) {
        self.default_exec = exec;
    }

    /// The execution time currently applied by [`GridSimulation::submit`].
    pub fn default_exec(&self) -> SimDuration {
        self.default_exec
    }

    /// Submits a client job with the default execution time (zero unless
    /// overridden via [`GridSimulation::set_default_exec`] — i.e. a probe).
    pub fn submit(&mut self) -> JobId {
        self.submit_with_exec(self.default_exec)
    }

    /// Submits a client job that will hold its slot for `exec` once started.
    pub fn submit_with_exec(&mut self, exec: SimDuration) -> JobId {
        let id = JobId(self.jobs.len() as u64);
        let mut rec = JobRecord::new(id, JobOrigin::Client, self.now);
        rec.owner = self.scope;
        self.jobs.push(rec);
        self.exec_times.push(exec);
        self.stats.client_submitted += 1;
        self.route_submission(id);
        id
    }

    /// Cancels a client job. Returns `true` if the job was still pending
    /// when the request was issued; `false` if it had already started,
    /// finished or otherwise terminated.
    ///
    /// With a zero configured cancellation delay the job is removed
    /// immediately; with a positive delay the request travels through the
    /// middleware first, and the job may *still start* in the meantime —
    /// the realistic failure mode of burst-cancellation on EGEE.
    pub fn cancel(&mut self, id: JobId) -> bool {
        let state = self.jobs[id.0 as usize].state;
        if !(state.is_pending() || state == JobState::Stuck) {
            return false;
        }
        if self.cfg.wms.cancellation_delay_mean_s > 0.0 {
            let d = self.exp_delay(self.cfg.wms.cancellation_delay_mean_s);
            self.queue
                .schedule(self.now.after(d), EventKind::CancelApply(id));
        } else {
            self.apply_cancel(id);
        }
        true
    }

    fn apply_cancel(&mut self, id: JobId) {
        let state = self.jobs[id.0 as usize].state;
        if state.is_pending() || state == JobState::Stuck {
            self.jobs[id.0 as usize].state = JobState::Cancelled;
            self.jobs[id.0 as usize].terminated_at = Some(self.now);
            self.stats.client_cancelled += 1;
            // site queues are purged lazily when slots are assigned
        }
    }

    /// Pre-reserves capacity for `jobs` additional job records (job and
    /// execution-time tables) and `events` additional queued events, so a
    /// controller that knows its workload up front (a community fleet)
    /// never grows those structures on the hot path. Purely an allocator
    /// hint: the simulated history is unaffected.
    pub fn reserve(&mut self, jobs: usize, events: usize) {
        self.jobs.reserve(jobs);
        self.exec_times.reserve(jobs);
        self.queue.reserve(events);
    }

    /// Schedules a synthetic background job to arrive at absolute instant
    /// `at` (which must not be in the past) holding a slot for `exec` once
    /// started. The target site is drawn at arrival time from the site
    /// weights, exactly like configured background traffic. This is the
    /// cross-shard coupling hook: a sharding layer injects the load the
    /// rest of the community would have imposed on this partition.
    pub fn inject_background(&mut self, at: SimTime, exec: SimDuration) {
        assert!(at >= self.now, "cannot inject background work in the past");
        self.queue.schedule(at, EventKind::InjectedArrival { exec });
    }

    /// Arms a timer; a [`Notification::Timer`] fires after `delay`.
    ///
    /// With scope `0` the notification carries `token` verbatim. Under an
    /// active client scope (see [`GridSimulation::set_scope`]) the token is
    /// namespaced to `scope << 32 | token` and must fit in 32 bits.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        let token = if self.scope == 0 {
            token
        } else {
            assert!(
                token <= u32::MAX as u64,
                "timer tokens must fit in 32 bits while a client scope is active"
            );
            self.scope << 32 | token
        };
        self.queue
            .schedule(self.now.after(delay), EventKind::Timer { token });
    }

    /// Runs the event loop, surfacing notifications to `ctrl`, until the
    /// controller reports done, the queue drains, or the horizon passes.
    pub fn run_controller<C: Controller + ?Sized>(&mut self, ctrl: &mut C) {
        self.start_controller(ctrl);
        self.step_controller_until(ctrl, SimTime::MAX);
    }

    /// Invokes the controller's `start` hook and drains the notifications
    /// it produced — the first half of [`GridSimulation::run_controller`],
    /// split out so a coupling layer (e.g. a sharded fleet) can step the
    /// run in epochs via [`GridSimulation::step_controller_until`].
    pub fn start_controller<C: Controller + ?Sized>(&mut self, ctrl: &mut C) {
        ctrl.start(self);
        self.drain_notifications(ctrl);
    }

    /// Processes events whose fire time is at or before `until` (still
    /// bounded by the configured horizon), stopping early when the
    /// controller reports done or the queue drains. Events beyond the cap
    /// stay queued, so repeated calls with increasing `until` replay
    /// exactly the history one uninterrupted
    /// [`GridSimulation::run_controller`] would produce — pausing consumes
    /// no randomness and moves no state.
    pub fn step_controller_until<C: Controller + ?Sized>(&mut self, ctrl: &mut C, until: SimTime) {
        let cap = until.min(SimTime::ZERO.after(self.cfg.horizon));
        while !ctrl.done() {
            let Some(t) = self.queue.peek_time() else {
                break;
            };
            if t > cap {
                break;
            }
            let (t, kind) = self.queue.pop().expect("peeked event vanished");
            debug_assert!(t >= self.now, "event queue yielded a past event");
            self.now = t;
            self.handle(kind);
            self.drain_notifications(ctrl);
        }
    }

    fn drain_notifications<C: Controller + ?Sized>(&mut self, ctrl: &mut C) {
        while let Some(n) = self.notifications.pop_front() {
            ctrl.on_event(self, n);
            if ctrl.done() {
                return;
            }
        }
    }

    // ---- internal mechanics ------------------------------------------------

    fn exp_delay(&mut self, mean_s: f64) -> SimDuration {
        let u: f64 = 1.0 - self.rng.gen::<f64>();
        SimDuration::from_secs(-u.ln() * mean_s)
    }

    /// The active modulation's `(intensity, fault factor)` at the current
    /// clock; `None` when the grid is stationary. The stationary path must
    /// stay exactly as it was (no `× 1.0`, no clamping of validated
    /// configuration probabilities), so callers branch on the option
    /// rather than multiplying through neutral factors.
    fn modulation_factors(&self) -> Option<(f64, f64)> {
        self.cfg.modulation.as_ref().map(|m| {
            let t = self.now.as_secs();
            let intensity = m.intensity_at(t);
            let fault = m.fault_factor_at(t);
            debug_assert!(
                intensity.is_finite() && fault.is_finite() && fault >= 0.0,
                "modulation returned non-finite factors at t={t}"
            );
            (intensity.max(MIN_INTENSITY), fault.max(0.0))
        })
    }

    fn route_submission(&mut self, id: JobId) {
        // `self.cfg.latency` and `self.rng` are disjoint fields, so the
        // model can be sampled in place — deep-cloning the latency model
        // per submission (the old code) was the single largest allocation
        // on the Monte-Carlo hot path
        let factors = self.modulation_factors();
        match &self.cfg.latency {
            LatencyMode::Oracle(model) => {
                let raw = match factors {
                    None => model.sample_latency(&mut self.rng),
                    // the modulated law at the submission instant: scaled
                    // fault ratio (shared MAX_FAULT_RATIO ceiling), scaled
                    // queue-wait, hard floor at the incompressible shift
                    Some((intensity, fault)) => {
                        if self.rng.gen::<f64>() < clamp_fault(model.rho * fault) {
                            model.outlier_tail().sample(&mut self.rng)
                        } else {
                            let body = model.body().sample(&mut self.rng);
                            (model.shift_s + (body - model.shift_s) * intensity).max(model.shift_s)
                        }
                    }
                };
                if raw >= model.threshold_s {
                    // silently lost: the client only learns via its own timeout
                    self.jobs[id.0 as usize].state = JobState::Stuck;
                    self.stats.client_stuck += 1;
                } else {
                    self.queue.schedule(
                        self.now.after(SimDuration::from_secs(raw)),
                        EventKind::Start(id),
                    );
                }
            }
            LatencyMode::Resample {
                latencies,
                threshold_s,
            } => {
                // recorded traces are replayed as-is: a modulation has no
                // access to the (unknown) queue-wait decomposition of a
                // recorded latency, so resample mode stays stationary
                let idx = self.rng.gen_range(0..latencies.len());
                let raw = latencies[idx];
                if raw >= *threshold_s {
                    self.jobs[id.0 as usize].state = JobState::Stuck;
                    self.stats.client_stuck += 1;
                } else {
                    self.queue.schedule(
                        self.now.after(SimDuration::from_secs(raw)),
                        EventKind::Start(id),
                    );
                }
            }
            LatencyMode::Pipeline => {
                let (p_loss, ui_mean) = match factors {
                    None => (self.cfg.faults.p_silent_loss, self.cfg.wms.ui_to_wms_mean_s),
                    Some((intensity, fault)) => (
                        clamp_fault(self.cfg.faults.p_silent_loss * fault),
                        self.cfg.wms.ui_to_wms_mean_s * intensity,
                    ),
                };
                if self.rng.gen::<f64>() < p_loss {
                    self.jobs[id.0 as usize].state = JobState::Stuck;
                    self.stats.client_stuck += 1;
                    return;
                }
                let d = self.exp_delay(ui_mean);
                self.queue
                    .schedule(self.now.after(d), EventKind::ArriveAtWms(id));
            }
        }
    }

    fn handle(&mut self, kind: EventKind) {
        match kind {
            EventKind::ArriveAtWms(id) => self.on_arrive_at_wms(id),
            EventKind::Dispatch(id) => self.on_dispatch(id),
            EventKind::EnterQueue(id) => self.on_enter_queue(id),
            EventKind::Start(id) => self.on_oracle_start(id),
            EventKind::Finish(id) => self.on_finish(id),
            EventKind::Fail(id) => self.on_fail(id),
            EventKind::CancelApply(id) => self.apply_cancel(id),
            EventKind::BackgroundArrival { site } => self.on_background_arrival(site),
            EventKind::InjectedArrival { exec } => self.on_injected_arrival(exec),
            EventKind::Timer { token } => {
                self.notifications.push_back(Notification::Timer {
                    token,
                    at: self.now,
                });
            }
        }
    }

    fn on_arrive_at_wms(&mut self, id: JobId) {
        if !self.jobs[id.0 as usize].state.is_pending() {
            return; // cancelled in flight
        }
        self.jobs[id.0 as usize].state = JobState::AtWms;
        let (p_fail, mm_mean) = match self.modulation_factors() {
            None => (
                self.cfg.faults.p_transient_failure,
                self.cfg.wms.matchmaking_mean_s,
            ),
            Some((intensity, fault)) => (
                clamp_fault(self.cfg.faults.p_transient_failure * fault),
                self.cfg.wms.matchmaking_mean_s * intensity,
            ),
        };
        if self.rng.gen::<f64>() < p_fail {
            let d = self.exp_delay(self.cfg.faults.failure_delay_mean_s);
            self.queue.schedule(self.now.after(d), EventKind::Fail(id));
        } else {
            let d = self.exp_delay(mm_mean);
            self.queue
                .schedule(self.now.after(d), EventKind::Dispatch(id));
        }
    }

    fn select_site(&mut self) -> usize {
        let stale = match self.cfg.wms.ranking {
            RankingPolicy::WeightedRandom => true,
            RankingPolicy::LeastLoaded { stale_prob } => self.rng.gen::<f64>() < stale_prob,
        };
        if stale {
            // weight-proportional random selection
            let total: f64 = self.cfg.sites.iter().map(|s| s.weight).sum();
            let mut x = self.rng.gen::<f64>() * total;
            for (i, s) in self.cfg.sites.iter().enumerate() {
                x -= s.weight;
                if x <= 0.0 {
                    return i;
                }
            }
            self.cfg.sites.len() - 1
        } else {
            // least (queue + running) / slots ratio; ties broken by index
            let mut best = 0usize;
            let mut best_load = f64::INFINITY;
            for (i, (sc, st)) in self.cfg.sites.iter().zip(&self.sites).enumerate() {
                let load = (st.running + st.queue.len()) as f64 / sc.slots as f64;
                if load < best_load {
                    best_load = load;
                    best = i;
                }
            }
            best
        }
    }

    fn on_dispatch(&mut self, id: JobId) {
        if !self.jobs[id.0 as usize].state.is_pending() {
            return;
        }
        let site = self.select_site();
        self.jobs[id.0 as usize].state = JobState::Matched;
        self.jobs[id.0 as usize].site = Some(site);
        let dispatch_mean = match self.modulation_factors() {
            None => self.cfg.wms.dispatch_mean_s,
            Some((intensity, _)) => self.cfg.wms.dispatch_mean_s * intensity,
        };
        let d = self.exp_delay(dispatch_mean);
        self.queue
            .schedule(self.now.after(d), EventKind::EnterQueue(id));
    }

    fn on_enter_queue(&mut self, id: JobId) {
        if !self.jobs[id.0 as usize].state.is_pending() {
            return;
        }
        let site = self.jobs[id.0 as usize]
            .site
            .expect("matched before queued");
        self.jobs[id.0 as usize].state = JobState::Queued;
        self.sites[site].queue.push_back(id);
        self.try_start_jobs(site);
    }

    /// Assigns free slots to queued live jobs, skipping cancelled residue.
    fn try_start_jobs(&mut self, site: usize) {
        while self.sites[site].running < self.cfg.sites[site].slots {
            let Some(id) = self.sites[site].queue.pop_front() else {
                break;
            };
            if self.jobs[id.0 as usize].state != JobState::Queued {
                continue; // cancelled while waiting
            }
            self.sites[site].running += 1;
            self.start_job(id);
        }
    }

    fn start_job(&mut self, id: JobId) {
        let rec = &mut self.jobs[id.0 as usize];
        rec.state = JobState::Running;
        rec.started_at = Some(self.now);
        let exec = self.exec_times[id.0 as usize];
        self.queue
            .schedule(self.now.after(exec), EventKind::Finish(id));
        match rec.origin {
            JobOrigin::Client => {
                self.stats.client_started += 1;
                self.notifications
                    .push_back(Notification::JobStarted { id, at: self.now });
            }
            JobOrigin::Background => self.stats.background_started += 1,
        }
    }

    fn on_oracle_start(&mut self, id: JobId) {
        if !self.jobs[id.0 as usize].state.is_pending() {
            return; // cancelled before its latency elapsed
        }
        self.start_job(id);
    }

    fn on_finish(&mut self, id: JobId) {
        if self.jobs[id.0 as usize].state != JobState::Running {
            return;
        }
        self.jobs[id.0 as usize].state = JobState::Finished;
        self.jobs[id.0 as usize].terminated_at = Some(self.now);
        if let Some(site) = self.jobs[id.0 as usize].site {
            self.sites[site].running = self.sites[site].running.saturating_sub(1);
            self.try_start_jobs(site);
        }
        if self.jobs[id.0 as usize].origin == JobOrigin::Client {
            self.notifications
                .push_back(Notification::JobFinished { id, at: self.now });
        }
    }

    fn on_fail(&mut self, id: JobId) {
        if !self.jobs[id.0 as usize].state.is_pending() {
            return;
        }
        self.jobs[id.0 as usize].state = JobState::Failed;
        self.jobs[id.0 as usize].terminated_at = Some(self.now);
        self.stats.client_failed += 1;
        self.notifications
            .push_back(Notification::JobFailed { id, at: self.now });
    }

    fn schedule_next_background_arrival(&mut self) {
        let Some(bg) = self.cfg.background else {
            return;
        };
        let d = self.exp_delay(1.0 / bg.arrival_rate_per_s);
        // target site chosen at arrival time; store a placeholder here
        let site = self.pick_background_site();
        self.queue
            .schedule(self.now.after(d), EventKind::BackgroundArrival { site });
    }

    fn pick_background_site(&mut self) -> usize {
        if self.cfg.sites.is_empty() {
            return 0;
        }
        let total: f64 = self.cfg.sites.iter().map(|s| s.weight).sum();
        let mut x = self.rng.gen::<f64>() * total;
        for (i, s) in self.cfg.sites.iter().enumerate() {
            x -= s.weight;
            if x <= 0.0 {
                return i;
            }
        }
        self.cfg.sites.len() - 1
    }

    fn on_background_arrival(&mut self, site: usize) {
        let Some(bg) = self.cfg.background else {
            return;
        };
        if self.cfg.sites.is_empty() {
            return; // background load is meaningless without topology
        }
        // draw a log-normal execution time
        let ln = LogNormal::from_mean_std(bg.exec_mean_s, bg.exec_cv * bg.exec_mean_s)
            .expect("validated background config");
        let z = sample_standard_normal(&mut self.rng);
        let exec = (ln.mu() + ln.sigma() * z).exp();
        self.enqueue_background(site, SimDuration::from_secs(exec));
        self.schedule_next_background_arrival();
    }

    fn on_injected_arrival(&mut self, exec: SimDuration) {
        if self.cfg.sites.is_empty() {
            return; // no topology to land on
        }
        let site = self.pick_background_site();
        self.enqueue_background(site, exec);
    }

    /// Inserts a background-origin job straight into a site's batch queue.
    fn enqueue_background(&mut self, site: usize, exec: SimDuration) {
        let id = JobId(self.jobs.len() as u64);
        let mut rec = JobRecord::new(id, JobOrigin::Background, self.now);
        rec.state = JobState::Queued;
        rec.site = Some(site);
        self.jobs.push(rec);
        self.exec_times.push(exec);
        self.stats.background_submitted += 1;
        self.sites[site].queue.push_back(id);
        self.try_start_jobs(site);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridstrat_workload::WeekModel;

    fn oracle_model(rho: f64) -> WeekModel {
        // light body (cv = 0.6) so natural tail censoring is negligible and
        // every non-outlier probe is guaranteed to start
        WeekModel::calibrate("t", 500.0, 300.0, rho, 50.0, 10_000.0).unwrap()
    }

    /// Controller that submits `n` probes at start and records their starts.
    struct CollectStarts {
        n: usize,
        latencies: Vec<f64>,
        submitted: Vec<JobId>,
        deadline_tokens: u64,
    }

    impl CollectStarts {
        fn new(n: usize) -> Self {
            CollectStarts {
                n,
                latencies: Vec::new(),
                submitted: Vec::new(),
                deadline_tokens: 0,
            }
        }
    }

    impl Controller for CollectStarts {
        fn start(&mut self, sim: &mut GridSimulation) {
            for _ in 0..self.n {
                let id = sim.submit();
                self.submitted.push(id);
            }
            // safety timeout so stuck jobs do not hang the run
            sim.set_timer(SimDuration::from_secs(20_000.0), 0);
        }
        fn on_event(&mut self, sim: &mut GridSimulation, ev: Notification) {
            match ev {
                Notification::JobStarted { id, at } => {
                    let lat = at.since(sim.job(id).submitted_at).as_secs();
                    self.latencies.push(lat);
                }
                Notification::Timer { .. } => self.deadline_tokens += 1,
                _ => {}
            }
        }
        fn done(&self) -> bool {
            self.latencies.len() == self.n || self.deadline_tokens > 0
        }
    }

    #[test]
    fn oracle_latencies_match_model_mean() {
        let mut sim = GridSimulation::new(GridConfig::oracle(oracle_model(0.0)), 1).unwrap();
        let mut ctrl = CollectStarts::new(4000);
        sim.run_controller(&mut ctrl);
        assert_eq!(ctrl.latencies.len(), 4000);
        let mean = ctrl.latencies.iter().sum::<f64>() / 4000.0;
        assert!((mean - 500.0).abs() < 40.0, "mean {mean}");
        assert!(ctrl.latencies.iter().all(|&l| l >= 50.0));
    }

    #[test]
    fn oracle_outliers_become_stuck() {
        let mut sim = GridSimulation::new(GridConfig::oracle(oracle_model(0.3)), 2).unwrap();
        let mut ctrl = CollectStarts::new(2000);
        sim.run_controller(&mut ctrl);
        // the run ends via the deadline timer; stuck fraction ≈ 0.3
        let stuck = sim.stats().client_stuck as f64 / 2000.0;
        assert!((stuck - 0.3).abs() < 0.05, "stuck fraction {stuck}");
        assert!(ctrl.deadline_tokens > 0);
    }

    #[test]
    fn determinism_same_seed() {
        let run = |seed: u64| {
            let mut sim = GridSimulation::new(GridConfig::oracle(oracle_model(0.1)), seed).unwrap();
            let mut ctrl = CollectStarts::new(500);
            sim.run_controller(&mut ctrl);
            ctrl.latencies
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    /// Full bit-level fingerprint of a finished run: every audit field of
    /// every job plus the aggregate counters.
    fn fingerprint(sim: &GridSimulation) -> Vec<(u64, u8, u64, u64, u64)> {
        sim.jobs()
            .iter()
            .map(|r| {
                (
                    r.id.0,
                    r.state as u8,
                    r.submitted_at.as_secs().to_bits(),
                    r.started_at.map_or(u64::MAX, |t| t.as_secs().to_bits()),
                    r.terminated_at.map_or(u64::MAX, |t| t.as_secs().to_bits()),
                )
            })
            .collect()
    }

    #[test]
    fn reset_reproduces_fresh_engine_bit_for_bit() {
        // a reused engine must be indistinguishable from a new one: same
        // job histories (to the bit), same stats, same collected latencies
        let run_fresh = |cfg: &GridConfig, seed: u64| {
            let mut sim = GridSimulation::new(cfg.clone(), seed).unwrap();
            let mut ctrl = CollectStarts::new(300);
            sim.run_controller(&mut ctrl);
            (fingerprint(&sim), sim.stats(), ctrl.latencies)
        };

        // oracle mode and pipeline mode with background load: the latter
        // exercises the event heap, site queues and background RNG stream
        let mut pipeline = GridConfig::pipeline_default();
        pipeline.background = Some(crate::config::BackgroundLoadConfig {
            arrival_rate_per_s: 0.05,
            exec_mean_s: 300.0,
            exec_cv: 1.0,
        });
        for cfg in [GridConfig::oracle(oracle_model(0.12)), pipeline] {
            // one engine reused across seeds — dirty state from seed 11
            // must not leak into the seed-22 run
            let mut sim = GridSimulation::new(cfg.clone(), 11).unwrap();
            let mut first = CollectStarts::new(300);
            sim.run_controller(&mut first);
            for seed in [11u64, 22, 33] {
                sim.reset(seed);
                let mut ctrl = CollectStarts::new(300);
                sim.run_controller(&mut ctrl);
                let (jobs, stats, latencies) = run_fresh(&cfg, seed);
                assert_eq!(fingerprint(&sim), jobs, "job audit diverged (seed {seed})");
                assert_eq!(sim.stats(), stats, "stats diverged (seed {seed})");
                assert_eq!(
                    ctrl.latencies
                        .iter()
                        .map(|l| l.to_bits())
                        .collect::<Vec<_>>(),
                    latencies.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
                    "latency stream diverged (seed {seed})"
                );
            }
        }
    }

    /// Submits jobs one after another (next on start, or on a safety
    /// timeout for stuck/failed ones), so submission instants sweep across
    /// a modulation's time axis instead of all landing at t = 0.
    struct Chain {
        n: usize,
        submitted: usize,
        current: Option<JobId>,
        latencies: Vec<f64>,
    }
    impl Chain {
        fn new(n: usize) -> Self {
            Chain {
                n,
                submitted: 0,
                current: None,
                latencies: Vec::new(),
            }
        }
        fn next(&mut self, sim: &mut GridSimulation) {
            let id = sim.submit();
            sim.set_timer(SimDuration::from_secs(11_000.0), id.0);
            self.current = Some(id);
            self.submitted += 1;
        }
    }
    impl Controller for Chain {
        fn start(&mut self, sim: &mut GridSimulation) {
            self.next(sim);
        }
        fn on_event(&mut self, sim: &mut GridSimulation, ev: Notification) {
            match ev {
                Notification::JobStarted { id, at } if self.current == Some(id) => {
                    self.latencies
                        .push(at.since(sim.job(id).submitted_at).as_secs());
                    if self.submitted < self.n {
                        self.next(sim);
                    } else {
                        self.current = None;
                    }
                }
                Notification::Timer { token, .. } if self.current == Some(JobId(token)) => {
                    // stuck or failed: abandon it and move on
                    sim.cancel(JobId(token));
                    if self.submitted < self.n {
                        self.next(sim);
                    } else {
                        self.current = None;
                    }
                }
                _ => {}
            }
        }
        fn done(&self) -> bool {
            self.submitted >= self.n && self.current.is_none()
        }
    }

    #[test]
    fn modulated_oracle_peak_is_slower_than_trough() {
        use gridstrat_workload::DiurnalModel;
        // strong diurnal swing on a zero-fault oracle: jobs submitted in
        // the fast trough phase must start much sooner than peak-phase ones
        let base = oracle_model(0.0);
        let diurnal = DiurnalModel::new(base.clone(), 0.8, 86_400.0).unwrap();
        let mut cfg = GridConfig::oracle(base);
        cfg.modulation = Some(std::sync::Arc::new(diurnal));
        let mut sim = GridSimulation::new(cfg, 17).unwrap();
        let mut ctrl = Chain::new(3_000);
        sim.run_controller(&mut ctrl);
        assert_eq!(ctrl.latencies.len(), 3_000);
        // bucket latencies by submission phase
        let (mut peak, mut trough) = (Vec::new(), Vec::new());
        for rec in sim.jobs() {
            let Some(start) = rec.started_at else {
                continue;
            };
            let lat = start.since(rec.submitted_at).as_secs();
            let phase = (rec.submitted_at.as_secs() / 86_400.0).fract();
            if (0.15..0.35).contains(&phase) {
                peak.push(lat);
            } else if (0.65..0.85).contains(&phase) {
                trough.push(lat);
            }
        }
        assert!(peak.len() > 50 && trough.len() > 50);
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&peak) > 2.0 * mean(&trough),
            "peak {} vs trough {}",
            mean(&peak),
            mean(&trough)
        );
        // the hard floor survives modulation
        assert!(ctrl.latencies.iter().all(|&l| l >= 50.0));
    }

    #[test]
    fn modulated_reset_reproduces_fresh_engine_bit_for_bit() {
        use gridstrat_workload::{DiurnalModel, RegimeShiftModel};
        // the engine_reuse_is_unobservable family, under an active
        // modulation: a reused engine must replay a modulated history
        // exactly (the modulation lives in the shared config and consumes
        // no per-engine state)
        let base = oracle_model(0.12);
        let mut oracle = GridConfig::oracle(base.clone());
        oracle.modulation = Some(std::sync::Arc::new(
            DiurnalModel::new(base.clone(), 0.6, 86_400.0).unwrap(),
        ));
        let mut pipeline = GridConfig::pipeline_default();
        pipeline.background = Some(crate::config::BackgroundLoadConfig {
            arrival_rate_per_s: 0.05,
            exec_mean_s: 300.0,
            exec_cv: 1.0,
        });
        pipeline.modulation = Some(std::sync::Arc::new(
            RegimeShiftModel::step(base, 500.0, 1.0, 2.5).unwrap(),
        ));
        // sequential submissions, so the oracle path samples the
        // modulation at many distinct instants, not just t = 0
        let chain = || Chain::new(300);
        let run_fresh = |cfg: &GridConfig, seed: u64| {
            let mut sim = GridSimulation::new(cfg.clone(), seed).unwrap();
            let mut ctrl = chain();
            sim.run_controller(&mut ctrl);
            (fingerprint(&sim), sim.stats(), ctrl.latencies)
        };
        for cfg in [oracle, pipeline] {
            let mut sim = GridSimulation::new(cfg.clone(), 11).unwrap();
            let mut first = chain();
            sim.run_controller(&mut first);
            for seed in [11u64, 22, 33] {
                sim.reset(seed);
                let mut ctrl = chain();
                sim.run_controller(&mut ctrl);
                let (jobs, stats, latencies) = run_fresh(&cfg, seed);
                assert_eq!(
                    fingerprint(&sim),
                    jobs,
                    "modulated job audit diverged (seed {seed})"
                );
                assert_eq!(sim.stats(), stats, "modulated stats diverged (seed {seed})");
                assert_eq!(
                    ctrl.latencies
                        .iter()
                        .map(|l| l.to_bits())
                        .collect::<Vec<_>>(),
                    latencies.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
                    "modulated latency stream diverged (seed {seed})"
                );
            }
        }
    }

    #[test]
    fn modulated_pipeline_storm_raises_faults_and_delays() {
        use gridstrat_workload::RegimeShiftModel;
        let base = oracle_model(0.0); // only used as the modulation base
        let mut calm_cfg = GridConfig::pipeline_default();
        calm_cfg.background = None;
        calm_cfg.faults.p_transient_failure = 0.0;
        calm_cfg.faults.p_silent_loss = 0.1;
        let mut storm_cfg = calm_cfg.clone();
        // storm from t = 0 (first regime): 3x hop delays, 4x silent loss
        storm_cfg.modulation = Some(std::sync::Arc::new(
            RegimeShiftModel::new(base, vec![1e9], vec![3.0, 1.0], vec![4.0, 1.0]).unwrap(),
        ));
        let run = |cfg: GridConfig| {
            let mut sim = GridSimulation::new(cfg, 23).unwrap();
            let mut ctrl = CollectStarts::new(600);
            sim.run_controller(&mut ctrl);
            let stuck = sim.stats().client_stuck as f64 / 600.0;
            let mean = ctrl.latencies.iter().sum::<f64>() / ctrl.latencies.len().max(1) as f64;
            (stuck, mean)
        };
        let (calm_stuck, calm_mean) = run(calm_cfg);
        let (storm_stuck, storm_mean) = run(storm_cfg);
        assert!(
            storm_stuck > 2.0 * calm_stuck,
            "stuck {calm_stuck} vs {storm_stuck}"
        );
        assert!(
            storm_mean > 2.0 * calm_mean,
            "mean {calm_mean} vs {storm_mean}"
        );
    }

    #[test]
    fn stepped_run_matches_uninterrupted_bit_for_bit() {
        // pausing at arbitrary epoch boundaries consumes no randomness
        // and moves no state: stepping must replay run_controller exactly
        let mut pipeline = GridConfig::pipeline_default();
        pipeline.background = Some(crate::config::BackgroundLoadConfig {
            arrival_rate_per_s: 0.05,
            exec_mean_s: 300.0,
            exec_cv: 1.0,
        });
        for cfg in [GridConfig::oracle(oracle_model(0.12)), pipeline] {
            let mut sim = GridSimulation::new(cfg.clone(), 19).unwrap();
            let mut ctrl = Chain::new(200);
            sim.run_controller(&mut ctrl);
            let (jobs, stats) = (fingerprint(&sim), sim.stats());

            let mut stepped = GridSimulation::new(cfg, 19).unwrap();
            let mut sctrl = Chain::new(200);
            stepped.start_controller(&mut sctrl);
            let mut t = 0.0;
            while !sctrl.done() && stepped.queue.peek_time().is_some() {
                t += 500.0; // uneven, mid-protocol boundaries
                stepped.step_controller_until(&mut sctrl, SimTime::from_secs(t));
            }
            assert_eq!(fingerprint(&stepped), jobs, "stepped job audit diverged");
            assert_eq!(stepped.stats(), stats, "stepped stats diverged");
            assert_eq!(
                sctrl
                    .latencies
                    .iter()
                    .map(|l| l.to_bits())
                    .collect::<Vec<_>>(),
                ctrl.latencies
                    .iter()
                    .map(|l| l.to_bits())
                    .collect::<Vec<_>>(),
            );
        }
    }

    #[test]
    fn injected_background_jobs_occupy_slots() {
        // an injected job is indistinguishable from configured background
        // traffic: it queues at a weighted site, holds a slot for its
        // execution time, and delays client work behind it
        let mut cfg = GridConfig::pipeline_default();
        cfg.faults.p_silent_loss = 0.0;
        cfg.faults.p_transient_failure = 0.0;
        cfg.background = None;
        cfg.sites = vec![crate::config::SiteConfig {
            name: "tiny".into(),
            slots: 1,
            weight: 1.0,
        }];
        let mut sim = GridSimulation::new(cfg, 31).unwrap();
        // occupy the lone slot from t=0 for 5 000 s, then probe
        sim.inject_background(SimTime::ZERO, SimDuration::from_secs(5_000.0));
        let mut ctrl = CollectStarts::new(1);
        sim.run_controller(&mut ctrl);
        assert_eq!(sim.stats().background_submitted, 1);
        assert_eq!(sim.stats().background_started, 1);
        assert_eq!(ctrl.latencies.len(), 1);
        assert!(
            ctrl.latencies[0] >= 5_000.0,
            "client start should wait out the injected job, waited {}",
            ctrl.latencies[0]
        );
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn inject_background_rejects_past_instants() {
        let mut sim = GridSimulation::new(GridConfig::oracle(oracle_model(0.0)), 1).unwrap();
        let mut ctrl = CollectStarts::new(1);
        sim.run_controller(&mut ctrl); // advances the clock
        sim.inject_background(SimTime::ZERO, SimDuration::from_secs(1.0));
    }

    #[test]
    fn reset_clears_pending_timers_and_events() {
        // arm a far-future timer, reset, and confirm it never fires
        let mut sim = GridSimulation::new(GridConfig::oracle(oracle_model(0.0)), 5).unwrap();
        sim.set_timer(SimDuration::from_secs(1.0), 777);
        sim.submit();
        sim.reset(5);
        let mut ctrl = CollectStarts::new(10);
        sim.run_controller(&mut ctrl);
        assert_eq!(ctrl.deadline_tokens, 0, "stale timer leaked through reset");
        assert_eq!(sim.stats().client_submitted, 10);
        assert_eq!(sim.jobs().len(), 10, "stale job records leaked");
    }

    #[test]
    fn scope_tags_owners_and_namespaces_timers() {
        struct TwoOwners {
            tokens: Vec<u64>,
        }
        impl Controller for TwoOwners {
            fn start(&mut self, sim: &mut GridSimulation) {
                sim.set_scope(7);
                sim.submit();
                sim.set_timer(SimDuration::from_secs(1.0), 3);
                sim.set_scope(9);
                sim.submit();
                sim.set_timer(SimDuration::from_secs(2.0), 3);
                sim.set_scope(0);
                sim.submit();
                sim.set_timer(SimDuration::from_secs(3.0), 3);
            }
            fn on_event(&mut self, _sim: &mut GridSimulation, ev: Notification) {
                if let Notification::Timer { token, .. } = ev {
                    self.tokens.push(token);
                }
            }
            fn done(&self) -> bool {
                self.tokens.len() == 3
            }
        }
        let mut sim = GridSimulation::new(GridConfig::oracle(oracle_model(0.0)), 12).unwrap();
        let mut ctrl = TwoOwners { tokens: Vec::new() };
        sim.run_controller(&mut ctrl);
        // same raw token, three distinct namespaced deliveries in arm order
        assert_eq!(ctrl.tokens, vec![7 << 32 | 3, 9 << 32 | 3, 3]);
        let owners: Vec<u64> = sim.jobs().iter().map(|r| r.owner).collect();
        assert_eq!(owners, vec![7, 9, 0]);
    }

    #[test]
    fn default_exec_applies_to_plain_submit() {
        struct OneJob {
            finished_at: Option<f64>,
        }
        impl Controller for OneJob {
            fn start(&mut self, sim: &mut GridSimulation) {
                sim.set_default_exec(SimDuration::from_secs(500.0));
                sim.submit();
            }
            fn on_event(&mut self, _sim: &mut GridSimulation, ev: Notification) {
                if let Notification::JobFinished { at, .. } = ev {
                    self.finished_at = Some(at.as_secs());
                }
            }
            fn done(&self) -> bool {
                self.finished_at.is_some()
            }
        }
        let mut cfg = GridConfig::pipeline_default();
        cfg.faults.p_silent_loss = 0.0;
        cfg.faults.p_transient_failure = 0.0;
        cfg.background = None;
        let mut sim = GridSimulation::new(cfg, 13).unwrap();
        let mut ctrl = OneJob { finished_at: None };
        sim.run_controller(&mut ctrl);
        let rec = &sim.jobs()[0];
        let held = rec.terminated_at.unwrap().since(rec.started_at.unwrap());
        assert!(
            (held.as_secs() - 500.0).abs() < 1e-9,
            "job held its slot {} s",
            held.as_secs()
        );
        // reset clears both hooks
        sim.set_scope(4);
        sim.reset(13);
        assert_eq!(sim.scope(), 0);
        assert_eq!(sim.default_exec(), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "32 bits")]
    fn scoped_timer_rejects_wide_tokens() {
        let mut sim = GridSimulation::new(GridConfig::oracle(oracle_model(0.0)), 14).unwrap();
        sim.set_scope(1);
        sim.set_timer(SimDuration::from_secs(1.0), 1 << 33);
    }

    #[test]
    fn cancel_prevents_start() {
        struct CancelImmediately {
            started: bool,
            finished: bool,
        }
        impl Controller for CancelImmediately {
            fn start(&mut self, sim: &mut GridSimulation) {
                let id = sim.submit();
                assert!(sim.cancel(id));
                assert!(!sim.cancel(id)); // double cancel is a no-op
                sim.set_timer(SimDuration::from_secs(30_000.0), 1);
            }
            fn on_event(&mut self, _sim: &mut GridSimulation, ev: Notification) {
                match ev {
                    Notification::JobStarted { .. } => self.started = true,
                    Notification::Timer { .. } => self.finished = true,
                    _ => {}
                }
            }
            fn done(&self) -> bool {
                self.finished
            }
        }
        let mut sim = GridSimulation::new(GridConfig::oracle(oracle_model(0.0)), 3).unwrap();
        let mut ctrl = CancelImmediately {
            started: false,
            finished: false,
        };
        sim.run_controller(&mut ctrl);
        assert!(!ctrl.started, "cancelled job must never start");
        assert_eq!(sim.stats().client_cancelled, 1);
        assert_eq!(sim.stats().client_started, 0);
    }

    #[test]
    fn slow_cancellation_lets_jobs_start_anyway() {
        // with a long cancellation delay, an immediately-cancelled job can
        // still start (the burst-waste mechanism)
        struct CancelThenWatch {
            started: bool,
            timer_done: bool,
        }
        impl Controller for CancelThenWatch {
            fn start(&mut self, sim: &mut GridSimulation) {
                let id = sim.submit();
                assert!(sim.cancel(id)); // request accepted…
                sim.set_timer(SimDuration::from_secs(30_000.0), 1);
            }
            fn on_event(&mut self, _sim: &mut GridSimulation, ev: Notification) {
                match ev {
                    Notification::JobStarted { .. } => self.started = true,
                    Notification::Timer { .. } => self.timer_done = true,
                    _ => {}
                }
            }
            fn done(&self) -> bool {
                self.timer_done
            }
        }
        let mut cfg = GridConfig::oracle(oracle_model(0.0));
        cfg.wms.cancellation_delay_mean_s = 50_000.0; // far beyond any latency
        let mut sim = GridSimulation::new(cfg, 21).unwrap();
        let mut ctrl = CancelThenWatch {
            started: false,
            timer_done: false,
        };
        sim.run_controller(&mut ctrl);
        assert!(ctrl.started, "job should start before the cancel lands");
        assert_eq!(sim.stats().client_cancelled, 0);
    }

    #[test]
    fn rejects_negative_cancellation_delay() {
        let mut cfg = GridConfig::oracle(oracle_model(0.0));
        cfg.wms.cancellation_delay_mean_s = -1.0;
        assert!(GridSimulation::new(cfg, 1).is_err());
    }

    #[test]
    fn pipeline_jobs_start_and_conserve_states() {
        let mut cfg = GridConfig::pipeline_default();
        cfg.faults.p_silent_loss = 0.0;
        cfg.faults.p_transient_failure = 0.0;
        cfg.background = None;
        let mut sim = GridSimulation::new(cfg, 4).unwrap();
        let mut ctrl = CollectStarts::new(200);
        sim.run_controller(&mut ctrl);
        assert_eq!(ctrl.latencies.len(), 200);
        // pipeline latency = three exponential hops; mean ≈ 15+45+30 = 90
        let mean = ctrl.latencies.iter().sum::<f64>() / 200.0;
        assert!(mean > 40.0 && mean < 200.0, "pipeline mean {mean}");
    }

    #[test]
    fn pipeline_faults_surface_or_stick() {
        let mut cfg = GridConfig::pipeline_default();
        cfg.faults.p_silent_loss = 0.5;
        cfg.faults.p_transient_failure = 0.5;
        cfg.background = None;

        struct CountTerminal {
            failed: u64,
            started: u64,
            timer: bool,
        }
        impl Controller for CountTerminal {
            fn start(&mut self, sim: &mut GridSimulation) {
                for _ in 0..400 {
                    sim.submit();
                }
                sim.set_timer(SimDuration::from_secs(100_000.0), 9);
            }
            fn on_event(&mut self, _sim: &mut GridSimulation, ev: Notification) {
                match ev {
                    Notification::JobFailed { .. } => self.failed += 1,
                    Notification::JobStarted { .. } => self.started += 1,
                    Notification::Timer { .. } => self.timer = true,
                    _ => {}
                }
            }
            fn done(&self) -> bool {
                self.timer
            }
        }
        let mut sim = GridSimulation::new(cfg, 5).unwrap();
        let mut ctrl = CountTerminal {
            failed: 0,
            started: 0,
            timer: false,
        };
        sim.run_controller(&mut ctrl);
        let stats = sim.stats();
        assert_eq!(stats.client_submitted, 400);
        // every job is accounted for exactly once
        assert_eq!(
            stats.client_started + stats.client_failed + stats.client_stuck,
            400
        );
        assert!((stats.client_stuck as f64 / 400.0 - 0.5).abs() < 0.1);
        // of the survivors, about half fail transiently
        let survivors = 400 - stats.client_stuck;
        assert!((stats.client_failed as f64 / survivors as f64 - 0.5).abs() < 0.12);
        assert_eq!(ctrl.failed, stats.client_failed);
    }

    #[test]
    fn background_load_creates_queueing() {
        let mut cfg = GridConfig::pipeline_default();
        cfg.faults.p_silent_loss = 0.0;
        cfg.faults.p_transient_failure = 0.0;
        // saturate: tiny farm, heavy arrivals
        cfg.sites = vec![crate::config::SiteConfig {
            name: "tiny".into(),
            slots: 2,
            weight: 1.0,
        }];
        cfg.background = Some(crate::config::BackgroundLoadConfig {
            arrival_rate_per_s: 0.05,
            exec_mean_s: 600.0,
            exec_cv: 1.0,
        });
        let mut sim = GridSimulation::new(cfg, 6).unwrap();
        let mut ctrl = CollectStarts::new(50);
        sim.run_controller(&mut ctrl);
        assert!(sim.stats().background_submitted > 0);
        // queueing behind background work pushes latency well above the
        // pure hop delays (~90 s)
        let mean = ctrl.latencies.iter().sum::<f64>() / ctrl.latencies.len() as f64;
        assert!(mean > 150.0, "expected congestion, mean {mean}");
    }

    #[test]
    fn horizon_stops_runaway_runs() {
        let mut cfg = GridConfig::pipeline_default();
        cfg.horizon = SimDuration::from_secs(100.0);
        let mut sim = GridSimulation::new(cfg, 7).unwrap();
        // controller that never finishes on its own
        struct Never;
        impl Controller for Never {
            fn start(&mut self, sim: &mut GridSimulation) {
                sim.submit();
            }
            fn on_event(&mut self, _: &mut GridSimulation, _: Notification) {}
            fn done(&self) -> bool {
                false
            }
        }
        sim.run_controller(&mut Never);
        assert!(sim.now().as_secs() <= 100.0 + 1e-9);
    }

    #[test]
    fn job_records_are_audit_complete() {
        let mut sim = GridSimulation::new(GridConfig::oracle(oracle_model(0.0)), 8).unwrap();
        let mut ctrl = CollectStarts::new(50);
        sim.run_controller(&mut ctrl);
        for rec in sim.jobs() {
            // the run stops the instant the last start is observed, so its
            // same-instant Finish event may be left unprocessed
            assert!(
                rec.state == JobState::Finished || rec.state == JobState::Running,
                "unexpected state {:?}",
                rec.state
            );
            let started = rec.started_at.unwrap();
            assert!(started >= rec.submitted_at);
            if rec.state == JobState::Finished {
                assert_eq!(rec.terminated_at.unwrap(), started); // zero exec time
            }
        }
    }
}
