//! Simulation configuration: latency regime, topology, faults, load.

use crate::modulation::Modulation;
use crate::time::SimDuration;
use gridstrat_workload::WeekModel;
use std::sync::Arc;

/// How job latencies come about.
#[derive(Debug, Clone)]
pub enum LatencyMode {
    /// Latency of each client job is drawn i.i.d. from a calibrated weekly
    /// model; draws at/above the censoring threshold make the job
    /// [`crate::job::JobState::Stuck`]. Matches the paper's probabilistic
    /// assumptions exactly — used for validating the closed-form models.
    Oracle(WeekModel),
    /// Latency of each client job is resampled uniformly (i.i.d., with
    /// replacement) from a recorded trace's latencies; resampled values
    /// at/above `threshold_s` make the job stuck. This executes strategies
    /// against *exactly* the empirical law the analysis was tuned on —
    /// the tightest possible analytic-vs-simulated comparison.
    Resample {
        /// Recorded latencies (censored values included, at the threshold).
        latencies: Vec<f64>,
        /// Censoring threshold of the recording.
        threshold_s: f64,
    },
    /// Latency emerges from the simulated middleware pipeline: UI→WMS hop,
    /// match-making, dispatch, CE queueing behind background load, faults.
    Pipeline,
}

/// One computing site (a Computing Element fronting a batch farm).
#[derive(Debug, Clone)]
pub struct SiteConfig {
    /// Human-readable site name.
    pub name: String,
    /// Number of worker slots (concurrently running jobs).
    pub slots: usize,
    /// Relative weight for random site selection.
    pub weight: f64,
}

/// WMS behaviour (hop delays are exponential with the given means).
#[derive(Debug, Clone)]
pub struct WmsConfig {
    /// Mean UI → WMS transfer + registration delay, seconds.
    pub ui_to_wms_mean_s: f64,
    /// Mean match-making service time, seconds.
    pub matchmaking_mean_s: f64,
    /// Mean WMS → CE dispatch delay, seconds.
    pub dispatch_mean_s: f64,
    /// Mean delay before a client cancellation takes effect, seconds.
    /// `0` means instantaneous. On real middleware a cancel is itself a
    /// WMS round-trip, so redundant burst copies can still *start* (and
    /// burn a slot) while their cancellation is in flight — the waste
    /// administrators complain about.
    pub cancellation_delay_mean_s: f64,
    /// Site-selection policy.
    pub ranking: RankingPolicy,
}

/// How the WMS picks a site for a matched job.
///
/// A production meta-scheduler works from *partial, stale* information
/// (paper §1); `LeastLoaded { stale_prob }` models that: with probability
/// `stale_prob` the choice is weight-random (information was stale),
/// otherwise the currently least-loaded site is picked.
#[derive(Debug, Clone, Copy)]
pub enum RankingPolicy {
    /// Pick a site at random, proportional to its weight.
    WeightedRandom,
    /// Pick the least-loaded site, falling back to weight-random with the
    /// given probability (stale information).
    LeastLoaded {
        /// Probability that the load information is stale.
        stale_prob: f64,
    },
}

/// Fault injection for the pipeline regime.
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    /// Probability that a submission is silently lost (the job never
    /// produces another event — the paper's outliers).
    pub p_silent_loss: f64,
    /// Probability that a job suffers a *transient* middleware failure
    /// (surfacing as an error after a delay) instead of being match-made.
    pub p_transient_failure: f64,
    /// Mean delay before a transient failure surfaces, seconds.
    pub failure_delay_mean_s: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            p_silent_loss: 0.05,
            p_transient_failure: 0.02,
            failure_delay_mean_s: 120.0,
        }
    }
}

/// Background (non-client) traffic keeping the farm busy.
#[derive(Debug, Clone, Copy)]
pub struct BackgroundLoadConfig {
    /// Poisson arrival rate of background jobs, jobs per second (whole grid).
    pub arrival_rate_per_s: f64,
    /// Log-normal mean of background execution times, seconds.
    pub exec_mean_s: f64,
    /// Coefficient of variation of background execution times.
    pub exec_cv: f64,
}

impl Default for BackgroundLoadConfig {
    fn default() -> Self {
        BackgroundLoadConfig {
            arrival_rate_per_s: 0.4,
            exec_mean_s: 1800.0,
            exec_cv: 1.5,
        }
    }
}

/// Complete simulation configuration.
#[derive(Debug, Clone)]
pub struct GridConfig {
    /// Latency regime.
    pub latency: LatencyMode,
    /// Sites (pipeline regime; ignored by the oracle).
    pub sites: Vec<SiteConfig>,
    /// WMS behaviour (pipeline regime).
    pub wms: WmsConfig,
    /// Fault injection (pipeline regime).
    pub faults: FaultConfig,
    /// Background traffic; `None` disables it.
    pub background: Option<BackgroundLoadConfig>,
    /// Hard horizon: events beyond this instant are not processed. Guards
    /// against infinite background-traffic runs.
    pub horizon: SimDuration,
    /// Time-varying load modulation (see [`crate::modulation`]); `None`
    /// keeps the grid stationary. Behind an `Arc` so sharing a config
    /// across thousands of Monte-Carlo engines stays cheap.
    pub modulation: Option<Arc<dyn Modulation>>,
}

impl GridConfig {
    /// Oracle-mode configuration for validating analytic strategy models
    /// against a weekly latency model.
    pub fn oracle(model: WeekModel) -> Self {
        GridConfig {
            latency: LatencyMode::Oracle(model),
            sites: Vec::new(),
            wms: WmsConfig::default(),
            faults: FaultConfig {
                p_silent_loss: 0.0,
                p_transient_failure: 0.0,
                failure_delay_mean_s: 1.0,
            },
            background: None,
            horizon: SimDuration::from_secs(10_000_000.0),
            modulation: None,
        }
    }

    /// Resample-mode configuration: client latencies are drawn i.i.d. from
    /// the recorded values, so strategy executions follow exactly the
    /// empirical law of the trace.
    pub fn resample(latencies: Vec<f64>, threshold_s: f64) -> Self {
        let mut cfg = Self::oracle(
            WeekModel::calibrate("placeholder", 2.0, 1.0, 0.0, 0.0, 10.0)
                .expect("static placeholder parameters are valid"),
        );
        cfg.latency = LatencyMode::Resample {
            latencies,
            threshold_s,
        };
        cfg
    }

    /// A small EGEE-like pipeline grid: a handful of heterogeneous sites,
    /// default WMS delays, default faults and background load.
    pub fn pipeline_default() -> Self {
        GridConfig {
            latency: LatencyMode::Pipeline,
            sites: vec![
                SiteConfig {
                    name: "CC-LYON".into(),
                    slots: 120,
                    weight: 3.0,
                },
                SiteConfig {
                    name: "CNAF".into(),
                    slots: 80,
                    weight: 2.0,
                },
                SiteConfig {
                    name: "NIKHEF".into(),
                    slots: 60,
                    weight: 2.0,
                },
                SiteConfig {
                    name: "GRIF".into(),
                    slots: 40,
                    weight: 1.0,
                },
                SiteConfig {
                    name: "RAL".into(),
                    slots: 30,
                    weight: 1.0,
                },
            ],
            wms: WmsConfig::default(),
            faults: FaultConfig::default(),
            background: Some(BackgroundLoadConfig::default()),
            horizon: SimDuration::from_secs(10_000_000.0),
            modulation: None,
        }
    }

    /// Validates internal consistency; called by the engine at construction.
    pub fn validate(&self) -> Result<(), String> {
        let probs = [
            ("p_silent_loss", self.faults.p_silent_loss),
            ("p_transient_failure", self.faults.p_transient_failure),
        ];
        for (name, p) in probs {
            if !(p.is_finite() && (0.0..=1.0).contains(&p)) {
                return Err(format!("{name} must be in [0,1], got {p}"));
            }
        }
        if let RankingPolicy::LeastLoaded { stale_prob } = self.wms.ranking {
            if !(stale_prob.is_finite() && (0.0..=1.0).contains(&stale_prob)) {
                return Err(format!("stale_prob must be in [0,1], got {stale_prob}"));
            }
        }
        if let LatencyMode::Resample {
            latencies,
            threshold_s,
        } = &self.latency
        {
            if latencies.is_empty() {
                return Err("resample mode requires at least one recorded latency".into());
            }
            if latencies.iter().all(|&l| l >= *threshold_s) {
                return Err("resample mode requires at least one non-censored latency".into());
            }
            if latencies.iter().any(|&l| !l.is_finite() || l < 0.0) {
                return Err("recorded latencies must be finite and non-negative".into());
            }
        }
        if matches!(self.latency, LatencyMode::Pipeline) {
            if self.sites.is_empty() {
                return Err("pipeline mode requires at least one site".into());
            }
            if self.sites.iter().any(|s| s.slots == 0) {
                return Err("sites must have at least one slot".into());
            }
            if self
                .sites
                .iter()
                .any(|s| !(s.weight.is_finite() && s.weight > 0.0))
            {
                return Err("site weights must be positive".into());
            }
        }
        if let Some(bg) = &self.background {
            if !(bg.arrival_rate_per_s.is_finite() && bg.arrival_rate_per_s > 0.0) {
                return Err("background arrival rate must be positive".into());
            }
            if bg.exec_mean_s <= 0.0 || bg.exec_cv <= 0.0 {
                return Err("background execution moments must be positive".into());
            }
        }
        for (name, v) in [
            ("ui_to_wms_mean_s", self.wms.ui_to_wms_mean_s),
            ("matchmaking_mean_s", self.wms.matchmaking_mean_s),
            ("dispatch_mean_s", self.wms.dispatch_mean_s),
            ("failure_delay_mean_s", self.faults.failure_delay_mean_s),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(format!("{name} must be positive, got {v}"));
            }
        }
        let cd = self.wms.cancellation_delay_mean_s;
        if !(cd.is_finite() && cd >= 0.0) {
            return Err(format!(
                "cancellation_delay_mean_s must be finite and >= 0, got {cd}"
            ));
        }
        Ok(())
    }
}

impl Default for WmsConfig {
    fn default() -> Self {
        WmsConfig {
            ui_to_wms_mean_s: 15.0,
            matchmaking_mean_s: 45.0,
            dispatch_mean_s: 30.0,
            cancellation_delay_mean_s: 0.0,
            ranking: RankingPolicy::LeastLoaded { stale_prob: 0.3 },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert!(GridConfig::pipeline_default().validate().is_ok());
        let m = WeekModel::calibrate("w", 500.0, 700.0, 0.1, 50.0, 1e4).unwrap();
        assert!(GridConfig::oracle(m).validate().is_ok());
    }

    #[test]
    fn rejects_bad_probabilities() {
        let mut c = GridConfig::pipeline_default();
        c.faults.p_silent_loss = 1.5;
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_empty_pipeline_topology() {
        let mut c = GridConfig::pipeline_default();
        c.sites.clear();
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_zero_slot_site() {
        let mut c = GridConfig::pipeline_default();
        c.sites[0].slots = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_nonpositive_delays() {
        let mut c = GridConfig::pipeline_default();
        c.wms.matchmaking_mean_s = 0.0;
        assert!(c.validate().is_err());
    }
}
