//! # gridstrat-sim
//!
//! Discrete-event simulator of an EGEE-like production grid, built so the
//! HPDC'09 strategy models can be validated against — and exercised on — a
//! concrete job-submission pipeline rather than abstract formulas.
//!
//! ## What is modelled
//!
//! The paper (§1, §3.1) describes the biomed-VO submission path: a **User
//! Interface** submits to a **Workload Management Server** which queues,
//! match-makes and dispatches jobs to per-site **Computing Elements**, each
//! fronting a batch queue with a bounded number of slots; roughly ten
//! services must all work for a job to start, and failures at any hop are
//! common. The simulator reproduces that lifecycle:
//!
//! ```text
//! submit ─→ UI→WMS delay ─→ WMS match-making ─→ dispatch ─→ CE queue ─→ slot ─→ RUNNING
//!    │           │                 │                             │
//!    └ silent loss (outlier)       └ transient failure           └ background load
//! ```
//!
//! Two latency regimes are supported ([`LatencyMode`]):
//!
//! * **Oracle** — each job's grid latency is drawn i.i.d. from a
//!   [`gridstrat_workload::WeekModel`]. This matches the independence
//!   assumptions of the paper's probabilistic models *exactly*, so
//!   Monte-Carlo runs validate the closed forms to statistical precision.
//! * **Pipeline** — latency *emerges* from match-making delays, queue waits
//!   behind background jobs, and fault/retry behaviour. This regime powers
//!   the multi-user ecosystem experiments (e.g. every user adopting
//!   multi-submission) the paper lists as future work — see the
//!   `gridstrat-fleet` crate, which multiplexes whole user populations
//!   onto one pipeline engine via the client-scope routing hooks
//!   ([`GridSimulation::set_scope`](engine::GridSimulation::set_scope)).
//!
//! ## Architecture
//!
//! * [`time`] — millisecond-resolution simulation clock;
//! * [`event`] — deterministic event queue (time, sequence) ordered;
//! * [`job`] — job state machine and per-job audit records;
//! * [`config`] — grid topology, fault, background-load and latency-mode
//!   configuration;
//! * [`engine`] — the [`GridSimulation`] event loop and the [`Controller`]
//!   trait through which client-side submission strategies drive it, plus
//!   the multi-owner routing hooks (client scopes, owner-tagged jobs,
//!   namespaced timers) that let many independent agents share one engine;
//! * [`probe`] — the constant-probes-in-flight measurement harness of §3.2,
//!   producing [`gridstrat_workload::TraceSet`]s.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod config;
pub mod engine;
pub mod event;
pub mod job;
pub mod modulation;
pub mod probe;
pub mod time;

pub use config::{BackgroundLoadConfig, FaultConfig, GridConfig, LatencyMode, SiteConfig};
pub use engine::{Controller, EngineStats, GridSimulation, Notification};
pub use job::{JobId, JobRecord, JobState};
pub use modulation::{Modulation, MIN_INTENSITY};
pub use probe::ProbeHarness;
pub use time::{SimDuration, SimTime};
