//! Time-varying load modulation of the simulated grid.
//!
//! The paper calls production-grid workloads "high and non-stationary"
//! (§1) but tunes every strategy against one frozen weekly law. A
//! [`Modulation`] closes that gap for the *live* engine: it maps the
//! simulation clock to a pair of scale factors — a queue-wait **intensity**
//! and a **fault factor** — that [`crate::GridSimulation`] applies at every
//! client submission (and, in pipeline mode, at every middleware hop):
//!
//! * **Oracle mode** — a submission at time `t` draws from the modulated
//!   law: with probability `clamp(ρ·fault_factor(t), 0, MAX_FAULT_RATIO)`
//!   an outlier, otherwise `shift + intensity(t)·(body − shift)`, floored
//!   at the hard minimum `shift` (incompressible middleware delay);
//! * **Pipeline mode** — the UI→WMS, match-making and dispatch hop means
//!   are multiplied by `intensity(now)` at the instant each hop is
//!   scheduled, and both fault probabilities by `fault_factor(now)`
//!   (clamped to [`MAX_FAULT_RATIO`]).
//!
//! The modulation lives in the shared [`crate::GridConfig`], so it
//! survives [`GridSimulation::reset`](crate::GridSimulation::reset)
//! untouched and thousands of Monte-Carlo engines can share one instance.
//! It is queried with the engine's own deterministic clock and consumes no
//! randomness, so modulated runs stay **bit-identical** across thread
//! counts and engine reuse, exactly like unmodulated ones.

use gridstrat_workload::{DiurnalModel, RegimeShiftModel, WeekModel, MAX_FAULT_RATIO};

/// Floor applied to intensity factors inside the engine: a modulation that
/// returns a non-positive (or denormal) intensity would produce zero-mean
/// hop delays and degenerate latency laws, so the engine clamps here.
pub const MIN_INTENSITY: f64 = 1e-6;

/// A deterministic map from simulation time to load scale factors.
///
/// Implementations must be pure functions of `t` (no interior mutability,
/// no randomness): the engine queries them re-entrantly from the event
/// loop and relies on identical answers for identical clocks to keep
/// Monte-Carlo sweeps bit-identical across thread counts.
pub trait Modulation: Send + Sync + std::fmt::Debug {
    /// Multiplier on the queue-wait component of latency (oracle mode) or
    /// on the middleware hop-delay means (pipeline mode) at time `t`.
    /// Must be positive and finite; the engine floors it at
    /// [`MIN_INTENSITY`].
    fn intensity_at(&self, t: f64) -> f64;

    /// Multiplier on the outlier ratio (oracle mode) or the fault
    /// probabilities (pipeline mode) at time `t`. Must be non-negative and
    /// finite; effective probabilities are clamped to
    /// `[0, MAX_FAULT_RATIO]`.
    fn fault_factor_at(&self, t: f64) -> f64;

    /// The frozen instantaneous oracle law at time `t` for a given base
    /// week — the law regret accounting tunes omniscient strategies
    /// against. Default: scale `base` by the two factors.
    fn model_at(&self, base: &WeekModel, t: f64) -> WeekModel {
        base.modulated(
            self.intensity_at(t).max(MIN_INTENSITY),
            self.fault_factor_at(t),
        )
    }
}

impl Modulation for DiurnalModel {
    fn intensity_at(&self, t: f64) -> f64 {
        DiurnalModel::intensity_at(self, t)
    }

    /// The diurnal model drives faults with the same sinusoid as latency
    /// (congestion loses jobs), matching
    /// [`DiurnalModel::rho_at`] up to the shared clamp the engine applies.
    fn fault_factor_at(&self, t: f64) -> f64 {
        DiurnalModel::intensity_at(self, t)
    }
}

impl Modulation for RegimeShiftModel {
    fn intensity_at(&self, t: f64) -> f64 {
        RegimeShiftModel::intensity_at(self, t)
    }

    fn fault_factor_at(&self, t: f64) -> f64 {
        RegimeShiftModel::fault_factor_at(self, t)
    }
}

/// Clamps a fault probability scaled by a modulation/scenario factor to
/// the shared `[0, MAX_FAULT_RATIO]` range.
pub(crate) fn clamp_fault(p: f64) -> f64 {
    p.clamp(0.0, MAX_FAULT_RATIO)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn week() -> WeekModel {
        WeekModel::calibrate("m", 500.0, 600.0, 0.10, 150.0, 10_000.0).unwrap()
    }

    #[test]
    fn diurnal_modulation_matches_its_own_accessors() {
        let d = DiurnalModel::new(week(), 0.6, 86_400.0).unwrap();
        let m: &dyn Modulation = &d;
        for t in [0.0, 10_000.0, 21_600.0, 64_800.0, 200_000.0] {
            assert_eq!(m.intensity_at(t).to_bits(), d.intensity_at(t).to_bits());
            assert_eq!(m.fault_factor_at(t).to_bits(), d.intensity_at(t).to_bits());
            // the default model_at agrees with the workload-side helper
            let a = m.model_at(&d.base, t);
            let b = d.model_at(t);
            assert_eq!(a.body_mu.to_bits(), b.body_mu.to_bits());
            assert_eq!(a.rho.to_bits(), b.rho.to_bits());
        }
    }

    #[test]
    fn regime_modulation_switches_at_changepoints() {
        let r = RegimeShiftModel::step(week(), 1_000.0, 1.0, 2.0).unwrap();
        let m: &dyn Modulation = &r;
        assert_eq!(m.intensity_at(999.0), 1.0);
        assert_eq!(m.intensity_at(1_000.0), 2.0);
        assert_eq!(m.fault_factor_at(1_000.0), 2.0);
    }

    #[test]
    fn clamp_fault_uses_shared_ceiling() {
        assert_eq!(clamp_fault(2.0), MAX_FAULT_RATIO);
        assert_eq!(clamp_fault(-0.5), 0.0);
        assert_eq!(clamp_fault(0.3), 0.3);
    }
}
