//! Job identity, state machine and audit records.
//!
//! The state machine mirrors the EGEE job lifecycle the paper describes:
//! a job traverses several middleware hops before it ever reaches a worker
//! node, and can be lost, fail or be cancelled at any pre-running stage.
//!
//! ```text
//! Submitted → AtWms → Matched → Queued → Running → Finished
//!     │         │        │        │
//!     └─────────┴────────┴────────┴──→ {Cancelled, Failed, Stuck}
//! ```

use crate::time::SimTime;

/// Opaque job identifier, unique within one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job#{}", self.0)
    }
}

/// Lifecycle state of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Submitted from the UI, travelling to the WMS.
    Submitted,
    /// In the WMS input queue / being match-made.
    AtWms,
    /// Matched to a site, being dispatched.
    Matched,
    /// Waiting in the CE batch queue.
    Queued,
    /// Executing on a worker node.
    Running,
    /// Execution completed and the slot was released.
    Finished,
    /// Cancelled by the client before starting.
    Cancelled,
    /// A middleware hop failed; the job will never start.
    Failed,
    /// Silently lost (the paper's outliers): no further events will ever
    /// concern this job.
    Stuck,
}

impl JobState {
    /// True for states from which the job can still start running.
    pub fn is_pending(self) -> bool {
        matches!(
            self,
            JobState::Submitted | JobState::AtWms | JobState::Matched | JobState::Queued
        )
    }

    /// True for states in which the job occupies the client's attention no
    /// longer (nothing more will happen).
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Finished | JobState::Cancelled | JobState::Failed | JobState::Stuck
        )
    }
}

/// Who submitted a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobOrigin {
    /// A client job submitted through the [`crate::engine::GridSimulation`]
    /// controller API (strategies, probes).
    Client,
    /// Synthetic background traffic from other VOs/users.
    Background,
}

/// Full audit record of one job.
#[derive(Debug, Clone, Copy)]
pub struct JobRecord {
    /// The job's identifier.
    pub id: JobId,
    /// Client or background.
    pub origin: JobOrigin,
    /// Owner tag: the client scope that was active when the job was
    /// submitted (see [`crate::engine::GridSimulation::set_scope`]).
    /// `0` for unscoped submissions and background traffic. Multi-user
    /// layers (the `gridstrat-fleet` crate) use this to route job
    /// notifications back to the submitting agent.
    pub owner: u64,
    /// Current state.
    pub state: JobState,
    /// Submission instant.
    pub submitted_at: SimTime,
    /// Site index the WMS matched the job to, once known.
    pub site: Option<usize>,
    /// Instant the job started running, if it did.
    pub started_at: Option<SimTime>,
    /// Instant the job reached a terminal state, if it has.
    pub terminated_at: Option<SimTime>,
}

impl JobRecord {
    /// Creates a fresh record in [`JobState::Submitted`].
    pub fn new(id: JobId, origin: JobOrigin, submitted_at: SimTime) -> Self {
        JobRecord {
            id,
            origin,
            owner: 0,
            state: JobState::Submitted,
            submitted_at,
            site: None,
            started_at: None,
            terminated_at: None,
        }
    }

    /// Grid latency (submission → start) in seconds, if the job started.
    pub fn latency_secs(&self) -> Option<f64> {
        self.started_at
            .map(|s| s.since(self.submitted_at).as_secs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_classification() {
        assert!(JobState::Submitted.is_pending());
        assert!(JobState::Queued.is_pending());
        assert!(!JobState::Running.is_pending());
        assert!(!JobState::Running.is_terminal());
        assert!(JobState::Finished.is_terminal());
        assert!(JobState::Stuck.is_terminal());
        assert!(JobState::Cancelled.is_terminal());
        assert!(JobState::Failed.is_terminal());
    }

    #[test]
    fn latency_computation() {
        let mut r = JobRecord::new(JobId(1), JobOrigin::Client, SimTime::from_secs(10.0));
        assert_eq!(r.latency_secs(), None);
        r.started_at = Some(SimTime::from_secs(252.5));
        assert!((r.latency_secs().unwrap() - 242.5).abs() < 1e-9);
    }

    #[test]
    fn display() {
        assert_eq!(JobId(7).to_string(), "job#7");
    }
}
