//! The constant-probes-in-flight measurement harness (paper §3.2).
//!
//! The paper's traces were collected by keeping a constant number of probe
//! jobs inside the system: each probe is an almost-null job, a new probe is
//! submitted whenever one completes, and probes still waiting after 10 000 s
//! are cancelled and counted as outliers. [`ProbeHarness`] reproduces that
//! protocol as a [`Controller`], so the same measurement can be run against
//! either latency regime and yields a [`TraceSet`] ready for the analysis
//! pipeline — closing the loop from simulated infrastructure to fitted
//! strategy models.

use crate::engine::{Controller, GridSimulation, Notification};
use crate::job::JobId;
use crate::time::SimDuration;
use gridstrat_workload::{ProbeRecord, ProbeStatus, TraceSet};
use std::collections::HashSet;

/// Probe measurement controller.
///
/// Submits `in_flight` probes at start; on every completion, visible
/// failure, or censor-timeout it records a measurement and immediately
/// submits a replacement, until `target` records have been collected.
/// Failures and timeouts are both recorded as outliers at the censoring
/// threshold, matching the paper's fault-inclusive `ρ`.
#[derive(Debug)]
pub struct ProbeHarness {
    name: String,
    target: usize,
    in_flight: usize,
    threshold: SimDuration,
    records: Vec<ProbeRecord>,
    active: HashSet<JobId>,
    submitted: usize,
}

impl ProbeHarness {
    /// Creates a harness that collects `target` probe records with
    /// `in_flight` probes maintained in the system and the given censoring
    /// threshold in seconds.
    pub fn new(name: impl Into<String>, target: usize, in_flight: usize, threshold_s: f64) -> Self {
        assert!(target > 0, "need a positive record target");
        assert!(in_flight > 0, "need at least one probe in flight");
        assert!(threshold_s > 0.0, "threshold must be positive");
        ProbeHarness {
            name: name.into(),
            target,
            in_flight,
            threshold: SimDuration::from_secs(threshold_s),
            records: Vec::with_capacity(target),
            active: HashSet::new(),
            submitted: 0,
        }
    }

    /// Records collected so far.
    pub fn records(&self) -> &[ProbeRecord] {
        &self.records
    }

    /// Consumes the harness into a validated [`TraceSet`]
    /// (records sorted by submission time).
    pub fn into_trace(mut self) -> TraceSet {
        self.records.sort_by(|a, b| {
            a.submitted_at
                .partial_cmp(&b.submitted_at)
                .expect("finite timestamps")
        });
        TraceSet::new(self.name.clone(), self.threshold.as_secs(), self.records)
            .expect("harness records are consistent by construction")
    }

    fn launch_probe(&mut self, sim: &mut GridSimulation) {
        // keep submitting only while more measurements are still wanted;
        // probes already in flight will top up the record count
        if self.submitted >= self.target {
            return;
        }
        let id = sim.submit();
        self.submitted += 1;
        self.active.insert(id);
        // censor timer; token = job id for direct correlation
        sim.set_timer(self.threshold, id.0);
    }

    fn record(&mut self, sim: &GridSimulation, id: JobId, latency_s: f64, status: ProbeStatus) {
        let submitted_at = sim.job(id).submitted_at.as_secs();
        self.records.push(ProbeRecord {
            submitted_at,
            latency_s,
            status,
        });
    }
}

impl Controller for ProbeHarness {
    fn start(&mut self, sim: &mut GridSimulation) {
        for _ in 0..self.in_flight.min(self.target) {
            self.launch_probe(sim);
        }
    }

    fn on_event(&mut self, sim: &mut GridSimulation, ev: Notification) {
        match ev {
            Notification::JobStarted { id, at } => {
                // probes are null jobs: start ≈ completion; measure latency
                // at start exactly as the paper defines it
                if self.active.remove(&id) {
                    let lat = at.since(sim.job(id).submitted_at).as_secs();
                    self.record(sim, id, lat, ProbeStatus::Completed);
                    self.launch_probe(sim);
                }
            }
            Notification::JobFailed { id, .. } => {
                if self.active.remove(&id) {
                    // visible fault: counted in ρ like a timeout
                    self.record(sim, id, self.threshold.as_secs(), ProbeStatus::TimedOut);
                    self.launch_probe(sim);
                }
            }
            Notification::Timer { token, .. } => {
                let id = JobId(token);
                if self.active.remove(&id) {
                    sim.cancel(id);
                    self.record(sim, id, self.threshold.as_secs(), ProbeStatus::TimedOut);
                    self.launch_probe(sim);
                }
            }
            Notification::JobFinished { .. } => {}
        }
    }

    fn done(&self) -> bool {
        self.records.len() >= self.target
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GridConfig;
    use gridstrat_workload::WeekModel;

    fn run_oracle(rho: f64, n: usize, seed: u64) -> TraceSet {
        let model = WeekModel::calibrate("probe-test", 500.0, 700.0, rho, 50.0, 10_000.0).unwrap();
        let mut sim = GridSimulation::new(GridConfig::oracle(model), seed).unwrap();
        let mut harness = ProbeHarness::new("probe-test", n, 25, 10_000.0);
        sim.run_controller(&mut harness);
        harness.into_trace()
    }

    #[test]
    fn collects_exactly_target_records() {
        let t = run_oracle(0.1, 500, 1);
        assert_eq!(t.len(), 500);
    }

    #[test]
    fn measured_statistics_match_oracle_model() {
        let t = run_oracle(0.15, 3000, 2);
        assert!(
            (t.outlier_ratio() - 0.15).abs() < 0.03,
            "rho {}",
            t.outlier_ratio()
        );
        assert!(
            (t.body_mean() - 500.0).abs() < 50.0,
            "mean {}",
            t.body_mean()
        );
    }

    #[test]
    fn outliers_recorded_at_threshold() {
        let t = run_oracle(0.4, 400, 3);
        for r in &t.records {
            if r.is_outlier() {
                assert_eq!(r.latency_s, 10_000.0);
            } else {
                assert!(r.latency_s < 10_000.0);
            }
        }
        assert!(t.n_outliers() > 0);
    }

    #[test]
    fn trace_feeds_analysis_pipeline() {
        let t = run_oracle(0.1, 1000, 4);
        let e = t.ecdf().unwrap();
        assert_eq!(e.n_total(), 1000);
        // defective cdf saturates near 1 - rho
        assert!((e.value(9_999.0) - 0.9).abs() < 0.05);
    }

    #[test]
    fn works_against_pipeline_with_faults() {
        let mut cfg = GridConfig::pipeline_default();
        cfg.background = None; // keep it fast
        cfg.faults.p_silent_loss = 0.2;
        cfg.faults.p_transient_failure = 0.1;
        let mut sim = GridSimulation::new(cfg, 5).unwrap();
        let mut harness = ProbeHarness::new("pipe", 300, 10, 10_000.0);
        sim.run_controller(&mut harness);
        let t = harness.into_trace();
        assert_eq!(t.len(), 300);
        // silent losses time out, transient failures are counted too:
        // overall fault ratio ≈ 0.2 + 0.8·0.1 = 0.28
        assert!(
            (t.outlier_ratio() - 0.28).abs() < 0.08,
            "rho {}",
            t.outlier_ratio()
        );
        // hop latencies keep body mean near 90 s
        assert!(t.body_mean() > 30.0 && t.body_mean() < 300.0);
    }

    #[test]
    fn constant_in_flight_is_maintained() {
        let t = run_oracle(0.0, 200, 10);
        // run_oracle keeps 25 probes in flight: exactly 25 submitted at t = 0
        let at_zero = t.records.iter().filter(|r| r.submitted_at == 0.0).count();
        assert_eq!(at_zero, 25);
    }

    #[test]
    #[should_panic(expected = "positive record target")]
    fn rejects_zero_target() {
        ProbeHarness::new("x", 0, 5, 100.0);
    }
}
