//! Deterministic event queue.
//!
//! Events are totally ordered by `(time, sequence)`: two events scheduled
//! for the same instant fire in scheduling order. This makes every run
//! bit-reproducible for a given seed, independent of hash maps or iteration
//! quirks.

use crate::job::JobId;
use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// What happens when an event fires (internal engine vocabulary).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Job reaches the WMS input queue (UI → WMS network hop done).
    ArriveAtWms(JobId),
    /// WMS finished match-making and dispatches the job to its CE.
    Dispatch(JobId),
    /// Job reaches the CE and enters the batch queue.
    EnterQueue(JobId),
    /// Oracle-mode start: the job's pre-drawn latency elapses.
    Start(JobId),
    /// A running job releases its slot.
    Finish(JobId),
    /// A transient middleware failure surfaces for this job.
    Fail(JobId),
    /// A client cancellation request reaches the middleware (only used when
    /// the configured cancellation delay is non-zero).
    CancelApply(JobId),
    /// A background (non-client) job arrives at a site.
    BackgroundArrival {
        /// Index of the target site.
        site: usize,
    },
    /// A synthetic background job injected by an external coupling layer
    /// (e.g. cross-shard load exchange) arrives with an explicit
    /// execution time; the target site is drawn at arrival time.
    InjectedArrival {
        /// Slot-hold time of the injected job.
        exec: crate::time::SimDuration,
    },
    /// A client timer set through the controller API expires.
    Timer {
        /// Opaque token chosen by the controller.
        token: u64,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Scheduled {
    at: SimTime,
    seq: u64,
    kind: EventKind,
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Min-heap of scheduled events with stable same-instant ordering.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Scheduled>>,
    next_seq: u64,
}

impl EventQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `kind` at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Scheduled { at, seq, kind }));
    }

    /// Removes every pending event and rewinds the sequence counter, as if
    /// the queue had just been constructed — but keeping the heap's
    /// allocation. Resetting `next_seq` matters for reproducibility: the
    /// sequence number breaks same-instant ties, so a reused queue must
    /// hand out the same numbers a fresh one would.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.next_seq = 0;
    }

    /// Pre-reserves heap capacity for `additional` pending events, so a
    /// large known workload (a community fleet) never grows the heap on
    /// the hot path.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, EventKind)> {
        self.heap.pop().map(|Reverse(s)| (s.at, s.kind))
    }

    /// Time of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(s)| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), EventKind::Timer { token: 3 });
        q.schedule(SimTime(10), EventKind::Timer { token: 1 });
        q.schedule(SimTime(20), EventKind::Timer { token: 2 });
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, k)| match k {
                EventKind::Timer { token } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn same_instant_fifo() {
        let mut q = EventQueue::new();
        for token in 0..100 {
            q.schedule(SimTime(5), EventKind::Timer { token });
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, k)| match k {
                EventKind::Timer { token } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(7), EventKind::ArriveAtWms(JobId(1)));
        assert_eq!(q.peek_time(), Some(SimTime(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop().unwrap();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_schedule_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), EventKind::Timer { token: 1 });
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime(10));
        // scheduling in the "past" is the caller's responsibility; the queue
        // still orders correctly
        q.schedule(SimTime(5), EventKind::Timer { token: 2 });
        q.schedule(SimTime(15), EventKind::Timer { token: 3 });
        assert_eq!(q.pop().unwrap().0, SimTime(5));
        assert_eq!(q.pop().unwrap().0, SimTime(15));
    }
}
