//! Simulation time.
//!
//! Millisecond-resolution unsigned time gives a total order with exact
//! equality (no float comparison hazards inside the event queue) while
//! keeping sub-second precision — grid latencies are hundreds of seconds,
//! so quantisation error is ~10⁻⁶ relative, far below sampling noise.

/// An absolute simulation instant, in milliseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A non-negative span of simulation time, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// The latest representable instant (events never fire after it).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Constructs from seconds, rounding to the nearest millisecond and
    /// saturating at the representable maximum.
    pub fn from_secs(s: f64) -> SimTime {
        SimTime(secs_to_ms(s))
    }

    /// This instant in (fractional) seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Instant `d` later.
    #[must_use]
    pub fn after(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// Span from `earlier` to `self`; panics if `earlier` is later.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "time went backwards: {:?} since {:?}",
            self,
            earlier
        );
        SimDuration(self.0 - earlier.0)
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Constructs from seconds, rounding to the nearest millisecond.
    pub fn from_secs(s: f64) -> SimDuration {
        SimDuration(secs_to_ms(s))
    }

    /// The span in (fractional) seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1e3
    }
}

fn secs_to_ms(s: f64) -> u64 {
    assert!(!s.is_nan(), "time cannot be NaN");
    assert!(s >= 0.0, "time cannot be negative: {s}");
    let ms = (s * 1e3).round();
    if ms >= u64::MAX as f64 {
        u64::MAX
    } else {
        ms as u64
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3}s", self.0 as f64 / 1e3)
    }
}

impl std::fmt::Display for SimDuration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3}s", self.0 as f64 / 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_seconds() {
        let t = SimTime::from_secs(123.456);
        assert_eq!(t.0, 123_456);
        assert!((t.as_secs() - 123.456).abs() < 1e-9);
    }

    #[test]
    fn rounding_to_ms() {
        assert_eq!(SimTime::from_secs(0.0004).0, 0);
        assert_eq!(SimTime::from_secs(0.0006).0, 1);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10.0);
        let d = SimDuration::from_secs(2.5);
        assert_eq!(t.after(d), SimTime::from_secs(12.5));
        assert_eq!(t.after(d).since(t), d);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn since_rejects_reversed() {
        SimTime::from_secs(1.0).since(SimTime::from_secs(2.0));
    }

    #[test]
    #[should_panic(expected = "cannot be negative")]
    fn rejects_negative() {
        SimTime::from_secs(-1.0);
    }

    #[test]
    fn saturation() {
        let t = SimTime(u64::MAX - 1);
        assert_eq!(t.after(SimDuration(100)), SimTime(u64::MAX));
        assert_eq!(SimTime::from_secs(f64::INFINITY).0, u64::MAX);
    }

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_secs(1.5).to_string(), "1.500s");
        assert_eq!(SimDuration::from_secs(0.25).to_string(), "0.250s");
    }
}
