//! Property-based tests for the discrete-event engine: conservation laws,
//! cancellation semantics and determinism under randomized configurations.
//!
//! The crates.io `proptest` harness is unavailable offline, so these use a
//! seeded hand-rolled generator: every `#[test]` draws `CASES` random
//! configurations from a fixed stream, making failures exactly
//! reproducible (the failing case index is part of the assertion message).

use gridstrat_sim::{
    BackgroundLoadConfig, Controller, FaultConfig, GridConfig, GridSimulation, JobState,
    Notification, ProbeHarness, SimDuration,
};
use gridstrat_stats::rng::derived_rng;
use gridstrat_workload::WeekModel;
use rand::rngs::StdRng;
use rand::Rng;

const CASES: usize = 48;

/// A controller that fires a fixed batch and watches until a deadline.
struct Batch {
    n: usize,
    started: usize,
    failed: usize,
    deadline: bool,
}

impl Controller for Batch {
    fn start(&mut self, sim: &mut GridSimulation) {
        for _ in 0..self.n {
            sim.submit();
        }
        sim.set_timer(SimDuration::from_secs(60_000.0), 0);
    }
    fn on_event(&mut self, _sim: &mut GridSimulation, ev: Notification) {
        match ev {
            Notification::JobStarted { .. } => self.started += 1,
            Notification::JobFailed { .. } => self.failed += 1,
            Notification::Timer { .. } => self.deadline = true,
            _ => {}
        }
    }
    fn done(&self) -> bool {
        self.deadline
    }
}

fn arb_faults(rng: &mut StdRng) -> FaultConfig {
    FaultConfig {
        p_silent_loss: rng.gen_range(0.0..0.6f64),
        p_transient_failure: rng.gen_range(0.0..0.5f64),
        failure_delay_mean_s: rng.gen_range(10.0..500.0f64),
    }
}

#[test]
fn every_job_reaches_exactly_one_account() {
    let mut rng = derived_rng(0x51D, 1);
    for case in 0..CASES {
        let seed = rng.gen_range(0..1000u64);
        let n = rng.gen_range(1..120usize);
        let mut cfg = GridConfig::pipeline_default();
        cfg.background = None;
        cfg.faults = arb_faults(&mut rng);
        let mut sim = GridSimulation::new(cfg, seed).unwrap();
        let mut ctrl = Batch {
            n,
            started: 0,
            failed: 0,
            deadline: false,
        };
        sim.run_controller(&mut ctrl);
        let stats = sim.stats();
        assert_eq!(stats.client_submitted, n as u64, "case {case}");
        assert_eq!(
            stats.client_started + stats.client_failed + stats.client_stuck,
            n as u64,
            "case {case}: jobs leaked between accounts"
        );
        assert_eq!(stats.client_started, ctrl.started as u64, "case {case}");
        assert_eq!(stats.client_failed, ctrl.failed as u64, "case {case}");
    }
}

#[test]
fn started_jobs_have_consistent_records() {
    let mut rng = derived_rng(0x51D, 2);
    for case in 0..CASES {
        let seed = rng.gen_range(0..500u64);
        let n = rng.gen_range(1..60usize);
        let model = WeekModel::calibrate("p", 400.0, 300.0, 0.1, 50.0, 10_000.0).unwrap();
        let mut sim = GridSimulation::new(GridConfig::oracle(model), seed).unwrap();
        let mut ctrl = Batch {
            n,
            started: 0,
            failed: 0,
            deadline: false,
        };
        sim.run_controller(&mut ctrl);
        for rec in sim.jobs() {
            match rec.state {
                JobState::Running | JobState::Finished => {
                    let started = rec.started_at.expect("running jobs have a start");
                    assert!(started >= rec.submitted_at, "case {case}");
                    // oracle latency respects the 50 s shift
                    assert!(
                        started.since(rec.submitted_at).as_secs() >= 50.0 - 1e-6,
                        "case {case}"
                    );
                }
                JobState::Stuck => assert!(rec.started_at.is_none(), "case {case}"),
                _ => {}
            }
        }
    }
}

#[test]
fn identical_seeds_identical_histories() {
    let mut rng = derived_rng(0x51D, 3);
    for case in 0..CASES {
        let seed = rng.gen_range(0..500u64);
        let n = rng.gen_range(1..50usize);
        let run = |seed: u64| {
            let model = WeekModel::calibrate("p", 400.0, 300.0, 0.2, 50.0, 10_000.0).unwrap();
            let mut sim = GridSimulation::new(GridConfig::oracle(model), seed).unwrap();
            let mut ctrl = Batch {
                n,
                started: 0,
                failed: 0,
                deadline: false,
            };
            sim.run_controller(&mut ctrl);
            sim.jobs()
                .iter()
                .map(|r| (r.state, r.started_at, r.terminated_at))
                .collect::<Vec<_>>()
        };
        assert_eq!(
            run(seed),
            run(seed),
            "case {case}: history not reproducible"
        );
    }
}

#[test]
fn probe_harness_always_hits_target() {
    let mut rng = derived_rng(0x51D, 4);
    for case in 0..CASES {
        let seed = rng.gen_range(0..300u64);
        let target = rng.gen_range(1..200usize);
        let in_flight = rng.gen_range(1..40usize);
        let rho = rng.gen_range(0.0..0.6f64);
        let model = WeekModel::calibrate("p", 400.0, 300.0, rho, 50.0, 10_000.0).unwrap();
        let mut sim = GridSimulation::new(GridConfig::oracle(model), seed).unwrap();
        let mut harness = ProbeHarness::new("prop", target, in_flight, 10_000.0);
        sim.run_controller(&mut harness);
        let trace = harness.into_trace();
        assert_eq!(trace.len(), target, "case {case}");
        // submission order, consistent statuses
        for w in trace.records.windows(2) {
            assert!(w[0].submitted_at <= w[1].submitted_at, "case {case}");
        }
        for r in &trace.records {
            if r.is_outlier() {
                assert_eq!(r.latency_s, 10_000.0, "case {case}");
            } else {
                assert!(r.latency_s < 10_000.0, "case {case}");
            }
        }
    }
}

#[test]
fn background_load_never_blocks_termination() {
    let mut rng = derived_rng(0x51D, 5);
    for case in 0..CASES.min(24) {
        let seed = rng.gen_range(0..200u64);
        let rate = rng.gen_range(0.001..0.3f64);
        let exec = rng.gen_range(100.0..3_000.0f64);
        let mut cfg = GridConfig::pipeline_default();
        cfg.background = Some(BackgroundLoadConfig {
            arrival_rate_per_s: rate,
            exec_mean_s: exec,
            exec_cv: 1.0,
        });
        cfg.horizon = SimDuration::from_secs(50_000.0);
        let mut sim = GridSimulation::new(cfg, seed).unwrap();
        let mut ctrl = Batch {
            n: 5,
            started: 0,
            failed: 0,
            deadline: false,
        };
        sim.run_controller(&mut ctrl);
        // the run always ends (deadline timer or horizon), never hangs
        assert!(sim.now().as_secs() <= 60_000.0 + 1e-6, "case {case}");
    }
}

#[test]
fn cancel_is_idempotent_and_final() {
    struct CancelTwice {
        outcome: Option<(bool, bool)>,
        done: bool,
    }
    impl Controller for CancelTwice {
        fn start(&mut self, sim: &mut GridSimulation) {
            let id = sim.submit();
            let first = sim.cancel(id);
            let second = sim.cancel(id);
            self.outcome = Some((first, second));
            sim.set_timer(SimDuration::from_secs(20_000.0), 0);
        }
        fn on_event(&mut self, _sim: &mut GridSimulation, ev: Notification) {
            match ev {
                Notification::JobStarted { .. } => {
                    panic!("cancelled job must not start under zero cancel delay")
                }
                Notification::Timer { .. } => self.done = true,
                _ => {}
            }
        }
        fn done(&self) -> bool {
            self.done
        }
    }

    let mut rng = derived_rng(0x51D, 6);
    for case in 0..CASES {
        let seed = rng.gen_range(0..300u64);
        let model = WeekModel::calibrate("p", 400.0, 300.0, 0.0, 50.0, 10_000.0).unwrap();
        let mut sim = GridSimulation::new(GridConfig::oracle(model), seed).unwrap();
        let mut ctrl = CancelTwice {
            outcome: None,
            done: false,
        };
        sim.run_controller(&mut ctrl);
        assert_eq!(ctrl.outcome, Some((true, false)), "case {case}");
        assert_eq!(sim.stats().client_cancelled, 1, "case {case}");
    }
}
