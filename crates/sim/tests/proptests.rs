//! Property-based tests for the discrete-event engine: conservation laws,
//! cancellation semantics and determinism under randomized configurations.

use gridstrat_sim::{
    BackgroundLoadConfig, Controller, FaultConfig, GridConfig, GridSimulation, JobState,
    Notification, ProbeHarness, SimDuration,
};
use gridstrat_workload::WeekModel;
use proptest::prelude::*;

/// A controller that fires a fixed batch and watches until a deadline.
struct Batch {
    n: usize,
    started: usize,
    failed: usize,
    deadline: bool,
}

impl Controller for Batch {
    fn start(&mut self, sim: &mut GridSimulation) {
        for _ in 0..self.n {
            sim.submit();
        }
        sim.set_timer(SimDuration::from_secs(60_000.0), 0);
    }
    fn on_event(&mut self, _sim: &mut GridSimulation, ev: Notification) {
        match ev {
            Notification::JobStarted { .. } => self.started += 1,
            Notification::JobFailed { .. } => self.failed += 1,
            Notification::Timer { .. } => self.deadline = true,
            _ => {}
        }
    }
    fn done(&self) -> bool {
        self.deadline
    }
}

fn arb_faults() -> impl Strategy<Value = FaultConfig> {
    (0.0f64..0.6, 0.0f64..0.5, 10.0f64..500.0).prop_map(|(loss, fail, delay)| FaultConfig {
        p_silent_loss: loss,
        p_transient_failure: fail,
        failure_delay_mean_s: delay,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_job_reaches_exactly_one_account(
        seed in 0u64..1000,
        n in 1usize..120,
        faults in arb_faults(),
    ) {
        let mut cfg = GridConfig::pipeline_default();
        cfg.background = None;
        cfg.faults = faults;
        let mut sim = GridSimulation::new(cfg, seed).unwrap();
        let mut ctrl = Batch { n, started: 0, failed: 0, deadline: false };
        sim.run_controller(&mut ctrl);
        let stats = sim.stats();
        prop_assert_eq!(stats.client_submitted, n as u64);
        prop_assert_eq!(
            stats.client_started + stats.client_failed + stats.client_stuck,
            n as u64
        );
        prop_assert_eq!(stats.client_started, ctrl.started as u64);
        prop_assert_eq!(stats.client_failed, ctrl.failed as u64);
    }

    #[test]
    fn started_jobs_have_consistent_records(seed in 0u64..500, n in 1usize..60) {
        let model = WeekModel::calibrate("p", 400.0, 300.0, 0.1, 50.0, 10_000.0).unwrap();
        let mut sim = GridSimulation::new(GridConfig::oracle(model), seed).unwrap();
        let mut ctrl = Batch { n, started: 0, failed: 0, deadline: false };
        sim.run_controller(&mut ctrl);
        for rec in sim.jobs() {
            match rec.state {
                JobState::Running | JobState::Finished => {
                    let started = rec.started_at.expect("running jobs have a start");
                    prop_assert!(started >= rec.submitted_at);
                    // oracle latency respects the 50 s shift
                    prop_assert!(started.since(rec.submitted_at).as_secs() >= 50.0 - 1e-6);
                }
                JobState::Stuck => prop_assert!(rec.started_at.is_none()),
                _ => {}
            }
        }
    }

    #[test]
    fn identical_seeds_identical_histories(seed in 0u64..500, n in 1usize..50) {
        let run = |seed: u64| {
            let model = WeekModel::calibrate("p", 400.0, 300.0, 0.2, 50.0, 10_000.0).unwrap();
            let mut sim = GridSimulation::new(GridConfig::oracle(model), seed).unwrap();
            let mut ctrl = Batch { n, started: 0, failed: 0, deadline: false };
            sim.run_controller(&mut ctrl);
            sim.jobs()
                .iter()
                .map(|r| (r.state, r.started_at, r.terminated_at))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    #[test]
    fn probe_harness_always_hits_target(
        seed in 0u64..300,
        target in 1usize..200,
        in_flight in 1usize..40,
        rho in 0.0f64..0.6,
    ) {
        let model = WeekModel::calibrate("p", 400.0, 300.0, rho, 50.0, 10_000.0).unwrap();
        let mut sim = GridSimulation::new(GridConfig::oracle(model), seed).unwrap();
        let mut harness = ProbeHarness::new("prop", target, in_flight, 10_000.0);
        sim.run_controller(&mut harness);
        let trace = harness.into_trace();
        prop_assert_eq!(trace.len(), target);
        // submission order, consistent statuses
        for w in trace.records.windows(2) {
            prop_assert!(w[0].submitted_at <= w[1].submitted_at);
        }
        for r in &trace.records {
            if r.is_outlier() {
                prop_assert_eq!(r.latency_s, 10_000.0);
            } else {
                prop_assert!(r.latency_s < 10_000.0);
            }
        }
    }

    #[test]
    fn background_load_never_blocks_termination(
        seed in 0u64..200,
        rate in 0.001f64..0.3,
        exec in 100.0f64..3_000.0,
    ) {
        let mut cfg = GridConfig::pipeline_default();
        cfg.background = Some(BackgroundLoadConfig {
            arrival_rate_per_s: rate,
            exec_mean_s: exec,
            exec_cv: 1.0,
        });
        cfg.horizon = SimDuration::from_secs(50_000.0);
        let mut sim = GridSimulation::new(cfg, seed).unwrap();
        let mut ctrl = Batch { n: 5, started: 0, failed: 0, deadline: false };
        sim.run_controller(&mut ctrl);
        // the run always ends (deadline timer or horizon), never hangs
        prop_assert!(sim.now().as_secs() <= 60_000.0 + 1e-6);
    }

    #[test]
    fn cancel_is_idempotent_and_final(seed in 0u64..300) {
        struct CancelTwice {
            outcome: Option<(bool, bool)>,
            done: bool,
        }
        impl Controller for CancelTwice {
            fn start(&mut self, sim: &mut GridSimulation) {
                let id = sim.submit();
                let first = sim.cancel(id);
                let second = sim.cancel(id);
                self.outcome = Some((first, second));
                sim.set_timer(SimDuration::from_secs(20_000.0), 0);
            }
            fn on_event(&mut self, _sim: &mut GridSimulation, ev: Notification) {
                match ev {
                    Notification::JobStarted { .. } => {
                        panic!("cancelled job must not start under zero cancel delay")
                    }
                    Notification::Timer { .. } => self.done = true,
                    _ => {}
                }
            }
            fn done(&self) -> bool {
                self.done
            }
        }
        let model = WeekModel::calibrate("p", 400.0, 300.0, 0.0, 50.0, 10_000.0).unwrap();
        let mut sim = GridSimulation::new(GridConfig::oracle(model), seed).unwrap();
        let mut ctrl = CancelTwice { outcome: None, done: false };
        sim.run_controller(&mut ctrl);
        prop_assert_eq!(ctrl.outcome, Some((true, false)));
        prop_assert_eq!(sim.stats().client_cancelled, 1);
    }
}
