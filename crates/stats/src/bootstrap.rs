//! Nonparametric bootstrap for trace-derived estimates.
//!
//! The paper's per-week quantities (optimal timeouts, `E_J`, `∆cost`) are
//! point estimates from ~900 probes of a heavy-tailed law — their sampling
//! error is substantial and never quantified in the paper. This module
//! provides the standard resampling machinery to attach percentile
//! confidence intervals to any statistic of a censored latency sample.

use crate::rng::derived_rng;
use rand::Rng;

/// A percentile bootstrap confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate on the original sample.
    pub estimate: f64,
    /// Lower percentile bound.
    pub lo: f64,
    /// Upper percentile bound.
    pub hi: f64,
    /// Nominal coverage level (e.g. 0.95).
    pub level: f64,
    /// Number of bootstrap replicates used.
    pub replicates: usize,
}

impl ConfidenceInterval {
    /// Interval half-width relative to the estimate (readability helper).
    pub fn relative_halfwidth(&self) -> f64 {
        0.5 * (self.hi - self.lo) / self.estimate.abs().max(f64::MIN_POSITIVE)
    }
}

/// Percentile bootstrap of an arbitrary statistic of a sample.
///
/// Draws `replicates` resamples (with replacement, equal size) from
/// `samples`, evaluates `statistic` on each, and returns the empirical
/// `[(1-level)/2, 1-(1-level)/2]` percentile interval together with the
/// point estimate on the original data. Deterministic in `seed`.
///
/// Replicates where the statistic is non-finite (e.g. a resample happened
/// to contain only censored values) are dropped; at least two finite
/// replicates are required.
pub fn bootstrap_ci<F>(
    samples: &[f64],
    statistic: F,
    replicates: usize,
    level: f64,
    seed: u64,
) -> ConfidenceInterval
where
    F: Fn(&[f64]) -> f64,
{
    assert!(!samples.is_empty(), "cannot bootstrap an empty sample");
    assert!(replicates >= 10, "need at least 10 replicates");
    assert!((0.5..1.0).contains(&level), "level must be in [0.5, 1)");

    let estimate = statistic(samples);
    let n = samples.len();
    let mut stats: Vec<f64> = Vec::with_capacity(replicates);
    let mut resample = vec![0.0f64; n];
    for rep in 0..replicates {
        let mut rng = derived_rng(seed, rep as u64);
        for slot in resample.iter_mut() {
            *slot = samples[rng.gen_range(0..n)];
        }
        let v = statistic(&resample);
        if v.is_finite() {
            stats.push(v);
        }
    }
    assert!(
        stats.len() >= 2,
        "statistic was non-finite on almost every bootstrap replicate"
    );
    stats.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite statistics"));
    let alpha = (1.0 - level) / 2.0;
    let pick = |p: f64| {
        let idx = ((p * stats.len() as f64).floor() as usize).min(stats.len() - 1);
        stats[idx]
    };
    ConfidenceInterval {
        estimate,
        lo: pick(alpha),
        hi: pick(1.0 - alpha),
        level,
        replicates: stats.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Distribution, LogNormal};

    fn mean(xs: &[f64]) -> f64 {
        xs.iter().sum::<f64>() / xs.len() as f64
    }

    #[test]
    fn mean_interval_brackets_truth_most_of_the_time() {
        // 20 independent datasets: the 95% CI for the mean should cover the
        // true mean in a clear majority (binomial(20, .95) ⇒ ≥ 16 w.h.p.)
        let truth = LogNormal::from_mean_std(500.0, 600.0).unwrap();
        let mut covered = 0;
        for ds in 0..20u64 {
            let mut rng = crate::rng::derived_rng(100 + ds, 0);
            let xs = truth.sample_n(&mut rng, 800);
            let ci = bootstrap_ci(&xs, mean, 400, 0.95, 1000 + ds);
            if ci.lo <= 500.0 && 500.0 <= ci.hi {
                covered += 1;
            }
        }
        assert!(covered >= 15, "coverage too low: {covered}/20");
    }

    #[test]
    fn interval_is_ordered_and_contains_plausible_mass() {
        let truth = LogNormal::from_mean_std(400.0, 500.0).unwrap();
        let mut rng = crate::rng::derived_rng(7, 0);
        let xs = truth.sample_n(&mut rng, 500);
        let ci = bootstrap_ci(&xs, mean, 300, 0.9, 42);
        assert!(ci.lo <= ci.estimate && ci.estimate <= ci.hi);
        assert!(ci.relative_halfwidth() > 0.0 && ci.relative_halfwidth() < 0.5);
        assert_eq!(ci.replicates, 300);
    }

    #[test]
    fn deterministic_in_seed() {
        let xs: Vec<f64> = (1..=200).map(|i| i as f64).collect();
        let a = bootstrap_ci(&xs, mean, 100, 0.95, 9);
        let b = bootstrap_ci(&xs, mean, 100, 0.95, 9);
        assert_eq!(a, b);
        let c = bootstrap_ci(&xs, mean, 100, 0.95, 10);
        assert_ne!(a.lo.to_bits(), c.lo.to_bits());
    }

    #[test]
    fn wider_level_gives_wider_interval() {
        let xs: Vec<f64> = (1..=300).map(|i| (i as f64).sqrt() * 10.0).collect();
        let ci90 = bootstrap_ci(&xs, mean, 400, 0.90, 5);
        let ci99 = bootstrap_ci(&xs, mean, 400, 0.99, 5);
        assert!(ci99.hi - ci99.lo >= ci90.hi - ci90.lo);
    }

    #[test]
    fn drops_nonfinite_replicates() {
        // statistic that is infinite whenever the resample misses value 1.0
        let xs = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let stat = |s: &[f64]| {
            if s.contains(&1.0) {
                mean(s)
            } else {
                f64::INFINITY
            }
        };
        let ci = bootstrap_ci(&xs, stat, 200, 0.9, 3);
        assert!(ci.replicates < 200 && ci.replicates > 50);
        assert!(ci.lo.is_finite() && ci.hi.is_finite());
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn rejects_empty() {
        bootstrap_ci(&[], mean, 100, 0.95, 0);
    }

    #[test]
    #[should_panic(expected = "level must be")]
    fn rejects_bad_level() {
        bootstrap_ci(&[1.0, 2.0], mean, 100, 1.5, 0);
    }
}
