//! # gridstrat-stats
//!
//! Statistics and numerics substrate for the `gridstrat` workspace, built
//! from scratch because the analysis in *Modeling User Submission Strategies
//! on Production Grids* (HPDC'09) needs machinery that general-purpose Rust
//! statistics crates do not provide in mature form:
//!
//! * **Exact integration of empirical (defective) CDFs** — the paper's
//!   equations (1)–(5) are integrals of `1 - F̃_R(u)` and products of shifted
//!   copies of it. For an empirical CDF these are integrals of piecewise
//!   constant functions and can be computed *exactly* (no quadrature error).
//!   The [`stepfn`] module provides the step-function algebra and [`ecdf`]
//!   the prefix-sum accelerated empirical CDF built on it.
//! * **Parametric latency distributions with censored-data MLE fitting** —
//!   log-normal, Weibull, Pareto, exponential bodies plus outlier mixtures
//!   ([`dist`], [`fit`]), used both to synthesize EGEE-like traces and to
//!   reproduce the model-fitting methodology of the paper's companion work.
//! * **Derivative-free optimizers** ([`optimize`]) for the timeout
//!   optimizations: golden section and refining grids in 1-D (optimal `t∞`),
//!   constrained refining grid and Nelder–Mead in 2-D (optimal `(t0, t∞)`).
//! * **Quadrature** ([`integrate`]) for parametric models where integrals
//!   have no closed form.
//! * **Streaming summaries** ([`summary`]) and **deterministic RNG
//!   derivation** ([`rng`]) shared by the simulator and Monte-Carlo layers.
//!
//! Everything is deterministic given explicit seeds and allocation-conscious:
//! hot paths (CDF queries, integral evaluation inside optimizer loops) are
//! O(log n) or O(1) after an O(n log n) build.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod bootstrap;
pub mod dist;
pub mod ecdf;
pub mod fit;
pub mod hazard;
pub mod integrate;
pub mod optimize;
pub mod rng;
pub mod stepfn;
pub mod streaming;
pub mod summary;

pub use bootstrap::{bootstrap_ci, ConfidenceInterval};
pub use dist::{
    Distribution, Exponential, LogNormal, Mixture, OutlierMixture, Pareto, Shifted, Weibull,
};
pub use ecdf::Ecdf;
pub use fit::{fit_exponential, fit_lognormal, fit_pareto, fit_weibull, ks_statistic, FitReport};
pub use hazard::{HazardProfile, HazardTrend};
pub use stepfn::StepFn;
pub use streaming::{Observation, StreamingEcdf};
pub use summary::Summary;
