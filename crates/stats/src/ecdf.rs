//! Empirical (defective) cumulative distribution functions.
//!
//! The paper observes job latencies censored at a timeout `T = 10 000 s`:
//! jobs that have not started by `T` are *outliers* (ratio `ρ`). The
//! quantity driving every strategy model is the **defective CDF**
//!
//! ```text
//! F̃_R(t) = (1 - ρ)·F_R(t) = P(R ≤ t)   (over ALL submitted jobs)
//! ```
//!
//! which converges to `1 - ρ < 1` — it is *not* a proper CDF, and the
//! strategy equations use it directly. [`Ecdf`] stores the sorted non-outlier
//! samples together with the total submission count and provides
//!
//! * O(log n) point queries `F̃(t)`,
//! * **exact** prefix-sum accelerated integrals
//!   `A(t) = ∫₀ᵗ (1-F̃(u)) du` and `B(t) = ∫₀ᵗ u·(1-F̃(u)) du`
//!   (the building blocks of the paper's eqs. 1–4), and
//! * exact product integrals over shifted survival functions (eq. 5).

use crate::stepfn::StepFn;
use std::sync::{Arc, RwLock};

/// Prefix tables for one survival power `b`:
/// `a[j] = ∫₀^{xs[j-1]} (1-F̃(u))ᵇ du`, `m[j] = ∫₀^{xs[j-1]} u·(1-F̃(u))ᵇ du`
/// (`a[0] = m[0] = 0`). Built once per power and cached on the [`Ecdf`];
/// with them every powered survival integral is an O(log n) lookup.
#[derive(Debug)]
struct PowerTables {
    a: Vec<f64>,
    m: Vec<f64>,
}

/// Empirical defective CDF of a censored latency sample.
///
/// Built from raw latency measurements with a censoring threshold: samples
/// `≥ threshold` are counted as outliers (they contribute to the total count
/// `n_total` but never to `F̃`).
///
/// # Examples
///
/// ```
/// use gridstrat_stats::Ecdf;
/// // 3 normal jobs + 1 outlier (censored at 100)
/// let e = Ecdf::from_samples(&[10.0, 20.0, 30.0, 5000.0], 100.0).unwrap();
/// assert_eq!(e.n_total(), 4);
/// assert_eq!(e.n_body(), 3);
/// assert!((e.outlier_ratio() - 0.25).abs() < 1e-12);
/// assert!((e.value(20.0) - 0.5).abs() < 1e-12);   // 2 of 4 jobs ≤ 20
/// assert!((e.value(1e9) - 0.75).abs() < 1e-12);   // converges to 1-ρ
/// ```
#[derive(Debug)]
pub struct Ecdf {
    /// Sorted non-outlier samples.
    xs: Vec<f64>,
    /// Total number of submissions (body + outliers).
    n_total: usize,
    /// Censoring threshold used at construction.
    threshold: f64,
    /// prefix_a[j] = ∫₀^{xs[j-1]} (1 - F̃(u)) du ; prefix_a[0] = 0.
    prefix_a: Vec<f64>,
    /// prefix_b[j] = ∫₀^{xs[j-1]} u·(1 - F̃(u)) du ; prefix_b[0] = 0.
    prefix_b: Vec<f64>,
    /// prefix_x[j] = Σ_{i<j} xs[i] ; prefix_x[0] = 0. Makes the body
    /// moment queries (`body_mean`, `censored_mean_lower_bound`) O(1).
    prefix_x: Vec<f64>,
    /// prefix_x2[j] = Σ_{i<j} xs[i]² ; prefix_x2[0] = 0 (for `body_std`).
    prefix_x2: Vec<f64>,
    /// Lazily-built per-power prefix tables for the multiple-submission
    /// kernels, keyed by the survival power `b`. A read-mostly list (the
    /// handful of distinct `b` values a tuning run touches) behind an
    /// `RwLock`; hits are a shared-lock lookup plus an `Arc` bump, so the
    /// steady-state query path never allocates.
    pow_cache: RwLock<Vec<(u32, Arc<PowerTables>)>>,
}

impl Clone for Ecdf {
    fn clone(&self) -> Self {
        Ecdf {
            xs: self.xs.clone(),
            n_total: self.n_total,
            threshold: self.threshold,
            prefix_a: self.prefix_a.clone(),
            prefix_b: self.prefix_b.clone(),
            prefix_x: self.prefix_x.clone(),
            prefix_x2: self.prefix_x2.clone(),
            // the tables are immutable once built — share them
            pow_cache: RwLock::new(self.pow_cache.read().expect("ecdf cache lock").clone()),
        }
    }
}

/// Error constructing an [`Ecdf`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EcdfError {
    /// No samples were provided.
    Empty,
    /// All samples were outliers: `F̃` would be identically zero and every
    /// strategy expectation diverges.
    AllOutliers,
    /// A sample was negative or non-finite.
    InvalidSample,
}

impl std::fmt::Display for EcdfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EcdfError::Empty => write!(f, "cannot build an ECDF from zero samples"),
            EcdfError::AllOutliers => write!(f, "all samples are censored outliers"),
            EcdfError::InvalidSample => write!(f, "samples must be finite and non-negative"),
        }
    }
}

impl std::error::Error for EcdfError {}

impl Ecdf {
    /// Builds the defective ECDF from raw latencies; samples `≥ threshold`
    /// are treated as outliers.
    pub fn from_samples(samples: &[f64], threshold: f64) -> Result<Self, EcdfError> {
        if samples.is_empty() {
            return Err(EcdfError::Empty);
        }
        if samples.iter().any(|&x| !x.is_finite() || x < 0.0) {
            return Err(EcdfError::InvalidSample);
        }
        let mut xs: Vec<f64> = samples.iter().copied().filter(|&x| x < threshold).collect();
        if xs.is_empty() {
            return Err(EcdfError::AllOutliers);
        }
        xs.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        Ok(Self::from_sorted_body(xs, samples.len(), threshold))
    }

    /// Builds from an already-sorted body sample plus an explicit count of
    /// censored outliers (useful when outlier latencies were never observed,
    /// only counted — exactly the situation of the paper's probe harness).
    pub fn from_sorted_body_and_outliers(
        body_sorted: Vec<f64>,
        n_outliers: usize,
        threshold: f64,
    ) -> Result<Self, EcdfError> {
        if body_sorted.is_empty() {
            return if n_outliers == 0 {
                Err(EcdfError::Empty)
            } else {
                Err(EcdfError::AllOutliers)
            };
        }
        if body_sorted
            .iter()
            .any(|&x| !x.is_finite() || x < 0.0 || x >= threshold)
            || body_sorted.windows(2).any(|w| w[0] > w[1])
        {
            return Err(EcdfError::InvalidSample);
        }
        let n_total = body_sorted.len() + n_outliers;
        Ok(Self::from_sorted_body(body_sorted, n_total, threshold))
    }

    fn from_sorted_body(xs: Vec<f64>, n_total: usize, threshold: f64) -> Self {
        let n = n_total as f64;
        let m = xs.len();
        let mut prefix_a = Vec::with_capacity(m + 1);
        let mut prefix_b = Vec::with_capacity(m + 1);
        let mut prefix_x = Vec::with_capacity(m + 1);
        let mut prefix_x2 = Vec::with_capacity(m + 1);
        prefix_a.push(0.0);
        prefix_b.push(0.0);
        prefix_x.push(0.0);
        prefix_x2.push(0.0);
        let mut a = 0.0;
        let mut b = 0.0;
        let mut sx = 0.0;
        let mut sx2 = 0.0;
        let mut lo = 0.0;
        for (j, &x) in xs.iter().enumerate() {
            // on [lo, x): F̃ = j/n  =>  1-F̃ = 1 - j/n
            let s = 1.0 - j as f64 / n;
            a += s * (x - lo);
            b += s * 0.5 * (x * x - lo * lo);
            sx += x;
            sx2 += x * x;
            prefix_a.push(a);
            prefix_b.push(b);
            prefix_x.push(sx);
            prefix_x2.push(sx2);
            lo = x;
        }
        Ecdf {
            xs,
            n_total,
            threshold,
            prefix_a,
            prefix_b,
            prefix_x,
            prefix_x2,
            pow_cache: RwLock::new(Vec::new()),
        }
    }

    /// Returns (building and caching on first use) the prefix tables for
    /// survival power `b`.
    fn power_tables(&self, b: u32) -> Arc<PowerTables> {
        if let Some((_, tables)) = self
            .pow_cache
            .read()
            .expect("ecdf cache lock")
            .iter()
            .find(|(p, _)| *p == b)
        {
            return Arc::clone(tables);
        }
        // build outside the lock: construction is O(n) and contention-free
        let n = self.n_total as f64;
        let pow = b as i32;
        let m = self.xs.len();
        let mut a_tab = Vec::with_capacity(m + 1);
        let mut m_tab = Vec::with_capacity(m + 1);
        a_tab.push(0.0);
        m_tab.push(0.0);
        let mut a = 0.0;
        let mut mm = 0.0;
        let mut lo = 0.0;
        for (j, &x) in self.xs.iter().enumerate() {
            let s = (1.0 - j as f64 / n).powi(pow);
            a += s * (x - lo);
            mm += s * 0.5 * (x * x - lo * lo);
            a_tab.push(a);
            m_tab.push(mm);
            lo = x;
        }
        let built = Arc::new(PowerTables { a: a_tab, m: m_tab });
        let mut cache = self.pow_cache.write().expect("ecdf cache lock");
        if let Some((_, tables)) = cache.iter().find(|(p, _)| *p == b) {
            return Arc::clone(tables); // another thread won the race
        }
        cache.push((b, Arc::clone(&built)));
        built
    }

    /// Total number of submissions (body + outliers).
    pub fn n_total(&self) -> usize {
        self.n_total
    }

    /// Number of non-outlier samples.
    pub fn n_body(&self) -> usize {
        self.xs.len()
    }

    /// Censoring threshold used at construction.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Observed outlier (fault) ratio `ρ`.
    pub fn outlier_ratio(&self) -> f64 {
        (self.n_total - self.xs.len()) as f64 / self.n_total as f64
    }

    /// Sorted non-outlier samples.
    pub fn body(&self) -> &[f64] {
        &self.xs
    }

    /// `F̃(t) = P(R ≤ t)` over all submissions (defective: sup = 1-ρ).
    pub fn value(&self, t: f64) -> f64 {
        let j = self.xs.partition_point(|&x| x <= t);
        j as f64 / self.n_total as f64
    }

    /// Proper conditional CDF `F_R(t) = F̃(t)/(1-ρ)` of non-outlier latency.
    pub fn conditional_value(&self, t: f64) -> f64 {
        let j = self.xs.partition_point(|&x| x <= t);
        j as f64 / self.xs.len() as f64
    }

    /// Exact `A(t) = ∫₀ᵗ (1 - F̃(u)) du` in O(log n).
    pub fn survival_integral(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return 0.0;
        }
        let j = self.xs.partition_point(|&x| x <= t);
        let lo = if j == 0 { 0.0 } else { self.xs[j - 1] };
        let s = 1.0 - j as f64 / self.n_total as f64;
        self.prefix_a[j] + s * (t - lo)
    }

    /// Exact `B(t) = ∫₀ᵗ u·(1 - F̃(u)) du` in O(log n).
    pub fn moment_survival_integral(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return 0.0;
        }
        let j = self.xs.partition_point(|&x| x <= t);
        let lo = if j == 0 { 0.0 } else { self.xs[j - 1] };
        let s = 1.0 - j as f64 / self.n_total as f64;
        self.prefix_b[j] + s * 0.5 * (t * t - lo * lo)
    }

    /// Exact powered survival integrals — the multiple-submission kernels
    /// (paper eqs. 3–4):
    ///
    /// ```text
    /// (∫₀ᵗ (1-F̃(u))ᵇ du,  ∫₀ᵗ u·(1-F̃(u))ᵇ du)
    /// ```
    ///
    /// O(log n) per call after the prefix tables for power `b` are built
    /// (once, lazily, O(n)); the query path performs no allocation beyond
    /// a reference-count bump on the cached tables. `b = 1` reuses the
    /// always-present plain tables.
    pub fn powered_survival_integrals(&self, b: u32, t: f64) -> (f64, f64) {
        if t <= 0.0 {
            return (0.0, 0.0);
        }
        if b == 1 {
            return (self.survival_integral(t), self.moment_survival_integral(t));
        }
        let tables = self.power_tables(b);
        let j = self.xs.partition_point(|&x| x <= t);
        let lo = if j == 0 { 0.0 } else { self.xs[j - 1] };
        let s = (1.0 - j as f64 / self.n_total as f64).powi(b as i32);
        (
            tables.a[j] + s * (t - lo),
            tables.m[j] + s * 0.5 * (t * t - lo * lo),
        )
    }

    /// Exact product integrals over shifted survival functions:
    ///
    /// ```text
    /// C0 = ∫₀^L (1-F̃(u+shift))·(1-F̃(u)) du
    /// D0 = ∫₀^L u·(1-F̃(u+shift))·(1-F̃(u)) du
    /// ```
    ///
    /// These are the kernels of the delayed-resubmission expectation
    /// (paper eq. 5, survival form) with `shift = t0`, `L = t∞ - t0`.
    pub fn survival_product_integrals(&self, shift: f64, l: f64) -> (f64, f64) {
        self.powered_survival_product_integrals(1, shift, l)
    }

    /// Exact powered product integrals — the generalized-delayed kernels:
    ///
    /// ```text
    /// (∫₀^L [(1-F̃(u+shift))·(1-F̃(u))]ᵇ du,
    ///  ∫₀^L u·[(1-F̃(u+shift))·(1-F̃(u))]ᵇ du)
    /// ```
    ///
    /// The integrand is a step function whose breakpoints are sample
    /// values and sample values minus `shift`: a two-pointer merge walks
    /// both (already sorted) breakpoint streams directly off the sample
    /// array, counting crossings incrementally — no scratch vector, no
    /// per-segment binary search, and no `(x - shift) + shift` float
    /// round-trip (the crossing count *is* the step level). Cost is
    /// O(log n + k) where `k` is the number of sample values falling in
    /// the two length-`L` windows, against O(n log n) for a
    /// sort-and-scan over materialised breakpoints.
    pub fn powered_survival_product_integrals(&self, b: u32, shift: f64, l: f64) -> (f64, f64) {
        if l <= 0.0 {
            return (0.0, 0.0);
        }
        let xs = &self.xs;
        let n = self.n_total as f64;
        let pow = b as i32;
        // i1/i2 are both cursors and step levels: for u in the current
        // segment, #{x ≤ u} = i1 and #{x ≤ u+shift} = i2
        let mut i1 = xs.partition_point(|&x| x <= 0.0);
        let mut i2 = xs.partition_point(|&x| x <= shift);
        let mut c = 0.0;
        let mut d = 0.0;
        let mut lo = 0.0_f64;
        loop {
            let next1 = if i1 < xs.len() { xs[i1] } else { f64::INFINITY };
            let next2 = if i2 < xs.len() {
                xs[i2] - shift
            } else {
                f64::INFINITY
            };
            let hi = next1.min(next2).min(l);
            if hi > lo {
                let p = (1.0 - i1 as f64 / n) * (1.0 - i2 as f64 / n);
                let v = if b == 1 { p } else { p.powi(pow) };
                c += v * (hi - lo);
                d += v * 0.5 * (hi * hi - lo * lo);
                lo = hi;
            }
            if hi >= l {
                break;
            }
            // advance past every breakpoint stream that produced `hi`
            // (duplicated sample values step one index per pass, through
            // zero-width segments that contribute nothing)
            if next1 <= hi {
                i1 += 1;
            }
            if next2 <= hi {
                i2 += 1;
            }
        }
        (c, d)
    }

    /// Empirical quantile of the *non-outlier* body at level `p ∈ [0, 1]`
    /// (lower empirical quantile).
    pub fn body_quantile(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        let m = self.xs.len();
        let idx = ((p * m as f64).ceil() as usize).clamp(1, m) - 1;
        self.xs[idx]
    }

    /// Mean of the non-outlier body (the paper's “mean < 10⁵” column).
    /// O(1): reads the Σx prefix table.
    pub fn body_mean(&self) -> f64 {
        self.prefix_x[self.xs.len()] / self.xs.len() as f64
    }

    /// Standard deviation (population) of the non-outlier body (`σ_R`).
    /// O(1): `Var = Σx²/m − mean²` off the prefix tables (clamped at zero
    /// against floating-point cancellation for near-constant bodies).
    pub fn body_std(&self) -> f64 {
        let m = self.xs.len() as f64;
        let mean = self.prefix_x[self.xs.len()] / m;
        (self.prefix_x2[self.xs.len()] / m - mean * mean)
            .max(0.0)
            .sqrt()
    }

    /// Lower bound of the uncensored mean: outliers counted at the threshold
    /// (the paper's “mean with 10⁵” column). O(1) off the Σx prefix table.
    pub fn censored_mean_lower_bound(&self) -> f64 {
        let body_sum = self.prefix_x[self.xs.len()];
        let outliers = (self.n_total - self.xs.len()) as f64;
        (body_sum + outliers * self.threshold) / self.n_total as f64
    }

    /// Materialises `F̃` as a [`StepFn`] (breakpoints at distinct samples).
    pub fn to_stepfn(&self) -> StepFn {
        let n = self.n_total as f64;
        let mut breaks = Vec::with_capacity(self.xs.len());
        let mut values = Vec::with_capacity(self.xs.len() + 1);
        values.push(0.0);
        let mut i = 0;
        while i < self.xs.len() {
            let x = self.xs[i];
            // advance over duplicates
            let mut j = i + 1;
            while j < self.xs.len() && self.xs[j] == x {
                j += 1;
            }
            breaks.push(x);
            values.push(j as f64 / n);
            i = j;
        }
        StepFn::new(breaks, values).expect("sorted distinct breakpoints")
    }
}

/// Naive O(n) / O(n log n) reference implementations of every accelerated
/// query — the oracles the equivalence suite checks the prefix-table and
/// two-pointer paths against. Test-only: the production paths must never
/// fall back to these.
#[cfg(test)]
impl Ecdf {
    fn survival_integral_naive(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return 0.0;
        }
        let n = self.n_total as f64;
        let mut acc = 0.0;
        let mut lo = 0.0;
        let mut j = 0usize;
        while lo < t {
            let hi = if j < self.xs.len() {
                self.xs[j].min(t)
            } else {
                t
            };
            if hi > lo {
                acc += (1.0 - j as f64 / n) * (hi - lo);
            }
            lo = hi;
            j += 1;
        }
        acc
    }

    fn moment_survival_integral_naive(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return 0.0;
        }
        let n = self.n_total as f64;
        let mut acc = 0.0;
        let mut lo = 0.0;
        let mut j = 0usize;
        while lo < t {
            let hi = if j < self.xs.len() {
                self.xs[j].min(t)
            } else {
                t
            };
            if hi > lo {
                acc += (1.0 - j as f64 / n) * 0.5 * (hi * hi - lo * lo);
            }
            lo = hi;
            j += 1;
        }
        acc
    }

    /// The pre-table powered kernel: a full interval scan per query.
    fn powered_survival_integrals_naive(&self, b: u32, t: f64) -> (f64, f64) {
        if t <= 0.0 {
            return (0.0, 0.0);
        }
        let n = self.n_total as f64;
        let pow = b as i32;
        let mut a_int = 0.0;
        let mut b_int = 0.0;
        let mut lo = 0.0;
        let mut j = 0usize;
        while lo < t {
            let hi = if j < self.xs.len() {
                self.xs[j].min(t)
            } else {
                t
            };
            if hi > lo {
                let s = (1.0 - j as f64 / n).powi(pow);
                a_int += s * (hi - lo);
                b_int += s * 0.5 * (hi * hi - lo * lo);
            }
            lo = hi;
            j += 1;
        }
        (a_int, b_int)
    }

    /// The pre-merge product kernel: materialise and sort all breakpoints,
    /// then binary-search the step levels at every segment midpoint.
    fn powered_survival_product_integrals_naive(&self, b: u32, shift: f64, l: f64) -> (f64, f64) {
        if l <= 0.0 {
            return (0.0, 0.0);
        }
        let xs = &self.xs;
        let n = self.n_total as f64;
        let pow = b as i32;
        let mut brs: Vec<f64> = Vec::new();
        let start = xs.partition_point(|&x| x <= 0.0);
        let end = xs.partition_point(|&x| x < l);
        brs.extend_from_slice(&xs[start..end]);
        let start_s = xs.partition_point(|&x| x <= shift);
        let end_s = xs.partition_point(|&x| x < shift + l);
        brs.extend(xs[start_s..end_s].iter().map(|&x| x - shift));
        brs.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite breakpoints"));
        brs.dedup();

        let mut c = 0.0;
        let mut d = 0.0;
        let mut lo = 0.0;
        let mut idx = 0usize;
        while lo < l {
            let hi = if idx < brs.len() { brs[idx].min(l) } else { l };
            if hi > lo {
                // midpoint evaluation: exact for step functions and immune
                // to the (x - shift) + shift float round-trip at edges
                let mid = 0.5 * (lo + hi);
                let j1 = xs.partition_point(|&x| x <= mid);
                let j2 = xs.partition_point(|&x| x <= mid + shift);
                let v = ((1.0 - j1 as f64 / n) * (1.0 - j2 as f64 / n)).powi(pow);
                c += v * (hi - lo);
                d += v * 0.5 * (hi * hi - lo * lo);
            }
            lo = hi;
            idx += 1;
        }
        (c, d)
    }

    fn body_mean_naive(&self) -> f64 {
        self.xs.iter().sum::<f64>() / self.xs.len() as f64
    }

    fn body_std_naive(&self) -> f64 {
        let m = self.body_mean_naive();
        (self.xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / self.xs.len() as f64).sqrt()
    }

    fn censored_mean_lower_bound_naive(&self) -> f64 {
        let body_sum: f64 = self.xs.iter().sum();
        let outliers = (self.n_total - self.xs.len()) as f64;
        (body_sum + outliers * self.threshold) / self.n_total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ecdf4() -> Ecdf {
        // body 1,2,3 + one outlier; threshold 100
        Ecdf::from_samples(&[1.0, 2.0, 3.0, 500.0], 100.0).unwrap()
    }

    #[test]
    fn construction_errors() {
        assert_eq!(Ecdf::from_samples(&[], 10.0).unwrap_err(), EcdfError::Empty);
        assert_eq!(
            Ecdf::from_samples(&[20.0, 30.0], 10.0).unwrap_err(),
            EcdfError::AllOutliers
        );
        assert_eq!(
            Ecdf::from_samples(&[-1.0], 10.0).unwrap_err(),
            EcdfError::InvalidSample
        );
        assert_eq!(
            Ecdf::from_samples(&[f64::INFINITY], 10.0).unwrap_err(),
            EcdfError::InvalidSample
        );
    }

    #[test]
    fn from_sorted_body_and_outliers_matches_from_samples() {
        let a = ecdf4();
        let b = Ecdf::from_sorted_body_and_outliers(vec![1.0, 2.0, 3.0], 1, 100.0).unwrap();
        assert_eq!(a.n_total(), b.n_total());
        for t in [0.0, 0.5, 1.0, 2.5, 50.0, 1e6] {
            assert_eq!(a.value(t), b.value(t));
        }
        assert_eq!(a.survival_integral(10.0), b.survival_integral(10.0));
    }

    #[test]
    fn from_sorted_rejects_unsorted_or_censored_body() {
        assert!(Ecdf::from_sorted_body_and_outliers(vec![2.0, 1.0], 0, 10.0).is_err());
        assert!(Ecdf::from_sorted_body_and_outliers(vec![1.0, 20.0], 0, 10.0).is_err());
        assert!(Ecdf::from_sorted_body_and_outliers(vec![], 3, 10.0).is_err());
    }

    #[test]
    fn defective_cdf_values() {
        let e = ecdf4();
        assert_eq!(e.value(0.5), 0.0);
        assert_eq!(e.value(1.0), 0.25);
        assert_eq!(e.value(2.9), 0.5);
        assert_eq!(e.value(3.0), 0.75);
        assert_eq!(e.value(1e9), 0.75); // defective: sup = 1-ρ
        assert_eq!(e.conditional_value(1e9), 1.0);
        assert!((e.outlier_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn survival_integral_exact() {
        let e = ecdf4();
        // 1-F̃: 1 on [0,1), .75 on [1,2), .5 on [2,3), .25 after
        // A(2.5) = 1 + 0.75 + 0.5*0.5 = 2.0
        assert!((e.survival_integral(2.5) - 2.0).abs() < 1e-12);
        // A(4) = 1 + .75 + .5 + .25 = 2.5
        assert!((e.survival_integral(4.0) - 2.5).abs() < 1e-12);
        assert_eq!(e.survival_integral(0.0), 0.0);
        assert_eq!(e.survival_integral(-5.0), 0.0);
    }

    #[test]
    fn survival_integral_matches_stepfn() {
        let e = ecdf4();
        let s = e.to_stepfn().map(|v| 1.0 - v);
        for t in [0.3, 1.0, 1.5, 2.0, 3.3, 10.0, 123.0] {
            assert!(
                (e.survival_integral(t) - s.integral(0.0, t)).abs() < 1e-10,
                "A({t}) mismatch"
            );
            assert!(
                (e.moment_survival_integral(t) - s.moment_integral(0.0, t)).abs() < 1e-10,
                "B({t}) mismatch"
            );
        }
    }

    #[test]
    fn moment_survival_integral_exact() {
        let e = ecdf4();
        // B(2) = ∫₀¹ u du + ∫₁² 0.75 u du = 0.5 + 0.75*1.5 = 1.625
        assert!((e.moment_survival_integral(2.0) - 1.625).abs() < 1e-12);
    }

    #[test]
    fn product_integrals_match_stepfn_product() {
        let e = Ecdf::from_samples(&[1.0, 2.0, 3.0, 5.0, 8.0, 500.0], 100.0).unwrap();
        let surv = e.to_stepfn().map(|v| 1.0 - v);
        for (shift, l) in [(1.5, 2.0), (0.5, 4.0), (3.0, 3.0), (2.0, 0.0)] {
            let shifted = surv.shift(-shift);
            let prod = shifted.product(&surv);
            let want_c = prod.integral(0.0, l);
            let want_d = prod.moment_integral(0.0, l);
            let (c0, d0) = e.survival_product_integrals(shift, l);
            assert!(
                (c0 - want_c).abs() < 1e-10,
                "C0 mismatch shift={shift} l={l}"
            );
            assert!(
                (d0 - want_d).abs() < 1e-10,
                "D0 mismatch shift={shift} l={l}"
            );
        }
    }

    #[test]
    fn duplicate_samples_handled() {
        let e = Ecdf::from_samples(&[2.0, 2.0, 2.0, 4.0], 100.0).unwrap();
        assert_eq!(e.value(2.0), 0.75);
        assert_eq!(e.value(1.9), 0.0);
        // A(3) = 1*2 + 0.25*1 = 2.25
        assert!((e.survival_integral(3.0) - 2.25).abs() < 1e-12);
        let s = e.to_stepfn();
        assert_eq!(s.breaks().len(), 2); // dedup'd breakpoints
    }

    #[test]
    fn body_statistics() {
        let e = ecdf4();
        assert!((e.body_mean() - 2.0).abs() < 1e-12);
        assert!((e.body_std() - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
        // censored mean bound: (1+2+3+100)/4
        assert!((e.censored_mean_lower_bound() - 26.5).abs() < 1e-12);
    }

    // --- accelerated-path vs naive-oracle equivalence ------------------------

    /// Draws a random censored body: mixed scales, duplicated values, and
    /// ties right at interesting breakpoints.
    fn random_ecdf(seed: u64, n: usize) -> Ecdf {
        use rand::Rng;
        let mut rng = crate::rng::derived_rng(seed, 0);
        let mut samples = Vec::with_capacity(n + 2);
        for _ in 0..n {
            let u: f64 = rng.gen();
            // log-uniform over ~[1, 8000) plus occasional exact duplicates
            let x = (u * 9.0).exp();
            if rng.gen::<f64>() < 0.15 && !samples.is_empty() {
                let idx = rng.gen_range(0..samples.len());
                samples.push(samples[idx]); // exact tie
            } else {
                samples.push(x);
            }
        }
        // a couple of guaranteed outliers so ρ > 0
        samples.push(20_000.0);
        samples.push(30_000.0);
        Ecdf::from_samples(&samples, 10_000.0).unwrap()
    }

    #[test]
    fn equivalence_plain_integrals_match_naive_oracle() {
        for seed in 0..8u64 {
            let e = random_ecdf(seed, 400);
            let probes = [
                0.0, 0.5, 1.0, 10.0, 123.456, 500.0, 2_000.0, 9_999.0, 20_000.0,
            ];
            for &t in &probes {
                let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1.0);
                assert!(
                    rel(e.survival_integral(t), e.survival_integral_naive(t)) < 1e-12,
                    "A({t}) diverged (seed {seed})"
                );
                assert!(
                    rel(
                        e.moment_survival_integral(t),
                        e.moment_survival_integral_naive(t)
                    ) < 1e-12,
                    "B({t}) diverged (seed {seed})"
                );
            }
            // probe exactly at sample values too (boundary of the tables)
            for &t in e.body().iter().step_by(37) {
                assert!(
                    (e.survival_integral(t) - e.survival_integral_naive(t)).abs()
                        / e.survival_integral_naive(t).max(1.0)
                        < 1e-12,
                    "A at sample point diverged (seed {seed})"
                );
            }
        }
    }

    #[test]
    fn equivalence_powered_integrals_match_naive_oracle() {
        for seed in 0..6u64 {
            let e = random_ecdf(seed, 300);
            for b in [1u32, 2, 3, 5, 8, 13, 20] {
                for &t in &[0.7, 42.0, 600.0, 3_000.0, 9_500.0, 15_000.0] {
                    let (fa, fm) = e.powered_survival_integrals(b, t);
                    let (na, nm) = e.powered_survival_integrals_naive(b, t);
                    assert!(
                        (fa - na).abs() / na.max(1e-300) < 1e-12,
                        "powered A(b={b}, t={t}) {fa} vs {na} (seed {seed})"
                    );
                    assert!(
                        (fm - nm).abs() / nm.max(1e-300) < 1e-12,
                        "powered B(b={b}, t={t}) {fm} vs {nm} (seed {seed})"
                    );
                }
            }
        }
    }

    #[test]
    fn equivalence_product_integrals_match_naive_oracle() {
        for seed in 0..6u64 {
            let e = random_ecdf(seed, 300);
            for b in [1u32, 2, 4, 7] {
                for &shift in &[0.0, 1.0, 77.7, 450.0, 2_000.0, 12_000.0] {
                    for &l in &[0.5, 50.0, 800.0, 5_000.0, 11_000.0] {
                        let (fc, fd) = e.powered_survival_product_integrals(b, shift, l);
                        let (nc, nd) = e.powered_survival_product_integrals_naive(b, shift, l);
                        assert!(
                            (fc - nc).abs() / nc.max(1.0) < 1e-12,
                            "C(b={b}, shift={shift}, l={l}) {fc} vs {nc} (seed {seed})"
                        );
                        assert!(
                            (fd - nd).abs() / nd.max(1.0) < 1e-12,
                            "D(b={b}, shift={shift}, l={l}) {fd} vs {nd} (seed {seed})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn equivalence_body_statistics_match_naive_oracle() {
        for seed in 0..8u64 {
            let e = random_ecdf(seed, 500);
            assert!((e.body_mean() - e.body_mean_naive()).abs() / e.body_mean_naive() < 1e-12);
            assert!((e.body_std() - e.body_std_naive()).abs() / e.body_std_naive() < 1e-9);
            assert!(
                (e.censored_mean_lower_bound() - e.censored_mean_lower_bound_naive()).abs()
                    / e.censored_mean_lower_bound_naive()
                    < 1e-12
            );
        }
    }

    #[test]
    fn powered_tables_are_cached_and_clones_share_them() {
        let e = random_ecdf(9, 200);
        let (a1, m1) = e.powered_survival_integrals(5, 700.0);
        // second call must hit the cache and agree bitwise
        let (a2, m2) = e.powered_survival_integrals(5, 700.0);
        assert_eq!(a1.to_bits(), a2.to_bits());
        assert_eq!(m1.to_bits(), m2.to_bits());
        assert_eq!(e.pow_cache.read().unwrap().len(), 1);
        let c = e.clone();
        let (a3, _) = c.powered_survival_integrals(5, 700.0);
        assert_eq!(a1.to_bits(), a3.to_bits());
        assert_eq!(c.pow_cache.read().unwrap().len(), 1, "clone lost the cache");
        // concurrent first-build of a new power races safely to one table
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| e.powered_survival_integrals(7, 500.0));
            }
        });
        assert_eq!(e.pow_cache.read().unwrap().len(), 2);
    }

    #[test]
    fn quantiles() {
        let e = Ecdf::from_samples(&[10.0, 20.0, 30.0, 40.0], 100.0).unwrap();
        assert_eq!(e.body_quantile(0.0), 10.0);
        assert_eq!(e.body_quantile(0.25), 10.0);
        assert_eq!(e.body_quantile(0.5), 20.0);
        assert_eq!(e.body_quantile(0.75), 30.0);
        assert_eq!(e.body_quantile(1.0), 40.0);
    }
}
