//! Empirical (defective) cumulative distribution functions.
//!
//! The paper observes job latencies censored at a timeout `T = 10 000 s`:
//! jobs that have not started by `T` are *outliers* (ratio `ρ`). The
//! quantity driving every strategy model is the **defective CDF**
//!
//! ```text
//! F̃_R(t) = (1 - ρ)·F_R(t) = P(R ≤ t)   (over ALL submitted jobs)
//! ```
//!
//! which converges to `1 - ρ < 1` — it is *not* a proper CDF, and the
//! strategy equations use it directly. [`Ecdf`] stores the sorted non-outlier
//! samples together with the total submission count and provides
//!
//! * O(log n) point queries `F̃(t)`,
//! * **exact** prefix-sum accelerated integrals
//!   `A(t) = ∫₀ᵗ (1-F̃(u)) du` and `B(t) = ∫₀ᵗ u·(1-F̃(u)) du`
//!   (the building blocks of the paper's eqs. 1–4), and
//! * exact product integrals over shifted survival functions (eq. 5).

use crate::stepfn::StepFn;

/// Empirical defective CDF of a censored latency sample.
///
/// Built from raw latency measurements with a censoring threshold: samples
/// `≥ threshold` are counted as outliers (they contribute to the total count
/// `n_total` but never to `F̃`).
///
/// # Examples
///
/// ```
/// use gridstrat_stats::Ecdf;
/// // 3 normal jobs + 1 outlier (censored at 100)
/// let e = Ecdf::from_samples(&[10.0, 20.0, 30.0, 5000.0], 100.0).unwrap();
/// assert_eq!(e.n_total(), 4);
/// assert_eq!(e.n_body(), 3);
/// assert!((e.outlier_ratio() - 0.25).abs() < 1e-12);
/// assert!((e.value(20.0) - 0.5).abs() < 1e-12);   // 2 of 4 jobs ≤ 20
/// assert!((e.value(1e9) - 0.75).abs() < 1e-12);   // converges to 1-ρ
/// ```
#[derive(Debug, Clone)]
pub struct Ecdf {
    /// Sorted non-outlier samples.
    xs: Vec<f64>,
    /// Total number of submissions (body + outliers).
    n_total: usize,
    /// Censoring threshold used at construction.
    threshold: f64,
    /// prefix_a[j] = ∫₀^{xs[j-1]} (1 - F̃(u)) du ; prefix_a[0] = 0.
    prefix_a: Vec<f64>,
    /// prefix_b[j] = ∫₀^{xs[j-1]} u·(1 - F̃(u)) du ; prefix_b[0] = 0.
    prefix_b: Vec<f64>,
}

/// Error constructing an [`Ecdf`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EcdfError {
    /// No samples were provided.
    Empty,
    /// All samples were outliers: `F̃` would be identically zero and every
    /// strategy expectation diverges.
    AllOutliers,
    /// A sample was negative or non-finite.
    InvalidSample,
}

impl std::fmt::Display for EcdfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EcdfError::Empty => write!(f, "cannot build an ECDF from zero samples"),
            EcdfError::AllOutliers => write!(f, "all samples are censored outliers"),
            EcdfError::InvalidSample => write!(f, "samples must be finite and non-negative"),
        }
    }
}

impl std::error::Error for EcdfError {}

impl Ecdf {
    /// Builds the defective ECDF from raw latencies; samples `≥ threshold`
    /// are treated as outliers.
    pub fn from_samples(samples: &[f64], threshold: f64) -> Result<Self, EcdfError> {
        if samples.is_empty() {
            return Err(EcdfError::Empty);
        }
        if samples.iter().any(|&x| !x.is_finite() || x < 0.0) {
            return Err(EcdfError::InvalidSample);
        }
        let mut xs: Vec<f64> = samples.iter().copied().filter(|&x| x < threshold).collect();
        if xs.is_empty() {
            return Err(EcdfError::AllOutliers);
        }
        xs.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        Ok(Self::from_sorted_body(xs, samples.len(), threshold))
    }

    /// Builds from an already-sorted body sample plus an explicit count of
    /// censored outliers (useful when outlier latencies were never observed,
    /// only counted — exactly the situation of the paper's probe harness).
    pub fn from_sorted_body_and_outliers(
        body_sorted: Vec<f64>,
        n_outliers: usize,
        threshold: f64,
    ) -> Result<Self, EcdfError> {
        if body_sorted.is_empty() {
            return if n_outliers == 0 {
                Err(EcdfError::Empty)
            } else {
                Err(EcdfError::AllOutliers)
            };
        }
        if body_sorted
            .iter()
            .any(|&x| !x.is_finite() || x < 0.0 || x >= threshold)
            || body_sorted.windows(2).any(|w| w[0] > w[1])
        {
            return Err(EcdfError::InvalidSample);
        }
        let n_total = body_sorted.len() + n_outliers;
        Ok(Self::from_sorted_body(body_sorted, n_total, threshold))
    }

    fn from_sorted_body(xs: Vec<f64>, n_total: usize, threshold: f64) -> Self {
        let n = n_total as f64;
        let m = xs.len();
        let mut prefix_a = Vec::with_capacity(m + 1);
        let mut prefix_b = Vec::with_capacity(m + 1);
        prefix_a.push(0.0);
        prefix_b.push(0.0);
        let mut a = 0.0;
        let mut b = 0.0;
        let mut lo = 0.0;
        for (j, &x) in xs.iter().enumerate() {
            // on [lo, x): F̃ = j/n  =>  1-F̃ = 1 - j/n
            let s = 1.0 - j as f64 / n;
            a += s * (x - lo);
            b += s * 0.5 * (x * x - lo * lo);
            prefix_a.push(a);
            prefix_b.push(b);
            lo = x;
        }
        Ecdf {
            xs,
            n_total,
            threshold,
            prefix_a,
            prefix_b,
        }
    }

    /// Total number of submissions (body + outliers).
    pub fn n_total(&self) -> usize {
        self.n_total
    }

    /// Number of non-outlier samples.
    pub fn n_body(&self) -> usize {
        self.xs.len()
    }

    /// Censoring threshold used at construction.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Observed outlier (fault) ratio `ρ`.
    pub fn outlier_ratio(&self) -> f64 {
        (self.n_total - self.xs.len()) as f64 / self.n_total as f64
    }

    /// Sorted non-outlier samples.
    pub fn body(&self) -> &[f64] {
        &self.xs
    }

    /// `F̃(t) = P(R ≤ t)` over all submissions (defective: sup = 1-ρ).
    pub fn value(&self, t: f64) -> f64 {
        let j = self.xs.partition_point(|&x| x <= t);
        j as f64 / self.n_total as f64
    }

    /// Proper conditional CDF `F_R(t) = F̃(t)/(1-ρ)` of non-outlier latency.
    pub fn conditional_value(&self, t: f64) -> f64 {
        let j = self.xs.partition_point(|&x| x <= t);
        j as f64 / self.xs.len() as f64
    }

    /// Exact `A(t) = ∫₀ᵗ (1 - F̃(u)) du` in O(log n).
    pub fn survival_integral(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return 0.0;
        }
        let j = self.xs.partition_point(|&x| x <= t);
        let lo = if j == 0 { 0.0 } else { self.xs[j - 1] };
        let s = 1.0 - j as f64 / self.n_total as f64;
        self.prefix_a[j] + s * (t - lo)
    }

    /// Exact `B(t) = ∫₀ᵗ u·(1 - F̃(u)) du` in O(log n).
    pub fn moment_survival_integral(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return 0.0;
        }
        let j = self.xs.partition_point(|&x| x <= t);
        let lo = if j == 0 { 0.0 } else { self.xs[j - 1] };
        let s = 1.0 - j as f64 / self.n_total as f64;
        self.prefix_b[j] + s * 0.5 * (t * t - lo * lo)
    }

    /// Exact product integrals over shifted survival functions:
    ///
    /// ```text
    /// C0 = ∫₀^L (1-F̃(u+shift))·(1-F̃(u)) du
    /// D0 = ∫₀^L u·(1-F̃(u+shift))·(1-F̃(u)) du
    /// ```
    ///
    /// These are the kernels of the delayed-resubmission expectation
    /// (paper eq. 5, survival form) with `shift = t0`, `L = t∞ - t0`.
    /// Exactness: the integrand is a step function whose breakpoints are
    /// sample values and sample values minus `shift`; we integrate piecewise.
    pub fn survival_product_integrals(&self, shift: f64, l: f64) -> (f64, f64) {
        if l <= 0.0 {
            return (0.0, 0.0);
        }
        // breakpoints of (1-F̃(u))·(1-F̃(u+shift)) inside (0, l)
        let mut brs: Vec<f64> = Vec::new();
        let start = self.xs.partition_point(|&x| x <= 0.0);
        let end = self.xs.partition_point(|&x| x < l);
        brs.extend_from_slice(&self.xs[start..end]);
        let start_s = self.xs.partition_point(|&x| x <= shift);
        let end_s = self.xs.partition_point(|&x| x < shift + l);
        brs.extend(self.xs[start_s..end_s].iter().map(|&x| x - shift));
        brs.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite breakpoints"));
        brs.dedup();

        let n = self.n_total as f64;
        let mut c0 = 0.0;
        let mut d0 = 0.0;
        let mut lo = 0.0;
        let mut idx = 0usize;
        while lo < l {
            let hi = if idx < brs.len() { brs[idx].min(l) } else { l };
            if hi > lo {
                // Both factors are constant on [lo, hi); evaluate at the
                // midpoint. The left edge would be wrong in floating point:
                // a breakpoint stored as x - shift does not round-trip
                // (lo + shift can land strictly below x), flipping the
                // sample-count on exactly the interval where it matters.
                let mid = 0.5 * (lo + hi);
                let j1 = self.xs.partition_point(|&x| x <= mid);
                let j2 = self.xs.partition_point(|&x| x <= mid + shift);
                let v = (1.0 - j1 as f64 / n) * (1.0 - j2 as f64 / n);
                c0 += v * (hi - lo);
                d0 += v * 0.5 * (hi * hi - lo * lo);
            }
            lo = hi;
            idx += 1;
        }
        (c0, d0)
    }

    /// Empirical quantile of the *non-outlier* body at level `p ∈ [0, 1]`
    /// (lower empirical quantile).
    pub fn body_quantile(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        let m = self.xs.len();
        let idx = ((p * m as f64).ceil() as usize).clamp(1, m) - 1;
        self.xs[idx]
    }

    /// Mean of the non-outlier body (the paper's “mean < 10⁵” column).
    pub fn body_mean(&self) -> f64 {
        self.xs.iter().sum::<f64>() / self.xs.len() as f64
    }

    /// Standard deviation (population) of the non-outlier body (`σ_R`).
    pub fn body_std(&self) -> f64 {
        let m = self.body_mean();
        (self.xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / self.xs.len() as f64).sqrt()
    }

    /// Lower bound of the uncensored mean: outliers counted at the threshold
    /// (the paper's “mean with 10⁵” column).
    pub fn censored_mean_lower_bound(&self) -> f64 {
        let body_sum: f64 = self.xs.iter().sum();
        let outliers = (self.n_total - self.xs.len()) as f64;
        (body_sum + outliers * self.threshold) / self.n_total as f64
    }

    /// Materialises `F̃` as a [`StepFn`] (breakpoints at distinct samples).
    pub fn to_stepfn(&self) -> StepFn {
        let n = self.n_total as f64;
        let mut breaks = Vec::with_capacity(self.xs.len());
        let mut values = Vec::with_capacity(self.xs.len() + 1);
        values.push(0.0);
        let mut i = 0;
        while i < self.xs.len() {
            let x = self.xs[i];
            // advance over duplicates
            let mut j = i + 1;
            while j < self.xs.len() && self.xs[j] == x {
                j += 1;
            }
            breaks.push(x);
            values.push(j as f64 / n);
            i = j;
        }
        StepFn::new(breaks, values).expect("sorted distinct breakpoints")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ecdf4() -> Ecdf {
        // body 1,2,3 + one outlier; threshold 100
        Ecdf::from_samples(&[1.0, 2.0, 3.0, 500.0], 100.0).unwrap()
    }

    #[test]
    fn construction_errors() {
        assert_eq!(Ecdf::from_samples(&[], 10.0).unwrap_err(), EcdfError::Empty);
        assert_eq!(
            Ecdf::from_samples(&[20.0, 30.0], 10.0).unwrap_err(),
            EcdfError::AllOutliers
        );
        assert_eq!(
            Ecdf::from_samples(&[-1.0], 10.0).unwrap_err(),
            EcdfError::InvalidSample
        );
        assert_eq!(
            Ecdf::from_samples(&[f64::INFINITY], 10.0).unwrap_err(),
            EcdfError::InvalidSample
        );
    }

    #[test]
    fn from_sorted_body_and_outliers_matches_from_samples() {
        let a = ecdf4();
        let b = Ecdf::from_sorted_body_and_outliers(vec![1.0, 2.0, 3.0], 1, 100.0).unwrap();
        assert_eq!(a.n_total(), b.n_total());
        for t in [0.0, 0.5, 1.0, 2.5, 50.0, 1e6] {
            assert_eq!(a.value(t), b.value(t));
        }
        assert_eq!(a.survival_integral(10.0), b.survival_integral(10.0));
    }

    #[test]
    fn from_sorted_rejects_unsorted_or_censored_body() {
        assert!(Ecdf::from_sorted_body_and_outliers(vec![2.0, 1.0], 0, 10.0).is_err());
        assert!(Ecdf::from_sorted_body_and_outliers(vec![1.0, 20.0], 0, 10.0).is_err());
        assert!(Ecdf::from_sorted_body_and_outliers(vec![], 3, 10.0).is_err());
    }

    #[test]
    fn defective_cdf_values() {
        let e = ecdf4();
        assert_eq!(e.value(0.5), 0.0);
        assert_eq!(e.value(1.0), 0.25);
        assert_eq!(e.value(2.9), 0.5);
        assert_eq!(e.value(3.0), 0.75);
        assert_eq!(e.value(1e9), 0.75); // defective: sup = 1-ρ
        assert_eq!(e.conditional_value(1e9), 1.0);
        assert!((e.outlier_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn survival_integral_exact() {
        let e = ecdf4();
        // 1-F̃: 1 on [0,1), .75 on [1,2), .5 on [2,3), .25 after
        // A(2.5) = 1 + 0.75 + 0.5*0.5 = 2.0
        assert!((e.survival_integral(2.5) - 2.0).abs() < 1e-12);
        // A(4) = 1 + .75 + .5 + .25 = 2.5
        assert!((e.survival_integral(4.0) - 2.5).abs() < 1e-12);
        assert_eq!(e.survival_integral(0.0), 0.0);
        assert_eq!(e.survival_integral(-5.0), 0.0);
    }

    #[test]
    fn survival_integral_matches_stepfn() {
        let e = ecdf4();
        let s = e.to_stepfn().map(|v| 1.0 - v);
        for t in [0.3, 1.0, 1.5, 2.0, 3.3, 10.0, 123.0] {
            assert!(
                (e.survival_integral(t) - s.integral(0.0, t)).abs() < 1e-10,
                "A({t}) mismatch"
            );
            assert!(
                (e.moment_survival_integral(t) - s.moment_integral(0.0, t)).abs() < 1e-10,
                "B({t}) mismatch"
            );
        }
    }

    #[test]
    fn moment_survival_integral_exact() {
        let e = ecdf4();
        // B(2) = ∫₀¹ u du + ∫₁² 0.75 u du = 0.5 + 0.75*1.5 = 1.625
        assert!((e.moment_survival_integral(2.0) - 1.625).abs() < 1e-12);
    }

    #[test]
    fn product_integrals_match_stepfn_product() {
        let e = Ecdf::from_samples(&[1.0, 2.0, 3.0, 5.0, 8.0, 500.0], 100.0).unwrap();
        let surv = e.to_stepfn().map(|v| 1.0 - v);
        for (shift, l) in [(1.5, 2.0), (0.5, 4.0), (3.0, 3.0), (2.0, 0.0)] {
            let shifted = surv.shift(-shift);
            let prod = shifted.product(&surv);
            let want_c = prod.integral(0.0, l);
            let want_d = prod.moment_integral(0.0, l);
            let (c0, d0) = e.survival_product_integrals(shift, l);
            assert!(
                (c0 - want_c).abs() < 1e-10,
                "C0 mismatch shift={shift} l={l}"
            );
            assert!(
                (d0 - want_d).abs() < 1e-10,
                "D0 mismatch shift={shift} l={l}"
            );
        }
    }

    #[test]
    fn duplicate_samples_handled() {
        let e = Ecdf::from_samples(&[2.0, 2.0, 2.0, 4.0], 100.0).unwrap();
        assert_eq!(e.value(2.0), 0.75);
        assert_eq!(e.value(1.9), 0.0);
        // A(3) = 1*2 + 0.25*1 = 2.25
        assert!((e.survival_integral(3.0) - 2.25).abs() < 1e-12);
        let s = e.to_stepfn();
        assert_eq!(s.breaks().len(), 2); // dedup'd breakpoints
    }

    #[test]
    fn body_statistics() {
        let e = ecdf4();
        assert!((e.body_mean() - 2.0).abs() < 1e-12);
        assert!((e.body_std() - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
        // censored mean bound: (1+2+3+100)/4
        assert!((e.censored_mean_lower_bound() - 26.5).abs() < 1e-12);
    }

    #[test]
    fn quantiles() {
        let e = Ecdf::from_samples(&[10.0, 20.0, 30.0, 40.0], 100.0).unwrap();
        assert_eq!(e.body_quantile(0.0), 10.0);
        assert_eq!(e.body_quantile(0.25), 10.0);
        assert_eq!(e.body_quantile(0.5), 20.0);
        assert_eq!(e.body_quantile(0.75), 30.0);
        assert_eq!(e.body_quantile(1.0), 40.0);
    }
}
