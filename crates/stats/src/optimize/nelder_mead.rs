//! Nelder–Mead simplex minimisation in two dimensions.
//!
//! Used as a polish step after [`super::grid_min_2d`] located the right
//! basin of the `(t0, t∞)` plane. Constraints are handled by an infinite
//! penalty (the simplex simply never moves onto infeasible points because
//! their value is `+∞`).

use super::Min2d;

/// Minimises `f(x, y)` by Nelder–Mead starting from `start` with initial
/// simplex scale `scale`, for at most `max_iter` iterations or until the
/// simplex's value spread falls below `tol`.
///
/// Infeasible regions should be encoded by returning `f64::INFINITY`.
/// Panics if the starting point itself evaluates to a non-finite value.
pub fn nelder_mead_2d(
    f: impl Fn(f64, f64) -> f64,
    start: (f64, f64),
    scale: f64,
    tol: f64,
    max_iter: usize,
) -> Min2d {
    const ALPHA: f64 = 1.0; // reflection
    const GAMMA: f64 = 2.0; // expansion
    const RHO: f64 = 0.5; // contraction
    const SIGMA: f64 = 0.5; // shrink

    let eval = |p: [f64; 2]| f(p[0], p[1]);
    let mut simplex: [([f64; 2], f64); 3] = [
        ([start.0, start.1], 0.0),
        ([start.0 + scale, start.1], 0.0),
        ([start.0, start.1 + scale], 0.0),
    ];
    for v in simplex.iter_mut() {
        v.1 = eval(v.0);
    }
    assert!(
        simplex[0].1.is_finite(),
        "nelder_mead_2d requires a feasible starting point"
    );

    for _ in 0..max_iter {
        // order best → worst
        simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN objective"));
        let spread = (simplex[2].1 - simplex[0].1).abs();
        if spread < tol && simplex[2].1.is_finite() {
            break;
        }
        let best = simplex[0];
        let worst = simplex[2];
        // centroid of the two best
        let c = [
            0.5 * (simplex[0].0[0] + simplex[1].0[0]),
            0.5 * (simplex[0].0[1] + simplex[1].0[1]),
        ];
        let reflect = [
            c[0] + ALPHA * (c[0] - worst.0[0]),
            c[1] + ALPHA * (c[1] - worst.0[1]),
        ];
        let fr = eval(reflect);
        if fr < best.1 {
            // try expansion
            let expand = [
                c[0] + GAMMA * (reflect[0] - c[0]),
                c[1] + GAMMA * (reflect[1] - c[1]),
            ];
            let fe = eval(expand);
            simplex[2] = if fe < fr { (expand, fe) } else { (reflect, fr) };
        } else if fr < simplex[1].1 {
            simplex[2] = (reflect, fr);
        } else {
            // contraction (outside if reflection improved on worst, else inside)
            let towards = if fr < worst.1 { reflect } else { worst.0 };
            let contract = [
                c[0] + RHO * (towards[0] - c[0]),
                c[1] + RHO * (towards[1] - c[1]),
            ];
            let fc = eval(contract);
            if fc < worst.1.min(fr) {
                simplex[2] = (contract, fc);
            } else {
                // shrink towards best
                for vertex in simplex.iter_mut().skip(1) {
                    let p = [
                        best.0[0] + SIGMA * (vertex.0[0] - best.0[0]),
                        best.0[1] + SIGMA * (vertex.0[1] - best.0[1]),
                    ];
                    *vertex = (p, eval(p));
                }
            }
        }
    }
    simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN objective"));
    Min2d {
        x: simplex[0].0[0],
        y: simplex[0].0[1],
        value: simplex[0].1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rosenbrock_valley() {
        let f = |x: f64, y: f64| (1.0 - x).powi(2) + 100.0 * (y - x * x).powi(2);
        let r = nelder_mead_2d(f, (-1.0, 1.0), 0.5, 1e-14, 5000);
        assert!((r.x - 1.0).abs() < 1e-3, "x {}", r.x);
        assert!((r.y - 1.0).abs() < 1e-3, "y {}", r.y);
    }

    #[test]
    fn quadratic_bowl_fast() {
        let f = |x: f64, y: f64| (x - 4.0).powi(2) + (y + 2.0).powi(2);
        let r = nelder_mead_2d(f, (0.0, 0.0), 1.0, 1e-12, 500);
        assert!((r.x - 4.0).abs() < 1e-4);
        assert!((r.y + 2.0).abs() < 1e-4);
        assert!(r.value < 1e-7);
    }

    #[test]
    fn respects_infinite_penalty() {
        // feasible only for y > 0; minimum of bowl at (1,-1) is infeasible,
        // constrained optimum is (1, 0+)
        let f = |x: f64, y: f64| {
            if y <= 0.0 {
                f64::INFINITY
            } else {
                (x - 1.0).powi(2) + (y + 1.0).powi(2)
            }
        };
        let r = nelder_mead_2d(f, (0.5, 1.0), 0.3, 1e-12, 2000);
        assert!(r.y > 0.0);
        assert!((r.x - 1.0).abs() < 0.05);
        assert!(r.y < 0.05, "y {}", r.y);
    }

    #[test]
    #[should_panic(expected = "feasible starting point")]
    fn rejects_infeasible_start() {
        let f = |_: f64, _: f64| f64::INFINITY;
        nelder_mead_2d(f, (0.0, 0.0), 1.0, 1e-9, 10);
    }
}
