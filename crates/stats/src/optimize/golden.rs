//! Golden-section search for unimodal scalar minimisation.

use super::Min1d;

/// Minimises `f` on `[a, b]` assuming unimodality, to bracket width `tol`.
///
/// Always converges (the bracket shrinks by the golden ratio each step); on
/// non-unimodal objectives it converges to *a* local minimum inside the
/// initial bracket, which is why callers combine it with a coarse grid scan.
pub fn golden_section(f: impl Fn(f64) -> f64, a: f64, b: f64, tol: f64) -> Min1d {
    assert!(a <= b, "invalid bracket [{a}, {b}]");
    assert!(tol > 0.0, "tolerance must be positive");
    const INVPHI: f64 = 0.618_033_988_749_894_9; // 1/φ
    const INVPHI2: f64 = 0.381_966_011_250_105_1; // 1/φ²

    let (mut a, mut b) = (a, b);
    let mut h = b - a;
    if h <= tol {
        let x = 0.5 * (a + b);
        return Min1d { x, value: f(x) };
    }
    let mut c = a + INVPHI2 * h;
    let mut d = a + INVPHI * h;
    let mut fc = f(c);
    let mut fd = f(d);

    while h > tol {
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            h = b - a;
            c = a + INVPHI2 * h;
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            h = b - a;
            d = a + INVPHI * h;
            fd = f(d);
        }
    }
    if fc < fd {
        Min1d { x: c, value: fc }
    } else {
        Min1d { x: d, value: fd }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_minimum() {
        let r = golden_section(|x| (x - 3.2) * (x - 3.2) + 1.0, 0.0, 10.0, 1e-8);
        assert!((r.x - 3.2).abs() < 1e-6);
        assert!((r.value - 1.0).abs() < 1e-10);
    }

    #[test]
    fn minimum_at_boundary() {
        let r = golden_section(|x| x, 2.0, 5.0, 1e-8);
        assert!((r.x - 2.0).abs() < 1e-5);
    }

    #[test]
    fn degenerate_bracket() {
        let r = golden_section(|x| x * x, 1.0, 1.0, 1e-8);
        assert_eq!(r.x, 1.0);
        assert_eq!(r.value, 1.0);
    }

    #[test]
    fn nonsmooth_vee() {
        let r = golden_section(|x: f64| (x - 1.7).abs(), 0.0, 4.0, 1e-9);
        assert!((r.x - 1.7).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "invalid bracket")]
    fn rejects_reversed_bracket() {
        golden_section(|x| x, 5.0, 2.0, 1e-8);
    }
}
