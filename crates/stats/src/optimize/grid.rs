//! Exhaustive and multi-resolution grid minimisation.
//!
//! `E_J` objectives built on rough empirical CDFs can have several local
//! minima (the paper's own optimal `t∞` column in Table 2 jumps around for
//! large `b`). Grid scans are immune to that and, at integer-second
//! resolution over a ≤ 10⁴ s horizon, are cheap: ~10⁴ evaluations of an
//! O(log n) objective.

use super::{golden_section, Min1d, Min2d};

/// A 1-D search grid: `steps + 1` evenly spaced points on `[lo, hi]`.
#[derive(Debug, Clone, Copy)]
pub struct GridSpec {
    /// Lower bound (inclusive).
    pub lo: f64,
    /// Upper bound (inclusive).
    pub hi: f64,
    /// Number of intervals (evaluations = steps + 1).
    pub steps: usize,
}

impl GridSpec {
    /// Creates a grid; `hi` must be ≥ `lo` and `steps ≥ 1`.
    pub fn new(lo: f64, hi: f64, steps: usize) -> Self {
        assert!(lo <= hi, "invalid grid range [{lo}, {hi}]");
        assert!(steps >= 1, "need at least one step");
        GridSpec { lo, hi, steps }
    }

    /// Iterates the grid points.
    pub fn points(&self) -> impl Iterator<Item = f64> + '_ {
        let h = (self.hi - self.lo) / self.steps as f64;
        (0..=self.steps).map(move |i| self.lo + i as f64 * h)
    }

    /// Grid spacing.
    pub fn spacing(&self) -> f64 {
        (self.hi - self.lo) / self.steps as f64
    }
}

/// Exhaustive scan over the grid; returns the best point.
pub fn grid_min_1d(f: impl Fn(f64) -> f64, grid: GridSpec) -> Min1d {
    let mut best = Min1d {
        x: grid.lo,
        value: f64::INFINITY,
    };
    for x in grid.points() {
        let v = f(x);
        if v < best.value {
            best = Min1d { x, value: v };
        }
    }
    best
}

/// Coarse grid scan followed by golden-section refinement around the best
/// grid cell. Robust to multi-modality at grid resolution, then locally
/// optimal to `tol`.
pub fn refine_grid_1d(f: impl Fn(f64) -> f64 + Copy, grid: GridSpec, tol: f64) -> Min1d {
    let coarse = grid_min_1d(f, grid);
    let h = grid.spacing();
    let lo = (coarse.x - h).max(grid.lo);
    let hi = (coarse.x + h).min(grid.hi);
    let refined = golden_section(f, lo, hi, tol);
    if refined.value < coarse.value {
        refined
    } else {
        coarse
    }
}

/// Feasibility constraint for 2-D grid search.
pub type Constraint2d<'a> = &'a dyn Fn(f64, f64) -> bool;

/// Multi-resolution 2-D grid minimisation of `f(x, y)` over
/// `[x_lo,x_hi]×[y_lo,y_hi]` restricted to points where `feasible(x,y)`.
///
/// Scans a `resolution × resolution` grid, then repeatedly zooms into a
/// ±1-cell neighbourhood of the incumbent, halving the cell size, for
/// `zoom_rounds` rounds. Deterministic and constraint-safe (infeasible
/// points are skipped, never evaluated).
pub fn grid_min_2d(
    f: impl Fn(f64, f64) -> f64,
    x_range: (f64, f64),
    y_range: (f64, f64),
    resolution: usize,
    zoom_rounds: usize,
    feasible: Constraint2d<'_>,
) -> Option<Min2d> {
    assert!(resolution >= 2, "resolution must be at least 2");
    let mut best: Option<Min2d> = None;
    let (mut x_lo, mut x_hi) = x_range;
    let (mut y_lo, mut y_hi) = y_range;

    for _round in 0..=zoom_rounds {
        let dx = (x_hi - x_lo) / resolution as f64;
        let dy = (y_hi - y_lo) / resolution as f64;
        let mut improved: Option<Min2d> = None;
        for i in 0..=resolution {
            let x = x_lo + i as f64 * dx;
            for j in 0..=resolution {
                let y = y_lo + j as f64 * dy;
                if !feasible(x, y) {
                    continue;
                }
                let v = f(x, y);
                if improved.is_none_or(|b| v < b.value) {
                    improved = Some(Min2d { x, y, value: v });
                }
            }
        }
        let round_best = match improved {
            Some(b) => b,
            None => break, // nothing feasible at this resolution
        };
        if best.is_none_or(|b| round_best.value < b.value) {
            best = Some(round_best);
        }
        let b = best.expect("set above");
        // zoom: ±1 coarse cell around the incumbent
        x_lo = b.x - dx;
        x_hi = b.x + dx;
        y_lo = b.y - dy;
        y_hi = b.y + dy;
        if dx <= f64::EPSILON && dy <= f64::EPSILON {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_spec_points() {
        let g = GridSpec::new(0.0, 10.0, 5);
        let pts: Vec<f64> = g.points().collect();
        assert_eq!(pts, vec![0.0, 2.0, 4.0, 6.0, 8.0, 10.0]);
        assert_eq!(g.spacing(), 2.0);
    }

    #[test]
    fn grid_min_finds_global_among_two_wells() {
        // two wells: x=2 (depth 1) and x=8 (depth 2) — golden alone could
        // land in the wrong one; the grid scan must not.
        let f = |x: f64| {
            let w1 = -1.0 / (1.0 + (x - 2.0) * (x - 2.0));
            let w2 = -2.0 / (1.0 + (x - 8.0) * (x - 8.0));
            w1 + w2
        };
        let r = refine_grid_1d(f, GridSpec::new(0.0, 10.0, 100), 1e-8);
        assert!((r.x - 8.0).abs() < 0.05, "found {}", r.x);
    }

    #[test]
    fn refine_improves_on_coarse() {
        let f = |x: f64| (x - 3.33).powi(2);
        let coarse = grid_min_1d(f, GridSpec::new(0.0, 10.0, 10));
        let refined = refine_grid_1d(f, GridSpec::new(0.0, 10.0, 10), 1e-9);
        assert!(refined.value <= coarse.value);
        assert!((refined.x - 3.33).abs() < 1e-6);
    }

    #[test]
    fn grid_2d_quadratic_bowl() {
        let f = |x: f64, y: f64| (x - 1.5) * (x - 1.5) + (y - 2.5) * (y - 2.5);
        let all = |_: f64, _: f64| true;
        let r = grid_min_2d(f, (0.0, 5.0), (0.0, 5.0), 20, 8, &all).unwrap();
        assert!((r.x - 1.5).abs() < 0.02, "x {}", r.x);
        assert!((r.y - 2.5).abs() < 0.02, "y {}", r.y);
    }

    #[test]
    fn grid_2d_respects_constraint() {
        // minimise x+y but require y > x + 1
        let f = |x: f64, y: f64| x + y;
        let c = |x: f64, y: f64| y > x + 1.0;
        let r = grid_min_2d(f, (0.0, 4.0), (0.0, 4.0), 40, 4, &c).unwrap();
        assert!(r.y > r.x + 1.0);
        assert!(r.x < 0.2 && r.y < 1.4, "({}, {})", r.x, r.y);
    }

    #[test]
    fn grid_2d_all_infeasible_returns_none() {
        let f = |x: f64, y: f64| x + y;
        let c = |_: f64, _: f64| false;
        assert!(grid_min_2d(f, (0.0, 1.0), (0.0, 1.0), 4, 2, &c).is_none());
    }

    #[test]
    fn grid_2d_delayed_like_constraint() {
        // the delayed-resubmission feasible region: 0 < t0 < t∞ < 2 t0
        let f = |t0: f64, ti: f64| (t0 - 339.0).powi(2) + (ti - 485.0).powi(2);
        let c = |t0: f64, ti: f64| t0 > 0.0 && t0 < ti && ti < 2.0 * t0;
        let r = grid_min_2d(f, (1.0, 1000.0), (1.0, 1000.0), 50, 10, &c).unwrap();
        assert!((r.x - 339.0).abs() < 1.0);
        assert!((r.y - 485.0).abs() < 1.0);
    }
}
