//! Derivative-free optimizers for the timeout optimizations.
//!
//! The strategy expectations `E_J(t∞)` and `E_J(t0, t∞)` computed from an
//! empirical CDF are piecewise-smooth with kinks at sample values, so
//! gradient methods are unsuitable. The paper itself optimises numerically
//! (and restricts `t0, t∞` to integer seconds for Tables 5–6). We provide:
//!
//! * [`golden_section`] — 1-D unimodal refinement;
//! * [`grid_min_1d`] / [`refine_grid_1d`] — robust global 1-D search by
//!   exhaustive coarse grid plus local refinement (works for multi-modal
//!   objectives, which `E_J` can be on rough ECDFs);
//! * [`grid_min_2d`] — constrained 2-D multi-resolution grid search used for
//!   the delayed-resubmission `(t0, t∞)` plane;
//! * [`nelder_mead_2d`] — simplex polish step.

mod golden;
mod grid;
mod nelder_mead;

pub use golden::golden_section;
pub use grid::{grid_min_1d, grid_min_2d, refine_grid_1d, Constraint2d, GridSpec};
pub use nelder_mead::nelder_mead_2d;

/// Result of a scalar minimisation: argument and value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Min1d {
    /// Argument of the minimum found.
    pub x: f64,
    /// Objective value at `x`.
    pub value: f64,
}

/// Result of a 2-D minimisation: arguments and value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Min2d {
    /// First coordinate of the minimum found.
    pub x: f64,
    /// Second coordinate of the minimum found.
    pub y: f64,
    /// Objective value at `(x, y)`.
    pub value: f64,
}
