//! Deterministic RNG derivation.
//!
//! Monte-Carlo batches run on rayon worker threads in nondeterministic
//! order; to keep results bit-identical across thread counts, every trial
//! derives its own RNG from `(master_seed, trial_index)` via SplitMix64.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// One step of the SplitMix64 output function — a high-quality 64-bit mixer.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a child seed from a master seed and a stream index.
///
/// Distinct `(seed, index)` pairs give (with overwhelming probability)
/// distinct, well-mixed child seeds; the same pair always gives the same
/// child. This is the backbone of thread-count-independent Monte-Carlo.
pub fn derive_seed(master: u64, index: u64) -> u64 {
    splitmix64(splitmix64(master).wrapping_add(splitmix64(index ^ 0xA076_1D64_78BD_642F)))
}

/// Standard RNG seeded deterministically from `(master, index)`.
pub fn derived_rng(master: u64, index: u64) -> StdRng {
    StdRng::seed_from_u64(derive_seed(master, index))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic() {
        assert_eq!(derive_seed(42, 7), derive_seed(42, 7));
        let mut a = derived_rng(42, 7);
        let mut b = derived_rng(42, 7);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn distinct_streams_differ() {
        assert_ne!(derive_seed(42, 0), derive_seed(42, 1));
        assert_ne!(derive_seed(0, 5), derive_seed(1, 5));
        // index and seed are not interchangeable
        assert_ne!(derive_seed(3, 4), derive_seed(4, 3));
    }

    #[test]
    fn splitmix_avalanche_smoke() {
        // flipping one input bit should flip ~half the output bits
        let a = splitmix64(0x0123_4567_89AB_CDEF);
        let b = splitmix64(0x0123_4567_89AB_CDEE);
        let flipped = (a ^ b).count_ones();
        assert!(
            (16..=48).contains(&flipped),
            "weak diffusion: {flipped} bits"
        );
    }

    #[test]
    fn golden_vectors_pin_the_derivation() {
        // Every Monte-Carlo stream in the workspace flows from these
        // values; changing the mixer silently re-seeds every published
        // experiment, so the exact outputs are pinned here.
        for (master, index, want) in [
            (0x0u64, 0x0u64, 0x324E_D5A5_EE00_2454u64),
            (0x0, 0x1, 0x537C_1442_147D_2E7F),
            (0x1, 0x0, 0x4CEF_E048_7AD9_695E),
            (0xE6EE, 0x0, 0x336B_3B24_17FA_26D8),
            (0xE6EE, 0x1, 0x4A8A_5137_5A3C_80CA),
            (0xE6EE, 0x2, 0xD21C_5CF4_00C8_8413),
            (0x2A, 0x7, 0x0028_EF03_97F2_FA9E),
            (u64::MAX, u64::MAX, 0x03B5_B101_1916_D1AC),
        ] {
            assert_eq!(
                derive_seed(master, index),
                want,
                "derive_seed({master:#X}, {index:#X}) drifted"
            );
        }
    }

    #[test]
    fn no_trivial_collisions_in_small_range() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for master in 0..32u64 {
            for idx in 0..32u64 {
                assert!(seen.insert(derive_seed(master, idx)), "collision");
            }
        }
    }
}
