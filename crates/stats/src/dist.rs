//! Parametric latency distributions.
//!
//! The families the HPDC'09 methodology needs: log-normal (the paper's
//! reference body model), Weibull, exponential and Pareto, plus the
//! combinators [`Shifted`] (hard latency floor), [`Mixture`] (two-component
//! blend) and [`OutlierMixture`] (body + fault tail). Everything exposes
//! the same [`Distribution`] interface: exact CDF/PDF/quantile closed forms
//! where they exist, inverse-CDF sampling driven by any [`rand::Rng`], and
//! optional first/second moments (`None` when the law has no finite one,
//! e.g. Pareto with `α ≤ 1`).
//!
//! The standard-normal helpers ([`normal_cdf`], [`normal_quantile`],
//! [`sample_standard_normal`]) are shared by the log-normal law, the
//! simulator's service-time models and the fitting layer.

use rand::Rng;

/// A continuous univariate distribution over (a subset of) `[0, ∞)`.
pub trait Distribution {
    /// `P(X ≤ t)`.
    fn cdf(&self, t: f64) -> f64;

    /// Probability density at `t` (0 outside the support).
    fn pdf(&self, t: f64) -> f64;

    /// Inverse CDF at `p ∈ (0, 1)`.
    fn quantile(&self, p: f64) -> f64;

    /// Draws one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64;

    /// Mean, when finite.
    fn mean(&self) -> Option<f64>;

    /// Variance, when finite.
    fn variance(&self) -> Option<f64>;

    /// Draws `n` values.
    fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

// --- standard normal helpers -------------------------------------------------

/// Standard normal CDF `Φ(x)`, accurate to ≈ 1e-7 (Numerical-Recipes-style
/// rational erfc approximation).
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Standard normal density `φ(x)`.
pub fn normal_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Complementary error function, fractional error below 1.2e-7 everywhere.
fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Standard normal quantile `Φ⁻¹(p)` for `p ∈ (0, 1)`: Acklam's rational
/// approximation polished by two Newton steps against [`normal_cdf`], so
/// `normal_cdf(normal_quantile(p)) = p` to near machine precision.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "normal quantile level must be in (0, 1), got {p}"
    );
    // Acklam's algorithm
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    let mut x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // Newton polish against our own CDF for self-consistency
    for _ in 0..2 {
        let e = normal_cdf(x) - p;
        let d = normal_pdf(x);
        if d > 1e-300 {
            x -= e / d;
        }
    }
    x
}

/// Draws a standard normal variate via Marsaglia's polar method.
///
/// Exactly normal (a rejection method, not an approximation) and several
/// times cheaper than inverting [`normal_quantile`], whose Acklam-plus-
/// Newton polish costs two `erfc` evaluations per draw — it was the single
/// hottest instruction path of the Monte-Carlo executors. The price is a
/// variable number of uniforms per draw (~2.55 on average), which is fine:
/// every consumer owns a dedicated seeded RNG stream, so no code reasons
/// about draw positions within a stream.
pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u = 2.0 * rng.gen::<f64>() - 1.0;
        let v = 2.0 * rng.gen::<f64>() - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Lanczos approximation of `ln Γ(x)` for `x > 0` (g = 7, n = 9), absolute
/// error far below the trace sampling noise everywhere it is used.
fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_31e-7,
    ];
    if x < 0.5 {
        // reflection formula
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// `Γ(x)` via [`ln_gamma`].
fn gamma_fn(x: f64) -> f64 {
    ln_gamma(x).exp()
}

/// Draws a uniform in `(0, 1]` — safe as the argument of `ln`.
fn uniform_open<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    1.0 - rng.gen::<f64>()
}

/// Generic quantile by bisection for combinators without a closed form.
fn quantile_by_bisection<D: Distribution + ?Sized>(d: &D, p: f64, hint_hi: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "quantile level must be in (0, 1), got {p}"
    );
    let mut hi = hint_hi.max(1.0);
    while d.cdf(hi) < p {
        hi *= 2.0;
        assert!(hi < 1e300, "quantile bracket diverged");
    }
    let mut lo = 0.0;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if d.cdf(mid) < p {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

// --- log-normal --------------------------------------------------------------

/// Log-normal distribution: `ln X ~ N(μ, σ²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates from the log-space parameters; `σ > 0`.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, String> {
        if !mu.is_finite() {
            return Err(format!("lognormal mu must be finite, got {mu}"));
        }
        if !(sigma.is_finite() && sigma > 0.0) {
            return Err(format!("lognormal sigma must be positive, got {sigma}"));
        }
        Ok(LogNormal { mu, sigma })
    }

    /// Calibrates from the *linear-space* mean and standard deviation
    /// (both positive): `σ² = ln(1 + s²/m²)`, `μ = ln m − σ²/2`.
    pub fn from_mean_std(mean: f64, std: f64) -> Result<Self, String> {
        if !(mean.is_finite() && mean > 0.0) {
            return Err(format!("lognormal mean must be positive, got {mean}"));
        }
        if !(std.is_finite() && std > 0.0) {
            return Err(format!("lognormal std must be positive, got {std}"));
        }
        let sigma2 = (1.0 + (std / mean) * (std / mean)).ln();
        LogNormal::new(mean.ln() - 0.5 * sigma2, sigma2.sqrt())
    }

    /// Log-space location `μ`.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Log-space scale `σ`.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

impl Distribution for LogNormal {
    fn cdf(&self, t: f64) -> f64 {
        if t <= 0.0 {
            0.0
        } else {
            normal_cdf((t.ln() - self.mu) / self.sigma)
        }
    }

    fn pdf(&self, t: f64) -> f64 {
        if t <= 0.0 {
            0.0
        } else {
            let z = (t.ln() - self.mu) / self.sigma;
            normal_pdf(z) / (t * self.sigma)
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        (self.mu + self.sigma * normal_quantile(p)).exp()
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * sample_standard_normal(rng)).exp()
    }

    fn mean(&self) -> Option<f64> {
        Some((self.mu + 0.5 * self.sigma * self.sigma).exp())
    }

    fn variance(&self) -> Option<f64> {
        let s2 = self.sigma * self.sigma;
        Some((s2.exp() - 1.0) * (2.0 * self.mu + s2).exp())
    }
}

// --- exponential -------------------------------------------------------------

/// Exponential distribution with rate `λ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Creates from the rate `λ > 0`.
    pub fn new(lambda: f64) -> Result<Self, String> {
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(format!("exponential rate must be positive, got {lambda}"));
        }
        Ok(Exponential { lambda })
    }

    /// Creates from the mean `1/λ > 0`.
    pub fn with_mean(mean: f64) -> Result<Self, String> {
        if !(mean.is_finite() && mean > 0.0) {
            return Err(format!("exponential mean must be positive, got {mean}"));
        }
        Exponential::new(1.0 / mean)
    }

    /// The rate `λ`.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }
}

impl Distribution for Exponential {
    fn cdf(&self, t: f64) -> f64 {
        if t <= 0.0 {
            0.0
        } else {
            1.0 - (-self.lambda * t).exp()
        }
    }

    fn pdf(&self, t: f64) -> f64 {
        if t < 0.0 {
            0.0
        } else {
            self.lambda * (-self.lambda * t).exp()
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(
            p > 0.0 && p < 1.0,
            "quantile level must be in (0, 1), got {p}"
        );
        -(1.0 - p).ln() / self.lambda
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        -uniform_open(rng).ln() / self.lambda
    }

    fn mean(&self) -> Option<f64> {
        Some(1.0 / self.lambda)
    }

    fn variance(&self) -> Option<f64> {
        Some(1.0 / (self.lambda * self.lambda))
    }
}

// --- Weibull -----------------------------------------------------------------

/// Weibull distribution with shape `k` and scale `λ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    shape: f64,
    scale: f64,
}

impl Weibull {
    /// Creates from shape `k > 0` and scale `λ > 0`.
    pub fn new(shape: f64, scale: f64) -> Result<Self, String> {
        if !(shape.is_finite() && shape > 0.0) {
            return Err(format!("weibull shape must be positive, got {shape}"));
        }
        if !(scale.is_finite() && scale > 0.0) {
            return Err(format!("weibull scale must be positive, got {scale}"));
        }
        Ok(Weibull { shape, scale })
    }

    /// The shape `k`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// The scale `λ`.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

impl Distribution for Weibull {
    fn cdf(&self, t: f64) -> f64 {
        if t <= 0.0 {
            0.0
        } else {
            1.0 - (-(t / self.scale).powf(self.shape)).exp()
        }
    }

    fn pdf(&self, t: f64) -> f64 {
        if t <= 0.0 {
            0.0
        } else {
            let z = t / self.scale;
            (self.shape / self.scale) * z.powf(self.shape - 1.0) * (-z.powf(self.shape)).exp()
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(
            p > 0.0 && p < 1.0,
            "quantile level must be in (0, 1), got {p}"
        );
        self.scale * (-(1.0 - p).ln()).powf(1.0 / self.shape)
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.scale * (-uniform_open(rng).ln()).powf(1.0 / self.shape)
    }

    fn mean(&self) -> Option<f64> {
        Some(self.scale * gamma_fn(1.0 + 1.0 / self.shape))
    }

    fn variance(&self) -> Option<f64> {
        let g1 = gamma_fn(1.0 + 1.0 / self.shape);
        let g2 = gamma_fn(1.0 + 2.0 / self.shape);
        Some(self.scale * self.scale * (g2 - g1 * g1))
    }
}

// --- Pareto ------------------------------------------------------------------

/// Pareto (type I) distribution with scale `x_m` and tail index `α`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    scale: f64,
    alpha: f64,
}

impl Pareto {
    /// Creates from the scale (minimum value) `x_m > 0` and `α > 0`.
    pub fn new(scale: f64, alpha: f64) -> Result<Self, String> {
        if !(scale.is_finite() && scale > 0.0) {
            return Err(format!("pareto scale must be positive, got {scale}"));
        }
        if !(alpha.is_finite() && alpha > 0.0) {
            return Err(format!("pareto alpha must be positive, got {alpha}"));
        }
        Ok(Pareto { scale, alpha })
    }

    /// The scale (support minimum) `x_m`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The tail index `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl Distribution for Pareto {
    fn cdf(&self, t: f64) -> f64 {
        if t < self.scale {
            0.0
        } else {
            1.0 - (self.scale / t).powf(self.alpha)
        }
    }

    fn pdf(&self, t: f64) -> f64 {
        if t < self.scale {
            0.0
        } else {
            self.alpha * self.scale.powf(self.alpha) / t.powf(self.alpha + 1.0)
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(
            p > 0.0 && p < 1.0,
            "quantile level must be in (0, 1), got {p}"
        );
        self.scale * (1.0 - p).powf(-1.0 / self.alpha)
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.scale * uniform_open(rng).powf(-1.0 / self.alpha)
    }

    fn mean(&self) -> Option<f64> {
        (self.alpha > 1.0).then(|| self.alpha * self.scale / (self.alpha - 1.0))
    }

    fn variance(&self) -> Option<f64> {
        (self.alpha > 2.0).then(|| {
            let a = self.alpha;
            self.scale * self.scale * a / ((a - 1.0) * (a - 1.0) * (a - 2.0))
        })
    }
}

// --- shifted combinator ------------------------------------------------------

/// Location shift: `X + shift` for an inner distribution `X` — the hard
/// latency floor of grid middleware.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Shifted<D> {
    inner: D,
    shift: f64,
}

impl<D: Distribution> Shifted<D> {
    /// Creates from an inner distribution and a shift `≥ 0`.
    pub fn new(inner: D, shift: f64) -> Result<Self, String> {
        if !(shift.is_finite() && shift >= 0.0) {
            return Err(format!("shift must be non-negative, got {shift}"));
        }
        Ok(Shifted { inner, shift })
    }

    /// The inner (unshifted) distribution.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// The location shift.
    pub fn shift(&self) -> f64 {
        self.shift
    }
}

impl<D: Distribution> Distribution for Shifted<D> {
    fn cdf(&self, t: f64) -> f64 {
        self.inner.cdf(t - self.shift)
    }

    fn pdf(&self, t: f64) -> f64 {
        self.inner.pdf(t - self.shift)
    }

    fn quantile(&self, p: f64) -> f64 {
        self.shift + self.inner.quantile(p)
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.shift + self.inner.sample(rng)
    }

    fn mean(&self) -> Option<f64> {
        self.inner.mean().map(|m| m + self.shift)
    }

    fn variance(&self) -> Option<f64> {
        self.inner.variance()
    }
}

// --- mixtures ----------------------------------------------------------------

/// Two-component mixture: `A` with probability `w`, `B` otherwise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mixture<A, B> {
    a: A,
    b: B,
    w: f64,
}

impl<A: Distribution, B: Distribution> Mixture<A, B> {
    /// Creates from two components and the first component's weight
    /// `w ∈ [0, 1]`.
    pub fn new(a: A, b: B, w: f64) -> Result<Self, String> {
        if !(w.is_finite() && (0.0..=1.0).contains(&w)) {
            return Err(format!("mixture weight must be in [0, 1], got {w}"));
        }
        Ok(Mixture { a, b, w })
    }
}

impl<A: Distribution, B: Distribution> Distribution for Mixture<A, B> {
    fn cdf(&self, t: f64) -> f64 {
        self.w * self.a.cdf(t) + (1.0 - self.w) * self.b.cdf(t)
    }

    fn pdf(&self, t: f64) -> f64 {
        self.w * self.a.pdf(t) + (1.0 - self.w) * self.b.pdf(t)
    }

    fn quantile(&self, p: f64) -> f64 {
        let hint = if p < 0.999 {
            self.a.quantile(p.max(0.5)).max(self.b.quantile(p.max(0.5)))
        } else {
            1.0
        };
        quantile_by_bisection(self, p, hint)
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if rng.gen::<f64>() < self.w {
            self.a.sample(rng)
        } else {
            self.b.sample(rng)
        }
    }

    fn mean(&self) -> Option<f64> {
        Some(self.w * self.a.mean()? + (1.0 - self.w) * self.b.mean()?)
    }

    fn variance(&self) -> Option<f64> {
        // law of total variance
        let (ma, mb) = (self.a.mean()?, self.b.mean()?);
        let (va, vb) = (self.a.variance()?, self.b.variance()?);
        let m = self.w * ma + (1.0 - self.w) * mb;
        Some(self.w * (va + (ma - m) * (ma - m)) + (1.0 - self.w) * (vb + (mb - m) * (mb - m)))
    }
}

/// Body-plus-outlier-tail mixture: with probability `ρ` the draw comes from
/// the (far) tail distribution, otherwise from the body — the generative
/// counterpart of the paper's defective CDF `F̃ = (1-ρ)·F_R`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutlierMixture<B, T> {
    body: B,
    tail: T,
    rho: f64,
}

impl<B: Distribution, T: Distribution> OutlierMixture<B, T> {
    /// Creates from a body, an outlier-tail distribution and the outlier
    /// ratio `ρ ∈ [0, 1)`.
    pub fn new(body: B, tail: T, rho: f64) -> Result<Self, String> {
        if !(rho.is_finite() && (0.0..1.0).contains(&rho)) {
            return Err(format!("outlier ratio must be in [0, 1), got {rho}"));
        }
        Ok(OutlierMixture { body, tail, rho })
    }

    /// The outlier ratio `ρ`.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// The *defective* CDF `(1-ρ)·F_body(t)` — what the strategy equations
    /// consume when the tail is censored away.
    pub fn defective_cdf(&self, t: f64) -> f64 {
        (1.0 - self.rho) * self.body.cdf(t)
    }
}

impl<B: Distribution, T: Distribution> Distribution for OutlierMixture<B, T> {
    fn cdf(&self, t: f64) -> f64 {
        (1.0 - self.rho) * self.body.cdf(t) + self.rho * self.tail.cdf(t)
    }

    fn pdf(&self, t: f64) -> f64 {
        (1.0 - self.rho) * self.body.pdf(t) + self.rho * self.tail.pdf(t)
    }

    fn quantile(&self, p: f64) -> f64 {
        let hint = self.body.quantile(0.5).max(1.0);
        quantile_by_bisection(self, p, hint)
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if rng.gen::<f64>() < self.rho {
            self.tail.sample(rng)
        } else {
            self.body.sample(rng)
        }
    }

    fn mean(&self) -> Option<f64> {
        Some((1.0 - self.rho) * self.body.mean()? + self.rho * self.tail.mean()?)
    }

    fn variance(&self) -> Option<f64> {
        let (mb, mt) = (self.body.mean()?, self.tail.mean()?);
        let (vb, vt) = (self.body.variance()?, self.tail.variance()?);
        let m = (1.0 - self.rho) * mb + self.rho * mt;
        Some((1.0 - self.rho) * (vb + (mb - m) * (mb - m)) + self.rho * (vt + (mt - m) * (mt - m)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::derived_rng;

    #[test]
    fn normal_cdf_reference_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 2e-7);
        assert!((normal_cdf(1.0) - 0.841_344_746).abs() < 1e-6);
        assert!((normal_cdf(-1.96) - 0.024_997_895).abs() < 1e-6);
        assert!(normal_cdf(8.0) > 1.0 - 1e-9);
    }

    #[test]
    fn normal_quantile_is_inverse_of_cdf() {
        for p in [
            1e-6,
            0.001,
            0.02425,
            0.3,
            0.5,
            0.8,
            0.97575,
            0.999,
            1.0 - 1e-6,
        ] {
            let q = normal_quantile(p);
            assert!((normal_cdf(q) - p).abs() < 1e-9, "p={p}: Φ(Φ⁻¹(p)) off");
        }
    }

    #[test]
    fn ln_gamma_reference_values() {
        // Γ(1)=1, Γ(2)=1, Γ(5)=24, Γ(0.5)=√π
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-9);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-9);
    }

    #[test]
    fn lognormal_calibration_from_mean_std() {
        let d = LogNormal::from_mean_std(570.0, 886.0).unwrap();
        assert!((d.mean().unwrap() - 570.0).abs() < 1e-9);
        assert!((d.variance().unwrap().sqrt() - 886.0).abs() < 1e-6);
    }

    #[test]
    fn sample_moments_match_for_each_family() {
        let mut rng = derived_rng(11, 0);
        let n = 200_000;

        let ln = LogNormal::new(5.0, 0.5).unwrap();
        let m: f64 = ln.sample_n(&mut rng, n).iter().sum::<f64>() / n as f64;
        assert!((m - ln.mean().unwrap()).abs() / ln.mean().unwrap() < 0.02);

        let ex = Exponential::with_mean(400.0).unwrap();
        let m: f64 = ex.sample_n(&mut rng, n).iter().sum::<f64>() / n as f64;
        assert!((m - 400.0).abs() / 400.0 < 0.02);

        let wb = Weibull::new(1.5, 300.0).unwrap();
        let m: f64 = wb.sample_n(&mut rng, n).iter().sum::<f64>() / n as f64;
        assert!((m - wb.mean().unwrap()).abs() / wb.mean().unwrap() < 0.02);

        let pa = Pareto::new(100.0, 3.0).unwrap();
        let m: f64 = pa.sample_n(&mut rng, n).iter().sum::<f64>() / n as f64;
        assert!((m - pa.mean().unwrap()).abs() / pa.mean().unwrap() < 0.03);
    }

    #[test]
    fn quantile_inverts_cdf_for_each_family() {
        let ln = LogNormal::new(5.5, 0.9).unwrap();
        let ex = Exponential::new(0.002).unwrap();
        let wb = Weibull::new(0.7, 500.0).unwrap();
        let pa = Pareto::new(150.0, 1.5).unwrap();
        for p in [0.01, 0.25, 0.5, 0.9, 0.999] {
            assert!((ln.cdf(ln.quantile(p)) - p).abs() < 1e-8);
            assert!((ex.cdf(ex.quantile(p)) - p).abs() < 1e-12);
            assert!((wb.cdf(wb.quantile(p)) - p).abs() < 1e-12);
            assert!((pa.cdf(pa.quantile(p)) - p).abs() < 1e-12);
        }
    }

    #[test]
    fn pareto_moments_gate_on_alpha() {
        assert!(Pareto::new(10.0, 0.9).unwrap().mean().is_none());
        assert!(Pareto::new(10.0, 1.5).unwrap().mean().is_some());
        assert!(Pareto::new(10.0, 1.5).unwrap().variance().is_none());
        assert!(Pareto::new(10.0, 2.5).unwrap().variance().is_some());
    }

    #[test]
    fn shifted_moves_support_and_mean() {
        let base = Exponential::with_mean(100.0).unwrap();
        let s = Shifted::new(base, 50.0).unwrap();
        assert_eq!(s.cdf(49.0), 0.0);
        assert!((s.mean().unwrap() - 150.0).abs() < 1e-12);
        assert!((s.variance().unwrap() - base.variance().unwrap()).abs() < 1e-9);
        assert!((s.quantile(0.5) - (50.0 + base.quantile(0.5))).abs() < 1e-12);
        let mut rng = derived_rng(3, 0);
        for _ in 0..100 {
            assert!(s.sample(&mut rng) >= 50.0);
        }
    }

    #[test]
    fn shifted_rejects_negative_shift() {
        assert!(Shifted::new(Exponential::new(1.0).unwrap(), -1.0).is_err());
    }

    #[test]
    fn mixture_cdf_and_moments() {
        let a = Exponential::with_mean(100.0).unwrap();
        let b = Exponential::with_mean(1000.0).unwrap();
        let m = Mixture::new(a, b, 0.7).unwrap();
        // mean = 0.7·100 + 0.3·1000
        assert!((m.mean().unwrap() - 370.0).abs() < 1e-9);
        for t in [10.0, 100.0, 2000.0] {
            let want = 0.7 * a.cdf(t) + 0.3 * b.cdf(t);
            assert!((m.cdf(t) - want).abs() < 1e-12);
        }
        // quantile inverts the mixture cdf
        for p in [0.1, 0.5, 0.95] {
            assert!((m.cdf(m.quantile(p)) - p).abs() < 1e-6);
        }
    }

    #[test]
    fn outlier_mixture_matches_defective_form() {
        let body = LogNormal::from_mean_std(400.0, 500.0).unwrap();
        let tail = Pareto::new(10_000.0, 1.5).unwrap();
        let om = OutlierMixture::new(body, tail, 0.1).unwrap();
        // below the tail's support, full cdf equals the defective cdf
        for t in [100.0, 500.0, 5_000.0] {
            assert!((om.cdf(t) - om.defective_cdf(t)).abs() < 1e-12);
            assert!((om.defective_cdf(t) - 0.9 * body.cdf(t)).abs() < 1e-12);
        }
        // ~rho of draws land beyond the threshold
        let mut rng = derived_rng(5, 0);
        let n = 50_000;
        let beyond = (0..n).filter(|_| om.sample(&mut rng) >= 10_000.0).count();
        let frac = beyond as f64 / n as f64;
        assert!((frac - 0.1).abs() < 0.01, "outlier fraction {frac}");
    }

    #[test]
    fn standard_normal_sampler_moments() {
        let mut rng = derived_rng(17, 0);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sq = 0.0;
        for _ in 0..n {
            let z = sample_standard_normal(&mut rng);
            sum += z;
            sq += z * z;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn constructor_validation() {
        assert!(LogNormal::new(0.0, 0.0).is_err());
        assert!(LogNormal::from_mean_std(-5.0, 1.0).is_err());
        assert!(Exponential::new(0.0).is_err());
        assert!(Weibull::new(-1.0, 10.0).is_err());
        assert!(Pareto::new(10.0, f64::NAN).is_err());
        assert!(Mixture::new(
            Exponential::new(1.0).unwrap(),
            Exponential::new(2.0).unwrap(),
            1.5
        )
        .is_err());
        assert!(OutlierMixture::new(
            Exponential::new(1.0).unwrap(),
            Exponential::new(2.0).unwrap(),
            1.0
        )
        .is_err());
    }
}
