//! Hazard-rate analysis of latency distributions.
//!
//! The theoretical backbone of resubmission strategies: cancelling a job at
//! `t∞` and restarting only helps when the *hazard rate*
//! `h(t) = f(t)/(1-F(t))` of the latency distribution is **decreasing** —
//! a job that has waited long is then less likely to start soon than a
//! fresh one (and outliers, whose hazard is zero, are the extreme case).
//! For increasing-hazard (e.g. light-tailed) latencies, resubmission can
//! only waste time, which is why the memoryless exponential is the exact
//! break-even point.
//!
//! This module estimates empirical hazard profiles from censored samples
//! and classifies them, giving the library a principled “should you
//! resubmit at all?” diagnostic that complements the paper's numerical
//! optimizations.

use crate::ecdf::Ecdf;

/// One bin of an empirical hazard profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HazardBin {
    /// Bin start time (seconds).
    pub t_lo: f64,
    /// Bin end time (seconds).
    pub t_hi: f64,
    /// Estimated hazard rate on the bin, per second. With
    /// `p = P(start in bin | alive at bin start)` the exact
    /// piecewise-constant-hazard inverse is `-ln(1-p)/width` (the naive
    /// `p/width` biases low precisely on the wide high-`p` tail bins).
    pub rate: f64,
    /// Number of samples at risk at the bin start (body + still-censored).
    pub at_risk: usize,
}

/// Empirical hazard profile over equal-probability (quantile) bins.
#[derive(Debug, Clone)]
pub struct HazardProfile {
    bins: Vec<HazardBin>,
    outlier_ratio: f64,
}

/// Trend classification of a hazard profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HazardTrend {
    /// Hazard decreases over time: waiting is bad, resubmission pays.
    Decreasing,
    /// Hazard increases over time: jobs “ripen”, resubmission wastes work.
    Increasing,
    /// No clear monotone trend (e.g. memoryless-like plateau).
    Flat,
}

impl HazardProfile {
    /// Estimates the hazard on `n_bins` quantile bins of the body
    /// distribution, treating censored outliers as never-starting (their
    /// hazard contribution is zero but they stay in the risk set).
    ///
    /// Quantile bins keep per-bin event counts balanced, which controls the
    /// estimator's variance uniformly across the profile.
    pub fn from_ecdf(ecdf: &Ecdf, n_bins: usize) -> HazardProfile {
        assert!(n_bins >= 2, "need at least two bins for a profile");
        let body = ecdf.body();
        let n_total = ecdf.n_total();
        let mut bins = Vec::with_capacity(n_bins);
        let mut edges = Vec::with_capacity(n_bins + 1);
        edges.push(0.0);
        for i in 1..n_bins {
            edges.push(ecdf.body_quantile(i as f64 / n_bins as f64));
        }
        edges.push(body[body.len() - 1] * (1.0 + 1e-12));
        edges.dedup();

        for w in edges.windows(2) {
            let (lo, hi) = (w[0], w[1]);
            if hi <= lo {
                continue;
            }
            // events in [lo, hi): body samples in the bin
            let started = body.partition_point(|&x| x < hi) - body.partition_point(|&x| x < lo);
            // at risk at lo: everything not yet started (incl. outliers)
            let at_risk = n_total - body.partition_point(|&x| x < lo);
            if at_risk == 0 {
                break;
            }
            // +1 shrinkage keeps p < 1 so the log stays finite even when
            // every at-risk sample starts inside the bin
            let p = started as f64 / (at_risk as f64 + 1.0);
            bins.push(HazardBin {
                t_lo: lo,
                t_hi: hi,
                rate: -(1.0 - p).ln() / (hi - lo),
                at_risk,
            });
        }
        HazardProfile {
            bins,
            outlier_ratio: ecdf.outlier_ratio(),
        }
    }

    /// The estimated bins.
    pub fn bins(&self) -> &[HazardBin] {
        &self.bins
    }

    /// The sample's outlier ratio (hazard of the censored mass is zero).
    pub fn outlier_ratio(&self) -> f64 {
        self.outlier_ratio
    }

    /// Classifies the hazard trend by comparing the average rate of the
    /// first and last thirds of the profile; `tolerance` is the relative
    /// difference below which the trend counts as [`HazardTrend::Flat`].
    pub fn trend(&self, tolerance: f64) -> HazardTrend {
        assert!(tolerance >= 0.0);
        let n = self.bins.len();
        if n < 3 {
            return HazardTrend::Flat;
        }
        let third = (n / 3).max(1);
        let head: f64 = self.bins[..third].iter().map(|b| b.rate).sum::<f64>() / third as f64;
        let tail: f64 = self.bins[n - third..].iter().map(|b| b.rate).sum::<f64>() / third as f64;
        let rel = (head - tail) / head.max(f64::MIN_POSITIVE);
        if rel > tolerance {
            HazardTrend::Decreasing
        } else if rel < -tolerance {
            HazardTrend::Increasing
        } else {
            HazardTrend::Flat
        }
    }

    /// True when resubmission is advisable: decreasing hazard, or any
    /// non-zero outlier mass (lost jobs *must* be resubmitted eventually).
    pub fn resubmission_pays(&self) -> bool {
        self.outlier_ratio > 0.0 || self.trend(0.25) == HazardTrend::Decreasing
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Distribution, Exponential, LogNormal, Weibull};
    use crate::rng::derived_rng;

    fn profile_of<D: Distribution>(d: &D, n: usize, seed: u64) -> HazardProfile {
        let mut rng = derived_rng(seed, 0);
        let xs = d.sample_n(&mut rng, n);
        let e = Ecdf::from_samples(&xs, f64::MAX.sqrt()).unwrap();
        HazardProfile::from_ecdf(&e, 12)
    }

    #[test]
    fn exponential_hazard_is_flat() {
        let d = Exponential::with_mean(300.0).unwrap();
        let p = profile_of(&d, 40_000, 1);
        assert_eq!(p.trend(0.25), HazardTrend::Flat);
        // the plateau sits near λ = 1/300
        for b in &p.bins()[..p.bins().len() - 1] {
            assert!(
                (b.rate - 1.0 / 300.0).abs() / (1.0 / 300.0) < 0.35,
                "rate {} far from λ",
                b.rate
            );
        }
        assert!(!p.resubmission_pays());
    }

    #[test]
    fn lognormal_hazard_decreases_in_the_tail() {
        // heavy log-normal (cv ≈ 1.9): hazard rises then falls; with the
        // first bins near zero (nothing starts immediately) the profile's
        // head-vs-tail comparison must *not* classify as Increasing
        let d = LogNormal::from_mean_std(450.0, 850.0).unwrap();
        let p = profile_of(&d, 40_000, 2);
        assert_ne!(p.trend(0.25), HazardTrend::Increasing);
        // and the very tail is thinner-hazard than the mode region
        let peak = p.bins().iter().map(|b| b.rate).fold(0.0, f64::max);
        let last = p.bins().last().unwrap().rate;
        assert!(last < 0.5 * peak, "tail hazard {last} vs peak {peak}");
    }

    #[test]
    fn weibull_shapes_classify_correctly() {
        // k < 1 ⇒ strictly decreasing hazard; k > 1 ⇒ strictly increasing
        let dec = profile_of(&Weibull::new(0.6, 300.0).unwrap(), 40_000, 3);
        assert_eq!(dec.trend(0.25), HazardTrend::Decreasing);
        assert!(dec.resubmission_pays());
        let inc = profile_of(&Weibull::new(2.5, 300.0).unwrap(), 40_000, 4);
        assert_eq!(inc.trend(0.25), HazardTrend::Increasing);
        assert!(!inc.resubmission_pays());
    }

    #[test]
    fn outlier_mass_always_makes_resubmission_pay() {
        let d = Exponential::with_mean(300.0).unwrap();
        let mut rng = derived_rng(5, 0);
        let mut xs = d.sample_n(&mut rng, 5_000);
        xs.extend(std::iter::repeat_n(20_000.0, 500)); // 9% outliers
        let e = Ecdf::from_samples(&xs, 10_000.0).unwrap();
        let p = HazardProfile::from_ecdf(&e, 10);
        assert!(p.outlier_ratio() > 0.08);
        assert!(p.resubmission_pays());
    }

    #[test]
    fn risk_set_is_monotone_decreasing() {
        let d = LogNormal::new(5.5, 1.0).unwrap();
        let p = profile_of(&d, 10_000, 6);
        for w in p.bins().windows(2) {
            assert!(w[1].at_risk <= w[0].at_risk);
        }
        assert!(p.bins().iter().all(|b| b.rate >= 0.0));
    }

    #[test]
    #[should_panic(expected = "at least two bins")]
    fn rejects_single_bin() {
        let d = Exponential::new(1.0).unwrap();
        let mut rng = derived_rng(7, 0);
        let xs = d.sample_n(&mut rng, 100);
        let e = Ecdf::from_samples(&xs, 1e9).unwrap();
        HazardProfile::from_ecdf(&e, 1);
    }
}
