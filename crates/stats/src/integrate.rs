//! Numerical quadrature for parametric latency models.
//!
//! Empirical CDFs integrate exactly (see [`crate::stepfn`]); parametric
//! models (log-normal bodies etc.) need quadrature. Adaptive Simpson with a
//! recursion-depth safeguard is accurate and cheap for the smooth, bounded
//! integrands that appear in the strategy equations.

/// Composite trapezoid rule with `n ≥ 1` panels.
pub fn trapezoid(f: impl Fn(f64) -> f64, a: f64, b: f64, n: usize) -> f64 {
    assert!(n >= 1, "need at least one panel");
    if a == b {
        return 0.0;
    }
    let h = (b - a) / n as f64;
    let mut sum = 0.5 * (f(a) + f(b));
    for i in 1..n {
        sum += f(a + i as f64 * h);
    }
    sum * h
}

/// Composite Simpson rule with `n` panels (`n` rounded up to even).
pub fn simpson(f: impl Fn(f64) -> f64, a: f64, b: f64, n: usize) -> f64 {
    assert!(n >= 2, "need at least two panels");
    if a == b {
        return 0.0;
    }
    let n = if n.is_multiple_of(2) { n } else { n + 1 };
    let h = (b - a) / n as f64;
    let mut sum = f(a) + f(b);
    for i in 1..n {
        let c = if i % 2 == 1 { 4.0 } else { 2.0 };
        sum += c * f(a + i as f64 * h);
    }
    sum * h / 3.0
}

/// Adaptive Simpson quadrature to absolute tolerance `tol`.
///
/// Uses the classic Richardson-style error estimate `|S2 - S1|/15 < tol`
/// with per-subinterval tolerance halving and a depth cap of 50 (at which
/// point the current best estimate is accepted — integrands here are smooth
/// except at isolated step points, where the error is already negligible).
pub fn adaptive_simpson(f: impl Fn(f64) -> f64 + Copy, a: f64, b: f64, tol: f64) -> f64 {
    if a == b {
        return 0.0;
    }
    if b < a {
        return -adaptive_simpson(f, b, a, tol);
    }
    let fa = f(a);
    let fb = f(b);
    let m = 0.5 * (a + b);
    let fm = f(m);
    let whole = (b - a) / 6.0 * (fa + 4.0 * fm + fb);
    adaptive_step(f, a, b, fa, fb, fm, whole, tol, 50)
}

#[allow(clippy::too_many_arguments)]
fn adaptive_step(
    f: impl Fn(f64) -> f64 + Copy,
    a: f64,
    b: f64,
    fa: f64,
    fb: f64,
    fm: f64,
    whole: f64,
    tol: f64,
    depth: u32,
) -> f64 {
    let m = 0.5 * (a + b);
    let lm = 0.5 * (a + m);
    let rm = 0.5 * (m + b);
    let flm = f(lm);
    let frm = f(rm);
    let left = (m - a) / 6.0 * (fa + 4.0 * flm + fm);
    let right = (b - m) / 6.0 * (fm + 4.0 * frm + fb);
    let delta = left + right - whole;
    if depth == 0 || delta.abs() <= 15.0 * tol {
        left + right + delta / 15.0
    } else {
        adaptive_step(f, a, m, fa, fm, flm, left, tol / 2.0, depth - 1)
            + adaptive_step(f, m, b, fm, fb, frm, right, tol / 2.0, depth - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trapezoid_linear_exact() {
        // ∫₀¹ (2x+1) dx = 2
        let got = trapezoid(|x| 2.0 * x + 1.0, 0.0, 1.0, 1);
        assert!((got - 2.0).abs() < 1e-12);
    }

    #[test]
    fn simpson_cubic_exact() {
        // Simpson is exact for cubics: ∫₀² x³ dx = 4
        let got = simpson(|x| x * x * x, 0.0, 2.0, 2);
        assert!((got - 4.0).abs() < 1e-12);
    }

    #[test]
    fn simpson_rounds_odd_panels() {
        let got = simpson(|x| x * x, 0.0, 3.0, 3);
        assert!((got - 9.0).abs() < 1e-10);
    }

    #[test]
    fn adaptive_simpson_exp() {
        // ∫₀¹ e^x dx = e - 1
        let got = adaptive_simpson(|x| x.exp(), 0.0, 1.0, 1e-10);
        assert!((got - (1f64.exp() - 1.0)).abs() < 1e-9);
    }

    #[test]
    fn adaptive_simpson_reversed_bounds() {
        let f = |x: f64| x.sin();
        let forward = adaptive_simpson(f, 0.0, std::f64::consts::PI, 1e-10);
        let backward = adaptive_simpson(f, std::f64::consts::PI, 0.0, 1e-10);
        assert!((forward - 2.0).abs() < 1e-8);
        assert!((forward + backward).abs() < 1e-12);
    }

    #[test]
    fn adaptive_simpson_peaked_integrand() {
        // sharply peaked Gaussian: ∫ φ((x-5)/0.01)/0.01 over [0,10] ≈ 1
        let f = |x: f64| {
            let z: f64 = (x - 5.0) / 0.01;
            (-0.5 * z * z).exp() / (0.01 * (2.0 * std::f64::consts::PI).sqrt())
        };
        let got = adaptive_simpson(f, 0.0, 10.0, 1e-10);
        assert!((got - 1.0).abs() < 1e-6, "got {got}");
    }

    #[test]
    fn degenerate_interval_is_zero() {
        assert_eq!(adaptive_simpson(|x| x, 3.0, 3.0, 1e-9), 0.0);
        assert_eq!(trapezoid(|x| x, 2.0, 2.0, 4), 0.0);
        assert_eq!(simpson(|x| x, 2.0, 2.0, 4), 0.0);
    }
}
