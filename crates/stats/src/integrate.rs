//! Numerical quadrature for parametric latency models.
//!
//! Empirical CDFs integrate exactly (see [`crate::stepfn`]); parametric
//! models (log-normal bodies etc.) need quadrature. Adaptive Simpson with a
//! recursion-depth safeguard is accurate and cheap for the smooth, bounded
//! integrands that appear in the strategy equations.

/// Composite trapezoid rule with `n ≥ 1` panels.
pub fn trapezoid(f: impl Fn(f64) -> f64, a: f64, b: f64, n: usize) -> f64 {
    assert!(n >= 1, "need at least one panel");
    if a == b {
        return 0.0;
    }
    let h = (b - a) / n as f64;
    let mut sum = 0.5 * (f(a) + f(b));
    for i in 1..n {
        sum += f(a + i as f64 * h);
    }
    sum * h
}

/// Composite Simpson rule with `n` panels (`n` rounded up to even).
pub fn simpson(f: impl Fn(f64) -> f64, a: f64, b: f64, n: usize) -> f64 {
    assert!(n >= 2, "need at least two panels");
    if a == b {
        return 0.0;
    }
    let n = if n.is_multiple_of(2) { n } else { n + 1 };
    let h = (b - a) / n as f64;
    let mut sum = f(a) + f(b);
    for i in 1..n {
        let c = if i % 2 == 1 { 4.0 } else { 2.0 };
        sum += c * f(a + i as f64 * h);
    }
    sum * h / 3.0
}

/// Adaptive Simpson quadrature to absolute tolerance `tol`.
///
/// Uses the classic Richardson-style error estimate `|S2 - S1|/15 < tol`
/// with per-subinterval tolerance halving and a depth cap of 50 (at which
/// point the current best estimate is accepted — integrands here are smooth
/// except at isolated step points, where the error is already negligible).
pub fn adaptive_simpson(f: impl Fn(f64) -> f64 + Copy, a: f64, b: f64, tol: f64) -> f64 {
    if a == b {
        return 0.0;
    }
    if b < a {
        return -adaptive_simpson(f, b, a, tol);
    }
    let fa = f(a);
    let fb = f(b);
    let m = 0.5 * (a + b);
    let fm = f(m);
    let whole = (b - a) / 6.0 * (fa + 4.0 * fm + fb);
    adaptive_step(f, a, b, fa, fb, fm, whole, tol, 50)
}

/// Adaptive Simpson quadrature of `(∫ f, ∫ u·f(u) du)` in **one** pass.
///
/// The strategy equations always need an integral and its first moment
/// over the same integrand (eqs. 1–5: `A`/`B`, `C0`/`D0`, and their
/// powered variants). Evaluating `f` — a survival product over a fitted
/// body CDF, by far the dominant cost — once per abscissa instead of once
/// per integral halves the closed-form evaluation cost of a scenario
/// sweep cell.
///
/// Refinement stops when both components meet their tolerance: `tol` for
/// `∫f`, and `tol·max(|a|, |b|, 1)` for the moment. The scaling keeps the
/// two criteria equally *relative*: on `[0, b]` the moment integrand is
/// the plain one times `u ≤ b`, so demanding the same absolute error of
/// both would force ~`b`-times-finer refinement of the moment for no
/// usable gain (callers divide the moment by a same-scale normaliser).
pub fn adaptive_simpson_with_moment(
    f: impl Fn(f64) -> f64 + Copy,
    a: f64,
    b: f64,
    tol: f64,
) -> (f64, f64) {
    if a == b {
        return (0.0, 0.0);
    }
    if b < a {
        let (i, m) = adaptive_simpson_with_moment(f, b, a, tol);
        return (-i, -m);
    }
    let g = move |u: f64| {
        let v = f(u);
        (v, u * v)
    };
    let tol_m = tol * a.abs().max(b.abs()).max(1.0);
    let fa = g(a);
    let fb = g(b);
    let m = 0.5 * (a + b);
    let fm = g(m);
    let w = (b - a) / 6.0;
    let whole = (
        w * (fa.0 + 4.0 * fm.0 + fb.0),
        w * (fa.1 + 4.0 * fm.1 + fb.1),
    );
    adaptive_step2(g, a, b, fa, fb, fm, whole, (tol, tol_m), 50)
}

type Pair = (f64, f64);

#[allow(clippy::too_many_arguments)]
fn adaptive_step2(
    g: impl Fn(f64) -> Pair + Copy,
    a: f64,
    b: f64,
    ga: Pair,
    gb: Pair,
    gm: Pair,
    whole: Pair,
    tol: Pair,
    depth: u32,
) -> Pair {
    let m = 0.5 * (a + b);
    let lm = 0.5 * (a + m);
    let rm = 0.5 * (m + b);
    let glm = g(lm);
    let grm = g(rm);
    let wl = (m - a) / 6.0;
    let wr = (b - m) / 6.0;
    let left = (
        wl * (ga.0 + 4.0 * glm.0 + gm.0),
        wl * (ga.1 + 4.0 * glm.1 + gm.1),
    );
    let right = (
        wr * (gm.0 + 4.0 * grm.0 + gb.0),
        wr * (gm.1 + 4.0 * grm.1 + gb.1),
    );
    let delta = (left.0 + right.0 - whole.0, left.1 + right.1 - whole.1);
    if depth == 0 || (delta.0.abs() <= 15.0 * tol.0 && delta.1.abs() <= 15.0 * tol.1) {
        (
            left.0 + right.0 + delta.0 / 15.0,
            left.1 + right.1 + delta.1 / 15.0,
        )
    } else {
        let half = (tol.0 / 2.0, tol.1 / 2.0);
        let l = adaptive_step2(g, a, m, ga, gm, glm, left, half, depth - 1);
        let r = adaptive_step2(g, m, b, gm, gb, grm, right, half, depth - 1);
        (l.0 + r.0, l.1 + r.1)
    }
}

#[allow(clippy::too_many_arguments)]
fn adaptive_step(
    f: impl Fn(f64) -> f64 + Copy,
    a: f64,
    b: f64,
    fa: f64,
    fb: f64,
    fm: f64,
    whole: f64,
    tol: f64,
    depth: u32,
) -> f64 {
    let m = 0.5 * (a + b);
    let lm = 0.5 * (a + m);
    let rm = 0.5 * (m + b);
    let flm = f(lm);
    let frm = f(rm);
    let left = (m - a) / 6.0 * (fa + 4.0 * flm + fm);
    let right = (b - m) / 6.0 * (fm + 4.0 * frm + fb);
    let delta = left + right - whole;
    if depth == 0 || delta.abs() <= 15.0 * tol {
        left + right + delta / 15.0
    } else {
        adaptive_step(f, a, m, fa, fm, flm, left, tol / 2.0, depth - 1)
            + adaptive_step(f, m, b, fm, fb, frm, right, tol / 2.0, depth - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trapezoid_linear_exact() {
        // ∫₀¹ (2x+1) dx = 2
        let got = trapezoid(|x| 2.0 * x + 1.0, 0.0, 1.0, 1);
        assert!((got - 2.0).abs() < 1e-12);
    }

    #[test]
    fn simpson_cubic_exact() {
        // Simpson is exact for cubics: ∫₀² x³ dx = 4
        let got = simpson(|x| x * x * x, 0.0, 2.0, 2);
        assert!((got - 4.0).abs() < 1e-12);
    }

    #[test]
    fn simpson_rounds_odd_panels() {
        let got = simpson(|x| x * x, 0.0, 3.0, 3);
        assert!((got - 9.0).abs() < 1e-10);
    }

    #[test]
    fn adaptive_simpson_exp() {
        // ∫₀¹ e^x dx = e - 1
        let got = adaptive_simpson(|x| x.exp(), 0.0, 1.0, 1e-10);
        assert!((got - (1f64.exp() - 1.0)).abs() < 1e-9);
    }

    #[test]
    fn adaptive_simpson_reversed_bounds() {
        let f = |x: f64| x.sin();
        let forward = adaptive_simpson(f, 0.0, std::f64::consts::PI, 1e-10);
        let backward = adaptive_simpson(f, std::f64::consts::PI, 0.0, 1e-10);
        assert!((forward - 2.0).abs() < 1e-8);
        assert!((forward + backward).abs() < 1e-12);
    }

    #[test]
    fn adaptive_simpson_peaked_integrand() {
        // sharply peaked Gaussian: ∫ φ((x-5)/0.01)/0.01 over [0,10] ≈ 1
        let f = |x: f64| {
            let z: f64 = (x - 5.0) / 0.01;
            (-0.5 * z * z).exp() / (0.01 * (2.0 * std::f64::consts::PI).sqrt())
        };
        let got = adaptive_simpson(f, 0.0, 10.0, 1e-10);
        assert!((got - 1.0).abs() < 1e-6, "got {got}");
    }

    #[test]
    fn degenerate_interval_is_zero() {
        assert_eq!(adaptive_simpson(|x| x, 3.0, 3.0, 1e-9), 0.0);
        assert_eq!(trapezoid(|x| x, 2.0, 2.0, 4), 0.0);
        assert_eq!(simpson(|x| x, 2.0, 2.0, 4), 0.0);
        assert_eq!(
            adaptive_simpson_with_moment(|x| x, 3.0, 3.0, 1e-9),
            (0.0, 0.0)
        );
    }

    #[test]
    fn paired_quadrature_matches_two_separate_runs() {
        // ∫₀¹ e^x dx = e - 1 ; ∫₀¹ x·e^x dx = 1
        let (i, m) = adaptive_simpson_with_moment(|x| x.exp(), 0.0, 1.0, 1e-10);
        assert!((i - (1f64.exp() - 1.0)).abs() < 1e-9, "∫f got {i}");
        assert!((m - 1.0).abs() < 1e-9, "∫uf got {m}");
        // and a survival-like decaying integrand over a long range
        let f = |x: f64| (-x / 300.0).exp();
        let (i, m) = adaptive_simpson_with_moment(f, 0.0, 2_000.0, 1e-8);
        let si = adaptive_simpson(f, 0.0, 2_000.0, 1e-10);
        let sm = adaptive_simpson(|x| x * f(x), 0.0, 2_000.0, 1e-10);
        assert!((i - si).abs() < 1e-5, "∫f {i} vs {si}");
        assert!((m - sm).abs() < 1e-3, "∫uf {m} vs {sm}");
    }

    #[test]
    fn paired_quadrature_reversed_bounds_negate() {
        let f = |x: f64| x.sin();
        let fwd = adaptive_simpson_with_moment(f, 0.0, 1.0, 1e-10);
        let back = adaptive_simpson_with_moment(f, 1.0, 0.0, 1e-10);
        assert!((fwd.0 + back.0).abs() < 1e-12);
        assert!((fwd.1 + back.1).abs() < 1e-12);
    }
}
