//! Piecewise-constant, right-continuous step functions with exact integrals.
//!
//! The HPDC'09 strategy models reduce to integrals of `1 - F̃(u)`,
//! `u·(1 - F̃(u))` and products such as `(1 - F̃(u+t0))·(1 - F̃(u))` where
//! `F̃` is an *empirical* (hence piecewise-constant) defective CDF. All of
//! these are integrals of step functions and can be evaluated **exactly** by
//! summing over breakpoints — no quadrature, no discretization error. This
//! module provides that algebra.
//!
//! A [`StepFn`] is defined by sorted breakpoints `x_0 < x_1 < … < x_{k-1}`
//! and values `v_0 … v_k`: the function equals `v_0` on `(-∞, x_0)`, `v_i`
//! on `[x_{i-1}, x_i)` for `0 < i < k`, and `v_k` on `[x_{k-1}, ∞)`.
//! (Right-continuity: the value *at* a breakpoint is the value to its right,
//! matching the usual CDF convention `F(t) = P(X ≤ t)`.)

/// A piecewise-constant, right-continuous function on ℝ.
///
/// Stored as `breaks` (strictly increasing) and `values` with
/// `values.len() == breaks.len() + 1`. See the module docs for the exact
/// convention.
///
/// # Examples
///
/// ```
/// use gridstrat_stats::StepFn;
/// // 0 on (-inf,1), 0.5 on [1,2), 1 on [2,inf)
/// let f = StepFn::new(vec![1.0, 2.0], vec![0.0, 0.5, 1.0]).unwrap();
/// assert_eq!(f.eval(0.0), 0.0);
/// assert_eq!(f.eval(1.0), 0.5);
/// assert_eq!(f.eval(1.999), 0.5);
/// assert_eq!(f.eval(2.0), 1.0);
/// // ∫₀³ f = 0*1 + 0.5*1 + 1*1 = 1.5
/// assert!((f.integral(0.0, 3.0) - 1.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StepFn {
    breaks: Vec<f64>,
    values: Vec<f64>,
}

/// Error constructing a [`StepFn`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepFnError {
    /// `values.len() != breaks.len() + 1`.
    LengthMismatch,
    /// Breakpoints are not strictly increasing or contain non-finite values.
    InvalidBreaks,
}

impl std::fmt::Display for StepFnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StepFnError::LengthMismatch => {
                write!(f, "values must have exactly one more entry than breaks")
            }
            StepFnError::InvalidBreaks => {
                write!(f, "breaks must be finite and strictly increasing")
            }
        }
    }
}

impl std::error::Error for StepFnError {}

impl StepFn {
    /// Builds a step function from breakpoints and per-interval values.
    ///
    /// `breaks` must be finite and strictly increasing;
    /// `values.len()` must equal `breaks.len() + 1`.
    pub fn new(breaks: Vec<f64>, values: Vec<f64>) -> Result<Self, StepFnError> {
        if values.len() != breaks.len() + 1 {
            return Err(StepFnError::LengthMismatch);
        }
        if breaks.iter().any(|b| !b.is_finite()) || breaks.windows(2).any(|w| w[0] >= w[1]) {
            return Err(StepFnError::InvalidBreaks);
        }
        Ok(StepFn { breaks, values })
    }

    /// The constant function `c`.
    pub fn constant(c: f64) -> Self {
        StepFn {
            breaks: Vec::new(),
            values: vec![c],
        }
    }

    /// Breakpoints (strictly increasing).
    pub fn breaks(&self) -> &[f64] {
        &self.breaks
    }

    /// Interval values (`breaks.len() + 1` of them).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Evaluates the function at `x` (right-continuous).
    pub fn eval(&self, x: f64) -> f64 {
        // partition_point returns the number of breaks <= x, which indexes
        // the interval [x_{i-1}, x_i) containing x under right-continuity.
        let idx = self.breaks.partition_point(|&b| b <= x);
        self.values[idx]
    }

    /// Exact integral `∫_a^b f(u) du`. Returns `-integral(b, a)` if `b < a`.
    pub fn integral(&self, a: f64, b: f64) -> f64 {
        if b < a {
            return -self.integral(b, a);
        }
        if a == b {
            return 0.0;
        }
        let mut total = 0.0;
        let mut lo = a;
        // first interval index containing a
        let mut idx = self.breaks.partition_point(|&br| br <= a);
        while lo < b {
            let hi = if idx < self.breaks.len() {
                self.breaks[idx].min(b)
            } else {
                b
            };
            total += self.values[idx] * (hi - lo);
            lo = hi;
            idx += 1;
        }
        total
    }

    /// Exact integral `∫_a^b u·f(u) du` (first-moment integral).
    pub fn moment_integral(&self, a: f64, b: f64) -> f64 {
        if b < a {
            return -self.moment_integral(b, a);
        }
        if a == b {
            return 0.0;
        }
        let mut total = 0.0;
        let mut lo = a;
        let mut idx = self.breaks.partition_point(|&br| br <= a);
        while lo < b {
            let hi = if idx < self.breaks.len() {
                self.breaks[idx].min(b)
            } else {
                b
            };
            total += self.values[idx] * 0.5 * (hi * hi - lo * lo);
            lo = hi;
            idx += 1;
        }
        total
    }

    /// Pointwise map of the values: `g(x) = op(f(x))`.
    ///
    /// The breakpoint set is preserved (no compaction of equal neighbours);
    /// this keeps the operation O(k).
    pub fn map(&self, op: impl Fn(f64) -> f64) -> StepFn {
        StepFn {
            breaks: self.breaks.clone(),
            values: self.values.iter().map(|&v| op(v)).collect(),
        }
    }

    /// The function `x ↦ f(x - shift)` (translate the graph right by `shift`).
    pub fn shift(&self, shift: f64) -> StepFn {
        StepFn {
            breaks: self.breaks.iter().map(|b| b + shift).collect(),
            values: self.values.clone(),
        }
    }

    /// Pointwise combination `x ↦ op(f(x), g(x))` on the merged breakpoint set.
    pub fn combine(&self, other: &StepFn, op: impl Fn(f64, f64) -> f64) -> StepFn {
        let mut breaks = Vec::with_capacity(self.breaks.len() + other.breaks.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.breaks.len() || j < other.breaks.len() {
            let next = match (self.breaks.get(i), other.breaks.get(j)) {
                (Some(&a), Some(&b)) => {
                    if a < b {
                        i += 1;
                        a
                    } else if b < a {
                        j += 1;
                        b
                    } else {
                        i += 1;
                        j += 1;
                        a
                    }
                }
                (Some(&a), None) => {
                    i += 1;
                    a
                }
                (None, Some(&b)) => {
                    j += 1;
                    b
                }
                (None, None) => unreachable!(),
            };
            breaks.push(next);
        }
        // values: evaluate both functions on each merged interval. Interval m
        // is (-inf, breaks[0]) for m = 0 and [breaks[m-1], breaks[m]) after.
        let mut values = Vec::with_capacity(breaks.len() + 1);
        let mut ai = 0usize; // index into self.values
        let mut bi = 0usize;
        values.push(op(self.values[0], other.values[0]));
        for &br in &breaks {
            while ai < self.breaks.len() && self.breaks[ai] <= br {
                ai += 1;
            }
            while bi < other.breaks.len() && other.breaks[bi] <= br {
                bi += 1;
            }
            values.push(op(self.values[ai], other.values[bi]));
        }
        StepFn { breaks, values }
    }

    /// Pointwise product `f·g`.
    pub fn product(&self, other: &StepFn) -> StepFn {
        self.combine(other, |a, b| a * b)
    }

    /// Pointwise sum `f+g`.
    pub fn sum(&self, other: &StepFn) -> StepFn {
        self.combine(other, |a, b| a + b)
    }

    /// Number of breakpoints.
    pub fn len(&self) -> usize {
        self.breaks.len()
    }

    /// True if the function is constant (no breakpoints).
    pub fn is_empty(&self) -> bool {
        self.breaks.is_empty()
    }

    /// Removes consecutive intervals with (bitwise) equal values, shrinking
    /// the representation. Semantics are unchanged.
    pub fn compact(&self) -> StepFn {
        let mut breaks = Vec::with_capacity(self.breaks.len());
        let mut values = Vec::with_capacity(self.values.len());
        values.push(self.values[0]);
        for (i, &br) in self.breaks.iter().enumerate() {
            let next = self.values[i + 1];
            if next.to_bits() != values.last().unwrap().to_bits() {
                breaks.push(br);
                values.push(next);
            }
        }
        StepFn { breaks, values }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f_simple() -> StepFn {
        StepFn::new(vec![1.0, 2.0, 4.0], vec![0.0, 1.0, 3.0, 2.0]).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert_eq!(
            StepFn::new(vec![1.0], vec![0.0]).unwrap_err(),
            StepFnError::LengthMismatch
        );
        assert_eq!(
            StepFn::new(vec![2.0, 1.0], vec![0.0, 1.0, 2.0]).unwrap_err(),
            StepFnError::InvalidBreaks
        );
        assert_eq!(
            StepFn::new(vec![1.0, 1.0], vec![0.0, 1.0, 2.0]).unwrap_err(),
            StepFnError::InvalidBreaks
        );
        assert_eq!(
            StepFn::new(vec![f64::NAN], vec![0.0, 1.0]).unwrap_err(),
            StepFnError::InvalidBreaks
        );
    }

    #[test]
    fn eval_right_continuous() {
        let f = f_simple();
        assert_eq!(f.eval(0.5), 0.0);
        assert_eq!(f.eval(1.0), 1.0); // value at breakpoint = value to the right
        assert_eq!(f.eval(1.5), 1.0);
        assert_eq!(f.eval(2.0), 3.0);
        assert_eq!(f.eval(3.999), 3.0);
        assert_eq!(f.eval(4.0), 2.0);
        assert_eq!(f.eval(100.0), 2.0);
        assert_eq!(f.eval(-100.0), 0.0);
    }

    #[test]
    fn constant_function() {
        let c = StepFn::constant(2.5);
        assert_eq!(c.eval(-1e9), 2.5);
        assert_eq!(c.eval(1e9), 2.5);
        assert!((c.integral(0.0, 4.0) - 10.0).abs() < 1e-12);
        assert!(c.is_empty());
    }

    #[test]
    fn integral_exact() {
        let f = f_simple();
        // ∫₀⁵ = 0*1 + 1*1 + 3*2 + 2*1 = 9
        assert!((f.integral(0.0, 5.0) - 9.0).abs() < 1e-12);
        // partial interval: ∫_{1.5}^{2.5} = 1*0.5 + 3*0.5 = 2
        assert!((f.integral(1.5, 2.5) - 2.0).abs() < 1e-12);
        // reversed bounds negate
        assert!((f.integral(2.5, 1.5) + 2.0).abs() < 1e-12);
        // empty interval
        assert_eq!(f.integral(3.0, 3.0), 0.0);
    }

    #[test]
    fn integral_spanning_all_breaks_from_negative() {
        let f = f_simple();
        // ∫_{-1}^{1} = 0*2 = 0 ; ∫_{-1}^{6} = 0 + 1 + 6 + 4 = 11
        assert!((f.integral(-1.0, 1.0)).abs() < 1e-12);
        assert!((f.integral(-1.0, 6.0) - 11.0).abs() < 1e-12);
    }

    #[test]
    fn moment_integral_exact() {
        let f = f_simple();
        // ∫₁² u·1 du = 1.5 ; ∫₂⁴ u·3 du = 3*(8-2) = 18 ; ∫₄⁵ u*2 = 9
        let expect = 1.5 + 18.0 + 9.0;
        assert!((f.moment_integral(0.0, 5.0) - expect).abs() < 1e-12);
        assert!((f.moment_integral(5.0, 0.0) + expect).abs() < 1e-12);
    }

    #[test]
    fn shift_moves_graph_right() {
        let f = f_simple();
        let g = f.shift(10.0);
        assert_eq!(g.eval(11.5), f.eval(1.5));
        assert_eq!(g.eval(14.0), f.eval(4.0));
        assert!((g.integral(10.0, 15.0) - f.integral(0.0, 5.0)).abs() < 1e-12);
    }

    #[test]
    fn map_applies_pointwise() {
        let f = f_simple();
        let g = f.map(|v| 1.0 - v);
        for x in [-1.0, 0.5, 1.0, 1.7, 2.0, 3.0, 4.5] {
            assert!((g.eval(x) - (1.0 - f.eval(x))).abs() < 1e-12);
        }
    }

    #[test]
    fn product_matches_pointwise() {
        let f = f_simple();
        let g = StepFn::new(vec![0.5, 2.0, 3.0], vec![1.0, 2.0, 0.5, 1.0]).unwrap();
        let p = f.product(&g);
        for x in [-1.0, 0.4, 0.5, 0.9, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 9.0] {
            assert!(
                (p.eval(x) - f.eval(x) * g.eval(x)).abs() < 1e-12,
                "mismatch at {x}"
            );
        }
        // shared breakpoint 2.0 must appear once
        assert_eq!(p.breaks().iter().filter(|&&b| b == 2.0).count(), 1);
    }

    #[test]
    fn sum_matches_pointwise() {
        let f = f_simple();
        let g = f.shift(0.25);
        let s = f.sum(&g);
        for x in [-1.0, 1.1, 1.25, 2.6, 4.25, 7.0] {
            assert!((s.eval(x) - (f.eval(x) + g.eval(x))).abs() < 1e-12);
        }
    }

    #[test]
    fn product_with_constant() {
        let f = f_simple();
        let p = f.product(&StepFn::constant(2.0));
        for x in [0.0, 1.5, 3.0, 10.0] {
            assert!((p.eval(x) - 2.0 * f.eval(x)).abs() < 1e-12);
        }
    }

    #[test]
    fn compact_removes_redundant_breaks() {
        let f = StepFn::new(vec![1.0, 2.0, 3.0], vec![0.0, 0.0, 1.0, 1.0]).unwrap();
        let c = f.compact();
        assert_eq!(c.breaks(), &[2.0]);
        for x in [0.0, 1.5, 2.0, 2.5, 4.0] {
            assert_eq!(c.eval(x), f.eval(x));
        }
    }

    #[test]
    fn integral_of_product_used_by_delayed_strategy() {
        // the delayed-resubmission kernel: ∫ (1-F(u+t0))(1-F(u)) du with F a CDF-like step
        let f = StepFn::new(vec![1.0, 3.0], vec![0.0, 0.5, 1.0]).unwrap();
        let surv = f.map(|v| 1.0 - v); // 1 on (-inf,1), .5 on [1,3), 0 after
        let shifted = surv.shift(-1.0); // x -> surv(x+1)
        let prod = shifted.product(&surv);
        // on [0,1): surv(u)=1 (u<1), surv(u+1)=0.5 => 0.5
        // on [1,2): surv(u)=0.5, surv(u+1)=0.5 => 0.25
        // on [2,3): surv(u)=0.5, surv(u+1)=0 => 0
        let got = prod.integral(0.0, 3.0);
        assert!((got - (0.5 + 0.25)).abs() < 1e-12);
    }
}
