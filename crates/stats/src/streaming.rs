//! Windowed, censoring-aware streaming latency estimation.
//!
//! An online-adapting submission strategy observes its *own* job outcomes
//! as it runs: jobs that started yield an exact latency, jobs it cancelled
//! at its timeout (or that were still pending when the task finished) are
//! **right-censored** — all that is known is that the latency exceeded the
//! observed waiting time. [`StreamingEcdf`] ingests that stream and
//! maintains two complementary views of the recent law:
//!
//! * a **sliding window** of the last `window` observations, from which
//!   [`StreamingEcdf::snapshot`] materialises an ordinary [`Ecdf`] —
//!   reusing the crate's exact prefix-table machinery, so every strategy
//!   kernel (survival integrals, powered/product variants) is available on
//!   the live estimate at the usual O(log n) cost;
//! * **exponentially-decayed scalar summaries** (body mean, censored
//!   fraction, effective sample weight) whose decay factor discounts old
//!   observations smoothly — the drift signals a retuning policy reacts
//!   to, available even when the window is not yet full.
//!
//! Censored observations are conservative in the snapshot: the window ECDF
//! counts them as outlier mass (their latency is only known to exceed the
//! censor time), so `F̃` is never over-estimated beyond what was actually
//! observed. Retuning policies that need to *raise* a timeout past the
//! censor point must bring tail information of their own (see the
//! `ScaledPrior` policy in `gridstrat-core`), or grow multiplicatively off
//! the decayed censored fraction (the `EmpiricalBackoff` policy).

use crate::ecdf::{Ecdf, EcdfError};
use std::collections::VecDeque;

/// One observation in the stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Observation {
    /// A job started after exactly this latency (seconds).
    Started(f64),
    /// A job was abandoned after waiting this long without starting — its
    /// latency is right-censored at this value.
    Censored(f64),
}

impl Observation {
    /// The observed waiting time, regardless of kind.
    pub fn value(self) -> f64 {
        match self {
            Observation::Started(x) | Observation::Censored(x) => x,
        }
    }

    /// Whether the observation is right-censored.
    pub fn is_censored(self) -> bool {
        matches!(self, Observation::Censored(_))
    }
}

/// Windowed, censoring-aware streaming estimator of a defective latency
/// law (see the module docs).
///
/// # Examples
///
/// ```
/// use gridstrat_stats::streaming::StreamingEcdf;
///
/// let mut est = StreamingEcdf::new(100, 0.95, 10_000.0).unwrap();
/// for x in [120.0, 250.0, 400.0] {
///     est.observe_started(x);
/// }
/// est.observe_censored(600.0); // cancelled at the strategy's timeout
/// let ecdf = est.snapshot().unwrap();
/// assert_eq!(ecdf.n_total(), 4);
/// assert_eq!(ecdf.n_body(), 3);
/// assert!(est.decayed_censored_fraction() > 0.2);
/// ```
#[derive(Debug, Clone)]
pub struct StreamingEcdf {
    /// Maximum observations retained for the snapshot window.
    window: usize,
    /// Per-observation decay factor in `(0, 1]` for the scalar summaries.
    decay: f64,
    /// Censoring threshold stamped on snapshots (body samples at/above it
    /// are treated as outliers, exactly like [`Ecdf::from_samples`]).
    threshold: f64,
    buf: VecDeque<Observation>,
    /// Decayed total observation weight `Σ decay^age`.
    ew_weight: f64,
    /// Decayed weight of censored observations.
    ew_censored: f64,
    /// Decayed sum and weight of *started* latencies (for the body mean).
    ew_body_sum: f64,
    ew_body_weight: f64,
    /// Decayed sum of **all** observation values — for a job abandoned at
    /// `c` the value is `c`, i.e. the sum estimates `E[min(R, censor)]`,
    /// the quantity that equals the survival integral `A(t∞)` when every
    /// censor point is the strategy timeout.
    ew_value_sum: f64,
    /// Lifetime observation count (window-independent).
    seen: u64,
}

impl StreamingEcdf {
    /// Creates an estimator; `window > 0`, `decay ∈ (0, 1]`,
    /// `threshold > 0` (`+∞` disables censoring: every started
    /// observation is body mass).
    pub fn new(window: usize, decay: f64, threshold: f64) -> Result<Self, String> {
        if window == 0 {
            return Err("window must hold at least one observation".into());
        }
        if !(decay.is_finite() && decay > 0.0 && decay <= 1.0) {
            return Err(format!("decay must be in (0, 1], got {decay}"));
        }
        if threshold.is_nan() || threshold <= 0.0 {
            return Err(format!("threshold must be positive, got {threshold}"));
        }
        Ok(StreamingEcdf {
            window,
            decay,
            threshold,
            buf: VecDeque::with_capacity(window),
            ew_weight: 0.0,
            ew_censored: 0.0,
            ew_body_sum: 0.0,
            ew_body_weight: 0.0,
            ew_value_sum: 0.0,
            seen: 0,
        })
    }

    /// Ingests one observation.
    pub fn observe(&mut self, obs: Observation) {
        let x = obs.value();
        assert!(
            x.is_finite() && x >= 0.0,
            "observations must be finite and non-negative, got {x}"
        );
        if self.buf.len() == self.window {
            self.buf.pop_front();
        }
        self.buf.push_back(obs);
        self.ew_weight = self.decay * self.ew_weight + 1.0;
        self.ew_censored *= self.decay;
        self.ew_body_sum *= self.decay;
        self.ew_body_weight *= self.decay;
        self.ew_value_sum = self.decay * self.ew_value_sum + x;
        match obs {
            Observation::Started(v) => {
                self.ew_body_sum += v;
                self.ew_body_weight += 1.0;
            }
            Observation::Censored(_) => self.ew_censored += 1.0,
        }
        self.seen += 1;
    }

    /// Ingests an exact (started-job) latency.
    pub fn observe_started(&mut self, latency: f64) {
        self.observe(Observation::Started(latency));
    }

    /// Ingests a right-censored waiting time.
    pub fn observe_censored(&mut self, waited: f64) {
        self.observe(Observation::Censored(waited));
    }

    /// Forgets everything — back to the just-constructed state, keeping
    /// the window allocation (the fleet/adaptive reset path).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.ew_weight = 0.0;
        self.ew_censored = 0.0;
        self.ew_body_sum = 0.0;
        self.ew_body_weight = 0.0;
        self.ew_value_sum = 0.0;
        self.seen = 0;
    }

    /// Observations currently in the window.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// The observations currently buffered in the window, oldest first.
    pub fn observations(&self) -> impl Iterator<Item = Observation> + '_ {
        self.buf.iter().copied()
    }

    /// Replays every observation buffered in `other`'s window into this
    /// estimator, oldest first, then credits `other`'s already-evicted
    /// lifetime count — the deterministic merge used when independent
    /// streams (e.g. engine shards) are folded into one report. The merged
    /// window holds the union's most recent observations in replay order;
    /// the decayed scalar summaries treat the replayed window as the most
    /// recent history (evicted observations cannot be recovered).
    pub fn absorb(&mut self, other: &StreamingEcdf) {
        let evicted = other.seen - other.buf.len() as u64;
        for obs in other.observations() {
            self.observe(obs);
        }
        self.seen += evicted;
    }

    /// True when no observation has been ingested (or all were cleared).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Started (non-censored) observations currently in the window.
    pub fn n_body(&self) -> usize {
        self.buf.iter().filter(|o| !o.is_censored()).count()
    }

    /// Lifetime observations ingested (not bounded by the window).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The window capacity.
    pub fn window(&self) -> usize {
        self.window
    }

    /// The scalar-summary decay factor.
    pub fn decay(&self) -> f64 {
        self.decay
    }

    /// The censoring threshold stamped on snapshots.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Exponentially-decayed mean of the started latencies
    /// (`NaN` before the first started observation).
    pub fn decayed_body_mean(&self) -> f64 {
        self.ew_body_sum / self.ew_body_weight
    }

    /// Exponentially-decayed fraction of censored observations
    /// (`NaN` before the first observation).
    pub fn decayed_censored_fraction(&self) -> f64 {
        self.ew_censored / self.ew_weight
    }

    /// Exponentially-decayed mean of **all** observation values — started
    /// latencies at their value, abandoned jobs at their censor time. When
    /// every censor point is the strategy timeout `t∞`, this estimates
    /// `E[min(R, t∞)] = ∫₀^{t∞}(1 − F̃)`, the survival integral the
    /// scale-tracking retune policy matches against. `NaN` before the
    /// first observation.
    pub fn decayed_value_mean(&self) -> f64 {
        self.ew_value_sum / self.ew_weight
    }

    /// Effective sample size of the decayed summaries
    /// (`(1 - decay^n) / (1 - decay)`; equals `n` when `decay = 1`).
    pub fn effective_weight(&self) -> f64 {
        self.ew_weight
    }

    /// Materialises the window as an exact [`Ecdf`]: started observations
    /// below the threshold form the body, censored observations (and
    /// started ones at/above the threshold) count as outlier mass.
    ///
    /// Errors when the window is empty or holds no body sample — the same
    /// degenerate cases [`Ecdf`] construction rejects.
    pub fn snapshot(&self) -> Result<Ecdf, EcdfError> {
        if self.buf.is_empty() {
            return Err(EcdfError::Empty);
        }
        let mut body: Vec<f64> = self
            .buf
            .iter()
            .filter_map(|o| match o {
                Observation::Started(x) if *x < self.threshold => Some(*x),
                _ => None,
            })
            .collect();
        let n_outliers = self.buf.len() - body.len();
        body.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite observations"));
        Ecdf::from_sorted_body_and_outliers(body, n_outliers, self.threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(StreamingEcdf::new(0, 0.9, 100.0).is_err());
        assert!(StreamingEcdf::new(10, 0.0, 100.0).is_err());
        assert!(StreamingEcdf::new(10, 1.1, 100.0).is_err());
        assert!(StreamingEcdf::new(10, 0.9, 0.0).is_err());
        assert!(StreamingEcdf::new(10, 0.9, f64::NAN).is_err());
        assert!(StreamingEcdf::new(10, 1.0, 100.0).is_ok());
        // +inf = "never censor": the uncensored-metrics configuration
        assert!(StreamingEcdf::new(10, 1.0, f64::INFINITY).is_ok());
    }

    #[test]
    fn infinite_threshold_disables_censoring() {
        let mut est = StreamingEcdf::new(8, 1.0, f64::INFINITY).unwrap();
        for x in [50.0, 1e6, 3.0] {
            est.observe_started(x);
        }
        let snap = est.snapshot().unwrap();
        assert_eq!(snap.n_body(), 3);
        assert_eq!(snap.body(), &[3.0, 50.0, 1e6]);
    }

    #[test]
    fn absorb_matches_sequential_replay() {
        let mut a = StreamingEcdf::new(16, 1.0, 1_000.0).unwrap();
        let mut b = StreamingEcdf::new(16, 1.0, 1_000.0).unwrap();
        for x in [10.0, 20.0] {
            a.observe_started(x);
        }
        b.observe_started(30.0);
        b.observe_censored(40.0);
        let mut merged = a.clone();
        merged.absorb(&b);
        // equivalent to observing a's stream then b's stream in order
        let mut seq = StreamingEcdf::new(16, 1.0, 1_000.0).unwrap();
        for x in [10.0, 20.0, 30.0] {
            seq.observe_started(x);
        }
        seq.observe_censored(40.0);
        assert_eq!(merged.len(), seq.len());
        assert_eq!(merged.seen(), seq.seen());
        assert_eq!(
            merged.snapshot().unwrap().body(),
            seq.snapshot().unwrap().body()
        );
        assert_eq!(
            merged.decayed_body_mean().to_bits(),
            seq.decayed_body_mean().to_bits()
        );
    }

    #[test]
    fn absorb_credits_evicted_observations() {
        let mut a = StreamingEcdf::new(2, 1.0, 1_000.0).unwrap();
        let mut b = StreamingEcdf::new(2, 1.0, 1_000.0).unwrap();
        for x in [1.0, 2.0, 3.0] {
            b.observe_started(x); // one eviction: window holds [2, 3]
        }
        a.observe_started(9.0);
        a.absorb(&b);
        assert_eq!(a.seen(), 4, "lifetime count covers evicted history");
        assert_eq!(a.len(), 2);
        assert_eq!(a.snapshot().unwrap().body(), &[2.0, 3.0]);
    }

    #[test]
    fn snapshot_matches_batch_ecdf_on_same_window() {
        let mut est = StreamingEcdf::new(64, 0.97, 1_000.0).unwrap();
        let xs = [10.0, 400.0, 30.0, 999.0, 70.0, 5.0];
        for &x in &xs {
            est.observe_started(x);
        }
        est.observe_censored(600.0);
        let snap = est.snapshot().unwrap();
        // batch equivalent: the started values as samples + one censored
        // counted as an outlier
        let batch = Ecdf::from_sorted_body_and_outliers(
            vec![5.0, 10.0, 30.0, 70.0, 400.0, 999.0],
            1,
            1_000.0,
        )
        .unwrap();
        assert_eq!(snap.n_total(), batch.n_total());
        for t in [0.0, 7.0, 50.0, 500.0, 2_000.0] {
            assert_eq!(snap.value(t).to_bits(), batch.value(t).to_bits());
            assert_eq!(
                snap.survival_integral(t).to_bits(),
                batch.survival_integral(t).to_bits()
            );
        }
    }

    #[test]
    fn window_slides() {
        let mut est = StreamingEcdf::new(3, 1.0, 1_000.0).unwrap();
        for x in [1.0, 2.0, 3.0, 4.0, 5.0] {
            est.observe_started(x);
        }
        assert_eq!(est.len(), 3);
        assert_eq!(est.seen(), 5);
        let snap = est.snapshot().unwrap();
        assert_eq!(snap.body(), &[3.0, 4.0, 5.0]);
    }

    #[test]
    fn started_at_or_above_threshold_counts_as_outlier() {
        let mut est = StreamingEcdf::new(8, 1.0, 100.0).unwrap();
        est.observe_started(50.0);
        est.observe_started(100.0); // exactly at the threshold: censored
        let snap = est.snapshot().unwrap();
        assert_eq!(snap.n_body(), 1);
        assert_eq!(snap.n_total(), 2);
    }

    #[test]
    fn decayed_summaries_track_drift() {
        let mut est = StreamingEcdf::new(1_000, 0.9, 10_000.0).unwrap();
        for _ in 0..200 {
            est.observe_started(100.0);
        }
        assert!((est.decayed_body_mean() - 100.0).abs() < 1e-9);
        assert!(est.decayed_censored_fraction() < 1e-9);
        // the law shifts up and starts censoring: the decayed view follows
        // quickly even though the window still holds the old observations
        for _ in 0..40 {
            est.observe_started(500.0);
            est.observe_censored(600.0);
        }
        assert!(
            est.decayed_body_mean() > 400.0,
            "{}",
            est.decayed_body_mean()
        );
        assert!(
            (est.decayed_censored_fraction() - 0.5).abs() < 0.05,
            "{}",
            est.decayed_censored_fraction()
        );
        // effective weight saturates near 1/(1-decay)
        assert!((est.effective_weight() - 10.0).abs() < 0.5);
    }

    #[test]
    fn decay_one_reduces_to_plain_running_stats() {
        let mut est = StreamingEcdf::new(100, 1.0, 10_000.0).unwrap();
        for x in [10.0, 20.0, 30.0] {
            est.observe_started(x);
        }
        est.observe_censored(40.0);
        assert!((est.decayed_body_mean() - 20.0).abs() < 1e-12);
        assert!((est.decayed_censored_fraction() - 0.25).abs() < 1e-12);
        assert!((est.effective_weight() - 4.0).abs() < 1e-12);
        // value mean covers censored observations at their censor time
        assert!((est.decayed_value_mean() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_snapshots_error() {
        let mut est = StreamingEcdf::new(4, 0.9, 100.0).unwrap();
        assert_eq!(est.snapshot().unwrap_err(), EcdfError::Empty);
        est.observe_censored(50.0);
        assert_eq!(est.snapshot().unwrap_err(), EcdfError::AllOutliers);
        est.observe_started(10.0);
        assert!(est.snapshot().is_ok());
        est.clear();
        assert_eq!(est.snapshot().unwrap_err(), EcdfError::Empty);
        assert_eq!(est.seen(), 0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn rejects_invalid_observations() {
        let mut est = StreamingEcdf::new(4, 0.9, 100.0).unwrap();
        est.observe_started(f64::NAN);
    }
}
