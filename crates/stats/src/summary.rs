//! Streaming summary statistics (Welford) and simple histograms.
//!
//! Used by the simulator's metric collectors and the Monte-Carlo executors,
//! where keeping every sample would be wasteful.

/// Online mean/variance accumulator (Welford's algorithm) with min/max.
///
/// Numerically stable for long streams; merging two summaries is exact
/// (parallel-safe reduction for rayon fold/reduce patterns).
#[derive(Debug, Clone, Copy, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Builds a summary from a slice.
    pub fn from_slice(xs: &[f64]) -> Self {
        let mut s = Summary::new();
        for &x in xs {
            s.push(x);
        }
        s
    }

    /// Merges another summary into this one (Chan's parallel combination).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Population variance (divides by `n`; `NaN` when empty).
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Unbiased sample variance (divides by `n-1`; `NaN` for n < 2).
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            f64::NAN
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean (`√(s²/n)` with the unbiased variance).
    pub fn stderr(&self) -> f64 {
        (self.sample_variance() / self.n as f64).sqrt()
    }

    /// Minimum observation (`+∞` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`-∞` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Fixed-width histogram on `[lo, hi)` with overflow/underflow buckets.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins ≥ 1` equal-width buckets on `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo < hi, "invalid histogram range");
        assert!(bins >= 1, "need at least one bin");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = ((x - self.lo) / w) as usize;
            // guard against floating rounding at the upper edge
            let idx = idx.min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Per-bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Count of observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count of observations at/above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations seen (including out-of-range).
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Midpoint of bucket `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    /// Cumulative fraction of in-range mass up to and including bucket `i`,
    /// normalised by the grand total (defective if there is overflow — by
    /// design, mirroring `F̃`).
    pub fn cumulative_fraction(&self, i: usize) -> f64 {
        let c: u64 = self.counts[..=i].iter().sum::<u64>() + self.underflow;
        c as f64 / self.total() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let xs = [1.0, 2.0, 3.0, 4.0, 10.0];
        let s = Summary::from_slice(&xs);
        let mean = xs.iter().sum::<f64>() / 5.0;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / 5.0;
        assert_eq!(s.count(), 5);
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.variance() - var).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 10.0);
    }

    #[test]
    fn empty_summary_is_nan() {
        let s = Summary::new();
        assert!(s.mean().is_nan());
        assert!(s.variance().is_nan());
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 5.0).collect();
        let mut a = Summary::from_slice(&xs[..37]);
        let b = Summary::from_slice(&xs[37..]);
        a.merge(&b);
        let full = Summary::from_slice(&xs);
        assert_eq!(a.count(), full.count());
        assert!((a.mean() - full.mean()).abs() < 1e-10);
        assert!((a.variance() - full.variance()).abs() < 1e-10);
        assert_eq!(a.min(), full.min());
        assert_eq!(a.max(), full.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = Summary::from_slice(&[1.0, 2.0]);
        let before = s;
        s.merge(&Summary::new());
        assert_eq!(s.count(), before.count());
        assert_eq!(s.mean(), before.mean());

        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e.count(), 2);
        assert!((e.mean() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn sample_variance_and_stderr() {
        let s = Summary::from_slice(&[2.0, 4.0, 6.0]);
        assert!((s.sample_variance() - 4.0).abs() < 1e-12);
        assert!((s.stderr() - (4.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn histogram_binning() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [-1.0, 0.0, 1.9, 2.0, 9.99, 10.0, 50.0] {
            h.push(x);
        }
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.counts(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.total(), 7);
        assert!((h.bin_center(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_cumulative_is_defective_with_overflow() {
        let mut h = Histogram::new(0.0, 10.0, 2);
        for x in [1.0, 6.0, 100.0] {
            h.push(x);
        }
        // last in-range bucket cumulates to 2/3 < 1 because of the outlier
        assert!((h.cumulative_fraction(1) - 2.0 / 3.0).abs() < 1e-12);
    }
}
