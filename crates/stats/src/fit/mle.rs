//! Maximum-likelihood estimators for the latency-body families.

use crate::dist::{Exponential, LogNormal, Pareto, Weibull};

/// Validates a body sample for fitting: non-empty, finite, strictly positive.
fn validate_positive(samples: &[f64]) -> Result<(), String> {
    if samples.is_empty() {
        return Err("cannot fit a distribution to zero samples".to_string());
    }
    if samples.iter().any(|&x| !x.is_finite() || x <= 0.0) {
        return Err("samples must be finite and strictly positive".to_string());
    }
    Ok(())
}

/// Log-normal MLE: `μ̂ = mean(ln x)`, `σ̂² = var(ln x)` (closed form).
pub fn fit_lognormal(samples: &[f64]) -> Result<LogNormal, String> {
    validate_positive(samples)?;
    let n = samples.len() as f64;
    let mu = samples.iter().map(|x| x.ln()).sum::<f64>() / n;
    let s2 = samples
        .iter()
        .map(|x| (x.ln() - mu) * (x.ln() - mu))
        .sum::<f64>()
        / n;
    if s2 <= 0.0 {
        return Err("degenerate sample: zero log-variance".to_string());
    }
    LogNormal::new(mu, s2.sqrt())
}

/// Exponential MLE: `λ̂ = 1/mean(x)` (closed form).
pub fn fit_exponential(samples: &[f64]) -> Result<Exponential, String> {
    validate_positive(samples)?;
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    Exponential::new(1.0 / mean)
}

/// Pareto MLE: `x̂_m = min(x)`, `α̂ = n / Σ ln(x_i/x̂_m)` (closed form).
pub fn fit_pareto(samples: &[f64]) -> Result<Pareto, String> {
    validate_positive(samples)?;
    let xm = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let s: f64 = samples.iter().map(|&x| (x / xm).ln()).sum();
    if s <= 0.0 {
        return Err("degenerate sample: all values equal".to_string());
    }
    Pareto::new(xm, samples.len() as f64 / s)
}

/// Weibull MLE: solves the profile-likelihood equation for the shape `k`
/// by safeguarded Newton iteration, then recovers the scale in closed form.
///
/// The shape equation is
/// `g(k) = Σ x^k ln x / Σ x^k - 1/k - mean(ln x) = 0`,
/// which is monotone increasing in `k`; we bracket and Newton-iterate with
/// bisection fallback.
pub fn fit_weibull(samples: &[f64]) -> Result<Weibull, String> {
    validate_positive(samples)?;
    let n = samples.len() as f64;
    let mean_ln = samples.iter().map(|x| x.ln()).sum::<f64>() / n;

    // g(k) and g'(k) computed in one pass over the (rescaled) samples.
    // Rescale by the geometric mean to keep x^k in range.
    let gm = mean_ln.exp();
    let xs: Vec<f64> = samples.iter().map(|&x| x / gm).collect();
    let mean_ln_r = mean_ln - gm.ln(); // mean of ln(x/gm)

    let g = |k: f64| -> (f64, f64) {
        let mut sw = 0.0; // Σ x^k
        let mut swl = 0.0; // Σ x^k ln x
        let mut swl2 = 0.0; // Σ x^k (ln x)^2
        for &x in &xs {
            let lx = x.ln();
            let w = x.powf(k);
            sw += w;
            swl += w * lx;
            swl2 += w * lx * lx;
        }
        let ratio = swl / sw;
        let val = ratio - 1.0 / k - mean_ln_r;
        let deriv = (swl2 / sw) - ratio * ratio + 1.0 / (k * k);
        (val, deriv)
    };

    // bracket the root
    let mut lo = 1e-3;
    let mut hi = 1.0;
    while g(hi).0 < 0.0 {
        hi *= 2.0;
        if hi > 1e4 {
            return Err("weibull MLE failed to bracket the shape".to_string());
        }
    }
    while g(lo).0 > 0.0 {
        lo /= 2.0;
        if lo < 1e-9 {
            return Err("weibull MLE failed to bracket the shape".to_string());
        }
    }

    let mut k = 0.5 * (lo + hi);
    for _ in 0..100 {
        let (val, deriv) = g(k);
        if val.abs() < 1e-12 {
            break;
        }
        if val > 0.0 {
            hi = k;
        } else {
            lo = k;
        }
        let newton = k - val / deriv;
        k = if newton.is_finite() && newton > lo && newton < hi {
            newton
        } else {
            0.5 * (lo + hi) // bisection fallback keeps the bracket
        };
    }

    // scale MLE given shape: λ = (mean(x^k))^(1/k), undo the rescaling
    let scale_r = (xs.iter().map(|&x| x.powf(k)).sum::<f64>() / n).powf(1.0 / k);
    Weibull::new(k, scale_r * gm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Distribution;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn draw<D: Distribution>(d: &D, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        d.sample_n(&mut rng, n)
    }

    #[test]
    fn validation() {
        assert!(fit_lognormal(&[]).is_err());
        assert!(fit_lognormal(&[1.0, -1.0]).is_err());
        assert!(fit_exponential(&[0.0]).is_err());
        assert!(fit_pareto(&[2.0, 2.0]).is_err());
    }

    #[test]
    fn lognormal_recovery() {
        let truth = LogNormal::new(5.7, 1.1).unwrap();
        let xs = draw(&truth, 20_000, 10);
        let fit = fit_lognormal(&xs).unwrap();
        assert!((fit.mu() - 5.7).abs() < 0.03, "mu {}", fit.mu());
        assert!((fit.sigma() - 1.1).abs() < 0.03, "sigma {}", fit.sigma());
    }

    #[test]
    fn exponential_recovery() {
        let truth = Exponential::new(0.002).unwrap();
        let xs = draw(&truth, 20_000, 11);
        let fit = fit_exponential(&xs).unwrap();
        assert!((fit.lambda() - 0.002).abs() / 0.002 < 0.03);
    }

    #[test]
    fn pareto_recovery() {
        let truth = Pareto::new(100.0, 2.3).unwrap();
        let xs = draw(&truth, 20_000, 12);
        let fit = fit_pareto(&xs).unwrap();
        assert!((fit.scale() - 100.0).abs() < 0.5, "xm {}", fit.scale());
        assert!((fit.alpha() - 2.3).abs() < 0.08, "alpha {}", fit.alpha());
    }

    #[test]
    fn weibull_recovery_heavy_and_light() {
        for (shape, scale, seed) in [(0.65, 420.0, 13), (1.4, 800.0, 14)] {
            let truth = Weibull::new(shape, scale).unwrap();
            let xs = draw(&truth, 20_000, seed);
            let fit = fit_weibull(&xs).unwrap();
            assert!(
                (fit.shape() - shape).abs() / shape < 0.05,
                "shape {} vs {shape}",
                fit.shape()
            );
            assert!(
                (fit.scale() - scale).abs() / scale < 0.05,
                "scale {} vs {scale}",
                fit.scale()
            );
        }
    }

    #[test]
    fn weibull_shape_one_close_to_exponential_fit() {
        let truth = Exponential::with_mean(300.0).unwrap();
        let xs = draw(&truth, 20_000, 15);
        let w = fit_weibull(&xs).unwrap();
        assert!((w.shape() - 1.0).abs() < 0.05, "shape {}", w.shape());
    }
}
