//! Model selection across candidate latency-body families.

use super::ks::ks_test;
use super::mle::{fit_exponential, fit_lognormal, fit_pareto, fit_weibull};
use crate::dist::{Distribution, Exponential, LogNormal, Pareto, Weibull};

/// A fitted latency-body model from one of the supported families.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BodyModel {
    /// Log-normal body.
    LogNormal(LogNormal),
    /// Weibull body.
    Weibull(Weibull),
    /// Exponential body.
    Exponential(Exponential),
    /// Pareto body.
    Pareto(Pareto),
}

impl BodyModel {
    /// Family name for reporting.
    pub fn family(&self) -> &'static str {
        match self {
            BodyModel::LogNormal(_) => "lognormal",
            BodyModel::Weibull(_) => "weibull",
            BodyModel::Exponential(_) => "exponential",
            BodyModel::Pareto(_) => "pareto",
        }
    }

    /// Number of free parameters (for AIC/BIC).
    pub fn k_params(&self) -> usize {
        match self {
            BodyModel::Exponential(_) => 1,
            _ => 2,
        }
    }
}

impl Distribution for BodyModel {
    fn cdf(&self, t: f64) -> f64 {
        match self {
            BodyModel::LogNormal(d) => d.cdf(t),
            BodyModel::Weibull(d) => d.cdf(t),
            BodyModel::Exponential(d) => d.cdf(t),
            BodyModel::Pareto(d) => d.cdf(t),
        }
    }

    fn pdf(&self, t: f64) -> f64 {
        match self {
            BodyModel::LogNormal(d) => d.pdf(t),
            BodyModel::Weibull(d) => d.pdf(t),
            BodyModel::Exponential(d) => d.pdf(t),
            BodyModel::Pareto(d) => d.pdf(t),
        }
    }

    fn sample<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match self {
            BodyModel::LogNormal(d) => d.sample(rng),
            BodyModel::Weibull(d) => d.sample(rng),
            BodyModel::Exponential(d) => d.sample(rng),
            BodyModel::Pareto(d) => d.sample(rng),
        }
    }

    fn mean(&self) -> Option<f64> {
        match self {
            BodyModel::LogNormal(d) => d.mean(),
            BodyModel::Weibull(d) => d.mean(),
            BodyModel::Exponential(d) => d.mean(),
            BodyModel::Pareto(d) => d.mean(),
        }
    }

    fn variance(&self) -> Option<f64> {
        match self {
            BodyModel::LogNormal(d) => d.variance(),
            BodyModel::Weibull(d) => d.variance(),
            BodyModel::Exponential(d) => d.variance(),
            BodyModel::Pareto(d) => d.variance(),
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        match self {
            BodyModel::LogNormal(d) => d.quantile(p),
            BodyModel::Weibull(d) => d.quantile(p),
            BodyModel::Exponential(d) => d.quantile(p),
            BodyModel::Pareto(d) => d.quantile(p),
        }
    }
}

/// Fit diagnostics for one candidate family.
#[derive(Debug, Clone, Copy)]
pub struct FitReport {
    /// The fitted model.
    pub model: BodyModel,
    /// Maximised log-likelihood.
    pub log_likelihood: f64,
    /// Akaike information criterion `2k - 2lnL` (lower is better).
    pub aic: f64,
    /// Bayesian information criterion `k·ln n - 2lnL`.
    pub bic: f64,
    /// KS statistic against the fitted model.
    pub ks: f64,
    /// Asymptotic KS p-value (biased optimistic: parameters were estimated
    /// from the same data; use for ranking, not absolute acceptance).
    pub ks_pvalue: f64,
}

fn log_likelihood<D: Distribution>(samples: &[f64], model: &D) -> f64 {
    samples.iter().map(|&x| model.pdf(x).max(1e-300).ln()).sum()
}

fn report(samples: &[f64], model: BodyModel) -> FitReport {
    let ll = log_likelihood(samples, &model);
    let k = model.k_params() as f64;
    let n = samples.len() as f64;
    let (ks, p) = ks_test(samples, &model);
    FitReport {
        model,
        log_likelihood: ll,
        aic: 2.0 * k - 2.0 * ll,
        bic: k * n.ln() - 2.0 * ll,
        ks,
        ks_pvalue: p,
    }
}

/// Fits every candidate family to the body sample and returns the reports
/// sorted by ascending AIC (best first). Families whose MLE fails on this
/// sample are skipped.
pub fn select_body_model(samples: &[f64]) -> Vec<FitReport> {
    let mut out = Vec::with_capacity(4);
    if let Ok(d) = fit_lognormal(samples) {
        out.push(report(samples, BodyModel::LogNormal(d)));
    }
    if let Ok(d) = fit_weibull(samples) {
        out.push(report(samples, BodyModel::Weibull(d)));
    }
    if let Ok(d) = fit_exponential(samples) {
        out.push(report(samples, BodyModel::Exponential(d)));
    }
    if let Ok(d) = fit_pareto(samples) {
        out.push(report(samples, BodyModel::Pareto(d)));
    }
    out.sort_by(|a, b| a.aic.partial_cmp(&b.aic).expect("finite AIC"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lognormal_data_selects_lognormal() {
        let truth = LogNormal::new(5.7, 1.1).unwrap();
        let mut rng = StdRng::seed_from_u64(31);
        let xs = truth.sample_n(&mut rng, 5000);
        let reports = select_body_model(&xs);
        assert_eq!(reports[0].model.family(), "lognormal");
        // ranking is consistent: AIC ascending
        for w in reports.windows(2) {
            assert!(w[0].aic <= w[1].aic);
        }
    }

    #[test]
    fn weibull_data_selects_weibull() {
        let truth = Weibull::new(0.6, 300.0).unwrap();
        let mut rng = StdRng::seed_from_u64(32);
        let xs = truth.sample_n(&mut rng, 5000);
        let reports = select_body_model(&xs);
        assert_eq!(reports[0].model.family(), "weibull");
    }

    #[test]
    fn exponential_data_prefers_exponential_by_bic() {
        let truth = Exponential::with_mean(400.0).unwrap();
        let mut rng = StdRng::seed_from_u64(33);
        let xs = truth.sample_n(&mut rng, 5000);
        let reports = select_body_model(&xs);
        let best_bic = reports
            .iter()
            .min_by(|a, b| a.bic.partial_cmp(&b.bic).unwrap())
            .unwrap();
        // Weibull nests the exponential, so BIC's complexity penalty must
        // pick the 1-parameter model.
        assert_eq!(best_bic.model.family(), "exponential");
    }

    #[test]
    fn reports_contain_consistent_diagnostics() {
        let truth = LogNormal::new(5.0, 0.8).unwrap();
        let mut rng = StdRng::seed_from_u64(34);
        let xs = truth.sample_n(&mut rng, 1000);
        for r in select_body_model(&xs) {
            assert!(r.aic.is_finite() && r.bic.is_finite());
            assert!((0.0..=1.0).contains(&r.ks_pvalue));
            assert!(r.ks >= 0.0 && r.ks <= 1.0);
            assert!(r.aic < r.bic + 2.0 * r.model.k_params() as f64); // sanity relation
        }
    }
}
