//! Kolmogorov–Smirnov goodness-of-fit machinery.

use crate::dist::Distribution;

/// One-sample KS statistic `D_n = sup_t |F_n(t) - F(t)|` of `samples`
/// against the model CDF.
///
/// `samples` need not be sorted; a sorted copy is made internally.
pub fn ks_statistic<D: Distribution>(samples: &[f64], model: &D) -> f64 {
    assert!(!samples.is_empty(), "KS statistic needs samples");
    let mut xs = samples.to_vec();
    xs.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let n = xs.len() as f64;
    let mut d: f64 = 0.0;
    for (i, &x) in xs.iter().enumerate() {
        let f = model.cdf(x);
        // empirical CDF jumps from i/n to (i+1)/n at x
        d = d.max((f - i as f64 / n).abs());
        d = d.max(((i + 1) as f64 / n - f).abs());
    }
    d
}

/// Asymptotic KS p-value via the Kolmogorov distribution
/// `Q(λ) = 2 Σ_{k≥1} (-1)^{k-1} e^{-2k²λ²}` with the usual small-sample
/// correction `λ = (√n + 0.12 + 0.11/√n)·D` (Numerical Recipes form).
pub fn ks_pvalue(d: f64, n: usize) -> f64 {
    let sqrt_n = (n as f64).sqrt();
    let lambda = (sqrt_n + 0.12 + 0.11 / sqrt_n) * d;
    if lambda < 1e-3 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64) * (k as f64) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

/// Convenience wrapper: returns `(D_n, p_value)`.
pub fn ks_test<D: Distribution>(samples: &[f64], model: &D) -> (f64, f64) {
    let d = ks_statistic(samples, model);
    (d, ks_pvalue(d, samples.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Exponential, LogNormal};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn correct_model_not_rejected() {
        let d = LogNormal::new(5.0, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let xs = d.sample_n(&mut rng, 2000);
        let (stat, p) = ks_test(&xs, &d);
        assert!(stat < 0.05, "KS stat {stat}");
        assert!(p > 0.01, "p-value {p}");
    }

    #[test]
    fn wrong_model_rejected() {
        let truth = LogNormal::new(5.0, 1.2).unwrap();
        let wrong = Exponential::with_mean(50.0).unwrap();
        let mut rng = StdRng::seed_from_u64(22);
        let xs = truth.sample_n(&mut rng, 2000);
        let (stat, p) = ks_test(&xs, &wrong);
        assert!(stat > 0.1, "KS stat {stat} should be large");
        assert!(p < 1e-6, "p-value {p} should be tiny");
    }

    #[test]
    fn pvalue_monotone_in_d() {
        let p1 = ks_pvalue(0.01, 1000);
        let p2 = ks_pvalue(0.05, 1000);
        let p3 = ks_pvalue(0.2, 1000);
        assert!(p1 > p2 && p2 > p3);
        assert!(p1 <= 1.0 && p3 >= 0.0);
    }

    #[test]
    fn tiny_d_gives_pvalue_one() {
        assert_eq!(ks_pvalue(1e-9, 50), 1.0);
    }

    #[test]
    #[should_panic(expected = "needs samples")]
    fn empty_sample_panics() {
        let d = Exponential::new(1.0).unwrap();
        ks_statistic(&[], &d);
    }
}
