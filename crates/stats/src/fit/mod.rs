//! Distribution fitting: maximum-likelihood estimators, goodness-of-fit
//! tests and model selection for latency traces.
//!
//! Rust's statistics ecosystem lacks mature fitting tools, so this module
//! implements what the reproduction needs from scratch:
//!
//! * closed-form MLE for log-normal, exponential, Pareto;
//! * Newton-iterated MLE for the Weibull shape;
//! * Kolmogorov–Smirnov statistic and asymptotic p-value;
//! * AIC/BIC-based comparison of candidate latency-body families
//!   ([`select_body_model`]), mirroring the model-selection step of the
//!   paper's companion work.
//!
//! All estimators operate on the *non-outlier* body of a censored trace; the
//! outlier ratio `ρ` is estimated separately as a binomial proportion (the
//! natural MLE under censoring: outliers carry no information beyond their
//! count).

mod ks;
mod mle;
mod select;

pub use ks::{ks_pvalue, ks_statistic, ks_test};
pub use mle::{fit_exponential, fit_lognormal, fit_pareto, fit_weibull};
pub use select::{select_body_model, BodyModel, FitReport};

/// Estimates the outlier ratio `ρ` and its standard error from counts.
///
/// Under censoring, outliers are Bernoulli(ρ) observations, so the MLE is the
/// sample proportion with standard error `√(ρ̂(1-ρ̂)/n)`.
pub fn fit_outlier_ratio(n_outliers: usize, n_total: usize) -> (f64, f64) {
    assert!(n_total > 0, "need at least one observation");
    assert!(n_outliers <= n_total);
    let rho = n_outliers as f64 / n_total as f64;
    let se = (rho * (1.0 - rho) / n_total as f64).sqrt();
    (rho, se)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outlier_ratio_basic() {
        let (rho, se) = fit_outlier_ratio(25, 100);
        assert!((rho - 0.25).abs() < 1e-12);
        assert!((se - (0.25f64 * 0.75 / 100.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one observation")]
    fn outlier_ratio_rejects_empty() {
        fit_outlier_ratio(0, 0);
    }
}
