//! Property-based tests for the numerics substrate: the invariants every
//! downstream strategy computation silently relies on.

use gridstrat_stats::dist::{normal_cdf, Distribution};
use gridstrat_stats::optimize::{golden_section, grid_min_1d, grid_min_2d, GridSpec};
use gridstrat_stats::{Ecdf, Exponential, LogNormal, Pareto, StepFn, Summary, Weibull};
use proptest::prelude::*;

fn sorted_breaks() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.001f64..1000.0, 1..12).prop_map(|mut v| {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v.dedup();
        v
    })
}

fn stepfn() -> impl Strategy<Value = StepFn> {
    sorted_breaks().prop_flat_map(|breaks| {
        let n = breaks.len() + 1;
        proptest::collection::vec(-5.0f64..5.0, n..=n)
            .prop_map(move |values| StepFn::new(breaks.clone(), values).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn stepfn_integral_is_additive(f in stepfn(), a in -10.0f64..1100.0, b in -10.0f64..1100.0, c in -10.0f64..1100.0) {
        let whole = f.integral(a, c);
        let split = f.integral(a, b) + f.integral(b, c);
        prop_assert!((whole - split).abs() < 1e-8 * (1.0 + whole.abs()));
    }

    #[test]
    fn stepfn_shift_preserves_integrals(f in stepfn(), s in -200.0f64..200.0) {
        let g = f.shift(s);
        let i_f = f.integral(0.0, 1000.0);
        let i_g = g.integral(s, 1000.0 + s);
        prop_assert!((i_f - i_g).abs() < 1e-7 * (1.0 + i_f.abs()));
    }

    #[test]
    fn stepfn_product_pointwise(f in stepfn(), g in stepfn(), xs in proptest::collection::vec(-10.0f64..1100.0, 8)) {
        let p = f.product(&g);
        for x in xs {
            prop_assert!((p.eval(x) - f.eval(x) * g.eval(x)).abs() < 1e-9);
        }
    }

    #[test]
    fn stepfn_compact_is_semantically_identity(f in stepfn(), xs in proptest::collection::vec(-10.0f64..1100.0, 8)) {
        let c = f.compact();
        prop_assert!(c.len() <= f.len());
        for x in xs {
            prop_assert_eq!(c.eval(x), f.eval(x));
        }
    }

    #[test]
    fn ecdf_is_monotone_and_bounded(
        samples in proptest::collection::vec(0.1f64..20_000.0, 2..60),
        ts in proptest::collection::vec(0.0f64..25_000.0, 6),
    ) {
        prop_assume!(samples.iter().any(|&x| x < 10_000.0));
        let e = Ecdf::from_samples(&samples, 10_000.0).unwrap();
        let mut sorted_ts = ts.clone();
        sorted_ts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = 0.0;
        for t in sorted_ts {
            let v = e.value(t);
            prop_assert!((0.0..=1.0).contains(&v));
            prop_assert!(v + 1e-12 >= prev);
            prop_assert!(v <= 1.0 - e.outlier_ratio() + 1e-12);
            prev = v;
        }
    }

    #[test]
    fn ecdf_survival_integral_matches_stepfn(
        samples in proptest::collection::vec(0.1f64..20_000.0, 2..40),
        t in 0.0f64..12_000.0,
    ) {
        prop_assume!(samples.iter().any(|&x| x < 10_000.0));
        let e = Ecdf::from_samples(&samples, 10_000.0).unwrap();
        let surv = e.to_stepfn().map(|v| 1.0 - v);
        prop_assert!((e.survival_integral(t) - surv.integral(0.0, t)).abs() < 1e-6);
        prop_assert!((e.moment_survival_integral(t) - surv.moment_integral(0.0, t)).abs() < 1e-3);
    }

    #[test]
    fn ecdf_product_integrals_match_stepfn(
        samples in proptest::collection::vec(0.1f64..9_000.0, 2..30),
        shift in 0.0f64..2_000.0,
        l in 0.0f64..3_000.0,
    ) {
        let e = Ecdf::from_samples(&samples, 10_000.0).unwrap();
        let surv = e.to_stepfn().map(|v| 1.0 - v);
        let prod = surv.shift(-shift).product(&surv);
        let (c, d) = e.survival_product_integrals(shift, l);
        prop_assert!((c - prod.integral(0.0, l)).abs() < 1e-6);
        prop_assert!((d - prod.moment_integral(0.0, l)).abs() < 1e-2);
    }

    #[test]
    fn distributions_cdf_quantile_inverse(
        mu in 3.0f64..7.0, sigma in 0.2f64..2.0, p in 0.001f64..0.999,
    ) {
        let d = LogNormal::new(mu, sigma).unwrap();
        let q = d.quantile(p);
        prop_assert!((d.cdf(q) - p).abs() < 1e-6);
    }

    #[test]
    fn weibull_cdf_monotone(shape in 0.3f64..3.0, scale in 10.0f64..2_000.0, a in 0.0f64..5_000.0, b in 0.0f64..5_000.0) {
        let d = Weibull::new(shape, scale).unwrap();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(d.cdf(lo) <= d.cdf(hi) + 1e-12);
        prop_assert!((0.0..=1.0).contains(&d.cdf(hi)));
    }

    #[test]
    fn pareto_support_and_tail(scale in 1.0f64..1_000.0, alpha in 0.5f64..4.0, t in 0.0f64..1e6) {
        let d = Pareto::new(scale, alpha).unwrap();
        if t < scale {
            prop_assert_eq!(d.cdf(t), 0.0);
        } else {
            let v = d.cdf(t);
            prop_assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn exponential_memorylessness(rate in 0.0005f64..0.1, s in 1.0f64..500.0, t in 1.0f64..500.0) {
        // P(X > s+t) = P(X > s)·P(X > t)
        let d = Exponential::new(rate).unwrap();
        let lhs = 1.0 - d.cdf(s + t);
        let rhs = (1.0 - d.cdf(s)) * (1.0 - d.cdf(t));
        prop_assert!((lhs - rhs).abs() < 1e-10);
    }

    #[test]
    fn normal_cdf_is_monotone_bounded(a in -8.0f64..8.0, b in -8.0f64..8.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(normal_cdf(lo) <= normal_cdf(hi) + 1e-12);
        prop_assert!((0.0..=1.0).contains(&normal_cdf(hi)));
    }

    #[test]
    fn golden_section_finds_quadratic_minimum(center in 1.0f64..99.0) {
        let r = golden_section(|x| (x - center) * (x - center), 0.0, 100.0, 1e-9);
        prop_assert!((r.x - center).abs() < 1e-5);
    }

    #[test]
    fn grid_min_never_beaten_by_grid_points(offset in 0.0f64..10.0) {
        let f = |x: f64| ((x - offset) * 0.7).sin() + 0.01 * x;
        let grid = GridSpec::new(0.0, 20.0, 200);
        let m = grid_min_1d(f, grid);
        for x in grid.points() {
            prop_assert!(f(x) >= m.value - 1e-12);
        }
    }

    #[test]
    fn grid_min_2d_respects_feasibility(cx in 1.0f64..9.0, cy in 1.0f64..9.0) {
        let f = move |x: f64, y: f64| (x - cx).powi(2) + (y - cy).powi(2);
        let feas = |x: f64, y: f64| y >= x; // upper triangle
        let m = grid_min_2d(f, (0.0, 10.0), (0.0, 10.0), 24, 6, &feas).unwrap();
        prop_assert!(m.y >= m.x);
        // optimal value is the projection onto the feasible set
        let want = if cy >= cx { 0.0 } else { (cx - cy) * (cx - cy) / 2.0 };
        prop_assert!(m.value <= want + 0.4, "value {} want {}", m.value, want);
    }

    #[test]
    fn summary_merge_associative(
        xs in proptest::collection::vec(-1e4f64..1e4, 1..50),
        split in 0usize..49,
    ) {
        let k = split.min(xs.len() - 1).max(1).min(xs.len());
        let mut a = Summary::from_slice(&xs[..k]);
        let b = Summary::from_slice(&xs[k..]);
        a.merge(&b);
        let full = Summary::from_slice(&xs);
        prop_assert_eq!(a.count(), full.count());
        prop_assert!((a.mean() - full.mean()).abs() < 1e-7 * (1.0 + full.mean().abs()));
        prop_assert!((a.variance() - full.variance()).abs() < 1e-6 * (1.0 + full.variance().abs()));
    }
}
