//! Property-based tests for the numerics substrate: the invariants every
//! downstream strategy computation silently relies on.
//!
//! The crates.io `proptest` harness is unavailable offline, so these use a
//! seeded hand-rolled generator: every `#[test]` draws `CASES` random
//! inputs from a fixed stream, making failures exactly reproducible (the
//! failing case index is part of the assertion message).

use gridstrat_stats::dist::{normal_cdf, Distribution};
use gridstrat_stats::optimize::{golden_section, grid_min_1d, grid_min_2d, GridSpec};
use gridstrat_stats::rng::derived_rng;
use gridstrat_stats::{Ecdf, Exponential, LogNormal, Pareto, StepFn, Summary, Weibull};
use rand::rngs::StdRng;
use rand::Rng;

const CASES: usize = 128;

fn sorted_breaks(rng: &mut StdRng) -> Vec<f64> {
    let n = rng.gen_range(1..12usize);
    let mut v: Vec<f64> = (0..n).map(|_| rng.gen_range(0.001..1000.0f64)).collect();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v.dedup();
    v
}

fn stepfn(rng: &mut StdRng) -> StepFn {
    let breaks = sorted_breaks(rng);
    let values: Vec<f64> = (0..breaks.len() + 1)
        .map(|_| rng.gen_range(-5.0..5.0f64))
        .collect();
    StepFn::new(breaks, values).unwrap()
}

fn samples(rng: &mut StdRng, lo: f64, hi: f64, min_n: usize, max_n: usize) -> Vec<f64> {
    let n = rng.gen_range(min_n..max_n);
    (0..n).map(|_| rng.gen_range(lo..hi)).collect()
}

#[test]
fn stepfn_integral_is_additive() {
    let mut rng = derived_rng(0x57A7, 1);
    for case in 0..CASES {
        let f = stepfn(&mut rng);
        let a = rng.gen_range(-10.0..1100.0f64);
        let b = rng.gen_range(-10.0..1100.0f64);
        let c = rng.gen_range(-10.0..1100.0f64);
        let whole = f.integral(a, c);
        let split = f.integral(a, b) + f.integral(b, c);
        assert!(
            (whole - split).abs() < 1e-8 * (1.0 + whole.abs()),
            "case {case}: {whole} vs {split}"
        );
    }
}

#[test]
fn stepfn_shift_preserves_integrals() {
    let mut rng = derived_rng(0x57A7, 2);
    for case in 0..CASES {
        let f = stepfn(&mut rng);
        let s = rng.gen_range(-200.0..200.0f64);
        let g = f.shift(s);
        let i_f = f.integral(0.0, 1000.0);
        let i_g = g.integral(s, 1000.0 + s);
        assert!(
            (i_f - i_g).abs() < 1e-7 * (1.0 + i_f.abs()),
            "case {case}: {i_f} vs {i_g}"
        );
    }
}

#[test]
fn stepfn_product_pointwise() {
    let mut rng = derived_rng(0x57A7, 3);
    for case in 0..CASES {
        let f = stepfn(&mut rng);
        let g = stepfn(&mut rng);
        let p = f.product(&g);
        for _ in 0..8 {
            let x = rng.gen_range(-10.0..1100.0f64);
            assert!(
                (p.eval(x) - f.eval(x) * g.eval(x)).abs() < 1e-9,
                "case {case} at x = {x}"
            );
        }
    }
}

#[test]
fn stepfn_compact_is_semantically_identity() {
    let mut rng = derived_rng(0x57A7, 4);
    for case in 0..CASES {
        let f = stepfn(&mut rng);
        let c = f.compact();
        assert!(c.len() <= f.len(), "case {case}");
        for _ in 0..8 {
            let x = rng.gen_range(-10.0..1100.0f64);
            assert_eq!(c.eval(x), f.eval(x), "case {case} at x = {x}");
        }
    }
}

#[test]
fn ecdf_is_monotone_and_bounded() {
    let mut rng = derived_rng(0x57A7, 5);
    for case in 0..CASES {
        let xs = samples(&mut rng, 0.1, 20_000.0, 2, 60);
        if !xs.iter().any(|&x| x < 10_000.0) {
            continue;
        }
        let e = Ecdf::from_samples(&xs, 10_000.0).unwrap();
        let mut ts: Vec<f64> = (0..6).map(|_| rng.gen_range(0.0..25_000.0f64)).collect();
        ts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = 0.0;
        for t in ts {
            let v = e.value(t);
            assert!((0.0..=1.0).contains(&v), "case {case}");
            assert!(v + 1e-12 >= prev, "case {case}");
            assert!(v <= 1.0 - e.outlier_ratio() + 1e-12, "case {case}");
            prev = v;
        }
    }
}

#[test]
fn ecdf_survival_integral_matches_stepfn() {
    let mut rng = derived_rng(0x57A7, 6);
    for case in 0..CASES {
        let xs = samples(&mut rng, 0.1, 20_000.0, 2, 40);
        if !xs.iter().any(|&x| x < 10_000.0) {
            continue;
        }
        let t = rng.gen_range(0.0..12_000.0f64);
        let e = Ecdf::from_samples(&xs, 10_000.0).unwrap();
        let surv = e.to_stepfn().map(|v| 1.0 - v);
        assert!(
            (e.survival_integral(t) - surv.integral(0.0, t)).abs() < 1e-6,
            "case {case}"
        );
        assert!(
            (e.moment_survival_integral(t) - surv.moment_integral(0.0, t)).abs() < 1e-3,
            "case {case}"
        );
    }
}

#[test]
fn ecdf_product_integrals_match_stepfn() {
    let mut rng = derived_rng(0x57A7, 7);
    for case in 0..CASES {
        let xs = samples(&mut rng, 0.1, 9_000.0, 2, 30);
        let shift = rng.gen_range(0.0..2_000.0f64);
        let l = rng.gen_range(0.0..3_000.0f64);
        let e = Ecdf::from_samples(&xs, 10_000.0).unwrap();
        let surv = e.to_stepfn().map(|v| 1.0 - v);
        let prod = surv.shift(-shift).product(&surv);
        let (c, d) = e.survival_product_integrals(shift, l);
        assert!((c - prod.integral(0.0, l)).abs() < 1e-6, "case {case}");
        assert!(
            (d - prod.moment_integral(0.0, l)).abs() < 1e-2,
            "case {case}"
        );
    }
}

#[test]
fn distributions_cdf_quantile_inverse() {
    let mut rng = derived_rng(0x57A7, 8);
    for case in 0..CASES {
        let mu = rng.gen_range(3.0..7.0f64);
        let sigma = rng.gen_range(0.2..2.0f64);
        let p = rng.gen_range(0.001..0.999f64);
        let d = LogNormal::new(mu, sigma).unwrap();
        let q = d.quantile(p);
        assert!((d.cdf(q) - p).abs() < 1e-6, "case {case}: p = {p}");
    }
}

#[test]
fn weibull_cdf_monotone() {
    let mut rng = derived_rng(0x57A7, 9);
    for case in 0..CASES {
        let d = Weibull::new(rng.gen_range(0.3..3.0f64), rng.gen_range(10.0..2_000.0f64)).unwrap();
        let a = rng.gen_range(0.0..5_000.0f64);
        let b = rng.gen_range(0.0..5_000.0f64);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(d.cdf(lo) <= d.cdf(hi) + 1e-12, "case {case}");
        assert!((0.0..=1.0).contains(&d.cdf(hi)), "case {case}");
    }
}

#[test]
fn pareto_support_and_tail() {
    let mut rng = derived_rng(0x57A7, 10);
    for case in 0..CASES {
        let scale = rng.gen_range(1.0..1_000.0f64);
        let alpha = rng.gen_range(0.5..4.0f64);
        let t = rng.gen_range(0.0..1e6f64);
        let d = Pareto::new(scale, alpha).unwrap();
        if t < scale {
            assert_eq!(d.cdf(t), 0.0, "case {case}");
        } else {
            let v = d.cdf(t);
            assert!((0.0..=1.0).contains(&v), "case {case}");
        }
    }
}

#[test]
fn exponential_memorylessness() {
    // P(X > s+t) = P(X > s)·P(X > t)
    let mut rng = derived_rng(0x57A7, 11);
    for case in 0..CASES {
        let rate = rng.gen_range(0.0005..0.1f64);
        let s = rng.gen_range(1.0..500.0f64);
        let t = rng.gen_range(1.0..500.0f64);
        let d = Exponential::new(rate).unwrap();
        let lhs = 1.0 - d.cdf(s + t);
        let rhs = (1.0 - d.cdf(s)) * (1.0 - d.cdf(t));
        assert!((lhs - rhs).abs() < 1e-10, "case {case}");
    }
}

#[test]
fn normal_cdf_is_monotone_bounded() {
    let mut rng = derived_rng(0x57A7, 12);
    for case in 0..CASES {
        let a = rng.gen_range(-8.0..8.0f64);
        let b = rng.gen_range(-8.0..8.0f64);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(normal_cdf(lo) <= normal_cdf(hi) + 1e-12, "case {case}");
        assert!((0.0..=1.0).contains(&normal_cdf(hi)), "case {case}");
    }
}

#[test]
fn golden_section_finds_quadratic_minimum() {
    let mut rng = derived_rng(0x57A7, 13);
    for case in 0..CASES {
        let center = rng.gen_range(1.0..99.0f64);
        let r = golden_section(|x| (x - center) * (x - center), 0.0, 100.0, 1e-9);
        assert!((r.x - center).abs() < 1e-5, "case {case}");
    }
}

#[test]
fn grid_min_never_beaten_by_grid_points() {
    let mut rng = derived_rng(0x57A7, 14);
    for case in 0..CASES {
        let offset = rng.gen_range(0.0..10.0f64);
        let f = |x: f64| ((x - offset) * 0.7).sin() + 0.01 * x;
        let grid = GridSpec::new(0.0, 20.0, 200);
        let m = grid_min_1d(f, grid);
        for x in grid.points() {
            assert!(f(x) >= m.value - 1e-12, "case {case} at x = {x}");
        }
    }
}

#[test]
fn grid_min_2d_respects_feasibility() {
    let mut rng = derived_rng(0x57A7, 15);
    for case in 0..CASES {
        let cx = rng.gen_range(1.0..9.0f64);
        let cy = rng.gen_range(1.0..9.0f64);
        let f = move |x: f64, y: f64| (x - cx).powi(2) + (y - cy).powi(2);
        let feas = |x: f64, y: f64| y >= x; // upper triangle
        let m = grid_min_2d(f, (0.0, 10.0), (0.0, 10.0), 24, 6, &feas).unwrap();
        assert!(m.y >= m.x, "case {case}");
        // optimal value is the projection onto the feasible set
        let want = if cy >= cx {
            0.0
        } else {
            (cx - cy) * (cx - cy) / 2.0
        };
        assert!(
            m.value <= want + 0.4,
            "case {case}: value {} want {want}",
            m.value
        );
    }
}

#[test]
fn summary_merge_associative() {
    let mut rng = derived_rng(0x57A7, 16);
    for case in 0..CASES {
        let xs = samples(&mut rng, -1e4, 1e4, 1, 50);
        let split = rng.gen_range(0..49usize);
        let k = split.min(xs.len() - 1).max(1).min(xs.len());
        let mut a = Summary::from_slice(&xs[..k]);
        let b = Summary::from_slice(&xs[k..]);
        a.merge(&b);
        let full = Summary::from_slice(&xs);
        assert_eq!(a.count(), full.count(), "case {case}");
        assert!(
            (a.mean() - full.mean()).abs() < 1e-7 * (1.0 + full.mean().abs()),
            "case {case}"
        );
        assert!(
            (a.variance() - full.variance()).abs() < 1e-6 * (1.0 + full.variance().abs()),
            "case {case}"
        );
    }
}
