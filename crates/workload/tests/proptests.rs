//! Property-based tests for the trace model: serialization round-trips on
//! arbitrary valid traces and calibration correctness over the parameter
//! space.

use gridstrat_workload::observatory::{parse_observatory, write_observatory};
use gridstrat_workload::{ProbeRecord, ProbeStatus, TraceSet, WeekModel};
use proptest::prelude::*;

const THRESHOLD: f64 = 10_000.0;

fn arb_record() -> impl Strategy<Value = ProbeRecord> {
    (0.0f64..1e6, prop_oneof![Just(true), Just(false)], 0.01f64..9_999.0).prop_map(
        |(submitted_at, outlier, lat)| {
            if outlier {
                ProbeRecord {
                    submitted_at,
                    latency_s: THRESHOLD,
                    status: ProbeStatus::TimedOut,
                }
            } else {
                ProbeRecord { submitted_at, latency_s: lat, status: ProbeStatus::Completed }
            }
        },
    )
}

fn arb_trace() -> impl Strategy<Value = TraceSet> {
    proptest::collection::vec(arb_record(), 1..60)
        .prop_map(|records| TraceSet::new("prop-trace", THRESHOLD, records).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn json_roundtrip_is_identity(trace in arb_trace()) {
        let back = TraceSet::from_json(&trace.to_json()).unwrap();
        prop_assert_eq!(back.records, trace.records);
        prop_assert_eq!(back.threshold_s, trace.threshold_s);
    }

    #[test]
    fn csv_roundtrip_is_identity(trace in arb_trace()) {
        let back = TraceSet::from_csv("prop-trace", THRESHOLD, &trace.to_csv()).unwrap();
        prop_assert_eq!(back.records.len(), trace.records.len());
        for (a, b) in back.records.iter().zip(&trace.records) {
            prop_assert!((a.submitted_at - b.submitted_at).abs() < 1e-9);
            prop_assert!((a.latency_s - b.latency_s).abs() < 1e-9);
            prop_assert_eq!(a.status, b.status);
        }
    }

    #[test]
    fn observatory_roundtrip_is_identity(trace in arb_trace()) {
        let back = parse_observatory(&write_observatory(&trace)).unwrap();
        prop_assert_eq!(back.records.len(), trace.records.len());
        for (a, b) in back.records.iter().zip(&trace.records) {
            prop_assert!((a.latency_s - b.latency_s).abs() < 1e-9);
            prop_assert_eq!(a.status, b.status);
        }
    }

    #[test]
    fn statistics_are_consistent(trace in arb_trace()) {
        let n_out = trace.n_outliers();
        prop_assert!(n_out <= trace.len());
        prop_assert!((trace.outlier_ratio() - n_out as f64 / trace.len() as f64).abs() < 1e-12);
        if n_out < trace.len() {
            let mean = trace.body_mean();
            prop_assert!(mean > 0.0 && mean < THRESHOLD);
            // censored bound dominates body mean iff there are outliers
            let bound = trace.censored_mean_lower_bound();
            if n_out > 0 {
                prop_assert!(bound > mean);
            } else {
                prop_assert!((bound - mean).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn ecdf_matches_manual_counts(trace in arb_trace(), t in 0.0f64..12_000.0) {
        prop_assume!(trace.n_outliers() < trace.len());
        let e = trace.ecdf().unwrap();
        let manual = trace
            .records
            .iter()
            .filter(|r| !r.is_outlier() && r.latency_s <= t)
            .count() as f64
            / trace.len() as f64;
        prop_assert!((e.value(t) - manual).abs() < 1e-12);
    }

    #[test]
    fn calibration_reproduces_moments(
        mean in 200.0f64..900.0,
        cv in 0.3f64..2.5,
        rho in 0.0f64..0.5,
        shift_frac in 0.0f64..0.8,
    ) {
        let sd = mean * cv;
        let shift = shift_frac * mean * 0.9;
        let m = WeekModel::calibrate("prop", mean, sd, rho, shift, THRESHOLD).unwrap();
        prop_assert!((m.body_mean() - mean).abs() < 1e-6 * mean);
        prop_assert!((m.body_std() - sd).abs() < 1e-6 * sd);
        prop_assert!((m.rho - rho).abs() < 1e-12);
    }

    #[test]
    fn generated_traces_are_valid_and_deterministic(
        seed in 0u64..500,
        n in 1usize..300,
    ) {
        let m = WeekModel::calibrate("prop", 500.0, 600.0, 0.15, 100.0, THRESHOLD).unwrap();
        let a = m.generate(n, seed);
        prop_assert_eq!(a.len(), n);
        let b = m.generate(n, seed);
        prop_assert_eq!(&a.records, &b.records);
        // validation invariant: statuses match the censoring threshold
        for r in &a.records {
            match r.status {
                ProbeStatus::Completed => prop_assert!(r.latency_s < THRESHOLD),
                ProbeStatus::TimedOut => prop_assert!(r.latency_s >= THRESHOLD),
            }
        }
    }

    #[test]
    fn defective_cdf_bounded_by_one_minus_rho(
        rho in 0.0f64..0.6,
        t in 0.0f64..THRESHOLD,
    ) {
        let m = WeekModel::calibrate("prop", 500.0, 600.0, rho, 100.0, THRESHOLD).unwrap();
        let v = m.defective_cdf(t);
        prop_assert!(v >= 0.0);
        prop_assert!(v <= 1.0 - rho + 1e-12);
    }
}
