//! Property-based tests for the trace model: serialization round-trips on
//! arbitrary valid traces and calibration correctness over the parameter
//! space.
//!
//! The crates.io `proptest` harness is unavailable offline, so these use a
//! seeded hand-rolled generator: every `#[test]` draws `CASES` random
//! inputs from a fixed stream, making failures exactly reproducible (the
//! failing case index is part of the assertion message).

use gridstrat_stats::rng::derived_rng;
use gridstrat_workload::observatory::{parse_observatory, write_observatory};
use gridstrat_workload::{ProbeRecord, ProbeStatus, TraceSet, WeekModel};
use rand::rngs::StdRng;
use rand::Rng;

const THRESHOLD: f64 = 10_000.0;
const CASES: usize = 128;

fn arb_record(rng: &mut StdRng) -> ProbeRecord {
    let submitted_at = rng.gen_range(0.0..1e6f64);
    if rng.gen::<f64>() < 0.5 {
        ProbeRecord {
            submitted_at,
            latency_s: THRESHOLD,
            status: ProbeStatus::TimedOut,
        }
    } else {
        ProbeRecord {
            submitted_at,
            latency_s: rng.gen_range(0.01..9_999.0f64),
            status: ProbeStatus::Completed,
        }
    }
}

fn arb_trace(rng: &mut StdRng) -> TraceSet {
    let n = rng.gen_range(1..60usize);
    let records = (0..n).map(|_| arb_record(rng)).collect();
    TraceSet::new("prop-trace", THRESHOLD, records).unwrap()
}

#[test]
fn json_roundtrip_is_identity() {
    let mut rng = derived_rng(0x7ACE, 1);
    for case in 0..CASES {
        let trace = arb_trace(&mut rng);
        let back = TraceSet::from_json(&trace.to_json()).unwrap();
        assert_eq!(back.records, trace.records, "case {case}");
        assert_eq!(back.threshold_s, trace.threshold_s, "case {case}");
    }
}

#[test]
fn csv_roundtrip_is_identity() {
    let mut rng = derived_rng(0x7ACE, 2);
    for case in 0..CASES {
        let trace = arb_trace(&mut rng);
        let back = TraceSet::from_csv("prop-trace", THRESHOLD, &trace.to_csv()).unwrap();
        assert_eq!(back.records.len(), trace.records.len(), "case {case}");
        for (a, b) in back.records.iter().zip(&trace.records) {
            assert!(
                (a.submitted_at - b.submitted_at).abs() < 1e-9,
                "case {case}"
            );
            assert!((a.latency_s - b.latency_s).abs() < 1e-9, "case {case}");
            assert_eq!(a.status, b.status, "case {case}");
        }
    }
}

#[test]
fn observatory_roundtrip_is_identity() {
    let mut rng = derived_rng(0x7ACE, 3);
    for case in 0..CASES {
        let trace = arb_trace(&mut rng);
        let back = parse_observatory(&write_observatory(&trace)).unwrap();
        assert_eq!(back.records.len(), trace.records.len(), "case {case}");
        for (a, b) in back.records.iter().zip(&trace.records) {
            assert!((a.latency_s - b.latency_s).abs() < 1e-9, "case {case}");
            assert_eq!(a.status, b.status, "case {case}");
        }
    }
}

#[test]
fn statistics_are_consistent() {
    let mut rng = derived_rng(0x7ACE, 4);
    for case in 0..CASES {
        let trace = arb_trace(&mut rng);
        let n_out = trace.n_outliers();
        assert!(n_out <= trace.len(), "case {case}");
        assert!(
            (trace.outlier_ratio() - n_out as f64 / trace.len() as f64).abs() < 1e-12,
            "case {case}"
        );
        if n_out < trace.len() {
            let mean = trace.body_mean();
            assert!(mean > 0.0 && mean < THRESHOLD, "case {case}");
            // censored bound dominates body mean iff there are outliers
            let bound = trace.censored_mean_lower_bound();
            if n_out > 0 {
                assert!(bound > mean, "case {case}");
            } else {
                assert!((bound - mean).abs() < 1e-9, "case {case}");
            }
        }
    }
}

#[test]
fn ecdf_matches_manual_counts() {
    let mut rng = derived_rng(0x7ACE, 5);
    for case in 0..CASES {
        let trace = arb_trace(&mut rng);
        let t = rng.gen_range(0.0..12_000.0f64);
        if trace.n_outliers() == trace.len() {
            continue; // degenerate: no body, ecdf construction rejects
        }
        let e = trace.ecdf().unwrap();
        let manual = trace
            .records
            .iter()
            .filter(|r| !r.is_outlier() && r.latency_s <= t)
            .count() as f64
            / trace.len() as f64;
        assert!((e.value(t) - manual).abs() < 1e-12, "case {case}");
    }
}

#[test]
fn calibration_reproduces_moments() {
    let mut rng = derived_rng(0x7ACE, 6);
    for case in 0..CASES {
        let mean = rng.gen_range(200.0..900.0f64);
        let cv = rng.gen_range(0.3..2.5f64);
        let rho = rng.gen_range(0.0..0.5f64);
        let shift_frac = rng.gen_range(0.0..0.8f64);
        let sd = mean * cv;
        let shift = shift_frac * mean * 0.9;
        let m = WeekModel::calibrate("prop", mean, sd, rho, shift, THRESHOLD).unwrap();
        assert!((m.body_mean() - mean).abs() < 1e-6 * mean, "case {case}");
        assert!((m.body_std() - sd).abs() < 1e-6 * sd, "case {case}");
        assert!((m.rho - rho).abs() < 1e-12, "case {case}");
    }
}

#[test]
fn generated_traces_are_valid_and_deterministic() {
    let mut rng = derived_rng(0x7ACE, 7);
    for case in 0..CASES.min(48) {
        let seed = rng.gen_range(0..500u64);
        let n = rng.gen_range(1..300usize);
        let m = WeekModel::calibrate("prop", 500.0, 600.0, 0.15, 100.0, THRESHOLD).unwrap();
        let a = m.generate(n, seed);
        assert_eq!(a.len(), n, "case {case}");
        let b = m.generate(n, seed);
        assert_eq!(&a.records, &b.records, "case {case}");
        // validation invariant: statuses match the censoring threshold
        for r in &a.records {
            match r.status {
                ProbeStatus::Completed => assert!(r.latency_s < THRESHOLD, "case {case}"),
                ProbeStatus::TimedOut => assert!(r.latency_s >= THRESHOLD, "case {case}"),
            }
        }
    }
}

#[test]
fn defective_cdf_bounded_by_one_minus_rho() {
    let mut rng = derived_rng(0x7ACE, 8);
    for case in 0..CASES {
        let rho = rng.gen_range(0.0..0.6f64);
        let t = rng.gen_range(0.0..THRESHOLD);
        let m = WeekModel::calibrate("prop", 500.0, 600.0, rho, 100.0, THRESHOLD).unwrap();
        let v = m.defective_cdf(t);
        assert!(v >= 0.0, "case {case}");
        assert!(v <= 1.0 - rho + 1e-12, "case {case}");
    }
}
