//! Probe-job trace data model.
//!
//! Mirrors the paper's measurement records (§3.2): for each probe job, the
//! submission date, the final status and the total duration were logged;
//! probes exceeding the 10 000 s timeout were cancelled and recorded as
//! outliers.

use crate::json::{escape, JsonValue};
use gridstrat_stats::{Ecdf, Summary};

/// Final status of one probe job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeStatus {
    /// The job started executing; `latency_s` is its measured grid latency.
    Completed,
    /// The job was still waiting at the censoring threshold and was
    /// cancelled; `latency_s` holds the threshold value.
    TimedOut,
}

/// One probe-job measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeRecord {
    /// Submission instant, seconds since the start of the trace.
    pub submitted_at: f64,
    /// Measured grid latency in seconds (threshold value for timed-out jobs).
    pub latency_s: f64,
    /// Final status.
    pub status: ProbeStatus,
}

impl ProbeRecord {
    /// True if the probe was censored (an outlier).
    pub fn is_outlier(&self) -> bool {
        self.status == ProbeStatus::TimedOut
    }
}

/// A named set of probe measurements with its censoring threshold.
///
/// The unit of analysis throughout the reproduction: every strategy model is
/// estimated from one `TraceSet` (one "week" in the paper's terminology).
#[derive(Debug, Clone)]
pub struct TraceSet {
    /// Dataset name, e.g. `"2006-IX"` or `"2007-36"`.
    pub name: String,
    /// Censoring threshold in seconds (10 000 in the paper).
    pub threshold_s: f64,
    /// The probe records, in submission order.
    pub records: Vec<ProbeRecord>,
}

/// Error validating or parsing a trace set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The trace contains no records.
    Empty,
    /// The censoring threshold is invalid: it must be finite and positive.
    /// (A NaN or non-positive threshold would otherwise reject every
    /// record with a misleading `InvalidRecord(0)`.)
    InvalidThreshold,
    /// A record is inconsistent (negative latency, completed latency at or
    /// above the threshold, timed-out latency below the threshold, …).
    InvalidRecord(usize),
    /// Parse failure with line number and message.
    Parse(usize, String),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Empty => write!(f, "trace contains no records"),
            TraceError::InvalidThreshold => {
                write!(f, "censoring threshold must be finite and positive")
            }
            TraceError::InvalidRecord(i) => write!(f, "record {i} is inconsistent"),
            TraceError::Parse(line, msg) => write!(f, "parse error at line {line}: {msg}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl TraceSet {
    /// Creates a trace set, validating record consistency.
    pub fn new(
        name: impl Into<String>,
        threshold_s: f64,
        records: Vec<ProbeRecord>,
    ) -> Result<Self, TraceError> {
        if !(threshold_s.is_finite() && threshold_s > 0.0) {
            return Err(TraceError::InvalidThreshold);
        }
        if records.is_empty() {
            return Err(TraceError::Empty);
        }
        for (i, r) in records.iter().enumerate() {
            let ok = r.submitted_at.is_finite()
                && r.submitted_at >= 0.0
                && r.latency_s.is_finite()
                && r.latency_s >= 0.0
                && match r.status {
                    ProbeStatus::Completed => r.latency_s < threshold_s,
                    ProbeStatus::TimedOut => r.latency_s >= threshold_s,
                };
            if !ok {
                return Err(TraceError::InvalidRecord(i));
            }
        }
        Ok(TraceSet {
            name: name.into(),
            threshold_s,
            records,
        })
    }

    /// Number of probes (body + outliers).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if there are no records (never true for a validated trace).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Latencies of non-outlier probes.
    pub fn body_latencies(&self) -> Vec<f64> {
        self.records
            .iter()
            .filter(|r| !r.is_outlier())
            .map(|r| r.latency_s)
            .collect()
    }

    /// Number of censored probes.
    pub fn n_outliers(&self) -> usize {
        self.records.iter().filter(|r| r.is_outlier()).count()
    }

    /// Observed outlier ratio `ρ̂`.
    pub fn outlier_ratio(&self) -> f64 {
        self.n_outliers() as f64 / self.len() as f64
    }

    /// Mean of non-outlier latencies (paper's “mean < 10⁵” column).
    pub fn body_mean(&self) -> f64 {
        Summary::from_slice(&self.body_latencies()).mean()
    }

    /// Population standard deviation of non-outlier latencies (`σ_R`).
    pub fn body_std(&self) -> f64 {
        Summary::from_slice(&self.body_latencies()).std()
    }

    /// Lower bound of the uncensored mean, counting each outlier at the
    /// threshold (paper's “mean with 10⁵” column).
    pub fn censored_mean_lower_bound(&self) -> f64 {
        let sum: f64 = self
            .records
            .iter()
            .map(|r| {
                if r.is_outlier() {
                    self.threshold_s
                } else {
                    r.latency_s
                }
            })
            .sum();
        sum / self.len() as f64
    }

    /// Builds the defective empirical CDF `F̃_R` of this trace.
    pub fn ecdf(&self) -> Result<Ecdf, gridstrat_stats::ecdf::EcdfError> {
        let mut body = self.body_latencies();
        body.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        Ecdf::from_sorted_body_and_outliers(body, self.n_outliers(), self.threshold_s)
    }

    /// Concatenates several traces into one (the paper's `2007/08` union
    /// row). All inputs must share the same threshold.
    pub fn union(name: impl Into<String>, parts: &[&TraceSet]) -> Result<Self, TraceError> {
        let mut records = Vec::new();
        let mut threshold = None;
        for p in parts {
            match threshold {
                None => threshold = Some(p.threshold_s),
                Some(t) => assert_eq!(t, p.threshold_s, "mismatched censoring thresholds"),
            }
            records.extend_from_slice(&p.records);
        }
        TraceSet::new(
            name,
            threshold.unwrap_or(crate::CENSOR_THRESHOLD_S),
            records,
        )
    }

    /// Serialises to pretty JSON. Without corrupting the data the output
    /// always parses back ([`TraceSet::from_json`]) to an equal trace:
    /// floats are written in shortest-round-trip form.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(self.records.len() * 72 + 128);
        out.push_str("{\n");
        out.push_str(&format!("  \"name\": \"{}\",\n", escape(&self.name)));
        out.push_str(&format!("  \"threshold_s\": {},\n", self.threshold_s));
        out.push_str("  \"records\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            let status = match r.status {
                ProbeStatus::Completed => "Completed",
                ProbeStatus::TimedOut => "TimedOut",
            };
            out.push_str(&format!(
                "    {{ \"submitted_at\": {}, \"latency_s\": {}, \"status\": \"{status}\" }}{}\n",
                r.submitted_at,
                r.latency_s,
                if i + 1 < self.records.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses the JSON produced by [`TraceSet::to_json`] and re-validates.
    pub fn from_json(s: &str) -> Result<Self, TraceError> {
        let parse_err = |m: String| TraceError::Parse(0, m);
        let doc = JsonValue::parse(s).map_err(parse_err)?;
        let name = doc
            .field("name")
            .map_err(parse_err)?
            .as_str()
            .ok_or_else(|| parse_err("`name` must be a string".into()))?
            .to_string();
        let threshold_s = doc
            .field("threshold_s")
            .map_err(parse_err)?
            .as_f64()
            .ok_or_else(|| parse_err("`threshold_s` must be a number".into()))?;
        let raw = doc
            .field("records")
            .map_err(parse_err)?
            .as_array()
            .ok_or_else(|| parse_err("`records` must be an array".into()))?;
        let mut records = Vec::with_capacity(raw.len());
        for (i, rec) in raw.iter().enumerate() {
            let num = |key: &str| -> Result<f64, TraceError> {
                rec.field(key)
                    .map_err(parse_err)?
                    .as_f64()
                    .ok_or_else(|| parse_err(format!("record {i}: `{key}` must be a number")))
            };
            let status = match rec
                .field("status")
                .map_err(parse_err)?
                .as_str()
                .ok_or_else(|| parse_err(format!("record {i}: `status` must be a string")))?
            {
                "Completed" => ProbeStatus::Completed,
                "TimedOut" => ProbeStatus::TimedOut,
                other => return Err(parse_err(format!("record {i}: unknown status `{other}`"))),
            };
            records.push(ProbeRecord {
                submitted_at: num("submitted_at")?,
                latency_s: num("latency_s")?,
                status,
            });
        }
        TraceSet::new(name, threshold_s, records)
    }

    /// Writes a CSV representation (`submitted_at,latency_s,status`).
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(self.records.len() * 32 + 64);
        out.push_str("submitted_at,latency_s,status\n");
        for r in &self.records {
            let status = match r.status {
                ProbeStatus::Completed => "completed",
                ProbeStatus::TimedOut => "timedout",
            };
            out.push_str(&format!("{},{},{}\n", r.submitted_at, r.latency_s, status));
        }
        out
    }

    /// Parses the CSV representation produced by [`TraceSet::to_csv`].
    pub fn from_csv(
        name: impl Into<String>,
        threshold_s: f64,
        csv: &str,
    ) -> Result<Self, TraceError> {
        let mut records = Vec::new();
        for (lineno, line) in csv.lines().enumerate() {
            if lineno == 0 || line.trim().is_empty() {
                continue; // header / blank
            }
            let mut it = line.split(',');
            let parse_f64 = |s: Option<&str>, lineno: usize| -> Result<f64, TraceError> {
                s.ok_or_else(|| TraceError::Parse(lineno + 1, "missing field".into()))?
                    .trim()
                    .parse::<f64>()
                    .map_err(|e| TraceError::Parse(lineno + 1, e.to_string()))
            };
            let submitted_at = parse_f64(it.next(), lineno)?;
            let latency_s = parse_f64(it.next(), lineno)?;
            let status = match it
                .next()
                .ok_or_else(|| TraceError::Parse(lineno + 1, "missing status".into()))?
                .trim()
            {
                "completed" => ProbeStatus::Completed,
                "timedout" => ProbeStatus::TimedOut,
                other => {
                    return Err(TraceError::Parse(
                        lineno + 1,
                        format!("bad status `{other}`"),
                    ))
                }
            };
            records.push(ProbeRecord {
                submitted_at,
                latency_s,
                status,
            });
        }
        TraceSet::new(name, threshold_s, records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> TraceSet {
        TraceSet::new(
            "test",
            100.0,
            vec![
                ProbeRecord {
                    submitted_at: 0.0,
                    latency_s: 10.0,
                    status: ProbeStatus::Completed,
                },
                ProbeRecord {
                    submitted_at: 1.0,
                    latency_s: 20.0,
                    status: ProbeStatus::Completed,
                },
                ProbeRecord {
                    submitted_at: 2.0,
                    latency_s: 100.0,
                    status: ProbeStatus::TimedOut,
                },
                ProbeRecord {
                    submitted_at: 3.0,
                    latency_s: 30.0,
                    status: ProbeStatus::Completed,
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn validation_rejects_inconsistencies() {
        assert_eq!(
            TraceSet::new("x", 100.0, vec![]).unwrap_err(),
            TraceError::Empty
        );
        // completed at threshold
        let bad = vec![ProbeRecord {
            submitted_at: 0.0,
            latency_s: 100.0,
            status: ProbeStatus::Completed,
        }];
        assert_eq!(
            TraceSet::new("x", 100.0, bad).unwrap_err(),
            TraceError::InvalidRecord(0)
        );
        // timed out below threshold
        let bad = vec![ProbeRecord {
            submitted_at: 0.0,
            latency_s: 5.0,
            status: ProbeStatus::TimedOut,
        }];
        assert_eq!(
            TraceSet::new("x", 100.0, bad).unwrap_err(),
            TraceError::InvalidRecord(0)
        );
        // negative submission time
        let bad = vec![ProbeRecord {
            submitted_at: -1.0,
            latency_s: 5.0,
            status: ProbeStatus::Completed,
        }];
        assert!(TraceSet::new("x", 100.0, bad).is_err());
    }

    #[test]
    fn rejects_invalid_thresholds() {
        // regression: a NaN / non-positive threshold used to fail every
        // record comparison and surface as a misleading InvalidRecord(0)
        let good = vec![ProbeRecord {
            submitted_at: 0.0,
            latency_s: 10.0,
            status: ProbeStatus::Completed,
        }];
        for bad in [f64::NAN, 0.0, -100.0, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(
                TraceSet::new("x", bad, good.clone()).unwrap_err(),
                TraceError::InvalidThreshold,
                "threshold {bad}"
            );
        }
        // the threshold error wins even over an empty record set
        assert_eq!(
            TraceSet::new("x", f64::NAN, vec![]).unwrap_err(),
            TraceError::InvalidThreshold
        );
        assert!(TraceSet::new("x", 100.0, good).is_ok());
    }

    #[test]
    fn summary_statistics() {
        let t = sample_trace();
        assert_eq!(t.len(), 4);
        assert_eq!(t.n_outliers(), 1);
        assert!((t.outlier_ratio() - 0.25).abs() < 1e-12);
        assert!((t.body_mean() - 20.0).abs() < 1e-12);
        // censored mean bound: (10+20+100+30)/4 = 40
        assert!((t.censored_mean_lower_bound() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn ecdf_roundtrip() {
        let t = sample_trace();
        let e = t.ecdf().unwrap();
        assert_eq!(e.n_total(), 4);
        assert_eq!(e.n_body(), 3);
        assert!((e.value(20.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn json_roundtrip() {
        let t = sample_trace();
        let s = t.to_json();
        let back = TraceSet::from_json(&s).unwrap();
        assert_eq!(back.name, t.name);
        assert_eq!(back.records, t.records);
    }

    #[test]
    fn json_revalidates() {
        let mut t = sample_trace();
        t.records[0].latency_s = -5.0; // corrupt after validation
        let s = t.to_json();
        assert!(TraceSet::from_json(&s).is_err());
    }

    #[test]
    fn json_rejects_malformed_documents() {
        assert!(TraceSet::from_json("{").is_err());
        assert!(TraceSet::from_json("{}").is_err());
        assert!(
            TraceSet::from_json(r#"{"name": "x", "threshold_s": "oops", "records": []}"#).is_err()
        );
        assert!(TraceSet::from_json(
            r#"{"name": "x", "threshold_s": 100, "records": [{"submitted_at": 0, "latency_s": 1, "status": "Exploded"}]}"#
        )
        .is_err());
    }

    #[test]
    fn csv_roundtrip() {
        let t = sample_trace();
        let csv = t.to_csv();
        let back = TraceSet::from_csv("test", 100.0, &csv).unwrap();
        assert_eq!(back.records, t.records);
    }

    #[test]
    fn csv_rejects_garbage() {
        assert!(matches!(
            TraceSet::from_csv("x", 100.0, "h\n1,abc,completed\n"),
            Err(TraceError::Parse(2, _))
        ));
        assert!(matches!(
            TraceSet::from_csv("x", 100.0, "h\n1,2,unknown\n"),
            Err(TraceError::Parse(2, _))
        ));
        assert!(matches!(
            TraceSet::from_csv("x", 100.0, "h\n1,2\n"),
            Err(TraceError::Parse(2, _))
        ));
    }

    #[test]
    fn union_concatenates() {
        let a = sample_trace();
        let b = sample_trace();
        let u = TraceSet::union("both", &[&a, &b]).unwrap();
        assert_eq!(u.len(), 8);
        assert_eq!(u.n_outliers(), 2);
        assert!((u.body_mean() - 20.0).abs() < 1e-12);
    }
}
