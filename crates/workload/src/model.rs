//! The per-week latency model and trace synthesis.
//!
//! A week of EGEE latency behaviour is modelled as (DESIGN.md §2):
//!
//! * outlier ratio `ρ` — probability that a submission is lost/stuck and
//!   only terminates via the censoring timeout;
//! * a **shifted log-normal body** for non-outlier latency: a hard minimum
//!   `shift` (credential delegation + match-making + dispatch floor) plus a
//!   log-normal calibrated to the target `(mean, σ)` of the body;
//! * a **Pareto outlier tail** above the censoring threshold, used only
//!   when a simulation needs a concrete (censored) value for a stuck job.
//!
//! Trace synthesis reproduces the paper's measurement methodology: a
//! constant number of probes is kept in flight; each completion (or timeout
//! cancellation) immediately triggers the next submission (§3.2).

use crate::trace::{ProbeRecord, ProbeStatus, TraceSet};
use gridstrat_stats::rng::derived_rng;
use gridstrat_stats::{Distribution, LogNormal, Pareto, Shifted};
use rand::Rng;

/// Generative latency model for one trace period.
#[derive(Debug, Clone)]
pub struct WeekModel {
    /// Dataset name.
    pub name: String,
    /// Outlier (fault) ratio `ρ ∈ [0, 1)`.
    pub rho: f64,
    /// Hard minimum latency in seconds (location shift of the body).
    pub shift_s: f64,
    /// Log-normal `μ` of the body above the shift.
    pub body_mu: f64,
    /// Log-normal `σ` of the body above the shift.
    pub body_sigma: f64,
    /// Censoring threshold in seconds.
    pub threshold_s: f64,
    /// Pareto tail index for outlier latencies beyond the threshold.
    pub outlier_alpha: f64,
}

/// Number of probes kept in flight by the synthesis harness. The value only
/// affects submission timestamps (not latencies), so any moderate constant
/// reproduces the paper's methodology.
pub const PROBES_IN_FLIGHT: usize = 50;

impl WeekModel {
    /// Calibrates a model from body targets: the non-outlier latency should
    /// have mean `body_mean` and standard deviation `body_std`, the outlier
    /// ratio should be `rho`.
    ///
    /// The shifted log-normal is solved in closed form:
    /// the body above the shift must have mean `body_mean - shift` and the
    /// same `body_std` (a location shift does not change the variance).
    pub fn calibrate(
        name: impl Into<String>,
        body_mean: f64,
        body_std: f64,
        rho: f64,
        shift_s: f64,
        threshold_s: f64,
    ) -> Result<Self, String> {
        if !(rho.is_finite() && (0.0..1.0).contains(&rho)) {
            return Err(format!("rho must be in [0,1), got {rho}"));
        }
        if shift_s < 0.0 || shift_s >= body_mean {
            return Err(format!(
                "shift ({shift_s}) must be in [0, body mean {body_mean})"
            ));
        }
        if threshold_s <= body_mean {
            return Err("censoring threshold must exceed the body mean".to_string());
        }
        let ln = LogNormal::from_mean_std(body_mean - shift_s, body_std)?;
        Ok(WeekModel {
            name: name.into(),
            rho,
            shift_s,
            body_mu: ln.mu(),
            body_sigma: ln.sigma(),
            threshold_s,
            outlier_alpha: 1.5,
        })
    }

    /// The body distribution (shifted log-normal).
    pub fn body(&self) -> Shifted<LogNormal> {
        let ln = LogNormal::new(self.body_mu, self.body_sigma).expect("validated at calibration");
        Shifted::new(ln, self.shift_s).expect("validated at calibration")
    }

    /// The outlier-latency distribution (Pareto above the threshold).
    pub fn outlier_tail(&self) -> Pareto {
        Pareto::new(self.threshold_s, self.outlier_alpha).expect("validated at calibration")
    }

    /// Theoretical mean of the body.
    pub fn body_mean(&self) -> f64 {
        self.body().mean().expect("log-normal mean is finite")
    }

    /// Theoretical standard deviation of the body.
    pub fn body_std(&self) -> f64 {
        self.body()
            .variance()
            .expect("log-normal variance is finite")
            .sqrt()
    }

    /// Draws one *raw* latency: with probability `ρ` an outlier value beyond
    /// the threshold, otherwise a body draw (which can itself exceed the
    /// threshold in the extreme tail — such draws are censored downstream,
    /// exactly as a real trace would record them).
    pub fn sample_latency<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if rng.gen::<f64>() < self.rho {
            self.outlier_tail().sample(rng)
        } else {
            self.body().sample(rng)
        }
    }

    /// The defective CDF `F̃(t) = (1-ρ)·F_body(t)` of this model, valid for
    /// `t` below the censoring threshold.
    pub fn defective_cdf(&self, t: f64) -> f64 {
        (1.0 - self.rho) * self.body().cdf(t)
    }

    /// The instantaneous law of this week under a load modulation: the
    /// queue-wait component above the hard floor `shift_s` is scaled by
    /// `intensity` (for a shifted log-normal that is exactly
    /// `μ += ln intensity`) and the fault ratio is multiplied by
    /// `fault_factor`, clamped to `[0, MAX_FAULT_RATIO]`.
    ///
    /// This is the *analytic* counterpart of the per-submission scaling the
    /// live engine applies under an active `Modulation` — regret accounting
    /// tunes oracle strategies against exactly this law.
    pub fn modulated(&self, intensity: f64, fault_factor: f64) -> WeekModel {
        assert!(
            intensity.is_finite() && intensity > 0.0,
            "intensity factor must be positive, got {intensity}"
        );
        assert!(
            fault_factor.is_finite() && fault_factor >= 0.0,
            "fault factor must be non-negative, got {fault_factor}"
        );
        let mut out = self.clone();
        out.body_mu = self.body_mu + intensity.ln();
        out.rho = (self.rho * fault_factor).clamp(0.0, crate::MAX_FAULT_RATIO);
        out
    }

    /// Serialises the model parameters to JSON (archival sidecar of a
    /// synthesised trace).
    pub fn to_json(&self) -> String {
        format!(
            "{{ \"name\": \"{}\", \"rho\": {}, \"shift_s\": {}, \"body_mu\": {}, \"body_sigma\": {}, \"threshold_s\": {}, \"outlier_alpha\": {} }}",
            crate::json::escape(&self.name),
            self.rho,
            self.shift_s,
            self.body_mu,
            self.body_sigma,
            self.threshold_s,
            self.outlier_alpha,
        )
    }

    /// Parses the JSON produced by [`WeekModel::to_json`].
    pub fn from_json(s: &str) -> Result<Self, String> {
        let doc = crate::json::JsonValue::parse(s)?;
        let num = |key: &str| -> Result<f64, String> {
            doc.field(key)?
                .as_f64()
                .ok_or_else(|| format!("`{key}` must be a number"))
        };
        Ok(WeekModel {
            name: doc
                .field("name")?
                .as_str()
                .ok_or("`name` must be a string")?
                .to_string(),
            rho: num("rho")?,
            shift_s: num("shift_s")?,
            body_mu: num("body_mu")?,
            body_sigma: num("body_sigma")?,
            threshold_s: num("threshold_s")?,
            outlier_alpha: num("outlier_alpha")?,
        })
    }

    /// Synthesises a probe trace of `n` records with the constant-in-flight
    /// methodology, deterministically from `seed`.
    pub fn generate(&self, n: usize, seed: u64) -> TraceSet {
        assert!(n > 0, "cannot generate an empty trace");
        let mut rng = derived_rng(seed, 0);
        // Each in-flight slot is a chain: submit at t, observe latency
        // min(raw, threshold), next submission at completion/cancel instant.
        let slots = PROBES_IN_FLIGHT.min(n);
        let mut next_submit = vec![0.0f64; slots];
        let mut records = Vec::with_capacity(n);
        for i in 0..n {
            let slot = i % slots;
            let submitted_at = next_submit[slot];
            let raw = self.sample_latency(&mut rng);
            let (latency_s, status) = if raw >= self.threshold_s {
                (self.threshold_s, ProbeStatus::TimedOut)
            } else {
                (raw, ProbeStatus::Completed)
            };
            next_submit[slot] = submitted_at + latency_s;
            records.push(ProbeRecord {
                submitted_at,
                latency_s,
                status,
            });
        }
        // submission order, as a real log would be written
        records.sort_by(|a, b| {
            a.submitted_at
                .partial_cmp(&b.submitted_at)
                .expect("finite timestamps")
        });
        TraceSet::new(self.name.clone(), self.threshold_s, records)
            .expect("generated records are consistent by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> WeekModel {
        WeekModel::calibrate("2006-IX", 570.0, 886.0, 0.05, 60.0, 10_000.0).unwrap()
    }

    #[test]
    fn calibration_validates() {
        assert!(WeekModel::calibrate("x", 500.0, 700.0, 1.0, 0.0, 1e4).is_err());
        assert!(WeekModel::calibrate("x", 500.0, 700.0, 0.1, 600.0, 1e4).is_err());
        assert!(WeekModel::calibrate("x", 500.0, 700.0, 0.1, 60.0, 400.0).is_err());
        assert!(WeekModel::calibrate("x", 500.0, 700.0, -0.1, 60.0, 1e4).is_err());
    }

    #[test]
    fn calibration_hits_targets_exactly() {
        let m = model();
        assert!((m.body_mean() - 570.0).abs() < 1e-6);
        assert!((m.body_std() - 886.0).abs() < 1e-6);
    }

    #[test]
    fn generated_trace_matches_targets() {
        let m = model();
        let t = m.generate(8000, 42);
        assert_eq!(t.len(), 8000);
        // natural tail censoring adds a little to rho; both effects are small
        assert!(
            (t.outlier_ratio() - 0.05).abs() < 0.015,
            "rho {}",
            t.outlier_ratio()
        );
        let mean = t.body_mean();
        assert!((mean - 570.0).abs() / 570.0 < 0.10, "mean {mean}");
        // the sample std of a heavy-tailed log-normal is itself heavy-tailed
        // (4th-moment driven) and censoring clips the extreme tail, so only a
        // loose agreement can be asserted per-seed
        let std = t.body_std();
        assert!((std - 886.0).abs() / 886.0 < 0.30, "std {std}");
    }

    #[test]
    fn generation_is_deterministic() {
        let m = model();
        let a = m.generate(500, 7);
        let b = m.generate(500, 7);
        assert_eq!(a.records, b.records);
        let c = m.generate(500, 8);
        assert_ne!(a.records, c.records);
    }

    #[test]
    fn constant_in_flight_submission_pattern() {
        let m = model();
        let t = m.generate(300, 1);
        // with 50 slots, exactly 50 probes are submitted at t=0
        let at_zero = t.records.iter().filter(|r| r.submitted_at == 0.0).count();
        assert_eq!(at_zero, PROBES_IN_FLIGHT);
        // submission order is nondecreasing
        assert!(t
            .records
            .windows(2)
            .all(|w| w[0].submitted_at <= w[1].submitted_at));
    }

    #[test]
    fn defective_cdf_saturates_below_one() {
        let m = model();
        assert!(m.defective_cdf(9_999.0) <= 0.95 + 1e-9);
        assert!(m.defective_cdf(0.0) == 0.0);
        // below the shift, no mass at all
        assert_eq!(m.defective_cdf(30.0), 0.0);
    }

    #[test]
    fn outliers_exceed_threshold() {
        let m = WeekModel::calibrate("heavy", 500.0, 800.0, 0.33, 50.0, 10_000.0).unwrap();
        let mut rng = derived_rng(3, 0);
        let mut saw_outlier = false;
        for _ in 0..1000 {
            let x = m.sample_latency(&mut rng);
            if x >= 10_000.0 {
                saw_outlier = true;
            }
        }
        assert!(saw_outlier);
    }

    #[test]
    fn json_roundtrip() {
        let m = model();
        let s = m.to_json();
        let back = WeekModel::from_json(&s).unwrap();
        assert_eq!(back.name, m.name);
        assert_eq!(back.body_mu.to_bits(), m.body_mu.to_bits());
        assert_eq!(back.body_sigma.to_bits(), m.body_sigma.to_bits());
        assert!(WeekModel::from_json("{}").is_err());
    }
}
