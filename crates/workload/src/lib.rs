//! # gridstrat-workload
//!
//! Latency-trace substrate for the HPDC'09 reproduction.
//!
//! The paper's reference data is 12 sets of probe-job traces (10 893 probes
//! total) collected on the EGEE biomed VO: each probe is a `/bin/hostname`
//! job whose round-trip measures pure grid latency, censored at 10 000 s.
//! Those traces are not publicly archived, so this crate provides the
//! substitute documented in `DESIGN.md`:
//!
//! * [`trace`] — the probe-record / trace-set data model with JSON and CSV
//!   round-trips, plus summary statistics matching the paper's Table 1
//!   columns;
//! * [`model`] — [`WeekModel`]: outlier ratio `ρ` + shifted log-normal body
//!   + Pareto outlier tail, calibrated from `(mean, σ, ρ)` targets;
//! * [`weeks`] — the 13 named datasets (`2006-IX`, `2007-36` … `2008-03`,
//!   and the `2007/08` union) with calibration targets derived from the
//!   paper's Table 1, and deterministic trace synthesis;
//! * [`observatory`] — a Grid-Observatory-style plain-text log format
//!   (writer + parser), mirroring how such traces are archived in practice;
//! * [`json`] — the minimal JSON reader/writer backing the archive
//!   round-trips (the build environment has no crates.io access, so there
//!   is no `serde`).

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod json;
pub mod model;
pub mod nonstationary;
pub mod observatory;
pub mod trace;
pub mod weeks;

pub use model::WeekModel;
pub use nonstationary::{DiurnalModel, RegimeShiftModel};
pub use trace::{ProbeRecord, ProbeStatus, TraceSet};
pub use weeks::{WeekId, WeekTargets, PAPER_TABLE1};

/// The paper's censoring threshold: probes not started after 10 000 s are
/// cancelled and counted as outliers (§3.2).
pub const CENSOR_THRESHOLD_S: f64 = 10_000.0;

/// Hard ceiling on any scaled/modulated fault ratio or fault probability.
///
/// Every path that multiplies a calibrated `ρ` (or a pipeline fault
/// probability) by a scenario or modulation factor clamps the result to
/// `[0, MAX_FAULT_RATIO]`: [`WeekModel::modulated`],
/// [`DiurnalModel::rho_at`], `GridScenario::apply` / `apply_grid` in
/// `gridstrat-core`, and the live modulation hooks in `gridstrat-sim`.
/// A single shared constant keeps their saturation behaviour identical —
/// the clamps had drifted apart (0.9 vs 0.95) before it existed.
pub const MAX_FAULT_RATIO: f64 = 0.95;
