//! Non-stationary latency models.
//!
//! The paper stresses that production grids exhibit “high and
//! non-stationary workloads” (§1) yet its analysis treats each week as one
//! stationary law. This module supplies the missing ingredients for
//! studying that approximation:
//!
//! * [`DiurnalModel`] — latency body and fault ratio oscillate with a
//!   configurable period (daytime congestion vs night-time calm);
//! * [`RegimeShiftModel`] — piecewise-constant load regimes separated by
//!   changepoints (the abrupt shifts grid-workload mining studies report).
//!
//! Both synthesise offline traces that *violate* the stationarity
//! assumption, and both plug into the live engine as `Modulation`
//! implementations (see `gridstrat-sim`), so tuned timeouts can be
//! stress-tested against drifting grids end to end.

use crate::model::{WeekModel, PROBES_IN_FLIGHT};
use crate::trace::{ProbeRecord, ProbeStatus, TraceSet};
use crate::MAX_FAULT_RATIO;
use gridstrat_stats::rng::derived_rng;
use gridstrat_stats::{Distribution, LogNormal, Shifted};
use rand::Rng;

/// A weekly model whose intensity oscillates over wall-clock time.
///
/// At submission time `t`, the body latency is scaled by
/// `1 + amplitude·sin(2π·t/period)` and the fault ratio by the same factor
/// (clamped to `[0, 0.95]`) — a first-order model of the diurnal
/// load pattern every production grid exhibits.
#[derive(Debug, Clone)]
pub struct DiurnalModel {
    /// The stationary base model (its parameters are the daily average).
    pub base: WeekModel,
    /// Relative oscillation amplitude in `[0, 1)`.
    pub amplitude: f64,
    /// Oscillation period in seconds (86 400 for a daily cycle).
    pub period_s: f64,
}

impl DiurnalModel {
    /// Creates a diurnal wrapper around a base week.
    pub fn new(base: WeekModel, amplitude: f64, period_s: f64) -> Result<Self, String> {
        if !(amplitude.is_finite() && (0.0..1.0).contains(&amplitude)) {
            return Err(format!("amplitude must be in [0,1), got {amplitude}"));
        }
        if !(period_s.is_finite() && period_s > 0.0) {
            return Err(format!("period must be positive, got {period_s}"));
        }
        Ok(DiurnalModel {
            base,
            amplitude,
            period_s,
        })
    }

    /// The instantaneous intensity factor at time `t` (≥ `1 - amplitude`).
    pub fn intensity_at(&self, t: f64) -> f64 {
        1.0 + self.amplitude * (2.0 * std::f64::consts::PI * t / self.period_s).sin()
    }

    /// The instantaneous fault ratio at time `t` (clamped to the shared
    /// [`MAX_FAULT_RATIO`] ceiling, like every other fault-scaling path).
    pub fn rho_at(&self, t: f64) -> f64 {
        (self.base.rho * self.intensity_at(t)).clamp(0.0, MAX_FAULT_RATIO)
    }

    /// The frozen instantaneous law at time `t`: the base week with its
    /// queue-wait scaled by [`DiurnalModel::intensity_at`] and its fault
    /// ratio by the same factor — what an omniscient tuner would optimise
    /// against at that instant.
    pub fn model_at(&self, t: f64) -> WeekModel {
        let f = self.intensity_at(t);
        self.base.modulated(f, f)
    }

    /// Draws a raw latency for a job submitted at time `t`: the body scale
    /// (above the shift) is multiplied by the intensity factor. The result
    /// never drops below the hard floor `shift_s` — the floor models
    /// incompressible middleware delays (credential delegation,
    /// match-making, dispatch) that no amount of night-time calm removes,
    /// and the explicit clamp guards the `amplitude → 1` edge where the
    /// intensity factor approaches zero.
    pub fn sample_latency_at<R: Rng + ?Sized>(&self, rng: &mut R, t: f64) -> f64 {
        let intensity = self.intensity_at(t);
        if rng.gen::<f64>() < self.rho_at(t) {
            self.base.outlier_tail().sample(rng)
        } else {
            let ln = LogNormal::new(self.base.body_mu, self.base.body_sigma)
                .expect("validated base model");
            let body = Shifted::new(ln, self.base.shift_s).expect("validated base model");
            // scale the queue-wait component, keep the hard floor
            (self.base.shift_s + (body.sample(rng) - self.base.shift_s) * intensity)
                .max(self.base.shift_s)
        }
    }

    /// Synthesises a probe trace with the constant-in-flight methodology;
    /// unlike [`WeekModel::generate`] the latency law drifts with the
    /// submission instant.
    pub fn generate(&self, n: usize, seed: u64) -> TraceSet {
        assert!(n > 0, "cannot generate an empty trace");
        let mut rng = derived_rng(seed, 1);
        let slots = PROBES_IN_FLIGHT.min(n);
        let mut next_submit = vec![0.0f64; slots];
        let mut records = Vec::with_capacity(n);
        for i in 0..n {
            let slot = i % slots;
            let submitted_at = next_submit[slot];
            let raw = self.sample_latency_at(&mut rng, submitted_at);
            let (latency_s, status) = if raw >= self.base.threshold_s {
                (self.base.threshold_s, ProbeStatus::TimedOut)
            } else {
                (raw, ProbeStatus::Completed)
            };
            next_submit[slot] = submitted_at + latency_s;
            records.push(ProbeRecord {
                submitted_at,
                latency_s,
                status,
            });
        }
        records.sort_by(|a, b| {
            a.submitted_at
                .partial_cmp(&b.submitted_at)
                .expect("finite timestamps")
        });
        TraceSet::new(
            format!("{}-diurnal", self.base.name),
            self.base.threshold_s,
            records,
        )
        .expect("generated records are consistent by construction")
    }
}

/// A piecewise-constant load-regime model: the grid operates in regime
/// `i` between changepoints `t_i` and `t_{i+1}`, each regime scaling the
/// base week's queue-wait (`intensities[i]`) and fault ratio
/// (`fault_factors[i]`) by its own constant factor.
///
/// This is the changepoint structure workload-mining studies extract from
/// production grid logs (maintenance windows, conference deadlines, VO
/// production campaigns): unlike the smooth [`DiurnalModel`], regimes
/// switch abruptly — the hardest case for an online-adapting strategy,
/// whose whole observation window turns stale in one instant.
#[derive(Debug, Clone)]
pub struct RegimeShiftModel {
    /// The stationary base model every regime scales.
    pub base: WeekModel,
    /// Regime boundaries in seconds, strictly increasing and positive.
    /// Regime `0` covers `[0, changepoints[0])`, regime `i` covers
    /// `[changepoints[i-1], changepoints[i])`, the last regime is open.
    pub changepoints: Vec<f64>,
    /// Queue-wait scale factor of each regime
    /// (`changepoints.len() + 1` entries, all positive).
    pub intensities: Vec<f64>,
    /// Fault-ratio multiplier of each regime (same length, non-negative;
    /// the effective ratio is clamped to [`MAX_FAULT_RATIO`]).
    pub fault_factors: Vec<f64>,
}

impl RegimeShiftModel {
    /// Creates a regime-shift model; `intensities` and `fault_factors`
    /// must both hold exactly `changepoints.len() + 1` entries.
    pub fn new(
        base: WeekModel,
        changepoints: Vec<f64>,
        intensities: Vec<f64>,
        fault_factors: Vec<f64>,
    ) -> Result<Self, String> {
        if intensities.len() != changepoints.len() + 1 {
            return Err(format!(
                "need {} intensities for {} changepoints, got {}",
                changepoints.len() + 1,
                changepoints.len(),
                intensities.len()
            ));
        }
        if fault_factors.len() != intensities.len() {
            return Err(format!(
                "need {} fault factors, got {}",
                intensities.len(),
                fault_factors.len()
            ));
        }
        if changepoints.iter().any(|&t| !(t.is_finite() && t > 0.0))
            || changepoints.windows(2).any(|w| w[0] >= w[1])
        {
            return Err("changepoints must be positive, finite and strictly increasing".into());
        }
        if intensities.iter().any(|&f| !(f.is_finite() && f > 0.0)) {
            return Err("regime intensities must be positive and finite".into());
        }
        if fault_factors.iter().any(|&f| !(f.is_finite() && f >= 0.0)) {
            return Err("regime fault factors must be non-negative and finite".into());
        }
        Ok(RegimeShiftModel {
            base,
            changepoints,
            intensities,
            fault_factors,
        })
    }

    /// A two-regime convenience: `calm` until `t_shift`, `storm` after —
    /// the canonical "the grid degraded mid-campaign" experiment. The
    /// storm regime scales both queue-wait and fault ratio by `storm`.
    pub fn step(base: WeekModel, t_shift: f64, calm: f64, storm: f64) -> Result<Self, String> {
        RegimeShiftModel::new(base, vec![t_shift], vec![calm, storm], vec![calm, storm])
    }

    /// Index of the regime active at time `t` (times before 0 fall into
    /// regime 0).
    pub fn regime_at(&self, t: f64) -> usize {
        self.changepoints.partition_point(|&c| c <= t)
    }

    /// The queue-wait intensity factor at time `t`.
    pub fn intensity_at(&self, t: f64) -> f64 {
        self.intensities[self.regime_at(t)]
    }

    /// The fault-ratio multiplier at time `t`.
    pub fn fault_factor_at(&self, t: f64) -> f64 {
        self.fault_factors[self.regime_at(t)]
    }

    /// The instantaneous fault ratio at time `t` (clamped to
    /// [`MAX_FAULT_RATIO`]).
    pub fn rho_at(&self, t: f64) -> f64 {
        (self.base.rho * self.fault_factor_at(t)).clamp(0.0, MAX_FAULT_RATIO)
    }

    /// The frozen instantaneous law at time `t`.
    pub fn model_at(&self, t: f64) -> WeekModel {
        self.base
            .modulated(self.intensity_at(t), self.fault_factor_at(t))
    }

    /// Draws a raw latency for a job submitted at time `t`, scaling the
    /// queue-wait component by the active regime's intensity (floored at
    /// `shift_s`, like [`DiurnalModel::sample_latency_at`]).
    pub fn sample_latency_at<R: Rng + ?Sized>(&self, rng: &mut R, t: f64) -> f64 {
        let intensity = self.intensity_at(t);
        if rng.gen::<f64>() < self.rho_at(t) {
            self.base.outlier_tail().sample(rng)
        } else {
            let ln = LogNormal::new(self.base.body_mu, self.base.body_sigma)
                .expect("validated base model");
            let body = Shifted::new(ln, self.base.shift_s).expect("validated base model");
            (self.base.shift_s + (body.sample(rng) - self.base.shift_s) * intensity)
                .max(self.base.shift_s)
        }
    }

    /// Synthesises a probe trace with the constant-in-flight methodology,
    /// the latency law switching regimes at the configured changepoints.
    pub fn generate(&self, n: usize, seed: u64) -> TraceSet {
        assert!(n > 0, "cannot generate an empty trace");
        let mut rng = derived_rng(seed, 2);
        let slots = PROBES_IN_FLIGHT.min(n);
        let mut next_submit = vec![0.0f64; slots];
        let mut records = Vec::with_capacity(n);
        for i in 0..n {
            let slot = i % slots;
            let submitted_at = next_submit[slot];
            let raw = self.sample_latency_at(&mut rng, submitted_at);
            let (latency_s, status) = if raw >= self.base.threshold_s {
                (self.base.threshold_s, ProbeStatus::TimedOut)
            } else {
                (raw, ProbeStatus::Completed)
            };
            next_submit[slot] = submitted_at + latency_s;
            records.push(ProbeRecord {
                submitted_at,
                latency_s,
                status,
            });
        }
        records.sort_by(|a, b| {
            a.submitted_at
                .partial_cmp(&b.submitted_at)
                .expect("finite timestamps")
        });
        TraceSet::new(
            format!("{}-regimes", self.base.name),
            self.base.threshold_s,
            records,
        )
        .expect("generated records are consistent by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> WeekModel {
        WeekModel::calibrate("ns", 500.0, 600.0, 0.10, 150.0, 10_000.0).unwrap()
    }

    #[test]
    fn validation() {
        assert!(DiurnalModel::new(base(), 1.0, 86_400.0).is_err());
        assert!(DiurnalModel::new(base(), -0.1, 86_400.0).is_err());
        assert!(DiurnalModel::new(base(), 0.5, 0.0).is_err());
    }

    #[test]
    fn intensity_oscillates_around_one() {
        let m = DiurnalModel::new(base(), 0.4, 86_400.0).unwrap();
        assert!((m.intensity_at(0.0) - 1.0).abs() < 1e-12);
        assert!((m.intensity_at(21_600.0) - 1.4).abs() < 1e-9); // quarter period
        assert!((m.intensity_at(64_800.0) - 0.6).abs() < 1e-9); // three quarters
                                                                // mean over a full period is 1
        let mean: f64 = (0..1000)
            .map(|i| m.intensity_at(i as f64 * 86.4))
            .sum::<f64>()
            / 1000.0;
        assert!((mean - 1.0).abs() < 1e-3);
    }

    #[test]
    fn amplitude_zero_matches_stationary_statistics() {
        let m = DiurnalModel::new(base(), 0.0, 86_400.0).unwrap();
        let t = m.generate(4_000, 3);
        let s = base().generate(4_000, 3);
        // not identical records (different RNG stream) but same law
        assert!((t.body_mean() - s.body_mean()).abs() / s.body_mean() < 0.1);
        assert!((t.outlier_ratio() - s.outlier_ratio()).abs() < 0.03);
    }

    #[test]
    fn peak_phase_is_slower_than_trough_phase() {
        let m = DiurnalModel::new(base(), 0.6, 86_400.0).unwrap();
        let trace = m.generate(12_000, 5);
        // classify records by phase of their submission instant
        let (mut peak, mut trough) = (Vec::new(), Vec::new());
        for r in &trace.records {
            if r.is_outlier() {
                continue;
            }
            let phase = (r.submitted_at / 86_400.0).fract();
            if (0.1..0.4).contains(&phase) {
                peak.push(r.latency_s);
            } else if (0.6..0.9).contains(&phase) {
                trough.push(r.latency_s);
            }
        }
        assert!(peak.len() > 100 && trough.len() > 100);
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&peak) > 1.2 * mean(&trough),
            "peak {} vs trough {}",
            mean(&peak),
            mean(&trough)
        );
    }

    #[test]
    fn latencies_respect_the_floor() {
        let m = DiurnalModel::new(base(), 0.8, 10_000.0).unwrap();
        let t = m.generate(3_000, 7);
        for r in &t.records {
            assert!(r.latency_s >= 150.0 - 1e-9 || r.is_outlier());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let m = DiurnalModel::new(base(), 0.5, 86_400.0).unwrap();
        assert_eq!(m.generate(500, 11).records, m.generate(500, 11).records);
    }

    #[test]
    fn rho_at_clamps_to_shared_ceiling() {
        // a high-fault base pushed by the peak factor must saturate at the
        // shared constant, not a private 0.95 (or the drifted 0.9)
        let hot = WeekModel::calibrate("hot", 500.0, 600.0, 0.8, 150.0, 10_000.0).unwrap();
        let m = DiurnalModel::new(hot, 0.9, 86_400.0).unwrap();
        let peak = m.rho_at(21_600.0); // intensity 1.9 -> 0.8*1.9 = 1.52
        assert_eq!(peak, MAX_FAULT_RATIO);
        assert!(m.rho_at(64_800.0) < MAX_FAULT_RATIO); // trough: 0.08
    }

    #[test]
    fn modulated_latencies_never_drop_below_the_floor() {
        // property test over random (amplitude, period, t): the sampled
        // latency respects the hard floor even as amplitude -> 1 drives
        // the intensity factor toward zero
        let b = base();
        let shift = b.shift_s;
        let mut rng = derived_rng(0xF100, 0);
        for case in 0..200u64 {
            let amplitude = 0.999 * rng.gen::<f64>();
            let period = 60.0 + rng.gen::<f64>() * 200_000.0;
            let m = DiurnalModel::new(b.clone(), amplitude, period).unwrap();
            for _ in 0..25 {
                let t = rng.gen::<f64>() * 10.0 * period;
                assert!(m.intensity_at(t) > 0.0, "case {case}: intensity sign");
                let x = m.sample_latency_at(&mut rng, t);
                assert!(
                    x >= shift,
                    "case {case}: latency {x} below floor {shift} \
                     (amplitude {amplitude}, period {period}, t {t})"
                );
            }
        }
    }

    #[test]
    fn model_at_matches_pointwise_scaling() {
        let m = DiurnalModel::new(base(), 0.6, 86_400.0).unwrap();
        let t = 21_600.0; // quarter period: intensity 1.6
        let law = m.model_at(t);
        assert!((law.rho - m.rho_at(t)).abs() < 1e-12);
        // body mean above the shift scales by the intensity factor
        let want = law.shift_s + (base().body_mean() - base().shift_s) * 1.6;
        assert!((law.body_mean() - want).abs() / want < 1e-9);
        assert_eq!(law.shift_s, base().shift_s, "the floor must not scale");
    }

    // --- regime shifts -------------------------------------------------------

    #[test]
    fn regime_shift_validation() {
        let b = base();
        assert!(RegimeShiftModel::new(b.clone(), vec![100.0], vec![1.0], vec![1.0, 2.0]).is_err());
        assert!(RegimeShiftModel::new(b.clone(), vec![100.0], vec![1.0, 2.0], vec![1.0]).is_err());
        assert!(RegimeShiftModel::new(
            b.clone(),
            vec![200.0, 100.0],
            vec![1.0, 1.0, 1.0],
            vec![1.0, 1.0, 1.0]
        )
        .is_err());
        assert!(
            RegimeShiftModel::new(b.clone(), vec![100.0], vec![1.0, 0.0], vec![1.0, 1.0]).is_err()
        );
        assert!(RegimeShiftModel::step(b, 3_600.0, 1.0, 2.5).is_ok());
    }

    #[test]
    fn regime_lookup_is_piecewise_constant() {
        let m = RegimeShiftModel::new(
            base(),
            vec![1_000.0, 5_000.0],
            vec![0.5, 1.0, 2.0],
            vec![1.0, 1.0, 3.0],
        )
        .unwrap();
        assert_eq!(m.regime_at(0.0), 0);
        assert_eq!(m.regime_at(999.9), 0);
        assert_eq!(m.regime_at(1_000.0), 1);
        assert_eq!(m.regime_at(4_999.0), 1);
        assert_eq!(m.regime_at(5_000.0), 2);
        assert!((m.intensity_at(0.0) - 0.5).abs() < 1e-12);
        assert!((m.intensity_at(6_000.0) - 2.0).abs() < 1e-12);
        assert!((m.fault_factor_at(6_000.0) - 3.0).abs() < 1e-12);
        // the clamp goes through the shared ceiling
        let hot = WeekModel::calibrate("hot", 500.0, 600.0, 0.5, 150.0, 10_000.0).unwrap();
        let m = RegimeShiftModel::step(hot, 100.0, 1.0, 10.0).unwrap();
        assert_eq!(m.rho_at(200.0), MAX_FAULT_RATIO);
    }

    #[test]
    fn regime_storm_is_slower_than_calm() {
        let m = RegimeShiftModel::step(base(), 40_000.0, 1.0, 2.0).unwrap();
        let trace = m.generate(8_000, 9);
        let (mut calm, mut storm) = (Vec::new(), Vec::new());
        for r in &trace.records {
            if r.is_outlier() {
                continue;
            }
            if r.submitted_at < 40_000.0 {
                calm.push(r.latency_s);
            } else {
                storm.push(r.latency_s);
            }
        }
        assert!(calm.len() > 200 && storm.len() > 200);
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&storm) > 1.4 * mean(&calm),
            "storm {} vs calm {}",
            mean(&storm),
            mean(&calm)
        );
        // determinism
        assert_eq!(m.generate(300, 4).records, m.generate(300, 4).records);
    }
}
