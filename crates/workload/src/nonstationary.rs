//! Non-stationary latency models.
//!
//! The paper stresses that production grids exhibit “high and
//! non-stationary workloads” (§1) yet its analysis treats each week as one
//! stationary law. This module supplies the missing ingredient for
//! studying that approximation: a [`DiurnalModel`] whose latency body and
//! fault ratio oscillate with a configurable period (daytime congestion vs
//! night-time calm), so one can generate traces that *violate* the
//! stationarity assumption and measure how much tuned timeouts degrade.

use crate::model::{WeekModel, PROBES_IN_FLIGHT};
use crate::trace::{ProbeRecord, ProbeStatus, TraceSet};
use gridstrat_stats::rng::derived_rng;
use gridstrat_stats::{Distribution, LogNormal, Shifted};
use rand::Rng;

/// A weekly model whose intensity oscillates over wall-clock time.
///
/// At submission time `t`, the body latency is scaled by
/// `1 + amplitude·sin(2π·t/period)` and the fault ratio by the same factor
/// (clamped to `[0, 0.95]`) — a first-order model of the diurnal
/// load pattern every production grid exhibits.
#[derive(Debug, Clone)]
pub struct DiurnalModel {
    /// The stationary base model (its parameters are the daily average).
    pub base: WeekModel,
    /// Relative oscillation amplitude in `[0, 1)`.
    pub amplitude: f64,
    /// Oscillation period in seconds (86 400 for a daily cycle).
    pub period_s: f64,
}

impl DiurnalModel {
    /// Creates a diurnal wrapper around a base week.
    pub fn new(base: WeekModel, amplitude: f64, period_s: f64) -> Result<Self, String> {
        if !(amplitude.is_finite() && (0.0..1.0).contains(&amplitude)) {
            return Err(format!("amplitude must be in [0,1), got {amplitude}"));
        }
        if !(period_s.is_finite() && period_s > 0.0) {
            return Err(format!("period must be positive, got {period_s}"));
        }
        Ok(DiurnalModel {
            base,
            amplitude,
            period_s,
        })
    }

    /// The instantaneous intensity factor at time `t` (≥ `1 - amplitude`).
    pub fn intensity_at(&self, t: f64) -> f64 {
        1.0 + self.amplitude * (2.0 * std::f64::consts::PI * t / self.period_s).sin()
    }

    /// The instantaneous fault ratio at time `t`.
    pub fn rho_at(&self, t: f64) -> f64 {
        (self.base.rho * self.intensity_at(t)).clamp(0.0, 0.95)
    }

    /// Draws a raw latency for a job submitted at time `t`: the body scale
    /// (above the shift) is multiplied by the intensity factor.
    pub fn sample_latency_at<R: Rng + ?Sized>(&self, rng: &mut R, t: f64) -> f64 {
        let intensity = self.intensity_at(t);
        if rng.gen::<f64>() < self.rho_at(t) {
            self.base.outlier_tail().sample(rng)
        } else {
            let ln = LogNormal::new(self.base.body_mu, self.base.body_sigma)
                .expect("validated base model");
            let body = Shifted::new(ln, self.base.shift_s).expect("validated base model");
            // scale the queue-wait component, keep the hard floor
            self.base.shift_s + (body.sample(rng) - self.base.shift_s) * intensity
        }
    }

    /// Synthesises a probe trace with the constant-in-flight methodology;
    /// unlike [`WeekModel::generate`] the latency law drifts with the
    /// submission instant.
    pub fn generate(&self, n: usize, seed: u64) -> TraceSet {
        assert!(n > 0, "cannot generate an empty trace");
        let mut rng = derived_rng(seed, 1);
        let slots = PROBES_IN_FLIGHT.min(n);
        let mut next_submit = vec![0.0f64; slots];
        let mut records = Vec::with_capacity(n);
        for i in 0..n {
            let slot = i % slots;
            let submitted_at = next_submit[slot];
            let raw = self.sample_latency_at(&mut rng, submitted_at);
            let (latency_s, status) = if raw >= self.base.threshold_s {
                (self.base.threshold_s, ProbeStatus::TimedOut)
            } else {
                (raw, ProbeStatus::Completed)
            };
            next_submit[slot] = submitted_at + latency_s;
            records.push(ProbeRecord {
                submitted_at,
                latency_s,
                status,
            });
        }
        records.sort_by(|a, b| {
            a.submitted_at
                .partial_cmp(&b.submitted_at)
                .expect("finite timestamps")
        });
        TraceSet::new(
            format!("{}-diurnal", self.base.name),
            self.base.threshold_s,
            records,
        )
        .expect("generated records are consistent by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> WeekModel {
        WeekModel::calibrate("ns", 500.0, 600.0, 0.10, 150.0, 10_000.0).unwrap()
    }

    #[test]
    fn validation() {
        assert!(DiurnalModel::new(base(), 1.0, 86_400.0).is_err());
        assert!(DiurnalModel::new(base(), -0.1, 86_400.0).is_err());
        assert!(DiurnalModel::new(base(), 0.5, 0.0).is_err());
    }

    #[test]
    fn intensity_oscillates_around_one() {
        let m = DiurnalModel::new(base(), 0.4, 86_400.0).unwrap();
        assert!((m.intensity_at(0.0) - 1.0).abs() < 1e-12);
        assert!((m.intensity_at(21_600.0) - 1.4).abs() < 1e-9); // quarter period
        assert!((m.intensity_at(64_800.0) - 0.6).abs() < 1e-9); // three quarters
                                                                // mean over a full period is 1
        let mean: f64 = (0..1000)
            .map(|i| m.intensity_at(i as f64 * 86.4))
            .sum::<f64>()
            / 1000.0;
        assert!((mean - 1.0).abs() < 1e-3);
    }

    #[test]
    fn amplitude_zero_matches_stationary_statistics() {
        let m = DiurnalModel::new(base(), 0.0, 86_400.0).unwrap();
        let t = m.generate(4_000, 3);
        let s = base().generate(4_000, 3);
        // not identical records (different RNG stream) but same law
        assert!((t.body_mean() - s.body_mean()).abs() / s.body_mean() < 0.1);
        assert!((t.outlier_ratio() - s.outlier_ratio()).abs() < 0.03);
    }

    #[test]
    fn peak_phase_is_slower_than_trough_phase() {
        let m = DiurnalModel::new(base(), 0.6, 86_400.0).unwrap();
        let trace = m.generate(12_000, 5);
        // classify records by phase of their submission instant
        let (mut peak, mut trough) = (Vec::new(), Vec::new());
        for r in &trace.records {
            if r.is_outlier() {
                continue;
            }
            let phase = (r.submitted_at / 86_400.0).fract();
            if (0.1..0.4).contains(&phase) {
                peak.push(r.latency_s);
            } else if (0.6..0.9).contains(&phase) {
                trough.push(r.latency_s);
            }
        }
        assert!(peak.len() > 100 && trough.len() > 100);
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&peak) > 1.2 * mean(&trough),
            "peak {} vs trough {}",
            mean(&peak),
            mean(&trough)
        );
    }

    #[test]
    fn latencies_respect_the_floor() {
        let m = DiurnalModel::new(base(), 0.8, 10_000.0).unwrap();
        let t = m.generate(3_000, 7);
        for r in &t.records {
            assert!(r.latency_s >= 150.0 - 1e-9 || r.is_outlier());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let m = DiurnalModel::new(base(), 0.5, 86_400.0).unwrap();
        assert_eq!(m.generate(500, 11).records, m.generate(500, 11).records);
    }
}
