//! The 13 reference datasets, calibrated to the paper's Table 1.
//!
//! The paper exploits 12 trace sets (10 893 probes total): `2006-IX`
//! (September 2006) and 11 one-week traces from late 2007 / early 2008,
//! plus the union row `2007/08`. Per week, Table 1 reports the body mean
//! (“mean < 10⁵”), a censored lower bound of the full mean (“mean with
//! 10⁵”) and the body standard deviation `σ_R`. The outlier ratio is not
//! printed but is implied by the two means:
//!
//! ```text
//! mean_with = (1-ρ)·mean_body + ρ·10⁴  ⇒  ρ = (mean_with - mean_body)/(10⁴ - mean_body)
//! ```
//!
//! which lands on conspicuously round values (5%, 17%, 24%, 33%, …) — these
//! are used as calibration targets. Probe counts are chosen to total 10 893
//! (993 for `2006-IX`, 900 per weekly trace).

use crate::model::WeekModel;
use crate::trace::TraceSet;
use crate::CENSOR_THRESHOLD_S;
use gridstrat_stats::rng::derive_seed;

/// Calibration targets for one dataset (inputs of [`WeekModel::calibrate`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeekTargets {
    /// Body (non-outlier) latency mean in seconds.
    pub body_mean: f64,
    /// Body latency standard deviation in seconds.
    pub body_std: f64,
    /// Outlier ratio implied by Table 1.
    pub rho: f64,
    /// Number of probes to synthesise.
    pub n_probes: usize,
}

/// One row of the paper's Table 1, kept verbatim for paper-vs-measured
/// comparisons in benches and EXPERIMENTS.md.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperTable1Row {
    /// Dataset name as printed in the paper.
    pub week: &'static str,
    /// “mean < 10⁵” column (body mean), seconds.
    pub mean_body: f64,
    /// “mean with 10⁵” column (censored lower bound), seconds.
    pub mean_censored: f64,
    /// Optimal single-resubmission expectation `E_J`, seconds.
    pub e_j: f64,
    /// Body standard deviation `σ_R`, seconds.
    pub sigma_r: f64,
    /// Single-resubmission `σ_J`, seconds.
    pub sigma_j: f64,
}

/// The paper's Table 1, verbatim.
pub const PAPER_TABLE1: [PaperTable1Row; 13] = [
    PaperTable1Row {
        week: "2006-IX",
        mean_body: 570.0,
        mean_censored: 1042.0,
        e_j: 471.0,
        sigma_r: 886.0,
        sigma_j: 331.0,
    },
    PaperTable1Row {
        week: "2007/08",
        mean_body: 469.0,
        mean_censored: 2089.0,
        e_j: 500.0,
        sigma_r: 723.0,
        sigma_j: 358.0,
    },
    PaperTable1Row {
        week: "2007-36",
        mean_body: 446.0,
        mean_censored: 2739.0,
        e_j: 510.0,
        sigma_r: 748.0,
        sigma_j: 370.0,
    },
    PaperTable1Row {
        week: "2007-37",
        mean_body: 506.0,
        mean_censored: 3639.0,
        e_j: 617.0,
        sigma_r: 848.0,
        sigma_j: 486.0,
    },
    PaperTable1Row {
        week: "2007-38",
        mean_body: 447.0,
        mean_censored: 2739.0,
        e_j: 531.0,
        sigma_r: 682.0,
        sigma_j: 399.0,
    },
    PaperTable1Row {
        week: "2007-39",
        mean_body: 489.0,
        mean_censored: 3533.0,
        e_j: 596.0,
        sigma_r: 741.0,
        sigma_j: 482.0,
    },
    PaperTable1Row {
        week: "2007-50",
        mean_body: 660.0,
        mean_censored: 2341.0,
        e_j: 628.0,
        sigma_r: 1046.0,
        sigma_j: 475.0,
    },
    PaperTable1Row {
        week: "2007-51",
        mean_body: 478.0,
        mean_censored: 1716.0,
        e_j: 517.0,
        sigma_r: 510.0,
        sigma_j: 353.0,
    },
    PaperTable1Row {
        week: "2007-52",
        mean_body: 443.0,
        mean_censored: 1685.0,
        e_j: 476.0,
        sigma_r: 582.0,
        sigma_j: 334.0,
    },
    PaperTable1Row {
        week: "2007-53",
        mean_body: 449.0,
        mean_censored: 1977.0,
        e_j: 482.0,
        sigma_r: 678.0,
        sigma_j: 330.0,
    },
    PaperTable1Row {
        week: "2008-01",
        mean_body: 434.0,
        mean_censored: 1678.0,
        e_j: 499.0,
        sigma_r: 317.0,
        sigma_j: 339.0,
    },
    PaperTable1Row {
        week: "2008-02",
        mean_body: 418.0,
        mean_censored: 1568.0,
        e_j: 441.0,
        sigma_r: 547.0,
        sigma_j: 278.0,
    },
    PaperTable1Row {
        week: "2008-03",
        mean_body: 538.0,
        mean_censored: 1484.0,
        e_j: 419.0,
        sigma_r: 1196.0,
        sigma_j: 269.0,
    },
];

/// Hard minimum latency used for every week's body model (seconds).
///
/// A couple of minutes of fixed overhead (delegation, match-making,
/// dispatch, batch-queue polling) are incompressible on EGEE-class
/// middleware; the paper's own Table 4 shows `E_J` saturating at ≈ 152 s
/// even with 100-fold submission, pinning the latency floor near 150 s.
pub const DEFAULT_SHIFT_S: f64 = 150.0;

/// Identifier of one of the 13 reference datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(non_camel_case_types)]
pub enum WeekId {
    /// September 2006 trace (993 probes).
    W2006Ix,
    /// Union of the 11 weekly traces (the paper's `2007/08` row).
    Union0708,
    /// Week 36 of 2007.
    W2007_36,
    /// Week 37 of 2007.
    W2007_37,
    /// Week 38 of 2007.
    W2007_38,
    /// Week 39 of 2007.
    W2007_39,
    /// Week 50 of 2007.
    W2007_50,
    /// Week 51 of 2007.
    W2007_51,
    /// Week 52 of 2007.
    W2007_52,
    /// Week 53 of 2007 (the ISO-53rd week spanning new year).
    W2007_53,
    /// Week 1 of 2008.
    W2008_01,
    /// Week 2 of 2008.
    W2008_02,
    /// Week 3 of 2008.
    W2008_03,
}

impl WeekId {
    /// All 13 datasets, in the paper's Table 1 order.
    pub const ALL: [WeekId; 13] = [
        WeekId::W2006Ix,
        WeekId::Union0708,
        WeekId::W2007_36,
        WeekId::W2007_37,
        WeekId::W2007_38,
        WeekId::W2007_39,
        WeekId::W2007_50,
        WeekId::W2007_51,
        WeekId::W2007_52,
        WeekId::W2007_53,
        WeekId::W2008_01,
        WeekId::W2008_02,
        WeekId::W2008_03,
    ];

    /// The 11 weekly traces (excluding `2006-IX` and the union), in
    /// chronological order — the order used by Table 6's
    /// “previous week” protocol.
    pub const WEEKLY: [WeekId; 11] = [
        WeekId::W2007_36,
        WeekId::W2007_37,
        WeekId::W2007_38,
        WeekId::W2007_39,
        WeekId::W2007_50,
        WeekId::W2007_51,
        WeekId::W2007_52,
        WeekId::W2007_53,
        WeekId::W2008_01,
        WeekId::W2008_02,
        WeekId::W2008_03,
    ];

    /// Dataset name as printed in the paper.
    pub fn name(self) -> &'static str {
        match self {
            WeekId::W2006Ix => "2006-IX",
            WeekId::Union0708 => "2007/08",
            WeekId::W2007_36 => "2007-36",
            WeekId::W2007_37 => "2007-37",
            WeekId::W2007_38 => "2007-38",
            WeekId::W2007_39 => "2007-39",
            WeekId::W2007_50 => "2007-50",
            WeekId::W2007_51 => "2007-51",
            WeekId::W2007_52 => "2007-52",
            WeekId::W2007_53 => "2007-53",
            WeekId::W2008_01 => "2008-01",
            WeekId::W2008_02 => "2008-02",
            WeekId::W2008_03 => "2008-03",
        }
    }

    /// Index into [`PAPER_TABLE1`].
    pub fn table1_index(self) -> usize {
        WeekId::ALL
            .iter()
            .position(|&w| w == self)
            .expect("ALL is exhaustive")
    }

    /// The paper's Table 1 row for this dataset.
    pub fn paper_row(self) -> PaperTable1Row {
        PAPER_TABLE1[self.table1_index()]
    }

    /// Calibration targets derived from Table 1 (see module docs for the
    /// `ρ` derivation).
    pub fn targets(self) -> WeekTargets {
        let row = self.paper_row();
        let rho = (row.mean_censored - row.mean_body) / (CENSOR_THRESHOLD_S - row.mean_body);
        // round to the percent grid the authors evidently used
        let rho = (rho * 100.0).round() / 100.0;
        let n_probes = match self {
            WeekId::W2006Ix => 993,
            WeekId::Union0708 => 9_900,
            _ => 900,
        };
        WeekTargets {
            body_mean: row.mean_body,
            body_std: row.sigma_r,
            rho,
            n_probes,
        }
    }

    /// Calibrated generative model for this dataset.
    ///
    /// The union dataset has no model of its own (it is a concatenation);
    /// for convenience this returns a model calibrated to its aggregate
    /// Table 1 row, which is useful for quick experiments but is *not* what
    /// [`WeekId::generate`] uses.
    pub fn model(self) -> WeekModel {
        let t = self.targets();
        WeekModel::calibrate(
            self.name(),
            t.body_mean,
            t.body_std,
            t.rho,
            DEFAULT_SHIFT_S,
            CENSOR_THRESHOLD_S,
        )
        .expect("Table 1 targets are always calibratable")
    }

    /// Synthesises this dataset's trace deterministically from a master
    /// seed. The union trace is the concatenation of the 11 weekly traces
    /// generated from the *same* master seed, so union and weekly rows are
    /// mutually consistent, as in the paper.
    pub fn generate(self, master_seed: u64) -> TraceSet {
        match self {
            WeekId::Union0708 => {
                let parts: Vec<TraceSet> = WeekId::WEEKLY
                    .iter()
                    .map(|w| w.generate(master_seed))
                    .collect();
                let refs: Vec<&TraceSet> = parts.iter().collect();
                TraceSet::union("2007/08", &refs).expect("weekly traces are non-empty")
            }
            _ => {
                let t = self.targets();
                let seed = derive_seed(master_seed, self.table1_index() as u64);
                self.model().generate(t.n_probes, seed)
            }
        }
    }
}

impl std::fmt::Display for WeekId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_thirteen_named_and_ordered() {
        assert_eq!(WeekId::ALL.len(), 13);
        assert_eq!(WeekId::ALL[0].name(), "2006-IX");
        assert_eq!(WeekId::ALL[1].name(), "2007/08");
        assert_eq!(WeekId::ALL[12].name(), "2008-03");
        for (i, w) in WeekId::ALL.iter().enumerate() {
            assert_eq!(w.table1_index(), i);
            assert_eq!(w.paper_row().week, w.name());
        }
    }

    #[test]
    fn derived_rho_values_are_round() {
        let expect = [
            ("2006-IX", 0.05),
            ("2007/08", 0.17),
            ("2007-36", 0.24),
            ("2007-37", 0.33),
            ("2007-38", 0.24),
            ("2007-39", 0.32),
            ("2007-50", 0.18),
            ("2007-51", 0.13),
            ("2007-52", 0.13),
            ("2007-53", 0.16),
            ("2008-01", 0.13),
            ("2008-02", 0.12),
            ("2008-03", 0.10),
        ];
        for (w, (name, rho)) in WeekId::ALL.iter().zip(expect) {
            assert_eq!(w.name(), name);
            assert!(
                (w.targets().rho - rho).abs() < 1e-9,
                "{name}: rho {} != {rho}",
                w.targets().rho
            );
        }
    }

    #[test]
    fn probe_counts_total_paper_figure() {
        // 10 893 probes across the 12 distinct traces (union not re-counted)
        let total: usize = WeekId::ALL
            .iter()
            .filter(|w| **w != WeekId::Union0708)
            .map(|w| w.targets().n_probes)
            .sum();
        assert_eq!(total, 10_893);
    }

    #[test]
    fn generation_deterministic_and_right_sized() {
        let a = WeekId::W2007_51.generate(99);
        let b = WeekId::W2007_51.generate(99);
        assert_eq!(a.records, b.records);
        assert_eq!(a.len(), 900);
        assert_eq!(a.name, "2007-51");
    }

    #[test]
    fn union_is_concatenation_of_weeklies() {
        let u = WeekId::Union0708.generate(5);
        assert_eq!(u.len(), 9_900);
        let w36 = WeekId::W2007_36.generate(5);
        // first 900 records of the union are exactly week 36's records
        assert_eq!(&u.records[..900], &w36.records[..]);
    }

    #[test]
    fn generated_weeks_roughly_match_targets() {
        // Per-week samples are small (≈600–900 body draws of a heavy-tailed
        // law), so individual means wobble by ±20%; assert per-week sanity
        // loosely and the cross-week average tightly.
        let mut rel_err_sum = 0.0;
        for w in WeekId::WEEKLY {
            let t = w.generate(0xE6EE);
            let tgt = w.targets();
            let mean = t.body_mean();
            let rel = (mean - tgt.body_mean) / tgt.body_mean;
            assert!(
                rel.abs() < 0.30,
                "{w}: mean {mean} vs target {}",
                tgt.body_mean
            );
            assert!(
                (t.outlier_ratio() - tgt.rho).abs() < 0.05,
                "{w}: rho {} vs target {}",
                t.outlier_ratio(),
                tgt.rho
            );
            rel_err_sum += rel;
        }
        assert!(
            (rel_err_sum / 11.0).abs() < 0.08,
            "weekly means biased: average relative error {}",
            rel_err_sum / 11.0
        );
    }

    #[test]
    fn distinct_weeks_get_distinct_traces() {
        let a = WeekId::W2007_36.generate(1);
        let b = WeekId::W2007_38.generate(1);
        // same targets (446/748 vs 447/682) but different seeds and params
        assert_ne!(a.records, b.records);
    }
}
