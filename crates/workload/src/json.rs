//! Minimal JSON reader/writer for the trace archive formats.
//!
//! The build environment has no crates.io access, so instead of `serde`
//! the archive round-trips ([`crate::TraceSet::to_json`],
//! [`crate::WeekModel::to_json`]) are hand-rolled on top of this module: a
//! by-the-grammar recursive-descent parser into a [`JsonValue`] tree plus
//! string escaping for the writer side. Numbers are written with Rust's
//! shortest-round-trip `Display`, so `f64` fields survive a round trip
//! bit-exactly.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Number(f64),
    /// A string (unescaped).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses a complete JSON document (trailing whitespace allowed).
    pub fn parse(s: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Required object field, with a descriptive error.
    pub fn field(&self, key: &str) -> Result<&JsonValue, String> {
        self.get(key)
            .ok_or_else(|| format!("missing field `{key}`"))
    }

    /// The number inside, if any.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The string inside, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The array inside, if any.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(v) => Some(v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}, found `{}`",
                b as char,
                self.pos,
                self.peek().map(|c| c as char).unwrap_or('∅')
            ))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let code = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&code) {
                                // high surrogate: must be followed by \uDC00–\uDFFF
                                if self.bytes.get(self.pos) != Some(&b'\\')
                                    || self.bytes.get(self.pos + 1) != Some(&b'u')
                                {
                                    return Err(format!("unpaired surrogate \\u{code:04x}"));
                                }
                                self.pos += 2;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(format!("invalid low surrogate \\u{low:04x}"));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| format!("invalid \\u pair {combined:#x}"))?
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| format!("invalid \\u{code:04x}"))?
                            };
                            out.push(ch);
                        }
                        other => return Err(format!("bad escape `\\{}`", other as char)),
                    }
                }
                Some(_) => {
                    // consume one UTF-8 scalar
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let ch = s.chars().next().ok_or("unterminated string")?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    /// Reads exactly four hex digits (the payload of a `\u` escape).
    fn hex4(&mut self) -> Result<u32, String> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or("truncated \\u escape")?;
        let code = u32::from_str_radix(std::str::from_utf8(hex).map_err(|e| e.to_string())?, 16)
            .map_err(|e| e.to_string())?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number slice");
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|e| format!("bad number `{text}`: {e}"))
    }
}

/// Escapes a string for embedding in a JSON document (without the quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(
            JsonValue::parse("-1.5e3").unwrap(),
            JsonValue::Number(-1500.0)
        );
        assert_eq!(
            JsonValue::parse(r#""a\"b\nc""#).unwrap(),
            JsonValue::String("a\"b\nc".to_string())
        );
    }

    #[test]
    fn parses_nested_structure() {
        let v = JsonValue::parse(r#"{"a": [1, 2, {"b": "x"}], "c": null}"#).unwrap();
        let arr = v.field("a").unwrap().as_array().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[1].as_f64(), Some(2.0));
        assert_eq!(arr[2].field("b").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("c"), Some(&JsonValue::Null));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1, 2,]").is_err());
        assert!(JsonValue::parse(r#"{"a" 1}"#).is_err());
        assert!(JsonValue::parse("1 2").is_err());
        assert!(JsonValue::parse("\"unterminated").is_err());
        assert!(JsonValue::parse("nul").is_err());
    }

    #[test]
    fn escape_round_trips_through_parser() {
        let nasty = "line1\nline2\t\"quoted\" back\\slash é✓";
        let doc = format!("\"{}\"", escape(nasty));
        assert_eq!(JsonValue::parse(&doc).unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn numbers_round_trip_exactly_via_display() {
        for x in [0.1f64, 1.0 / 3.0, 123456.789, 1e-300, -0.0, 570.0] {
            let doc = format!("{x}");
            let back = JsonValue::parse(&doc).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} did not round-trip");
        }
    }

    #[test]
    fn unicode_escape() {
        assert_eq!(JsonValue::parse(r#""éA""#).unwrap().as_str(), Some("éA"));
        // non-BMP characters arrive as surrogate pairs from ASCII-only
        // serializers (e.g. python json.dumps with ensure_ascii=True)
        assert_eq!(
            JsonValue::parse(r#""\ud83d\ude00""#).unwrap().as_str(),
            Some("😀")
        );
        assert!(
            JsonValue::parse(r#""\ud83dX""#).is_err(),
            "unpaired high surrogate must be rejected"
        );
        assert!(
            JsonValue::parse(r#""\ud83dA""#).is_err(),
            "non-surrogate low half must be rejected"
        );
        assert!(
            JsonValue::parse(r#""\udc00""#).is_err(),
            "lone low surrogate must be rejected"
        );
    }
}
