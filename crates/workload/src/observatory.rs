//! Grid-Observatory-style plain-text trace logs.
//!
//! The paper (§3.2) plans systematic trace collection through the Grid
//! Observatory, which archives probe logs as flat text files. This module
//! defines a simple line-oriented format of that style and a strict parser,
//! so traces can be exchanged with external tooling:
//!
//! ```text
//! # gridstrat-observatory v1
//! # name: 2007-36
//! # threshold_s: 10000
//! # columns: submitted_at latency_s status
//! 0 412.7 OK
//! 3.2 10000 TIMEOUT
//! ```

use crate::trace::{ProbeRecord, ProbeStatus, TraceError, TraceSet};

/// Format magic header line.
pub const MAGIC: &str = "# gridstrat-observatory v1";

/// Serialises a trace to the observatory text format.
pub fn write_observatory(trace: &TraceSet) -> String {
    let mut out = String::with_capacity(trace.records.len() * 24 + 128);
    out.push_str(MAGIC);
    out.push('\n');
    out.push_str(&format!("# name: {}\n", trace.name));
    out.push_str(&format!("# threshold_s: {}\n", trace.threshold_s));
    out.push_str("# columns: submitted_at latency_s status\n");
    for r in &trace.records {
        let status = match r.status {
            ProbeStatus::Completed => "OK",
            ProbeStatus::TimedOut => "TIMEOUT",
        };
        out.push_str(&format!("{} {} {}\n", r.submitted_at, r.latency_s, status));
    }
    out
}

/// Parses the observatory text format back into a validated [`TraceSet`].
pub fn parse_observatory(text: &str) -> Result<TraceSet, TraceError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, l)) if l.trim() == MAGIC => {}
        _ => return Err(TraceError::Parse(1, format!("missing magic `{MAGIC}`"))),
    }

    let mut name: Option<String> = None;
    let mut threshold: Option<f64> = None;
    let mut records = Vec::new();

    for (idx, line) in lines {
        let lineno = idx + 1;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim();
            if let Some(v) = rest.strip_prefix("name:") {
                name = Some(v.trim().to_string());
            } else if let Some(v) = rest.strip_prefix("threshold_s:") {
                threshold = Some(
                    v.trim()
                        .parse::<f64>()
                        .map_err(|e| TraceError::Parse(lineno, e.to_string()))?,
                );
            }
            // other comments are ignored
            continue;
        }
        let mut it = line.split_whitespace();
        let submitted_at: f64 = it
            .next()
            .ok_or_else(|| TraceError::Parse(lineno, "missing submitted_at".into()))?
            .parse()
            .map_err(|e: std::num::ParseFloatError| TraceError::Parse(lineno, e.to_string()))?;
        let latency_s: f64 = it
            .next()
            .ok_or_else(|| TraceError::Parse(lineno, "missing latency".into()))?
            .parse()
            .map_err(|e: std::num::ParseFloatError| TraceError::Parse(lineno, e.to_string()))?;
        let status = match it.next() {
            Some("OK") => ProbeStatus::Completed,
            Some("TIMEOUT") => ProbeStatus::TimedOut,
            Some(other) => return Err(TraceError::Parse(lineno, format!("bad status `{other}`"))),
            None => return Err(TraceError::Parse(lineno, "missing status".into())),
        };
        if it.next().is_some() {
            return Err(TraceError::Parse(lineno, "trailing fields".into()));
        }
        records.push(ProbeRecord {
            submitted_at,
            latency_s,
            status,
        });
    }

    let name = name.ok_or_else(|| TraceError::Parse(0, "missing `# name:` header".into()))?;
    let threshold =
        threshold.ok_or_else(|| TraceError::Parse(0, "missing `# threshold_s:` header".into()))?;
    TraceSet::new(name, threshold, records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weeks::WeekId;

    #[test]
    fn roundtrip_preserves_records() {
        let t = WeekId::W2007_52.generate(17);
        let text = write_observatory(&t);
        let back = parse_observatory(&text).unwrap();
        assert_eq!(back.name, t.name);
        assert_eq!(back.threshold_s, t.threshold_s);
        assert_eq!(back.len(), t.len());
        for (a, b) in back.records.iter().zip(&t.records) {
            assert!((a.submitted_at - b.submitted_at).abs() < 1e-9);
            assert!((a.latency_s - b.latency_s).abs() < 1e-9);
            assert_eq!(a.status, b.status);
        }
    }

    #[test]
    fn rejects_missing_magic() {
        assert!(matches!(
            parse_observatory("nope\n"),
            Err(TraceError::Parse(1, _))
        ));
    }

    #[test]
    fn rejects_missing_headers() {
        let text = format!("{MAGIC}\n1 2 OK\n");
        assert!(parse_observatory(&text).is_err());
        let text = format!("{MAGIC}\n# name: x\n1 2 OK\n");
        assert!(parse_observatory(&text).is_err()); // missing threshold
    }

    #[test]
    fn rejects_bad_lines() {
        let head = format!("{MAGIC}\n# name: x\n# threshold_s: 100\n");
        for bad in ["abc 2 OK", "1 abc OK", "1 2 WAT", "1 2", "1 2 OK extra"] {
            let text = format!("{head}{bad}\n");
            assert!(
                matches!(parse_observatory(&text), Err(TraceError::Parse(_, _))),
                "should reject `{bad}`"
            );
        }
    }

    #[test]
    fn tolerates_blank_lines_and_comments() {
        let text = format!(
            "{MAGIC}\n# name: mini\n# threshold_s: 100\n# a comment\n\n1 2 OK\n\n3 100 TIMEOUT\n"
        );
        let t = parse_observatory(&text).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.n_outliers(), 1);
    }

    #[test]
    fn validates_semantics_after_parse() {
        // latency below threshold but marked TIMEOUT must be rejected by
        // TraceSet validation
        let text = format!("{MAGIC}\n# name: x\n# threshold_s: 100\n1 50 TIMEOUT\n");
        assert!(matches!(
            parse_observatory(&text),
            Err(TraceError::InvalidRecord(0))
        ));
    }
}
