//! `gen_traces` — materialises the 13 synthetic reference datasets on disk.
//!
//! ```text
//! gen_traces --out traces/                 # observatory text format
//! gen_traces --format json --seed 42       # JSON, custom seed
//! gen_traces --format csv --week 2007-51   # one week only, CSV
//! ```
//!
//! Useful for feeding the traces to external tooling (R, gnuplot, pandas)
//! or for pinning a dataset snapshot alongside experiment results.

use gridstrat_workload::observatory::write_observatory;
use gridstrat_workload::WeekId;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str =
    "usage: gen_traces [--out DIR] [--seed N] [--format observatory|json|csv] [--week NAME]";

fn main() -> ExitCode {
    let mut out_dir = PathBuf::from("traces");
    let mut seed = 0xE6EEu64;
    let mut format = "observatory".to_string();
    let mut only_week: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => match args.next() {
                Some(v) => out_dir = PathBuf::from(v),
                None => return fail("--out requires a directory"),
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => return fail("--seed requires an integer"),
            },
            "--format" => match args.next() {
                Some(v) if ["observatory", "json", "csv"].contains(&v.as_str()) => format = v,
                _ => return fail("--format must be observatory, json or csv"),
            },
            "--week" => match args.next() {
                Some(v) => only_week = Some(v),
                None => return fail("--week requires a dataset name, e.g. 2007-51"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return fail(&format!("unknown argument `{other}`")),
        }
    }

    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }

    let weeks: Vec<WeekId> = match &only_week {
        None => WeekId::ALL.to_vec(),
        Some(name) => match WeekId::ALL.iter().find(|w| w.name() == name) {
            Some(&w) => vec![w],
            None => {
                eprintln!("unknown week `{name}`; known:");
                for w in WeekId::ALL {
                    eprintln!("  {}", w.name());
                }
                return ExitCode::FAILURE;
            }
        },
    };

    for week in weeks {
        let trace = week.generate(seed);
        let safe_name = week.name().replace('/', "-");
        let (ext, payload) = match format.as_str() {
            "json" => ("json", trace.to_json()),
            "csv" => ("csv", trace.to_csv()),
            _ => ("log", write_observatory(&trace)),
        };
        let path = out_dir.join(format!("{safe_name}.{ext}"));
        if let Err(e) = std::fs::write(&path, payload) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "{:<10} {:>5} probes  ρ̂ = {:>5.1}%  mean = {:>5.0}s  → {}",
            week.name(),
            trace.len(),
            100.0 * trace.outlier_ratio(),
            trace.body_mean(),
            path.display()
        );
    }
    ExitCode::SUCCESS
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("{msg}\n{USAGE}");
    ExitCode::FAILURE
}
