//! One function per table/figure of the paper's evaluation section.
//!
//! Every function is deterministic in the master seed and returns rendered
//! [`Table`]s; the `repro` binary prints them and writes their CSV forms.
//! Where the paper's artefact is a plot, the table holds the plotted series
//! (one row per point), which gnuplot can consume directly.

use gridstrat_core::cost::{
    delayed_cost_profile, multiple_cost_profile, optimize_delayed_delta_cost, StrategyParams,
};
use gridstrat_core::latency::EmpiricalModel;
use gridstrat_core::report::{fixed, pct1, secs0, Table};
use gridstrat_core::stability::stability_radius;
use gridstrat_core::strategy::{DelayedResubmission, MultipleSubmission, SingleResubmission};
use gridstrat_core::transfer::transfer_matrix;
use gridstrat_stats::rng::derived_rng;
use gridstrat_workload::{WeekId, CENSOR_THRESHOLD_S};

use crate::model_for;

/// Figure 1 — cumulative density of latency: the proper CDF `F_R` and the
/// defective `F̃_R = (1-ρ)F_R` of the 2006-IX dataset.
pub fn figure1(seed: u64) -> Vec<Table> {
    let model = model_for(WeekId::W2006Ix, seed);
    let e = model.ecdf();
    let mut t = Table::new(
        "Figure 1 — cumulative densities of latency, 2006-IX (ρ = outlier gap at the top)",
        &["t_seconds", "F_R", "Ftilde_R"],
    );
    let mut x = 0.0;
    while x <= 3_000.0 {
        t.push_row(vec![
            fixed(x, 0),
            fixed(e.conditional_value(x), 4),
            fixed(e.value(x), 4),
        ]);
        x += 25.0;
    }
    vec![t]
}

/// Table 1 — per-week latency statistics and the single-resubmission
/// optimum (paper values alongside for direct comparison).
pub fn table1(seed: u64) -> Vec<Table> {
    let mut t = Table::new(
        "Table 1 — mean/σ of latency (R) and of latency incl. resubmissions (J)",
        &[
            "week",
            "mean<1e4",
            "with 1e4",
            "E_J",
            "σ_R",
            "σ_J",
            "Δσ",
            "E_J(paper)",
            "σ_J(paper)",
        ],
    );
    for week in WeekId::ALL {
        let trace = week.generate(seed);
        let model = EmpiricalModel::from_trace(&trace).expect("valid trace");
        let opt = SingleResubmission::optimize(&model);
        let sigma_r = trace.body_std();
        let row = week.paper_row();
        t.push_row(vec![
            week.name().to_string(),
            secs0(trace.body_mean()),
            secs0(trace.censored_mean_lower_bound()),
            secs0(opt.expectation),
            secs0(sigma_r),
            secs0(opt.std_dev),
            pct1((opt.std_dev - sigma_r) / sigma_r),
            secs0(row.e_j),
            secs0(row.sigma_j),
        ]);
    }
    vec![t]
}

/// Figure 2 — `E_J(t∞)` for collections of b = 1…10 jobs (2006-IX).
pub fn figure2(seed: u64) -> Vec<Table> {
    let model = model_for(WeekId::W2006Ix, seed);
    let headers: Vec<String> = std::iter::once("t_inf".to_string())
        .chain((1..=10).map(|b| format!("b={b}")))
        .collect();
    let hdr_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(
        "Figure 2 — expectation of execution time vs timeout, b = 1…10 (2006-IX)",
        &hdr_refs,
    );
    let mut x = 50.0;
    while x <= 2_000.0 {
        let mut row = vec![fixed(x, 0)];
        for b in 1..=10u32 {
            let e = MultipleSubmission::expectation(&model, b, x);
            row.push(if e.is_finite() {
                fixed(e, 1)
            } else {
                "inf".into()
            });
        }
        t.push_row(row);
        x += 25.0;
    }
    vec![t]
}

/// Table 2 — optimal timeout and best `E_J`/`σ_J` for b = 1…20 (2006-IX),
/// with the paper's improvement columns.
pub fn table2(seed: u64) -> Vec<Table> {
    let model = model_for(WeekId::W2006Ix, seed);
    let series = MultipleSubmission::optimal_series(&model, &(1..=20).collect::<Vec<u32>>());
    let e1 = series[0].1.expectation;
    let mut t = Table::new(
        "Table 2 — multiple submission on 2006-IX: optimal t∞ and best E_J per b",
        &[
            "b",
            "opt t∞",
            "best E_J",
            "σ_J",
            "ΔE_J/(b=1)",
            "Δb/(b=1)",
            "ΔE_J/(b-1)",
            "Δb/(b-1)",
        ],
    );
    for (i, (b, out)) in series.iter().enumerate() {
        let vs1 = if i == 0 {
            (String::new(), String::new())
        } else {
            (pct1(out.expectation / e1 - 1.0), format!("{}%", b * 100))
        };
        let vsprev = if i == 0 {
            (String::new(), String::new())
        } else {
            let prev = &series[i - 1].1;
            (
                pct1(out.expectation / prev.expectation - 1.0),
                format!("{:.1}%", 100.0 / (*b as f64 - 1.0)),
            )
        };
        t.push_row(vec![
            b.to_string(),
            secs0(out.timeout),
            secs0(out.expectation),
            secs0(out.std_dev),
            vs1.0,
            vs1.1,
            vsprev.0,
            vsprev.1,
        ]);
    }
    vec![t]
}

/// Figure 3 — evolution of the minimal `E_J` (top) and associated `σ_J`
/// (bottom) with b, one series per dataset.
pub fn figure3(seed: u64) -> Vec<Table> {
    let headers: Vec<String> = std::iter::once("week".to_string())
        .chain((1..=10).map(|b| format!("b={b}")))
        .collect();
    let hdr_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut tej = Table::new(
        "Figure 3 (top) — minimal E_J vs number of parallel jobs",
        &hdr_refs,
    );
    let mut tsj = Table::new(
        "Figure 3 (bottom) — σ_J at the optimum vs number of parallel jobs",
        &hdr_refs,
    );
    for week in WeekId::ALL {
        let model = model_for(week, seed);
        let series = MultipleSubmission::optimal_series(&model, &(1..=10).collect::<Vec<u32>>());
        let mut row_e = vec![week.name().to_string()];
        let mut row_s = vec![week.name().to_string()];
        for (_, out) in &series {
            row_e.push(fixed(out.expectation, 0));
            row_s.push(fixed(out.std_dev, 0));
        }
        tej.push_row(row_e);
        tsj.push_row(row_s);
    }
    vec![tej, tsj]
}

/// Figure 4 — principle of the delayed resubmission strategy: a concrete
/// timeline realised against the 2006-IX model with the paper's optimal
/// `(t0, t∞) = (339 s, 485 s)`, rendered as a Gantt-style table.
pub fn figure4(seed: u64) -> Vec<Table> {
    let week_model = WeekId::W2006Ix.model();
    let (t0, t_inf) = (339.0, 485.0);
    // find a deterministic run with at least three submissions so the
    // cancellation mechanics are visible
    let mut stream = 0u64;
    let (lats, j) = loop {
        let mut rng = derived_rng(seed ^ 0xF1604, stream);
        let mut lats: Vec<f64> = Vec::new();
        let mut j = f64::INFINITY;
        let mut n = 0usize;
        loop {
            let submit = n as f64 * t0;
            if submit >= j {
                break;
            }
            let lat = week_model.sample_latency(&mut rng);
            let eff = if lat < t_inf {
                submit + lat
            } else {
                f64::INFINITY
            };
            j = j.min(eff);
            lats.push(lat);
            n += 1;
        }
        if lats.len() >= 3 {
            break (lats, j);
        }
        stream += 1;
    };

    let mut t = Table::new(
        format!(
            "Figure 4 — delayed resubmission timeline (t0 = {t0} s, t∞ = {t_inf} s): \
             J = {j:.0} s after {} submissions",
            lats.len()
        ),
        &["job", "submitted", "fate", "at", "timeline [0, J]"],
    );
    let span = j.max(1.0);
    let cols = 48usize;
    for (k, lat) in lats.iter().enumerate() {
        let submit = k as f64 * t0;
        let start = submit + lat;
        let cancel = submit + t_inf;
        // fate: the job either starts at J, is cancelled at t∞, or is still
        // pending when another job starts (cancelled at J)
        let (fate, at) = if (start - j).abs() < 1e-9 && *lat < t_inf {
            ("STARTS", j)
        } else if cancel <= j {
            ("cancelled @t∞", cancel)
        } else {
            ("cancelled @J", j)
        };
        let from = ((submit / span) * cols as f64).round() as usize;
        let to = ((at.min(j) / span) * cols as f64).round() as usize;
        let mut bar = vec![b'.'; cols + 1];
        for c in bar.iter_mut().take(to.min(cols)).skip(from.min(cols)) {
            *c = b'=';
        }
        if fate == "STARTS" {
            bar[to.min(cols)] = b'#';
        } else {
            bar[to.min(cols)] = b'x';
        }
        t.push_row(vec![
            format!("{}", k + 1),
            secs0(submit),
            fate.to_string(),
            secs0(at),
            String::from_utf8(bar).expect("ascii"),
        ]);
    }
    vec![t]
}

/// Figure 5 — expectation surface `E_J(t0, t∞)` of the delayed strategy on
/// 2006-IX (one row per grid point; feasible region only), plus its minimum.
pub fn figure5(seed: u64) -> Vec<Table> {
    let model = model_for(WeekId::W2006Ix, seed);
    let mut t = Table::new(
        "Figure 5 — E_J(t0, t∞) surface, delayed resubmission (2006-IX)",
        &["t0", "t_inf", "E_J"],
    );
    let mut t0 = 100.0f64;
    while t0 <= 700.0 {
        let mut ti = t0;
        while ti <= (2.0 * t0).min(900.0) {
            let e = DelayedResubmission::expectation(&model, t0, ti);
            t.push_row(vec![fixed(t0, 0), fixed(ti, 0), fixed(e, 1)]);
            ti += 20.0;
        }
        t0 += 20.0;
    }
    let best = DelayedResubmission::optimize(&model);
    let mut m = Table::new(
        "Figure 5 (minimum) — global optimum of the surface",
        &[
            "best t0",
            "best t∞",
            "min E_J",
            "paper t0",
            "paper t∞",
            "paper E_J",
        ],
    );
    m.push_row(vec![
        secs0(best.t0),
        secs0(best.t_inf),
        secs0(best.expectation),
        "339s".into(),
        "485s".into(),
        "431s".into(),
    ]);
    vec![t, m]
}

/// The ratio grid used by Tables 3–4.
pub const RATIOS: [f64; 10] = [1.1, 1.2, 1.3, 1.4, 1.5, 1.6, 1.7, 1.8, 1.9, 2.0];

/// Table 3 — delayed resubmission on 2006-IX: for each imposed ratio
/// `t∞/t0`, the `E_J`-optimal pair, the resulting `N_//` and the gain over
/// single resubmission.
pub fn table3(seed: u64) -> Vec<Table> {
    let model = model_for(WeekId::W2006Ix, seed);
    let single = SingleResubmission::optimize(&model);
    let mut t = Table::new(
        format!(
            "Table 3 — delayed resubmission per ratio t∞/t0 (2006-IX); single-resub E_J = {}",
            secs0(single.expectation)
        ),
        &["t∞/t0", "N_//", "best t∞", "best t0", "min E_J", "Δ(100%)"],
    );
    for r in RATIOS {
        let out = DelayedResubmission::optimize_with_ratio(&model, r);
        t.push_row(vec![
            fixed(r, 1),
            fixed(out.n_parallel, 2),
            secs0(out.t_inf),
            secs0(out.t0),
            secs0(out.expectation),
            pct1(out.expectation / single.expectation - 1.0),
        ]);
    }
    let free = DelayedResubmission::optimize(&model);
    t.push_row(vec![
        "free".into(),
        fixed(free.n_parallel, 2),
        secs0(free.t_inf),
        secs0(free.t0),
        secs0(free.expectation),
        pct1(free.expectation / single.expectation - 1.0),
    ]);
    vec![t]
}

/// Figure 6 — minimal `E_J` vs mean number of parallel jobs for the delayed
/// (fine ratio sweep) and multiple (b = 1…5) strategies on 2006-IX.
pub fn figure6(seed: u64) -> Vec<Table> {
    let model = model_for(WeekId::W2006Ix, seed);
    let mut t = Table::new(
        "Figure 6 — minimal E_J vs N_// (delayed sweep + multiple b = 1…5, 2006-IX)",
        &["strategy", "n_parallel", "min_E_J"],
    );
    for i in 0..=14 {
        // 15 ratios from 1.02 to 2.0, on an exact integer lattice so float
        // accumulation can never leave the feasible [1, 2] band
        let r = 1.02 + (2.0 - 1.02) * i as f64 / 14.0;
        let out = DelayedResubmission::optimize_with_ratio(&model, r.min(2.0));
        t.push_row(vec![
            "delayed".into(),
            fixed(out.n_parallel, 3),
            fixed(out.expectation, 1),
        ]);
    }
    for b in 1..=5u32 {
        let out = MultipleSubmission::optimize(&model, b);
        t.push_row(vec![
            "multiple".into(),
            fixed(b as f64, 3),
            fixed(out.expectation, 1),
        ]);
    }
    vec![t]
}

/// Figure 7 — the load argument behind eq. 6: expected job-seconds in the
/// system per completed task (`N_// · E_J`), strategy by strategy.
pub fn figure7(seed: u64) -> Vec<Table> {
    let model = model_for(WeekId::W2006Ix, seed);
    let single = SingleResubmission::optimize(&model);
    let mut t = Table::new(
        "Figure 7 — infrastructure load per task: N_// · E_J (2006-IX)",
        &["strategy", "E_J", "N_//", "job·seconds", "vs single"],
    );
    t.push_row(vec![
        "single resub. (optimal)".into(),
        secs0(single.expectation),
        fixed(1.0, 2),
        fixed(single.expectation, 0),
        pct1(0.0),
    ]);
    for b in [2u32, 4] {
        let out = MultipleSubmission::optimize(&model, b);
        let load = b as f64 * out.expectation;
        t.push_row(vec![
            format!("multiple b={b}"),
            secs0(out.expectation),
            fixed(b as f64, 2),
            fixed(load, 0),
            pct1(load / single.expectation - 1.0),
        ]);
    }
    let best = optimize_delayed_delta_cost(&model);
    let load = best.n_parallel * best.expectation;
    t.push_row(vec![
        "delayed (∆cost-optimal)".into(),
        secs0(best.expectation),
        fixed(best.n_parallel, 2),
        fixed(load, 0),
        pct1(load / single.expectation - 1.0),
    ]);
    vec![t]
}

/// Table 4 — `∆cost` of the delayed strategy per ratio (left half) and of
/// the multiple strategy per b (right half), on 2006-IX.
pub fn table4(seed: u64) -> Vec<Table> {
    let model = model_for(WeekId::W2006Ix, seed);
    let single = SingleResubmission::optimize(&model);

    let mut left = Table::new(
        format!(
            "Table 4 (left) — delayed resubmission ∆cost per ratio (2006-IX, E_J(b=1) = {})",
            secs0(single.expectation)
        ),
        &["N_//", "t∞/t0", "min E_J", "∆cost"],
    );
    // the paper's left half starts from the single-resubmission row
    left.push_row(vec![
        "1.00".into(),
        "1".into(),
        secs0(single.expectation),
        fixed(1.0, 2),
    ]);
    let ratios: Vec<f64> = [1.05, 1.1, 1.15, 1.2, 1.25]
        .into_iter()
        .chain(RATIOS.into_iter().skip(2)) // 1.3 … 2.0
        .collect();
    for p in delayed_cost_profile(&model, &ratios) {
        let (t0, ti) = match p.params {
            StrategyParams::Delayed { t0, t_inf } => (t0, t_inf),
            _ => unreachable!("delayed profile yields delayed params"),
        };
        left.push_row(vec![
            fixed(p.n_parallel, 2),
            fixed(ti / t0, 2),
            secs0(p.expectation),
            fixed(p.delta_cost, 2),
        ]);
    }

    let mut right = Table::new(
        "Table 4 (right) — multiple submission ∆cost per collection size (2006-IX)",
        &["N_//", "min E_J", "∆cost"],
    );
    let bs = [2u32, 3, 4, 5, 6, 7, 8, 9, 10, 20, 40, 60, 80, 100];
    for p in multiple_cost_profile(&model, &bs) {
        right.push_row(vec![
            fixed(p.n_parallel, 0),
            secs0(p.expectation),
            fixed(p.delta_cost, 1),
        ]);
    }
    vec![left, right]
}

/// Figure 8 — `∆cost` vs `N_//` for both strategies (2006-IX).
pub fn figure8(seed: u64) -> Vec<Table> {
    let model = model_for(WeekId::W2006Ix, seed);
    let mut t = Table::new(
        "Figure 8 — ∆cost vs N_// (delayed sweep + multiple b = 1…5, 2006-IX)",
        &["strategy", "n_parallel", "delta_cost"],
    );
    let mut ratios = vec![1.02];
    for i in 1..=19 {
        ratios.push((1.0 + 0.05 * i as f64).min(2.0));
    }
    for p in delayed_cost_profile(&model, &ratios) {
        t.push_row(vec![
            "delayed".into(),
            fixed(p.n_parallel, 3),
            fixed(p.delta_cost, 3),
        ]);
    }
    for p in multiple_cost_profile(&model, &[1, 2, 3, 4, 5]) {
        t.push_row(vec![
            "multiple".into(),
            fixed(p.n_parallel, 3),
            fixed(p.delta_cost, 3),
        ]);
    }
    vec![t]
}

/// The datasets of Table 5: the 11 weekly traces plus the 2007/08 union.
pub fn table5_weeks() -> Vec<WeekId> {
    let mut v: Vec<WeekId> = WeekId::WEEKLY.to_vec();
    v.push(WeekId::Union0708);
    v
}

/// Table 5 — per-week minimal `∆cost` with the optimal integer `(t0, t∞)`
/// and the ±5 s stability scan for sub-unit minima.
pub fn table5(seed: u64) -> Vec<Table> {
    let mut t = Table::new(
        "Table 5 — minimal ∆cost per period, with ±5 s stability where ∆cost < 1",
        &[
            "week",
            "opt t0",
            "opt t∞",
            "opt ∆cost",
            "E_J",
            "max ∆cost(±5)",
            "max Δ%",
        ],
    );
    for week in table5_weeks() {
        let model = model_for(week, seed);
        let single = SingleResubmission::optimize(&model);
        let best = optimize_delayed_delta_cost(&model);
        let (t0, ti) = match best.params {
            StrategyParams::Delayed { t0, t_inf } => (t0, t_inf),
            _ => unreachable!("∆cost optimizer yields delayed params"),
        };
        let (max_dc, max_pct) = if best.delta_cost < 1.0 {
            let rep = stability_radius(&model, t0, ti, 5, single.expectation);
            (
                fixed(rep.max_delta_cost, 3),
                format!("{:.1}%", rep.max_rel_diff_pct),
            )
        } else {
            (String::new(), String::new())
        };
        t.push_row(vec![
            week.name().to_string(),
            fixed(t0, 0),
            fixed(ti, 0),
            fixed(best.delta_cost, 3),
            secs0(best.expectation),
            max_dc,
            max_pct,
        ]);
    }
    vec![t]
}

/// The datasets of Table 6: the last six weeks plus the 2007/08 union, in
/// chronological order (the paper transfers among the sub-unit-∆cost weeks).
pub fn table6_weeks() -> Vec<WeekId> {
    vec![
        WeekId::W2007_51,
        WeekId::W2007_52,
        WeekId::W2007_53,
        WeekId::W2008_01,
        WeekId::W2008_02,
        WeekId::W2008_03,
        WeekId::Union0708,
    ]
}

/// Table 6 — cross-week transfer of the `∆cost`-optimal pairs: every week
/// evaluated under every week's optimum, with max and previous-week diffs.
pub fn table6(seed: u64) -> Vec<Table> {
    let weeks: Vec<(String, EmpiricalModel, (f64, f64))> = table6_weeks()
        .into_iter()
        .map(|w| {
            let model = model_for(w, seed);
            let best = optimize_delayed_delta_cost(&model);
            let pair = match best.params {
                StrategyParams::Delayed { t0, t_inf } => (t0, t_inf),
                _ => unreachable!("∆cost optimizer yields delayed params"),
            };
            (w.name().to_string(), model, pair)
        })
        .collect();
    let reports = transfer_matrix(&weeks);

    let mut t = Table::new(
        "Table 6 — ∆cost under each week's optimal (t0, t∞) pair (own pair marked *)",
        &[
            "eval week",
            "pair from",
            "t0",
            "t∞",
            "E_J",
            "∆cost",
            "max diff",
            "diff/prev",
        ],
    );
    for rep in &reports {
        for (i, cell) in rep.cells.iter().enumerate() {
            let own = if i == rep.own_index { "*" } else { "" };
            let (maxd, prevd) = if i == rep.own_index {
                (
                    format!("{:.1}%", rep.max_diff_pct),
                    rep.prev_diff_pct
                        .map(|p| format!("{p:.1}%"))
                        .unwrap_or_default(),
                )
            } else {
                (String::new(), String::new())
            };
            t.push_row(vec![
                format!("{}{}", rep.eval_week, own),
                cell.param_week.clone(),
                fixed(cell.t0, 0),
                fixed(cell.t_inf, 0),
                secs0(cell.expectation),
                fixed(cell.delta_cost, 3),
                maxd,
                prevd,
            ]);
        }
    }
    vec![t]
}

/// Extension (not in the paper): the paper's tables evaluate `N_//` at the
/// *expected* latency (`N_//(E_J)`); the true infrastructure load is
/// `E[N_//(J)]`. This ablation quantifies the gap by executing the delayed
/// protocol on the discrete-event grid at each ratio's optimum — all ratios
/// batched through one [`ScenarioSweep`] pass.
pub fn npar_ablation(seed: u64) -> Vec<Table> {
    use gridstrat_core::executor::{MonteCarloConfig, ScenarioSweep};

    let ratios = [1.2, 1.4, 1.6, 1.8, 2.0];
    let model = model_for(WeekId::W2006Ix, seed);
    // one optimum per ratio: the E_J-optimal pair (with its analytic
    // moments) under that ratio, on the trace's empirical tuning law
    let optima: Vec<_> = ratios
        .iter()
        .map(|&r| DelayedResubmission::optimize_with_ratio(&model, r))
        .collect();
    let outcomes = ScenarioSweep::over_strategies(
        optima
            .iter()
            .map(|out| StrategyParams::Delayed {
                t0: out.t0,
                t_inf: out.t_inf,
            })
            .collect(),
        WeekId::W2006Ix,
        MonteCarloConfig {
            trials: 4_000,
            seed: seed ^ 0xAB1,
        },
    )
    .run();

    let mut t = Table::new(
        "Extension A — N_// convention ablation on 2006-IX: analytic vs executed",
        &[
            "t∞/t0",
            "t0",
            "t∞",
            "E_J analytic",
            "E_J simulated",
            "N_//(E_J)",
            "E[N_//(J)]",
            "subs/task",
        ],
    );
    for ((r, out), cell) in ratios.iter().zip(&optima).zip(&outcomes) {
        // analytic values on the trace's empirical model (the tuning law),
        // simulated values from the sweep's oracle execution
        t.push_row(vec![
            fixed(*r, 1),
            fixed(out.t0, 0),
            fixed(out.t_inf, 0),
            secs0(out.expectation),
            secs0(cell.estimate.mean_j),
            fixed(out.n_parallel, 3),
            fixed(cell.estimate.mean_parallel, 3),
            fixed(cell.estimate.mean_submissions, 2),
        ]);
    }
    vec![t]
}

/// Extension (not in the paper): a (strategy × week × grid-condition)
/// sweep through the batched [`ScenarioSweep`] runner — the scenario-
/// diversity experiment the workload-mining literature runs routinely.
/// Strategies are tuned once on 2006-IX, then evaluated across weeks under
/// a nominal grid, a grid with doubled fault rate, and a 25%-slower grid.
pub fn scenario_sweep(seed: u64) -> Vec<Table> {
    use gridstrat_core::executor::{GridScenario, MonteCarloConfig, ScenarioSweep};
    use gridstrat_core::strategy::Strategy;

    let tuning = model_for(WeekId::W2006Ix, seed);
    let single = SingleResubmission::optimized(&tuning);
    let multi = gridstrat_core::strategy::MultipleSubmission::optimized(&tuning, 3);
    let best = optimize_delayed_delta_cost(&tuning);
    let StrategyParams::Delayed { t0, t_inf } = best.params else {
        unreachable!("∆cost optimizer yields delayed params");
    };

    let sweep = ScenarioSweep::new(
        vec![
            single.params(),
            multi.params(),
            StrategyParams::Delayed { t0, t_inf },
        ],
        vec![WeekId::W2006Ix, WeekId::W2007_51, WeekId::W2008_03],
        vec![
            GridScenario::baseline(),
            GridScenario::new("2x-faults", 2.0, 1.0),
            GridScenario::new("25%-slower", 1.0, 1.25),
        ],
        MonteCarloConfig {
            trials: 2_000,
            seed: seed ^ 0x5EE9,
        },
    );
    let mut t = Table::new(
        format!(
            "Extension F — scenario sweep ({} cells × {} trials): strategies tuned on 2006-IX",
            sweep.n_cells(),
            sweep.config.trials
        ),
        &[
            "strategy",
            "week",
            "scenario",
            "E_J analytic",
            "E_J simulated",
            "z",
            "N_// sim",
            "subs/task",
        ],
    );
    for cell in sweep.run() {
        let z = (cell.estimate.mean_j - cell.analytic_e_j).abs() / cell.estimate.stderr_j;
        t.push_row(vec![
            cell.strategy.name().to_string(),
            cell.week.name().to_string(),
            cell.scenario.clone(),
            secs0(cell.analytic_e_j),
            secs0(cell.estimate.mean_j),
            fixed(z, 1),
            fixed(cell.estimate.mean_parallel, 2),
            fixed(cell.estimate.mean_submissions, 2),
        ]);
    }
    vec![t]
}

/// Extension (not in the paper): parametric-model tuning. Fit candidate
/// body families to each week by maximum likelihood, pick the AIC winner,
/// and compare the single-resubmission optimum tuned on the fitted model
/// against the ECDF-tuned optimum — the smoothing a client would apply to
/// short traces.
pub fn model_fits(seed: u64) -> Vec<Table> {
    use gridstrat_core::latency::ParametricModel;
    use gridstrat_stats::fit::{fit_outlier_ratio, select_body_model};

    let mut t = Table::new(
        "Extension B — parametric vs empirical tuning per week (AIC-best family)",
        &[
            "week",
            "family",
            "KS",
            "ρ̂",
            "t∞*(ecdf)",
            "E_J(ecdf)",
            "t∞*(fit)",
            "E_J(fit@ecdf)",
            "penalty",
        ],
    );
    for week in WeekId::ALL {
        let trace = week.generate(seed);
        let empirical = EmpiricalModel::from_trace(&trace).expect("valid trace");
        let body = trace.body_latencies();
        let reports = select_body_model(&body);
        let best = reports.first().expect("at least one family fits");
        let (rho, _) = fit_outlier_ratio(trace.n_outliers(), trace.len());
        let fitted = ParametricModel::new(best.model, rho, CENSOR_THRESHOLD_S)
            .expect("fitted model is valid");

        let ecdf_opt = SingleResubmission::optimize(&empirical);
        let fit_opt = SingleResubmission::optimize(&fitted);
        // evaluate the fit-tuned timeout under the empirical ground truth
        let realized = SingleResubmission::expectation(&empirical, fit_opt.timeout);
        t.push_row(vec![
            week.name().to_string(),
            best.model.family().to_string(),
            fixed(best.ks, 3),
            fixed(rho, 2),
            secs0(ecdf_opt.timeout),
            secs0(ecdf_opt.expectation),
            secs0(fit_opt.timeout),
            secs0(realized),
            pct1(realized / ecdf_opt.expectation - 1.0),
        ]);
    }
    vec![t]
}

/// Extension (not in the paper): bootstrap confidence intervals on the
/// per-week single-resubmission optimum. The paper reports point estimates
/// from ~900 probes; this quantifies their sampling error.
pub fn bootstrap_week_ci(seed: u64) -> Vec<Table> {
    use gridstrat_stats::bootstrap::bootstrap_ci;

    let mut t = Table::new(
        "Extension C — 95% bootstrap CIs on the single-resubmission optimum",
        &[
            "week", "E_J*", "E_J lo", "E_J hi", "±rel", "t∞*", "t∞ lo", "t∞ hi",
        ],
    );
    for week in WeekId::ALL {
        let trace = week.generate(seed);
        let raw: Vec<f64> = trace.records.iter().map(|r| r.latency_s).collect();
        let threshold = trace.threshold_s;
        let opt_ej = |xs: &[f64]| -> f64 {
            match EmpiricalModel::from_samples(xs, threshold) {
                Ok(m) => SingleResubmission::optimize(&m).expectation,
                Err(_) => f64::INFINITY,
            }
        };
        let opt_t = |xs: &[f64]| -> f64 {
            match EmpiricalModel::from_samples(xs, threshold) {
                Ok(m) => SingleResubmission::optimize(&m).timeout,
                Err(_) => f64::INFINITY,
            }
        };
        let ci_e = bootstrap_ci(&raw, opt_ej, 200, 0.95, seed ^ 0xB001);
        let ci_t = bootstrap_ci(&raw, opt_t, 200, 0.95, seed ^ 0xB001);
        t.push_row(vec![
            week.name().to_string(),
            secs0(ci_e.estimate),
            secs0(ci_e.lo),
            secs0(ci_e.hi),
            format!("{:.0}%", 100.0 * ci_e.relative_halfwidth()),
            secs0(ci_t.estimate),
            secs0(ci_t.lo),
            secs0(ci_t.hi),
        ]);
    }
    vec![t]
}

/// Extension (not in the paper): hazard-trend diagnosis per week. The
/// decreasing-hazard + outlier-mass structure is *why* resubmission pays;
/// this table makes the mechanism explicit.
pub fn hazard_diagnosis(seed: u64) -> Vec<Table> {
    use gridstrat_stats::hazard::HazardProfile;

    let mut t = Table::new(
        "Extension D — hazard diagnosis per week (why resubmission pays)",
        &["week", "ρ̂", "trend", "head rate", "tail rate", "resubmit?"],
    );
    for week in WeekId::ALL {
        let trace = week.generate(seed);
        let ecdf = trace.ecdf().expect("valid trace");
        let profile = HazardProfile::from_ecdf(&ecdf, 10);
        let bins = profile.bins();
        let head = bins.first().map(|b| b.rate).unwrap_or(f64::NAN);
        let tail = bins.last().map(|b| b.rate).unwrap_or(f64::NAN);
        t.push_row(vec![
            week.name().to_string(),
            fixed(ecdf.outlier_ratio(), 2),
            format!("{:?}", profile.trend(0.25)),
            format!("{:.2e}/s", head),
            format!("{:.2e}/s", tail),
            if profile.resubmission_pays() {
                "yes"
            } else {
                "no"
            }
            .to_string(),
        ]);
    }
    vec![t]
}

/// Extension (not in the paper): non-stationarity stress test. A diurnal
/// trace is tuned as if stationary; the table shows what the tuned timeout
/// actually delivers during peak vs trough phases, against per-phase
/// optima — quantifying the cost of the paper's stationarity assumption.
pub fn nonstationary_stress(seed: u64) -> Vec<Table> {
    use gridstrat_workload::DiurnalModel;

    let base = WeekId::W2007_51.model();
    let mut t = Table::new(
        "Extension E — stationary tuning on a diurnal grid (week 2007-51 base)",
        &[
            "amplitude",
            "phase",
            "E_J @ global t∞*",
            "phase-opt E_J",
            "penalty",
        ],
    );
    for amplitude in [0.0, 0.3, 0.6] {
        let diurnal =
            DiurnalModel::new(base.clone(), amplitude, 86_400.0).expect("valid diurnal parameters");
        let trace = diurnal.generate(9_000, seed ^ 0xD1);
        let global = EmpiricalModel::from_trace(&trace).expect("valid trace");
        let global_opt = SingleResubmission::optimize(&global);

        // split records by submission phase: rising half (peak) vs falling
        for (label, lo, hi) in [("peak", 0.0, 0.5), ("trough", 0.5, 1.0)] {
            let phase_samples: Vec<f64> = trace
                .records
                .iter()
                .filter(|r| {
                    let phase = (r.submitted_at / 86_400.0).fract();
                    phase >= lo && phase < hi
                })
                .map(|r| r.latency_s)
                .collect();
            if phase_samples.len() < 50 {
                continue;
            }
            let phase_model = EmpiricalModel::from_samples(&phase_samples, trace.threshold_s)
                .expect("phase sample is non-degenerate");
            let at_global = SingleResubmission::expectation(&phase_model, global_opt.timeout);
            let phase_opt = SingleResubmission::optimize(&phase_model);
            t.push_row(vec![
                fixed(amplitude, 1),
                label.to_string(),
                secs0(at_global),
                secs0(phase_opt.expectation),
                pct1(at_global / phase_opt.expectation - 1.0),
            ]);
        }
    }
    vec![t]
}

/// All experiment ids accepted by the `repro` binary, in paper order, with
/// the extensions last.
pub const ALL_EXPERIMENTS: [&str; 20] = [
    "figure1",
    "table1",
    "figure2",
    "table2",
    "figure3",
    "figure4",
    "figure5",
    "table3",
    "figure6",
    "figure7",
    "table4",
    "figure8",
    "table5",
    "table6",
    "npar_ablation",
    "model_fits",
    "bootstrap_ci",
    "hazard",
    "nonstationary",
    "scenario_sweep",
];

/// Dispatches one experiment by id.
pub fn run_experiment(id: &str, seed: u64) -> Option<Vec<Table>> {
    match id {
        "figure1" => Some(figure1(seed)),
        "table1" => Some(table1(seed)),
        "figure2" => Some(figure2(seed)),
        "table2" => Some(table2(seed)),
        "figure3" => Some(figure3(seed)),
        "figure4" => Some(figure4(seed)),
        "figure5" => Some(figure5(seed)),
        "table3" => Some(table3(seed)),
        "figure6" => Some(figure6(seed)),
        "figure7" => Some(figure7(seed)),
        "table4" => Some(table4(seed)),
        "figure8" => Some(figure8(seed)),
        "table5" => Some(table5(seed)),
        "table6" => Some(table6(seed)),
        "npar_ablation" => Some(npar_ablation(seed)),
        "model_fits" => Some(model_fits(seed)),
        "bootstrap_ci" => Some(bootstrap_week_ci(seed)),
        "hazard" => Some(hazard_diagnosis(seed)),
        "nonstationary" => Some(nonstationary_stress(seed)),
        "scenario_sweep" => Some(scenario_sweep(seed)),
        _ => None,
    }
}

/// Sanity check used by tests and the binary: the censoring threshold the
/// experiments assume matches the workload crate's.
pub fn threshold() -> f64 {
    CENSOR_THRESHOLD_S
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEED: u64 = 0xE6EE;

    #[test]
    fn figure1_series_monotone_and_defective() {
        let t = &figure1(SEED)[0];
        assert!(t.n_rows() > 50);
    }

    #[test]
    fn table1_covers_all_weeks() {
        let t = &table1(SEED)[0];
        assert_eq!(t.n_rows(), 13);
    }

    #[test]
    fn table2_expectation_strictly_decreasing_in_b() {
        let model = model_for(WeekId::W2006Ix, SEED);
        let series = MultipleSubmission::optimal_series(&model, &[1, 2, 5, 10, 20]);
        for w in series.windows(2) {
            assert!(w[1].1.expectation < w[0].1.expectation);
        }
        // paper shape: b=2 cuts E_J by 20–45%, b=10 by 45–70%
        let drop2 = 1.0 - series[1].1.expectation / series[0].1.expectation;
        let drop10 = 1.0 - series[3].1.expectation / series[0].1.expectation;
        assert!((0.20..0.45).contains(&drop2), "b=2 drop {drop2}");
        assert!((0.45..0.70).contains(&drop10), "b=10 drop {drop10}");
    }

    #[test]
    fn figure4_timeline_has_at_least_three_jobs() {
        let t = &figure4(SEED)[0];
        assert!(t.n_rows() >= 3);
    }

    #[test]
    fn table3_delayed_beats_single_at_some_ratio() {
        let t = table3(SEED);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].n_rows(), RATIOS.len() + 1);
        // shape assertion lives in the core tests; here we check the
        // harness produced the full sweep
    }

    #[test]
    fn table4_multiple_costs_exceed_one() {
        let model = model_for(WeekId::W2006Ix, SEED);
        let profile = multiple_cost_profile(&model, &[2, 10, 100]);
        for p in &profile {
            assert!(p.delta_cost > 1.0, "{:?}", p.params);
        }
        // and a delayed configuration reaches below 1 (the paper's key
        // finding). The fixed-ratio profile minimises E_J per ratio — not
        // ∆cost — so on a finite synthetic trace its points can hover just
        // above 1; the claim itself is about the ∆cost optimum.
        let best = optimize_delayed_delta_cost(&model);
        assert!(
            best.delta_cost < 1.0,
            "optimal delayed ∆cost {}",
            best.delta_cost
        );
        // the profile still tracks the optimum within sampling noise
        let dprofile = delayed_cost_profile(&model, &[1.05, 1.1, 1.15, 1.2, 1.25, 1.3]);
        let min = dprofile
            .iter()
            .map(|p| p.delta_cost)
            .fold(f64::INFINITY, f64::min);
        assert!(min < 1.1, "min profile ∆cost {min} far above the optimum");
    }

    #[test]
    fn run_experiment_dispatch_is_total_over_ids() {
        for id in ALL_EXPERIMENTS {
            // only check the cheap ones end-to-end here; heavy ones have
            // their own tests above and in the integration suite
            if matches!(id, "figure1" | "figure4" | "figure7") {
                assert!(run_experiment(id, SEED).is_some(), "{id}");
            }
        }
        assert!(run_experiment("nonsense", SEED).is_none());
    }
}
