//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro all                  # every experiment, CSVs under results/
//! repro table2 figure8       # a subset
//! repro --seed 42 table5     # different synthetic-trace seed
//! repro --out target/res all # different output directory
//! repro --list               # experiment ids and what they reproduce
//! ```
//!
//! Absolute numbers depend on the synthetic calibration (see DESIGN.md §2);
//! the shapes — who wins, by what factor, where the ∆cost minimum falls —
//! are the reproduction targets recorded in EXPERIMENTS.md.

use gridstrat_bench::experiments::{run_experiment, ALL_EXPERIMENTS};
use gridstrat_bench::DEFAULT_SEED;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: repro [--seed N] [--out DIR] [--list] <experiment ...|all>\n\
     experiments: figure1 table1 figure2 table2 figure3 figure4 figure5 table3\n\
                  figure6 figure7 table4 figure8 table5 table6\n\
     extensions:  npar_ablation model_fits bootstrap_ci hazard nonstationary\n\
                  scenario_sweep"
}

fn main() -> ExitCode {
    let mut seed = DEFAULT_SEED;
    let mut out_dir = PathBuf::from("results");
    let mut wanted: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(v) => seed = v,
                None => {
                    eprintln!("--seed requires an integer\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match args.next() {
                Some(v) => out_dir = PathBuf::from(v),
                None => {
                    eprintln!("--out requires a directory\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--list" => {
                println!("available experiments (paper order):");
                for id in ALL_EXPERIMENTS {
                    println!("  {id}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => wanted.push(other.to_string()),
        }
    }

    if wanted.is_empty() {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    }
    if wanted.iter().any(|w| w == "all") {
        wanted = ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }

    for id in &wanted {
        let started = std::time::Instant::now();
        let Some(tables) = run_experiment(id, seed) else {
            eprintln!("unknown experiment `{id}`\n{}", usage());
            return ExitCode::FAILURE;
        };
        for (i, table) in tables.iter().enumerate() {
            // big series tables go to CSV in full but print only a preview
            println!();
            let rendered = table.to_string();
            let lines: Vec<&str> = rendered.lines().collect();
            const PREVIEW: usize = 40;
            if lines.len() > PREVIEW + 8 {
                for l in &lines[..PREVIEW] {
                    println!("{l}");
                }
                println!(
                    "… ({} more rows; full series in CSV)",
                    lines.len() - PREVIEW
                );
            } else {
                print!("{rendered}");
            }
            let suffix = if tables.len() > 1 {
                format!("_{}", i + 1)
            } else {
                String::new()
            };
            let path = out_dir.join(format!("{id}{suffix}.csv"));
            if let Err(e) = table.write_csv(&path) {
                eprintln!("failed writing {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            println!("[csv] {}", path.display());
        }
        eprintln!(
            "[{id}] done in {:.1}s (seed {seed:#x})",
            started.elapsed().as_secs_f64()
        );
    }
    ExitCode::SUCCESS
}
