//! `tune` — strategy tuning for a measured latency trace.
//!
//! ```text
//! tune traces/2007-51.log                      # observatory format (default)
//! tune --format json my-week.json
//! tune --format csv my-week.csv --threshold 10000
//! tune --demo                                   # run on a built-in synthetic week
//! ```
//!
//! The deployable face of the library: feed it last week's probe log and it
//! prints (1) whether resubmission pays at all (hazard + fault diagnosis),
//! (2) tuned parameters for each strategy with their predicted `E_J`/`σ_J`,
//! (3) the `∆cost`-optimal delayed configuration, and (4) a bootstrap
//! confidence interval quantifying how much to trust the numbers.

use gridstrat_core::cost::{optimize_delayed_delta_cost, StrategyParams};
use gridstrat_core::latency::EmpiricalModel;
use gridstrat_core::strategy::{DelayedResubmission, MultipleSubmission, SingleResubmission};
use gridstrat_stats::bootstrap::bootstrap_ci;
use gridstrat_stats::hazard::HazardProfile;
use gridstrat_workload::observatory::parse_observatory;
use gridstrat_workload::{TraceSet, WeekId};
use std::process::ExitCode;

const USAGE: &str =
    "usage: tune [--format observatory|json|csv] [--threshold S] [--demo] [TRACE_FILE]";

fn main() -> ExitCode {
    let mut format = "observatory".to_string();
    let mut threshold = 10_000.0f64;
    let mut path: Option<String> = None;
    let mut demo = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next() {
                Some(v) if ["observatory", "json", "csv"].contains(&v.as_str()) => format = v,
                _ => return fail("--format must be observatory, json or csv"),
            },
            "--threshold" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0.0 => threshold = v,
                _ => return fail("--threshold requires a positive number of seconds"),
            },
            "--demo" => demo = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') => path = Some(other.to_string()),
            other => return fail(&format!("unknown argument `{other}`")),
        }
    }

    let trace: TraceSet = if demo {
        WeekId::W2007_51.generate(0xE6EE)
    } else {
        let Some(path) = path else {
            return fail("a trace file (or --demo) is required");
        };
        let content = match std::fs::read_to_string(&path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let parsed = match format.as_str() {
            "json" => TraceSet::from_json(&content),
            "csv" => TraceSet::from_csv(&path, threshold, &content),
            _ => parse_observatory(&content),
        };
        match parsed {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot parse {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    println!(
        "trace `{}`: {} probes, body mean {:.0}s ± {:.0}s, fault ratio {:.1}%",
        trace.name,
        trace.len(),
        trace.body_mean(),
        trace.body_std(),
        100.0 * trace.outlier_ratio()
    );

    // 1. should you resubmit at all?
    let ecdf = match trace.ecdf() {
        Ok(e) => e,
        Err(e) => {
            eprintln!("degenerate trace: {e}");
            return ExitCode::FAILURE;
        }
    };
    let profile = HazardProfile::from_ecdf(&ecdf, 10);
    println!(
        "\nhazard trend: {:?}; outlier mass: {:.1}% → resubmission {}",
        profile.trend(0.25),
        100.0 * profile.outlier_ratio(),
        if profile.resubmission_pays() {
            "PAYS"
        } else {
            "does not pay"
        }
    );
    if !profile.resubmission_pays() {
        println!("(strategies below are reported anyway; expect marginal gains)");
    }

    // 2. strategy tuning
    let model = EmpiricalModel::from_ecdf(ecdf);
    let single = SingleResubmission::optimize(&model);
    println!("\ntuned strategies (predicted on this trace):");
    println!(
        "  single resubmission : t∞ = {:>5.0}s   E_J = {:>5.0}s  σ_J = {:>5.0}s",
        single.timeout, single.expectation, single.std_dev
    );
    for b in [2u32, 3, 5] {
        let multi = MultipleSubmission::optimize(&model, b);
        println!(
            "  multiple (b = {b})    : t∞ = {:>5.0}s   E_J = {:>5.0}s  σ_J = {:>5.0}s  (load ×{b})",
            multi.timeout, multi.expectation, multi.std_dev
        );
    }
    let delayed = DelayedResubmission::optimize(&model);
    println!(
        "  delayed (min E_J)   : t0 = {:>5.0}s   t∞ = {:>5.0}s  E_J = {:>5.0}s  N_// = {:.2}",
        delayed.t0, delayed.t_inf, delayed.expectation, delayed.n_parallel
    );

    // 3. the economical configuration
    let best = optimize_delayed_delta_cost(&model);
    if let StrategyParams::Delayed { t0, t_inf } = best.params {
        println!(
            "\nrecommended (∆cost-optimal) delayed configuration:\n  t0 = {t0:.0}s, t∞ = {t_inf:.0}s → E_J = {:.0}s, ∆cost = {:.3} ({})",
            best.expectation,
            best.delta_cost,
            if best.delta_cost < 1.0 {
                "lighter on the grid than plain resubmission"
            } else {
                "costs more than plain resubmission — prefer single"
            }
        );
    }

    // 4. trustworthiness of the estimate
    let raw: Vec<f64> = trace.records.iter().map(|r| r.latency_s).collect();
    let thr = trace.threshold_s;
    let ci = bootstrap_ci(
        &raw,
        |xs| match EmpiricalModel::from_samples(xs, thr) {
            Ok(m) => SingleResubmission::optimize(&m).expectation,
            Err(_) => f64::INFINITY,
        },
        200,
        0.95,
        0x7E57,
    );
    println!(
        "\nsampling error: 95% CI for the single-resubmission E_J is [{:.0}s, {:.0}s] \
         (±{:.0}% around {:.0}s) from {} probes",
        ci.lo,
        ci.hi,
        100.0 * ci.relative_halfwidth(),
        ci.estimate,
        trace.len()
    );
    ExitCode::SUCCESS
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("{msg}\n{USAGE}");
    ExitCode::FAILURE
}
