//! Hot-path decomposition profiler: times each component of a Monte-Carlo
//! trial (RNG seeding, latency sampling, whole trials per strategy family,
//! per-cell analytic closed forms) so a perf regression can be localised
//! without a system profiler. Run with
//! `cargo run --release -p gridstrat-bench --bin hotprof`.

use gridstrat_core::cost::StrategyParams;
use gridstrat_core::executor::{MonteCarloConfig, StrategyExecutor};
use gridstrat_stats::rng::derived_rng;
use gridstrat_stats::Distribution;
use gridstrat_workload::WeekId;
use std::hint::black_box;
use std::time::Instant;

fn time_ns(label: &str, iters: u64, mut f: impl FnMut(u64)) {
    let t0 = Instant::now();
    for i in 0..iters {
        f(i);
    }
    let ns = t0.elapsed().as_nanos() as f64 / iters as f64;
    println!("{label:<44} {ns:>10.1} ns/iter");
}

fn main() {
    let week = WeekId::W2006Ix.model();

    time_ns("derive_seed + derived_rng", 2_000_000, |i| {
        black_box(derived_rng(0xBE7C, i));
    });

    let mut rng = derived_rng(7, 0);

    time_ns("WeekModel::sample_latency", 1_000_000, |_| {
        black_box(week.sample_latency(&mut rng));
    });

    let body = week.body();
    time_ns("body() construction only", 2_000_000, |_| {
        black_box(week.body());
    });
    time_ns("prebuilt body.sample", 1_000_000, |_| {
        black_box(body.sample(&mut rng));
    });

    // whole trials via the public API, per strategy
    for (label, spec) in [
        ("trial: Single", StrategyParams::Single { t_inf: 700.0 }),
        (
            "trial: Multiple b=3",
            StrategyParams::Multiple { b: 3, t_inf: 800.0 },
        ),
        (
            "trial: Delayed",
            StrategyParams::Delayed {
                t0: 400.0,
                t_inf: 560.0,
            },
        ),
    ] {
        let ex = StrategyExecutor::new(
            week.clone(),
            MonteCarloConfig {
                trials: 40_000,
                seed: 0xBE7C,
            },
        );
        let t0 = Instant::now();
        black_box(ex.run(spec));
        let ns = t0.elapsed().as_nanos() as f64 / 40_000.0;
        println!("{label:<44} {ns:>10.1} ns/trial");
    }

    // analytic fixed cost per sweep cell
    use gridstrat_core::latency::ParametricModel;
    use gridstrat_core::strategy::Strategy;
    let reference = ParametricModel::new(week.body(), week.rho, week.threshold_s).unwrap();
    for (label, spec) in [
        ("analytic: Single", StrategyParams::Single { t_inf: 700.0 }),
        (
            "analytic: Multiple b=3",
            StrategyParams::Multiple { b: 3, t_inf: 800.0 },
        ),
        (
            "analytic: Delayed",
            StrategyParams::Delayed {
                t0: 400.0,
                t_inf: 560.0,
            },
        ),
    ] {
        let t0 = Instant::now();
        let n = 100u64;
        for _ in 0..n {
            black_box(spec.expected_j(&reference));
        }
        let us = t0.elapsed().as_nanos() as f64 / n as f64 / 1e3;
        println!("{label:<44} {us:>10.2} us/call");
    }
}
