//! # gridstrat-bench
//!
//! Reproduction harness for every table and figure in the paper's
//! evaluation. Each experiment is a pure function from a master seed to one
//! or more [`gridstrat_core::report::Table`]s (plus, for surface/series
//! figures, CSV-friendly data), so the same code path serves:
//!
//! * the `repro` binary (`cargo run -p gridstrat-bench --release --bin
//!   repro -- all`), which prints paper-style tables and writes CSVs under
//!   `results/`;
//! * the Criterion benches (`cargo bench`), which time the kernels and a
//!   reduced-size run of every experiment.
//!
//! Experiment ↔ paper mapping (see DESIGN.md §4 for the full index):
//!
//! | function | paper artefact |
//! |---|---|
//! | [`experiments::figure1`] | Fig. 1 — cumulative densities `F_R`, `F̃_R` |
//! | [`experiments::table1`]  | Tab. 1 — per-week means/σ and single-resubmission `E_J`, `σ_J` |
//! | [`experiments::figure2`] | Fig. 2 — `E_J(t∞)` for b = 1…10 |
//! | [`experiments::table2`]  | Tab. 2 — optimal `t∞`, best `E_J`, `σ_J` for b = 1…20 |
//! | [`experiments::figure3`] | Fig. 3 — min `E_J` and `σ_J` vs b per week |
//! | [`experiments::figure4`] | Fig. 4 — delayed-strategy timeline |
//! | [`experiments::figure5`] | Fig. 5 — `E_J(t0, t∞)` surface |
//! | [`experiments::table3`]  | Tab. 3 — ratio sweep with `N_//` |
//! | [`experiments::figure6`] | Fig. 6 — min `E_J` vs `N_//`, both strategies |
//! | [`experiments::figure7`] | Fig. 7 — load-gain illustration |
//! | [`experiments::table4`]  | Tab. 4 — `∆cost` samples, both strategies |
//! | [`experiments::figure8`] | Fig. 8 — `∆cost` vs `N_//`, both strategies |
//! | [`experiments::table5`]  | Tab. 5 — per-week `∆cost` optima + stability |
//! | [`experiments::table6`]  | Tab. 6 — cross-week transfer matrix |

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod experiments;

use gridstrat_core::latency::EmpiricalModel;
use gridstrat_workload::WeekId;

/// Master seed used by the `repro` binary unless overridden on the command
/// line. All published numbers in EXPERIMENTS.md come from this seed.
pub const DEFAULT_SEED: u64 = 0xE6EE;

/// Builds the empirical latency model of a week's synthetic trace.
pub fn model_for(week: WeekId, seed: u64) -> EmpiricalModel {
    let trace = week.generate(seed);
    EmpiricalModel::from_trace(&trace).expect("synthetic traces are non-degenerate")
}
