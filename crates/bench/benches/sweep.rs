//! Criterion benches for the batched [`ScenarioSweep`] runner — the
//! throughput trajectory every future scaling PR (sharding, caching,
//! multi-backend) is measured against.
//!
//! Reported unit: one full `run()` of a fixed sweep. Divide by
//! `n_trials_total()` (printed at startup) for per-trial cost.
//!
//! Beyond the interactive Criterion output, [`bench_sweep_trajectory`]
//! measures the canonical 12-cell × 500-trial sweep with a plain
//! wall-clock harness and writes `BENCH_sweep.json` at the workspace root:
//! trials/sec and cells/sec for the current tree next to the recorded
//! pre-optimization baseline, so the perf trajectory of the hot path is a
//! versioned artefact rather than a claim in a commit message. Set
//! `BENCH_SMOKE=1` (CI does) to run a reduced-size smoke pass that proves
//! the harness still works without producing publishable numbers.
//!
//! [`bench_fleet_trajectory`] does the same for the multi-user fleet
//! subsystem (`gridstrat-fleet`), writing `BENCH_fleet.json` with the
//! community-tasks-per-second throughput point.
//!
//! [`bench_fleet_scale_trajectory`] measures the community-scale regime:
//! a 100 000-user population sharded across 8 engines
//! (`gridstrat_fleet::ShardedFleet`, bounded-memory streaming metrics),
//! writing `BENCH_scale.json` next to the 40-user `BENCH_fleet.json`
//! point.
//!
//! [`bench_adaptive_trajectory`] measures the nonstationary adaptive
//! subsystem (`gridstrat_core::adaptive`): a full
//! (amplitude × retune-period) [`AdaptiveSweep`] — tuned-once and
//! online-retuned task sequences on modulated live grids, scale-tracking
//! retunes, and regret-frontier scoring — writing `BENCH_adaptive.json`
//! with the end-to-end tasks-per-second point plus the headline regret
//! numbers (so the *scientific* result is versioned next to the perf one).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use gridstrat_core::cost::StrategyParams;
use gridstrat_core::executor::{GridScenario, MonteCarloConfig, ScenarioSweep};
use gridstrat_workload::WeekId;
use std::time::Instant;

fn strategies() -> Vec<StrategyParams> {
    vec![
        StrategyParams::Single { t_inf: 700.0 },
        StrategyParams::Multiple { b: 3, t_inf: 800.0 },
        StrategyParams::Delayed {
            t0: 400.0,
            t_inf: 560.0,
        },
    ]
}

/// The canonical trajectory workload: 3 strategies × 2 weeks × 2 scenarios
/// = 12 cells. Trial count is a parameter so the smoke pass can shrink it.
fn trajectory_sweep(trials: usize) -> ScenarioSweep {
    ScenarioSweep::new(
        strategies(),
        vec![WeekId::W2006Ix, WeekId::W2007_51],
        vec![
            GridScenario::baseline(),
            GridScenario::new("2x-faults", 2.0, 1.0),
        ],
        MonteCarloConfig {
            trials,
            seed: 0xBE7C,
        },
    )
}

fn bench_sweep_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("scenario_sweep");
    g.sample_size(10);
    for &trials in &[100usize, 500] {
        let sweep = trajectory_sweep(trials);
        println!(
            "scenario_sweep/run/{trials}: {} cells, {} total trials per run()",
            sweep.n_cells(),
            sweep.n_trials_total()
        );
        g.bench_with_input(BenchmarkId::new("run", trials), &sweep, |b, sweep| {
            b.iter(|| black_box(sweep.run()))
        });
    }
    g.finish();
}

fn bench_sweep_single_cell_overhead(c: &mut Criterion) {
    // one-cell sweep vs the same trials through StrategyExecutor: the
    // batching layer should cost nothing beyond the trials themselves
    use gridstrat_core::executor::StrategyExecutor;

    let mut g = c.benchmark_group("sweep_overhead");
    g.sample_size(10);
    let cfg = MonteCarloConfig {
        trials: 500,
        seed: 0xBE7C,
    };
    let sweep = ScenarioSweep::over_strategies(
        vec![StrategyParams::Single { t_inf: 700.0 }],
        WeekId::W2006Ix,
        cfg,
    );
    g.bench_function("one_cell_sweep_500_trials", |b| {
        b.iter(|| black_box(sweep.run()))
    });
    let week = WeekId::W2006Ix.model();
    g.bench_function("executor_500_trials", |b| {
        b.iter(|| {
            let ex = StrategyExecutor::new(week.clone(), cfg);
            black_box(ex.run(StrategyParams::Single { t_inf: 700.0 }))
        })
    });
    g.finish();
}

// --- recorded perf trajectory -------------------------------------------------

/// Pre-optimization baseline for the 12-cell × 500-trial trajectory
/// workload, measured with this very harness at commit 96f2ebc (per-trial
/// engine construction, `GridConfig` deep-cloned per trial) on the 1-CPU
/// reference container. Update only when re-measuring the old code path in
/// the same environment as the `current` numbers.
const BASELINE_TRIALS_PER_SEC: f64 = 1_442_211.0;
const BASELINE_CELLS_PER_SEC: f64 = 2_884.4;

/// Measures the trajectory workload with a plain wall-clock harness and
/// writes `BENCH_sweep.json` at the workspace root.
fn bench_sweep_trajectory(_c: &mut Criterion) {
    let smoke = std::env::var("BENCH_SMOKE").is_ok();
    let (trials, reps) = if smoke { (20, 3) } else { (500, 15) };
    let sweep = trajectory_sweep(trials);
    let total_trials = sweep.n_trials_total() as f64;
    let n_cells = sweep.n_cells() as f64;

    black_box(sweep.run()); // warm-up (page-in, branch predictors, tables)
    let mut secs: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            black_box(sweep.run());
            t0.elapsed().as_secs_f64()
        })
        .collect();
    secs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = secs[secs.len() / 2];
    let trials_per_sec = total_trials / median;
    let cells_per_sec = n_cells / median;
    let speedup = trials_per_sec / BASELINE_TRIALS_PER_SEC;

    println!(
        "sweep_trajectory/{}: {total_trials} trials in {:.3} ms median -> \
         {trials_per_sec:.0} trials/s, {cells_per_sec:.0} cells/s \
         ({speedup:.2}x vs recorded baseline)",
        if smoke { "smoke" } else { "full" },
        median * 1e3,
    );

    let json = format!(
        "{{\n  \"workload\": {{\n    \"cells\": {n_cells},\n    \"trials_per_cell\": {trials},\n    \"total_trials\": {total_trials},\n    \"seed\": 48764,\n    \"mode\": \"{mode}\"\n  }},\n  \"baseline\": {{\n    \"trials_per_sec\": {BASELINE_TRIALS_PER_SEC},\n    \"cells_per_sec\": {BASELINE_CELLS_PER_SEC},\n    \"note\": \"pre-optimization hot path (per-trial engine construction, per-trial GridConfig deep clone), commit 96f2ebc, same 1-CPU container as current\"\n  }},\n  \"current\": {{\n    \"trials_per_sec\": {trials_per_sec},\n    \"cells_per_sec\": {cells_per_sec},\n    \"median_run_secs\": {median},\n    \"reps\": {reps}\n  }},\n  \"speedup_vs_baseline\": {speedup}\n}}\n",
        mode = if smoke { "smoke" } else { "full" },
    );
    // smoke runs prove the emitter works but must not clobber the
    // committed full-mode trajectory at the repository root
    let path = if smoke {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/BENCH_sweep.smoke.json"
        )
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json")
    };
    match std::fs::write(path, json) {
        Ok(()) => println!("sweep_trajectory: wrote {path}"),
        Err(e) => println!("sweep_trajectory: could not write {path}: {e}"),
    }
}

// --- fleet trajectory ---------------------------------------------------------

/// Measures the multi-user fleet workload (a `FleetSweep` cell grid) with
/// the same plain wall-clock harness and writes `BENCH_fleet.json` at the
/// workspace root: community tasks per second — the users·tasks throughput
/// point every future fleet scaling PR is measured against. `BENCH_SMOKE=1`
/// shrinks the workload and redirects the artefact under `target/`.
fn bench_fleet_trajectory(_c: &mut Criterion) {
    use gridstrat_core::executor::GridScenario as FleetScenario;
    use gridstrat_fleet::{FleetConfig, FleetSweep, StrategyMix};

    let smoke = std::env::var("BENCH_SMOKE").is_ok();
    let (users, tasks, reps_per_cell, reps) = if smoke {
        (12usize, 2usize, 1usize, 3usize)
    } else {
        (40, 5, 3, 9)
    };
    let mut cfg = FleetConfig::small_farm(30);
    cfg.tasks_per_user = tasks;
    cfg.replications = reps_per_cell;
    cfg.seed = 0xF1EE7;
    let seed = cfg.seed;
    let sweep = FleetSweep::new(
        cfg,
        vec![
            StrategyMix::pure("all-single", StrategyParams::Single { t_inf: 3_000.0 }),
            StrategyMix::pure(
                "burst-2",
                StrategyParams::Multiple {
                    b: 2,
                    t_inf: 3_000.0,
                },
            ),
        ],
        vec![users],
        vec![FleetScenario::baseline()],
    );
    let tasks_per_run: usize = sweep.n_runs_total() * users * tasks;

    black_box(sweep.run()); // warm-up
    let mut secs: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            black_box(sweep.run());
            t0.elapsed().as_secs_f64()
        })
        .collect();
    secs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = secs[secs.len() / 2];
    let tasks_per_sec = tasks_per_run as f64 / median;

    println!(
        "fleet_trajectory/{}: {} community runs ({users} users x {tasks} tasks each) in \
         {:.3} ms median -> {tasks_per_sec:.0} completed tasks/s",
        if smoke { "smoke" } else { "full" },
        sweep.n_runs_total(),
        median * 1e3,
    );

    let json = format!(
        "{{\n  \"workload\": {{\n    \"cells\": {cells},\n    \"replications_per_cell\": {reps_per_cell},\n    \"users\": {users},\n    \"tasks_per_user\": {tasks},\n    \"tasks_per_run\": {tasks_per_run},\n    \"seed\": {seed},\n    \"mode\": \"{mode}\"\n  }},\n  \"current\": {{\n    \"tasks_per_sec\": {tasks_per_sec},\n    \"median_run_secs\": {median},\n    \"reps\": {reps}\n  }}\n}}\n",
        cells = sweep.n_cells(),
        mode = if smoke { "smoke" } else { "full" },
    );
    let path = if smoke {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/BENCH_fleet.smoke.json"
        )
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fleet.json")
    };
    match std::fs::write(path, json) {
        Ok(()) => println!("fleet_trajectory: wrote {path}"),
        Err(e) => println!("fleet_trajectory: could not write {path}: {e}"),
    }
}

// --- fleet scale trajectory ---------------------------------------------------

/// Measures a community-scale sharded fleet run — 100 000 users across 8
/// engine shards with per-epoch background-load exchange and streaming
/// `O(users + groups)` metrics — and writes `BENCH_scale.json` at the
/// workspace root: the first throughput point of the community-scale
/// regime, recorded next to `BENCH_fleet.json`'s 40-user point.
/// `BENCH_SMOKE=1` shrinks the community and redirects the artefact under
/// `target/`.
fn bench_fleet_scale_trajectory(_c: &mut Criterion) {
    use gridstrat_core::executor::GridScenario as FleetScenario;
    use gridstrat_fleet::{FleetConfig, ShardedFleet, StrategyGroup, StrategyMix};

    let smoke = std::env::var("BENCH_SMOKE").is_ok();
    let (users, shards, slots, reps) = if smoke {
        (2_000usize, 2usize, 100usize, 1usize)
    } else {
        (100_000, 8, 4_000, 3)
    };
    let tasks = 1usize;
    let mut cfg = FleetConfig::small_farm(slots);
    cfg.tasks_per_user = tasks;
    cfg.replications = 1;
    cfg.seed = 0xF1EE7;
    let seed = cfg.seed;
    // a representative population: mostly single-resubmission users with a
    // bursting minority. Timeouts are sized for community-scale queue
    // waits (the whole population lands at t = 0, so the back of the
    // queue waits ~users × exec / slots ≈ 15 000 s); the 40-user point's
    // 3 000 s timeouts would churn-cancel forever at this scale.
    let t_inf = 100_000.0;
    let mix = StrategyMix::new(
        "mostly-single",
        vec![
            StrategyGroup::new(StrategyParams::Single { t_inf }, 0.85),
            StrategyGroup::new(StrategyParams::Multiple { b: 2, t_inf }, 0.15),
        ],
    );
    let sharded = ShardedFleet::new(cfg, mix, users, shards, FleetScenario::baseline());
    let tasks_per_run = users * tasks;

    let warm = black_box(sharded.run());
    assert_eq!(
        warm.tasks_completed, warm.tasks_total,
        "scale run must complete every task"
    );
    let mut secs: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            black_box(sharded.run());
            t0.elapsed().as_secs_f64()
        })
        .collect();
    secs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = secs[secs.len() / 2];
    let tasks_per_sec = tasks_per_run as f64 / median;

    println!(
        "fleet_scale_trajectory/{}: {users} users x {tasks} task over {shards} shards \
         ({slots} slots) in {:.3} s median -> {tasks_per_sec:.0} completed tasks/s",
        if smoke { "smoke" } else { "full" },
        median,
    );

    let json = format!(
        "{{\n  \"workload\": {{\n    \"users\": {users},\n    \"shards\": {shards},\n    \"slots\": {slots},\n    \"tasks_per_user\": {tasks},\n    \"tasks_per_run\": {tasks_per_run},\n    \"epoch_s\": {epoch},\n    \"coupling\": {coupling},\n    \"seed\": {seed},\n    \"mode\": \"{mode}\"\n  }},\n  \"current\": {{\n    \"tasks_per_sec\": {tasks_per_sec},\n    \"median_run_secs\": {median},\n    \"reps\": {reps}\n  }},\n  \"reference\": {{\n    \"note\": \"see BENCH_fleet.json for the 40-user single-engine point, measured by the same harness family\"\n  }}\n}}\n",
        epoch = sharded.epoch_s,
        coupling = sharded.coupling,
        mode = if smoke { "smoke" } else { "full" },
    );
    let path = if smoke {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/BENCH_scale.smoke.json"
        )
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scale.json")
    };
    match std::fs::write(path, json) {
        Ok(()) => println!("fleet_scale_trajectory: wrote {path}"),
        Err(e) => println!("fleet_scale_trajectory: could not write {path}: {e}"),
    }
}

// --- adaptive trajectory ------------------------------------------------------

/// Measures the nonstationary adaptive workload — an `AdaptiveSweep` over
/// (diurnal amplitude × retune period), running tuned-once and
/// online-retuned sequences with regret scoring — and writes
/// `BENCH_adaptive.json` at the workspace root. `BENCH_SMOKE=1` shrinks
/// the workload and redirects the artefact under `target/`.
fn bench_adaptive_trajectory(_c: &mut Criterion) {
    use gridstrat_core::adaptive::{AdaptiveConfig, AdaptiveSweep};
    use gridstrat_workload::WeekModel;

    let smoke = std::env::var("BENCH_SMOKE").is_ok();
    let (n_tasks, reps) = if smoke { (60usize, 1usize) } else { (600, 3) };
    let base = WeekModel::calibrate("drift-week", 570.0, 886.0, 0.20, 60.0, 10_000.0)
        .expect("valid calibration");
    let sweep = AdaptiveSweep {
        base,
        period_s: 86_400.0,
        amplitudes: vec![0.5, 0.8],
        retune_periods: vec![5, 20],
        family: StrategyParams::Delayed {
            t0: 400.0,
            t_inf: 560.0,
        },
        adaptive: AdaptiveConfig::default(),
        n_tasks,
        seed: 0x5EED,
    };
    // 2 sequences (fixed + adaptive) per cell
    let tasks_per_run = sweep.n_cells() * 2 * n_tasks;

    let cells = black_box(sweep.run()); // warm-up; also the recorded outcome
    let mut secs: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            black_box(sweep.run());
            t0.elapsed().as_secs_f64()
        })
        .collect();
    secs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = secs[secs.len() / 2];
    let tasks_per_sec = tasks_per_run as f64 / median;

    println!(
        "adaptive_trajectory/{}: {} cells x 2 sequences x {n_tasks} tasks in \
         {:.3} ms median -> {tasks_per_sec:.0} tasks/s",
        if smoke { "smoke" } else { "full" },
        sweep.n_cells(),
        median * 1e3,
    );

    let mut cell_lines = String::new();
    for (i, c) in cells.iter().enumerate() {
        cell_lines.push_str(&format!(
            "    {{ \"amplitude\": {}, \"retune_every\": {}, \"regret_fixed\": {}, \"regret_adaptive\": {}, \"mean_j_fixed\": {}, \"mean_j_adaptive\": {}, \"retunes\": {} }}{}\n",
            c.amplitude,
            c.retune_every,
            c.fixed.mean_regret,
            c.adaptive.mean_regret,
            c.fixed.mean_latency,
            c.adaptive.mean_latency,
            c.retunes,
            if i + 1 < cells.len() { "," } else { "" },
        ));
    }
    let json = format!(
        "{{\n  \"workload\": {{\n    \"cells\": {cells_n},\n    \"tasks_per_sequence\": {n_tasks},\n    \"sequences_per_cell\": 2,\n    \"tasks_per_run\": {tasks_per_run},\n    \"seed\": {seed},\n    \"mode\": \"{mode}\"\n  }},\n  \"current\": {{\n    \"tasks_per_sec\": {tasks_per_sec},\n    \"median_run_secs\": {median},\n    \"reps\": {reps}\n  }},\n  \"regret\": [\n{cell_lines}  ]\n}}\n",
        cells_n = sweep.n_cells(),
        seed = sweep.seed,
        mode = if smoke { "smoke" } else { "full" },
    );
    let path = if smoke {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/BENCH_adaptive.smoke.json"
        )
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_adaptive.json")
    };
    match std::fs::write(path, json) {
        Ok(()) => println!("adaptive_trajectory: wrote {path}"),
        Err(e) => println!("adaptive_trajectory: could not write {path}: {e}"),
    }
}

criterion_group!(
    benches,
    bench_sweep_throughput,
    bench_sweep_single_cell_overhead,
    bench_sweep_trajectory,
    bench_fleet_trajectory,
    bench_fleet_scale_trajectory,
    bench_adaptive_trajectory
);
criterion_main!(benches);
