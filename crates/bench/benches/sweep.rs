//! Criterion benches for the batched [`ScenarioSweep`] runner — the
//! throughput trajectory every future scaling PR (sharding, caching,
//! multi-backend) is measured against.
//!
//! Reported unit: one full `run()` of a fixed sweep. Divide by
//! `n_trials_total()` (printed at startup) for per-trial cost.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use gridstrat_core::cost::StrategyParams;
use gridstrat_core::executor::{GridScenario, MonteCarloConfig, ScenarioSweep};
use gridstrat_workload::WeekId;

fn strategies() -> Vec<StrategyParams> {
    vec![
        StrategyParams::Single { t_inf: 700.0 },
        StrategyParams::Multiple { b: 3, t_inf: 800.0 },
        StrategyParams::Delayed {
            t0: 400.0,
            t_inf: 560.0,
        },
    ]
}

fn bench_sweep_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("scenario_sweep");
    g.sample_size(10);
    for &trials in &[100usize, 500] {
        let sweep = ScenarioSweep::new(
            strategies(),
            vec![WeekId::W2006Ix, WeekId::W2007_51],
            vec![
                GridScenario::baseline(),
                GridScenario::new("2x-faults", 2.0, 1.0),
            ],
            MonteCarloConfig {
                trials,
                seed: 0xBE7C,
            },
        );
        println!(
            "scenario_sweep/run/{trials}: {} cells, {} total trials per run()",
            sweep.n_cells(),
            sweep.n_trials_total()
        );
        g.bench_with_input(BenchmarkId::new("run", trials), &sweep, |b, sweep| {
            b.iter(|| black_box(sweep.run()))
        });
    }
    g.finish();
}

fn bench_sweep_single_cell_overhead(c: &mut Criterion) {
    // one-cell sweep vs the same trials through StrategyExecutor: the
    // batching layer should cost nothing beyond the trials themselves
    use gridstrat_core::executor::StrategyExecutor;

    let mut g = c.benchmark_group("sweep_overhead");
    g.sample_size(10);
    let cfg = MonteCarloConfig {
        trials: 500,
        seed: 0xBE7C,
    };
    let sweep = ScenarioSweep::over_strategies(
        vec![StrategyParams::Single { t_inf: 700.0 }],
        WeekId::W2006Ix,
        cfg,
    );
    g.bench_function("one_cell_sweep_500_trials", |b| {
        b.iter(|| black_box(sweep.run()))
    });
    let week = WeekId::W2006Ix.model();
    g.bench_function("executor_500_trials", |b| {
        b.iter(|| {
            let ex = StrategyExecutor::new(week.clone(), cfg);
            black_box(ex.run(StrategyParams::Single { t_inf: 700.0 }))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_sweep_throughput,
    bench_sweep_single_cell_overhead
);
criterion_main!(benches);
