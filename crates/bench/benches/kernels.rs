//! Criterion benches for the numerical kernels behind the strategy models:
//! ECDF construction and integral queries, the eq. 1–5 evaluations, and the
//! optimizers. These are the operations a client-side scheduler would run
//! online, so their costs matter beyond reproduction.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use gridstrat_bench::{model_for, DEFAULT_SEED};
use gridstrat_core::latency::{EmpiricalModel, LatencyModel};
use gridstrat_core::strategy::{DelayedResubmission, MultipleSubmission, SingleResubmission};
use gridstrat_stats::Ecdf;
use gridstrat_workload::WeekId;

fn trace_samples(n: usize) -> Vec<f64> {
    let model = WeekId::W2006Ix.model();
    let trace = model.generate(n, 7);
    trace.records.iter().map(|r| r.latency_s).collect()
}

fn bench_ecdf(c: &mut Criterion) {
    let mut g = c.benchmark_group("ecdf");
    for &n in &[1_000usize, 10_000] {
        let samples = trace_samples(n);
        g.bench_with_input(BenchmarkId::new("build", n), &samples, |b, s| {
            b.iter(|| Ecdf::from_samples(black_box(s), 10_000.0).unwrap())
        });
        let e = Ecdf::from_samples(&samples, 10_000.0).unwrap();
        g.bench_with_input(BenchmarkId::new("survival_integral", n), &e, |b, e| {
            b.iter(|| black_box(e.survival_integral(black_box(700.0))))
        });
        g.bench_with_input(BenchmarkId::new("product_integrals", n), &e, |b, e| {
            b.iter(|| black_box(e.survival_product_integrals(black_box(350.0), black_box(150.0))))
        });
        // the O(log n) powered query off warm prefix tables (the steady
        // state of a tuning loop) vs a cold Ecdf paying the one-off build
        e.powered_survival_integrals(5, 1.0); // warm the b=5 tables
        g.bench_with_input(BenchmarkId::new("powered_integrals_warm", n), &e, |b, e| {
            b.iter(|| black_box(e.powered_survival_integrals(black_box(5), black_box(700.0))))
        });
        g.bench_with_input(
            BenchmarkId::new("powered_tables_cold_build", n),
            &samples,
            |b, s| {
                b.iter(|| {
                    let cold = Ecdf::from_samples(black_box(s), 10_000.0).unwrap();
                    black_box(cold.powered_survival_integrals(black_box(5), black_box(700.0)))
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("powered_product_integrals", n),
            &e,
            |b, e| {
                b.iter(|| {
                    black_box(e.powered_survival_product_integrals(
                        black_box(2),
                        black_box(350.0),
                        black_box(150.0),
                    ))
                })
            },
        );
        g.bench_with_input(BenchmarkId::new("body_stats", n), &e, |b, e| {
            b.iter(|| black_box((e.body_mean(), e.body_std(), e.censored_mean_lower_bound())))
        });
    }
    g.finish();
}

/// The real tuning shape the tables exist for: one powered query per
/// candidate timeout over the whole distinct-sample grid — O(n log n) with
/// the tables, O(n²) with the old per-query body scan.
fn bench_tuning_loop(c: &mut Criterion) {
    let model = model_for(WeekId::W2006Ix, DEFAULT_SEED);
    let candidates = model.candidate_timeouts();
    let mut g = c.benchmark_group("tuning_loop");
    g.sample_size(10);
    g.bench_function(
        BenchmarkId::new("powered_b5_all_candidates", candidates.len()),
        |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for &t in &candidates {
                    let (a, m) = model.powered_survival_integrals(5, t);
                    acc += a + m;
                }
                black_box(acc)
            })
        },
    );
    g.finish();
}

fn bench_expectations(c: &mut Criterion) {
    let model = model_for(WeekId::W2006Ix, DEFAULT_SEED);
    let mut g = c.benchmark_group("expectation");
    g.bench_function("single_eq1", |b| {
        b.iter(|| black_box(SingleResubmission::expectation(&model, black_box(600.0))))
    });
    g.bench_function("single_eq2_sigma", |b| {
        b.iter(|| black_box(SingleResubmission::std_dev(&model, black_box(600.0))))
    });
    for bb in [2u32, 5, 10] {
        g.bench_with_input(BenchmarkId::new("multiple_eq3", bb), &bb, |bch, &bb| {
            bch.iter(|| {
                black_box(MultipleSubmission::expectation(
                    &model,
                    bb,
                    black_box(800.0),
                ))
            })
        });
    }
    g.bench_function("delayed_eq5", |b| {
        b.iter(|| {
            black_box(DelayedResubmission::expectation(
                &model,
                black_box(339.0),
                black_box(485.0),
            ))
        })
    });
    g.bench_function("delayed_eq5_moments", |b| {
        b.iter(|| {
            black_box(DelayedResubmission::moments(
                &model,
                black_box(339.0),
                black_box(485.0),
            ))
        })
    });
    g.finish();
}

fn bench_optimizers(c: &mut Criterion) {
    let model = model_for(WeekId::W2006Ix, DEFAULT_SEED);
    let mut g = c.benchmark_group("optimize");
    g.sample_size(20);
    g.bench_function("single_optimal_timeout", |b| {
        b.iter(|| black_box(SingleResubmission::optimize(&model)))
    });
    g.bench_function("multiple_b5_optimal_timeout", |b| {
        b.iter(|| black_box(MultipleSubmission::optimize(&model, 5)))
    });
    g.bench_function("delayed_ratio_1_3", |b| {
        b.iter(|| black_box(DelayedResubmission::optimize_with_ratio(&model, 1.3)))
    });
    g.sample_size(10);
    g.bench_function("delayed_free_2d", |b| {
        b.iter(|| black_box(DelayedResubmission::optimize(&model)))
    });
    g.finish();
}

fn bench_model_construction(c: &mut Criterion) {
    let trace = WeekId::W2006Ix.generate(DEFAULT_SEED);
    c.bench_function("empirical_model_from_trace", |b| {
        b.iter(|| black_box(EmpiricalModel::from_trace(black_box(&trace)).unwrap()))
    });
    let model = EmpiricalModel::from_trace(&trace).unwrap();
    c.bench_function("powered_survival_b10", |b| {
        b.iter(|| black_box(model.powered_survival_integrals(10, black_box(900.0))))
    });
}

fn bench_analysis_extensions(c: &mut Criterion) {
    use gridstrat_core::application::JSampler;
    use gridstrat_core::cost::StrategyParams;
    use gridstrat_core::strategy::JDistribution;
    use gridstrat_stats::hazard::HazardProfile;
    use gridstrat_stats::rng::derived_rng;

    let trace = WeekId::W2006Ix.generate(DEFAULT_SEED);
    let model = EmpiricalModel::from_trace(&trace).unwrap();
    let ecdf = model.ecdf().clone();

    let mut g = c.benchmark_group("extensions");
    g.bench_function("hazard_profile_10bins", |b| {
        b.iter(|| black_box(HazardProfile::from_ecdf(black_box(&ecdf), 10)))
    });
    let spec = StrategyParams::Delayed {
        t0: 339.0,
        t_inf: 485.0,
    };
    let dist = JDistribution::new(&model, spec).unwrap();
    g.bench_function("j_distribution_cdf", |b| {
        b.iter(|| black_box(dist.cdf(black_box(1_234.0))))
    });
    g.bench_function("j_distribution_makespan_q", |b| {
        b.iter(|| black_box(dist.makespan_quantile(500, black_box(0.5))))
    });
    let sampler = JSampler::new(&ecdf, spec);
    g.bench_function("j_sampler_1000_draws", |b| {
        b.iter(|| {
            let mut rng = derived_rng(1, 0);
            let mut acc = 0.0;
            for _ in 0..1000 {
                acc += sampler.sample(&mut rng);
            }
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_ecdf,
    bench_tuning_loop,
    bench_expectations,
    bench_optimizers,
    bench_model_construction,
    bench_analysis_extensions
);
criterion_main!(benches);
