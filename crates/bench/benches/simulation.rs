//! Criterion benches for the discrete-event simulator and the Monte-Carlo
//! strategy executors: engine event throughput, probe-harness trace
//! collection, and per-trial strategy execution cost.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use gridstrat_core::cost::StrategyParams;
use gridstrat_core::executor::{MonteCarloConfig, StrategyExecutor};
use gridstrat_sim::{GridConfig, GridSimulation, ProbeHarness};
use gridstrat_workload::WeekModel;

fn week() -> WeekModel {
    WeekModel::calibrate("bench", 500.0, 700.0, 0.10, 150.0, 10_000.0).unwrap()
}

fn bench_probe_harness(c: &mut Criterion) {
    let mut g = c.benchmark_group("probe_harness");
    g.sample_size(20);
    for &n in &[200usize, 1_000] {
        g.bench_with_input(BenchmarkId::new("oracle_records", n), &n, |b, &n| {
            b.iter(|| {
                let mut sim =
                    GridSimulation::new(GridConfig::oracle(week()), 1).expect("valid config");
                let mut h = ProbeHarness::new("bench", n, 25, 10_000.0);
                sim.run_controller(&mut h);
                black_box(h.into_trace())
            })
        });
    }
    g.bench_function("pipeline_records_200", |b| {
        b.iter(|| {
            let mut cfg = GridConfig::pipeline_default();
            cfg.background = None;
            let mut sim = GridSimulation::new(cfg, 2).expect("valid config");
            let mut h = ProbeHarness::new("bench", 200, 10, 10_000.0);
            sim.run_controller(&mut h);
            black_box(h.into_trace())
        })
    });
    g.finish();
}

fn bench_strategy_trials(c: &mut Criterion) {
    let mut g = c.benchmark_group("strategy_mc");
    g.sample_size(10);
    let specs = [
        ("single", StrategyParams::Single { t_inf: 700.0 }),
        (
            "multiple_b3",
            StrategyParams::Multiple { b: 3, t_inf: 800.0 },
        ),
        (
            "delayed",
            StrategyParams::Delayed {
                t0: 400.0,
                t_inf: 550.0,
            },
        ),
    ];
    for (name, spec) in specs {
        g.bench_function(format!("{name}_500_trials"), |b| {
            b.iter(|| {
                let ex = StrategyExecutor::new(
                    week(),
                    MonteCarloConfig {
                        trials: 500,
                        seed: 3,
                    },
                );
                black_box(ex.run(spec))
            })
        });
    }
    g.finish();
}

fn bench_background_load(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline_congestion");
    g.sample_size(10);
    g.bench_function("congested_farm_100_probes", |b| {
        b.iter(|| {
            let mut cfg = GridConfig::pipeline_default();
            cfg.sites.truncate(2);
            let mut sim = GridSimulation::new(cfg, 4).expect("valid config");
            let mut h = ProbeHarness::new("bench", 100, 10, 10_000.0);
            sim.run_controller(&mut h);
            black_box(h.into_trace())
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_probe_harness,
    bench_strategy_trials,
    bench_background_load
);
criterion_main!(benches);
