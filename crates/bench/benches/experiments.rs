//! One Criterion benchmark per paper table/figure: times the full
//! regeneration of each artefact (trace synthesis + model fit + analysis).
//!
//! Heavy experiments (table5/table6 run a 2-D ∆cost optimization per week)
//! use a reduced sample count so `cargo bench` completes in minutes; the
//! `repro` binary remains the reference for full-size runs.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gridstrat_bench::experiments;
use gridstrat_bench::DEFAULT_SEED;
use gridstrat_core::cost::optimize_delayed_delta_cost;
use gridstrat_core::latency::EmpiricalModel;
use gridstrat_workload::WeekId;

fn bench_fast_experiments(c: &mut Criterion) {
    let mut g = c.benchmark_group("repro");
    g.sample_size(10);
    g.bench_function("figure1", |b| {
        b.iter(|| black_box(experiments::figure1(DEFAULT_SEED)))
    });
    g.bench_function("table1", |b| {
        b.iter(|| black_box(experiments::table1(DEFAULT_SEED)))
    });
    g.bench_function("figure2", |b| {
        b.iter(|| black_box(experiments::figure2(DEFAULT_SEED)))
    });
    g.bench_function("table2", |b| {
        b.iter(|| black_box(experiments::table2(DEFAULT_SEED)))
    });
    g.bench_function("figure4", |b| {
        b.iter(|| black_box(experiments::figure4(DEFAULT_SEED)))
    });
    g.bench_function("figure5", |b| {
        b.iter(|| black_box(experiments::figure5(DEFAULT_SEED)))
    });
    g.bench_function("table3", |b| {
        b.iter(|| black_box(experiments::table3(DEFAULT_SEED)))
    });
    g.bench_function("figure6", |b| {
        b.iter(|| black_box(experiments::figure6(DEFAULT_SEED)))
    });
    g.bench_function("figure7", |b| {
        b.iter(|| black_box(experiments::figure7(DEFAULT_SEED)))
    });
    g.bench_function("table4", |b| {
        b.iter(|| black_box(experiments::table4(DEFAULT_SEED)))
    });
    g.bench_function("figure8", |b| {
        b.iter(|| black_box(experiments::figure8(DEFAULT_SEED)))
    });
    g.finish();
}

fn bench_figure3(c: &mut Criterion) {
    let mut g = c.benchmark_group("repro_medium");
    g.sample_size(10);
    g.bench_function("figure3", |b| {
        b.iter(|| black_box(experiments::figure3(DEFAULT_SEED)))
    });
    g.finish();
}

/// table5/table6 cores, reduced to a single week so the bench measures the
/// per-week ∆cost optimization without multiplying it by 12.
fn bench_heavy_cores(c: &mut Criterion) {
    let mut g = c.benchmark_group("repro_heavy_core");
    g.sample_size(10);
    let trace = WeekId::W2007_51.generate(DEFAULT_SEED);
    let model = EmpiricalModel::from_trace(&trace).expect("valid trace");
    g.bench_function("table5_one_week_delta_cost_opt", |b| {
        b.iter(|| black_box(optimize_delayed_delta_cost(&model)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fast_experiments,
    bench_figure3,
    bench_heavy_cores
);
criterion_main!(benches);
