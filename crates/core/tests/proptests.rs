//! Property-based tests for the strategy models: the structural laws of
//! eqs. 1–6 that must hold for *any* defective latency model, not just the
//! calibrated EGEE weeks.
//!
//! The crates.io `proptest` harness is unavailable offline, so these use a
//! seeded hand-rolled generator: every `#[test]` draws `CASES` random
//! inputs from a fixed stream, making failures exactly reproducible (the
//! failing case index is part of the assertion message).

use gridstrat_core::cost::delta_cost;
use gridstrat_core::latency::{EmpiricalModel, LatencyModel};
use gridstrat_core::strategy::{DelayedResubmission, MultipleSubmission, SingleResubmission};
use gridstrat_stats::rng::derived_rng;
use rand::rngs::StdRng;
use rand::Rng;

const CASES: usize = 96;

/// Random censored latency samples with a guaranteed non-degenerate body.
fn latency_samples(rng: &mut StdRng) -> Vec<f64> {
    let n_body = rng.gen_range(5..80usize);
    let n_out = rng.gen_range(0..20usize);
    let mut xs: Vec<f64> = (0..n_body)
        .map(|_| rng.gen_range(50.0..9_500.0f64))
        .collect();
    xs.extend((0..n_out).map(|_| rng.gen_range(10_000.0..30_000.0f64)));
    xs
}

fn model_from(samples: &[f64]) -> EmpiricalModel {
    EmpiricalModel::from_samples(samples, 10_000.0).unwrap()
}

#[test]
fn eq1_expectation_at_least_conditional_mean_below_timeout() {
    let mut rng = derived_rng(0xC0DE, 1);
    for case in 0..CASES {
        let samples = latency_samples(&mut rng);
        let t_inf = rng.gen_range(60.0..9_400.0f64);
        let m = model_from(&samples);
        let e = SingleResubmission::expectation(&m, t_inf);
        if e.is_finite() {
            // E_J ≥ E[R | R < t∞] (resubmission can only add waiting)
            let below: Vec<f64> = samples.iter().copied().filter(|&x| x < t_inf).collect();
            if below.is_empty() {
                continue;
            }
            let cond_mean = below.iter().sum::<f64>() / below.len() as f64;
            assert!(
                e >= cond_mean - 1e-6,
                "case {case}: E_J {e} < conditional mean {cond_mean}"
            );
        }
    }
}

#[test]
fn eq2_variance_nonnegative() {
    let mut rng = derived_rng(0xC0DE, 2);
    for case in 0..CASES {
        let m = model_from(&latency_samples(&mut rng));
        let t_inf = rng.gen_range(60.0..9_400.0f64);
        let v = SingleResubmission::variance(&m, t_inf);
        assert!(v >= 0.0 || v.is_infinite(), "case {case}: variance {v}");
    }
}

#[test]
fn eq3_more_copies_never_hurt_at_fixed_timeout() {
    let mut rng = derived_rng(0xC0DE, 3);
    for case in 0..CASES {
        let m = model_from(&latency_samples(&mut rng));
        let t_inf = rng.gen_range(60.0..9_400.0f64);
        let b = rng.gen_range(1..12u32);
        let e_b = MultipleSubmission::expectation(&m, b, t_inf);
        let e_b1 = MultipleSubmission::expectation(&m, b + 1, t_inf);
        if e_b.is_finite() {
            assert!(
                e_b1 <= e_b + 1e-9,
                "case {case}: E(b+1) {e_b1} > E(b) {e_b}"
            );
        }
    }
}

#[test]
fn eq3_reduces_to_eq1_at_b1() {
    let mut rng = derived_rng(0xC0DE, 4);
    for case in 0..CASES {
        let m = model_from(&latency_samples(&mut rng));
        let t_inf = rng.gen_range(60.0..9_400.0f64);
        let single = SingleResubmission::expectation(&m, t_inf);
        let multi = MultipleSubmission::expectation(&m, 1, t_inf);
        if single.is_finite() {
            assert!(
                (single - multi).abs() <= 1e-9 * single.max(1.0),
                "case {case}: single {single} vs b=1 {multi}"
            );
        } else {
            assert!(multi.is_infinite(), "case {case}");
        }
    }
}

#[test]
fn eq5_degenerates_to_eq1_on_the_diagonal() {
    let mut rng = derived_rng(0xC0DE, 5);
    for case in 0..CASES {
        let m = model_from(&latency_samples(&mut rng));
        let t = rng.gen_range(60.0..9_000.0f64);
        let single = SingleResubmission::expectation(&m, t);
        let delayed = DelayedResubmission::expectation(&m, t, t);
        if single.is_finite() {
            assert!(
                (single - delayed).abs() <= 1e-7 * single.max(1.0),
                "case {case}: diagonal mismatch: single {single} delayed {delayed}"
            );
        } else {
            assert!(delayed.is_infinite(), "case {case}");
        }
    }
}

#[test]
fn eq5_beats_or_matches_single_with_same_timeout() {
    // adding an extra (delayed) copy can only reduce the first-start
    // time: E_delayed(t0, t∞) ≤ E_single(t∞)… with the SAME total
    // timeout t∞ per job. Here t∞ ∈ [t0, 2 t0].
    let mut rng = derived_rng(0xC0DE, 6);
    for case in 0..CASES {
        let m = model_from(&latency_samples(&mut rng));
        let t0 = rng.gen_range(60.0..4_500.0f64);
        let t_inf = t0 + rng.gen_range(0.0..1.0f64) * t0;
        let delayed = DelayedResubmission::expectation(&m, t0, t_inf);
        let single = SingleResubmission::expectation(&m, t_inf);
        if single.is_finite() && delayed.is_finite() {
            assert!(
                delayed <= single + 1e-6,
                "case {case}: delayed {delayed} worse than single {single} at t∞ {t_inf}"
            );
        }
    }
}

#[test]
fn eq5_sigma_nonnegative_and_finite_when_expectation_is() {
    let mut rng = derived_rng(0xC0DE, 7);
    for case in 0..CASES {
        let m = model_from(&latency_samples(&mut rng));
        let t0 = rng.gen_range(60.0..4_500.0f64);
        let t_inf = t0 + rng.gen_range(0.0..1.0f64) * t0;
        let (e, s) = DelayedResubmission::moments(&m, t0, t_inf);
        if e.is_finite() {
            assert!(s >= 0.0 && s.is_finite(), "case {case}: σ {s}");
        }
    }
}

#[test]
fn n_parallel_stays_in_band() {
    let mut rng = derived_rng(0xC0DE, 8);
    for case in 0..CASES {
        let t0 = rng.gen_range(10.0..5_000.0f64);
        let t_inf = t0 + rng.gen_range(0.0..1.0f64) * t0;
        let l = rng.gen_range(0.1..50_000.0f64);
        let n = DelayedResubmission::n_parallel_at(l, t0, t_inf);
        assert!(
            (1.0..2.0 + 1e-12).contains(&n),
            "case {case}: N_// {n} out of [1,2]"
        );
    }
}

#[test]
fn n_parallel_converges_to_ratio() {
    let mut rng = derived_rng(0xC0DE, 9);
    for case in 0..CASES {
        let t0 = rng.gen_range(10.0..1_000.0f64);
        let t_inf = t0 + rng.gen_range(0.01..0.99f64) * t0;
        let n = DelayedResubmission::n_parallel_at(1e7, t0, t_inf);
        assert!((n - t_inf / t0).abs() < 1e-3, "case {case}: N {n}");
    }
}

#[test]
fn optimal_single_timeout_is_a_sample() {
    let mut rng = derived_rng(0xC0DE, 10);
    for case in 0..CASES {
        let samples = latency_samples(&mut rng);
        let m = model_from(&samples);
        let opt = SingleResubmission::optimize(&m);
        assert!(
            samples.iter().any(|&x| (x - opt.timeout).abs() < 1e-12),
            "case {case}: optimum {} is not a sample value",
            opt.timeout
        );
        // and no sample value gives a lower expectation
        for &t in &samples {
            if t < 10_000.0 {
                assert!(
                    SingleResubmission::expectation(&m, t) >= opt.expectation - 1e-9,
                    "case {case}: t {t} beats the optimum"
                );
            }
        }
    }
}

#[test]
fn delta_cost_of_single_is_one() {
    let mut rng = derived_rng(0xC0DE, 11);
    for case in 0..CASES {
        let m = model_from(&latency_samples(&mut rng));
        let opt = SingleResubmission::optimize(&m);
        let dc = delta_cost(1.0, opt.expectation, opt.expectation);
        assert!((dc - 1.0).abs() < 1e-12, "case {case}: ∆cost {dc}");
    }
}

#[test]
fn powered_integrals_decrease_in_b() {
    let mut rng = derived_rng(0xC0DE, 12);
    for case in 0..CASES {
        let m = model_from(&latency_samples(&mut rng));
        let t = rng.gen_range(60.0..9_000.0f64);
        let b = rng.gen_range(1..10u32);
        let (a1, m1) = m.powered_survival_integrals(b, t);
        let (a2, m2) = m.powered_survival_integrals(b + 1, t);
        assert!(a2 <= a1 + 1e-12, "case {case}");
        assert!(m2 <= m1 + 1e-9, "case {case}");
        assert!(a2 >= 0.0 && m2 >= 0.0, "case {case}");
    }
}

#[test]
fn j_distribution_cdf_bounds_and_monotonicity() {
    use gridstrat_core::cost::StrategyParams;
    use gridstrat_core::strategy::JDistribution;

    let mut rng = derived_rng(0xC0DE, 13);
    for case in 0..CASES {
        let m = model_from(&latency_samples(&mut rng));
        let t0 = rng.gen_range(100.0..4_000.0f64);
        let t_inf = t0 + rng.gen_range(0.0..1.0f64) * t0;
        let mut ts: Vec<f64> = (0..6).map(|_| rng.gen_range(0.0..50_000.0f64)).collect();
        let Ok(d) = JDistribution::new(&m, StrategyParams::Delayed { t0, t_inf }) else {
            continue; // timeout below the support: correctly rejected
        };
        ts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = 0.0;
        for t in ts {
            let v = d.cdf(t);
            assert!((0.0..=1.0).contains(&v), "case {case}: cdf({t}) = {v}");
            assert!(v + 1e-12 >= prev, "case {case}: cdf not monotone at {t}");
            prev = v;
        }
    }
}

#[test]
fn generalized_delayed_bounded_by_components() {
    // E_delayed-multiple(b) ≤ min(E_delayed(1), E_multiple(b, t∞))
    let mut rng = derived_rng(0xC0DE, 14);
    for case in 0..CASES {
        let m = model_from(&latency_samples(&mut rng));
        let t0 = rng.gen_range(100.0..4_000.0f64);
        let t_inf = t0 + rng.gen_range(0.0..1.0f64) * t0;
        let b = rng.gen_range(2..5u32);
        let gen = DelayedResubmission::expectation_with_copies(&m, b, t0, t_inf);
        let single_copy = DelayedResubmission::expectation(&m, t0, t_inf);
        let burst = MultipleSubmission::expectation(&m, b, t_inf);
        if gen.is_finite() {
            assert!(gen <= single_copy + 1e-6, "case {case}");
            assert!(gen <= burst + 1e-6, "case {case}");
        }
    }
}

#[test]
fn strategy_trait_agrees_with_closed_forms_on_random_models() {
    // the Strategy-trait view must be numerically identical to the
    // associated-function closed forms for every family
    use gridstrat_core::cost::StrategyParams;
    use gridstrat_core::strategy::Strategy;

    let mut rng = derived_rng(0xC0DE, 15);
    for case in 0..CASES {
        let m = model_from(&latency_samples(&mut rng));
        let t_inf = rng.gen_range(200.0..9_000.0f64);
        let b = rng.gen_range(2..6u32);
        let t0 = rng.gen_range(100.0..4_000.0f64);
        let ti = t0 + rng.gen_range(0.0..1.0f64) * t0;

        let s = StrategyParams::Single { t_inf };
        assert_eq!(
            s.expected_j(&m).to_bits(),
            SingleResubmission::expectation(&m, t_inf).to_bits(),
            "case {case}: single"
        );
        let mu = StrategyParams::Multiple { b, t_inf };
        assert_eq!(
            mu.expected_j(&m).to_bits(),
            MultipleSubmission::expectation(&m, b, t_inf).to_bits(),
            "case {case}: multiple"
        );
        let d = StrategyParams::Delayed { t0, t_inf: ti };
        assert_eq!(
            d.expected_j(&m).to_bits(),
            DelayedResubmission::expectation(&m, t0, ti).to_bits(),
            "case {case}: delayed"
        );
    }
}
