//! Property-based tests for the strategy models: the structural laws of
//! eqs. 1–6 that must hold for *any* defective latency model, not just the
//! calibrated EGEE weeks.

use gridstrat_core::cost::delta_cost;
use gridstrat_core::latency::{EmpiricalModel, LatencyModel};
use gridstrat_core::strategy::{DelayedResubmission, MultipleSubmission, SingleResubmission};
use proptest::prelude::*;

/// Random censored latency samples with a guaranteed non-degenerate body.
fn latency_samples() -> impl Strategy<Value = Vec<f64>> {
    (
        proptest::collection::vec(50.0f64..9_500.0, 5..80),
        proptest::collection::vec(10_000.0f64..30_000.0, 0..20),
    )
        .prop_map(|(mut body, outliers)| {
            body.extend(outliers);
            body
        })
}

fn model_from(samples: &[f64]) -> EmpiricalModel {
    EmpiricalModel::from_samples(samples, 10_000.0).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn eq1_expectation_at_least_conditional_mean_below_timeout(
        samples in latency_samples(), t_inf in 60.0f64..9_400.0,
    ) {
        let m = model_from(&samples);
        let e = SingleResubmission::expectation(&m, t_inf);
        if e.is_finite() {
            // E_J ≥ E[R | R < t∞] (resubmission can only add waiting)
            let below: Vec<f64> = samples.iter().copied().filter(|&x| x < t_inf).collect();
            prop_assume!(!below.is_empty());
            let cond_mean = below.iter().sum::<f64>() / below.len() as f64;
            prop_assert!(e >= cond_mean - 1e-6, "E_J {e} < conditional mean {cond_mean}");
        }
    }

    #[test]
    fn eq2_variance_nonnegative(samples in latency_samples(), t_inf in 60.0f64..9_400.0) {
        let m = model_from(&samples);
        let v = SingleResubmission::variance(&m, t_inf);
        prop_assert!(v >= 0.0 || v.is_infinite());
    }

    #[test]
    fn eq3_more_copies_never_hurt_at_fixed_timeout(
        samples in latency_samples(), t_inf in 60.0f64..9_400.0, b in 1u32..12,
    ) {
        let m = model_from(&samples);
        let e_b = MultipleSubmission::expectation(&m, b, t_inf);
        let e_b1 = MultipleSubmission::expectation(&m, b + 1, t_inf);
        if e_b.is_finite() {
            prop_assert!(e_b1 <= e_b + 1e-9, "E(b+1) {e_b1} > E(b) {e_b}");
        }
    }

    #[test]
    fn eq3_reduces_to_eq1_at_b1(samples in latency_samples(), t_inf in 60.0f64..9_400.0) {
        let m = model_from(&samples);
        let single = SingleResubmission::expectation(&m, t_inf);
        let multi = MultipleSubmission::expectation(&m, 1, t_inf);
        if single.is_finite() {
            prop_assert!((single - multi).abs() <= 1e-9 * single.max(1.0));
        } else {
            prop_assert!(multi.is_infinite());
        }
    }

    #[test]
    fn eq5_degenerates_to_eq1_on_the_diagonal(
        samples in latency_samples(), t in 60.0f64..9_000.0,
    ) {
        let m = model_from(&samples);
        let single = SingleResubmission::expectation(&m, t);
        let delayed = DelayedResubmission::expectation(&m, t, t);
        if single.is_finite() {
            prop_assert!((single - delayed).abs() <= 1e-7 * single.max(1.0),
                "diagonal mismatch: single {single} delayed {delayed}");
        } else {
            prop_assert!(delayed.is_infinite());
        }
    }

    #[test]
    fn eq5_beats_or_matches_single_with_same_timeout(
        samples in latency_samples(), t0 in 60.0f64..4_500.0, frac in 0.0f64..1.0,
    ) {
        // adding an extra (delayed) copy can only reduce the first-start
        // time: E_delayed(t0, t∞) ≤ E_single(t∞)… with the SAME total
        // timeout t∞ per job. Here t∞ ∈ [t0, 2 t0].
        let m = model_from(&samples);
        let t_inf = t0 + frac * t0;
        let delayed = DelayedResubmission::expectation(&m, t0, t_inf);
        let single = SingleResubmission::expectation(&m, t_inf);
        if single.is_finite() && delayed.is_finite() {
            prop_assert!(delayed <= single + 1e-6,
                "delayed {delayed} worse than single {single} at t∞ {t_inf}");
        }
    }

    #[test]
    fn eq5_sigma_nonnegative_and_finite_when_expectation_is(
        samples in latency_samples(), t0 in 60.0f64..4_500.0, frac in 0.0f64..1.0,
    ) {
        let m = model_from(&samples);
        let t_inf = t0 + frac * t0;
        let (e, s) = DelayedResubmission::moments(&m, t0, t_inf);
        if e.is_finite() {
            prop_assert!(s >= 0.0 && s.is_finite());
        }
    }

    #[test]
    fn n_parallel_stays_in_band(
        t0 in 10.0f64..5_000.0, frac in 0.0f64..1.0, l in 0.1f64..50_000.0,
    ) {
        let t_inf = t0 + frac * t0;
        let n = DelayedResubmission::n_parallel_at(l, t0, t_inf);
        prop_assert!((1.0..2.0 + 1e-12).contains(&n), "N_// {n} out of [1,2]");
    }

    #[test]
    fn n_parallel_converges_to_ratio(t0 in 10.0f64..1_000.0, frac in 0.01f64..0.99) {
        let t_inf = t0 + frac * t0;
        let n = DelayedResubmission::n_parallel_at(1e7, t0, t_inf);
        prop_assert!((n - t_inf / t0).abs() < 1e-3);
    }

    #[test]
    fn optimal_single_timeout_is_a_sample(samples in latency_samples()) {
        let m = model_from(&samples);
        let opt = SingleResubmission::optimize(&m);
        prop_assert!(samples.iter().any(|&x| (x - opt.timeout).abs() < 1e-12));
        // and no sample value gives a lower expectation
        for &t in &samples {
            if t < 10_000.0 {
                prop_assert!(SingleResubmission::expectation(&m, t) >= opt.expectation - 1e-9);
            }
        }
    }

    #[test]
    fn delta_cost_of_single_is_one(samples in latency_samples()) {
        let m = model_from(&samples);
        let opt = SingleResubmission::optimize(&m);
        let dc = delta_cost(1.0, opt.expectation, opt.expectation);
        prop_assert!((dc - 1.0).abs() < 1e-12);
    }

    #[test]
    fn powered_integrals_decrease_in_b(
        samples in latency_samples(), t in 60.0f64..9_000.0, b in 1u32..10,
    ) {
        let m = model_from(&samples);
        let (a1, m1) = m.powered_survival_integrals(b, t);
        let (a2, m2) = m.powered_survival_integrals(b + 1, t);
        prop_assert!(a2 <= a1 + 1e-12);
        prop_assert!(m2 <= m1 + 1e-9);
        prop_assert!(a2 >= 0.0 && m2 >= 0.0);
    }

    #[test]
    fn j_distribution_cdf_bounds_and_monotonicity(
        samples in latency_samples(),
        t0 in 100.0f64..4_000.0,
        frac in 0.0f64..1.0,
        ts in proptest::collection::vec(0.0f64..50_000.0, 6),
    ) {
        use gridstrat_core::cost::StrategyParams;
        use gridstrat_core::strategy::JDistribution;
        let m = model_from(&samples);
        let t_inf = t0 + frac * t0;
        let Ok(d) = JDistribution::new(&m, StrategyParams::Delayed { t0, t_inf }) else {
            return Ok(()); // timeout below the support: correctly rejected
        };
        let mut sorted = ts.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = 0.0;
        for t in sorted {
            let v = d.cdf(t);
            prop_assert!((0.0..=1.0).contains(&v));
            prop_assert!(v + 1e-12 >= prev);
            prev = v;
        }
    }

    #[test]
    fn generalized_delayed_bounded_by_components(
        samples in latency_samples(),
        t0 in 100.0f64..4_000.0,
        frac in 0.0f64..1.0,
        b in 2u32..5,
    ) {
        // E_delayed-multiple(b) ≤ min(E_delayed(1), E_multiple(b, t∞))
        let m = model_from(&samples);
        let t_inf = t0 + frac * t0;
        let gen = DelayedResubmission::expectation_with_copies(&m, b, t0, t_inf);
        let single_copy = DelayedResubmission::expectation(&m, t0, t_inf);
        let burst = MultipleSubmission::expectation(&m, b, t_inf);
        if gen.is_finite() {
            prop_assert!(gen <= single_copy + 1e-6);
            prop_assert!(gen <= burst + 1e-6);
        }
    }
}
