//! The three client-side submission strategies of the paper, unified
//! behind the [`Strategy`] trait.
//!
//! | Strategy | Paper | Parameters | Model |
//! |---|---|---|---|
//! | [`SingleResubmission`] | §4, eqs. 1–2 | timeout `t∞` | cancel + resubmit at `t∞` |
//! | [`MultipleSubmission`] | §5, eqs. 3–4 | copies `b`, timeout `t∞` | burst of `b`, cancel rest on first start |
//! | [`DelayedResubmission`] | §6, eq. 5 | delay `t0`, timeout `t∞` | copy at `t0`, cancel original at `t∞` |
//!
//! Each strategy type is **both** a parameterised instance (fields hold its
//! tuned parameters; [`Strategy`] computes `E_J`/`σ_J`/`N_//` and builds
//! the simulator controller realising the protocol) **and** a namespace of
//! associated closed-form functions (`expectation`, `std_dev`, `optimize`,
//! …) over any [`crate::latency::LatencyModel`]. The closed forms are exact
//! (single/multiple) or multi-resolution (delayed) — see each module.
//!
//! [`crate::cost::StrategyParams`] — the plain-data description of a
//! strategy instance — also implements [`Strategy`] by delegating to the
//! matching concrete type, so heterogeneous collections of strategies
//! (scenario sweeps, report tables) need no manual dispatch.

pub mod delayed;
pub mod distribution;
pub mod multiple;
pub mod single;

pub use delayed::{DelayedOutcome, DelayedResubmission};
pub use distribution::JDistribution;
pub use multiple::MultipleSubmission;
pub use single::SingleResubmission;

use crate::cost::StrategyParams;
use crate::executor::StrategyController;
use crate::latency::LatencyModel;

/// Outcome of a 1-D timeout optimization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Timeout1d {
    /// Optimal timeout `t∞` in seconds.
    pub timeout: f64,
    /// `E_J` at the optimum, seconds.
    pub expectation: f64,
    /// `σ_J` at the optimum, seconds.
    pub std_dev: f64,
}

/// A parameterised client-side submission strategy.
///
/// Unifies the two faces every strategy has in the reproduction:
///
/// * the **analytic** side — closed-form moments of the total latency `J`
///   and the paper's parallel-job count over any latency model
///   ([`Strategy::expected_j`], [`Strategy::std_j`],
///   [`Strategy::n_parallel`]);
/// * the **executable** side — a [`gridstrat_sim::Controller`] that drives
///   the discrete-event grid exactly as a user's wrapper script would
///   ([`Strategy::build_controller`]), used by the Monte-Carlo executors to
///   validate the closed forms.
///
/// The trait is object-safe: sweeps and executors work with
/// `&dyn Strategy`. [`Strategy::tune`] (re-optimising the instance's free
/// parameters on a model) is `Self: Sized` and therefore reachable on
/// concrete types and on [`StrategyParams`].
pub trait Strategy: Send + Sync {
    /// Short human-readable strategy family name.
    fn name(&self) -> &'static str;

    /// The plain-data description of this instance.
    fn params(&self) -> StrategyParams;

    /// Expected total latency `E_J` over `model`, seconds
    /// (`+∞` when the instance cannot complete on this model).
    fn expected_j(&self, model: &dyn LatencyModel) -> f64;

    /// Standard deviation `σ_J` over `model`, seconds.
    fn std_j(&self, model: &dyn LatencyModel) -> f64;

    /// Mean number of parallel jobs `N_//` under the paper's convention
    /// given an already-computed expectation `e_j` (`N_//(E_J)`; exactly
    /// `b` for multiple submission and 1 for single resubmission). Callers
    /// that already hold `E_J` should prefer this over
    /// [`Strategy::n_parallel`], which recomputes it.
    fn n_parallel_for(&self, e_j: f64) -> f64;

    /// Mean number of parallel jobs `N_//` over `model` (the paper's
    /// `N_//(E_J)` convention).
    fn n_parallel(&self, model: &dyn LatencyModel) -> f64 {
        self.n_parallel_for(self.expected_j(model))
    }

    /// Builds the simulator controller that realises this strategy against
    /// a [`gridstrat_sim::GridSimulation`]. Panics for instances whose
    /// protocol cannot be executed (e.g. an infeasible delayed pair) —
    /// validate with [`Strategy::expected_j`] first when in doubt.
    fn build_controller(&self) -> Box<dyn StrategyController>;

    /// Re-optimises the instance's *free* parameters on `model`, keeping
    /// structural ones (the collection size `b`, the copies-per-echelon
    /// count) fixed: the timeout for single/multiple, the `(t0, t∞)` pair
    /// for delayed.
    fn tune(&self, model: &dyn LatencyModel) -> Self
    where
        Self: Sized;
}

impl Strategy for StrategyParams {
    fn name(&self) -> &'static str {
        match self {
            StrategyParams::Single { .. } => SingleResubmission::FAMILY,
            StrategyParams::Multiple { .. } => MultipleSubmission::FAMILY,
            StrategyParams::Delayed { .. } => DelayedResubmission::FAMILY,
            StrategyParams::DelayedMultiple { .. } => DelayedResubmission::FAMILY_MULTI,
        }
    }

    fn params(&self) -> StrategyParams {
        *self
    }

    fn expected_j(&self, model: &dyn LatencyModel) -> f64 {
        dispatch(
            self,
            |s| s.expected_j(model),
            |s| s.expected_j(model),
            |s| s.expected_j(model),
        )
    }

    fn std_j(&self, model: &dyn LatencyModel) -> f64 {
        dispatch(
            self,
            |s| s.std_j(model),
            |s| s.std_j(model),
            |s| s.std_j(model),
        )
    }

    fn n_parallel_for(&self, e_j: f64) -> f64 {
        dispatch(
            self,
            |s| s.n_parallel_for(e_j),
            |s| s.n_parallel_for(e_j),
            |s| s.n_parallel_for(e_j),
        )
    }

    fn build_controller(&self) -> Box<dyn StrategyController> {
        dispatch(
            self,
            |s| s.build_controller(),
            |s| s.build_controller(),
            |s| s.build_controller(),
        )
    }

    fn tune(&self, model: &dyn LatencyModel) -> Self {
        dispatch(
            self,
            |s| s.tune(model).params(),
            |s| s.tune(model).params(),
            |s| s.tune(model).params(),
        )
    }
}

/// Single point where the parameter enum turns into concrete strategy
/// instances — every [`Strategy`] method of [`StrategyParams`] funnels
/// through here, so no other module needs to match on the enum.
///
/// Instances are constructed *leniently* (no feasibility assertions), so
/// the analytic trait methods mirror the closed forms exactly: an
/// infeasible delayed pair yields `+∞`/`NaN` instead of a panic — the
/// behaviour parameter scans rely on. Executing such a pair
/// ([`Strategy::build_controller`]) still panics, in the controller.
fn dispatch<T>(
    params: &StrategyParams,
    single: impl FnOnce(SingleResubmission) -> T,
    multiple: impl FnOnce(MultipleSubmission) -> T,
    delayed: impl FnOnce(DelayedResubmission) -> T,
) -> T {
    match *params {
        StrategyParams::Single { t_inf } => single(SingleResubmission { t_inf }),
        StrategyParams::Multiple { b, t_inf } => multiple(MultipleSubmission { b, t_inf }),
        StrategyParams::Delayed { t0, t_inf } => delayed(DelayedResubmission {
            copies: 1,
            t0,
            t_inf,
        }),
        StrategyParams::DelayedMultiple { b, t0, t_inf } => delayed(DelayedResubmission {
            copies: b,
            t0,
            t_inf,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::ParametricModel;
    use gridstrat_stats::{LogNormal, Shifted};

    fn heavy_model() -> ParametricModel<Shifted<LogNormal>> {
        let body = Shifted::new(LogNormal::from_mean_std(360.0, 880.0).unwrap(), 150.0).unwrap();
        ParametricModel::new(body, 0.05, 1e4).unwrap()
    }

    #[test]
    fn params_delegate_to_concrete_types() {
        let m = heavy_model();
        let cases: Vec<(StrategyParams, f64, f64)> = vec![
            (
                StrategyParams::Single { t_inf: 700.0 },
                SingleResubmission::expectation(&m, 700.0),
                1.0,
            ),
            (
                StrategyParams::Multiple { b: 3, t_inf: 800.0 },
                MultipleSubmission::expectation(&m, 3, 800.0),
                3.0,
            ),
            (
                StrategyParams::Delayed {
                    t0: 400.0,
                    t_inf: 560.0,
                },
                DelayedResubmission::expectation(&m, 400.0, 560.0),
                DelayedResubmission::evaluate(&m, 400.0, 560.0).n_parallel,
            ),
        ];
        for (spec, want_e, want_n) in cases {
            assert_eq!(spec.expected_j(&m).to_bits(), want_e.to_bits(), "{spec:?}");
            assert!((spec.n_parallel(&m) - want_n).abs() < 1e-12, "{spec:?}");
            assert_eq!(spec.params(), spec);
        }
    }

    #[test]
    fn trait_objects_are_usable() {
        let m = heavy_model();
        let strategies: Vec<Box<dyn Strategy>> = vec![
            Box::new(SingleResubmission::new(700.0)),
            Box::new(MultipleSubmission::new(2, 800.0)),
            Box::new(DelayedResubmission::new(400.0, 560.0)),
        ];
        for s in &strategies {
            let e = s.expected_j(&m);
            assert!(e.is_finite() && e > 0.0, "{}", s.name());
            assert!(s.std_j(&m).is_finite());
            assert!(s.n_parallel(&m) >= 1.0);
        }
        // names are distinct per family
        assert_eq!(strategies[0].name(), "single");
        assert_eq!(strategies[1].name(), "multiple");
        assert_eq!(strategies[2].name(), "delayed");
    }

    #[test]
    fn tune_keeps_structural_parameters() {
        let m = heavy_model();
        let tuned = StrategyParams::Multiple { b: 4, t_inf: 123.0 }.tune(&m);
        match tuned {
            StrategyParams::Multiple { b, t_inf } => {
                assert_eq!(b, 4);
                let opt = MultipleSubmission::optimize(&m, 4);
                assert_eq!(t_inf.to_bits(), opt.timeout.to_bits());
            }
            other => panic!("tune changed the variant: {other:?}"),
        }
        let tuned = StrategyParams::Delayed {
            t0: 300.0,
            t_inf: 400.0,
        }
        .tune(&m);
        match tuned {
            StrategyParams::Delayed { t0, t_inf } => {
                assert!(DelayedResubmission::feasible(t0, t_inf));
            }
            other => panic!("tune changed the variant: {other:?}"),
        }
    }
}
