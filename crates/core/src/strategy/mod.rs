//! The three client-side submission strategies of the paper.
//!
//! | Strategy | Paper | Parameters | Model |
//! |---|---|---|---|
//! | [`SingleResubmission`] | §4, eqs. 1–2 | timeout `t∞` | cancel + resubmit at `t∞` |
//! | [`MultipleSubmission`] | §5, eqs. 3–4 | copies `b`, timeout `t∞` | burst of `b`, cancel rest on first start |
//! | [`DelayedResubmission`] | §6, eq. 5 | delay `t0`, timeout `t∞` | copy at `t0`, cancel original at `t∞` |
//!
//! All three expose closed-form `E_J` / `σ_J` over a [`crate::latency::LatencyModel`]
//! plus exact (single/multiple) or multi-resolution (delayed) optimizers.

pub mod delayed;
pub mod distribution;
pub mod multiple;
pub mod single;

pub use delayed::{DelayedOutcome, DelayedResubmission};
pub use distribution::JDistribution;
pub use multiple::MultipleSubmission;
pub use single::SingleResubmission;

/// Outcome of a 1-D timeout optimization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Timeout1d {
    /// Optimal timeout `t∞` in seconds.
    pub timeout: f64,
    /// `E_J` at the optimum, seconds.
    pub expectation: f64,
    /// `σ_J` at the optimum, seconds.
    pub std_dev: f64,
}
