//! Single resubmission (paper §4).
//!
//! Wait until `t∞`; if the job has not started, cancel and resubmit;
//! iterate until a job starts before `t∞`. With `F = F̃(t∞)`, `q = 1-F`,
//! `A(t) = ∫₀ᵗ(1-F̃)` and `B(t) = ∫₀ᵗ u(1-F̃)`:
//!
//! ```text
//! E_J(t∞)  = A(t∞)/F                                   (eq. 1)
//! σ²_J(t∞) = -A²/F² + 2B/F + 2 t∞ q A/F²               (eq. 2)
//! ```
//!
//! Equation 2 was re-derived (and unit-tested) from the decomposition
//! `J = N·t∞ + R_f` with `N` geometric (failure prob. `q`) independent of
//! `R_f ~ R | R < t∞`; it matches the paper's expression exactly.

use super::{Strategy, Timeout1d};
use crate::cost::StrategyParams;
use crate::executor::{SingleCtrl, StrategyController};
use crate::latency::LatencyModel;

/// The single-resubmission strategy: an instance carries its timeout `t∞`;
/// the associated functions expose the closed forms of eqs. 1–2 directly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SingleResubmission {
    /// Cancellation/resubmission timeout `t∞`, seconds.
    pub t_inf: f64,
}

impl SingleResubmission {
    /// Family name used in reports and sweeps.
    pub const FAMILY: &'static str = "single";

    /// Creates an instance with timeout `t∞ > 0`.
    pub fn new(t_inf: f64) -> Self {
        assert!(
            t_inf.is_finite() && t_inf > 0.0,
            "timeout must be positive, got {t_inf}"
        );
        SingleResubmission { t_inf }
    }

    /// The `E_J`-optimal instance for `model` (exact for empirical models).
    pub fn optimized<M: LatencyModel + ?Sized>(model: &M) -> Self {
        SingleResubmission::new(Self::optimize(model).timeout)
    }
    /// `E_J(t∞)` — eq. 1. Returns `+∞` when `F̃(t∞) = 0` (a timeout below
    /// the minimum latency can never succeed).
    pub fn expectation<M: LatencyModel + ?Sized>(model: &M, t_inf: f64) -> f64 {
        let f = model.defective_cdf(t_inf);
        if f <= 0.0 {
            return f64::INFINITY;
        }
        model.survival_integral(t_inf) / f
    }

    /// `σ_J(t∞)` — eq. 2. Returns `+∞` when `F̃(t∞) = 0`.
    pub fn std_dev<M: LatencyModel + ?Sized>(model: &M, t_inf: f64) -> f64 {
        Self::variance(model, t_inf).sqrt()
    }

    /// `σ²_J(t∞)` — eq. 2.
    pub fn variance<M: LatencyModel + ?Sized>(model: &M, t_inf: f64) -> f64 {
        let f = model.defective_cdf(t_inf);
        if f <= 0.0 {
            return f64::INFINITY;
        }
        let q = 1.0 - f;
        let a = model.survival_integral(t_inf);
        let b = model.moment_survival_integral(t_inf);
        // clamp tiny negative round-off to zero
        (-a * a / (f * f) + 2.0 * b / f + 2.0 * t_inf * q * a / (f * f)).max(0.0)
    }

    /// Minimises `E_J` over the model's candidate timeouts.
    ///
    /// For an empirical model this is **exact**: between sample points
    /// `E_J(t)` is increasing-linear over a constant denominator, so the
    /// global minimum is attained at a sample value.
    pub fn optimize<M: LatencyModel + ?Sized>(model: &M) -> Timeout1d {
        let mut best = Timeout1d {
            timeout: f64::NAN,
            expectation: f64::INFINITY,
            std_dev: f64::INFINITY,
        };
        for t in model.candidate_timeouts() {
            let e = Self::expectation(model, t);
            if e < best.expectation {
                best = Timeout1d {
                    timeout: t,
                    expectation: e,
                    std_dev: f64::NAN,
                };
            }
        }
        assert!(
            best.expectation.is_finite(),
            "no finite E_J over candidate timeouts — degenerate model"
        );
        best.std_dev = Self::std_dev(model, best.timeout);
        best
    }
}

impl Strategy for SingleResubmission {
    fn name(&self) -> &'static str {
        Self::FAMILY
    }

    fn params(&self) -> StrategyParams {
        StrategyParams::Single { t_inf: self.t_inf }
    }

    fn expected_j(&self, model: &dyn LatencyModel) -> f64 {
        Self::expectation(model, self.t_inf)
    }

    fn std_j(&self, model: &dyn LatencyModel) -> f64 {
        Self::std_dev(model, self.t_inf)
    }

    fn n_parallel_for(&self, _e_j: f64) -> f64 {
        1.0 // exactly one job in flight at all times
    }

    fn build_controller(&self) -> Box<dyn StrategyController> {
        Box::new(SingleCtrl::new(self.t_inf))
    }

    fn tune(&self, model: &dyn LatencyModel) -> Self {
        Self::optimized(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::{EmpiricalModel, ParametricModel};
    use gridstrat_stats::Exponential;

    /// Closed forms for Exponential(λ) body with outlier ratio ρ:
    /// F̃(t) = (1-ρ)(1-e^{-λt}),
    /// A(t) = ρt + (1-ρ)(1-e^{-λt})/λ.
    fn expo_expectation(lambda: f64, rho: f64, t: f64) -> f64 {
        let f = (1.0 - rho) * (1.0 - (-lambda * t).exp());
        let a = rho * t + (1.0 - rho) * (1.0 - (-lambda * t).exp()) / lambda;
        a / f
    }

    #[test]
    fn matches_exponential_closed_form() {
        let lambda = 0.002;
        for rho in [0.0, 0.1, 0.3] {
            let m = ParametricModel::new(Exponential::new(lambda).unwrap(), rho, 1e4).unwrap();
            for t in [200.0, 500.0, 1500.0, 5000.0] {
                let got = SingleResubmission::expectation(&m, t);
                let want = expo_expectation(lambda, rho, t);
                assert!(
                    (got - want).abs() / want < 1e-4,
                    "rho={rho} t={t}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn memoryless_case_expectation_increases_with_timeout() {
        // With ρ = 0 and exponential latency, resubmission can never help:
        // E_J(t∞) = 1/λ + t∞·q/F is increasing, so small timeouts are best.
        let m = ParametricModel::new(Exponential::new(0.01).unwrap(), 0.0, 1e4).unwrap();
        let e1 = SingleResubmission::expectation(&m, 50.0);
        let e2 = SingleResubmission::expectation(&m, 500.0);
        let e3 = SingleResubmission::expectation(&m, 5000.0);
        assert!(e1 < e2 && e2 < e3);
        // and E_J ≥ mean latency always
        assert!(e1 >= 100.0 - 1e-6);
    }

    #[test]
    fn with_outliers_interior_optimum_exists() {
        // On a heavy-tailed body with a latency floor, ρ > 0 makes huge
        // timeouts costly (waiting 10⁴ s for lost jobs) while tiny timeouts
        // kill jobs that were about to start: an interior optimum appears.
        // (For a *memoryless* body the optimum is t∞ → 0 — see the test
        // above — which is why the distinction matters.)
        use gridstrat_stats::{LogNormal, Shifted};
        let body = Shifted::new(LogNormal::from_mean_std(360.0, 880.0).unwrap(), 150.0).unwrap();
        let m = ParametricModel::new(body, 0.2, 1e4).unwrap();
        let opt = SingleResubmission::optimize(&m);
        assert!(
            opt.timeout > 150.0 && opt.timeout < 9_000.0,
            "t* = {}",
            opt.timeout
        );
        // optimum beats both extremes
        assert!(opt.expectation < SingleResubmission::expectation(&m, 9_999.0));
        assert!(opt.expectation < SingleResubmission::expectation(&m, 155.0));
    }

    #[test]
    fn variance_matches_monte_carlo_for_exponential() {
        use gridstrat_stats::rng::derived_rng;
        use gridstrat_stats::Distribution;
        use rand::Rng;
        let lambda = 0.002;
        let rho = 0.15;
        let t_inf = 800.0;
        let m = ParametricModel::new(Exponential::new(lambda).unwrap(), rho, 1e6).unwrap();
        let e_model = SingleResubmission::expectation(&m, t_inf);
        let s_model = SingleResubmission::std_dev(&m, t_inf);

        // simulate the strategy directly
        let body = Exponential::new(lambda).unwrap();
        let mut rng = derived_rng(123, 0);
        let trials = 60_000;
        let mut sum = 0.0;
        let mut sq = 0.0;
        for _ in 0..trials {
            let mut total = 0.0;
            loop {
                let lat = if rng.gen::<f64>() < rho {
                    f64::INFINITY
                } else {
                    body.sample(&mut rng)
                };
                if lat < t_inf {
                    total += lat;
                    break;
                }
                total += t_inf;
            }
            sum += total;
            sq += total * total;
        }
        let mean = sum / trials as f64;
        let std = (sq / trials as f64 - mean * mean).sqrt();
        assert!(
            (mean - e_model).abs() / e_model < 0.02,
            "E: {mean} vs {e_model}"
        );
        assert!(
            (std - s_model).abs() / s_model < 0.03,
            "σ: {std} vs {s_model}"
        );
    }

    #[test]
    fn empirical_optimum_is_at_a_sample_value() {
        let samples = [120.0, 300.0, 450.0, 700.0, 20_000.0, 20_000.0];
        let m = EmpiricalModel::from_samples(&samples, 10_000.0).unwrap();
        let opt = SingleResubmission::optimize(&m);
        assert!(samples.contains(&opt.timeout));
        // exhaustive check on a fine grid: nothing beats the sample-value optimum
        let mut t = 1.0;
        while t < 1_000.0 {
            assert!(
                SingleResubmission::expectation(&m, t) >= opt.expectation - 1e-9,
                "t={t} beats the claimed optimum"
            );
            t += 0.5;
        }
    }

    #[test]
    fn below_support_timeout_is_infinite() {
        let m = EmpiricalModel::from_samples(&[100.0, 200.0], 1e4).unwrap();
        assert_eq!(SingleResubmission::expectation(&m, 50.0), f64::INFINITY);
        assert_eq!(SingleResubmission::std_dev(&m, 50.0), f64::INFINITY);
    }

    #[test]
    fn reduces_impact_of_outliers() {
        // Table 1's headline: E_J with resubmission ≈ body mean, far below
        // the censored mean that outliers would impose.
        let mut samples: Vec<f64> = (1..=900).map(|i| 100.0 + (i as f64) * 0.9).collect();
        samples.extend(std::iter::repeat_n(20_000.0, 100)); // 10% outliers
        let m = EmpiricalModel::from_samples(&samples, 10_000.0).unwrap();
        let opt = SingleResubmission::optimize(&m);
        let body_mean = m.body_mean();
        // E_J within 2× of the no-outlier mean, not dragged to 10⁴
        assert!(
            opt.expectation < 2.0 * body_mean,
            "E_J = {}",
            opt.expectation
        );
    }
}
