//! Delayed resubmission (paper §6) — the paper's novel strategy.
//!
//! Submit one job; at `t0`, if it has not started, submit a copy *without*
//! cancelling the first; cancel the first at `t∞`; iterate with period `t0`.
//! The constraint `0 < t0 ≤ t∞ ≤ 2·t0` guarantees at most two copies are in
//! the system at any instant.
//!
//! ## Survival-form expectation
//!
//! Job `n` (1-based) is submitted at `(n-1)t0` and cancelled at
//! `(n-1)t0 + t∞` if still pending, so with i.i.d. latencies `R_n`:
//!
//! ```text
//! J = min_n { (n-1)·t0 + R_n  :  R_n < t∞ }
//! ```
//!
//! Writing `s(u) = 1 - F̃(u)`, `q = s(t∞)` and integrating the survival
//! function `P(J > t) = Π_n s(clamp(t-(n-1)t0, 0, t∞))` interval by
//! interval gives the closed forms
//!
//! ```text
//! E[J]  = A(t0) + C0/(1-q) + q·C1/(1-q)
//! E[J²] = 2·[ B(t0) + D0/(1-q) + t0·C0/(1-q)² + q·D1/(1-q) + q·t0·C1/(1-q)² ]
//!
//! C0 = ∫₀^{t∞-t0} s(u+t0)·s(u) du      D0 = ∫₀^{t∞-t0} u·s(u+t0)·s(u) du
//! C1 = A(t0) - A(t∞-t0)                D1 = B(t0) - B(t∞-t0)
//! ```
//!
//! This is algebraically equivalent to the paper's eq. 5 (whose printed form
//! suffers OCR damage) but shorter and numerically friendlier; two built-in
//! consistency checks pin it down: at `t∞ = t0` it collapses exactly to the
//! single-resubmission eq. 1, and Monte-Carlo simulation agrees to
//! statistical precision (see `executor` integration tests).
//!
//! ## Parallel-job count `N_//` (§6.1)
//!
//! For a realised total latency `l`, the time-average number of jobs in the
//! system is the piecewise expression of §6.1, implemented in
//! [`DelayedResubmission::n_parallel_at`]. Tables 3–6 of the paper plug the
//! *expectation* into it (`N_// = N_//(E_J)`) — verified numerically against
//! Table 3 — and that convention is what [`DelayedOutcome::n_parallel`]
//! reports; the true `E[N_//(J)]` is available through the Monte-Carlo
//! executor for comparison.

use super::{Strategy, Timeout1d};
use crate::cost::StrategyParams;
use crate::executor::{DelayedCtrl, StrategyController};
use crate::latency::LatencyModel;
use gridstrat_stats::optimize::{grid_min_2d, refine_grid_1d, GridSpec};

/// Outcome of evaluating/optimising the delayed strategy at `(t0, t∞)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayedOutcome {
    /// Resubmission delay `t0`, seconds.
    pub t0: f64,
    /// Cancellation timeout `t∞`, seconds.
    pub t_inf: f64,
    /// `E_J(t0, t∞)`, seconds.
    pub expectation: f64,
    /// `σ_J(t0, t∞)`, seconds (not reported by the paper — an extension).
    pub std_dev: f64,
    /// `N_//` evaluated at the expectation (the paper's convention).
    pub n_parallel: f64,
}

/// The delayed-resubmission strategy: an instance carries its delay `t0`,
/// timeout `t∞` and copies-per-echelon count (`1` in the paper; `> 1` is
/// the generalised extension); the associated functions expose the eq.-5
/// closed forms directly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayedResubmission {
    /// Copies submitted per echelon (`1` = the paper's strategy).
    pub copies: u32,
    /// Resubmission delay `t0`, seconds.
    pub t0: f64,
    /// Cancellation timeout `t∞`, seconds.
    pub t_inf: f64,
}

impl DelayedResubmission {
    /// Family name used in reports and sweeps.
    pub const FAMILY: &'static str = "delayed";

    /// Family name of the generalised (`b > 1` copies) variant.
    pub const FAMILY_MULTI: &'static str = "delayed-multiple";

    /// Creates the paper's strategy instance; the pair must be feasible.
    pub fn new(t0: f64, t_inf: f64) -> Self {
        Self::with_copies(1, t0, t_inf)
    }

    /// Creates a generalised instance submitting `b ≥ 1` copies per
    /// echelon; the pair must be feasible.
    pub fn with_copies(b: u32, t0: f64, t_inf: f64) -> Self {
        assert!(b >= 1, "need at least one copy per echelon");
        assert!(
            Self::feasible(t0, t_inf),
            "delayed strategy requires a feasible (t0, t∞) pair, got ({t0}, {t_inf})"
        );
        DelayedResubmission {
            copies: b,
            t0,
            t_inf,
        }
    }

    /// The `E_J`-optimal instance for `model` (free 2-D optimization).
    pub fn optimized<M: LatencyModel + ?Sized>(model: &M) -> Self {
        let out = Self::optimize(model);
        Self::new(out.t0, out.t_inf)
    }

    /// Feasibility of a parameter pair: `0 < t0 ≤ t∞ ≤ 2·t0`.
    pub fn feasible(t0: f64, t_inf: f64) -> bool {
        t0 > 0.0 && t0 <= t_inf && t_inf <= 2.0 * t0
    }

    /// `E_J(t0, t∞)` — eq. 5 in survival form. Returns `+∞` if the pair is
    /// infeasible or `F̃(t∞) = 0`.
    pub fn expectation<M: LatencyModel + ?Sized>(model: &M, t0: f64, t_inf: f64) -> f64 {
        Self::raw_moments(model, 1, t0, t_inf).0
    }

    /// `(E_J, σ_J)` at `(t0, t∞)`.
    pub fn moments<M: LatencyModel + ?Sized>(model: &M, t0: f64, t_inf: f64) -> (f64, f64) {
        Self::moments_with_copies(model, 1, t0, t_inf)
    }

    /// Generalisation beyond the paper: `b` copies are submitted at every
    /// echelon (so up to `2b` jobs are in flight). Substituting the
    /// echelon survival `s(·)ᵇ` into the eq.-5 derivation leaves the
    /// closed form intact with powered kernels. `b = 1` is the paper's
    /// strategy.
    pub fn expectation_with_copies<M: LatencyModel + ?Sized>(
        model: &M,
        b: u32,
        t0: f64,
        t_inf: f64,
    ) -> f64 {
        Self::raw_moments(model, b, t0, t_inf).0
    }

    /// `(E_J, σ_J)` of the generalized strategy with `b` copies per echelon.
    pub fn moments_with_copies<M: LatencyModel + ?Sized>(
        model: &M,
        b: u32,
        t0: f64,
        t_inf: f64,
    ) -> (f64, f64) {
        let (e, e2) = Self::raw_moments(model, b, t0, t_inf);
        if !e.is_finite() {
            return (f64::INFINITY, f64::INFINITY);
        }
        ((e), (e2 - e * e).max(0.0).sqrt())
    }

    /// Returns `(E[J], E[J²])` of the `b`-copy generalisation.
    fn raw_moments<M: LatencyModel + ?Sized>(model: &M, b: u32, t0: f64, t_inf: f64) -> (f64, f64) {
        assert!(b >= 1, "need at least one copy per echelon");
        if !Self::feasible(t0, t_inf) {
            return (f64::INFINITY, f64::INFINITY);
        }
        let f = model.defective_cdf(t_inf);
        if f <= 0.0 {
            return (f64::INFINITY, f64::INFINITY);
        }
        // echelon timeout survival: q = s(t∞)^b
        let q = (1.0 - f).powi(b as i32);
        let l = t_inf - t0; // overlap window length, in [0, t0]
        let (a_t0, b_t0) = model.powered_survival_integrals(b, t0);
        let (c0, d0) = model.powered_survival_product_integrals(b, t0, l);
        let (a_l, b_l) = model.powered_survival_integrals(b, l);
        let c1 = a_t0 - a_l;
        let d1 = b_t0 - b_l;
        let inv = 1.0 / (1.0 - q); // = 1/G_b(t∞)
        let e = a_t0 + c0 * inv + q * c1 * inv;
        let e2 =
            2.0 * (b_t0 + d0 * inv + t0 * c0 * inv * inv + q * d1 * inv + q * t0 * c1 * inv * inv);
        (e, e2)
    }

    /// Time-average number of parallel jobs of the `b`-copy generalisation:
    /// every echelon carries `b` identical jobs, so the count is `b` times
    /// the single-copy profile.
    pub fn n_parallel_at_with_copies(b: u32, l: f64, t0: f64, t_inf: f64) -> f64 {
        b as f64 * Self::n_parallel_at(l, t0, t_inf)
    }

    /// Time-average number of parallel jobs for a realised latency `l`
    /// (paper §6.1, all branches).
    pub fn n_parallel_at(l: f64, t0: f64, t_inf: f64) -> f64 {
        assert!(
            Self::feasible(t0, t_inf),
            "n_parallel_at requires a feasible (t0, t∞) pair"
        );
        if l <= t0 {
            return 1.0; // n = 0: the first job started before any copy
        }
        let n = (l / t0).floor() as u64; // l ∈ [n·t0, (n+1)·t0)
        let nf = n as f64;
        if l < (nf - 1.0) * t0 + t_inf {
            // interval I0: two copies currently in flight
            (t0 + (nf - 1.0) * t_inf + 2.0 * (l - nf * t0)) / l
        } else {
            // interval I1: the older copy was already cancelled
            (l + nf * (t_inf - t0)) / l
        }
    }

    /// Full evaluation at `(t0, t∞)`: moments plus the paper-convention
    /// `N_// = N_//(E_J)`.
    pub fn evaluate<M: LatencyModel + ?Sized>(model: &M, t0: f64, t_inf: f64) -> DelayedOutcome {
        let (e, s) = Self::moments(model, t0, t_inf);
        let n_par = if e.is_finite() {
            Self::n_parallel_at(e, t0, t_inf)
        } else {
            f64::NAN
        };
        DelayedOutcome {
            t0,
            t_inf,
            expectation: e,
            std_dev: s,
            n_parallel: n_par,
        }
    }

    /// Global minimisation of `E_J` over the feasible `(t0, t∞)` region by
    /// multi-resolution grid search (the surface of Fig. 5 is smooth but
    /// not convex; the paper also minimises numerically).
    pub fn optimize<M: LatencyModel + ?Sized>(model: &M) -> DelayedOutcome {
        Self::optimize_with_copies(model, 1)
    }

    /// [`DelayedResubmission::optimize`] for the `b`-copy generalisation:
    /// minimises the *b-copy* `E_J` (the optimal pair shifts with `b`,
    /// exactly as the multiple strategy's optimal timeout does).
    pub fn optimize_with_copies<M: LatencyModel + ?Sized>(model: &M, b: u32) -> DelayedOutcome {
        assert!(b >= 1, "need at least one copy per echelon");
        let (lo, hi) = model.plausible_range();
        let best = grid_min_2d(
            |t0, ti| Self::expectation_with_copies(model, b, t0, ti),
            (lo, hi),
            (lo, (2.0 * hi).min(model.horizon())),
            48,
            10,
            &|t0, ti| Self::feasible(t0, ti),
        )
        .expect("feasible region is non-empty");
        let (e, s) = Self::moments_with_copies(model, b, best.x, best.y);
        let n_par = if e.is_finite() {
            Self::n_parallel_at_with_copies(b, e, best.x, best.y)
        } else {
            f64::NAN
        };
        DelayedOutcome {
            t0: best.x,
            t_inf: best.y,
            expectation: e,
            std_dev: s,
            n_parallel: n_par,
        }
    }

    /// Minimises `E_J` under the constraint `t∞ = ratio·t0`
    /// (Table 3's protocol), `ratio ∈ [1, 2]`.
    pub fn optimize_with_ratio<M: LatencyModel + ?Sized>(model: &M, ratio: f64) -> DelayedOutcome {
        assert!(
            (1.0..=2.0).contains(&ratio),
            "ratio t∞/t0 must be in [1, 2], got {ratio}"
        );
        let (lo, hi) = model.plausible_range();
        let r = refine_grid_1d(
            |t0| Self::expectation(model, t0, ratio * t0),
            GridSpec::new(lo, hi, 400),
            1e-4,
        );
        Self::evaluate(model, r.x, ratio * r.x)
    }

    /// Convenience: the single-resubmission view of a degenerate pair
    /// (`t∞ = t0`), for cross-checks.
    pub fn degenerate_as_single<M: LatencyModel + ?Sized>(model: &M, t0: f64) -> Timeout1d {
        let (e, s) = Self::moments(model, t0, t0);
        Timeout1d {
            timeout: t0,
            expectation: e,
            std_dev: s,
        }
    }
}

impl Strategy for DelayedResubmission {
    fn name(&self) -> &'static str {
        if self.copies == 1 {
            Self::FAMILY
        } else {
            Self::FAMILY_MULTI
        }
    }

    fn params(&self) -> StrategyParams {
        if self.copies == 1 {
            StrategyParams::Delayed {
                t0: self.t0,
                t_inf: self.t_inf,
            }
        } else {
            StrategyParams::DelayedMultiple {
                b: self.copies,
                t0: self.t0,
                t_inf: self.t_inf,
            }
        }
    }

    fn expected_j(&self, model: &dyn LatencyModel) -> f64 {
        Self::expectation_with_copies(model, self.copies, self.t0, self.t_inf)
    }

    fn std_j(&self, model: &dyn LatencyModel) -> f64 {
        Self::moments_with_copies(model, self.copies, self.t0, self.t_inf).1
    }

    fn n_parallel_for(&self, e_j: f64) -> f64 {
        if e_j.is_finite() && Self::feasible(self.t0, self.t_inf) {
            Self::n_parallel_at_with_copies(self.copies, e_j, self.t0, self.t_inf)
        } else {
            f64::NAN
        }
    }

    fn build_controller(&self) -> Box<dyn StrategyController> {
        Box::new(DelayedCtrl::new(self.copies, self.t0, self.t_inf))
    }

    fn tune(&self, model: &dyn LatencyModel) -> Self {
        let out = Self::optimize_with_copies(model, self.copies);
        Self::with_copies(self.copies, out.t0, out.t_inf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::{EmpiricalModel, ParametricModel};
    use crate::strategy::SingleResubmission;
    use gridstrat_stats::rng::derived_rng;
    use gridstrat_stats::{Distribution, LogNormal, Shifted};

    fn heavy_model() -> ParametricModel<Shifted<LogNormal>> {
        let body = Shifted::new(LogNormal::from_mean_std(360.0, 880.0).unwrap(), 150.0).unwrap();
        ParametricModel::new(body, 0.05, 1e4).unwrap()
    }

    #[test]
    fn feasibility() {
        assert!(DelayedResubmission::feasible(300.0, 450.0));
        assert!(DelayedResubmission::feasible(300.0, 300.0)); // degenerate
        assert!(DelayedResubmission::feasible(300.0, 600.0)); // boundary
        assert!(!DelayedResubmission::feasible(300.0, 601.0));
        assert!(!DelayedResubmission::feasible(300.0, 299.0));
        assert!(!DelayedResubmission::feasible(0.0, 0.0));
    }

    #[test]
    fn degenerate_pair_collapses_to_single_resubmission() {
        let m = heavy_model();
        for t in [250.0, 500.0, 900.0] {
            let d = DelayedResubmission::expectation(&m, t, t);
            let s = SingleResubmission::expectation(&m, t);
            assert!((d - s).abs() / s < 1e-6, "t={t}: delayed {d} vs single {s}");
            // σ too
            let (_, sd) = DelayedResubmission::moments(&m, t, t);
            let ss = SingleResubmission::std_dev(&m, t);
            assert!((sd - ss).abs() / ss < 1e-5, "σ at t={t}: {sd} vs {ss}");
        }
    }

    #[test]
    fn monte_carlo_agreement() {
        // direct simulation of the delayed protocol on a lognormal+outlier law
        let body = LogNormal::from_mean_std(500.0, 700.0).unwrap();
        let rho = 0.1;
        let m = ParametricModel::new(body, rho, 1e4).unwrap();
        let (t0, t_inf) = (350.0, 500.0);
        let e_model = DelayedResubmission::expectation(&m, t0, t_inf);
        let (_, s_model) = DelayedResubmission::moments(&m, t0, t_inf);

        let mut rng = derived_rng(321, 0);
        let trials = 50_000;
        let mut sum = 0.0;
        let mut sq = 0.0;
        for _ in 0..trials {
            // J = min over n of (n-1)t0 + R_n with R_n < t_inf
            let mut j = f64::INFINITY;
            let mut n = 0u64;
            loop {
                let submit = n as f64 * t0;
                if submit >= j {
                    break; // no later job can improve the minimum
                }
                let lat = if rand::Rng::gen::<f64>(&mut rng) < rho {
                    f64::INFINITY
                } else {
                    body.sample(&mut rng)
                };
                if lat < t_inf {
                    j = j.min(submit + lat);
                }
                n += 1;
            }
            sum += j;
            sq += j * j;
        }
        let mean = sum / trials as f64;
        let std = (sq / trials as f64 - mean * mean).sqrt();
        assert!(
            (mean - e_model).abs() / e_model < 0.02,
            "MC mean {mean} vs model {e_model}"
        );
        assert!(
            (std - s_model).abs() / s_model < 0.04,
            "MC σ {std} vs model {s_model}"
        );
    }

    #[test]
    fn beats_single_resubmission_on_heavy_tails() {
        // the paper's headline for §6: optimal delayed < optimal single
        let m = heavy_model();
        let single = SingleResubmission::optimize(&m);
        let delayed = DelayedResubmission::optimize(&m);
        assert!(
            delayed.expectation < single.expectation,
            "delayed {} should beat single {}",
            delayed.expectation,
            single.expectation
        );
        // but not the multiple strategy with b = 2 (paper §6 observation)
        let multi2 = crate::strategy::MultipleSubmission::optimize(&m, 2);
        assert!(delayed.expectation > multi2.expectation);
    }

    #[test]
    fn optimizer_result_is_feasible_and_locally_minimal() {
        let m = heavy_model();
        let opt = DelayedResubmission::optimize(&m);
        assert!(DelayedResubmission::feasible(opt.t0, opt.t_inf));
        // no feasible neighbour improves noticeably
        for (dt0, dti) in [(-5.0, 0.0), (5.0, 0.0), (0.0, -5.0), (0.0, 5.0), (5.0, 5.0)] {
            let e = DelayedResubmission::expectation(&m, opt.t0 + dt0, opt.t_inf + dti);
            assert!(e >= opt.expectation - 0.5, "neighbour beats optimum: {e}");
        }
    }

    #[test]
    fn n_parallel_matches_paper_table3_values() {
        // Table 3 (2006-IX): ratio 1.3 → t0=406, t∞=528, EJ=438 ⇒ N≈1.07
        let n = DelayedResubmission::n_parallel_at(438.0, 406.0, 528.0);
        assert!((n - 1.07).abs() < 0.01, "N {n}");
        // ratio 1.4 → t0=354, t∞=496, EJ=432 ⇒ N≈1.18
        let n = DelayedResubmission::n_parallel_at(432.0, 354.0, 496.0);
        assert!((n - 1.18).abs() < 0.01, "N {n}");
        // ratio 1.6 → t0=272, t∞=435, EJ=444 ⇒ N≈1.37 (I1 branch)
        let n = DelayedResubmission::n_parallel_at(444.0, 272.0, 435.0);
        assert!((n - 1.37).abs() < 0.01, "N {n}");
        // l below t0 ⇒ exactly one job
        assert_eq!(DelayedResubmission::n_parallel_at(200.0, 300.0, 450.0), 1.0);
    }

    #[test]
    fn n_parallel_bounds_and_asymptote() {
        let (t0, t_inf) = (300.0, 450.0);
        // N ∈ [1, 2) always; → t∞/t0 as l → ∞
        let mut prev = 1.0;
        for l in [100.0, 350.0, 500.0, 1000.0, 5000.0, 100_000.0] {
            let n = DelayedResubmission::n_parallel_at(l, t0, t_inf);
            assert!((1.0..2.0).contains(&n), "N({l}) = {n}");
            prev = n;
        }
        assert!((prev - t_inf / t0).abs() < 0.01, "asymptote {prev}");
    }

    #[test]
    fn n_parallel_monte_carlo_agreement() {
        // simulate the protocol, measure the realised time-average count
        let (t0, t_inf) = (300.0, 450.0);
        let body = LogNormal::from_mean_std(500.0, 700.0).unwrap();
        let rho = 0.1;
        let mut rng = derived_rng(55, 0);
        let trials = 20_000;
        let mut analytic_sum = 0.0;
        let mut measured_sum = 0.0;
        for _ in 0..trials {
            // realise latencies job by job until one starts
            let mut lat = Vec::new();
            let j;
            let mut n = 0usize;
            loop {
                let submit = n as f64 * t0;
                let l = if rand::Rng::gen::<f64>(&mut rng) < rho {
                    f64::INFINITY
                } else {
                    body.sample(&mut rng)
                };
                lat.push(l);
                // check whether any submitted job has started by the time
                // the NEXT submission would occur
                let best = lat
                    .iter()
                    .enumerate()
                    .filter(|(_, &l)| l < t_inf)
                    .map(|(k, &l)| k as f64 * t0 + l)
                    .fold(f64::INFINITY, f64::min);
                if best <= submit + t0 {
                    j = best;
                    break;
                }
                n += 1;
            }
            // measured integral of in-system job count on [0, j]
            let mut integral = 0.0;
            for (k, _) in lat.iter().enumerate() {
                let s = k as f64 * t0;
                if s >= j {
                    break;
                }
                let cancel = s + t_inf;
                integral += j.min(cancel) - s;
            }
            measured_sum += integral / j;
            analytic_sum += DelayedResubmission::n_parallel_at(j, t0, t_inf);
        }
        let measured = measured_sum / trials as f64;
        let analytic = analytic_sum / trials as f64;
        assert!(
            (measured - analytic).abs() < 0.01,
            "measured {measured} vs per-l formula {analytic}"
        );
    }

    #[test]
    fn generalized_b1_equals_paper_strategy() {
        let m = heavy_model();
        for (t0, ti) in [(300.0, 450.0), (400.0, 700.0)] {
            let paper = DelayedResubmission::moments(&m, t0, ti);
            let gen = DelayedResubmission::moments_with_copies(&m, 1, t0, ti);
            assert!((paper.0 - gen.0).abs() < 1e-9);
            assert!((paper.1 - gen.1).abs() < 1e-9);
        }
    }

    #[test]
    fn generalized_diagonal_equals_multiple_submission() {
        // at t∞ = t0 the b-copy delayed strategy degenerates to b-fold
        // burst submission with timeout t0 (eq. 3)
        let m = heavy_model();
        for b in [2u32, 4] {
            for t in [300.0, 600.0] {
                let gen = DelayedResubmission::expectation_with_copies(&m, b, t, t);
                let multi = crate::strategy::MultipleSubmission::expectation(&m, b, t);
                assert!(
                    (gen - multi).abs() / multi < 1e-6,
                    "b={b} t={t}: generalized {gen} vs multiple {multi}"
                );
            }
        }
    }

    #[test]
    fn generalized_more_copies_never_hurt() {
        let m = heavy_model();
        let (t0, ti) = (350.0, 520.0);
        let mut prev = f64::INFINITY;
        for b in 1..=5u32 {
            let e = DelayedResubmission::expectation_with_copies(&m, b, t0, ti);
            assert!(e < prev, "E(b={b}) = {e} did not improve on {prev}");
            prev = e;
        }
    }

    #[test]
    fn generalized_n_parallel_scales_linearly() {
        let n1 = DelayedResubmission::n_parallel_at(450.0, 300.0, 450.0);
        let n3 = DelayedResubmission::n_parallel_at_with_copies(3, 450.0, 300.0, 450.0);
        assert!((n3 - 3.0 * n1).abs() < 1e-12);
    }

    #[test]
    fn multi_copy_tuning_optimizes_its_own_law() {
        // tune on a b-copy instance must minimise the b-copy E_J, not the
        // single-copy objective: the b=1-optimal pair applied to the b-copy
        // law cannot beat the b-copy optimum
        use crate::strategy::Strategy;
        let m = heavy_model();
        let b = 3u32;
        let tuned = DelayedResubmission::with_copies(b, 300.0, 450.0).tune(&m);
        assert_eq!(tuned.copies, b);
        let own = DelayedResubmission::expectation_with_copies(&m, b, tuned.t0, tuned.t_inf);
        let single_opt = DelayedResubmission::optimize(&m);
        let borrowed =
            DelayedResubmission::expectation_with_copies(&m, b, single_opt.t0, single_opt.t_inf);
        assert!(
            own <= borrowed + 1e-6,
            "b-copy tune ({own}) beaten by the b=1 pair ({borrowed})"
        );
        // and the b=1 path is unchanged: optimize == optimize_with_copies(1)
        let a = DelayedResubmission::optimize(&m);
        let c = DelayedResubmission::optimize_with_copies(&m, 1);
        assert_eq!(a.expectation.to_bits(), c.expectation.to_bits());
        assert_eq!(a.n_parallel.to_bits(), c.n_parallel.to_bits());
    }

    #[test]
    fn ratio_constrained_optimization() {
        let m = heavy_model();
        let r13 = DelayedResubmission::optimize_with_ratio(&m, 1.3);
        assert!((r13.t_inf / r13.t0 - 1.3).abs() < 1e-9);
        assert!(r13.expectation.is_finite());
        // the free optimum is at least as good as any constrained one
        let free = DelayedResubmission::optimize(&m);
        assert!(free.expectation <= r13.expectation + 1.0);
    }

    #[test]
    fn empirical_model_expectation_finite_and_consistent() {
        let body = LogNormal::from_mean_std(500.0, 800.0).unwrap();
        let mut rng = derived_rng(77, 1);
        let mut xs: Vec<f64> = Vec::with_capacity(3000);
        for _ in 0..3000 {
            if rand::Rng::gen::<f64>(&mut rng) < 0.1 {
                xs.push(30_000.0);
            } else {
                xs.push(body.sample(&mut rng).min(30_000.0));
            }
        }
        let emp = EmpiricalModel::from_samples(&xs, 10_000.0).unwrap();
        let par = ParametricModel::new(body, 0.1, 1e4).unwrap();
        let (t0, ti) = (350.0, 500.0);
        let de = DelayedResubmission::expectation(&emp, t0, ti);
        let dp = DelayedResubmission::expectation(&par, t0, ti);
        assert!(
            (de - dp).abs() / dp < 0.06,
            "empirical {de} vs parametric {dp}"
        );
    }

    #[test]
    #[should_panic(expected = "feasible")]
    fn n_parallel_rejects_infeasible() {
        DelayedResubmission::n_parallel_at(100.0, 300.0, 700.0);
    }

    #[test]
    fn infeasible_pairs_are_infinite() {
        let m = heavy_model();
        assert_eq!(
            DelayedResubmission::expectation(&m, 300.0, 700.0),
            f64::INFINITY
        );
        assert_eq!(
            DelayedResubmission::expectation(&m, 300.0, 200.0),
            f64::INFINITY
        );
    }
}
