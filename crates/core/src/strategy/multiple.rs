//! Multiple (burst) submission (paper §5).
//!
//! For each task, a collection of `b` identical jobs is submitted; as soon
//! as one starts, the others are cancelled; if none starts before `t∞`, the
//! whole collection is cancelled and resubmitted.
//!
//! The minimum of `b` i.i.d. latencies has defective CDF
//! `G(t) = 1 - (1 - F̃(t))^b`, so eqs. 3–4 are eqs. 1–2 with `F̃ → G`:
//!
//! ```text
//! E_J(t∞)  = A_b(t∞) / G(t∞)            A_b(t) = ∫₀ᵗ (1-F̃(u))ᵇ du
//! σ²_J(t∞) = -A_b²/G² + 2B_b/G + 2 t∞ (1-G) A_b/G²
//! ```

use super::{Strategy, Timeout1d};
use crate::cost::StrategyParams;
use crate::executor::{MultipleCtrl, StrategyController};
use crate::latency::LatencyModel;

/// The multiple-submission strategy: an instance carries its collection
/// size `b` and timeout `t∞`; the associated functions expose the closed
/// forms of eqs. 3–4 directly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultipleSubmission {
    /// Collection size `b ≥ 1`.
    pub b: u32,
    /// Collection cancellation/resubmission timeout `t∞`, seconds.
    pub t_inf: f64,
}

impl MultipleSubmission {
    /// Family name used in reports and sweeps.
    pub const FAMILY: &'static str = "multiple";

    /// Creates an instance with `b ≥ 1` copies and timeout `t∞ > 0`.
    pub fn new(b: u32, t_inf: f64) -> Self {
        assert!(b >= 1, "need at least one job per collection");
        assert!(
            t_inf.is_finite() && t_inf > 0.0,
            "timeout must be positive, got {t_inf}"
        );
        MultipleSubmission { b, t_inf }
    }

    /// The `E_J`-optimal instance for `model` at collection size `b`.
    pub fn optimized<M: LatencyModel + ?Sized>(model: &M, b: u32) -> Self {
        MultipleSubmission::new(b, Self::optimize(model, b).timeout)
    }
    /// Defective CDF of the collection minimum, `G(t) = 1-(1-F̃(t))ᵇ`.
    pub fn collection_cdf<M: LatencyModel + ?Sized>(model: &M, b: u32, t: f64) -> f64 {
        assert!(b >= 1, "need at least one job per collection");
        1.0 - (1.0 - model.defective_cdf(t)).powi(b as i32)
    }

    /// `E_J(t∞)` for a collection of `b` jobs — eq. 3.
    pub fn expectation<M: LatencyModel + ?Sized>(model: &M, b: u32, t_inf: f64) -> f64 {
        let g = Self::collection_cdf(model, b, t_inf);
        if g <= 0.0 {
            return f64::INFINITY;
        }
        let (a_b, _) = model.powered_survival_integrals(b, t_inf);
        a_b / g
    }

    /// `σ_J(t∞)` — eq. 4.
    pub fn std_dev<M: LatencyModel + ?Sized>(model: &M, b: u32, t_inf: f64) -> f64 {
        let g = Self::collection_cdf(model, b, t_inf);
        if g <= 0.0 {
            return f64::INFINITY;
        }
        let (a_b, b_b) = model.powered_survival_integrals(b, t_inf);
        let q = 1.0 - g;
        let var = -a_b * a_b / (g * g) + 2.0 * b_b / g + 2.0 * t_inf * q * a_b / (g * g);
        var.max(0.0).sqrt()
    }

    /// Minimises `E_J` over the model's candidate timeouts for a given `b`
    /// (exact for empirical models, same argument as the single strategy).
    pub fn optimize<M: LatencyModel + ?Sized>(model: &M, b: u32) -> Timeout1d {
        let mut best = Timeout1d {
            timeout: f64::NAN,
            expectation: f64::INFINITY,
            std_dev: f64::INFINITY,
        };
        for t in model.candidate_timeouts() {
            let e = Self::expectation(model, b, t);
            if e < best.expectation {
                best = Timeout1d {
                    timeout: t,
                    expectation: e,
                    std_dev: f64::NAN,
                };
            }
        }
        assert!(
            best.expectation.is_finite(),
            "no finite E_J over candidate timeouts — degenerate model"
        );
        best.std_dev = Self::std_dev(model, b, best.timeout);
        best
    }

    /// Optimal outcomes for a series of collection sizes (Table 2 / Fig. 3).
    pub fn optimal_series<M: LatencyModel + ?Sized>(
        model: &M,
        bs: &[u32],
    ) -> Vec<(u32, Timeout1d)> {
        bs.iter().map(|&b| (b, Self::optimize(model, b))).collect()
    }
}

impl Strategy for MultipleSubmission {
    fn name(&self) -> &'static str {
        Self::FAMILY
    }

    fn params(&self) -> StrategyParams {
        StrategyParams::Multiple {
            b: self.b,
            t_inf: self.t_inf,
        }
    }

    fn expected_j(&self, model: &dyn LatencyModel) -> f64 {
        Self::expectation(model, self.b, self.t_inf)
    }

    fn std_j(&self, model: &dyn LatencyModel) -> f64 {
        Self::std_dev(model, self.b, self.t_inf)
    }

    fn n_parallel_for(&self, _e_j: f64) -> f64 {
        self.b as f64 // the collection keeps exactly b copies in flight
    }

    fn build_controller(&self) -> Box<dyn StrategyController> {
        Box::new(MultipleCtrl::new(self.b, self.t_inf))
    }

    fn tune(&self, model: &dyn LatencyModel) -> Self {
        Self::optimized(model, self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::{EmpiricalModel, ParametricModel};
    use crate::strategy::SingleResubmission;
    use gridstrat_stats::rng::derived_rng;
    use gridstrat_stats::{Distribution, Exponential, LogNormal, Shifted};

    fn heavy_model() -> ParametricModel<Shifted<LogNormal>> {
        // 2006-IX-like body: 150 s latency floor + heavy log-normal
        let body = Shifted::new(LogNormal::from_mean_std(360.0, 880.0).unwrap(), 150.0).unwrap();
        ParametricModel::new(body, 0.05, 1e4).unwrap()
    }

    #[test]
    fn b1_reduces_to_single_resubmission() {
        let m = heavy_model();
        for t in [200.0, 600.0, 1500.0] {
            let multi = MultipleSubmission::expectation(&m, 1, t);
            let single = SingleResubmission::expectation(&m, t);
            assert!((multi - single).abs() / single < 1e-9, "t={t}");
            let sm = MultipleSubmission::std_dev(&m, 1, t);
            let ss = SingleResubmission::std_dev(&m, t);
            assert!((sm - ss).abs() / ss < 1e-9, "σ at t={t}");
        }
    }

    #[test]
    fn expectation_decreases_with_b() {
        let m = heavy_model();
        let mut prev = f64::INFINITY;
        for b in 1..=10 {
            let opt = MultipleSubmission::optimize(&m, b);
            assert!(
                opt.expectation < prev,
                "E_J(b={b}) = {} did not improve on {prev}",
                opt.expectation
            );
            prev = opt.expectation;
        }
    }

    #[test]
    fn improvement_saturates_like_the_paper() {
        // Table 2: b=2 gives ≈ -33%, b=5 ≈ -51%, marginal gains shrink.
        let m = heavy_model();
        let e1 = MultipleSubmission::optimize(&m, 1).expectation;
        let e2 = MultipleSubmission::optimize(&m, 2).expectation;
        let e5 = MultipleSubmission::optimize(&m, 5).expectation;
        let e10 = MultipleSubmission::optimize(&m, 10).expectation;
        let drop2 = 1.0 - e2 / e1;
        let drop5 = 1.0 - e5 / e1;
        let drop10 = 1.0 - e10 / e1;
        assert!(drop2 > 0.15 && drop2 < 0.55, "b=2 drop {drop2}");
        assert!(drop5 > drop2 && drop5 < 0.75, "b=5 drop {drop5}");
        assert!(drop10 > drop5 && drop10 < 0.85, "b=10 drop {drop10}");
        // marginal gain per extra job shrinks
        assert!((e1 - e2) > (e2 - e5) / 3.0);
    }

    #[test]
    fn sigma_decreases_with_b() {
        let m = heavy_model();
        let s1 = MultipleSubmission::optimize(&m, 1).std_dev;
        let s5 = MultipleSubmission::optimize(&m, 5).std_dev;
        assert!(s5 < s1);
    }

    #[test]
    fn collection_cdf_bounds() {
        let m = heavy_model();
        for b in [1, 3, 10] {
            for t in [0.0, 100.0, 1000.0, 9999.0] {
                let g = MultipleSubmission::collection_cdf(&m, b, t);
                assert!((0.0..=1.0).contains(&g));
                // more copies make starting before t more likely
                if b > 1 {
                    assert!(g >= m.defective_cdf(t) - 1e-12);
                }
            }
        }
    }

    #[test]
    fn monte_carlo_agreement_empirical() {
        // empirical model + direct simulation of the burst strategy
        let body = LogNormal::from_mean_std(500.0, 700.0).unwrap();
        let rho = 0.1;
        let mut rng = derived_rng(9, 0);
        let mut samples: Vec<f64> = Vec::with_capacity(5000);
        for _ in 0..5000 {
            if rand::Rng::gen::<f64>(&mut rng) < rho {
                samples.push(20_000.0);
            } else {
                samples.push(body.sample(&mut rng).min(20_000.0));
            }
        }
        let m = EmpiricalModel::from_samples(&samples, 10_000.0).unwrap();
        let b = 3u32;
        let t_inf = 900.0;
        let e_model = MultipleSubmission::expectation(&m, b, t_inf);

        // simulate by resampling from the same empirical sample
        let mut rng2 = derived_rng(10, 0);
        let trials = 40_000;
        let mut sum = 0.0;
        for _ in 0..trials {
            let mut total = 0.0;
            'outer: loop {
                let mut min_lat = f64::INFINITY;
                for _ in 0..b {
                    let idx = rand::Rng::gen_range(&mut rng2, 0..samples.len());
                    min_lat = min_lat.min(samples[idx]);
                }
                if min_lat < t_inf {
                    total += min_lat;
                    break 'outer;
                }
                total += t_inf;
            }
            sum += total;
        }
        let mean = sum / trials as f64;
        assert!(
            (mean - e_model).abs() / e_model < 0.03,
            "MC {mean} vs model {e_model}"
        );
    }

    #[test]
    fn optimal_series_is_ordered_input() {
        let m = heavy_model();
        let series = MultipleSubmission::optimal_series(&m, &[1, 2, 3]);
        assert_eq!(series.len(), 3);
        assert_eq!(series[0].0, 1);
        assert!(series[2].1.expectation < series[0].1.expectation);
    }

    #[test]
    #[should_panic(expected = "at least one job")]
    fn rejects_b_zero() {
        let m = heavy_model();
        MultipleSubmission::collection_cdf(&m, 0, 100.0);
    }

    #[test]
    fn infinite_when_unreachable() {
        let m = EmpiricalModel::from_samples(&[500.0, 600.0], 1e4).unwrap();
        assert_eq!(MultipleSubmission::expectation(&m, 4, 100.0), f64::INFINITY);
    }

    #[test]
    fn exponential_b_closed_form() {
        // For Exponential(λ), ρ=0: (1-F)ᵇ = e^{-bλu}; A_b(t) = (1-e^{-bλt})/(bλ);
        // G = 1-e^{-bλt} ⇒ E_J = [t·e^{-bλt} + (1-e^{-bλt})/(bλ)] … directly:
        let lambda = 0.002;
        let b = 4u32;
        let m = ParametricModel::new(Exponential::new(lambda).unwrap(), 0.0, 1e5).unwrap();
        for t in [100.0, 800.0] {
            let bl = b as f64 * lambda;
            let a_b = (1.0 - (-bl * t).exp()) / bl;
            let g = 1.0 - (-bl * t).exp();
            let want = a_b / g;
            let got = MultipleSubmission::expectation(&m, b, t);
            assert!((got - want).abs() / want < 1e-4, "t={t}: {got} vs {want}");
        }
    }
}
