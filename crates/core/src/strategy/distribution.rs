//! Full distributions of the total latency `J` — not just its first two
//! moments.
//!
//! The paper reports `E_J` and `σ_J`; several practical questions need the
//! whole law (batch makespans are `max`-statistics, deadline guarantees are
//! quantiles). All three strategies admit closed-form CDFs on top of
//! `F̃`:
//!
//! * **single** (`t = n·t∞ + u`, `u ∈ [0, t∞)`):
//!   `F_J(t) = 1 - qⁿ + qⁿ·F̃(u)` with `q = 1 - F̃(t∞)` — the geometric
//!   rounds make `J`'s law a geometric mixture of shifted copies of `F̃`;
//! * **multiple**: same with `F̃ → G_b = 1-(1-F̃)ᵇ`;
//! * **delayed** (`b` copies per echelon): the survival product
//!   `P(J > t) = Π_k s(clamp(t - k·t0, 0, t∞))ᵇ`, evaluated term by term
//!   (all but at most two factors equal `s(t∞)ᵇ`).
//!
//! These are cross-validated against the moment formulas (eqs. 1, 3, 5) by
//! numerically integrating the survival function, and against the
//! Monte-Carlo samplers.

use crate::cost::StrategyParams;
use crate::latency::LatencyModel;
use crate::strategy::DelayedResubmission;

/// The distribution of the total latency `J` for one strategy instance
/// over a latency model.
pub struct JDistribution<'a, M: LatencyModel + ?Sized> {
    model: &'a M,
    spec: StrategyParams,
}

impl<'a, M: LatencyModel + ?Sized> JDistribution<'a, M> {
    /// Builds the distribution; the strategy must be able to complete
    /// (`F̃(t∞) > 0`) and, for delayed variants, the pair must be feasible.
    pub fn new(model: &'a M, spec: StrategyParams) -> Result<Self, String> {
        let t_inf = match spec {
            StrategyParams::Single { t_inf } | StrategyParams::Multiple { t_inf, .. } => t_inf,
            StrategyParams::Delayed { t0, t_inf }
            | StrategyParams::DelayedMultiple { t0, t_inf, .. } => {
                if !DelayedResubmission::feasible(t0, t_inf) {
                    return Err(format!("infeasible delayed pair ({t0}, {t_inf})"));
                }
                t_inf
            }
        };
        if model.defective_cdf(t_inf) <= 0.0 {
            return Err(format!(
                "strategy cannot complete: F̃({t_inf}) = 0 (timeout below the latency floor)"
            ));
        }
        Ok(JDistribution { model, spec })
    }

    /// `P(J ≤ t)`.
    pub fn cdf(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return 0.0;
        }
        match self.spec {
            StrategyParams::Single { t_inf } => self.rounds_cdf(1, t_inf, t),
            StrategyParams::Multiple { b, t_inf } => self.rounds_cdf(b, t_inf, t),
            StrategyParams::Delayed { t0, t_inf } => 1.0 - self.delayed_survival(1, t0, t_inf, t),
            StrategyParams::DelayedMultiple { b, t0, t_inf } => {
                1.0 - self.delayed_survival(b, t0, t_inf, t)
            }
        }
    }

    fn collection_cdf(&self, b: u32, t: f64) -> f64 {
        1.0 - (1.0 - self.model.defective_cdf(t)).powi(b as i32)
    }

    fn rounds_cdf(&self, b: u32, t_inf: f64, t: f64) -> f64 {
        let g_inf = self.collection_cdf(b, t_inf);
        let q = 1.0 - g_inf;
        let n = (t / t_inf).floor();
        let u = t - n * t_inf;
        let qn = q.powf(n); // n is a non-negative integer value of f64
        1.0 - qn + qn * self.collection_cdf(b, u.min(t_inf))
    }

    fn delayed_survival(&self, b: u32, t0: f64, t_inf: f64, t: f64) -> f64 {
        let bi = b as i32;
        let mut surv = 1.0;
        let mut k = 0u64;
        loop {
            let arg = t - k as f64 * t0;
            if arg <= 0.0 {
                break;
            }
            // all echelons older than t∞ contribute the same factor; batch
            // them up through a power instead of looping one by one
            if arg >= t_inf {
                let m = ((arg - t_inf) / t0).floor() as i32 + 1;
                let q_echelon = (1.0 - self.model.defective_cdf(t_inf)).powi(bi);
                surv *= q_echelon.powi(m);
                k += m as u64;
                continue;
            }
            surv *= (1.0 - self.model.defective_cdf(arg)).powi(bi);
            k += 1;
        }
        surv
    }

    /// Quantile of `J` at level `p ∈ (0, 1)` by bisection (the CDF is
    /// monotone and continuous except for at most countably many jumps
    /// inherited from an empirical `F̃`).
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(
            (0.0..1.0).contains(&p) && p > 0.0,
            "quantile level must be in (0,1)"
        );
        let mut hi = self.model.horizon();
        while self.cdf(hi) < p {
            hi *= 2.0;
            assert!(hi < 1e15, "quantile bracket blew up — defective strategy?");
        }
        let mut lo = 0.0;
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }

    /// `E[J]` by numerically integrating the survival function — used as a
    /// cross-check against the closed-form moment formulas.
    pub fn expectation_by_integration(&self, step: f64) -> f64 {
        assert!(step > 0.0);
        // integrate until survival is negligible
        let mut total = 0.0;
        let mut t = 0.0;
        loop {
            let s0 = 1.0 - self.cdf(t);
            let s1 = 1.0 - self.cdf(t + step);
            total += 0.5 * (s0 + s1) * step;
            t += step;
            if s1 < 1e-12 || t > 1e9 {
                break;
            }
        }
        total
    }

    /// Latency part of the makespan of `n` independent tasks launched
    /// together: the quantile of `max(J_1…J_n)` at level `p`, i.e. the `t`
    /// with `F_J(t)ⁿ = p`.
    pub fn makespan_quantile(&self, n_tasks: u32, p: f64) -> f64 {
        assert!(n_tasks >= 1);
        // F_J(t)^n = p  ⇔  F_J(t) = p^(1/n)
        self.quantile(p.powf(1.0 / n_tasks as f64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::application::JSampler;
    use crate::latency::EmpiricalModel;
    use crate::strategy::{DelayedResubmission, MultipleSubmission, SingleResubmission};
    use gridstrat_stats::rng::derived_rng;
    use gridstrat_workload::WeekModel;

    fn model() -> EmpiricalModel {
        let w = WeekModel::calibrate("dist", 500.0, 650.0, 0.12, 150.0, 10_000.0).unwrap();
        EmpiricalModel::from_trace(&w.generate(3_000, 55)).unwrap()
    }

    fn specs() -> Vec<StrategyParams> {
        vec![
            StrategyParams::Single { t_inf: 700.0 },
            StrategyParams::Multiple { b: 3, t_inf: 800.0 },
            StrategyParams::Delayed {
                t0: 400.0,
                t_inf: 560.0,
            },
            StrategyParams::DelayedMultiple {
                b: 2,
                t0: 400.0,
                t_inf: 560.0,
            },
        ]
    }

    #[test]
    fn cdf_is_monotone_from_zero_to_one() {
        let m = model();
        for spec in specs() {
            let d = JDistribution::new(&m, spec).unwrap();
            let mut prev = 0.0;
            let mut t = 0.0;
            while t < 30_000.0 {
                let v = d.cdf(t);
                assert!((0.0..=1.0).contains(&v), "{spec:?}: cdf({t}) = {v}");
                assert!(v + 1e-12 >= prev, "{spec:?}: cdf not monotone at {t}");
                prev = v;
                t += 137.0;
            }
            assert!(prev > 0.99, "{spec:?}: cdf only reaches {prev}");
            assert_eq!(d.cdf(0.0), 0.0);
        }
    }

    #[test]
    fn survival_integration_matches_moment_formulas() {
        let m = model();
        let cases: Vec<(StrategyParams, f64)> = vec![
            (
                StrategyParams::Single { t_inf: 700.0 },
                SingleResubmission::expectation(&m, 700.0),
            ),
            (
                StrategyParams::Multiple { b: 3, t_inf: 800.0 },
                MultipleSubmission::expectation(&m, 3, 800.0),
            ),
            (
                StrategyParams::Delayed {
                    t0: 400.0,
                    t_inf: 560.0,
                },
                DelayedResubmission::expectation(&m, 400.0, 560.0),
            ),
            (
                StrategyParams::DelayedMultiple {
                    b: 2,
                    t0: 400.0,
                    t_inf: 560.0,
                },
                DelayedResubmission::expectation_with_copies(&m, 2, 400.0, 560.0),
            ),
        ];
        for (spec, want) in cases {
            let d = JDistribution::new(&m, spec).unwrap();
            let got = d.expectation_by_integration(0.5);
            assert!(
                (got - want).abs() / want < 2e-3,
                "{spec:?}: ∫S = {got} vs closed form {want}"
            );
        }
    }

    #[test]
    fn quantiles_match_the_sampler() {
        let m = model();
        let spec = StrategyParams::Multiple { b: 2, t_inf: 800.0 };
        let d = JDistribution::new(&m, spec).unwrap();
        let sampler = JSampler::new(m.ecdf(), spec);
        let mut rng = derived_rng(3, 0);
        let mut xs: Vec<f64> = (0..40_000).map(|_| sampler.sample(&mut rng)).collect();
        xs.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        for p in [0.25, 0.5, 0.9, 0.99] {
            let analytic = d.quantile(p);
            let empirical = xs[((p * xs.len() as f64) as usize).min(xs.len() - 1)];
            assert!(
                (analytic - empirical).abs() / empirical.max(1.0) < 0.05,
                "p={p}: analytic {analytic} vs sampled {empirical}"
            );
        }
    }

    #[test]
    fn makespan_quantile_consistency() {
        let m = model();
        let d = JDistribution::new(&m, StrategyParams::Single { t_inf: 700.0 }).unwrap();
        // the n-task makespan median solves F^n = 1/2
        let mk = d.makespan_quantile(100, 0.5);
        let f = d.cdf(mk);
        assert!(
            (f.powi(100) - 0.5).abs() < 0.01,
            "F(mk)^100 = {}",
            f.powi(100)
        );
        // more tasks ⇒ later makespan, and always ≥ the single-task quantile
        assert!(d.makespan_quantile(1000, 0.5) > mk);
        assert!(mk > d.quantile(0.5));
    }

    #[test]
    fn makespan_ranks_strategies_like_the_sampler_study() {
        let m = model();
        let single = JDistribution::new(&m, StrategyParams::Single { t_inf: 700.0 }).unwrap();
        let multi =
            JDistribution::new(&m, StrategyParams::Multiple { b: 3, t_inf: 800.0 }).unwrap();
        let n = 500;
        let ms = single.makespan_quantile(n, 0.5);
        let mm = multi.makespan_quantile(n, 0.5);
        assert!(
            mm < 0.5 * ms,
            "multiple-submission makespan {mm} should crush single's {ms}"
        );
    }

    #[test]
    fn construction_validates() {
        let m = model();
        assert!(JDistribution::new(&m, StrategyParams::Single { t_inf: 10.0 }).is_err());
        assert!(JDistribution::new(
            &m,
            StrategyParams::Delayed {
                t0: 100.0,
                t_inf: 900.0
            }
        )
        .is_err());
    }

    #[test]
    fn delayed_cdf_agrees_with_moments_via_variance_too() {
        let m = model();
        let (t0, ti) = (380.0, 540.0);
        let (e, sigma) = DelayedResubmission::moments(&m, t0, ti);
        let d = JDistribution::new(&m, StrategyParams::Delayed { t0, t_inf: ti }).unwrap();
        // E[J²] = 2∫ t·S(t) dt by trapezoid
        let mut second = 0.0;
        let mut t = 0.0;
        let step = 0.5;
        loop {
            let s0 = (1.0 - d.cdf(t)) * t;
            let s1 = (1.0 - d.cdf(t + step)) * (t + step);
            second += 0.5 * (s0 + s1) * step;
            t += step;
            if 1.0 - d.cdf(t) < 1e-12 {
                break;
            }
        }
        let sigma_num = (2.0 * second - e * e).max(0.0).sqrt();
        assert!(
            (sigma_num - sigma).abs() / sigma < 5e-3,
            "σ from cdf {sigma_num} vs closed form {sigma}"
        );
    }
}
