//! Week-to-week parameter transfer (paper §7.2 and Table 6).
//!
//! Exploiting `∆cost` in practice requires choosing `(t0, t∞)` *before*
//! execution, from earlier measurements. Table 6 quantifies the penalty:
//! each week is evaluated under every other week's optimal pair; the
//! variation stays within ≈ 13% overall and within 6% when using the
//! previous week's optimum — the protocol a production client would follow.

use crate::cost::{delayed_delta_cost_at, CostPoint};
use crate::latency::LatencyModel;
use crate::strategy::SingleResubmission;

/// One evaluated `(t0, t∞)` pair under some week's model.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferCell {
    /// Name of the week the pair was optimal for.
    pub param_week: String,
    /// The pair's `t0`, seconds.
    pub t0: f64,
    /// The pair's `t∞`, seconds.
    pub t_inf: f64,
    /// `E_J` under the evaluation week's model, seconds.
    pub expectation: f64,
    /// `∆cost` under the evaluation week's model.
    pub delta_cost: f64,
}

/// Table-6 row: one evaluation week against every week's optimal pair.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferReport {
    /// The week whose model evaluates the pairs.
    pub eval_week: String,
    /// One cell per parameter source (same order as the input).
    pub cells: Vec<TransferCell>,
    /// Index of this week's own (optimal) pair in `cells`.
    pub own_index: usize,
    /// Max relative `∆cost` increase over the own-pair value, percent.
    pub max_diff_pct: f64,
    /// Relative increase when using the *previous* week's pair, percent
    /// (`None` for the first week).
    pub prev_diff_pct: Option<f64>,
}

/// Input: for each week, its name, its latency model, and its `∆cost`-optimal
/// `(t0, t∞)` pair. Output: one [`TransferReport`] per week, evaluating every
/// pair under that week's model (the full Table 6 matrix).
pub fn transfer_matrix<M: LatencyModel>(weeks: &[(String, M, (f64, f64))]) -> Vec<TransferReport> {
    assert!(!weeks.is_empty(), "need at least one week");
    weeks
        .iter()
        .enumerate()
        .map(|(i, (name, model, _))| {
            let single = SingleResubmission::optimize(model);
            let cells: Vec<TransferCell> = weeks
                .iter()
                .map(|(pname, _, (t0, ti))| {
                    let p: CostPoint = delayed_delta_cost_at(model, *t0, *ti, single.expectation);
                    TransferCell {
                        param_week: pname.clone(),
                        t0: *t0,
                        t_inf: *ti,
                        expectation: p.expectation,
                        delta_cost: p.delta_cost,
                    }
                })
                .collect();
            let own = cells[i].delta_cost;
            let max = cells
                .iter()
                .map(|c| c.delta_cost)
                .fold(f64::NEG_INFINITY, f64::max);
            let prev_diff_pct = (i > 0).then(|| (cells[i - 1].delta_cost - own) / own * 100.0);
            TransferReport {
                eval_week: name.clone(),
                cells,
                own_index: i,
                max_diff_pct: (max - own) / own * 100.0,
                prev_diff_pct,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{optimize_delayed_delta_cost, StrategyParams};
    use crate::latency::ParametricModel;
    use gridstrat_stats::{LogNormal, Shifted};

    type TestWeek = (String, ParametricModel<Shifted<LogNormal>>, (f64, f64));

    fn weeks() -> Vec<TestWeek> {
        // three similar-but-different weeks
        let specs = [
            ("w1", 480.0, 760.0, 0.12),
            ("w2", 520.0, 900.0, 0.10),
            ("w3", 450.0, 650.0, 0.15),
        ];
        specs
            .iter()
            .map(|&(name, mean, sd, rho)| {
                let body = Shifted::new(LogNormal::from_mean_std(mean - 150.0, sd).unwrap(), 150.0)
                    .unwrap();
                let m = ParametricModel::new(body, rho, 1e4).unwrap();
                let best = optimize_delayed_delta_cost(&m);
                let pair = match best.params {
                    StrategyParams::Delayed { t0, t_inf } => (t0, t_inf),
                    _ => unreachable!(),
                };
                (name.to_string(), m, pair)
            })
            .collect()
    }

    #[test]
    fn matrix_shape_and_own_optimality() {
        let ws = weeks();
        let reports = transfer_matrix(&ws);
        assert_eq!(reports.len(), 3);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.cells.len(), 3);
            assert_eq!(r.own_index, i);
            // own pair is optimal for its own week ⇒ every diff ≥ 0
            assert!(
                r.max_diff_pct >= -1e-9,
                "{}: own pair not optimal ({}%)",
                r.eval_week,
                r.max_diff_pct
            );
            if let Some(p) = r.prev_diff_pct {
                assert!(p >= -1e-9);
                assert!(p <= r.max_diff_pct + 1e-9);
            }
        }
        assert!(reports[0].prev_diff_pct.is_none());
        assert!(reports[1].prev_diff_pct.is_some());
    }

    #[test]
    fn similar_weeks_transfer_well() {
        // the paper's observation: neighbouring weeks' optima transfer
        // within ≈ 15%
        let ws = weeks();
        let reports = transfer_matrix(&ws);
        for r in &reports {
            assert!(
                r.max_diff_pct < 25.0,
                "{} transfers badly: {}%",
                r.eval_week,
                r.max_diff_pct
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one week")]
    fn rejects_empty_input() {
        transfer_matrix::<ParametricModel<LogNormal>>(&[]);
    }
}
