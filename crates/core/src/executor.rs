//! Monte-Carlo execution of the strategies against the discrete-event grid.
//!
//! Each closed form in this crate is validated by actually *running* the
//! corresponding client-side protocol against [`gridstrat_sim`]: a
//! controller submits, cancels and re-submits jobs exactly as a user's
//! wrapper script would, and the realised total latency `J`, submission
//! count and time-average parallel-job count are measured from the engine's
//! audit records. Trials run in parallel with rayon; per-trial RNGs are
//! derived from `(seed, trial)` so results do not depend on thread count.

use crate::cost::StrategyParams;
use gridstrat_stats::rng::derive_seed;
use gridstrat_stats::Summary;
use gridstrat_sim::{
    Controller, GridConfig, GridSimulation, JobId, Notification, SimDuration,
};
use gridstrat_workload::WeekModel;
use rayon::prelude::*;

/// Monte-Carlo run configuration.
#[derive(Debug, Clone, Copy)]
pub struct MonteCarloConfig {
    /// Number of independent trials.
    pub trials: usize,
    /// Master seed; trial `k` uses `derive_seed(seed, k)`.
    pub seed: u64,
}

impl Default for MonteCarloConfig {
    fn default() -> Self {
        MonteCarloConfig { trials: 10_000, seed: 0xE6EE }
    }
}

/// Aggregated Monte-Carlo estimates for one strategy instance.
#[derive(Debug, Clone, Copy)]
pub struct MonteCarloEstimate {
    /// Mean realised total latency `Ê_J`, seconds.
    pub mean_j: f64,
    /// Standard error of `mean_j`.
    pub stderr_j: f64,
    /// Realised standard deviation `σ̂_J`, seconds.
    pub std_j: f64,
    /// Mean number of submissions per task.
    pub mean_submissions: f64,
    /// Mean realised time-average parallel-job count `E[N_//(J)]`.
    pub mean_parallel: f64,
    /// Trials that completed (a job started before the horizon).
    pub completed_trials: usize,
}

/// Runs submission strategies against an oracle- or resample-mode grid.
#[derive(Debug, Clone)]
pub struct StrategyExecutor {
    grid: GridConfig,
    config: MonteCarloConfig,
}

impl StrategyExecutor {
    /// Creates an executor drawing latencies from a weekly generative model
    /// (oracle mode).
    pub fn new(model: WeekModel, config: MonteCarloConfig) -> Self {
        StrategyExecutor { grid: GridConfig::oracle(model), config }
    }

    /// Creates an executor that resamples latencies i.i.d. from a recorded
    /// trace — strategies then run against *exactly* the empirical law an
    /// [`crate::latency::EmpiricalModel`] of that trace describes.
    pub fn from_trace(trace: &gridstrat_workload::TraceSet, config: MonteCarloConfig) -> Self {
        let latencies: Vec<f64> = trace.records.iter().map(|r| r.latency_s).collect();
        StrategyExecutor {
            grid: GridConfig::resample(latencies, trace.threshold_s),
            config,
        }
    }

    /// Runs `trials` independent executions of the strategy and aggregates.
    ///
    /// Trials execute on the rayon pool but are aggregated in trial order,
    /// so the estimate is **bit-identical** for any thread count.
    pub fn run(&self, spec: StrategyParams) -> MonteCarloEstimate {
        let outcomes: Vec<Option<(f64, f64, f64)>> = (0..self.config.trials)
            .into_par_iter()
            .map(|trial| self.run_trial(spec, derive_seed(self.config.seed, trial as u64)))
            .collect();
        let mut j_sum = Summary::new();
        let mut sub_sum = Summary::new();
        let mut par_sum = Summary::new();
        for out in outcomes.into_iter().flatten() {
            let (j, subs, par) = out;
            j_sum.push(j);
            sub_sum.push(subs);
            par_sum.push(par);
        }
        MonteCarloEstimate {
            mean_j: j_sum.mean(),
            stderr_j: j_sum.stderr(),
            std_j: j_sum.std(),
            mean_submissions: sub_sum.mean(),
            mean_parallel: par_sum.mean(),
            completed_trials: j_sum.count() as usize,
        }
    }

    /// One trial: returns `(J, submissions, parallel-average)` or `None` if
    /// no job started before the horizon.
    fn run_trial(&self, spec: StrategyParams, seed: u64) -> Option<(f64, f64, f64)> {
        let mut sim = GridSimulation::new(self.grid.clone(), seed)
            .expect("executor grid configs are always valid");
        let j = match spec {
            StrategyParams::Single { t_inf } => {
                let mut ctrl = SingleCtrl::new(t_inf);
                sim.run_controller(&mut ctrl);
                ctrl.j
            }
            StrategyParams::Multiple { b, t_inf } => {
                let mut ctrl = MultipleCtrl::new(b, t_inf);
                sim.run_controller(&mut ctrl);
                ctrl.j
            }
            StrategyParams::Delayed { t0, t_inf } => {
                let mut ctrl = DelayedCtrl::new(1, t0, t_inf);
                sim.run_controller(&mut ctrl);
                ctrl.j
            }
            StrategyParams::DelayedMultiple { b, t0, t_inf } => {
                let mut ctrl = DelayedCtrl::new(b, t0, t_inf);
                sim.run_controller(&mut ctrl);
                ctrl.j
            }
        };
        let j = j?;

        // cancel everything still pending so bookkeeping below sees a
        // terminal time for every job
        let pending: Vec<JobId> = sim
            .jobs()
            .iter()
            .filter(|r| !r.state.is_terminal() && r.started_at.is_none())
            .map(|r| r.id)
            .collect();
        for id in pending {
            sim.cancel(id);
        }

        let submissions = sim.stats().client_submitted as f64;
        // time-integral of the number of in-system jobs over [0, J]:
        // a job is "in the system" from submission until it starts, is
        // cancelled, or the task completes at J
        let mut integral = 0.0;
        for rec in sim.jobs() {
            let s = rec.submitted_at.as_secs();
            if s >= j {
                continue;
            }
            let end = match (rec.started_at, rec.terminated_at) {
                (Some(st), _) => st.as_secs(),
                (None, Some(term)) => term.as_secs(),
                (None, None) => j,
            };
            integral += end.min(j) - s;
        }
        let n_par = if j > 0.0 { integral / j } else { 1.0 };
        Some((j, submissions, n_par))
    }
}

// --- single resubmission -----------------------------------------------------

struct SingleCtrl {
    t_inf: SimDuration,
    current: Option<JobId>,
    j: Option<f64>,
}

impl SingleCtrl {
    fn new(t_inf: f64) -> Self {
        SingleCtrl { t_inf: SimDuration::from_secs(t_inf), current: None, j: None }
    }
}

impl Controller for SingleCtrl {
    fn start(&mut self, sim: &mut GridSimulation) {
        let id = sim.submit();
        sim.set_timer(self.t_inf, id.0);
        self.current = Some(id);
    }

    fn on_event(&mut self, sim: &mut GridSimulation, ev: Notification) {
        match ev {
            Notification::JobStarted { id, at }
                if self.current == Some(id) => {
                    self.j = Some(at.as_secs());
                }
            Notification::Timer { token, .. }
                if self.j.is_none() && self.current == Some(JobId(token)) => {
                    sim.cancel(JobId(token));
                    let id = sim.submit();
                    sim.set_timer(self.t_inf, id.0);
                    self.current = Some(id);
                }
            _ => {}
        }
    }

    fn done(&self) -> bool {
        self.j.is_some()
    }
}

// --- multiple (burst) submission ----------------------------------------------

struct MultipleCtrl {
    b: u32,
    t_inf: SimDuration,
    round: u64,
    jobs: Vec<JobId>,
    j: Option<f64>,
}

impl MultipleCtrl {
    fn new(b: u32, t_inf: f64) -> Self {
        assert!(b >= 1);
        MultipleCtrl {
            b,
            t_inf: SimDuration::from_secs(t_inf),
            round: 0,
            jobs: Vec::with_capacity(b as usize),
            j: None,
        }
    }

    fn submit_round(&mut self, sim: &mut GridSimulation) {
        self.jobs.clear();
        for _ in 0..self.b {
            self.jobs.push(sim.submit());
        }
        sim.set_timer(self.t_inf, self.round);
    }
}

impl Controller for MultipleCtrl {
    fn start(&mut self, sim: &mut GridSimulation) {
        self.submit_round(sim);
    }

    fn on_event(&mut self, sim: &mut GridSimulation, ev: Notification) {
        match ev {
            Notification::JobStarted { id, at }
                if self.j.is_none() && self.jobs.contains(&id) => {
                    self.j = Some(at.as_secs());
                    // cancel the rest of the collection
                    let others: Vec<JobId> =
                        self.jobs.iter().copied().filter(|&o| o != id).collect();
                    for o in others {
                        sim.cancel(o);
                    }
                }
            Notification::Timer { token, .. }
                if self.j.is_none() && token == self.round => {
                    for &o in &self.jobs.clone() {
                        sim.cancel(o);
                    }
                    self.round += 1;
                    self.submit_round(sim);
                }
            _ => {}
        }
    }

    fn done(&self) -> bool {
        self.j.is_some()
    }
}

// --- delayed resubmission ------------------------------------------------------

struct DelayedCtrl {
    b: u32,
    t0: SimDuration,
    t_inf: SimDuration,
    /// all jobs, echelon by echelon (`b` jobs per echelon)
    jobs: Vec<JobId>,
    echelons: u64,
    j: Option<f64>,
}

/// Timer-token encoding for the delayed controller: even = “submit the next
/// echelon”, odd = “cancel job (token-1)/2”.
fn submit_token(echelon: u64) -> u64 {
    2 * echelon
}
fn cancel_token(id: JobId) -> u64 {
    2 * id.0 + 1
}

impl DelayedCtrl {
    fn new(b: u32, t0: f64, t_inf: f64) -> Self {
        assert!(b >= 1, "need at least one copy per echelon");
        assert!(
            crate::strategy::DelayedResubmission::feasible(t0, t_inf),
            "delayed controller requires a feasible pair"
        );
        DelayedCtrl {
            b,
            t0: SimDuration::from_secs(t0),
            t_inf: SimDuration::from_secs(t_inf),
            jobs: Vec::new(),
            echelons: 0,
            j: None,
        }
    }

    fn submit_echelon(&mut self, sim: &mut GridSimulation) {
        for _ in 0..self.b {
            let id = sim.submit();
            self.jobs.push(id);
            sim.set_timer(self.t_inf, cancel_token(id));
        }
        self.echelons += 1;
        sim.set_timer(self.t0, submit_token(self.echelons));
    }
}

impl Controller for DelayedCtrl {
    fn start(&mut self, sim: &mut GridSimulation) {
        self.submit_echelon(sim);
    }

    fn on_event(&mut self, sim: &mut GridSimulation, ev: Notification) {
        if self.j.is_some() {
            return;
        }
        match ev {
            Notification::JobStarted { id, at }
                if self.jobs.contains(&id) => {
                    self.j = Some(at.as_secs());
                    let others: Vec<JobId> =
                        self.jobs.iter().copied().filter(|&o| o != id).collect();
                    for o in others {
                        sim.cancel(o);
                    }
                }
            Notification::Timer { token, .. } => {
                if token % 2 == 1 {
                    sim.cancel(JobId((token - 1) / 2));
                } else {
                    // submit echelon number `token/2` (0-based count so far)
                    if token / 2 == self.echelons {
                        self.submit_echelon(sim);
                    }
                }
            }
            _ => {}
        }
    }

    fn done(&self) -> bool {
        self.j.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::EmpiricalModel;
    use crate::strategy::{DelayedResubmission, MultipleSubmission, SingleResubmission};
    use crate::LatencyModel;

    fn week() -> WeekModel {
        WeekModel::calibrate("mc", 500.0, 700.0, 0.10, 60.0, 10_000.0).unwrap()
    }

    /// Builds the *exact* empirical model of the oracle by sampling the
    /// model heavily — the analytic predictions are then compared on the
    /// same law the simulator draws from.
    fn reference_model(w: &WeekModel) -> crate::latency::ParametricModel<impl gridstrat_stats::Distribution> {
        crate::latency::ParametricModel::new(w.body(), w.rho, w.threshold_s).unwrap()
    }

    fn cfg(trials: usize) -> MonteCarloConfig {
        MonteCarloConfig { trials, seed: 1234 }
    }

    #[test]
    fn single_strategy_matches_analytic() {
        let w = week();
        let m = reference_model(&w);
        let t_inf = 700.0;
        let analytic = SingleResubmission::expectation(&m, t_inf);
        let mc = StrategyExecutor::new(w, cfg(6_000)).run(StrategyParams::Single { t_inf });
        assert_eq!(mc.completed_trials, 6_000);
        let z = (mc.mean_j - analytic).abs() / mc.stderr_j;
        assert!(z < 4.0, "MC {} vs analytic {analytic} (z = {z})", mc.mean_j);
        // submissions per task: geometric with success prob F̃(t∞)
        let f = m.defective_cdf(t_inf);
        let expected_subs = 1.0 / f;
        assert!(
            (mc.mean_submissions - expected_subs).abs() / expected_subs < 0.05,
            "subs {} vs {expected_subs}",
            mc.mean_submissions
        );
        // exactly one job in flight at all times
        assert!((mc.mean_parallel - 1.0).abs() < 1e-9);
    }

    #[test]
    fn multiple_strategy_matches_analytic() {
        let w = week();
        let m = reference_model(&w);
        let (b, t_inf) = (3u32, 800.0);
        let analytic = MultipleSubmission::expectation(&m, b, t_inf);
        let mc = StrategyExecutor::new(w, cfg(6_000)).run(StrategyParams::Multiple { b, t_inf });
        let z = (mc.mean_j - analytic).abs() / mc.stderr_j;
        assert!(z < 4.0, "MC {} vs analytic {analytic} (z = {z})", mc.mean_j);
        // the collection keeps b jobs in flight until J
        assert!((mc.mean_parallel - b as f64).abs() < 0.02, "N {}", mc.mean_parallel);
    }

    #[test]
    fn delayed_strategy_matches_analytic() {
        let w = week();
        let m = reference_model(&w);
        let (t0, t_inf) = (400.0, 550.0);
        let analytic = DelayedResubmission::expectation(&m, t0, t_inf);
        let (_, sigma) = DelayedResubmission::moments(&m, t0, t_inf);
        let mc = StrategyExecutor::new(w, cfg(8_000)).run(StrategyParams::Delayed { t0, t_inf });
        let z = (mc.mean_j - analytic).abs() / mc.stderr_j;
        assert!(z < 4.0, "MC {} vs analytic {analytic} (z = {z})", mc.mean_j);
        assert!(
            (mc.std_j - sigma).abs() / sigma < 0.05,
            "σ MC {} vs analytic {sigma}",
            mc.std_j
        );
        // N_// stays inside the protocol's [1, 2) band
        assert!(mc.mean_parallel >= 1.0 && mc.mean_parallel < 2.0);
    }

    #[test]
    fn generalized_delayed_matches_analytic() {
        let w = week();
        let m = reference_model(&w);
        let (b, t0, t_inf) = (2u32, 400.0, 550.0);
        let analytic = DelayedResubmission::expectation_with_copies(&m, b, t0, t_inf);
        let mc = StrategyExecutor::new(w, cfg(8_000))
            .run(StrategyParams::DelayedMultiple { b, t0, t_inf });
        let z = (mc.mean_j - analytic).abs() / mc.stderr_j;
        assert!(z < 4.0, "MC {} vs analytic {analytic} (z = {z})", mc.mean_j);
        // up to 2b jobs in flight; realised average in (b, 2b)
        assert!(mc.mean_parallel > 1.0 && mc.mean_parallel < 4.0);
    }

    #[test]
    fn delayed_n_parallel_convention_vs_realised() {
        // the paper's N_//(E_J) and the realised E[N_//(J)] should be close
        // but need not coincide — both are reported
        let w = week();
        let m = reference_model(&w);
        let (t0, t_inf) = (400.0, 550.0);
        let paper_convention =
            DelayedResubmission::evaluate(&m, t0, t_inf).n_parallel;
        let mc = StrategyExecutor::new(w, cfg(6_000)).run(StrategyParams::Delayed { t0, t_inf });
        assert!(
            (mc.mean_parallel - paper_convention).abs() < 0.15,
            "realised {} vs convention {paper_convention}",
            mc.mean_parallel
        );
    }

    #[test]
    fn deterministic_across_repeats() {
        let w = week();
        let a = StrategyExecutor::new(w.clone(), cfg(300))
            .run(StrategyParams::Single { t_inf: 700.0 });
        let b = StrategyExecutor::new(w, cfg(300)).run(StrategyParams::Single { t_inf: 700.0 });
        assert_eq!(a.mean_j.to_bits(), b.mean_j.to_bits());
        assert_eq!(a.mean_submissions.to_bits(), b.mean_submissions.to_bits());
    }

    #[test]
    fn resample_executor_matches_empirical_model_exactly() {
        // the tightest loop: tune on a trace's ECDF, execute by resampling
        // the very same trace — analytic and simulated laws coincide, so
        // agreement is limited only by Monte-Carlo error
        let w = week();
        let trace = w.generate(2_500, 4242);
        let emp = EmpiricalModel::from_trace(&trace).unwrap();
        let ex = StrategyExecutor::from_trace(&trace, cfg(8_000));
        for (label, spec, analytic) in [
            (
                "single",
                StrategyParams::Single { t_inf: 650.0 },
                SingleResubmission::expectation(&emp, 650.0),
            ),
            (
                "multiple",
                StrategyParams::Multiple { b: 3, t_inf: 800.0 },
                MultipleSubmission::expectation(&emp, 3, 800.0),
            ),
            (
                "delayed",
                StrategyParams::Delayed { t0: 400.0, t_inf: 560.0 },
                DelayedResubmission::expectation(&emp, 400.0, 560.0),
            ),
        ] {
            let mc = ex.run(spec);
            let z = (mc.mean_j - analytic).abs() / mc.stderr_j;
            assert!(
                z < 4.0,
                "{label}: MC {} vs analytic {analytic} (z = {z})",
                mc.mean_j
            );
        }
    }

    #[test]
    fn empirical_model_from_simulated_trace_closes_the_loop() {
        // generate a trace from the model, fit an empirical model, and
        // check the analytic E_J on it is near the oracle-based MC
        let w = week();
        let trace = w.generate(4000, 99);
        let emp = EmpiricalModel::from_trace(&trace).unwrap();
        let t_inf = 700.0;
        let analytic = SingleResubmission::expectation(&emp, t_inf);
        let mc = StrategyExecutor::new(w, cfg(4_000)).run(StrategyParams::Single { t_inf });
        assert!(
            (mc.mean_j - analytic).abs() / analytic < 0.08,
            "trace-fitted {analytic} vs MC {}",
            mc.mean_j
        );
    }
}
