//! Monte-Carlo execution of the strategies against the discrete-event grid,
//! and the batched scenario sweep.
//!
//! Each closed form in this crate is validated by actually *running* the
//! corresponding client-side protocol against [`gridstrat_sim`]: a
//! controller submits, cancels and re-submits jobs exactly as a user's
//! wrapper script would, and the realised total latency `J`, submission
//! count and time-average parallel-job count are measured from the engine's
//! audit records. Controllers are built through
//! [`Strategy::build_controller`], so the executor never matches on
//! strategy variants.
//!
//! Two entry points share the same trial kernel:
//!
//! * [`StrategyExecutor`] — many trials of **one** strategy on **one**
//!   latency law (the validation workhorse);
//! * [`ScenarioSweep`] — a (strategy × week × grid-scenario) grid evaluated
//!   in **one** parallel pass. Every cell gets its own RNG stream via
//!   `derive_seed(master, cell)` and trials within a cell use
//!   `derive_seed(cell_seed, trial)`, and results are aggregated in index
//!   order — so the entire sweep is **bit-identical for any thread count**.

use crate::cost::StrategyParams;
use crate::latency::ParametricModel;
use crate::strategy::Strategy;
use gridstrat_sim::{
    Controller, GridConfig, GridSimulation, JobId, LatencyMode, Notification, SimDuration,
};
use gridstrat_stats::rng::derive_seed;
use gridstrat_stats::Summary;
use gridstrat_workload::{WeekId, WeekModel, MAX_FAULT_RATIO};
use rayon::prelude::*;
use std::sync::Arc;

/// A [`Controller`] realising a submission strategy, exposing the realised
/// total latency once a job of the current task has started.
pub trait StrategyController: Controller + Send {
    /// The realised total latency `J` in seconds, once known.
    fn total_latency(&self) -> Option<f64>;

    /// Rewinds the controller to the state [`Strategy::build_controller`]
    /// constructs it in, keeping internal allocations. A reset controller
    /// must drive a trial **bit-identically** to a freshly-built one — the
    /// Monte-Carlo workers reuse one controller across every trial of a
    /// cell.
    fn reset(&mut self);
}

/// Monte-Carlo run configuration.
#[derive(Debug, Clone, Copy)]
pub struct MonteCarloConfig {
    /// Number of independent trials.
    pub trials: usize,
    /// Master seed; trial `k` uses `derive_seed(seed, k)`.
    pub seed: u64,
}

impl Default for MonteCarloConfig {
    fn default() -> Self {
        MonteCarloConfig {
            trials: 10_000,
            seed: 0xE6EE,
        }
    }
}

/// Aggregated Monte-Carlo estimates for one strategy instance.
#[derive(Debug, Clone, Copy)]
pub struct MonteCarloEstimate {
    /// Mean realised total latency `Ê_J`, seconds.
    pub mean_j: f64,
    /// Standard error of `mean_j`.
    pub stderr_j: f64,
    /// Realised standard deviation `σ̂_J`, seconds.
    pub std_j: f64,
    /// Mean number of submissions per task.
    pub mean_submissions: f64,
    /// Mean realised time-average parallel-job count `E[N_//(J)]`.
    pub mean_parallel: f64,
    /// Trials that completed (a job started before the horizon).
    pub completed_trials: usize,
}

/// Reusable per-worker trial state: one engine and one controller, both
/// rewound in place between trials so the hot loop never touches the
/// allocator. Workers obtain one lazily through [`TrialWorker::obtain`]
/// from a `map_init` scratch slot.
struct TrialWorker {
    sim: GridSimulation,
    ctrl: Box<dyn StrategyController>,
    /// Identity of the `(grid, strategy)` pair this worker was built for —
    /// reusing it for a different pair would silently drive the wrong
    /// protocol, so `obtain` guards against that in debug builds.
    #[cfg(debug_assertions)]
    built_for: (Arc<GridConfig>, StrategyParams),
}

impl TrialWorker {
    /// Returns the slot's worker primed for a `(grid, strategy, seed)`
    /// trial: the first call constructs engine + controller, later calls
    /// rewind them in place. Engine `reset` and controller `reset` are
    /// bit-exact, so whether a trial ran on a fresh or a reused worker is
    /// unobservable — the property that keeps sweep results identical
    /// across thread counts (chunk boundaries decide reuse patterns).
    fn obtain<'s>(
        slot: &'s mut Option<TrialWorker>,
        grid: &Arc<GridConfig>,
        strategy: &dyn Strategy,
        seed: u64,
    ) -> &'s mut TrialWorker {
        match slot {
            Some(worker) => {
                #[cfg(debug_assertions)]
                {
                    debug_assert!(
                        Arc::ptr_eq(&worker.built_for.0, grid)
                            && worker.built_for.1 == strategy.params(),
                        "TrialWorker reused for a different (grid, strategy) pair"
                    );
                }
                worker.sim.reset(seed);
                worker.ctrl.reset();
            }
            None => {
                *slot = Some(TrialWorker {
                    sim: GridSimulation::new(Arc::clone(grid), seed)
                        .expect("executor grid configs are always valid"),
                    ctrl: strategy.build_controller(),
                    #[cfg(debug_assertions)]
                    built_for: (Arc::clone(grid), strategy.params()),
                });
            }
        }
        slot.as_mut().expect("worker just installed")
    }

    /// One trial on the primed engine: returns
    /// `(J, submissions, parallel-average)`, or `None` if no job started
    /// before the horizon. The shared kernel of both executors.
    fn run(&mut self) -> Option<(f64, f64, f64)> {
        let sim = &mut self.sim;
        sim.run_controller(self.ctrl.as_mut());
        let j = self.ctrl.total_latency()?;

        // cancel everything still pending so bookkeeping below sees a
        // terminal time for every job (index loop: no scratch vector, and
        // cancelling one job never flips another job's pending state)
        for idx in 0..sim.jobs().len() {
            let rec = &sim.jobs()[idx];
            if !rec.state.is_terminal() && rec.started_at.is_none() {
                let id = rec.id;
                sim.cancel(id);
            }
        }

        let submissions = sim.stats().client_submitted as f64;
        // time-integral of the number of in-system jobs over [0, J]:
        // a job is "in the system" from submission until it starts, is
        // cancelled, or the task completes at J
        let mut integral = 0.0;
        for rec in sim.jobs() {
            let s = rec.submitted_at.as_secs();
            if s >= j {
                continue;
            }
            let end = match (rec.started_at, rec.terminated_at) {
                (Some(st), _) => st.as_secs(),
                (None, Some(term)) => term.as_secs(),
                (None, None) => j,
            };
            integral += end.min(j) - s;
        }
        let n_par = if j > 0.0 { integral / j } else { 1.0 };
        Some((j, submissions, n_par))
    }
}

/// Folds per-trial outcomes — **in trial order** — into an estimate.
fn aggregate(outcomes: impl IntoIterator<Item = Option<(f64, f64, f64)>>) -> MonteCarloEstimate {
    let mut j_sum = Summary::new();
    let mut sub_sum = Summary::new();
    let mut par_sum = Summary::new();
    for (j, subs, par) in outcomes.into_iter().flatten() {
        j_sum.push(j);
        sub_sum.push(subs);
        par_sum.push(par);
    }
    MonteCarloEstimate {
        mean_j: j_sum.mean(),
        stderr_j: j_sum.stderr(),
        std_j: j_sum.std(),
        mean_submissions: sub_sum.mean(),
        mean_parallel: par_sum.mean(),
        completed_trials: j_sum.count() as usize,
    }
}

/// Runs submission strategies against an oracle- or resample-mode grid.
///
/// The grid configuration is held behind an `Arc`: the thousands of
/// engines a run spins up all share it, so a trial costs no configuration
/// copy — in resample mode that previously meant cloning the entire
/// recorded sample vector per trial.
#[derive(Debug, Clone)]
pub struct StrategyExecutor {
    grid: Arc<GridConfig>,
    config: MonteCarloConfig,
}

impl StrategyExecutor {
    /// Creates an executor drawing latencies from a weekly generative model
    /// (oracle mode).
    pub fn new(model: WeekModel, config: MonteCarloConfig) -> Self {
        StrategyExecutor {
            grid: Arc::new(GridConfig::oracle(model)),
            config,
        }
    }

    /// Creates an executor over an arbitrary validated grid configuration
    /// — the entry point for modulated (nonstationary) and pipeline-mode
    /// Monte-Carlo runs that the week-model convenience constructors
    /// cannot express.
    pub fn from_grid(grid: impl Into<Arc<GridConfig>>, config: MonteCarloConfig) -> Self {
        let grid = grid.into();
        grid.validate().expect("executor grid must validate");
        StrategyExecutor { grid, config }
    }

    /// Creates an executor that resamples latencies i.i.d. from a recorded
    /// trace — strategies then run against *exactly* the empirical law an
    /// [`crate::latency::EmpiricalModel`] of that trace describes.
    pub fn from_trace(trace: &gridstrat_workload::TraceSet, config: MonteCarloConfig) -> Self {
        let latencies: Vec<f64> = trace.records.iter().map(|r| r.latency_s).collect();
        StrategyExecutor {
            grid: Arc::new(GridConfig::resample(latencies, trace.threshold_s)),
            config,
        }
    }

    /// Runs `trials` independent executions of the strategy and aggregates.
    ///
    /// Trials execute on the rayon pool but are aggregated in trial order,
    /// so the estimate is **bit-identical** for any thread count. Each
    /// worker thread reuses one engine + controller across all its trials
    /// (`map_init` scratch), so the per-trial cost is the protocol itself,
    /// not allocator traffic.
    pub fn run_strategy(&self, strategy: &dyn Strategy) -> MonteCarloEstimate {
        let grid = &self.grid;
        let outcomes: Vec<Option<(f64, f64, f64)>> = (0..self.config.trials)
            .into_par_iter()
            .map_init(
                || None::<TrialWorker>,
                |slot, trial| {
                    let seed = derive_seed(self.config.seed, trial as u64);
                    TrialWorker::obtain(slot, grid, strategy, seed).run()
                },
            )
            .collect();
        aggregate(outcomes)
    }

    /// Convenience wrapper over [`StrategyExecutor::run_strategy`] for
    /// plain-data strategy descriptions.
    pub fn run(&self, spec: StrategyParams) -> MonteCarloEstimate {
        self.run_strategy(&spec)
    }
}

// --- scenario sweep ----------------------------------------------------------

/// A named grid-condition variant applied on top of a week's calibrated
/// latency model — the sweep axis that workload-mining studies scan
/// (degraded fault rates, slower middleware, …).
#[derive(Debug, Clone)]
pub struct GridScenario {
    /// Scenario label (appears in sweep outcomes and report tables).
    pub name: String,
    /// Multiplier on the week's outlier/fault ratio `ρ` (result clamped to
    /// `[0, MAX_FAULT_RATIO]`).
    pub fault_scale: f64,
    /// Multiplier on body latency (scales the latency floor and the
    /// log-normal body; `1.0` = the calibrated week).
    pub latency_scale: f64,
}

impl GridScenario {
    /// The unmodified calibrated week.
    pub fn baseline() -> Self {
        GridScenario {
            name: "baseline".into(),
            fault_scale: 1.0,
            latency_scale: 1.0,
        }
    }

    /// A named variant scaling the fault ratio and body latency.
    pub fn new(name: impl Into<String>, fault_scale: f64, latency_scale: f64) -> Self {
        assert!(
            fault_scale.is_finite() && fault_scale >= 0.0,
            "fault scale must be non-negative"
        );
        assert!(
            latency_scale.is_finite() && latency_scale > 0.0,
            "latency scale must be positive"
        );
        GridScenario {
            name: name.into(),
            fault_scale,
            latency_scale,
        }
    }

    /// Applies the scenario to a full grid configuration — the overlay the
    /// multi-user fleet layer sweeps over.
    ///
    /// * **Oracle** mode: the week model is rescaled via
    ///   [`GridScenario::apply`].
    /// * **Pipeline** mode: `latency_scale` multiplies every middleware hop
    ///   delay (UI→WMS, match-making, dispatch, and a non-zero cancellation
    ///   delay), and `fault_scale` multiplies both fault probabilities
    ///   (clamped to `[0, MAX_FAULT_RATIO]`).
    /// * **Resample** mode: recorded latencies are left untouched; only the
    ///   fault knobs would apply, and resample mode has none — the config
    ///   passes through unchanged.
    pub fn apply_grid(&self, cfg: &GridConfig) -> GridConfig {
        let mut out = cfg.clone();
        match &mut out.latency {
            LatencyMode::Oracle(model) => *model = self.apply(model),
            LatencyMode::Resample { .. } => {}
            LatencyMode::Pipeline => {
                out.wms.ui_to_wms_mean_s *= self.latency_scale;
                out.wms.matchmaking_mean_s *= self.latency_scale;
                out.wms.dispatch_mean_s *= self.latency_scale;
                out.wms.cancellation_delay_mean_s *= self.latency_scale;
                out.faults.p_silent_loss =
                    (out.faults.p_silent_loss * self.fault_scale).clamp(0.0, MAX_FAULT_RATIO);
                out.faults.p_transient_failure =
                    (out.faults.p_transient_failure * self.fault_scale).clamp(0.0, MAX_FAULT_RATIO);
            }
        }
        out
    }

    /// Applies the scenario to a calibrated week model. The fault ratio
    /// saturates at the same [`MAX_FAULT_RATIO`] ceiling as the pipeline
    /// overlay ([`GridScenario::apply_grid`]) and the live modulation
    /// paths — the oracle clamp had drifted to 0.9 while every other path
    /// used 0.95, so the *same* scenario saturated at different fault
    /// levels depending on the latency mode.
    pub fn apply(&self, week: &WeekModel) -> WeekModel {
        let mut out = week.clone();
        out.name = format!("{}:{}", week.name, self.name);
        out.rho = (week.rho * self.fault_scale).clamp(0.0, MAX_FAULT_RATIO);
        // scaling a shifted log-normal by s: shift ×= s, μ += ln s
        out.shift_s = week.shift_s * self.latency_scale;
        out.body_mu = week.body_mu + self.latency_scale.ln();
        out
    }
}

/// One evaluated cell of a [`ScenarioSweep`].
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// The strategy evaluated in this cell.
    pub strategy: StrategyParams,
    /// The week whose calibrated model the cell used.
    pub week: WeekId,
    /// The grid-scenario label.
    pub scenario: String,
    /// Closed-form `E_J` on the cell's (scenario-adjusted) analytic model.
    pub analytic_e_j: f64,
    /// The paper-convention `N_//` on the analytic model.
    pub analytic_n_parallel: f64,
    /// Monte-Carlo estimates from executing the protocol.
    pub estimate: MonteCarloEstimate,
}

/// Batched evaluation of a (strategy × week × grid-scenario) grid in one
/// rayon pass.
///
/// Cells are laid out strategy-major
/// (`cell = (s·|weeks| + w)·|scenarios| + g`); the flat (cell × trial)
/// index space is distributed over the thread pool as a whole, so small
/// sweeps still saturate the machine and wall-clock is bounded by total
/// work, not by the slowest cell.
#[derive(Debug, Clone)]
pub struct ScenarioSweep {
    /// Strategy instances to evaluate (plain-data form).
    pub strategies: Vec<StrategyParams>,
    /// Weeks whose calibrated models define the latency laws.
    pub weeks: Vec<WeekId>,
    /// Grid-condition variants applied to every week.
    pub scenarios: Vec<GridScenario>,
    /// Trials per cell and the sweep's master seed.
    pub config: MonteCarloConfig,
}

impl ScenarioSweep {
    /// Builds a sweep; every axis must be non-empty.
    pub fn new(
        strategies: Vec<StrategyParams>,
        weeks: Vec<WeekId>,
        scenarios: Vec<GridScenario>,
        config: MonteCarloConfig,
    ) -> Self {
        assert!(!strategies.is_empty(), "sweep needs at least one strategy");
        assert!(!weeks.is_empty(), "sweep needs at least one week");
        assert!(!scenarios.is_empty(), "sweep needs at least one scenario");
        assert!(config.trials > 0, "sweep needs at least one trial per cell");
        // executing an infeasible delayed pair would panic mid-run inside a
        // worker thread; reject it here with a pointed message instead
        for (i, s) in strategies.iter().enumerate() {
            if let StrategyParams::Delayed { t0, t_inf }
            | StrategyParams::DelayedMultiple { t0, t_inf, .. } = *s
            {
                assert!(
                    crate::strategy::DelayedResubmission::feasible(t0, t_inf),
                    "sweep strategy {i}: infeasible delayed pair ({t0}, {t_inf})"
                );
            }
        }
        ScenarioSweep {
            strategies,
            weeks,
            scenarios,
            config,
        }
    }

    /// A single-week, baseline-scenario sweep over `strategies` — the most
    /// common validation shape.
    pub fn over_strategies(
        strategies: Vec<StrategyParams>,
        week: WeekId,
        config: MonteCarloConfig,
    ) -> Self {
        ScenarioSweep::new(
            strategies,
            vec![week],
            vec![GridScenario::baseline()],
            config,
        )
    }

    /// Number of cells in the grid.
    pub fn n_cells(&self) -> usize {
        self.strategies.len() * self.weeks.len() * self.scenarios.len()
    }

    /// Total number of engine trials the sweep will run.
    pub fn n_trials_total(&self) -> usize {
        self.n_cells() * self.config.trials
    }

    /// Evaluates the whole grid in one parallel pass.
    ///
    /// Returns one outcome per cell, in cell order. Bit-identical for any
    /// thread count: per-trial RNGs are derived from
    /// `(derive_seed(seed, cell), trial)` and aggregation runs in index
    /// order on the calling thread.
    pub fn run(&self) -> Vec<ScenarioOutcome> {
        struct CellPlan {
            strategy: StrategyParams,
            week: WeekId,
            scenario: String,
            grid: Arc<GridConfig>,
            seed: u64,
        }

        let trials = self.config.trials;
        let mut plans = Vec::with_capacity(self.n_cells());
        let mut analytic = Vec::with_capacity(self.n_cells());
        for strategy in &self.strategies {
            for &week in &self.weeks {
                let base = week.model();
                for scenario in &self.scenarios {
                    let model = scenario.apply(&base);
                    let cell = plans.len() as u64;
                    // closed forms on the scenario-adjusted parametric law
                    // (evaluated once; N_// is derived from the expectation)
                    let reference =
                        ParametricModel::new(model.body(), model.rho, model.threshold_s)
                            .expect("scenario-adjusted models stay valid");
                    let e = strategy.expected_j(&reference);
                    analytic.push((e, strategy.n_parallel_for(e)));
                    plans.push(CellPlan {
                        strategy: *strategy,
                        week,
                        scenario: scenario.name.clone(),
                        grid: Arc::new(GridConfig::oracle(model)),
                        seed: derive_seed(self.config.seed, cell),
                    });
                }
            }
        }

        let total = plans.len() * trials;
        let plans_ref = &plans;
        // the flat (cell × trial) index space is chunked over the pool;
        // each worker keeps one engine + controller alive and rewinds them
        // per trial, rebuilding only when its chunk crosses into a cell
        // with a different grid/strategy
        let outcomes: Vec<Option<(f64, f64, f64)>> = (0..total)
            .into_par_iter()
            .map_init(
                || None::<(usize, Option<TrialWorker>)>,
                move |state, k| {
                    let cell = k / trials;
                    let plan = &plans_ref[cell];
                    let trial = (k % trials) as u64;
                    let seed = derive_seed(plan.seed, trial);
                    match state {
                        Some((c, _)) if *c == cell => {}
                        _ => *state = Some((cell, None)),
                    }
                    let (_, slot) = state.as_mut().expect("cell slot just installed");
                    TrialWorker::obtain(slot, &plan.grid, &plan.strategy, seed).run()
                },
            )
            .collect();

        plans
            .iter()
            .zip(analytic)
            .enumerate()
            .map(
                |(c, (plan, (analytic_e_j, analytic_n_parallel)))| ScenarioOutcome {
                    strategy: plan.strategy,
                    week: plan.week,
                    scenario: plan.scenario.clone(),
                    analytic_e_j,
                    analytic_n_parallel,
                    estimate: aggregate(outcomes[c * trials..(c + 1) * trials].iter().copied()),
                },
            )
            .collect()
    }
}

// --- single resubmission -----------------------------------------------------

/// Controller realising single resubmission: cancel + resubmit at `t∞`.
pub(crate) struct SingleCtrl {
    t_inf: SimDuration,
    current: Option<JobId>,
    j: Option<f64>,
}

impl SingleCtrl {
    pub(crate) fn new(t_inf: f64) -> Self {
        SingleCtrl {
            t_inf: SimDuration::from_secs(t_inf),
            current: None,
            j: None,
        }
    }
}

impl Controller for SingleCtrl {
    fn start(&mut self, sim: &mut GridSimulation) {
        let id = sim.submit();
        sim.set_timer(self.t_inf, id.0);
        self.current = Some(id);
    }

    fn on_event(&mut self, sim: &mut GridSimulation, ev: Notification) {
        match ev {
            Notification::JobStarted { id, at } if self.current == Some(id) => {
                self.j = Some(at.as_secs());
            }
            Notification::Timer { token, .. }
                if self.j.is_none() && self.current == Some(JobId(token)) =>
            {
                sim.cancel(JobId(token));
                let id = sim.submit();
                sim.set_timer(self.t_inf, id.0);
                self.current = Some(id);
            }
            _ => {}
        }
    }

    fn done(&self) -> bool {
        self.j.is_some()
    }
}

impl StrategyController for SingleCtrl {
    fn total_latency(&self) -> Option<f64> {
        self.j
    }

    fn reset(&mut self) {
        self.current = None;
        self.j = None;
    }
}

// --- multiple (burst) submission ----------------------------------------------

/// Controller realising `b`-fold burst submission.
pub(crate) struct MultipleCtrl {
    b: u32,
    t_inf: SimDuration,
    round: u64,
    jobs: Vec<JobId>,
    j: Option<f64>,
}

impl MultipleCtrl {
    pub(crate) fn new(b: u32, t_inf: f64) -> Self {
        assert!(b >= 1);
        MultipleCtrl {
            b,
            t_inf: SimDuration::from_secs(t_inf),
            round: 0,
            jobs: Vec::with_capacity(b as usize),
            j: None,
        }
    }

    fn submit_round(&mut self, sim: &mut GridSimulation) {
        self.jobs.clear();
        for _ in 0..self.b {
            self.jobs.push(sim.submit());
        }
        sim.set_timer(self.t_inf, self.round);
    }
}

impl Controller for MultipleCtrl {
    fn start(&mut self, sim: &mut GridSimulation) {
        self.submit_round(sim);
    }

    fn on_event(&mut self, sim: &mut GridSimulation, ev: Notification) {
        match ev {
            Notification::JobStarted { id, at } if self.j.is_none() && self.jobs.contains(&id) => {
                self.j = Some(at.as_secs());
                // cancel the rest of the collection (`sim` and `self.jobs`
                // are disjoint borrows — no scratch copy needed)
                for &o in &self.jobs {
                    if o != id {
                        sim.cancel(o);
                    }
                }
            }
            Notification::Timer { token, .. } if self.j.is_none() && token == self.round => {
                for &o in &self.jobs {
                    sim.cancel(o);
                }
                self.round += 1;
                self.submit_round(sim);
            }
            _ => {}
        }
    }

    fn done(&self) -> bool {
        self.j.is_some()
    }
}

impl StrategyController for MultipleCtrl {
    fn total_latency(&self) -> Option<f64> {
        self.j
    }

    fn reset(&mut self) {
        self.round = 0;
        self.jobs.clear(); // keeps the b-slot allocation
        self.j = None;
    }
}

// --- delayed resubmission ------------------------------------------------------

/// Controller realising (generalised) delayed resubmission.
pub(crate) struct DelayedCtrl {
    b: u32,
    t0: SimDuration,
    t_inf: SimDuration,
    /// all jobs, echelon by echelon (`b` jobs per echelon)
    jobs: Vec<JobId>,
    echelons: u64,
    j: Option<f64>,
}

/// Timer-token encoding for the delayed controller: even = “submit the next
/// echelon”, odd = “cancel job (token-1)/2”.
fn submit_token(echelon: u64) -> u64 {
    2 * echelon
}
fn cancel_token(id: JobId) -> u64 {
    2 * id.0 + 1
}

impl DelayedCtrl {
    pub(crate) fn new(b: u32, t0: f64, t_inf: f64) -> Self {
        assert!(b >= 1, "need at least one copy per echelon");
        assert!(
            crate::strategy::DelayedResubmission::feasible(t0, t_inf),
            "delayed controller requires a feasible pair"
        );
        DelayedCtrl {
            b,
            t0: SimDuration::from_secs(t0),
            t_inf: SimDuration::from_secs(t_inf),
            jobs: Vec::new(),
            echelons: 0,
            j: None,
        }
    }

    fn submit_echelon(&mut self, sim: &mut GridSimulation) {
        for _ in 0..self.b {
            let id = sim.submit();
            self.jobs.push(id);
            sim.set_timer(self.t_inf, cancel_token(id));
        }
        self.echelons += 1;
        sim.set_timer(self.t0, submit_token(self.echelons));
    }
}

impl Controller for DelayedCtrl {
    fn start(&mut self, sim: &mut GridSimulation) {
        self.submit_echelon(sim);
    }

    fn on_event(&mut self, sim: &mut GridSimulation, ev: Notification) {
        if self.j.is_some() {
            return;
        }
        match ev {
            Notification::JobStarted { id, at } if self.jobs.contains(&id) => {
                self.j = Some(at.as_secs());
                for &o in &self.jobs {
                    if o != id {
                        sim.cancel(o);
                    }
                }
            }
            Notification::Timer { token, .. } => {
                if token % 2 == 1 {
                    sim.cancel(JobId((token - 1) / 2));
                } else {
                    // submit echelon number `token/2` (0-based count so far)
                    if token / 2 == self.echelons {
                        self.submit_echelon(sim);
                    }
                }
            }
            _ => {}
        }
    }

    fn done(&self) -> bool {
        self.j.is_some()
    }
}

impl StrategyController for DelayedCtrl {
    fn total_latency(&self) -> Option<f64> {
        self.j
    }

    fn reset(&mut self) {
        self.jobs.clear();
        self.echelons = 0;
        self.j = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::EmpiricalModel;
    use crate::strategy::{DelayedResubmission, MultipleSubmission, SingleResubmission};
    use crate::LatencyModel;

    fn week() -> WeekModel {
        WeekModel::calibrate("mc", 500.0, 700.0, 0.10, 60.0, 10_000.0).unwrap()
    }

    /// Builds the *exact* empirical model of the oracle by sampling the
    /// model heavily — the analytic predictions are then compared on the
    /// same law the simulator draws from.
    fn reference_model(
        w: &WeekModel,
    ) -> crate::latency::ParametricModel<impl gridstrat_stats::Distribution> {
        crate::latency::ParametricModel::new(w.body(), w.rho, w.threshold_s).unwrap()
    }

    fn cfg(trials: usize) -> MonteCarloConfig {
        MonteCarloConfig { trials, seed: 1234 }
    }

    #[test]
    fn single_strategy_matches_analytic() {
        let w = week();
        let m = reference_model(&w);
        let t_inf = 700.0;
        let analytic = SingleResubmission::expectation(&m, t_inf);
        let mc = StrategyExecutor::new(w, cfg(6_000)).run(StrategyParams::Single { t_inf });
        assert_eq!(mc.completed_trials, 6_000);
        let z = (mc.mean_j - analytic).abs() / mc.stderr_j;
        assert!(z < 4.0, "MC {} vs analytic {analytic} (z = {z})", mc.mean_j);
        // submissions per task: geometric with success prob F̃(t∞)
        let f = m.defective_cdf(t_inf);
        let expected_subs = 1.0 / f;
        assert!(
            (mc.mean_submissions - expected_subs).abs() / expected_subs < 0.05,
            "subs {} vs {expected_subs}",
            mc.mean_submissions
        );
        // exactly one job in flight at all times
        assert!((mc.mean_parallel - 1.0).abs() < 1e-9);
    }

    #[test]
    fn multiple_strategy_matches_analytic() {
        let w = week();
        let m = reference_model(&w);
        let (b, t_inf) = (3u32, 800.0);
        let analytic = MultipleSubmission::expectation(&m, b, t_inf);
        let mc = StrategyExecutor::new(w, cfg(6_000)).run(StrategyParams::Multiple { b, t_inf });
        let z = (mc.mean_j - analytic).abs() / mc.stderr_j;
        assert!(z < 4.0, "MC {} vs analytic {analytic} (z = {z})", mc.mean_j);
        // the collection keeps b jobs in flight until J
        assert!(
            (mc.mean_parallel - b as f64).abs() < 0.02,
            "N {}",
            mc.mean_parallel
        );
    }

    #[test]
    fn delayed_strategy_matches_analytic() {
        let w = week();
        let m = reference_model(&w);
        let (t0, t_inf) = (400.0, 550.0);
        let analytic = DelayedResubmission::expectation(&m, t0, t_inf);
        let (_, sigma) = DelayedResubmission::moments(&m, t0, t_inf);
        let mc = StrategyExecutor::new(w, cfg(8_000)).run(StrategyParams::Delayed { t0, t_inf });
        let z = (mc.mean_j - analytic).abs() / mc.stderr_j;
        assert!(z < 4.0, "MC {} vs analytic {analytic} (z = {z})", mc.mean_j);
        assert!(
            (mc.std_j - sigma).abs() / sigma < 0.05,
            "σ MC {} vs analytic {sigma}",
            mc.std_j
        );
        // N_// stays inside the protocol's [1, 2) band
        assert!(mc.mean_parallel >= 1.0 && mc.mean_parallel < 2.0);
    }

    #[test]
    fn generalized_delayed_matches_analytic() {
        let w = week();
        let m = reference_model(&w);
        let (b, t0, t_inf) = (2u32, 400.0, 550.0);
        let analytic = DelayedResubmission::expectation_with_copies(&m, b, t0, t_inf);
        let mc = StrategyExecutor::new(w, cfg(8_000)).run(StrategyParams::DelayedMultiple {
            b,
            t0,
            t_inf,
        });
        let z = (mc.mean_j - analytic).abs() / mc.stderr_j;
        assert!(z < 4.0, "MC {} vs analytic {analytic} (z = {z})", mc.mean_j);
        // up to 2b jobs in flight; realised average in (b, 2b)
        assert!(mc.mean_parallel > 1.0 && mc.mean_parallel < 4.0);
    }

    #[test]
    fn delayed_n_parallel_convention_vs_realised() {
        // the paper's N_//(E_J) and the realised E[N_//(J)] should be close
        // but need not coincide — both are reported
        let w = week();
        let m = reference_model(&w);
        let (t0, t_inf) = (400.0, 550.0);
        let paper_convention = DelayedResubmission::evaluate(&m, t0, t_inf).n_parallel;
        let mc = StrategyExecutor::new(w, cfg(6_000)).run(StrategyParams::Delayed { t0, t_inf });
        assert!(
            (mc.mean_parallel - paper_convention).abs() < 0.15,
            "realised {} vs convention {paper_convention}",
            mc.mean_parallel
        );
    }

    #[test]
    fn engine_reuse_is_unobservable() {
        // 1 thread = one worker reused for every trial; as many threads as
        // trials = every trial on a freshly-built engine + controller.
        // The two extremes must agree to the bit, for every strategy
        // family (reset() correctness of each controller).
        let trials = 48usize;
        let w = week();
        for spec in [
            StrategyParams::Single { t_inf: 700.0 },
            StrategyParams::Multiple { b: 3, t_inf: 800.0 },
            StrategyParams::Delayed {
                t0: 400.0,
                t_inf: 560.0,
            },
            StrategyParams::DelayedMultiple {
                b: 2,
                t0: 400.0,
                t_inf: 560.0,
            },
        ] {
            let run_with = |threads: usize| {
                let pool = rayon::ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .expect("pool");
                pool.install(|| StrategyExecutor::new(w.clone(), cfg(trials)).run(spec))
            };
            let reused = run_with(1);
            let fresh = run_with(trials);
            assert_eq!(
                reused.mean_j.to_bits(),
                fresh.mean_j.to_bits(),
                "{spec:?}: reused engine diverged from fresh"
            );
            assert_eq!(reused.std_j.to_bits(), fresh.std_j.to_bits());
            assert_eq!(
                reused.mean_submissions.to_bits(),
                fresh.mean_submissions.to_bits()
            );
            assert_eq!(
                reused.mean_parallel.to_bits(),
                fresh.mean_parallel.to_bits()
            );
        }
    }

    #[test]
    fn modulated_engine_reuse_and_thread_counts_are_unobservable() {
        // the engine_reuse_is_unobservable family under an active
        // Modulation: single-thread (one reused worker) vs one-thread-per-
        // trial (all-fresh workers) must agree to the bit when the grid
        // drifts mid-trial, for every strategy family
        use gridstrat_workload::DiurnalModel;
        let trials = 32usize;
        let w = week();
        let mut grid = GridConfig::oracle(w.clone());
        grid.modulation = Some(Arc::new(DiurnalModel::new(w, 0.7, 2_000.0).unwrap()) as Arc<_>);
        let grid = Arc::new(grid);
        for spec in [
            StrategyParams::Single { t_inf: 700.0 },
            StrategyParams::Multiple { b: 3, t_inf: 800.0 },
            StrategyParams::Delayed {
                t0: 400.0,
                t_inf: 560.0,
            },
        ] {
            let run_with = |threads: usize| {
                let pool = rayon::ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .expect("pool");
                pool.install(|| {
                    StrategyExecutor::from_grid(Arc::clone(&grid), cfg(trials)).run(spec)
                })
            };
            let reused = run_with(1);
            let fresh = run_with(trials);
            assert_eq!(
                reused.mean_j.to_bits(),
                fresh.mean_j.to_bits(),
                "{spec:?}: modulated reuse diverged from fresh"
            );
            assert_eq!(reused.std_j.to_bits(), fresh.std_j.to_bits());
            assert_eq!(
                reused.mean_parallel.to_bits(),
                fresh.mean_parallel.to_bits()
            );
        }
    }

    #[test]
    fn deterministic_across_repeats() {
        let w = week();
        let a =
            StrategyExecutor::new(w.clone(), cfg(300)).run(StrategyParams::Single { t_inf: 700.0 });
        let b = StrategyExecutor::new(w, cfg(300)).run(StrategyParams::Single { t_inf: 700.0 });
        assert_eq!(a.mean_j.to_bits(), b.mean_j.to_bits());
        assert_eq!(a.mean_submissions.to_bits(), b.mean_submissions.to_bits());
    }

    #[test]
    fn trait_object_and_enum_paths_agree_bitwise() {
        // run(spec) and run_strategy(&concrete) must execute identical
        // protocols with identical RNG streams
        let w = week();
        let ex = StrategyExecutor::new(w, cfg(400));
        let via_enum = ex.run(StrategyParams::Multiple { b: 2, t_inf: 750.0 });
        let via_type = ex.run_strategy(&MultipleSubmission::new(2, 750.0));
        assert_eq!(via_enum.mean_j.to_bits(), via_type.mean_j.to_bits());
        assert_eq!(
            via_enum.mean_parallel.to_bits(),
            via_type.mean_parallel.to_bits()
        );
    }

    #[test]
    fn resample_executor_matches_empirical_model_exactly() {
        // the tightest loop: tune on a trace's ECDF, execute by resampling
        // the very same trace — analytic and simulated laws coincide, so
        // agreement is limited only by Monte-Carlo error
        let w = week();
        let trace = w.generate(2_500, 4242);
        let emp = EmpiricalModel::from_trace(&trace).unwrap();
        let ex = StrategyExecutor::from_trace(&trace, cfg(8_000));
        for (label, spec, analytic) in [
            (
                "single",
                StrategyParams::Single { t_inf: 650.0 },
                SingleResubmission::expectation(&emp, 650.0),
            ),
            (
                "multiple",
                StrategyParams::Multiple { b: 3, t_inf: 800.0 },
                MultipleSubmission::expectation(&emp, 3, 800.0),
            ),
            (
                "delayed",
                StrategyParams::Delayed {
                    t0: 400.0,
                    t_inf: 560.0,
                },
                DelayedResubmission::expectation(&emp, 400.0, 560.0),
            ),
        ] {
            let mc = ex.run(spec);
            let z = (mc.mean_j - analytic).abs() / mc.stderr_j;
            assert!(
                z < 4.0,
                "{label}: MC {} vs analytic {analytic} (z = {z})",
                mc.mean_j
            );
        }
    }

    #[test]
    fn empirical_model_from_simulated_trace_closes_the_loop() {
        // generate a trace from the model, fit an empirical model, and
        // check the analytic E_J on it is near the oracle-based MC
        let w = week();
        let trace = w.generate(4000, 99);
        let emp = EmpiricalModel::from_trace(&trace).unwrap();
        let t_inf = 700.0;
        let analytic = SingleResubmission::expectation(&emp, t_inf);
        let mc = StrategyExecutor::new(w, cfg(4_000)).run(StrategyParams::Single { t_inf });
        assert!(
            (mc.mean_j - analytic).abs() / analytic < 0.08,
            "trace-fitted {analytic} vs MC {}",
            mc.mean_j
        );
    }

    // --- scenario sweep ------------------------------------------------------

    fn small_sweep(seed: u64, trials: usize) -> ScenarioSweep {
        ScenarioSweep::new(
            vec![
                StrategyParams::Single { t_inf: 700.0 },
                StrategyParams::Multiple { b: 2, t_inf: 800.0 },
                StrategyParams::Delayed {
                    t0: 400.0,
                    t_inf: 560.0,
                },
            ],
            vec![WeekId::W2006Ix, WeekId::W2007_51],
            vec![
                GridScenario::baseline(),
                GridScenario::new("faulty", 2.0, 1.0),
            ],
            MonteCarloConfig { trials, seed },
        )
    }

    #[test]
    fn sweep_shape_and_cell_order() {
        let sweep = small_sweep(7, 50);
        assert_eq!(sweep.n_cells(), 12);
        assert_eq!(sweep.n_trials_total(), 600);
        let out = sweep.run();
        assert_eq!(out.len(), 12);
        // strategy-major, then week, then scenario
        assert_eq!(out[0].scenario, "baseline");
        assert_eq!(out[1].scenario, "faulty");
        assert_eq!(out[0].week, WeekId::W2006Ix);
        assert_eq!(out[2].week, WeekId::W2007_51);
        assert!(matches!(out[0].strategy, StrategyParams::Single { .. }));
        assert!(matches!(out[4].strategy, StrategyParams::Multiple { .. }));
        assert!(matches!(out[8].strategy, StrategyParams::Delayed { .. }));
    }

    #[test]
    fn sweep_matches_analytic_per_cell() {
        let out = ScenarioSweep::over_strategies(
            vec![
                StrategyParams::Single { t_inf: 700.0 },
                StrategyParams::Multiple { b: 3, t_inf: 800.0 },
            ],
            WeekId::W2006Ix,
            MonteCarloConfig {
                trials: 4_000,
                seed: 0xCE11,
            },
        )
        .run();
        for cell in &out {
            let z = (cell.estimate.mean_j - cell.analytic_e_j).abs() / cell.estimate.stderr_j;
            assert!(
                z < 4.5,
                "{:?}/{}: MC {} vs analytic {} (z = {z})",
                cell.strategy,
                cell.scenario,
                cell.estimate.mean_j,
                cell.analytic_e_j
            );
        }
    }

    #[test]
    fn sweep_scenarios_shift_the_law_as_configured() {
        let out = ScenarioSweep::new(
            vec![StrategyParams::Single { t_inf: 700.0 }],
            vec![WeekId::W2006Ix],
            vec![
                GridScenario::baseline(),
                GridScenario::new("slow", 1.0, 1.5),
                GridScenario::new("faulty", 3.0, 1.0),
            ],
            MonteCarloConfig {
                trials: 2_000,
                seed: 5,
            },
        )
        .run();
        // slower grid and faultier grid both push E_J up
        assert!(
            out[1].analytic_e_j > out[0].analytic_e_j,
            "latency scale had no effect"
        );
        assert!(
            out[2].analytic_e_j > out[0].analytic_e_j,
            "fault scale had no effect"
        );
        assert!(out[1].estimate.mean_j > out[0].estimate.mean_j);
        assert!(out[2].estimate.mean_j > out[0].estimate.mean_j);
    }

    #[test]
    fn sweep_identical_across_thread_counts() {
        let run_with = |threads: usize| {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool");
            pool.install(|| small_sweep(99, 200).run())
        };
        let a = run_with(1);
        let b = run_with(5);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.estimate.mean_j.to_bits(), y.estimate.mean_j.to_bits());
            assert_eq!(x.estimate.std_j.to_bits(), y.estimate.std_j.to_bits());
            assert_eq!(
                x.estimate.mean_parallel.to_bits(),
                y.estimate.mean_parallel.to_bits()
            );
        }
    }

    #[test]
    fn sweep_identical_under_rayon_num_threads_env() {
        // the env knob users actually reach for must not change results.
        // NOTE: mutates process-global env for a short window. This is
        // sound here because every env access in this workspace goes
        // through std::env (set_var/var share std's internal env lock) and
        // the dependency tree is pure Rust — no FFI code reads the
        // environment concurrently via raw getenv. Concurrent tests may
        // briefly run single-threaded, but their *results* are
        // thread-count-independent by design, so only wall-clock shifts.
        let before = small_sweep(3, 120).run();
        let prev = std::env::var("RAYON_NUM_THREADS").ok();
        std::env::set_var("RAYON_NUM_THREADS", "1");
        let after = small_sweep(3, 120).run();
        match prev {
            Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
            None => std::env::remove_var("RAYON_NUM_THREADS"),
        }
        for (x, y) in before.iter().zip(&after) {
            assert_eq!(x.estimate.mean_j.to_bits(), y.estimate.mean_j.to_bits());
        }
    }

    #[test]
    fn grid_scenario_apply_scales_fields() {
        let w = week();
        let s = GridScenario::new("x", 2.0, 1.25);
        let out = s.apply(&w);
        assert!((out.rho - 0.2).abs() < 1e-12);
        assert!((out.shift_s - w.shift_s * 1.25).abs() < 1e-12);
        // body mean scales linearly with the latency scale
        assert!((out.body_mean() - w.body_mean() * 1.25).abs() / w.body_mean() < 1e-9);
        assert!(out.name.contains(":x"));
        // extreme fault scaling clamps at the shared ceiling
        assert_eq!(
            GridScenario::new("f", 100.0, 1.0).apply(&w).rho,
            MAX_FAULT_RATIO
        );
    }

    #[test]
    fn fault_clamp_saturates_identically_across_all_scaling_paths() {
        // Regression for the clamp drift: `GridScenario::apply` saturated
        // ρ at 0.9 while `apply_grid` (pipeline overlay) and the
        // nonstationary models saturated at 0.95. All fault-scaling paths
        // must hit exactly MAX_FAULT_RATIO.
        let w = week(); // rho = 0.10
        let scale = 1_000.0;

        // path 1: oracle week-model overlay
        let via_apply = GridScenario::new("sat", scale, 1.0).apply(&w).rho;

        // path 2: pipeline fault-probability overlay
        let mut pipeline = GridConfig::pipeline_default();
        pipeline.faults.p_silent_loss = 0.10;
        pipeline.faults.p_transient_failure = 0.10;
        let overlaid = GridScenario::new("sat", scale, 1.0).apply_grid(&pipeline);
        let via_apply_grid = overlaid.faults.p_silent_loss;

        // path 3: oracle mode through apply_grid (delegates to apply)
        let via_grid_oracle = match GridScenario::new("sat", scale, 1.0)
            .apply_grid(&GridConfig::oracle(w.clone()))
            .latency
        {
            LatencyMode::Oracle(m) => m.rho,
            other => panic!("latency mode changed: {other:?}"),
        };

        // path 4: the nonstationary models' instantaneous fault ratio
        let diurnal = gridstrat_workload::DiurnalModel::new(
            WeekModel::calibrate("hot", 500.0, 700.0, 0.8, 60.0, 10_000.0).unwrap(),
            0.9,
            86_400.0,
        )
        .unwrap();
        let via_rho_at = diurnal.rho_at(21_600.0); // intensity 1.9 → 1.52 pre-clamp
        let via_modulated = w.modulated(1.0, scale).rho;

        for (label, got) in [
            ("GridScenario::apply", via_apply),
            ("GridScenario::apply_grid (pipeline)", via_apply_grid),
            ("GridScenario::apply_grid (oracle)", via_grid_oracle),
            ("DiurnalModel::rho_at", via_rho_at),
            ("WeekModel::modulated", via_modulated),
        ] {
            assert_eq!(
                got.to_bits(),
                MAX_FAULT_RATIO.to_bits(),
                "{label} saturated at {got}, want MAX_FAULT_RATIO"
            );
        }
        assert!(overlaid.validate().is_ok());
    }

    #[test]
    fn grid_scenario_apply_grid_scales_pipeline_and_oracle() {
        // pipeline: hop delays scale, fault probabilities scale and clamp
        let base = GridConfig::pipeline_default();
        let s = GridScenario::new("stress", 3.0, 2.0);
        let out = s.apply_grid(&base);
        assert!((out.wms.matchmaking_mean_s - base.wms.matchmaking_mean_s * 2.0).abs() < 1e-12);
        assert!((out.wms.ui_to_wms_mean_s - base.wms.ui_to_wms_mean_s * 2.0).abs() < 1e-12);
        assert!((out.faults.p_silent_loss - base.faults.p_silent_loss * 3.0).abs() < 1e-12);
        let extreme = GridScenario::new("melt", 1000.0, 1.0).apply_grid(&base);
        assert!(extreme.faults.p_silent_loss <= 0.95);
        assert!(extreme.validate().is_ok(), "overlay must stay valid");

        // oracle: delegates to the week-model overlay
        let w = week();
        let oracle = GridConfig::oracle(w.clone());
        let out = GridScenario::new("x", 2.0, 1.25).apply_grid(&oracle);
        match &out.latency {
            gridstrat_sim::LatencyMode::Oracle(m) => {
                assert!((m.rho - w.rho * 2.0).abs() < 1e-12);
            }
            other => panic!("latency mode changed: {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "at least one strategy")]
    fn sweep_rejects_empty_axes() {
        ScenarioSweep::new(
            vec![],
            vec![WeekId::W2006Ix],
            vec![GridScenario::baseline()],
            MonteCarloConfig::default(),
        );
    }
}
