//! Sensitivity of the `∆cost` optimum to parameter perturbations
//! (paper §7.1, right part of Table 5).
//!
//! In practice `t0` and `t∞` are estimated from past traces, so the paper
//! checks how much `∆cost` degrades when each parameter is off by up to
//! ±5 s (integer grid): most weeks stay within a few percent, the worst
//! climbs 14% — “a relative stability that needs to be enforced by a good
//! estimation of both optimal t0 and t∞”.

use crate::cost::delayed_delta_cost_at;
use crate::latency::LatencyModel;
use crate::strategy::DelayedResubmission;

/// Result of a ±radius perturbation scan around a `(t0, t∞)` pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StabilityReport {
    /// The centre `t0`, seconds.
    pub t0: f64,
    /// The centre `t∞`, seconds.
    pub t_inf: f64,
    /// `∆cost` at the centre.
    pub base_delta_cost: f64,
    /// Maximum `∆cost` over the feasible perturbed pairs.
    pub max_delta_cost: f64,
    /// `(max - base)/base`, in percent.
    pub max_rel_diff_pct: f64,
    /// Number of feasible perturbed pairs examined.
    pub examined: usize,
}

/// Scans all integer offsets `(dt0, dt∞) ∈ [-radius, radius]²` around the
/// pair, skipping infeasible combinations, and reports the worst `∆cost`.
///
/// `e_j_single_opt` is the week's optimal single-resubmission expectation
/// (the eq. 6 baseline).
pub fn stability_radius(
    model: &dyn LatencyModel,
    t0: f64,
    t_inf: f64,
    radius: u32,
    e_j_single_opt: f64,
) -> StabilityReport {
    assert!(
        DelayedResubmission::feasible(t0, t_inf),
        "centre pair must be feasible"
    );
    let base = delayed_delta_cost_at(model, t0, t_inf, e_j_single_opt).delta_cost;
    let r = radius as i64;
    let mut max = base;
    let mut examined = 0usize;
    for dt0 in -r..=r {
        for dti in -r..=r {
            let p0 = t0 + dt0 as f64;
            let pi = t_inf + dti as f64;
            if !DelayedResubmission::feasible(p0, pi) {
                continue;
            }
            examined += 1;
            let dc = delayed_delta_cost_at(model, p0, pi, e_j_single_opt).delta_cost;
            if dc > max {
                max = dc;
            }
        }
    }
    StabilityReport {
        t0,
        t_inf,
        base_delta_cost: base,
        max_delta_cost: max,
        max_rel_diff_pct: (max - base) / base * 100.0,
        examined,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::ParametricModel;
    use crate::strategy::SingleResubmission;
    use gridstrat_stats::{LogNormal, Shifted};

    fn model() -> ParametricModel<Shifted<LogNormal>> {
        let body = Shifted::new(LogNormal::from_mean_std(360.0, 880.0).unwrap(), 150.0).unwrap();
        ParametricModel::new(body, 0.05, 1e4).unwrap()
    }

    #[test]
    fn perturbation_cannot_beat_max_and_includes_base() {
        let m = model();
        let single = SingleResubmission::optimize(&m);
        let rep = stability_radius(&m, 420.0, 520.0, 5, single.expectation);
        assert!(rep.max_delta_cost >= rep.base_delta_cost);
        assert!(rep.max_rel_diff_pct >= 0.0);
        // full box minus infeasible corner combinations
        assert!(rep.examined > 0 && rep.examined <= 121);
    }

    #[test]
    fn optimum_neighbourhood_is_stable_like_the_paper() {
        // near the ∆cost optimum, ±5 s moves ∆cost by a few percent at most
        let m = model();
        let single = SingleResubmission::optimize(&m);
        let best = crate::cost::optimize_delayed_delta_cost(&m);
        if let crate::cost::StrategyParams::Delayed { t0, t_inf } = best.params {
            let rep = stability_radius(&m, t0, t_inf, 5, single.expectation);
            assert!(
                rep.max_rel_diff_pct < 15.0,
                "unstable optimum: {}%",
                rep.max_rel_diff_pct
            );
        } else {
            panic!("wrong variant");
        }
    }

    #[test]
    fn radius_zero_is_just_the_base() {
        let m = model();
        let single = SingleResubmission::optimize(&m);
        let rep = stability_radius(&m, 400.0, 500.0, 0, single.expectation);
        assert_eq!(rep.examined, 1);
        assert_eq!(rep.base_delta_cost, rep.max_delta_cost);
        assert_eq!(rep.max_rel_diff_pct, 0.0);
    }

    #[test]
    #[should_panic(expected = "feasible")]
    fn rejects_infeasible_centre() {
        let m = model();
        stability_radius(&m, 100.0, 500.0, 5, 400.0);
    }
}
