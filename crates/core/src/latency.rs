//! Defective latency models: the `F̃_R` abstraction the strategy equations
//! are written against.
//!
//! Two implementations are provided:
//!
//! * [`EmpiricalModel`] — wraps a censored trace's ECDF; every integral the
//!   strategies need is evaluated exactly (step-function algebra);
//! * [`ParametricModel`] — a fitted body distribution plus outlier mass,
//!   with adaptive-Simpson quadrature for the same integrals. Useful for
//!   smoothing rough traces and for closed-form cross-checks.

use gridstrat_stats::integrate::{adaptive_simpson, adaptive_simpson_with_moment};
use gridstrat_stats::{Distribution, Ecdf};
use gridstrat_workload::TraceSet;

/// Quadrature tolerance for parametric integrals (absolute, in seconds of
/// expectation — far below trace sampling noise).
const QUAD_TOL: f64 = 1e-6;

/// A defective latency model `F̃(t) = (1-ρ)·F_R(t)` with the integral
/// queries required by the strategy equations (paper eqs. 1–5).
pub trait LatencyModel {
    /// `F̃(t) = P(R ≤ t)` over all submissions (saturates at `1-ρ`).
    fn defective_cdf(&self, t: f64) -> f64;

    /// `A(t) = ∫₀ᵗ (1 - F̃(u)) du`.
    fn survival_integral(&self, t: f64) -> f64;

    /// `B(t) = ∫₀ᵗ u·(1 - F̃(u)) du`.
    fn moment_survival_integral(&self, t: f64) -> f64;

    /// `(∫₀ᴸ s(u+shift)s(u) du, ∫₀ᴸ u·s(u+shift)s(u) du)` with
    /// `s = 1 - F̃` — the delayed-resubmission kernels.
    fn survival_product_integrals(&self, shift: f64, l: f64) -> (f64, f64);

    /// `(∫₀ᵗ s(u)ᵇ du, ∫₀ᵗ u·s(u)ᵇ du)` — the multiple-submission kernels.
    fn powered_survival_integrals(&self, b: u32, t: f64) -> (f64, f64);

    /// `(∫₀ᴸ [s(u+shift)s(u)]ᵇ du, ∫₀ᴸ u·[s(u+shift)s(u)]ᵇ du)` — the
    /// kernels of the *generalized* delayed strategy that submits `b`
    /// copies per echelon (an extension beyond the paper; `b = 1` recovers
    /// [`LatencyModel::survival_product_integrals`]).
    fn powered_survival_product_integrals(&self, b: u32, shift: f64, l: f64) -> (f64, f64);

    /// Censoring threshold: timeouts beyond it are meaningless.
    fn horizon(&self) -> f64;

    /// Outlier (fault) ratio `ρ`.
    fn outlier_ratio(&self) -> f64;

    /// Candidate timeout values for exact/near-exact 1-D optimization.
    /// For an empirical model these are the distinct sample values (where
    /// the optimum provably lies); for parametric models, a dense quantile
    /// grid.
    fn candidate_timeouts(&self) -> Vec<f64>;

    /// A plausible `(lo, hi)` range bracketing useful timeout values, used
    /// to seed 2-D searches.
    fn plausible_range(&self) -> (f64, f64);

    /// Mean of the non-outlier latency body (reporting convenience).
    fn body_mean(&self) -> f64;
}

/// Exact model built on a censored empirical CDF.
#[derive(Debug, Clone)]
pub struct EmpiricalModel {
    ecdf: Ecdf,
}

impl EmpiricalModel {
    /// Builds from a raw latency sample (values ≥ `threshold` are outliers).
    pub fn from_samples(
        samples: &[f64],
        threshold: f64,
    ) -> Result<Self, gridstrat_stats::ecdf::EcdfError> {
        Ok(EmpiricalModel {
            ecdf: Ecdf::from_samples(samples, threshold)?,
        })
    }

    /// Builds from a probe trace.
    pub fn from_trace(trace: &TraceSet) -> Result<Self, gridstrat_stats::ecdf::EcdfError> {
        Ok(EmpiricalModel {
            ecdf: trace.ecdf()?,
        })
    }

    /// Wraps an already-built ECDF.
    pub fn from_ecdf(ecdf: Ecdf) -> Self {
        EmpiricalModel { ecdf }
    }

    /// The underlying ECDF.
    pub fn ecdf(&self) -> &Ecdf {
        &self.ecdf
    }
}

impl LatencyModel for EmpiricalModel {
    fn defective_cdf(&self, t: f64) -> f64 {
        self.ecdf.value(t)
    }

    fn survival_integral(&self, t: f64) -> f64 {
        self.ecdf.survival_integral(t)
    }

    fn moment_survival_integral(&self, t: f64) -> f64 {
        self.ecdf.moment_survival_integral(t)
    }

    fn survival_product_integrals(&self, shift: f64, l: f64) -> (f64, f64) {
        self.ecdf.survival_product_integrals(shift, l)
    }

    fn powered_survival_integrals(&self, b: u32, t: f64) -> (f64, f64) {
        // O(log n) off the ECDF's cached per-power prefix tables — the
        // timeout-tuning loop queries this once per candidate, so the old
        // per-query body scan made tuning O(n·k)
        self.ecdf.powered_survival_integrals(b, t)
    }

    fn powered_survival_product_integrals(&self, b: u32, shift: f64, l: f64) -> (f64, f64) {
        // allocation-free two-pointer merge over the sample array
        self.ecdf.powered_survival_product_integrals(b, shift, l)
    }

    fn horizon(&self) -> f64 {
        self.ecdf.threshold()
    }

    fn outlier_ratio(&self) -> f64 {
        self.ecdf.outlier_ratio()
    }

    fn candidate_timeouts(&self) -> Vec<f64> {
        let mut out: Vec<f64> = self.ecdf.body().to_vec();
        out.dedup();
        out
    }

    fn plausible_range(&self) -> (f64, f64) {
        // bracket between the 1st and 99.5th body percentile — timeouts
        // outside never help (F̃ ≈ 0 below, pure waste above)
        let lo = self.ecdf.body_quantile(0.01).max(1.0);
        let hi = self.ecdf.body_quantile(0.995).min(self.horizon());
        (lo, hi.max(lo + 1.0))
    }

    fn body_mean(&self) -> f64 {
        self.ecdf.body_mean()
    }
}

/// Parametric model: a continuous body distribution plus outlier mass `ρ`.
#[derive(Debug, Clone)]
pub struct ParametricModel<D> {
    body: D,
    rho: f64,
    horizon: f64,
}

impl<D: Distribution> ParametricModel<D> {
    /// Creates the model; `rho ∈ [0, 1)`, `horizon > 0`.
    pub fn new(body: D, rho: f64, horizon: f64) -> Result<Self, String> {
        if !(rho.is_finite() && (0.0..1.0).contains(&rho)) {
            return Err(format!("rho must be in [0,1), got {rho}"));
        }
        if !(horizon.is_finite() && horizon > 0.0) {
            return Err(format!("horizon must be positive, got {horizon}"));
        }
        Ok(ParametricModel { body, rho, horizon })
    }

    /// The body distribution.
    pub fn body(&self) -> &D {
        &self.body
    }

    fn survival(&self, t: f64) -> f64 {
        1.0 - self.defective_cdf(t)
    }
}

impl<D: Distribution> LatencyModel for ParametricModel<D> {
    fn defective_cdf(&self, t: f64) -> f64 {
        if t <= 0.0 {
            0.0
        } else {
            (1.0 - self.rho) * self.body.cdf(t)
        }
    }

    fn survival_integral(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return 0.0;
        }
        adaptive_simpson(|u| self.survival(u), 0.0, t, QUAD_TOL)
    }

    fn moment_survival_integral(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return 0.0;
        }
        adaptive_simpson(|u| u * self.survival(u), 0.0, t, QUAD_TOL)
    }

    fn survival_product_integrals(&self, shift: f64, l: f64) -> (f64, f64) {
        if l <= 0.0 {
            return (0.0, 0.0);
        }
        // one fused pass: the body-CDF evaluations dominate, and the
        // integral and its moment share every abscissa
        adaptive_simpson_with_moment(
            |u| self.survival(u + shift) * self.survival(u),
            0.0,
            l,
            QUAD_TOL,
        )
    }

    fn powered_survival_integrals(&self, b: u32, t: f64) -> (f64, f64) {
        if t <= 0.0 {
            return (0.0, 0.0);
        }
        let b = b as i32;
        adaptive_simpson_with_moment(|u| self.survival(u).powi(b), 0.0, t, QUAD_TOL)
    }

    fn powered_survival_product_integrals(&self, b: u32, shift: f64, l: f64) -> (f64, f64) {
        if l <= 0.0 {
            return (0.0, 0.0);
        }
        let b = b as i32;
        adaptive_simpson_with_moment(
            |u| (self.survival(u + shift) * self.survival(u)).powi(b),
            0.0,
            l,
            QUAD_TOL,
        )
    }

    fn horizon(&self) -> f64 {
        self.horizon
    }

    fn outlier_ratio(&self) -> f64 {
        self.rho
    }

    fn candidate_timeouts(&self) -> Vec<f64> {
        // dense quantile grid of the body, clamped to the horizon
        const N: usize = 1024;
        let mut out = Vec::with_capacity(N);
        for i in 1..=N {
            let p = i as f64 / (N as f64 + 1.0);
            let q = self.body.quantile(p);
            if q > 0.0 && q < self.horizon {
                out.push(q);
            }
        }
        out.dedup();
        out
    }

    fn plausible_range(&self) -> (f64, f64) {
        let lo = self.body.quantile(0.01).max(1.0);
        let hi = self.body.quantile(0.995).min(self.horizon);
        (lo, hi.max(lo + 1.0))
    }

    fn body_mean(&self) -> f64 {
        self.body.mean().unwrap_or(f64::NAN)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridstrat_stats::{Exponential, LogNormal};

    fn empirical() -> EmpiricalModel {
        // body 100,200,300,400 + 1 outlier; n = 5
        EmpiricalModel::from_samples(&[100.0, 200.0, 300.0, 400.0, 20_000.0], 10_000.0).unwrap()
    }

    #[test]
    fn empirical_basics() {
        let m = empirical();
        assert!((m.outlier_ratio() - 0.2).abs() < 1e-12);
        assert_eq!(m.horizon(), 10_000.0);
        assert!((m.defective_cdf(250.0) - 0.4).abs() < 1e-12);
        assert!((m.body_mean() - 250.0).abs() < 1e-12);
    }

    #[test]
    fn powered_integrals_match_plain_at_b1() {
        let m = empirical();
        for t in [50.0, 150.0, 350.0, 500.0, 9_000.0] {
            let (a1, b1) = m.powered_survival_integrals(1, t);
            assert!((a1 - m.survival_integral(t)).abs() < 1e-9, "A at {t}");
            assert!(
                (b1 - m.moment_survival_integral(t)).abs() < 1e-9,
                "B at {t}"
            );
        }
    }

    #[test]
    fn powered_integrals_hand_computed() {
        let m = empirical();
        // survival: 1 on [0,100), .8 on [100,200), .6, .4, then .2
        // b=2: ∫₀²⁵⁰ s² = 100 + .64*100 + .36*50 = 182
        let (a2, _) = m.powered_survival_integrals(2, 250.0);
        assert!((a2 - 182.0).abs() < 1e-9, "got {a2}");
    }

    #[test]
    fn powered_decreasing_in_b() {
        let m = empirical();
        let t = 350.0;
        let mut prev = f64::INFINITY;
        for b in 1..=10 {
            let (a, _) = m.powered_survival_integrals(b, t);
            assert!(a < prev);
            prev = a;
        }
    }

    #[test]
    fn candidates_are_distinct_samples() {
        let m = EmpiricalModel::from_samples(&[5.0, 5.0, 7.0, 9.0, 9.0], 100.0).unwrap();
        assert_eq!(m.candidate_timeouts(), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn parametric_matches_exponential_closed_form() {
        // For Exponential(λ), no outliers: A(t) = (1 - e^{-λt})/λ
        let lambda = 0.002;
        let m = ParametricModel::new(Exponential::new(lambda).unwrap(), 0.0, 1e4).unwrap();
        for t in [100.0, 500.0, 2_000.0] {
            let want = (1.0 - (-lambda * t).exp()) / lambda;
            assert!(
                (m.survival_integral(t) - want).abs() < 1e-4,
                "A({t}) = {} want {want}",
                m.survival_integral(t)
            );
        }
    }

    #[test]
    fn parametric_with_outliers_scales_survival() {
        let rho = 0.25;
        let m = ParametricModel::new(Exponential::new(0.01).unwrap(), rho, 1e4).unwrap();
        // as t → ∞ the defective cdf saturates at 1 - ρ
        assert!((m.defective_cdf(5_000.0) - 0.75).abs() < 1e-6);
        // A(t) ≥ ρ·t always (survival ≥ ρ)
        assert!(m.survival_integral(2_000.0) >= rho * 2_000.0);
    }

    #[test]
    fn parametric_product_integral_vs_empirical_on_same_law() {
        // large empirical sample from a lognormal should give product
        // integrals close to the parametric quadrature
        use gridstrat_stats::rng::derived_rng;
        let body = LogNormal::new(5.5, 0.9).unwrap();
        let mut rng = derived_rng(77, 0);
        let xs = body.sample_n(&mut rng, 60_000);
        let emp = EmpiricalModel::from_samples(&xs, 1e5).unwrap();
        let par = ParametricModel::new(body, 0.0, 1e5).unwrap();
        let (ce, de) = emp.survival_product_integrals(200.0, 400.0);
        let (cp, dp) = par.survival_product_integrals(200.0, 400.0);
        assert!((ce - cp).abs() / cp < 0.02, "C: emp {ce} par {cp}");
        assert!((de - dp).abs() / dp < 0.02, "D: emp {de} par {dp}");
    }

    #[test]
    fn parametric_rejects_bad_params() {
        let e = Exponential::new(1.0).unwrap();
        assert!(ParametricModel::new(e, 1.0, 100.0).is_err());
        assert!(ParametricModel::new(e, 0.5, 0.0).is_err());
    }

    #[test]
    fn plausible_range_is_ordered_and_within_horizon() {
        let m = empirical();
        let (lo, hi) = m.plausible_range();
        assert!(lo > 0.0 && lo < hi && hi <= m.horizon());
    }
}
