//! Fixed-width table and CSV rendering for the reproduction harness.
//!
//! The `repro` binary prints paper-style tables to stdout and writes the
//! same data as CSV under `results/`; this module holds the shared
//! formatting machinery so every experiment renders consistently.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A simple titled table with homogeneous string cells.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; its length must match the header count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} does not match header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Renders as CSV (headers + rows; title as a `#` comment line).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Writes the CSV rendering to `path`, creating parent directories.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_csv())
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // column widths
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);

        writeln!(f, "{}", self.title)?;
        writeln!(f, "{}", "=".repeat(total.max(self.title.len())))?;
        for (i, h) in self.headers.iter().enumerate() {
            if i > 0 {
                write!(f, "  ")?;
            }
            write!(f, "{:>width$}", h, width = widths[i])?;
        }
        writeln!(f)?;
        writeln!(f, "{}", "-".repeat(total.max(self.title.len())))?;
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{:>width$}", c, width = widths[i])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Formats seconds with no decimals (paper tables print whole seconds).
pub fn secs0(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.0}s")
    } else {
        "∞".to_string()
    }
}

/// Formats a ratio as a signed percentage with no decimals.
pub fn pct0(x: f64) -> String {
    format!("{:+.0}%", x * 100.0)
}

/// Formats a ratio as a signed percentage with one decimal.
pub fn pct1(x: f64) -> String {
    format!("{:+.1}%", x * 100.0)
}

/// Formats a plain float with the given number of decimals.
pub fn fixed(x: f64, decimals: usize) -> String {
    if x.is_finite() {
        format!("{x:.decimals$}")
    } else {
        "∞".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Demo", &["week", "EJ", "σJ"]);
        t.push_row(vec!["2006-IX".into(), "471s".into(), "331s".into()]);
        t.push_row(vec!["2008-03".into(), "419s".into(), "269s".into()]);
        let s = t.to_string();
        assert!(s.contains("Demo"));
        assert!(s.contains("2006-IX"));
        // headers padded to equal width per column
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines.len() >= 5);
        assert_eq!(t.n_rows(), 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_roundtrips_cells() {
        let mut t = Table::new("T", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        let csv = t.to_csv();
        assert!(csv.starts_with("# T\n"));
        assert!(csv.contains("a,b\n"));
        assert!(csv.contains("1,2\n"));
    }

    #[test]
    fn write_csv_creates_dirs() {
        // unique per-process, per-call directory: concurrent test runs
        // (parallel `cargo test` invocations of different targets) must not
        // collide on a shared temp path
        static UNIQUE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "gridstrat_report_test_{}_{}",
            std::process::id(),
            UNIQUE.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut t = Table::new("T", &["a"]);
        t.push_row(vec!["x".into()]);
        let path = dir.join("nested/out.csv");
        t.write_csv(&path).unwrap();
        assert!(path.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn formatters() {
        assert_eq!(secs0(470.6), "471s");
        assert_eq!(secs0(f64::INFINITY), "∞");
        assert_eq!(pct0(-0.33), "-33%");
        assert_eq!(pct1(0.071), "+7.1%");
        assert_eq!(fixed(1.234, 2), "1.23");
    }
}
