//! # gridstrat-core
//!
//! The primary contribution of *Modeling User Submission Strategies on
//! Production Grids* (Lingrand, Montagnat, Glatard — HPDC 2009), implemented
//! as a library.
//!
//! Grid latency `R` (submission → execution start) is modelled by a
//! *defective* CDF `F̃(t) = (1-ρ)·F_R(t)` where `ρ` is the outlier (fault)
//! ratio. On top of a [`latency::LatencyModel`] the crate provides:
//!
//! * [`strategy::Strategy`] — the trait unifying every strategy's analytic
//!   side (`expected_j`/`std_j`/`n_parallel` over a latency model) with its
//!   executable side (the simulator controller realising the protocol);
//! * [`strategy::SingleResubmission`] — cancel at `t∞` and resubmit
//!   (paper §4, eqs. 1–2);
//! * [`strategy::MultipleSubmission`] — submit `b` copies, cancel the rest
//!   on first start, resubmit the collection at `t∞` (§5, eqs. 3–4);
//! * [`strategy::DelayedResubmission`] — submit a copy at `t0` without
//!   cancelling before `t∞` (§6, eq. 5 and the `N_//` analysis of §6.1);
//! * [`cost`] — the `∆cost` criterion of §7 (eq. 6) comparing user benefit
//!   against infrastructure load;
//! * [`stability`] — the ±5 s sensitivity analysis of Table 5;
//! * [`transfer`] — the week-to-week parameter-transfer protocol of
//!   Table 6 (§7.2, “practical implementation”);
//! * [`executor`] — Monte-Carlo execution of each strategy against the
//!   [`gridstrat_sim`] discrete-event grid, validating every closed form,
//!   plus the batched [`executor::ScenarioSweep`] evaluating a
//!   (strategy × week × grid-scenario) grid in one thread-count-independent
//!   rayon pass;
//! * [`adaptive`] — online-adapting strategies on *nonstationary* live
//!   grids: the back-to-back task-sequence harness, the
//!   [`adaptive::AdaptiveStrategy`] wrapper re-tuning timeouts from its
//!   own observations, regret accounting against the instantaneous
//!   oracle optimum, and the (amplitude × retune-period)
//!   [`adaptive::AdaptiveSweep`];
//! * [`report`] — fixed-width table / CSV rendering for the reproduction
//!   harness.
//!
//! ## Exactness
//!
//! With an [`latency::EmpiricalModel`] every integral in eqs. 1–5 is an
//! integral of a step function and is evaluated **exactly** (prefix sums and
//! piecewise products — no quadrature). Moreover, because `E_J(t∞)` is
//! increasing-linear-over-constant between sample points, its minimum over
//! `t∞` is attained at a sample value, so the single- and multiple-strategy
//! optimizations are exact too.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod adaptive;
pub mod application;
pub mod cost;
pub mod executor;
pub mod latency;
pub mod report;
pub mod stability;
pub mod strategy;
pub mod transfer;

pub use adaptive::{
    run_adaptive_sequence, run_fixed_sequence, AdaptiveCellOutcome, AdaptiveConfig,
    AdaptiveStrategy, AdaptiveSweep, RegretFrontier, RetunePolicy, SequenceOutcome,
    SequenceSummary, TaskRecord,
};
pub use cost::{cost_point, delta_cost, CostPoint, StrategyParams};
pub use executor::{
    GridScenario, MonteCarloConfig, MonteCarloEstimate, ScenarioOutcome, ScenarioSweep,
    StrategyController, StrategyExecutor,
};
pub use latency::{EmpiricalModel, LatencyModel, ParametricModel};
pub use strategy::{
    DelayedOutcome, DelayedResubmission, MultipleSubmission, SingleResubmission, Strategy,
    Timeout1d,
};
