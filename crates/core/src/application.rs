//! Application-level (batch) analysis: from per-job latency `J` to the
//! makespan of a many-task application.
//!
//! The paper's motivation is applications that fan out hundreds or
//! thousands of independent jobs (§1, §3.3: “it makes perfect sense when
//! considering applications involving a large number of jobs”), and its
//! future work asks for the strategies' impact on application *makespan*.
//! This module provides that step: a fast sampler of the total-latency law
//! `J` under each strategy (directly from the empirical trace law — no
//! event queue needed, so millions of draws per second) and batch-level
//! statistics derived from it.
//!
//! For a batch of `n` independent tasks launched together, the latency
//! part of the makespan is `max(J_1 … J_n)` — driven entirely by the tail
//! of `J`, which is exactly what the strategies reshape: multiple
//! submission collapses the tail (σ_J: 331 s → 40 s in the paper's
//! Table 2), so its makespan advantage is far larger than its mean-latency
//! advantage.

use crate::cost::StrategyParams;
use gridstrat_stats::rng::derived_rng;
use gridstrat_stats::{Ecdf, Summary};
use rand::Rng;
use rayon::prelude::*;

/// Draws realisations of the total latency `J` for one strategy, by
/// resampling an empirical censored latency law.
///
/// The sampler implements each protocol literally on i.i.d. resampled
/// latencies: geometric resubmission rounds for single/multiple, the
/// min-over-shifted-copies law for delayed.
#[derive(Debug, Clone)]
pub struct JSampler {
    /// Censored latencies (outliers as threshold values).
    latencies: Vec<f64>,
    threshold: f64,
    spec: StrategyParams,
}

impl JSampler {
    /// Builds a sampler from the empirical law and a strategy.
    pub fn new(ecdf: &Ecdf, spec: StrategyParams) -> Self {
        // reconstruct the full submission population: body values plus one
        // threshold entry per censored job
        let mut latencies = ecdf.body().to_vec();
        latencies.extend(std::iter::repeat_n(
            ecdf.threshold(),
            ecdf.n_total() - ecdf.n_body(),
        ));
        match spec {
            StrategyParams::Delayed { t0, t_inf }
            | StrategyParams::DelayedMultiple { t0, t_inf, .. } => {
                assert!(
                    crate::strategy::DelayedResubmission::feasible(t0, t_inf),
                    "delayed sampler requires a feasible pair"
                );
            }
            _ => {}
        }
        JSampler {
            latencies,
            threshold: ecdf.threshold(),
            spec,
        }
    }

    fn draw_latency<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.latencies[rng.gen_range(0..self.latencies.len())]
    }

    /// Draws one realisation of `J`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match self.spec {
            StrategyParams::Single { t_inf } => self.sample_rounds(rng, 1, t_inf),
            StrategyParams::Multiple { b, t_inf } => self.sample_rounds(rng, b, t_inf),
            StrategyParams::Delayed { t0, t_inf } => self.sample_delayed(rng, 1, t0, t_inf),
            StrategyParams::DelayedMultiple { b, t0, t_inf } => {
                self.sample_delayed(rng, b, t0, t_inf)
            }
        }
    }

    fn sample_rounds<R: Rng + ?Sized>(&self, rng: &mut R, b: u32, t_inf: f64) -> f64 {
        let t_inf = t_inf.min(self.threshold);
        let mut total = 0.0;
        loop {
            let mut min_lat = f64::INFINITY;
            for _ in 0..b {
                min_lat = min_lat.min(self.draw_latency(rng));
            }
            if min_lat < t_inf {
                return total + min_lat;
            }
            total += t_inf;
            // guard against a law with no mass below t_inf
            assert!(
                total < 1e12,
                "strategy cannot complete: no latency mass below the timeout"
            );
        }
    }

    fn sample_delayed<R: Rng + ?Sized>(&self, rng: &mut R, b: u32, t0: f64, t_inf: f64) -> f64 {
        // J = min over echelons n of { n·t0 + min of b copies | copy < t∞ },
        // stopping once no later submission can improve the incumbent
        let mut best = f64::INFINITY;
        let mut n = 0u64;
        loop {
            let submit = n as f64 * t0;
            if submit >= best {
                return best;
            }
            for _ in 0..b {
                let lat = self.draw_latency(rng);
                if lat < t_inf {
                    best = best.min(submit + lat);
                }
            }
            n += 1;
            assert!(
                n < 1_000_000,
                "strategy cannot complete: no latency mass below the timeout"
            );
        }
    }
}

/// Batch-level statistics of an `n`-task application under one strategy.
#[derive(Debug, Clone, Copy)]
pub struct BatchOutcome {
    /// Tasks per batch.
    pub tasks: usize,
    /// Mean per-task total latency (seconds).
    pub mean_latency: f64,
    /// Mean batch makespan: `E[max(J_1…J_n)]` (seconds).
    pub mean_makespan: f64,
    /// 95th-percentile batch makespan across replications (seconds).
    pub p95_makespan: f64,
}

/// Estimates batch statistics by Monte-Carlo: `replications` independent
/// batches of `tasks` draws each (parallelised, deterministic in `seed`).
pub fn batch_outcome(
    sampler: &JSampler,
    tasks: usize,
    replications: usize,
    seed: u64,
) -> BatchOutcome {
    assert!(tasks > 0 && replications > 0);
    let per_batch: Vec<(f64, f64)> = (0..replications)
        .into_par_iter()
        .map(|rep| {
            let mut rng = derived_rng(seed, rep as u64);
            let mut sum = 0.0;
            let mut max = 0.0f64;
            for _ in 0..tasks {
                let j = sampler.sample(&mut rng);
                sum += j;
                max = max.max(j);
            }
            (sum / tasks as f64, max)
        })
        .collect();
    let mut means = Summary::new();
    let mut maxes: Vec<f64> = Vec::with_capacity(replications);
    for &(m, mx) in &per_batch {
        means.push(m);
        maxes.push(mx);
    }
    maxes.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite makespans"));
    let p95 = maxes[((0.95 * replications as f64) as usize).min(replications - 1)];
    BatchOutcome {
        tasks,
        mean_latency: means.mean(),
        mean_makespan: maxes.iter().sum::<f64>() / replications as f64,
        p95_makespan: p95,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::EmpiricalModel;
    use crate::strategy::{MultipleSubmission, SingleResubmission};
    use gridstrat_workload::WeekModel;

    fn trace_ecdf() -> Ecdf {
        let w = WeekModel::calibrate("app", 500.0, 650.0, 0.12, 150.0, 10_000.0).unwrap();
        w.generate(4_000, 77).ecdf().unwrap()
    }

    #[test]
    fn sampler_mean_matches_analytic_expectation() {
        let e = trace_ecdf();
        let model = EmpiricalModel::from_samples(
            &e.body()
                .iter()
                .copied()
                .chain(std::iter::repeat_n(10_000.0, e.n_total() - e.n_body()))
                .collect::<Vec<_>>(),
            10_000.0,
        )
        .unwrap();
        for (spec, analytic) in [
            (
                StrategyParams::Single { t_inf: 700.0 },
                SingleResubmission::expectation(&model, 700.0),
            ),
            (
                StrategyParams::Multiple { b: 3, t_inf: 800.0 },
                MultipleSubmission::expectation(&model, 3, 800.0),
            ),
            (
                StrategyParams::Delayed {
                    t0: 400.0,
                    t_inf: 560.0,
                },
                crate::strategy::DelayedResubmission::expectation(&model, 400.0, 560.0),
            ),
        ] {
            let sampler = JSampler::new(&e, spec);
            let mut rng = derived_rng(1, 0);
            let n = 60_000;
            let mean: f64 = (0..n).map(|_| sampler.sample(&mut rng)).sum::<f64>() / n as f64;
            assert!(
                (mean - analytic).abs() / analytic < 0.02,
                "{spec:?}: sampler {mean} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn makespan_grows_with_batch_size() {
        let e = trace_ecdf();
        let sampler = JSampler::new(&e, StrategyParams::Single { t_inf: 700.0 });
        let small = batch_outcome(&sampler, 10, 300, 2);
        let large = batch_outcome(&sampler, 1_000, 300, 2);
        assert!(large.mean_makespan > small.mean_makespan);
        // mean per-task latency is batch-size independent
        assert!((large.mean_latency - small.mean_latency).abs() / small.mean_latency < 0.1);
        assert!(large.p95_makespan >= large.mean_makespan);
    }

    #[test]
    fn multiple_submission_crushes_the_makespan_tail() {
        // the strategy's variance reduction matters MORE at batch level:
        // the b=5 makespan must beat single's by a larger factor than the
        // mean-latency improvement
        let e = trace_ecdf();
        let model = EmpiricalModel::from_ecdf(e.clone());
        let single_t = SingleResubmission::optimize(&model).timeout;
        let multi_t = MultipleSubmission::optimize(&model, 5).timeout;
        let s1 = JSampler::new(&e, StrategyParams::Single { t_inf: single_t });
        let s5 = JSampler::new(
            &e,
            StrategyParams::Multiple {
                b: 5,
                t_inf: multi_t,
            },
        );
        let b1 = batch_outcome(&s1, 500, 200, 3);
        let b5 = batch_outcome(&s5, 500, 200, 3);
        let mean_gain = b1.mean_latency / b5.mean_latency;
        let makespan_gain = b1.mean_makespan / b5.mean_makespan;
        assert!(
            makespan_gain > mean_gain,
            "makespan gain {makespan_gain} should exceed mean gain {mean_gain}"
        );
        assert!(makespan_gain > 2.0);
    }

    #[test]
    fn deterministic_in_seed() {
        let e = trace_ecdf();
        let sampler = JSampler::new(
            &e,
            StrategyParams::Delayed {
                t0: 300.0,
                t_inf: 450.0,
            },
        );
        let a = batch_outcome(&sampler, 50, 100, 9);
        let b = batch_outcome(&sampler, 50, 100, 9);
        assert_eq!(a.mean_makespan.to_bits(), b.mean_makespan.to_bits());
    }

    #[test]
    #[should_panic(expected = "feasible pair")]
    fn rejects_infeasible_delayed() {
        let e = trace_ecdf();
        JSampler::new(
            &e,
            StrategyParams::Delayed {
                t0: 100.0,
                t_inf: 500.0,
            },
        );
    }
}
