//! Online-adapting strategies on nonstationary live grids, with regret
//! accounting.
//!
//! The paper tunes each strategy's timeout *offline* against a known,
//! stationary weekly law, while stressing (§1) that production workloads
//! are "high and non-stationary". This module measures exactly what that
//! mismatch costs and how much online adaptation claws back:
//!
//! * [`run_fixed_sequence`] / [`run_adaptive_sequence`] — a **task
//!   sequence harness**: one engine runs many tasks back to back, so the
//!   simulation clock sweeps across the grid's
//!   [`Modulation`](gridstrat_sim::Modulation) (diurnal cycles, regime
//!   shifts) and each task experiences the instantaneous law of its launch
//!   time. Tasks are isolated through the engine's client-scope hooks
//!   (owner-tagged jobs, namespaced timers), so a stale echo of a finished
//!   task can never corrupt the next task's protocol state.
//! * [`AdaptiveStrategy`] — wraps any [`Strategy`]: between tasks it feeds
//!   its *own* per-job observations (exact latencies of started jobs,
//!   right-censored waits of abandoned ones) into a
//!   [`StreamingEcdf`](gridstrat_stats::StreamingEcdf) and re-tunes the
//!   wrapped strategy's free parameters every `retune_every` tasks,
//!   according to a [`RetunePolicy`].
//! * [`RegretFrontier`] — the per-instant omniscient benchmark: at each
//!   task's launch time the frozen modulated law is known analytically, so
//!   the optimum `E*_J` an oracle-tuned strategy of the same family would
//!   achieve *at that instant* is computable. Per-task regret is
//!   `J_i − E*_J(τ_i)`; its mean separates "the grid drifted" (which hits
//!   everyone) from "my timeout was stale" (which adaptation removes).
//! * [`AdaptiveSweep`] — a (modulation amplitude × retune period) grid
//!   comparing tuned-once against online-retuned strategies in one
//!   parallel pass, bit-identical for any thread count.
//!
//! Everything here is deterministic: the engine is single-threaded, the
//! estimator and retuning consume no randomness, and sweep cells derive
//! their seeds from `(master, cell)`.

use crate::cost::StrategyParams;
use crate::latency::{LatencyModel, ParametricModel};
use crate::strategy::Strategy;
use gridstrat_sim::{Controller, GridConfig, GridSimulation, Modulation, Notification};
use gridstrat_stats::rng::derive_seed;
use gridstrat_stats::StreamingEcdf;
use gridstrat_workload::{DiurnalModel, WeekModel};
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// How an [`AdaptiveStrategy`] turns its observation stream into new
/// parameters at a retune point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RetunePolicy {
    /// Purely empirical: re-tune on the window's censoring-aware ECDF
    /// snapshot. Because a user can never observe latencies beyond its own
    /// timeout, the snapshot alone can only *shrink* timeouts; when the
    /// exponentially-decayed censored fraction exceeds
    /// `max_censored_fraction` the policy instead **grows** every timeout
    /// by `growth` (multiplicative backoff) — the probe that lets it
    /// recover when the grid slows past the current timeout.
    EmpiricalBackoff {
        /// Decayed censored fraction above which the policy backs off
        /// (grows timeouts) instead of tuning on the snapshot.
        max_censored_fraction: f64,
        /// Multiplicative timeout growth applied when backing off (> 1).
        growth: f64,
    },
    /// Scale-tracking against the offline prior: estimate the current
    /// load-intensity factor `θ̂` by matching the exponentially-decayed
    /// mean of the user's *own task completions* to the analytic
    /// `E_J(params; prior scaled by θ)` — monotone in `θ` and free of the
    /// censoring truncation, since a completed task's latency is always
    /// fully observed — then re-tune on the prior scaled by `θ̂` (queue
    /// wait and fault ratio both, mirroring how the grid modulations
    /// couple them). Upward- and downward-capable, because the prior
    /// supplies the unobservable tail shape. Requires the prior law, so it
    /// is only active inside [`run_adaptive_sequence`]; elsewhere (e.g.
    /// fleet agents on an emergent pipeline law) it degrades to the
    /// empirical-snapshot retune.
    ScaledPrior,
}

/// Configuration of the online-adaptation loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Re-tune after every this many completed tasks.
    pub retune_every: usize,
    /// Observation-window capacity of the streaming estimator.
    pub window: usize,
    /// Exponential decay factor of the estimator's scalar summaries.
    pub decay: f64,
    /// Minimum started-job observations in the window before any retune
    /// touches the parameters.
    pub min_body: usize,
    /// The retuning policy.
    pub policy: RetunePolicy,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        // tracking a diurnal cycle of ~150 tasks needs a short memory:
        // decay 0.9 weights roughly the last 10 observations, so the
        // intensity estimate lags the cycle by only a few percent of a
        // period — a window spanning a large fraction of the period would
        // average the drift away and adapt to nothing
        AdaptiveConfig {
            retune_every: 5,
            window: 150,
            decay: 0.9,
            min_body: 10,
            policy: RetunePolicy::ScaledPrior,
        }
    }
}

impl AdaptiveConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.retune_every == 0 {
            return Err("retune_every must be at least 1".into());
        }
        if self.window == 0 {
            return Err("window must hold at least one observation".into());
        }
        if !(self.decay.is_finite() && self.decay > 0.0 && self.decay <= 1.0) {
            return Err(format!("decay must be in (0, 1], got {}", self.decay));
        }
        if let RetunePolicy::EmpiricalBackoff {
            max_censored_fraction,
            growth,
        } = self.policy
        {
            if !(max_censored_fraction.is_finite() && (0.0..1.0).contains(&max_censored_fraction)) {
                return Err(format!(
                    "max_censored_fraction must be in [0, 1), got {max_censored_fraction}"
                ));
            }
            if !(growth.is_finite() && growth > 1.0) {
                return Err(format!("backoff growth must exceed 1, got {growth}"));
            }
        }
        Ok(())
    }
}

/// An online-adapting wrapper around any [`Strategy`]: starts from the
/// wrapped instance's (offline-tuned) parameters and re-tunes them from
/// its own observations as it runs — see [`run_adaptive_sequence`].
#[derive(Debug, Clone)]
pub struct AdaptiveStrategy<S: Strategy + Clone> {
    /// The initial (typically offline-tuned) strategy instance. Structural
    /// parameters (collection size `b`, copies per echelon) stay fixed;
    /// only timeouts are re-tuned, exactly like [`Strategy::tune`].
    pub initial: S,
    /// The adaptation loop configuration.
    pub config: AdaptiveConfig,
}

impl<S: Strategy + Clone> AdaptiveStrategy<S> {
    /// Wraps a strategy instance; panics on an invalid configuration.
    pub fn new(initial: S, config: AdaptiveConfig) -> Self {
        config.validate().expect("valid adaptive configuration");
        AdaptiveStrategy { initial, config }
    }
}

/// The cancellation timeout `t∞` every strategy family carries.
pub fn timeout_of(p: StrategyParams) -> f64 {
    match p {
        StrategyParams::Single { t_inf }
        | StrategyParams::Multiple { t_inf, .. }
        | StrategyParams::Delayed { t_inf, .. }
        | StrategyParams::DelayedMultiple { t_inf, .. } => t_inf,
    }
}

/// Whether an abandoned job's waiting time is *timeout-censoring
/// evidence*: only waits that reached the timeout in effect say anything
/// about the latency law's tail. Jobs a controller cancels early —
/// redundant burst/delayed copies dropped **because the task already
/// succeeded** — are protocol cleanup, not censoring: for `Multiple{b}`
/// exactly `b−1` of every `b` jobs end that way, so counting them would
/// put a structural `(b−1)/b` floor under the censored fraction (falsely
/// triggering the backoff probe on a perfectly calm grid) and inflate the
/// snapshot ECDF's outlier mass for every multi-copy family.
pub fn is_timeout_censored(waited: f64, t_inf: f64) -> bool {
    waited >= 0.999 * t_inf
}

/// Scales every timeout of a strategy by `factor`, capping `t∞` at
/// `max_t_inf`. Delayed pairs are scaled uniformly, so feasibility
/// (`t0 ≤ t∞ ≤ 2·t0`) is preserved exactly.
fn scale_timeouts(p: StrategyParams, factor: f64, max_t_inf: f64) -> StrategyParams {
    let f = |t_inf: f64| ((t_inf * factor).min(max_t_inf) / t_inf).max(f64::MIN_POSITIVE);
    match p {
        StrategyParams::Single { t_inf } => StrategyParams::Single {
            t_inf: t_inf * f(t_inf),
        },
        StrategyParams::Multiple { b, t_inf } => StrategyParams::Multiple {
            b,
            t_inf: t_inf * f(t_inf),
        },
        StrategyParams::Delayed { t0, t_inf } => {
            let s = f(t_inf);
            StrategyParams::Delayed {
                t0: t0 * s,
                t_inf: t_inf * s,
            }
        }
        StrategyParams::DelayedMultiple { b, t0, t_inf } => {
            let s = f(t_inf);
            StrategyParams::DelayedMultiple {
                b,
                t0: t0 * s,
                t_inf: t_inf * s,
            }
        }
    }
}

/// The analytic expected task latency of `params` on the prior scaled by
/// load factor `θ` (queue wait and fault ratio both, mirroring how the
/// grid modulations couple them). Test oracle for the policy table.
#[cfg(test)]
fn expected_j_at_scale(prior: &WeekModel, params: StrategyParams, theta: f64) -> f64 {
    let law = prior.modulated(theta, theta);
    match ParametricModel::new(law.body(), law.rho, law.threshold_s) {
        Ok(model) => params.expected_j(&model),
        Err(_) => f64::NAN,
    }
}

/// The θ bracket every scale-tracking component works over.
const THETA_LO: f64 = 0.05;
const THETA_HI: f64 = 20.0;

/// A precomputed θ-indexed retuning policy: on a log-spaced grid of load
/// factors over `[0.05, 20]`, the family's re-tuned parameters on the
/// θ-scaled prior and the optimal expected latency `E*_J(θ)` they achieve.
///
/// This is what a real user would compute *offline* from last week's
/// calibration ("if the grid runs at θ× its usual load, my timeout should
/// be …"); online adaptation then reduces to estimating θ̂ and looking the
/// answer up — no quadrature on the retune path, and the same table
/// serves the regret frontier's per-instant optimum.
pub(crate) struct ScalePolicy {
    log_thetas: Vec<f64>,
    params: Vec<StrategyParams>,
    e_star: Vec<f64>,
}

impl ScalePolicy {
    const POINTS: usize = 65;

    pub(crate) fn build(prior: &WeekModel, family: StrategyParams, max_t_inf: f64) -> Self {
        let tuner = match ParametricModel::new(prior.body(), prior.rho, prior.threshold_s) {
            Ok(model) => FastTuner::for_family(family, &model),
            Err(_) => FastTuner::full(),
        };
        let (lo, hi) = (THETA_LO.ln(), THETA_HI.ln());
        let mut log_thetas = Vec::with_capacity(Self::POINTS);
        let mut params = Vec::with_capacity(Self::POINTS);
        let mut e_star = Vec::with_capacity(Self::POINTS);
        for k in 0..Self::POINTS {
            let log_theta = lo + (hi - lo) * k as f64 / (Self::POINTS - 1) as f64;
            let theta = log_theta.exp();
            let law = prior.modulated(theta, theta);
            let model = ParametricModel::new(law.body(), law.rho, law.threshold_s)
                .expect("scaled priors stay valid");
            let tuned = scale_timeouts(tuner.tune(family, &model), 1.0, max_t_inf);
            log_thetas.push(log_theta);
            params.push(tuned);
            e_star.push(tuned.expected_j(&model));
        }
        ScalePolicy {
            log_thetas,
            params,
            e_star,
        }
    }

    /// Index of the grid point nearest to `theta` in log space.
    fn nearest(&self, theta: f64) -> usize {
        let lt = theta.clamp(THETA_LO, THETA_HI).ln();
        let j = self.log_thetas.partition_point(|&x| x < lt);
        if j == 0 {
            return 0;
        }
        if j >= self.log_thetas.len() {
            return self.log_thetas.len() - 1;
        }
        if lt - self.log_thetas[j - 1] <= self.log_thetas[j] - lt {
            j - 1
        } else {
            j
        }
    }

    /// The re-tuned parameters for an estimated load factor.
    pub(crate) fn params_for(&self, theta: f64) -> StrategyParams {
        self.params[self.nearest(theta)]
    }

    /// The oracle-optimal expected latency at load factor `theta`
    /// (log-linear interpolation between grid points).
    pub(crate) fn e_star_at(&self, theta: f64) -> f64 {
        let lt = theta.clamp(THETA_LO, THETA_HI).ln();
        let j = self.log_thetas.partition_point(|&x| x < lt);
        if j == 0 {
            return self.e_star[0];
        }
        if j >= self.log_thetas.len() {
            return *self.e_star.last().expect("non-empty table");
        }
        let w = (lt - self.log_thetas[j - 1]) / (self.log_thetas[j] - self.log_thetas[j - 1]);
        self.e_star[j - 1] * (1.0 - w) + self.e_star[j] * w
    }

    /// Inverts the (monotone) `E*_J(θ)` curve at an observed mean task
    /// latency — the scale-tracking estimate `θ̂`. Observations outside
    /// the attainable range clamp to the bracket.
    pub(crate) fn invert_mean_j(&self, observed: f64) -> f64 {
        if !observed.is_finite() {
            return 1.0;
        }
        if observed <= self.e_star[0] {
            return THETA_LO;
        }
        let last = *self.e_star.last().expect("non-empty table");
        if observed >= last {
            return THETA_HI;
        }
        let j = self.e_star.partition_point(|&e| e < observed);
        let w = (observed - self.e_star[j - 1]) / (self.e_star[j] - self.e_star[j - 1]);
        (self.log_thetas[j - 1] * (1.0 - w) + self.log_thetas[j] * w).exp()
    }
}

/// The scale-tracking state of a [`RetunePolicy::ScaledPrior`] run: an
/// exponentially-decayed mean of the user's own task latencies plus the
/// geometrically-damped intensity estimate (damping halves the tracker's
/// variance — task latencies are noisy — at the cost of one retune period
/// of extra lag).
#[derive(Debug, Clone, Copy)]
struct ScaleTracker {
    theta: f64,
    ew_j: f64,
    ew_w: f64,
    decay: f64,
}

impl ScaleTracker {
    fn new(decay: f64) -> Self {
        ScaleTracker {
            theta: 1.0,
            ew_j: 0.0,
            ew_w: 0.0,
            decay,
        }
    }

    fn observe_task(&mut self, j: f64) {
        self.ew_j = self.decay * self.ew_j + j;
        self.ew_w = self.decay * self.ew_w + 1.0;
    }

    fn mean_j(&self) -> f64 {
        self.ew_j / self.ew_w
    }

    /// One tracking step: raw estimate from the latest decayed mean,
    /// geometrically blended with the previous estimate.
    fn update(&mut self, policy: &ScalePolicy) -> f64 {
        let raw = policy.invert_mean_j(self.mean_j());
        self.theta = (self.theta * raw).sqrt();
        self.theta
    }
}

/// Re-tunes a strategy family on a model, with an optional fast path for
/// the delayed family: a full 2-D `(t0, t∞)` search per retune (or per
/// regret-frontier bucket) is two orders of magnitude more quadrature than
/// the 1-D searches, and the paper itself observes that the optimal
/// `t∞/t0` ratio is stable across laws (§7) — so the ratio is fixed once
/// at its prior-optimal value and only the scale is re-optimised.
#[derive(Debug, Clone, Copy)]
struct FastTuner {
    delayed_ratio: Option<f64>,
}

impl FastTuner {
    /// A tuner with no precomputation: every family gets the full search.
    fn full() -> Self {
        FastTuner {
            delayed_ratio: None,
        }
    }

    /// Precomputes the delayed ratio on the prior law (no-op for other
    /// families).
    fn for_family(family: StrategyParams, prior_model: &dyn LatencyModel) -> Self {
        let delayed_ratio = match family {
            StrategyParams::Delayed { .. } => {
                let opt = crate::strategy::DelayedResubmission::optimize(prior_model);
                Some((opt.t_inf / opt.t0).clamp(1.0, 2.0))
            }
            _ => None,
        };
        FastTuner { delayed_ratio }
    }

    fn tune(&self, family: StrategyParams, model: &dyn LatencyModel) -> StrategyParams {
        match (family, self.delayed_ratio) {
            (StrategyParams::Delayed { .. }, Some(ratio)) => {
                let opt = crate::strategy::DelayedResubmission::optimize_with_ratio(model, ratio);
                StrategyParams::Delayed {
                    t0: opt.t0,
                    t_inf: opt.t_inf,
                }
            }
            _ => family.tune(model),
        }
    }
}

/// One estimator-driven retune step: maps the current parameters plus the
/// observation stream to new parameters. Shared by the single-user
/// harness and the fleet's adaptive agents. The
/// [`RetunePolicy::ScaledPrior`] *scale-tracking* loop needs the task-mean
/// state only the sequence harness holds, so here (and for agents with no
/// prior law) it degrades to the conservative empirical-snapshot retune.
pub fn retune_params(
    params: StrategyParams,
    estimator: &StreamingEcdf,
    config: &AdaptiveConfig,
) -> StrategyParams {
    retune_with(params, estimator, config, &FastTuner::full())
}

fn retune_with(
    params: StrategyParams,
    estimator: &StreamingEcdf,
    config: &AdaptiveConfig,
    tuner: &FastTuner,
) -> StrategyParams {
    if estimator.n_body() < config.min_body {
        return params;
    }
    let max_t_inf = 0.99 * estimator.threshold();
    if let RetunePolicy::EmpiricalBackoff {
        max_censored_fraction,
        growth,
    } = config.policy
    {
        let censored = estimator.decayed_censored_fraction();
        if censored.is_finite() && censored > max_censored_fraction {
            return scale_timeouts(params, growth, max_t_inf);
        }
    }
    match estimator.snapshot() {
        Ok(snapshot) => {
            let model = crate::latency::EmpiricalModel::from_ecdf(snapshot);
            scale_timeouts(tuner.tune(params, &model), 1.0, max_t_inf)
        }
        Err(_) => params,
    }
}

// --- task-sequence harness ----------------------------------------------------

/// One completed task of a sequence run.
#[derive(Debug, Clone, Copy)]
pub struct TaskRecord {
    /// Launch instant on the engine clock, seconds.
    pub launched_at: f64,
    /// Realised total latency `J` of the task, seconds.
    pub latency: f64,
    /// The timeout `t∞` in effect while the task ran.
    pub t_inf: f64,
}

/// Outcome of a task-sequence run.
#[derive(Debug, Clone)]
pub struct SequenceOutcome {
    /// Completed tasks in launch order (may be shorter than requested if
    /// the engine horizon cut the run).
    pub tasks: Vec<TaskRecord>,
    /// Total client submissions over the run.
    pub submissions: u64,
    /// Number of retunes that changed the parameters.
    pub retunes: usize,
    /// Parameters in effect when the run ended.
    pub final_params: StrategyParams,
}

impl SequenceOutcome {
    /// Mean realised task latency.
    pub fn mean_latency(&self) -> f64 {
        self.tasks.iter().map(|t| t.latency).sum::<f64>() / self.tasks.len() as f64
    }

    /// Mean submissions per completed task.
    pub fn submissions_per_task(&self) -> f64 {
        self.submissions as f64 / self.tasks.len() as f64
    }
}

/// Filters engine notifications down to one task's scope, unwrapping
/// namespaced timer tokens — the single-user analogue of the fleet's
/// owner routing.
struct ScopedTask<'a> {
    inner: &'a mut dyn crate::executor::StrategyController,
    scope: u64,
}

impl Controller for ScopedTask<'_> {
    fn start(&mut self, sim: &mut GridSimulation) {
        self.inner.start(sim);
    }

    fn on_event(&mut self, sim: &mut GridSimulation, ev: Notification) {
        let ev = match ev {
            Notification::Timer { token, at } => {
                if token >> 32 != self.scope {
                    return; // stale timer of a previous task
                }
                Notification::Timer {
                    token: token & u32::MAX as u64,
                    at,
                }
            }
            Notification::JobStarted { id, .. }
            | Notification::JobFinished { id, .. }
            | Notification::JobFailed { id, .. } => {
                if sim.job(id).owner != self.scope {
                    return; // echo of a previous task's job
                }
                ev
            }
        };
        self.inner.on_event(sim, ev);
    }

    fn done(&self) -> bool {
        self.inner.done()
    }
}

/// The adaptive side of a sequence run: the observation stream, the
/// precomputed fast paths, and the scale tracker.
struct AdaptState<'a> {
    config: &'a AdaptiveConfig,
    estimator: StreamingEcdf,
    tuner: FastTuner,
    /// The θ-indexed policy table ([`RetunePolicy::ScaledPrior`] with a
    /// prior only).
    policy: Option<Arc<ScalePolicy>>,
    tracker: ScaleTracker,
}

/// Internal driver shared by the fixed and adaptive entry points.
fn run_sequence(
    grid: &Arc<GridConfig>,
    initial: StrategyParams,
    n_tasks: usize,
    seed: u64,
    mut adapt: Option<AdaptState<'_>>,
) -> SequenceOutcome {
    assert!(n_tasks > 0, "a sequence needs at least one task");
    assert!(
        (n_tasks as u64) < u32::MAX as u64,
        "task scopes must fit in 32 bits"
    );
    let mut sim = GridSimulation::new(Arc::clone(grid), seed)
        .expect("sequence grid configs are always valid");
    let mut params = initial;
    let mut ctrl = params.build_controller();
    let mut tasks = Vec::with_capacity(n_tasks);
    let mut retunes = 0usize;

    for task in 0..n_tasks {
        let scope = task as u64 + 1;
        let launched_at = sim.now().as_secs();
        let job_floor = sim.jobs().len();
        ctrl.reset();
        sim.set_scope(scope);
        let mut scoped = ScopedTask {
            inner: ctrl.as_mut(),
            scope,
        };
        sim.run_controller(&mut scoped);
        sim.set_scope(0);
        let Some(j_abs) = ctrl.total_latency() else {
            break; // horizon reached mid-task
        };
        let latency = j_abs - launched_at;
        tasks.push(TaskRecord {
            launched_at,
            latency,
            t_inf: timeout_of(params),
        });
        if let Some(state) = adapt.as_mut() {
            state.tracker.observe_task(latency);
        }

        // cancel this task's leftovers so they do not haunt later tasks
        // (index loop: cancelling one job never flips another's state)
        for idx in job_floor..sim.jobs().len() {
            let rec = &sim.jobs()[idx];
            if rec.owner == scope && !rec.state.is_terminal() && rec.started_at.is_none() {
                let id = rec.id;
                sim.cancel(id);
            }
        }

        if let Some(state) = adapt.as_mut() {
            // feed the adaptive user's own per-job observations: exact
            // latency for started jobs; for abandoned jobs, only waits
            // that reached the timeout count as censoring evidence —
            // copies cancelled early because the task already won are
            // protocol cleanup, not information about the latency law
            let now = sim.now().as_secs();
            let t_inf = timeout_of(params);
            for rec in &sim.jobs()[job_floor..] {
                if rec.owner != scope {
                    continue;
                }
                match rec.started_at {
                    Some(st) => state
                        .estimator
                        .observe_started(st.since(rec.submitted_at).as_secs()),
                    None => {
                        let end = rec.terminated_at.map_or(now, |t| t.as_secs());
                        let waited = (end - rec.submitted_at.as_secs()).max(0.0);
                        if is_timeout_censored(waited, t_inf) {
                            state.estimator.observe_censored(waited);
                        }
                    }
                }
            }
            if (task + 1).is_multiple_of(state.config.retune_every) && task + 1 < n_tasks {
                let next = match state.policy.as_ref() {
                    // scale tracking: invert the observed decayed task-
                    // latency mean through the precomputed E*(θ) curve and
                    // look the re-tuned parameters up — no quadrature on
                    // the retune path
                    Some(policy) if state.estimator.n_body() >= state.config.min_body => {
                        let theta = state.tracker.update(policy);
                        policy.params_for(theta)
                    }
                    Some(_) => params,
                    None => retune_with(params, &state.estimator, state.config, &state.tuner),
                };
                if next != params {
                    params = next;
                    ctrl = params.build_controller();
                    retunes += 1;
                }
            }
        }
    }

    SequenceOutcome {
        tasks,
        submissions: sim.stats().client_submitted,
        retunes,
        final_params: params,
    }
}

/// Runs `n_tasks` back-to-back tasks of a **fixed** (tuned-once) strategy
/// on one engine — the paper's offline-tuning discipline exposed to a
/// drifting grid.
pub fn run_fixed_sequence(
    grid: &Arc<GridConfig>,
    strategy: &dyn Strategy,
    n_tasks: usize,
    seed: u64,
) -> SequenceOutcome {
    run_sequence(grid, strategy.params(), n_tasks, seed, None)
}

/// The observation censor threshold of a sequence run: the prior's when
/// available, else the grid's oracle model's, else the paper's 10 000 s.
/// One resolution point, shared by the policy-table cap and the
/// estimator, so the two can never disagree.
fn censor_threshold(grid: &GridConfig, prior: Option<&WeekModel>) -> f64 {
    prior
        .map(|w| w.threshold_s)
        .or(match &grid.latency {
            gridstrat_sim::LatencyMode::Oracle(m) => Some(m.threshold_s),
            _ => None,
        })
        .unwrap_or(gridstrat_workload::CENSOR_THRESHOLD_S)
}

/// Runs `n_tasks` back-to-back tasks of an [`AdaptiveStrategy`], re-tuning
/// from its own observations every `retune_every` tasks. `prior` is the
/// offline-calibrated stationary law the [`RetunePolicy::ScaledPrior`]
/// policy scales (pass the week the initial instance was tuned on).
///
/// The observation censor threshold is taken from `prior` when available,
/// else from the grid's oracle model, else the paper's 10 000 s.
pub fn run_adaptive_sequence<S: Strategy + Clone>(
    grid: &Arc<GridConfig>,
    adaptive: &AdaptiveStrategy<S>,
    prior: Option<&WeekModel>,
    n_tasks: usize,
    seed: u64,
) -> SequenceOutcome {
    adaptive.config.validate().expect("valid adaptive config");
    let threshold = censor_threshold(grid, prior);
    let params = adaptive.initial.params();
    // the scale-tracking policy table is computed once per run (a real
    // user would compute it offline from last week's calibration)
    let policy = match (adaptive.config.policy, prior) {
        (RetunePolicy::ScaledPrior, Some(w)) => {
            Some(Arc::new(ScalePolicy::build(w, params, 0.99 * threshold)))
        }
        _ => None,
    };
    run_sequence_adaptive(grid, params, &adaptive.config, prior, policy, n_tasks, seed)
}

/// [`run_adaptive_sequence`] with an already-built [`ScalePolicy`] — the
/// sweep shares one table across all its cells.
fn run_sequence_adaptive(
    grid: &Arc<GridConfig>,
    params: StrategyParams,
    config: &AdaptiveConfig,
    prior: Option<&WeekModel>,
    policy: Option<Arc<ScalePolicy>>,
    n_tasks: usize,
    seed: u64,
) -> SequenceOutcome {
    let threshold = censor_threshold(grid, prior);
    let estimator =
        StreamingEcdf::new(config.window, config.decay, threshold).expect("validated config");
    // the delayed fast path needs the prior-optimal ratio; computed once
    // per run, not once per retune (only exercised on the empirical path)
    let tuner = match prior {
        Some(w) => match ParametricModel::new(w.body(), w.rho, w.threshold_s) {
            Ok(model) => FastTuner::for_family(params, &model),
            Err(_) => FastTuner::full(),
        },
        None => FastTuner::full(),
    };
    let tracker = ScaleTracker::new(config.decay);
    run_sequence(
        grid,
        params,
        n_tasks,
        seed,
        Some(AdaptState {
            config,
            estimator,
            tuner,
            policy,
            tracker,
        }),
    )
}

// --- regret accounting --------------------------------------------------------

/// The omniscient per-instant benchmark: for each task launch time `τ`,
/// the expected latency `E*_J(τ)` of the same strategy family re-tuned on
/// the *frozen* modulated law at `τ`.
///
/// Factors are quantized (default step 1/64) and the per-bucket optimum is
/// cached, so a long sequence costs a bounded number of tunings and the
/// benchmark is deterministic regardless of evaluation order.
pub struct RegretFrontier {
    base: WeekModel,
    modulation: Arc<dyn Modulation>,
    family: StrategyParams,
    tuner: FastTuner,
    /// Coupled-factor fast path: when a bucket has intensity == fault
    /// factor (every [`DiurnalModel`] instant, and any regime with coupled
    /// factors), the frozen law is exactly a θ-scaled base, so the
    /// precomputed `E*(θ)` curve answers without a search.
    policy: Arc<ScalePolicy>,
    quant: f64,
    cache: HashMap<(i64, i64), f64>,
}

impl RegretFrontier {
    /// Builds a frontier for a strategy family over a modulated base week.
    /// For delayed families the `t∞/t0` ratio is fixed at its base-law
    /// optimum (stable across laws, per the paper) so each frontier bucket
    /// costs at most one 1-D search.
    pub fn new(base: WeekModel, modulation: Arc<dyn Modulation>, family: StrategyParams) -> Self {
        let policy = Arc::new(ScalePolicy::build(&base, family, 0.99 * base.threshold_s));
        Self::with_policy(base, modulation, family, policy)
    }

    fn with_policy(
        base: WeekModel,
        modulation: Arc<dyn Modulation>,
        family: StrategyParams,
        policy: Arc<ScalePolicy>,
    ) -> Self {
        let tuner = match ParametricModel::new(base.body(), base.rho, base.threshold_s) {
            Ok(model) => FastTuner::for_family(family, &model),
            Err(_) => FastTuner::full(),
        };
        RegretFrontier {
            base,
            modulation,
            family,
            tuner,
            policy,
            quant: 1.0 / 64.0,
            cache: HashMap::new(),
        }
    }

    /// The oracle-tuned expected latency on the frozen law at time `t`.
    pub fn optimum_at(&mut self, t: f64) -> f64 {
        let qi = (self.modulation.intensity_at(t) / self.quant).round() as i64;
        let qf = (self.modulation.fault_factor_at(t) / self.quant).round() as i64;
        let (qi, qf) = (qi.max(1), qf.max(0));
        if qi == qf {
            return self.policy.e_star_at(qi as f64 * self.quant);
        }
        let (base, family, quant, tuner) = (&self.base, self.family, self.quant, &self.tuner);
        *self.cache.entry((qi, qf)).or_insert_with(|| {
            let intensity = qi as f64 * quant;
            let fault = qf as f64 * quant;
            let law = base.modulated(intensity, fault);
            let model = ParametricModel::new(law.body(), law.rho, law.threshold_s)
                .expect("modulated laws stay valid");
            let tuned = tuner.tune(family, &model);
            tuned.expected_j(&model)
        })
    }

    /// Mean per-task regret `J_i − E*_J(τ_i)` of a finished sequence.
    pub fn mean_regret(&mut self, outcome: &SequenceOutcome) -> f64 {
        assert!(!outcome.tasks.is_empty(), "no completed tasks");
        outcome
            .tasks
            .iter()
            .map(|t| t.latency - self.optimum_at(t.launched_at))
            .sum::<f64>()
            / outcome.tasks.len() as f64
    }
}

// --- amplitude × retune-period sweep ------------------------------------------

/// Summary statistics of one sequence inside a sweep cell.
#[derive(Debug, Clone, Copy)]
pub struct SequenceSummary {
    /// Mean realised task latency, seconds.
    pub mean_latency: f64,
    /// Mean per-task regret vs the instantaneous oracle optimum, seconds.
    pub mean_regret: f64,
    /// Completed tasks.
    pub tasks: usize,
    /// Mean submissions per task.
    pub submissions_per_task: f64,
}

fn summarize(outcome: &SequenceOutcome, frontier: &mut RegretFrontier) -> SequenceSummary {
    SequenceSummary {
        mean_latency: outcome.mean_latency(),
        mean_regret: frontier.mean_regret(outcome),
        tasks: outcome.tasks.len(),
        submissions_per_task: outcome.submissions_per_task(),
    }
}

/// One evaluated cell of an [`AdaptiveSweep`].
#[derive(Debug, Clone)]
pub struct AdaptiveCellOutcome {
    /// Diurnal amplitude of the cell's modulation.
    pub amplitude: f64,
    /// Retune period of the adaptive user.
    pub retune_every: usize,
    /// The tuned-once (stationary-optimal) strategy's summary.
    pub fixed: SequenceSummary,
    /// The online-retuned strategy's summary.
    pub adaptive: SequenceSummary,
    /// Retunes the adaptive run applied.
    pub retunes: usize,
}

/// A (diurnal amplitude × retune period) grid: every cell runs the same
/// tuned-once strategy and its adaptive wrapper over the same modulated
/// grid and reports mean latency and mean regret for both.
///
/// Cells are laid out amplitude-major and evaluated in one rayon pass;
/// per-cell seeds derive from `(seed, cell)` and results are collected in
/// cell order, so the sweep is **bit-identical for any thread count**.
#[derive(Debug, Clone)]
pub struct AdaptiveSweep {
    /// The stationary base week (the offline-calibration prior).
    pub base: WeekModel,
    /// Oscillation period of the diurnal modulation, seconds.
    pub period_s: f64,
    /// Modulation amplitudes to evaluate (`0 ≤ a < 1`).
    pub amplitudes: Vec<f64>,
    /// Retune periods (tasks between retunes) to evaluate.
    pub retune_periods: Vec<usize>,
    /// Strategy family template; its free parameters are re-tuned on the
    /// stationary base to produce the tuned-once reference instance.
    pub family: StrategyParams,
    /// Adaptation configuration (its `retune_every` is overridden by the
    /// cell's retune period).
    pub adaptive: AdaptiveConfig,
    /// Tasks per sequence.
    pub n_tasks: usize,
    /// Master seed.
    pub seed: u64,
}

impl AdaptiveSweep {
    /// Number of cells in the grid.
    pub fn n_cells(&self) -> usize {
        self.amplitudes.len() * self.retune_periods.len()
    }

    /// Evaluates the whole grid in one parallel pass (see type docs).
    pub fn run(&self) -> Vec<AdaptiveCellOutcome> {
        assert!(!self.amplitudes.is_empty(), "sweep needs amplitudes");
        assert!(
            !self.retune_periods.is_empty(),
            "sweep needs retune periods"
        );
        assert!(self.n_tasks > 0, "sweep needs tasks");
        self.adaptive.validate().expect("valid adaptive config");

        // the tuned-once reference: the family optimised on the stationary
        // prior — exactly the paper's offline discipline — and the shared
        // θ-indexed policy/frontier table, built once for the whole grid
        let prior_model =
            ParametricModel::new(self.base.body(), self.base.rho, self.base.threshold_s)
                .expect("calibrated weeks are valid");
        let tuned_once = self.family.tune(&prior_model);
        let policy = Arc::new(ScalePolicy::build(
            &self.base,
            tuned_once,
            0.99 * self.base.threshold_s,
        ));

        let cells: Vec<(f64, usize)> = self
            .amplitudes
            .iter()
            .flat_map(|&a| self.retune_periods.iter().map(move |&k| (a, k)))
            .collect();

        let cells_ref = &cells;
        let policy_ref = &policy;
        (0..cells.len())
            .into_par_iter()
            .map(move |cell| {
                let (amplitude, retune_every) = cells_ref[cell];
                let modulation: Arc<dyn Modulation> = Arc::new(
                    DiurnalModel::new(self.base.clone(), amplitude, self.period_s)
                        .expect("validated amplitudes"),
                );
                let mut grid = GridConfig::oracle(self.base.clone());
                grid.modulation = Some(Arc::clone(&modulation));
                let grid = Arc::new(grid);

                let cell_seed = derive_seed(self.seed, cell as u64);
                let fixed_outcome =
                    run_fixed_sequence(&grid, &tuned_once, self.n_tasks, derive_seed(cell_seed, 0));
                let mut config = self.adaptive;
                config.retune_every = retune_every;
                config.validate().expect("valid adaptive config");
                let adaptive_outcome = run_sequence_adaptive(
                    &grid,
                    tuned_once,
                    &config,
                    Some(&self.base),
                    matches!(config.policy, RetunePolicy::ScaledPrior)
                        .then(|| Arc::clone(policy_ref)),
                    self.n_tasks,
                    derive_seed(cell_seed, 1),
                );

                let mut frontier = RegretFrontier::with_policy(
                    self.base.clone(),
                    modulation,
                    self.family,
                    Arc::clone(policy_ref),
                );
                AdaptiveCellOutcome {
                    amplitude,
                    retune_every,
                    fixed: summarize(&fixed_outcome, &mut frontier),
                    adaptive: summarize(&adaptive_outcome, &mut frontier),
                    retunes: adaptive_outcome.retunes,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::SingleResubmission;

    fn base() -> WeekModel {
        WeekModel::calibrate("adapt", 500.0, 700.0, 0.05, 60.0, 10_000.0).unwrap()
    }

    fn modulated_grid(amplitude: f64) -> (Arc<GridConfig>, Arc<dyn Modulation>) {
        let b = base();
        let m: Arc<dyn Modulation> =
            Arc::new(DiurnalModel::new(b.clone(), amplitude, 86_400.0).unwrap());
        let mut grid = GridConfig::oracle(b);
        grid.modulation = Some(Arc::clone(&m));
        (Arc::new(grid), m)
    }

    fn tuned_once() -> StrategyParams {
        let b = base();
        let model = ParametricModel::new(b.body(), b.rho, b.threshold_s).unwrap();
        StrategyParams::Single { t_inf: 700.0 }.tune(&model)
    }

    #[test]
    fn sequence_advances_the_clock_and_isolates_tasks() {
        let (grid, _) = modulated_grid(0.5);
        let out = run_fixed_sequence(&grid, &tuned_once(), 50, 42);
        assert_eq!(out.tasks.len(), 50);
        // launches strictly increase (back-to-back tasks, each takes time)
        for w in out.tasks.windows(2) {
            assert!(w[1].launched_at > w[0].launched_at);
        }
        // every realised latency is at least the floor
        assert!(out.tasks.iter().all(|t| t.latency >= 60.0));
        assert!(out.submissions >= 50);
    }

    #[test]
    fn sequences_are_deterministic() {
        let (grid, _) = modulated_grid(0.6);
        let a = run_fixed_sequence(&grid, &tuned_once(), 40, 7);
        let b = run_fixed_sequence(&grid, &tuned_once(), 40, 7);
        assert_eq!(a.tasks.len(), b.tasks.len());
        for (x, y) in a.tasks.iter().zip(&b.tasks) {
            assert_eq!(x.latency.to_bits(), y.latency.to_bits());
            assert_eq!(x.launched_at.to_bits(), y.launched_at.to_bits());
        }
        let c = run_fixed_sequence(&grid, &tuned_once(), 40, 8);
        assert_ne!(
            a.tasks[5].latency.to_bits(),
            c.tasks[5].latency.to_bits(),
            "different seeds must differ"
        );
    }

    #[test]
    fn adaptive_run_retunes_and_tracks_drift() {
        let (grid, _) = modulated_grid(0.6);
        let adaptive = AdaptiveStrategy::new(
            SingleResubmission {
                t_inf: timeout_of(tuned_once()),
            },
            AdaptiveConfig {
                retune_every: 10,
                window: 300,
                decay: 0.97,
                min_body: 15,
                policy: RetunePolicy::ScaledPrior,
            },
        );
        let out = run_adaptive_sequence(&grid, &adaptive, Some(&base()), 120, 21);
        assert_eq!(out.tasks.len(), 120);
        assert!(out.retunes > 0, "no retune ever fired");
        // the timeout actually moved over the run
        let t0 = out.tasks.first().unwrap().t_inf;
        assert!(
            out.tasks.iter().any(|t| (t.t_inf - t0).abs() > 1.0),
            "timeout never moved"
        );
    }

    #[test]
    fn adaptive_beats_tuned_once_on_mean_regret_under_drift() {
        // the acceptance-shaped property at test scale: a heavy-drift week
        // (paper-like tail, ρ = 0.2, amplitude 0.8 — faults track load, so
        // peak phases censor hard), the delayed family whose optimum is
        // sharpest, fixed seeds, regret vs the instantaneous oracle
        let b = WeekModel::calibrate("drift", 570.0, 886.0, 0.20, 60.0, 10_000.0).unwrap();
        let modulation: Arc<dyn Modulation> =
            Arc::new(DiurnalModel::new(b.clone(), 0.8, 86_400.0).unwrap());
        let mut grid = GridConfig::oracle(b.clone());
        grid.modulation = Some(Arc::clone(&modulation));
        let grid = Arc::new(grid);

        let model = ParametricModel::new(b.body(), b.rho, b.threshold_s).unwrap();
        let tuned = StrategyParams::Delayed {
            t0: 400.0,
            t_inf: 560.0,
        }
        .tune(&model);
        let n = 1_000;
        let fixed = run_fixed_sequence(&grid, &tuned, n, 1234);
        let adaptive = run_adaptive_sequence(
            &grid,
            &AdaptiveStrategy::new(tuned, AdaptiveConfig::default()),
            Some(&b),
            n,
            1234,
        );
        let mut frontier = RegretFrontier::new(b, modulation, tuned);
        let r_fixed = frontier.mean_regret(&fixed);
        let r_adaptive = frontier.mean_regret(&adaptive);
        assert!(
            r_adaptive < r_fixed,
            "adaptive regret {r_adaptive} not below tuned-once {r_fixed}"
        );
    }

    #[test]
    fn empirical_backoff_recovers_from_a_storm() {
        // a permanent 2.5x storm from t=0: the stationary timeout censors
        // heavily; the backoff probe must grow the timeout
        let b = base();
        let storm: Arc<dyn Modulation> = Arc::new(
            gridstrat_workload::RegimeShiftModel::new(
                b.clone(),
                vec![1e9],
                vec![2.5, 1.0],
                vec![1.0, 1.0],
            )
            .unwrap(),
        );
        let mut grid = GridConfig::oracle(b);
        grid.modulation = Some(storm);
        let grid = Arc::new(grid);
        let tuned = tuned_once();
        let adaptive = AdaptiveStrategy::new(
            tuned,
            AdaptiveConfig {
                retune_every: 10,
                window: 200,
                decay: 0.95,
                min_body: 10,
                policy: RetunePolicy::EmpiricalBackoff {
                    max_censored_fraction: 0.35,
                    growth: 1.4,
                },
            },
        );
        let out = run_adaptive_sequence(&grid, &adaptive, None, 150, 99);
        let final_t = timeout_of(out.final_params);
        assert!(
            final_t > 1.3 * timeout_of(tuned),
            "backoff never grew the timeout: {final_t} vs {}",
            timeout_of(tuned)
        );
        // and the grown timeout completes tasks with fewer submissions
        let early: f64 = out.tasks[..30].iter().map(|t| t.latency).sum::<f64>() / 30.0;
        let late: f64 = out.tasks[out.tasks.len() - 30..]
            .iter()
            .map(|t| t.latency)
            .sum::<f64>()
            / 30.0;
        assert!(late < early, "adaptation never paid off: {late} vs {early}");
    }

    #[test]
    fn sibling_cancellations_are_not_censoring_evidence() {
        // Regression: a Multiple{b} task cancels b-1 copies every time it
        // *succeeds*; counting those as censored observations puts a
        // structural (b-1)/b floor under the censored fraction, which
        // falsely triggers the EmpiricalBackoff growth probe on a calm,
        // perfectly stationary grid and ratchets the timeout to the cap.
        let b = base();
        let grid = Arc::new(GridConfig::oracle(b.clone())); // no modulation
        let model = ParametricModel::new(b.body(), b.rho, b.threshold_s).unwrap();
        let tuned = StrategyParams::Multiple { b: 3, t_inf: 800.0 }.tune(&model);
        let adaptive = AdaptiveStrategy::new(
            tuned,
            AdaptiveConfig {
                retune_every: 5,
                window: 200,
                decay: 0.95,
                min_body: 10,
                policy: RetunePolicy::EmpiricalBackoff {
                    max_censored_fraction: 0.35,
                    growth: 1.5,
                },
            },
        );
        let out = run_adaptive_sequence(&grid, &adaptive, None, 120, 77);
        let final_t = timeout_of(out.final_params);
        assert!(
            final_t < 1.5 * timeout_of(tuned),
            "backoff ratcheted on a stationary grid: {} -> {final_t}",
            timeout_of(tuned)
        );
        // the empirical retune stays near the true optimum
        let e_final = out.final_params.expected_j(&model);
        let e_opt = tuned.expected_j(&model);
        assert!(
            e_final < 1.1 * e_opt,
            "retuned params degraded on a stationary grid: {e_final} vs {e_opt}"
        );
    }

    #[test]
    fn retune_respects_min_body_gate() {
        let mut est = StreamingEcdf::new(100, 0.98, 10_000.0).unwrap();
        for _ in 0..5 {
            est.observe_started(400.0);
        }
        let cfg = AdaptiveConfig {
            min_body: 20,
            ..AdaptiveConfig::default()
        };
        let p = StrategyParams::Single { t_inf: 700.0 };
        assert_eq!(retune_params(p, &est, &cfg), p);
    }

    #[test]
    fn scale_timeouts_preserves_delayed_feasibility() {
        let p = StrategyParams::Delayed {
            t0: 400.0,
            t_inf: 560.0,
        };
        for factor in [0.3, 1.0, 1.7, 50.0] {
            match scale_timeouts(p, factor, 9_900.0) {
                StrategyParams::Delayed { t0, t_inf } => {
                    assert!(crate::strategy::DelayedResubmission::feasible(t0, t_inf));
                    assert!(t_inf <= 9_900.0 + 1e-9);
                }
                other => panic!("variant changed: {other:?}"),
            }
        }
    }

    #[test]
    fn scale_policy_recovers_known_scale() {
        let b = base();
        let family = StrategyParams::Single { t_inf: 700.0 };
        let policy = ScalePolicy::build(&b, family, 9_900.0);
        for theta_true in [0.5, 1.0, 1.6, 3.0] {
            // noiseless observation: the oracle expectation on the scaled
            // law — inversion must recover the scale to grid precision
            let observed = policy.e_star_at(theta_true);
            let theta_hat = policy.invert_mean_j(observed);
            assert!(
                (theta_hat - theta_true).abs() / theta_true < 0.05,
                "theta {theta_true} estimated as {theta_hat}"
            );
            // the tabulated E* matches a direct evaluation of the
            // tabulated parameters on the scaled law
            let direct = expected_j_at_scale(&b, policy.params_for(theta_true), theta_true);
            assert!(
                (policy.e_star_at(theta_true) - direct).abs() / direct < 0.02,
                "table E* diverged from direct evaluation at theta {theta_true}"
            );
        }
        // clamps at the bracket instead of diverging
        assert_eq!(policy.invert_mean_j(0.0), THETA_LO);
        assert_eq!(policy.invert_mean_j(1e9), THETA_HI);
        assert_eq!(policy.invert_mean_j(f64::NAN), 1.0);
    }

    #[test]
    fn adaptive_sweep_is_bit_identical_across_thread_counts() {
        let sweep = AdaptiveSweep {
            base: base(),
            period_s: 86_400.0,
            amplitudes: vec![0.3, 0.6],
            retune_periods: vec![10],
            family: StrategyParams::Single { t_inf: 700.0 },
            adaptive: AdaptiveConfig::default(),
            n_tasks: 60,
            seed: 0xADA9,
        };
        let run_with = |threads: usize| {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool");
            pool.install(|| sweep.run())
        };
        let a = run_with(1);
        let b = run_with(4);
        assert_eq!(a.len(), 2);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                x.fixed.mean_latency.to_bits(),
                y.fixed.mean_latency.to_bits()
            );
            assert_eq!(
                x.adaptive.mean_regret.to_bits(),
                y.adaptive.mean_regret.to_bits()
            );
            assert_eq!(x.retunes, y.retunes);
        }
    }
}
