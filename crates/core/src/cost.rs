//! The strategy cost criterion `∆cost` (paper §7, eq. 6).
//!
//! Submitting redundant copies helps the user but loads the grid; yet if a
//! strategy with `N_//` average parallel jobs finishes more than `N_//`
//! times faster than plain single resubmission, the *total* expected
//! job-seconds in the system go down (Fig. 7). Equation 6 captures this:
//!
//! ```text
//! ∆cost = N_// · E_J(strategy) / E_J(single resub., optimal)
//! ```
//!
//! `∆cost = 1` for optimal single resubmission; `∆cost < 1` means the grid
//! is *less* loaded than under single resubmission while the user is
//! faster. The paper finds a minimum of ≈ 0.93–0.94 for the delayed
//! strategy at `t∞/t0 ≈ 1.25` on 2006-IX, while the multiple strategy
//! always costs `> 1` (1.3 at `b = 2`, growing ≈ linearly).

use crate::latency::LatencyModel;
use crate::strategy::{DelayedResubmission, MultipleSubmission, SingleResubmission, Strategy};
use gridstrat_stats::optimize::grid_min_2d;

/// One point of a cost profile (Tables 3–4, Fig. 8).
#[derive(Debug, Clone, PartialEq)]
pub struct CostPoint {
    /// Strategy parameters behind this point.
    pub params: StrategyParams,
    /// Mean number of parallel jobs (`b` for multiple submission;
    /// `N_//(E_J)` for delayed).
    pub n_parallel: f64,
    /// Expected total latency `E_J`, seconds.
    pub expectation: f64,
    /// The cost criterion of eq. 6.
    pub delta_cost: f64,
}

/// Parameters identifying a strategy instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StrategyParams {
    /// Single resubmission at `t∞`.
    Single {
        /// Timeout, seconds.
        t_inf: f64,
    },
    /// `b`-fold multiple submission with collection timeout `t∞`.
    Multiple {
        /// Collection size.
        b: u32,
        /// Timeout, seconds.
        t_inf: f64,
    },
    /// Delayed resubmission with delay `t0` and timeout `t∞`.
    Delayed {
        /// Resubmission delay, seconds.
        t0: f64,
        /// Cancellation timeout, seconds.
        t_inf: f64,
    },
    /// Generalised delayed resubmission: `b` copies per echelon (extension
    /// beyond the paper; `b = 1` is [`StrategyParams::Delayed`]).
    DelayedMultiple {
        /// Copies per echelon.
        b: u32,
        /// Resubmission delay, seconds.
        t0: f64,
        /// Cancellation timeout, seconds.
        t_inf: f64,
    },
}

/// Eq. 6: `∆cost = N_// · E_J / E*_J(single)`.
pub fn delta_cost(n_parallel: f64, e_j: f64, e_j_single_opt: f64) -> f64 {
    assert!(
        e_j_single_opt > 0.0,
        "single-resubmission baseline must be positive"
    );
    n_parallel * e_j / e_j_single_opt
}

/// Evaluates the eq.-6 criterion for any [`Strategy`] instance against the
/// single-resubmission baseline — the one place `E_J`, `N_//` and `∆cost`
/// are combined, shared by every profile/table below.
pub fn cost_point(
    model: &dyn LatencyModel,
    strategy: &dyn Strategy,
    e_j_single_opt: f64,
) -> CostPoint {
    // evaluate the closed form once; N_// is derived from the expectation
    // (this sits in the ∆cost optimizers' innermost loop)
    let expectation = strategy.expected_j(model);
    let n_parallel = strategy.n_parallel_for(expectation);
    let dc = if expectation.is_finite() {
        delta_cost(n_parallel, expectation, e_j_single_opt)
    } else {
        f64::INFINITY
    };
    CostPoint {
        params: strategy.params(),
        n_parallel,
        expectation,
        delta_cost: dc,
    }
}

/// Cost profile of the delayed strategy over a set of `t∞/t0` ratios
/// (the protocol behind Tables 3–4's left half and Fig. 8's solid curve):
/// for each ratio, minimise `E_J`, then report `N_//(E_J)` and `∆cost`.
pub fn delayed_cost_profile(model: &dyn LatencyModel, ratios: &[f64]) -> Vec<CostPoint> {
    let single = SingleResubmission::optimize(model);
    ratios
        .iter()
        .map(|&r| {
            let out = DelayedResubmission::optimize_with_ratio(model, r);
            cost_point(
                model,
                &DelayedResubmission::new(out.t0, out.t_inf),
                single.expectation,
            )
        })
        .collect()
}

/// Cost profile of the multiple strategy over collection sizes
/// (Table 4's right half and Fig. 8's dashed curve). `N_// = b` exactly.
pub fn multiple_cost_profile(model: &dyn LatencyModel, bs: &[u32]) -> Vec<CostPoint> {
    let single = SingleResubmission::optimize(model);
    bs.iter()
        .map(|&b| {
            let tuned = MultipleSubmission::optimized(model, b);
            cost_point(model, &tuned, single.expectation)
        })
        .collect()
}

/// The `∆cost` objective at an explicit `(t0, t∞)` pair, given the
/// single-resubmission baseline (Table 5/6 cells).
pub fn delayed_delta_cost_at(
    model: &dyn LatencyModel,
    t0: f64,
    t_inf: f64,
    e_j_single_opt: f64,
) -> CostPoint {
    if !DelayedResubmission::feasible(t0, t_inf) {
        return CostPoint {
            params: StrategyParams::Delayed { t0, t_inf },
            n_parallel: f64::NAN,
            expectation: f64::INFINITY,
            delta_cost: f64::INFINITY,
        };
    }
    cost_point(model, &DelayedResubmission::new(t0, t_inf), e_j_single_opt)
}

/// Minimises `∆cost` over integer-second `(t0, t∞)` pairs (Table 5's
/// protocol: “the study was limited to integer values of t0 and t∞ because
/// having higher precision of resubmission is not realistic in practice”).
///
/// A continuous multi-resolution grid search locates the basin, then an
/// exhaustive integer scan of a ±12 s box (with `t∞ ≥ t0 + 1`) finishes.
pub fn optimize_delayed_delta_cost(model: &dyn LatencyModel) -> CostPoint {
    let single = SingleResubmission::optimize(model);
    let e1 = single.expectation;
    let objective = |t0: f64, ti: f64| {
        let out = DelayedResubmission::evaluate(model, t0, ti);
        if out.expectation.is_finite() {
            delta_cost(out.n_parallel, out.expectation, e1)
        } else {
            f64::INFINITY
        }
    };
    let (lo, hi) = model.plausible_range();
    let coarse = grid_min_2d(
        objective,
        (lo, hi),
        (lo, (2.0 * hi).min(model.horizon())),
        48,
        8,
        &|t0, ti| DelayedResubmission::feasible(t0, ti) && ti >= t0 + 1.0,
    )
    .expect("feasible region is non-empty");

    // integer polish
    let (c0, ci) = (coarse.x.round() as i64, coarse.y.round() as i64);
    let mut best: Option<(f64, i64, i64)> = None;
    for t0 in (c0 - 12).max(1)..=(c0 + 12) {
        for ti in (ci - 12).max(t0 + 1)..=(ci + 12) {
            let (t0f, tif) = (t0 as f64, ti as f64);
            if !DelayedResubmission::feasible(t0f, tif) {
                continue;
            }
            let v = objective(t0f, tif);
            if best.is_none_or(|(bv, _, _)| v < bv) {
                best = Some((v, t0, ti));
            }
        }
    }
    let (_, t0, ti) = best.expect("integer box contains feasible pairs");
    delayed_delta_cost_at(model, t0 as f64, ti as f64, e1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::ParametricModel;
    use gridstrat_stats::{LogNormal, Shifted};

    fn heavy_model() -> ParametricModel<Shifted<LogNormal>> {
        let body = Shifted::new(LogNormal::from_mean_std(360.0, 880.0).unwrap(), 150.0).unwrap();
        ParametricModel::new(body, 0.05, 1e4).unwrap()
    }

    #[test]
    fn single_resubmission_costs_one_by_definition() {
        let m = heavy_model();
        let single = SingleResubmission::optimize(&m);
        let dc = delta_cost(1.0, single.expectation, single.expectation);
        assert!((dc - 1.0).abs() < 1e-12);
    }

    #[test]
    fn multiple_costs_grow_beyond_one() {
        // Table 4 right half: ∆cost(b=2) ≈ 1.3 and increasing in b
        let m = heavy_model();
        let profile = multiple_cost_profile(&m, &[2, 3, 5, 10]);
        let mut prev = 1.0;
        for p in &profile {
            assert!(p.delta_cost > prev, "∆cost must increase: {:?}", p.params);
            prev = p.delta_cost;
        }
        assert!(profile[0].delta_cost > 1.0 && profile[0].delta_cost < 2.0);
        // b=10: paper gets 4.2; wide tolerance for the synthetic law
        assert!(profile[3].delta_cost > 2.5 && profile[3].delta_cost < 7.0);
    }

    #[test]
    fn delayed_profile_has_sub_unit_minimum_on_heavy_tails() {
        // the paper's key claim: some ratio gives ∆cost < 1
        let m = heavy_model();
        let ratios = [1.05, 1.1, 1.15, 1.2, 1.25, 1.3, 1.4, 1.5, 1.75, 2.0];
        let profile = delayed_cost_profile(&m, &ratios);
        let min = profile
            .iter()
            .map(|p| p.delta_cost)
            .fold(f64::INFINITY, f64::min);
        assert!(min < 1.0, "min ∆cost {min} should be < 1");
        assert!(min > 0.8, "min ∆cost {min} suspiciously low");
        // N_// stays below 2 (constraint of the delayed protocol)
        for p in &profile {
            assert!(p.n_parallel >= 1.0 && p.n_parallel < 2.0);
        }
    }

    #[test]
    fn optimizer_beats_profile_points() {
        let m = heavy_model();
        let best = optimize_delayed_delta_cost(&m);
        let profile = delayed_cost_profile(&m, &[1.1, 1.25, 1.5]);
        for p in &profile {
            assert!(
                best.delta_cost <= p.delta_cost + 1e-6,
                "profile point {:?} beats optimizer",
                p.params
            );
        }
        // integer parameters by construction
        if let StrategyParams::Delayed { t0, t_inf } = best.params {
            assert_eq!(t0.fract(), 0.0);
            assert_eq!(t_inf.fract(), 0.0);
            assert!(t_inf >= t0 + 1.0);
        } else {
            panic!("wrong params variant");
        }
    }

    #[test]
    fn delta_cost_at_explicit_pair_is_consistent() {
        let m = heavy_model();
        let single = SingleResubmission::optimize(&m);
        let p = delayed_delta_cost_at(&m, 400.0, 520.0, single.expectation);
        assert!(p.expectation.is_finite());
        let manual = p.n_parallel * p.expectation / single.expectation;
        assert!((p.delta_cost - manual).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "baseline must be positive")]
    fn rejects_bad_baseline() {
        delta_cost(1.0, 100.0, 0.0);
    }
}
