//! # gridstrat — umbrella crate
//!
//! Reproduction of *Modeling User Submission Strategies on Production Grids*
//! (Lingrand, Montagnat, Glatard — HPDC 2009) as a Rust workspace.
//!
//! This crate re-exports the public APIs of the four member crates so that
//! examples and downstream users can depend on a single package:
//!
//! * [`stats`] — empirical CDFs with exact integrals, distributions, MLE
//!   fitting, optimizers ([`gridstrat_stats`]).
//! * [`workload`] — latency trace model and the 13 synthetic EGEE-like
//!   weekly datasets calibrated to the paper's Table 1
//!   ([`gridstrat_workload`]).
//! * [`sim`] — discrete-event grid simulator (UI → WMS → CE) with fault
//!   injection and the constant-probe measurement harness
//!   ([`gridstrat_sim`]).
//! * [`core`] — the paper's contribution: latency models, the three
//!   submission strategies (single / multiple / delayed resubmission),
//!   timeout optimization, the `∆cost` criterion, stability and cross-week
//!   transfer analyses, Monte-Carlo strategy executors, and the
//!   online-adaptation layer (adaptive strategies with regret accounting
//!   on nonstationary live grids) ([`gridstrat_core`]).
//! * [`fleet`] — the multi-user ecosystem simulator (the paper's §8
//!   future work): populations of heterogeneous strategies multiplexed
//!   onto one shared grid, strategy-mix sweeps, fairness / slot-waste /
//!   utilisation metrics and best-response equilibrium search
//!   ([`gridstrat_fleet`]).
//!
//! ## Quickstart
//!
//! ```
//! use gridstrat::prelude::*;
//!
//! // Build a latency model from a synthetic EGEE-like week…
//! let trace = WeekId::W2006Ix.generate(0xE6EE);
//! let model = EmpiricalModel::from_trace(&trace).unwrap();
//!
//! // …and compute the single-resubmission optimum (paper §4, eq. 1).
//! let single = SingleResubmission::optimize(&model);
//! assert!(single.expectation.is_finite());
//! assert!(single.timeout > 0.0);
//! ```

pub use gridstrat_core as core;
pub use gridstrat_fleet as fleet;
pub use gridstrat_sim as sim;
pub use gridstrat_stats as stats;
pub use gridstrat_workload as workload;

/// One-stop imports for examples and applications.
pub mod prelude {
    pub use gridstrat_core::adaptive::{
        run_adaptive_sequence, run_fixed_sequence, AdaptiveCellOutcome, AdaptiveConfig,
        AdaptiveStrategy, AdaptiveSweep, RegretFrontier, RetunePolicy, SequenceOutcome,
        SequenceSummary, TaskRecord,
    };
    pub use gridstrat_core::application::{batch_outcome, BatchOutcome, JSampler};
    pub use gridstrat_core::cost::{
        cost_point, delayed_cost_profile, delayed_delta_cost_at, delta_cost, multiple_cost_profile,
        optimize_delayed_delta_cost, CostPoint, StrategyParams,
    };
    pub use gridstrat_core::executor::{
        GridScenario, MonteCarloConfig, MonteCarloEstimate, ScenarioOutcome, ScenarioSweep,
        StrategyController, StrategyExecutor,
    };
    pub use gridstrat_core::latency::{EmpiricalModel, LatencyModel, ParametricModel};
    pub use gridstrat_core::report::Table;
    pub use gridstrat_core::stability::{stability_radius, StabilityReport};
    pub use gridstrat_core::strategy::{
        DelayedOutcome, DelayedResubmission, JDistribution, MultipleSubmission, SingleResubmission,
        Strategy, Timeout1d,
    };
    pub use gridstrat_core::transfer::{transfer_matrix, TransferReport};
    pub use gridstrat_fleet::{
        jain_index, run_cell, shard_seed, user_stream_seed, ArrivalProcess, Assignment,
        BestResponseSearch, BestResponseStep, EquilibriumReport, FleetCellOutcome, FleetConfig,
        FleetController, FleetRun, FleetSweep, GroupReport, GroupStream, ShardedFleet,
        StrategyGroup, StrategyMix, UserOutcome,
    };
    pub use gridstrat_sim::{
        Controller, GridConfig, GridSimulation, JobId, JobRecord, JobState, Modulation,
        Notification, ProbeHarness, SimDuration, SimTime,
    };
    pub use gridstrat_stats::{
        bootstrap_ci, ConfidenceInterval, Distribution, Ecdf, HazardProfile, HazardTrend,
        LogNormal, Shifted, StreamingEcdf, Summary, Weibull,
    };
    pub use gridstrat_workload::{
        DiurnalModel, ProbeStatus, RegimeShiftModel, TraceSet, WeekId, WeekModel,
        CENSOR_THRESHOLD_S, MAX_FAULT_RATIO,
    };
}
