//! Offline stand-in for the subset of the `rand` 0.8 API the workspace
//! uses: the [`Rng`]/[`RngCore`]/[`SeedableRng`] traits, [`rngs::StdRng`],
//! uniform `gen::<f64>()`/`gen::<u64>()` and integer `gen_range`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this shim instead of the real crate (see `shims/` in the
//! repository root). The generator behind [`rngs::StdRng`] is
//! xoshiro256++, seeded through SplitMix64 — high-quality, fast, and fully
//! deterministic from `seed_from_u64`, which is all the Monte-Carlo layers
//! require. It is **not** the same stream as the real `StdRng` (ChaCha12),
//! and none of this is cryptographically secure.

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be drawn uniformly from an `Rng` (the shim's stand-in for
/// `Standard: Distribution<T>`).
pub trait StandardSample {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Lemire multiply-shift with rejection: unbiased for any span
                let threshold = span.wrapping_neg() % span;
                loop {
                    let m = rng.next_u64() as u128 * span as u128;
                    if (m as u64) >= threshold {
                        return self.start + ((m >> 64) as u64) as $t;
                    }
                }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = self.into_inner();
                assert!(s <= e, "cannot sample empty range");
                if s == e {
                    return s;
                }
                (s..e + 1).sample_single(rng)
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::sample_standard(rng)
    }
}

/// User-facing random-value interface, blanket-implemented for every
/// [`RngCore`] (including `&mut R`, so `R: Rng + ?Sized` call sites work
/// through auto-ref exactly as with the real crate).
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution
    /// (`f64` uniform on `[0, 1)`, integers uniform over their range).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// One step of the SplitMix64 output function, used for seed expansion.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman/Vigna),
    /// seeded by SplitMix64 expansion of a 64-bit seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // the all-zero state is invalid; SplitMix64 cannot produce four
            // zero outputs in a row, but guard anyway
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn uniform_f64_in_unit_interval_with_sane_mean() {
        let mut r = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = r.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn gen_range_covers_and_respects_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = r.gen_range(0..10usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }

    #[test]
    fn unsized_rng_callable_through_autoref() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen_range(0.0..1.0)
        }
        let mut r = StdRng::seed_from_u64(1);
        let x = draw(&mut r);
        assert!((0.0..1.0).contains(&x));
    }
}
