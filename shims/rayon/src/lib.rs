//! Offline stand-in for the subset of the `rayon` API the workspace uses:
//! `(0..n).into_par_iter().map(f).collect::<Vec<_>>()` plus
//! [`ThreadPoolBuilder`]/[`ThreadPool::install`].
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this shim (see `shims/` in the repository root). Work is
//! executed on real OS threads via `std::thread::scope`: the index space is
//! split into one contiguous chunk per worker and results are concatenated
//! in index order, so output ordering — and therefore every aggregate the
//! Monte-Carlo layers compute — is **bit-identical for any thread count**,
//! matching the guarantee the real rayon-based code relies on.
//!
//! Thread count resolution order: [`ThreadPool::install`] override, then
//! the `RAYON_NUM_THREADS` environment variable, then
//! `std::thread::available_parallelism()`.

use std::cell::Cell;

/// One-stop imports mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator};
}

thread_local! {
    static POOL_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

fn current_num_threads_inner() -> usize {
    if let Some(n) = POOL_OVERRIDE.with(|c| c.get()) {
        return n.max(1);
    }
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The number of worker threads a parallel iterator would use right now.
pub fn current_num_threads() -> usize {
    current_num_threads_inner()
}

/// An indexed parallel computation: a length plus a pure per-index job.
///
/// This is the shim's internal representation of a parallel iterator;
/// `map` stacks adapters on top of it lazily, `collect` drives it.
pub trait ParallelIterator: Sized + Sync {
    /// Element type produced per index.
    type Item: Send;

    /// Number of elements.
    fn pi_len(&self) -> usize;

    /// Produces the element at `i` (pure; called from worker threads).
    fn pi_get(&self, i: usize) -> Self::Item;

    /// Produces the elements of the half-open index range `lo..hi`, in
    /// order. Adapters carrying per-chunk state ([`MapInit`]) override
    /// this; the default simply calls [`ParallelIterator::pi_get`] per
    /// index. The driver hands each worker thread exactly one contiguous
    /// chunk, so an override sees every index of its chunk in one call.
    fn pi_chunk(&self, lo: usize, hi: usize) -> Vec<Self::Item> {
        (lo..hi).map(|i| self.pi_get(i)).collect()
    }

    /// Maps each element through `f` (lazy, like rayon's).
    fn map<T, F>(self, f: F) -> Map<Self, F>
    where
        T: Send,
        F: Fn(Self::Item) -> T + Sync,
    {
        Map { base: self, f }
    }

    /// Maps each element through `f` with access to a per-chunk scratch
    /// value created by `init` — the shim's equivalent of rayon's
    /// `map_init`. Real rayon re-creates the scratch per work-stealing
    /// split at unpredictable boundaries, so (exactly as with rayon)
    /// `f`'s output for an element must not depend on which elements
    /// shared its scratch: the scratch is a reusable *resource* (an
    /// engine, a buffer), never an accumulator. Under that contract the
    /// collected output is bit-identical for any thread count.
    fn map_init<INIT, T, R, F>(self, init: INIT, f: F) -> MapInit<Self, INIT, F>
    where
        INIT: Fn() -> T + Sync,
        R: Send,
        F: Fn(&mut T, Self::Item) -> R + Sync,
    {
        MapInit {
            base: self,
            init,
            f,
        }
    }

    /// Executes the pipeline and collects into `C` in index order.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter(self)
    }
}

/// Conversion into a parallel iterator (mirrors rayon's trait of the same
/// name).
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Concrete iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Builds the parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// Parallel iterator over a contiguous integer range.
pub struct RangePar<T> {
    start: T,
    len: usize,
}

macro_rules! impl_range_par {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for core::ops::Range<$t> {
            type Item = $t;
            type Iter = RangePar<$t>;
            fn into_par_iter(self) -> RangePar<$t> {
                let len = if self.end > self.start {
                    (self.end - self.start) as usize
                } else {
                    0
                };
                RangePar { start: self.start, len }
            }
        }
        impl ParallelIterator for RangePar<$t> {
            type Item = $t;
            fn pi_len(&self) -> usize {
                self.len
            }
            fn pi_get(&self, i: usize) -> $t {
                self.start + i as $t
            }
        }
    )*};
}

impl_range_par!(usize, u64, u32, i64, i32);

/// Lazy `map` adapter.
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, F, T> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    T: Send,
    F: Fn(P::Item) -> T + Sync,
{
    type Item = T;

    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }

    fn pi_get(&self, i: usize) -> T {
        (self.f)(self.base.pi_get(i))
    }

    fn pi_chunk(&self, lo: usize, hi: usize) -> Vec<T> {
        self.base
            .pi_chunk(lo, hi)
            .into_iter()
            .map(&self.f)
            .collect()
    }
}

/// Lazy `map_init` adapter: like [`Map`], plus a per-chunk scratch value.
pub struct MapInit<P, INIT, F> {
    base: P,
    init: INIT,
    f: F,
}

impl<P, INIT, T, R, F> ParallelIterator for MapInit<P, INIT, F>
where
    P: ParallelIterator,
    INIT: Fn() -> T + Sync,
    R: Send,
    F: Fn(&mut T, P::Item) -> R + Sync,
{
    type Item = R;

    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }

    fn pi_get(&self, i: usize) -> R {
        // single-element fallback: fresh scratch per element — valid (if
        // slower) under the map_init contract
        let mut scratch = (self.init)();
        (self.f)(&mut scratch, self.base.pi_get(i))
    }

    fn pi_chunk(&self, lo: usize, hi: usize) -> Vec<R> {
        let mut scratch = (self.init)();
        (lo..hi)
            .map(|i| (self.f)(&mut scratch, self.base.pi_get(i)))
            .collect()
    }
}

/// Collection targets for `ParallelIterator::collect`.
pub trait FromParallelIterator<T: Send>: Sized {
    /// Drives the iterator and gathers results in index order.
    fn from_par_iter<P: ParallelIterator<Item = T>>(par: P) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<P: ParallelIterator<Item = T>>(par: P) -> Self {
        drive(&par)
    }
}

/// Splits `0..len` into one contiguous chunk per worker, runs the chunks on
/// scoped threads, and concatenates the per-chunk vectors in chunk order.
fn drive<P: ParallelIterator>(par: &P) -> Vec<P::Item> {
    let len = par.pi_len();
    if len == 0 {
        return Vec::new();
    }
    let workers = current_num_threads_inner().min(len);
    if workers <= 1 {
        return par.pi_chunk(0, len);
    }
    let chunk = len.div_ceil(workers);
    let mut parts: Vec<Vec<P::Item>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let lo = w * chunk;
            let hi = ((w + 1) * chunk).min(len);
            if lo >= hi {
                break;
            }
            handles.push(scope.spawn(move || par.pi_chunk(lo, hi)));
        }
        for h in handles {
            parts.push(h.join().expect("parallel worker panicked"));
        }
    });
    let mut out = Vec::with_capacity(len);
    for p in parts {
        out.extend(p);
    }
    out
}

/// Error type returned by [`ThreadPoolBuilder::build`] (never constructed
/// by the shim; kept for API compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Fresh builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fixes the worker count (`0` means "use the default").
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A scoped thread-count override mirroring `rayon::ThreadPool`.
///
/// [`ThreadPool::install`] runs a closure during which parallel iterators
/// started from this thread use the pool's worker count.
pub struct ThreadPool {
    num_threads: Option<usize>,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count in effect.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let prev = POOL_OVERRIDE.with(|c| c.replace(self.num_threads));
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_OVERRIDE.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(prev);
        op()
    }

    /// This pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads.unwrap_or_else(current_num_threads_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_index_order() {
        let v: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v.len(), 1000);
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i * 2);
        }
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let run = |threads: usize| -> Vec<u64> {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            pool.install(|| {
                (0..257u64)
                    .into_par_iter()
                    .map(|i| i.wrapping_mul(0x9E37))
                    .collect()
            })
        };
        assert_eq!(run(1), run(4));
        assert_eq!(run(2), run(7));
    }

    #[test]
    fn map_init_preserves_index_order_and_reuses_scratch() {
        // scratch counts how many elements it served; outputs must not
        // depend on it (the map_init contract), but reuse must happen
        use std::sync::atomic::{AtomicUsize, Ordering};
        static INITS: AtomicUsize = AtomicUsize::new(0);
        INITS.store(0, Ordering::SeqCst);
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let v: Vec<u64> = pool.install(|| {
            (0..300u64)
                .into_par_iter()
                .map_init(
                    || {
                        INITS.fetch_add(1, Ordering::SeqCst);
                        Vec::<u64>::with_capacity(8) // a reusable buffer
                    },
                    |buf, i| {
                        buf.clear();
                        buf.push(i * 3);
                        buf[0]
                    },
                )
                .collect()
        });
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i as u64 * 3);
        }
        // one scratch per worker chunk, not per element
        assert_eq!(INITS.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn map_init_identical_across_thread_counts() {
        let run = |threads: usize| -> Vec<u64> {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            pool.install(|| {
                (0..257u64)
                    .into_par_iter()
                    .map_init(|| 0u64, |_, i| i.wrapping_mul(0x9E37))
                    .collect()
            })
        };
        assert_eq!(run(1), run(4));
        assert_eq!(run(2), run(7));
    }

    #[test]
    fn empty_range_collects_empty() {
        let v: Vec<usize> = (5..5usize).into_par_iter().map(|i| i).collect();
        assert!(v.is_empty());
    }

    #[test]
    fn install_restores_on_exit() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let before = current_num_threads();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
        assert_eq!(current_num_threads(), before);
    }
}
