//! Cross-crate validation: the closed-form strategy models (gridstrat-core)
//! against full Monte-Carlo execution on the discrete-event grid
//! (gridstrat-sim), for every strategy and several weekly laws.
//!
//! This is the reproduction's keystone: the paper derives eqs. 1–6
//! analytically and never executes the protocols; here each formula must
//! survive contact with a simulated infrastructure.

use gridstrat::core::latency::ParametricModel;
use gridstrat::prelude::*;

fn week(rho: f64) -> WeekModel {
    WeekModel::calibrate("itest", 500.0, 650.0, rho, 150.0, 10_000.0).unwrap()
}

/// Parametric twin of the oracle's sampling law.
fn analytic_model(w: &WeekModel) -> ParametricModel<Shifted<LogNormal>> {
    ParametricModel::new(w.body(), w.rho, w.threshold_s).unwrap()
}

fn cfg(trials: usize) -> MonteCarloConfig {
    MonteCarloConfig {
        trials,
        seed: 0x17E5,
    }
}

#[test]
fn eq1_single_resubmission_expectation() {
    for rho in [0.05, 0.2] {
        let w = week(rho);
        let m = analytic_model(&w);
        for t_inf in [500.0, 900.0] {
            let analytic = SingleResubmission::expectation(&m, t_inf);
            let mc =
                StrategyExecutor::new(w.clone(), cfg(5_000)).run(StrategyParams::Single { t_inf });
            let z = (mc.mean_j - analytic).abs() / mc.stderr_j;
            assert!(
                z < 4.5,
                "eq.1 mismatch at rho={rho}, t∞={t_inf}: MC {} vs analytic {analytic} (z={z})",
                mc.mean_j
            );
        }
    }
}

#[test]
fn eq2_single_resubmission_sigma() {
    let w = week(0.15);
    let m = analytic_model(&w);
    let t_inf = 700.0;
    let analytic = SingleResubmission::std_dev(&m, t_inf);
    let mc = StrategyExecutor::new(w, cfg(12_000)).run(StrategyParams::Single { t_inf });
    assert!(
        (mc.std_j - analytic).abs() / analytic < 0.05,
        "eq.2 mismatch: MC σ {} vs analytic {analytic}",
        mc.std_j
    );
}

#[test]
fn eq3_multiple_submission_expectation() {
    let w = week(0.12);
    let m = analytic_model(&w);
    for b in [2u32, 5] {
        let t_inf = 800.0;
        let analytic = MultipleSubmission::expectation(&m, b, t_inf);
        let mc =
            StrategyExecutor::new(w.clone(), cfg(5_000)).run(StrategyParams::Multiple { b, t_inf });
        let z = (mc.mean_j - analytic).abs() / mc.stderr_j;
        assert!(
            z < 4.5,
            "eq.3 mismatch at b={b}: MC {} vs analytic {analytic} (z={z})",
            mc.mean_j
        );
        // the protocol keeps exactly b copies in flight
        assert!((mc.mean_parallel - b as f64).abs() < 0.02);
    }
}

#[test]
fn eq4_multiple_submission_sigma() {
    let w = week(0.12);
    let m = analytic_model(&w);
    let (b, t_inf) = (3u32, 800.0);
    let analytic = MultipleSubmission::std_dev(&m, b, t_inf);
    let mc = StrategyExecutor::new(w, cfg(12_000)).run(StrategyParams::Multiple { b, t_inf });
    assert!(
        (mc.std_j - analytic).abs() / analytic < 0.06,
        "eq.4 mismatch: MC σ {} vs analytic {analytic}",
        mc.std_j
    );
}

#[test]
fn eq5_delayed_resubmission_expectation_and_sigma() {
    let w = week(0.12);
    let m = analytic_model(&w);
    for (t0, t_inf) in [(400.0, 550.0), (300.0, 600.0), (500.0, 500.0)] {
        let analytic = DelayedResubmission::expectation(&m, t0, t_inf);
        let (_, sigma) = DelayedResubmission::moments(&m, t0, t_inf);
        let mc =
            StrategyExecutor::new(w.clone(), cfg(8_000)).run(StrategyParams::Delayed { t0, t_inf });
        let z = (mc.mean_j - analytic).abs() / mc.stderr_j;
        assert!(
            z < 4.5,
            "eq.5 mismatch at ({t0},{t_inf}): MC {} vs analytic {analytic} (z={z})",
            mc.mean_j
        );
        assert!(
            (mc.std_j - sigma).abs() / sigma < 0.06,
            "eq.5 σ mismatch at ({t0},{t_inf}): MC {} vs analytic {sigma}",
            mc.std_j
        );
    }
}

#[test]
fn n_parallel_realised_vs_convention() {
    // E[N_//(J)] from execution vs the paper's N_//(E_J) convention: close
    // on realistic parameters, and both inside [1, 2)
    let w = week(0.12);
    let m = analytic_model(&w);
    let (t0, t_inf) = (350.0, 550.0);
    let convention = DelayedResubmission::evaluate(&m, t0, t_inf).n_parallel;
    let mc = StrategyExecutor::new(w, cfg(6_000)).run(StrategyParams::Delayed { t0, t_inf });
    assert!((1.0..2.0).contains(&convention));
    assert!((1.0..2.0).contains(&mc.mean_parallel));
    assert!(
        (mc.mean_parallel - convention).abs() < 0.2,
        "realised {} vs convention {convention}",
        mc.mean_parallel
    );
}

#[test]
fn submission_counts_match_geometric_model() {
    // every strategy's submission count is b × (geometric #rounds)
    let w = week(0.2);
    let m = analytic_model(&w);
    let t_inf = 700.0;
    let f_single = m.defective_cdf(t_inf);
    let mc = StrategyExecutor::new(w.clone(), cfg(6_000)).run(StrategyParams::Single { t_inf });
    assert!(
        (mc.mean_submissions - 1.0 / f_single).abs() / (1.0 / f_single) < 0.05,
        "single submissions {} vs 1/F {}",
        mc.mean_submissions,
        1.0 / f_single
    );

    let b = 4u32;
    let g = MultipleSubmission::collection_cdf(&m, b, t_inf);
    let mc = StrategyExecutor::new(w, cfg(6_000)).run(StrategyParams::Multiple { b, t_inf });
    let want = b as f64 / g;
    assert!(
        (mc.mean_submissions - want).abs() / want < 0.05,
        "multiple submissions {} vs b/G {want}",
        mc.mean_submissions
    );
}

#[test]
fn empirical_and_parametric_models_agree_on_strategies() {
    // fit an empirical model from a large synthetic trace of the same law;
    // all strategy expectations must agree with the parametric twin
    let w = week(0.1);
    let trace = w.generate(20_000, 0xA11CE);
    let emp = EmpiricalModel::from_trace(&trace).unwrap();
    let par = analytic_model(&w);
    let cases: Vec<(f64, f64)> = vec![(600.0, f64::NAN)];
    let _ = cases; // single point below; delayed pair next
    let es = SingleResubmission::expectation(&emp, 600.0);
    let ps = SingleResubmission::expectation(&par, 600.0);
    assert!((es - ps).abs() / ps < 0.05, "single: emp {es} vs par {ps}");
    let em = MultipleSubmission::expectation(&emp, 4, 800.0);
    let pm = MultipleSubmission::expectation(&par, 4, 800.0);
    assert!(
        (em - pm).abs() / pm < 0.07,
        "multiple: emp {em} vs par {pm}"
    );
    let ed = DelayedResubmission::expectation(&emp, 350.0, 550.0);
    let pd = DelayedResubmission::expectation(&par, 350.0, 550.0);
    assert!((ed - pd).abs() / pd < 0.05, "delayed: emp {ed} vs par {pd}");
}
