//! Integration tests for the library's extensions beyond the paper:
//! generalized delayed submission, batch makespans, hazard diagnosis,
//! bootstrap uncertainty, non-stationary workloads and trace resampling.

use gridstrat::prelude::*;

const SEED: u64 = 0xE6EE;

#[test]
fn generalized_delayed_interpolates_between_known_strategies() {
    let trace = WeekId::W2006Ix.generate(SEED);
    let model = EmpiricalModel::from_trace(&trace).unwrap();
    let (t0, t_inf) = (350.0, 520.0);
    // b=1 is the paper's delayed strategy
    let d1 = DelayedResubmission::expectation_with_copies(&model, 1, t0, t_inf);
    let paper = DelayedResubmission::expectation(&model, t0, t_inf);
    assert!((d1 - paper).abs() < 1e-9);
    // larger b approaches (and is bounded below by) burst submission with
    // the same timeout: the echelon at 0 is exactly a b-burst, later
    // echelons only help
    for b in [2u32, 3, 5] {
        let db = DelayedResubmission::expectation_with_copies(&model, b, t0, t_inf);
        let burst = MultipleSubmission::expectation(&model, b, t_inf);
        assert!(
            db <= burst + 1e-9,
            "b={b}: delayed-multiple {db} vs burst {burst}"
        );
        assert!(db < d1, "b={b} must beat b=1");
    }
}

#[test]
fn generalized_delayed_monte_carlo_agreement_on_resampled_trace() {
    let trace = WeekId::W2007_52.generate(SEED);
    let model = EmpiricalModel::from_trace(&trace).unwrap();
    let (b, t0, t_inf) = (2u32, 380.0, 560.0);
    let analytic = DelayedResubmission::expectation_with_copies(&model, b, t0, t_inf);
    let mc = StrategyExecutor::from_trace(
        &trace,
        MonteCarloConfig {
            trials: 8_000,
            seed: 7,
        },
    )
    .run(StrategyParams::DelayedMultiple { b, t0, t_inf });
    let z = (mc.mean_j - analytic).abs() / mc.stderr_j;
    assert!(z < 4.0, "MC {} vs analytic {analytic} (z={z})", mc.mean_j);
}

#[test]
fn batch_makespan_orders_strategies_like_their_tails() {
    let trace = WeekId::W2007_51.generate(SEED);
    let ecdf = trace.ecdf().unwrap();
    let model = EmpiricalModel::from_trace(&trace).unwrap();
    let single_t = SingleResubmission::optimize(&model).timeout;
    let multi_t = MultipleSubmission::optimize(&model, 3).timeout;

    let s = JSampler::new(&ecdf, StrategyParams::Single { t_inf: single_t });
    let m = JSampler::new(
        &ecdf,
        StrategyParams::Multiple {
            b: 3,
            t_inf: multi_t,
        },
    );
    let bs = batch_outcome(&s, 300, 200, 11);
    let bm = batch_outcome(&m, 300, 200, 11);
    assert!(bm.mean_makespan < bs.mean_makespan);
    assert!(bm.p95_makespan < bs.p95_makespan);
    // multiple's makespan advantage exceeds its mean advantage
    assert!(bs.mean_makespan / bm.mean_makespan > bs.mean_latency / bm.mean_latency);
}

#[test]
fn hazard_diagnosis_matches_strategy_value() {
    // all calibrated weeks are decreasing-hazard with outliers:
    // resubmission pays on every one — consistent with Table 1's E_J wins
    for week in [WeekId::W2006Ix, WeekId::W2007_37, WeekId::W2008_03] {
        let ecdf = week.generate(SEED).ecdf().unwrap();
        let profile = HazardProfile::from_ecdf(&ecdf, 10);
        assert!(profile.resubmission_pays(), "{week}");
        assert_eq!(profile.trend(0.25), HazardTrend::Decreasing, "{week}");
    }
}

#[test]
fn bootstrap_ci_brackets_the_point_estimate() {
    let trace = WeekId::W2007_52.generate(SEED);
    let raw: Vec<f64> = trace.records.iter().map(|r| r.latency_s).collect();
    let thr = trace.threshold_s;
    let ci = bootstrap_ci(
        &raw,
        |xs| match EmpiricalModel::from_samples(xs, thr) {
            Ok(m) => SingleResubmission::optimize(&m).expectation,
            Err(_) => f64::INFINITY,
        },
        150,
        0.95,
        3,
    );
    assert!(ci.lo <= ci.estimate && ci.estimate <= ci.hi);
    // ~900 heavy-tailed probes: expect a non-trivial but bounded interval
    assert!(ci.relative_halfwidth() > 0.01 && ci.relative_halfwidth() < 0.30);
}

#[test]
fn diurnal_traces_remain_tunable() {
    let base = WeekId::W2007_51.model();
    let diurnal = DiurnalModel::new(base, 0.5, 86_400.0).unwrap();
    let trace = diurnal.generate(4_000, SEED);
    let model = EmpiricalModel::from_trace(&trace).unwrap();
    let single = SingleResubmission::optimize(&model);
    assert!(single.expectation.is_finite());
    // the stationarity-violating trace still yields a model on which the
    // delayed strategy behaves sanely
    let delayed = DelayedResubmission::optimize(&model);
    assert!(delayed.expectation <= single.expectation + 1e-9);
}

#[test]
fn resample_mode_requires_valid_traces() {
    use gridstrat::sim::GridConfig;
    // all-censored resample configs must be rejected at construction
    let cfg = GridConfig::resample(vec![10_000.0, 12_000.0], 10_000.0);
    assert!(GridSimulation::new(cfg, 1).is_err());
    let cfg = GridConfig::resample(vec![], 10_000.0);
    assert!(GridSimulation::new(cfg, 1).is_err());
    let cfg = GridConfig::resample(vec![100.0, 10_000.0], 10_000.0);
    assert!(GridSimulation::new(cfg, 1).is_ok());
}
