//! Reproduction-shape tests: the qualitative claims of the paper's
//! evaluation must hold on the synthetic weeks — who wins, by roughly what
//! factor, and where the crossovers fall.

use gridstrat::prelude::*;

const SEED: u64 = 0xE6EE;

fn model(week: WeekId) -> EmpiricalModel {
    EmpiricalModel::from_trace(&week.generate(SEED)).expect("valid trace")
}

#[test]
fn table1_shape_resubmission_tames_outliers() {
    // E_J with optimal single resubmission stays within ~1.7× of the
    // outlier-free body mean on every week, while the censored mean (what a
    // user without any strategy would suffer) is 2.5–9× larger.
    for week in WeekId::ALL {
        let trace = week.generate(SEED);
        let m = EmpiricalModel::from_trace(&trace).unwrap();
        let opt = SingleResubmission::optimize(&m);
        let body = trace.body_mean();
        let censored = trace.censored_mean_lower_bound();
        assert!(
            opt.expectation < 1.7 * body,
            "{week}: E_J {} vs body mean {body}",
            opt.expectation
        );
        assert!(
            censored > 1.8 * opt.expectation,
            "{week}: censored mean {censored} should dwarf E_J {}",
            opt.expectation
        );
    }
}

#[test]
fn table1_shape_sigma_mostly_drops() {
    // Table 1: σ_J < σ_R for 12 of 13 weeks in the paper (one exception,
    // 2008-01, at +7%). Require: strict majority of weeks improve and the
    // average change is clearly negative.
    let mut drops = 0;
    let mut rel_sum = 0.0;
    for week in WeekId::ALL {
        let trace = week.generate(SEED);
        let m = EmpiricalModel::from_trace(&trace).unwrap();
        let opt = SingleResubmission::optimize(&m);
        let rel = (opt.std_dev - trace.body_std()) / trace.body_std();
        rel_sum += rel;
        if rel < 0.0 {
            drops += 1;
        }
    }
    assert!(drops >= 8, "only {drops} of 13 weeks reduce σ");
    // per-week sample σ_R is noisy at n ≈ 600 body draws (heavy 4th moment),
    // so the average improvement is asserted directionally, not at the
    // paper's −31…−78% magnitude
    assert!(
        rel_sum / 13.0 < -0.02,
        "mean Δσ {}% not negative",
        rel_sum / 13.0 * 100.0
    );
}

#[test]
fn table2_shape_diminishing_returns_in_b() {
    let m = model(WeekId::W2006Ix);
    let series = MultipleSubmission::optimal_series(&m, &[1, 2, 3, 5, 10, 20]);
    // strictly decreasing
    for w in series.windows(2) {
        assert!(w[1].1.expectation < w[0].1.expectation);
    }
    let e = |i: usize| series[i].1.expectation;
    // paper: b=2 ⇒ −33%, b=5 ⇒ −51%, b=10 ⇒ −59%, b=20 ⇒ −63%
    let drop = |i: usize| 1.0 - e(i) / e(0);
    assert!((0.20..0.50).contains(&drop(1)), "b=2 drop {}", drop(1));
    assert!((0.40..0.70).contains(&drop(3)), "b=5 drop {}", drop(3));
    assert!((0.50..0.75).contains(&drop(4)), "b=10 drop {}", drop(4));
    // diminishing: each doubling of b buys less
    assert!(e(0) - e(1) > e(1) - e(3));
    assert!(e(1) - e(3) > e(3) - e(4));
    // σ_J also collapses with b (paper: 331 → 40 s from b=1 to 10)
    assert!(series[4].1.std_dev < 0.3 * series[0].1.std_dev);
}

#[test]
fn figure3_shape_holds_for_every_week() {
    // monotone E_J decrease in b on all 13 datasets
    for week in WeekId::ALL {
        let m = model(week);
        let series = MultipleSubmission::optimal_series(&m, &[1, 2, 4, 8]);
        for w in series.windows(2) {
            assert!(
                w[1].1.expectation < w[0].1.expectation,
                "{week}: E_J not decreasing at b={}",
                w[1].0
            );
        }
    }
}

#[test]
fn section6_shape_delayed_sits_between_single_and_b2() {
    // paper §6: delayed optimum beats single resubmission but not b ≥ 2
    let m = model(WeekId::W2006Ix);
    let single = SingleResubmission::optimize(&m);
    let delayed = DelayedResubmission::optimize(&m);
    let multi2 = MultipleSubmission::optimize(&m, 2);
    assert!(delayed.expectation < single.expectation);
    assert!(multi2.expectation < delayed.expectation);
    // with fewer than 2 jobs in flight
    assert!(delayed.n_parallel < 2.0);
}

#[test]
fn table4_shape_delta_cost_crossover() {
    // multiple submission always costs > 1 and grows ~linearly; the delayed
    // strategy has a sub-unit ∆cost region (the paper's headline finding)
    let m = model(WeekId::W2006Ix);
    let multi = multiple_cost_profile(&m, &[2, 5, 10, 100]);
    assert!(multi[0].delta_cost > 1.0);
    for w in multi.windows(2) {
        assert!(w[1].delta_cost > w[0].delta_cost);
    }
    // roughly linear growth: ∆cost(100)/∆cost(10) within 2× of 10
    let ratio = multi[3].delta_cost / multi[2].delta_cost;
    assert!((5.0..20.0).contains(&ratio), "growth ratio {ratio}");

    let best = optimize_delayed_delta_cost(&m);
    assert!(
        best.delta_cost < 1.0,
        "no sub-unit ∆cost region: {}",
        best.delta_cost
    );
    assert!(
        best.delta_cost > 0.7,
        "suspiciously cheap: {}",
        best.delta_cost
    );
}

#[test]
fn table5_shape_majority_of_weeks_have_subunit_optimum() {
    // paper: 6 of 11 weeks + union have min ∆cost < 1; ours differ in
    // which, but a clear majority must, and none should dip below 0.7
    let mut subunit = 0;
    for week in [
        WeekId::W2007_51,
        WeekId::W2007_52,
        WeekId::W2008_01,
        WeekId::W2008_02,
        WeekId::W2008_03,
        WeekId::Union0708,
    ] {
        let m = model(week);
        let best = optimize_delayed_delta_cost(&m);
        assert!(best.delta_cost > 0.7, "{week}: ∆cost {}", best.delta_cost);
        if best.delta_cost < 1.0 {
            subunit += 1;
        }
    }
    assert!(subunit >= 4, "only {subunit} of 6 datasets have ∆cost < 1");
}

#[test]
fn table6_shape_transfer_penalties_stay_bounded() {
    // cross-week transfer: the paper reports ≤ 13% variation overall and
    // ≤ 6% against the previous week; allow 2× slack for synthetic traces
    let weeks: Vec<(String, EmpiricalModel, (f64, f64))> = [
        WeekId::W2007_51,
        WeekId::W2007_52,
        WeekId::W2007_53,
        WeekId::W2008_01,
    ]
    .into_iter()
    .map(|w| {
        let m = model(w);
        let best = optimize_delayed_delta_cost(&m);
        let pair = match best.params {
            StrategyParams::Delayed { t0, t_inf } => (t0, t_inf),
            _ => unreachable!(),
        };
        (w.name().to_string(), m, pair)
    })
    .collect();
    for rep in transfer_matrix(&weeks) {
        assert!(
            rep.max_diff_pct < 26.0,
            "{}: max transfer penalty {}%",
            rep.eval_week,
            rep.max_diff_pct
        );
        if let Some(p) = rep.prev_diff_pct {
            assert!(p < 15.0, "{}: prev-week penalty {}%", rep.eval_week, p);
        }
    }
}

#[test]
fn stability_shape_optimum_is_flat_within_5s() {
    // Table 5 right: ±5 s perturbations move ∆cost by ≤ 14% in the paper
    let m = model(WeekId::W2007_52);
    let single = SingleResubmission::optimize(&m);
    let best = optimize_delayed_delta_cost(&m);
    let (t0, ti) = match best.params {
        StrategyParams::Delayed { t0, t_inf } => (t0, t_inf),
        _ => unreachable!(),
    };
    let rep = stability_radius(&m, t0, ti, 5, single.expectation);
    assert!(
        rep.max_rel_diff_pct < 14.0,
        "instability {}%",
        rep.max_rel_diff_pct
    );
}
