//! End-to-end pipeline tests: simulated infrastructure → probe measurement
//! → trace archive → model fitting → strategy tuning → strategy execution,
//! exercising every crate boundary the way a deployed client would.

use gridstrat::prelude::*;
use gridstrat::stats::fit::select_body_model;
use gridstrat::workload::observatory::{parse_observatory, write_observatory};

#[test]
fn measure_archive_fit_tune_execute() {
    // 1. measure a stable pipeline grid
    let mut cfg = GridConfig::pipeline_default();
    cfg.sites.truncate(3);
    cfg.background = Some(gridstrat::sim::BackgroundLoadConfig {
        arrival_rate_per_s: 0.10,
        exec_mean_s: 1_200.0,
        exec_cv: 1.2,
    });
    cfg.faults.p_silent_loss = 0.06;
    let mut sim = GridSimulation::new(cfg, 0xE2E).unwrap();
    let mut harness = ProbeHarness::new("e2e-week", 800, 30, CENSOR_THRESHOLD_S);
    sim.run_controller(&mut harness);
    let trace = harness.into_trace();
    assert_eq!(trace.len(), 800);
    assert!(trace.outlier_ratio() > 0.02 && trace.outlier_ratio() < 0.35);

    // 2. archive round-trip (observatory text + JSON + CSV)
    let text = write_observatory(&trace);
    let parsed = parse_observatory(&text).unwrap();
    assert_eq!(parsed.len(), trace.len());
    let json = trace.to_json();
    let from_json = TraceSet::from_json(&json).unwrap();
    assert_eq!(from_json.len(), trace.len());
    let csv = trace.to_csv();
    let from_csv = TraceSet::from_csv("e2e-week", CENSOR_THRESHOLD_S, &csv).unwrap();
    assert_eq!(from_csv.len(), trace.len());

    // 3. fit: some family must describe the body sanely
    let reports = select_body_model(&parsed.body_latencies());
    assert!(!reports.is_empty());
    assert!(reports[0].ks < 0.2, "best-family KS {}", reports[0].ks);

    // 4. tune strategies on the measured model
    let model = EmpiricalModel::from_trace(&parsed).unwrap();
    let single = SingleResubmission::optimize(&model);
    assert!(single.timeout > 0.0 && single.timeout < CENSOR_THRESHOLD_S);
    let delayed = DelayedResubmission::optimize(&model);
    assert!(delayed.expectation <= single.expectation + 1e-9);

    // 5. execute the tuned single strategy against an oracle rebuilt from
    //    the measured trace statistics; realised mean must be in the same
    //    ballpark as the analytic prediction on the fitted model
    let week = WeekModel::calibrate(
        "e2e-week",
        parsed.body_mean(),
        parsed.body_std().max(20.0),
        parsed.outlier_ratio().min(0.5),
        parsed
            .body_latencies()
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min)
            * 0.9,
        CENSOR_THRESHOLD_S,
    )
    .unwrap();
    let mc = StrategyExecutor::new(
        week,
        MonteCarloConfig {
            trials: 3_000,
            seed: 5,
        },
    )
    .run(StrategyParams::Single {
        t_inf: single.timeout,
    });
    assert!(mc.completed_trials == 3_000);
    assert!(
        (mc.mean_j - single.expectation).abs() / single.expectation < 0.35,
        "tuned prediction {} vs realised {} diverge wildly",
        single.expectation,
        mc.mean_j
    );
}

#[test]
fn oracle_probe_harness_recovers_the_generating_law() {
    // closing the measurement loop in oracle mode: harness statistics must
    // match the week model that drives the simulation
    let week = WeekId::W2007_52;
    let target = week.targets();
    let mut sim = GridSimulation::new(GridConfig::oracle(week.model()), 0xCAFE).unwrap();
    let mut harness = ProbeHarness::new(week.name(), 5_000, 50, CENSOR_THRESHOLD_S);
    sim.run_controller(&mut harness);
    let trace = harness.into_trace();
    assert!(
        (trace.outlier_ratio() - target.rho).abs() < 0.03,
        "rho {} vs {}",
        trace.outlier_ratio(),
        target.rho
    );
    assert!(
        (trace.body_mean() - target.body_mean).abs() / target.body_mean < 0.10,
        "mean {} vs {}",
        trace.body_mean(),
        target.body_mean
    );
}

#[test]
fn degraded_grid_still_yields_usable_models() {
    // heavy faults: a quarter of submissions lost, frequent failures
    let mut cfg = GridConfig::pipeline_default();
    cfg.background = None;
    cfg.faults.p_silent_loss = 0.25;
    cfg.faults.p_transient_failure = 0.15;
    let mut sim = GridSimulation::new(cfg, 0xDEAD).unwrap();
    let mut harness = ProbeHarness::new("bad-week", 600, 20, CENSOR_THRESHOLD_S);
    sim.run_controller(&mut harness);
    let trace = harness.into_trace();
    // fault ratio ≈ 0.25 + 0.75·0.15 ≈ 0.36
    assert!(trace.outlier_ratio() > 0.25 && trace.outlier_ratio() < 0.5);
    let model = EmpiricalModel::from_trace(&trace).unwrap();
    let single = SingleResubmission::optimize(&model);
    // resubmission must still bound the expectation far below the censored mean
    assert!(single.expectation < 0.5 * trace.censored_mean_lower_bound());
}

#[test]
fn executor_determinism_is_thread_count_independent() {
    // run the same Monte-Carlo twice under different rayon pool sizes
    let week = WeekModel::calibrate("det", 400.0, 500.0, 0.1, 100.0, 1e4).unwrap();
    let spec = StrategyParams::Delayed {
        t0: 300.0,
        t_inf: 450.0,
    };
    let run = |threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        let week = week.clone();
        pool.install(move || {
            StrategyExecutor::new(
                week,
                MonteCarloConfig {
                    trials: 2_000,
                    seed: 9,
                },
            )
            .run(spec)
        })
    };
    let a = run(1);
    let b = run(4);
    assert_eq!(a.mean_j.to_bits(), b.mean_j.to_bits());
    assert_eq!(a.mean_parallel.to_bits(), b.mean_parallel.to_bits());
}
