//! Week-over-week strategy tuning — the paper's “practical implementation”
//! protocol (§7.2, Table 6).
//!
//! ```text
//! cargo run --release --example strategy_tuning
//! ```
//!
//! A production client cannot know this week's optimal `(t0, t∞)`; it can
//! only estimate parameters from *last* week's probes. This example walks
//! the 2007/2008 weeks chronologically: each week, tune the delayed
//! strategy's `∆cost` on the previous week's trace, apply it to the current
//! week, and compare with the (unknowable) in-week optimum.

use gridstrat::prelude::*;

fn main() {
    let seed = 0xE6EE;
    let weeks = WeekId::WEEKLY;

    println!(
        "{:<10} {:>14} {:>14} {:>10} {:>10} {:>8}",
        "week", "tuned-on-prev", "in-week opt", "E_J prev", "E_J opt", "penalty"
    );

    let mut tuned_pairs: Vec<(f64, f64)> = Vec::new();
    let mut penalties: Vec<f64> = Vec::new();

    for (i, week) in weeks.iter().enumerate() {
        let model = EmpiricalModel::from_trace(&week.generate(seed)).expect("valid trace");
        let single = SingleResubmission::optimize(&model);
        let own = optimize_delayed_delta_cost(&model);
        let (own_t0, own_tinf) = match own.params {
            StrategyParams::Delayed { t0, t_inf } => (t0, t_inf),
            _ => unreachable!("∆cost optimizer returns delayed parameters"),
        };
        tuned_pairs.push((own_t0, own_tinf));

        if i == 0 {
            println!(
                "{:<10} {:>14} {:>7.0},{:>5.0} {:>10} {:>9.0}s {:>8}",
                week.name(),
                "(first week)",
                own_t0,
                own_tinf,
                "-",
                own.expectation,
                "-"
            );
            continue;
        }

        // apply the PREVIOUS week's optimum to THIS week's model
        let (p_t0, p_tinf) = tuned_pairs[i - 1];
        let transferred = delayed_delta_cost_at(&model, p_t0, p_tinf, single.expectation);
        let penalty_pct = (transferred.delta_cost - own.delta_cost) / own.delta_cost * 100.0;
        penalties.push(penalty_pct);

        println!(
            "{:<10} {:>7.0},{:>5.0} {:>7.0},{:>5.0} {:>9.0}s {:>9.0}s {:>7.1}%",
            week.name(),
            p_t0,
            p_tinf,
            own_t0,
            own_tinf,
            transferred.expectation,
            own.expectation,
            penalty_pct,
        );
    }

    let mean = penalties.iter().sum::<f64>() / penalties.len() as f64;
    let max = penalties.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    println!(
        "\nusing last week's parameters costs {mean:.1}% in ∆cost on average \
         (worst week {max:.1}%) — the paper reports ≤ 6% against the previous \
         week, confirming the protocol is deployable."
    );
}
