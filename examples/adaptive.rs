//! Offline tuning vs online adaptation on a drifting grid.
//!
//! The paper tunes every strategy offline against one stationary weekly
//! law while observing (§1) that production workloads are high and
//! non-stationary. This example measures what that discipline costs when
//! the grid actually drifts, and how much an online-adapting strategy
//! claws back:
//!
//! 1. calibrate a paper-like week and tune a delayed-resubmission pair on
//!    it (the offline "tuned-once" optimum);
//! 2. run thousands of back-to-back tasks on a live grid whose queue wait
//!    and fault ratio swing ±80% over a diurnal cycle;
//! 3. run the same strategy wrapped in [`AdaptiveStrategy`]: every 5
//!    tasks it re-estimates the load factor from its own completions and
//!    re-tunes;
//! 4. score both against the instantaneous-oracle [`RegretFrontier`] —
//!    the expected latency an omniscient tuner would achieve at each
//!    task's launch instant;
//! 5. sweep (amplitude × retune period) and verify the whole experiment
//!    is bit-identical across thread counts.
//!
//! Run with `cargo run --release --example adaptive`.

use gridstrat::core::adaptive::{
    run_adaptive_sequence, run_fixed_sequence, AdaptiveConfig, AdaptiveStrategy, AdaptiveSweep,
    RegretFrontier,
};
use gridstrat::prelude::*;
use gridstrat::sim::Modulation;
use std::sync::Arc;

const SEED: u64 = 0x5EED;
const AMPLITUDE: f64 = 0.8; // acceptance bar: >= 0.5
const PERIOD_S: f64 = 86_400.0;
const N_TASKS: usize = 2_200;

fn main() {
    // 1. the offline calibration: a paper-shaped week (heavy log-normal
    //    body, elevated fault ratio) and the stationary-optimal delayed pair
    let base = WeekModel::calibrate("drift-week", 570.0, 886.0, 0.20, 60.0, 10_000.0)
        .expect("valid calibration");
    let prior = ParametricModel::new(base.body(), base.rho, base.threshold_s).unwrap();
    let tuned_once = StrategyParams::Delayed {
        t0: 400.0,
        t_inf: 560.0,
    }
    .tune(&prior);
    println!("stationary prior    : {}", base.name);
    println!(
        "tuned-once (offline): {tuned_once:?}  E_J on prior = {:.1} s",
        tuned_once.expected_j(&prior)
    );

    // 2. the live grid drifts: queue wait and fault ratio swing by ±80%
    //    over a daily cycle (faults track congestion)
    let modulation: Arc<dyn Modulation> = Arc::new(
        DiurnalModel::new(base.clone(), AMPLITUDE, PERIOD_S).expect("valid diurnal parameters"),
    );
    let mut grid = GridConfig::oracle(base.clone());
    grid.modulation = Some(Arc::clone(&modulation));
    let grid = Arc::new(grid);

    // 3. tuned-once vs online-retuned, same seed, same drifting grid
    let fixed = run_fixed_sequence(&grid, &tuned_once, N_TASKS, SEED);
    let adaptive = run_adaptive_sequence(
        &grid,
        &AdaptiveStrategy::new(tuned_once, AdaptiveConfig::default()),
        Some(&base),
        N_TASKS,
        SEED,
    );

    // 4. regret vs the instantaneous oracle optimum
    let mut frontier = RegretFrontier::new(base.clone(), Arc::clone(&modulation), tuned_once);
    let r_fixed = frontier.mean_regret(&fixed);
    let r_adaptive = frontier.mean_regret(&adaptive);
    println!("\n{N_TASKS} tasks under diurnal drift (amplitude {AMPLITUDE}, period {PERIOD_S} s):");
    println!(
        "  tuned-once    : mean J = {:7.1} s   mean regret = {:7.2} s   {:.2} submissions/task",
        fixed.mean_latency(),
        r_fixed,
        fixed.submissions_per_task()
    );
    println!(
        "  online-retuned: mean J = {:7.1} s   mean regret = {:7.2} s   {:.2} submissions/task   ({} retunes)",
        adaptive.mean_latency(),
        r_adaptive,
        adaptive.submissions_per_task(),
        adaptive.retunes
    );
    assert!(
        r_adaptive < r_fixed,
        "online adaptation must achieve strictly lower mean regret \
         ({r_adaptive} vs {r_fixed})"
    );
    println!(
        "  => adaptation recovers {:.1} s of regret per task ({:.1}% of mean latency)",
        r_fixed - r_adaptive,
        100.0 * (r_fixed - r_adaptive) / fixed.mean_latency()
    );

    // 5. the (amplitude × retune period) sweep, bit-identical across
    //    thread counts
    let sweep = AdaptiveSweep {
        base,
        period_s: PERIOD_S,
        amplitudes: vec![0.5, 0.8],
        retune_periods: vec![5, 20],
        family: StrategyParams::Delayed {
            t0: 400.0,
            t_inf: 560.0,
        },
        adaptive: AdaptiveConfig::default(),
        n_tasks: 600,
        seed: SEED,
    };
    let run_with = |threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("thread pool");
        pool.install(|| sweep.run())
    };
    let cells = run_with(1);
    let wide = run_with(4);
    for (a, b) in cells.iter().zip(&wide) {
        assert_eq!(
            a.fixed.mean_regret.to_bits(),
            b.fixed.mean_regret.to_bits(),
            "sweep must be bit-identical across thread counts"
        );
        assert_eq!(
            a.adaptive.mean_regret.to_bits(),
            b.adaptive.mean_regret.to_bits()
        );
    }
    println!(
        "\namplitude × retune-period sweep ({} tasks/cell, thread-count invariant):",
        600
    );
    println!("  amplitude  retune-every   regret(fixed)  regret(adaptive)  retunes");
    for c in &cells {
        println!(
            "      {:.2}        {:5}        {:8.2}        {:8.2}       {:5}",
            c.amplitude, c.retune_every, c.fixed.mean_regret, c.adaptive.mean_regret, c.retunes
        );
    }
    println!("\nall assertions passed: adaptation strictly beats offline tuning under drift.");
}
