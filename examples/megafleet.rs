//! Megafleet: a 100 000-user community on a sharded simulated farm.
//!
//! ```text
//! cargo run --release --example megafleet
//! ```
//!
//! The paper studies one user's submission strategy on an infrastructure
//! shared by thousands (EGEE's biomed VO); the cluster-workload literature
//! (Medernach; Guazzone — see PAPERS.md) shows fairness and utilisation
//! regimes only emerge at large populations. This example runs a
//! community **three orders of magnitude** past `ecosystem.rs`'s 40
//! users:
//!
//! * the population is partitioned across engine shards
//!   ([`ShardedFleet`]), each a miniature of the community with its
//!   proportional slice of the farm's worker slots;
//! * shards exchange load once per simulated hour: each receives the
//!   others' busy fraction as injected background work, so one hot
//!   partition still costs everyone latency;
//! * metrics are bounded-memory streams — one latency [`Summary`] per
//!   user, one windowed ECDF per strategy group — `O(users + groups)`,
//!   never a per-task vector (at this scale a naive `Vec<f64>` per user
//!   would be the largest allocation in the process);
//! * everything is deterministic: a fixed seed reproduces the run
//!   bit-for-bit at any thread count, and `shards = 1` (at feasible
//!   sizes) is bit-identical to the plain `FleetController`.

use gridstrat::prelude::*;
use std::time::Instant;

const USERS: usize = 100_000;
const SHARDS: usize = 8;
const SLOTS: usize = 4_000;
// the whole population lands at t = 0, so the back of the queue waits
// ~USERS x exec / SLOTS = 15 000 s; timeouts must be sized for that
// regime or the community churn-cancels forever
const T_INF: f64 = 100_000.0;

fn main() {
    let mut cfg = FleetConfig::small_farm(SLOTS);
    cfg.tasks_per_user = 1;
    cfg.replications = 1;
    cfg.seed = 0x5CA1E;
    cfg.group_window = 8_192;

    let mix = StrategyMix::new(
        "mostly-single",
        vec![
            StrategyGroup::new(StrategyParams::Single { t_inf: T_INF }, 0.85),
            StrategyGroup::new(StrategyParams::Multiple { b: 2, t_inf: T_INF }, 0.15),
        ],
    );

    println!(
        "community of {USERS} users ({} single / {} burst-2) x {} task on a \
         {SLOTS}-slot farm\nsharded over {SHARDS} engines (~{} users, ~{} slots each), \
         1 h coupling epochs\n",
        mix.counts(USERS)[0],
        mix.counts(USERS)[1],
        cfg.tasks_per_user,
        USERS / SHARDS,
        SLOTS / SHARDS,
    );

    let sharded = ShardedFleet::new(cfg, mix, USERS, SHARDS, GridScenario::baseline());
    let t0 = Instant::now();
    let run = sharded.run_replication(0);
    let wall = t0.elapsed().as_secs_f64();

    let cell = FleetCellOutcome::aggregate(
        "mostly-single",
        USERS,
        "baseline",
        std::slice::from_ref(&run),
    );
    println!(
        "completed {}/{} tasks in {:.2} s wall ({:.0} tasks/s) — simulated \
         makespan {:.0} s",
        cell.tasks_completed,
        cell.tasks_total,
        wall,
        cell.tasks_completed as f64 / wall,
        cell.makespan_s,
    );
    println!(
        "mean latency {:.0} s | fairness {:.3} | slot waste {:.1}% | \
         utilisation {:.1}% | wasted starts {}\n",
        cell.mean_latency,
        cell.fairness,
        cell.slot_waste * 100.0,
        cell.utilization * 100.0,
        cell.wasted_starts,
    );

    println!("per-strategy view (windowed quantiles over the last 8 192 tasks/group):");
    for g in &cell.groups {
        println!(
            "  group {}: {:<38} users {:>6}  mean {:>6.0}s  p50 {:>6.0}s  p95 {:>6.0}s",
            g.group,
            format!("{:?}", g.strategy),
            g.users,
            g.latency.mean(),
            g.quantile(0.50),
            g.quantile(0.95),
        );
    }

    // the sharded runs are deterministic: same seed, same history, to the
    // bit — the property every recorded community experiment relies on
    let again = sharded.run_replication(0);
    assert_eq!(
        run.mean_latency().to_bits(),
        again.mean_latency().to_bits(),
        "sharded megafleet must be deterministic"
    );
    assert_eq!(run.client_submitted, again.client_submitted);
    assert_eq!(
        cell.tasks_completed, cell.tasks_total,
        "every task completes"
    );

    println!(
        "\nreading: even with patient timeouts, the bursting 15% inflates the\n\
         queue everyone shares — {} redundant starts burned slots that the\n\
         single-resubmission majority was waiting for. At this scale the\n\
         effect is structural, not noise: exactly the administrators'\n\
         complaint the paper cites, now measurable at EGEE population sizes.",
        cell.wasted_starts,
    );
}
