//! A biomed-style application run: hundreds of jobs under each strategy.
//!
//! ```text
//! cargo run --release --example biomed_workflow
//! ```
//!
//! The paper's motivation (§1) is applications submitting *many* jobs — a
//! medical-imaging workflow on the biomed VO typically fans out hundreds of
//! independent tasks. This example executes such a batch against the
//! discrete-event grid (oracle mode, calibrated to week 2007-51) under the
//! three strategies in one batched [`ScenarioSweep`] pass and reports, per
//! strategy: mean per-task latency, the batch makespan proxy (slowest
//! task), and the submission overhead the grid has to absorb.

use gridstrat::prelude::*;

/// Number of tasks in the application batch (each Monte-Carlo trial is one
/// task — the executor's trials double as the workflow's fan-out).
const TASKS: usize = 400;

fn main() {
    let week = WeekId::W2007_51;
    println!(
        "application: {TASKS} independent tasks on an EGEE-like grid (week {}, ρ = {:.0}%)",
        week.name(),
        100.0 * week.targets().rho
    );

    // tune every strategy on the week's synthetic trace, like a client
    // wrapper would from last week's probes
    let trace = week.generate(0xE6EE);
    let fitted = EmpiricalModel::from_trace(&trace).expect("trace is non-degenerate");
    let single = SingleResubmission::optimize(&fitted);
    let multi3 = MultipleSubmission::optimize(&fitted, 3);
    let delayed = optimize_delayed_delta_cost(&fitted);
    let (d_t0, d_tinf) = match delayed.params {
        StrategyParams::Delayed { t0, t_inf } => (t0, t_inf),
        _ => unreachable!("∆cost optimizer returns delayed parameters"),
    };

    let specs: Vec<(&str, StrategyParams)> = vec![
        (
            "no strategy (wait forever)",
            StrategyParams::Single {
                t_inf: CENSOR_THRESHOLD_S,
            },
        ),
        (
            "single resubmission",
            StrategyParams::Single {
                t_inf: single.timeout,
            },
        ),
        (
            "multiple submission b=3",
            StrategyParams::Multiple {
                b: 3,
                t_inf: multi3.timeout,
            },
        ),
        (
            "delayed resubmission",
            StrategyParams::Delayed {
                t0: d_t0,
                t_inf: d_tinf,
            },
        ),
    ];

    println!(
        "\n{:<28} {:>10} {:>10} {:>12} {:>12}",
        "strategy", "mean J", "max J", "subs/task", "N_// (real)"
    );
    // one batched sweep pass executes all four strategies (cells share the
    // thread pool, so the whole table costs one StrategyExecutor run)
    let sweep = ScenarioSweep::over_strategies(
        specs.iter().map(|(_, spec)| *spec).collect(),
        week,
        MonteCarloConfig {
            trials: TASKS,
            seed: 0xB10,
        },
    );
    for ((name, _), cell) in specs.iter().zip(sweep.run()) {
        let est = cell.estimate;
        // `max J` across tasks is the batch's makespan bottleneck when all
        // tasks start together
        println!(
            "{:<28} {:>9.0}s {:>9.0}s {:>12.2} {:>12.2}",
            name,
            est.mean_j,
            est.mean_j + 3.0 * est.std_j, // 3σ proxy for the slowest task
            est.mean_submissions,
            est.mean_parallel,
        );
        if est.completed_trials < TASKS {
            println!(
                "  ! {} of {TASKS} tasks never started (lost jobs, no resubmission)",
                TASKS - est.completed_trials
            );
        }
    }

    println!(
        "\nreading: multiple submission minimises latency but multiplies grid load; \
         the delayed strategy keeps latency near the single optimum with ~1 job in \
         flight — the paper's ∆cost trade-off on a live batch."
    );

    // ---- batch makespan: where the variance reduction really pays -------
    // the batch finishes when its SLOWEST task starts, so the makespan is
    // a pure tail statistic of J — computed here with the fast analytic
    // J-sampler instead of the event simulator
    let ecdf = trace.ecdf().expect("valid trace");
    println!(
        "\nbatch makespan (latency part, {TASKS} tasks, 400 replications):\n{:<28} {:>12} {:>12}",
        "strategy", "mean", "p95"
    );
    for (name, spec) in [
        (
            "single resubmission",
            StrategyParams::Single {
                t_inf: single.timeout,
            },
        ),
        (
            "multiple submission b=3",
            StrategyParams::Multiple {
                b: 3,
                t_inf: multi3.timeout,
            },
        ),
        (
            "delayed resubmission",
            StrategyParams::Delayed {
                t0: d_t0,
                t_inf: d_tinf,
            },
        ),
    ] {
        let sampler = JSampler::new(&ecdf, spec);
        let batch = batch_outcome(&sampler, TASKS, 400, 0xBA7C);
        println!(
            "{:<28} {:>11.0}s {:>11.0}s",
            name, batch.mean_makespan, batch.p95_makespan
        );
    }
    println!(
        "\nthe makespan gap between strategies is far wider than the mean-latency \
         gap: collapsing σ_J (Table 2) is what makes many-task applications finish."
    );
}
