//! The full measurement pipeline: simulated grid → probe harness →
//! observatory log → model fitting → tuned timeouts.
//!
//! ```text
//! cargo run --release --example grid_observatory
//! ```
//!
//! The paper's data comes from probe jobs submitted to the real EGEE
//! infrastructure and archived Grid-Observatory-style (§3.2). This example
//! replays that methodology end to end against the *pipeline* simulator —
//! where latency emerges from match-making, queueing behind background load
//! and faults rather than from a closed-form law:
//!
//! 1. run the constant-probes-in-flight harness against a congested farm;
//! 2. archive the trace in the observatory text format and parse it back;
//! 3. fit candidate latency-body families (log-normal / Weibull /
//!    exponential / Pareto) by maximum likelihood and rank them;
//! 4. derive the strategy timeouts a client should use next week.

use gridstrat::core::latency::ParametricModel;
use gridstrat::prelude::*;
use gridstrat::stats::fit::{fit_outlier_ratio, select_body_model};
use gridstrat::workload::observatory::{parse_observatory, write_observatory};

fn main() {
    // 1. measure: a moderately loaded farm with faults. The background
    //    traffic is sized to ~70% slot utilisation (180 busy of 260 slots)
    //    so queues form without the farm melting down.
    let mut cfg = GridConfig::pipeline_default();
    cfg.sites.truncate(3);
    cfg.background = Some(gridstrat::sim::BackgroundLoadConfig {
        arrival_rate_per_s: 0.12,
        exec_mean_s: 1_500.0,
        exec_cv: 1.5,
    });
    cfg.faults.p_silent_loss = 0.08;
    let mut sim = GridSimulation::new(cfg, 0x0B5).expect("valid config");
    let mut harness = ProbeHarness::new("sim-week", 1500, 40, CENSOR_THRESHOLD_S);
    sim.run_controller(&mut harness);
    let trace = harness.into_trace();
    println!(
        "collected {} probes: body mean {:.0}s ± {:.0}s, outliers {:.1}%",
        trace.len(),
        trace.body_mean(),
        trace.body_std(),
        100.0 * trace.outlier_ratio()
    );

    // 2. archive + re-parse (what a Grid Observatory consumer would do)
    let log = write_observatory(&trace);
    let parsed = parse_observatory(&log).expect("self-written log parses");
    assert_eq!(parsed.len(), trace.len());
    println!(
        "observatory round-trip: {} bytes, {} records",
        log.len(),
        parsed.len()
    );

    // 3. fit and rank body families
    let body = parsed.body_latencies();
    let (rho, rho_se) = fit_outlier_ratio(parsed.n_outliers(), parsed.len());
    println!("\nfault ratio ρ̂ = {rho:.3} ± {rho_se:.3}");
    println!(
        "{:<12} {:>12} {:>10} {:>8}",
        "family", "AIC", "KS", "p-value"
    );
    let reports = select_body_model(&body);
    for r in &reports {
        println!(
            "{:<12} {:>12.1} {:>10.4} {:>8.4}",
            r.model.family(),
            r.aic,
            r.ks,
            r.ks_pvalue
        );
    }

    // 4. tune strategies on both the raw ECDF and the best parametric fit
    let empirical = EmpiricalModel::from_trace(&parsed).expect("valid trace");
    let emp_opt = SingleResubmission::optimize(&empirical);
    println!(
        "\nempirical model : t∞* = {:.0}s, E_J = {:.0}s",
        emp_opt.timeout, emp_opt.expectation
    );
    let best_fit = reports.first().expect("at least one family fits");
    let parametric =
        ParametricModel::new(best_fit.model, rho, CENSOR_THRESHOLD_S).expect("valid model");
    let par_opt = SingleResubmission::optimize(&parametric);
    println!(
        "parametric ({}) : t∞* = {:.0}s, E_J = {:.0}s",
        best_fit.model.family(),
        par_opt.timeout,
        par_opt.expectation
    );
    let delayed = DelayedResubmission::optimize(&empirical);
    println!(
        "delayed         : (t0*, t∞*) = ({:.0}s, {:.0}s), E_J = {:.0}s, N_// = {:.2}",
        delayed.t0, delayed.t_inf, delayed.expectation, delayed.n_parallel
    );
}
