//! Ecosystem experiment: what happens when *every* user adopts an
//! aggressive submission strategy? (the paper's stated future work, §8)
//!
//! ```text
//! cargo run --release --example ecosystem
//! ```
//!
//! The analytic models assume redundant jobs do not measurably change the
//! grid workload (§3.3) — reasonable for one user on an 80 000-core
//! infrastructure, false if the whole community bursts. Here
//! `gridstrat-fleet` shares a scarce simulated farm among a community of
//! users; redundant burst copies that start before their cancellation
//! lands burn worker slots for their full execution time, so raising `b`
//! degrades everyone's latency — exactly the administrators' complaint
//! the paper cites.
//!
//! Three stages, all bit-identical for any thread count:
//!
//! 1. the classic single-mix scan (everyone bursts with `b = 1, 2, 4`);
//! 2. a [`FleetSweep`] over 3 community sizes × 3 strategy mixes × 2 grid
//!    scenarios reporting fairness, slot waste and per-strategy latency;
//! 3. a best-response loop searching for the equilibrium mix: is b-fold
//!    multiple submission a Nash equilibrium, and at what community size
//!    does it stop paying?

use gridstrat::prelude::*;

const T_INF: f64 = 3_000.0;

fn base_config() -> FleetConfig {
    // a scarce farm: fewer slots than users, so the community saturates
    // it; cancels are WMS round-trips (~1 min before they land)
    let mut cfg = FleetConfig::small_farm(30);
    cfg.tasks_per_user = 5;
    cfg.task_exec_s = 600.0;
    cfg.replications = 3;
    cfg.seed = 0xEC0;
    cfg
}

fn burst_mix(b: u32) -> StrategyMix {
    StrategyMix::pure(
        format!("burst-{b}"),
        StrategyParams::Multiple { b, t_inf: T_INF },
    )
}

fn main() {
    let cfg = base_config();

    // --- stage 1: the classic scan — everyone bursts harder --------------
    println!(
        "community of 40 users x {} tasks on a 30-slot shared farm; every user\n\
         uses b-fold burst submission (copies run 600 s once started, cancels\n\
         take ~1 min to land); {} replications per cell\n",
        cfg.tasks_per_user, cfg.replications
    );
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>9} {:>11} {:>9}",
        "mix", "mean J", "p95 J", "fairness", "waste", "subs", "util"
    );
    let scan = FleetSweep::new(
        cfg.clone(),
        vec![burst_mix(1), burst_mix(2), burst_mix(4)],
        vec![40],
        vec![GridScenario::baseline()],
    )
    .run();
    for cell in &scan {
        println!(
            "{:>8} {:>9.0}s {:>9.0}s {:>10.3} {:>8.1}% {:>11} {:>8.1}%",
            cell.mix,
            cell.mean_latency,
            cell.groups[0].quantile(0.95),
            cell.fairness,
            cell.slot_waste * 100.0,
            cell.submissions,
            cell.utilization * 100.0
        );
    }
    println!(
        "\nreading: with everyone bursting, redundant copies consume the very\n\
         slots users compete for — latency and waste grow with b, which is why\n\
         the paper argues for the delayed strategy's Δcost < 1 regime.\n"
    );

    // --- stage 2: mix x community-size x scenario sweep -------------------
    let mixes = vec![
        StrategyMix::pure("all-single", StrategyParams::Single { t_inf: T_INF }),
        burst_mix(2),
        StrategyMix::new(
            "mixed",
            vec![
                StrategyGroup {
                    strategy: StrategyParams::Single { t_inf: T_INF },
                    weight: 0.5,
                    adaptive: None,
                },
                StrategyGroup {
                    strategy: StrategyParams::Multiple { b: 2, t_inf: T_INF },
                    weight: 0.25,
                    adaptive: None,
                },
                StrategyGroup {
                    strategy: StrategyParams::Delayed {
                        t0: 1_500.0,
                        t_inf: T_INF,
                    },
                    weight: 0.25,
                    adaptive: None,
                },
            ],
        ),
    ];
    let sweep = FleetSweep::new(
        cfg.clone(),
        mixes,
        vec![20, 40, 60],
        vec![
            GridScenario::baseline(),
            GridScenario::new("slow+faulty", 2.0, 1.5),
        ],
    );
    println!(
        "fleet sweep: {} cells ({} community runs total)\n",
        sweep.n_cells(),
        sweep.n_runs_total()
    );
    println!(
        "{:>10} {:>6} {:>12} {:>10} {:>10} {:>9} {:>9}",
        "mix", "users", "scenario", "mean J", "fairness", "waste", "util"
    );
    for cell in sweep.run() {
        println!(
            "{:>10} {:>6} {:>12} {:>9.0}s {:>10.3} {:>8.1}% {:>8.1}%",
            cell.mix,
            cell.users,
            cell.scenario,
            cell.mean_latency,
            cell.fairness,
            cell.slot_waste * 100.0,
            cell.utilization * 100.0
        );
        // per-strategy latency breakdown for the heterogeneous mix
        if cell.groups.len() > 1 && cell.scenario == "baseline" {
            for g in &cell.groups {
                println!(
                    "{:>10}   group {}: {:<40} mean {:>6.0}s  p95 {:>6.0}s",
                    "",
                    g.group,
                    format!("{:?}", g.strategy),
                    g.latency.mean(),
                    g.quantile(0.95)
                );
            }
        }
    }

    // --- stage 3: best-response equilibrium search ------------------------
    println!("\nbest-response search: single vs 2-fold vs 4-fold burst, 40 users\n");
    let mut eq_cfg = cfg;
    eq_cfg.tasks_per_user = 3; // keep the search snappy
    let search = BestResponseSearch::new(
        eq_cfg,
        40,
        vec![
            StrategyParams::Single { t_inf: T_INF },
            StrategyParams::Multiple { b: 2, t_inf: T_INF },
            StrategyParams::Multiple { b: 4, t_inf: T_INF },
        ],
        GridScenario::baseline(),
    );
    let report = search.run();
    println!(
        "{:>4} {:>18} {:>26} {:>26} {:>6}",
        "iter", "counts (s/b2/b4)", "incumbent J (s)", "deviation J (s)", "best"
    );
    for (i, step) in report.steps.iter().enumerate() {
        let fmt = |xs: &[f64]| {
            xs.iter()
                .map(|x| {
                    if x.is_nan() {
                        "    -".into()
                    } else {
                        format!("{x:>5.0}")
                    }
                })
                .collect::<Vec<_>>()
                .join(" ")
        };
        println!(
            "{:>4} {:>18} {:>26} {:>26} {:>6}",
            i,
            format!("{:?}", step.counts),
            fmt(&step.incumbent_latency),
            fmt(&step.deviation_latency),
            step.best_response
        );
    }
    let fractions: Vec<String> = report
        .final_fractions()
        .iter()
        .map(|f| format!("{:.0}%", f * 100.0))
        .collect();
    println!(
        "\n{} after {} iteration(s): final mix {:?} -> [{}]",
        if report.converged {
            "converged to an approximate equilibrium"
        } else {
            "stopped at the iteration cap"
        },
        report.steps.len(),
        report.final_counts,
        fractions.join(", ")
    );
    println!(
        "reading: a lone deviator can usually still cut its own latency by\n\
         bursting harder, so the dynamics drift toward aggressive mixes — a\n\
         tragedy of the commons: compare the equilibrium community's incumbent\n\
         latencies with the all-single row of the sweep above. Individually\n\
         rational multiple submission is collectively self-defeating, exactly\n\
         the administrators' complaint the paper cites (§8)."
    );
}
